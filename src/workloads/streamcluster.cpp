#include "workloads/streamcluster.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

/// cost[i] = min(cost[i], weight * dist2(point[i], point[center]))
isa::ProgramPtr build_pgain_kernel(u32 dims) {
  using namespace isa;
  KernelBuilder kb("sc_pgain");

  Reg pts = kb.reg(), cost = kb.reg(), n = kb.reg(), center = kb.reg(),
      weight = kb.reg();
  kb.ldp(pts, 0);
  kb.ldp(cost, 1);
  kb.ldp(n, 2);
  kb.ldp(center, 3);
  kb.ldp(weight, 4);

  Reg tid = kb.global_tid_x();
  Label done = kb.label();
  util::exit_if_ge(kb, tid, n, done);

  Reg lin = kb.reg(), p_base = kb.reg(), c_base = kb.reg();
  kb.imul(lin, tid, imm(static_cast<i32>(dims)));
  kb.imad(p_base, lin, imm(4), pts);
  kb.imul(lin, center, imm(static_cast<i32>(dims)));
  kb.imad(c_base, lin, imm(4), pts);

  Reg dist = kb.reg(), a = kb.reg(), b = kb.reg(), diff = kb.reg();
  kb.movf(dist, 0.0f);
  for (u32 d = 0; d < dims; ++d) {
    kb.ldg(a, p_base, static_cast<i32>(d * 4));
    kb.ldg(b, c_base, static_cast<i32>(d * 4));
    kb.fsub(diff, a, b);
    kb.ffma(dist, diff, diff, dist);
  }
  kb.fmul(dist, dist, weight);

  Reg a_c = util::elem_addr(kb, cost, tid);
  Reg cur = kb.reg();
  kb.ldg(cur, a_c);
  kb.fmin(cur, cur, dist);
  kb.stg(a_c, cur);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Streamcluster::setup(Scale scale, u64 seed) {
  n_ = scale == Scale::kTest ? 1024 : 8192;
  candidates_ = scale == Scale::kTest ? 4 : 48;
  Rng rng(seed);

  points_.resize(static_cast<size_t>(n_) * kDims);
  for (float& v : points_) v = rng.next_float(0.0f, 1.0f);

  reference_.assign(n_, 1e30f);
  for (u32 c = 0; c < candidates_; ++c) {
    const u32 center = (c * 131) % n_;
    const float weight = 1.0f + 0.01f * static_cast<float>(c);
    for (u32 i = 0; i < n_; ++i) {
      float dist = 0.0f;
      for (u32 d = 0; d < kDims; ++d) {
        const float diff =
            points_[i * kDims + d] - points_[center * kDims + d];
        dist = std::fma(diff, diff, dist);
      }
      dist *= weight;
      reference_[i] = std::fmin(reference_[i], dist);
    }
  }
  result_.clear();
}

void Streamcluster::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_generate(input_bytes());  // points synthesized in memory

  const u64 pts_bytes = static_cast<u64>(n_) * kDims * 4;
  const u64 cost_bytes = static_cast<u64>(n_) * 4;
  core::ReplicaPtr d_pts = session.alloc(pts_bytes);
  core::ReplicaPtr d_cost = session.alloc(cost_bytes);
  session.h2d(d_pts, points_.data(), pts_bytes);
  std::vector<float> init(n_, 1e30f);
  session.h2d(d_cost, init.data(), cost_bytes);

  isa::ProgramPtr prog = build_pgain_kernel(kDims);
  const u32 blocks = ceil_div(n_, 256);
  for (u32 c = 0; c < candidates_; ++c) {
    const u32 center = (c * 131) % n_;
    const float weight = 1.0f + 0.01f * static_cast<float>(c);
    session.launch(prog, sim::Dim3{blocks, 1, 1}, sim::Dim3{256, 1, 1},
                   {d_pts, d_cost, n_, center, weight});
  }
  session.sync();

  result_.resize(n_);
  session.d2h(result_.data(), d_cost, cost_bytes);
  session.compare(d_cost, cost_bytes, result_.data());
}

bool Streamcluster::verify() const { return approx_equal(result_, reference_); }

u64 Streamcluster::input_bytes() const {
  return static_cast<u64>(n_) * kDims * 4;
}
u64 Streamcluster::output_bytes() const { return static_cast<u64>(n_) * 4; }

}  // namespace higpu::workloads
