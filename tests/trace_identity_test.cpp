// Zero-perturbation guarantee: attaching an obs::Tracer changes no
// deterministic result field. Every workload runs with tracing off and on —
// across both sim engines, both exec modes and baseline/TMR redundancy —
// and the two ScenarioResults must be bit-identical (including the cycle-
// attribution counters and per-SM profile, which are counted
// unconditionally). The traced run must also produce a schema-valid,
// non-empty Chrome trace, so "identical" can never be satisfied by tracing
// silently not happening.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/exec.h"
#include "exp/campaign.h"
#include "obs/trace.h"
#include "runtime/device.h"
#include "workloads/workload.h"

namespace higpu {
namespace {

struct Config {
  sim::SimEngine engine;
  sim::ExecMode exec;
  bool tmr;
};

std::string config_name(const Config& c) {
  std::string s = c.engine == sim::SimEngine::kDense ? "dense" : "event";
  s += c.exec == sim::ExecMode::kInterp ? "+interp" : "+block";
  s += c.tmr ? "+tmr" : "+base";
  return s;
}

class TraceIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(TraceIdentity, TracerOnChangesNoDeterministicField) {
  const std::vector<Config> configs = {
      {sim::SimEngine::kDense, sim::ExecMode::kInterp, false},
      {sim::SimEngine::kDense, sim::ExecMode::kInterp, true},
      {sim::SimEngine::kDense, sim::ExecMode::kBlock, false},
      {sim::SimEngine::kDense, sim::ExecMode::kBlock, true},
      {sim::SimEngine::kEvent, sim::ExecMode::kInterp, false},
      {sim::SimEngine::kEvent, sim::ExecMode::kInterp, true},
      {sim::SimEngine::kEvent, sim::ExecMode::kBlock, false},
      {sim::SimEngine::kEvent, sim::ExecMode::kBlock, true},
  };
  for (const Config& c : configs) {
    SCOPED_TRACE(config_name(c));
    exp::ScenarioSpec spec;
    spec.workload = GetParam();
    spec.scale = workloads::Scale::kTest;
    spec.gpu.engine = c.engine;
    spec.gpu.exec_mode = c.exec;
    spec.redundancy = c.tmr ? core::RedundancySpec::tmr()
                            : core::RedundancySpec::baseline();

    const exp::ScenarioResult off = exp::run_scenario(spec);
    ASSERT_TRUE(off.ok) << off.error;

    obs::Tracer tracer;
    const exp::ScenarioProbe attach =
        [&tracer](runtime::Device& dev, workloads::Workload&,
                  core::ExecSession&) { dev.set_tracer(&tracer); };
    const exp::ScenarioResult on =
        exp::run_scenario(spec, 0, nullptr, attach);
    ASSERT_TRUE(on.ok) << on.error;

    EXPECT_TRUE(off.deterministic_fields_equal(on))
        << "tracing perturbed the simulation";
    // Pin the fields a failure would most plausibly hide in, for a usable
    // diagnostic when the blanket equality trips.
    EXPECT_EQ(off.kernel_cycles, on.kernel_cycles);
    EXPECT_EQ(off.elapsed_ns, on.elapsed_ns);
    EXPECT_EQ(off.sm_profile, on.sm_profile);
    EXPECT_TRUE(off.stats == on.stats);

    // The traced run must really have traced something valid.
    EXPECT_GT(tracer.events_recorded(), 0u);
    EXPECT_EQ(obs::validate_chrome_trace(tracer.to_chrome_json()), "");
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TraceIdentity,
                         ::testing::ValuesIn(workloads::all_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '+' || c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace higpu
