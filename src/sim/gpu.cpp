#include "sim/gpu.h"

#include <cassert>

namespace higpu::sim {

Gpu::Gpu(const GpuParams& params, memsys::GlobalStore* store)
    : params_(params), store_(store), mem_(params.num_sms, params.mem) {
  assert(store != nullptr);
  sms_.reserve(params.num_sms);
  for (u32 i = 0; i < params.num_sms; ++i) {
    sms_.push_back(std::make_unique<SmCore>(i, params_, &mem_, store_));
    sms_.back()->set_block_done_callback(
        [this](const BlockRecord& rec) { on_block_done(rec); });
  }
}

void Gpu::set_kernel_scheduler(std::unique_ptr<IKernelScheduler> sched) {
  ksched_ = std::move(sched);
}

void Gpu::set_fault_hook(IFaultHook* hook) {
  fault_ = hook;
  for (auto& sm : sms_) sm->set_fault_hook(hook);
}

void Gpu::set_trace_sink(ITraceSink* sink) {
  for (auto& sm : sms_) sm->set_trace_sink(sink);
}

void Gpu::set_warp_sched_policy(WarpSchedPolicy p) {
  for (auto& sm : sms_) sm->set_warp_sched_policy(p);
}

u32 Gpu::launch(KernelLaunch launch) {
  assert(ksched_ != nullptr && "set a kernel scheduler before launching");
  assert(launch.program != nullptr);
  assert(launch.total_blocks() > 0 && launch.threads_per_block() > 0);
  assert(launch.threads_per_block() <=
             params_.max_warps_per_sm * params_.warp_size &&
         "thread block larger than an SM");
  assert(launch.params.size() >= launch.program->num_params() &&
         "missing kernel parameters");

  auto slot = std::make_unique<LaunchSlot>();
  const u32 id = static_cast<u32>(launches_.size());
  slot->launch = std::move(launch);
  slot->state.launch_id = id;
  slot->state.total_blocks = slot->launch.total_blocks();
  last_arrival_ = std::max(cycle_, last_arrival_) + params_.launch_gap_cycles;
  slot->state.arrival = last_arrival_;
  launches_.push_back(std::move(slot));
  stats_.add("kernels_launched");
  return id;
}

bool Gpu::idle() const {
  for (const auto& slot : launches_)
    if (!slot->state.finished()) return false;
  return true;
}

void Gpu::step() {
  cycle_ += 1;
  dispatched_this_cycle_ = false;
  if (ksched_) ksched_->dispatch(*this);
  for (auto& sm : sms_) sm->cycle(cycle_);
}

Cycle Gpu::run_until_idle(u64 max_cycles) {
  const Cycle limit = cycle_ + max_cycles;
  while (!idle()) {
    if (cycle_ >= limit)
      throw SimTimeout("GPU did not drain within cycle budget (scheduler deadlock?)");
    step();
  }
  return cycle_;
}

bool Gpu::sm_can_accept(u32 sm, const KernelLaunch& launch) const {
  return sms_[sm]->can_accept(launch);
}

bool Gpu::all_sms_drained() const {
  for (const auto& sm : sms_)
    if (!sm->idle()) return false;
  return true;
}

std::vector<KernelState*> Gpu::kernel_states() {
  std::vector<KernelState*> out;
  out.reserve(launches_.size());
  for (auto& slot : launches_) out.push_back(&slot->state);
  return out;
}

const KernelLaunch& Gpu::launch_of(u32 launch_id) const {
  return launches_[launch_id]->launch;
}

bool Gpu::priors_finished(u32 launch_id) const {
  for (u32 i = 0; i < launch_id; ++i)
    if (!launches_[i]->state.finished()) return false;
  return true;
}

bool Gpu::stream_ready(const KernelState& ks) const {
  const u32 stream = launches_[ks.launch_id]->launch.stream;
  for (u32 i = 0; i < ks.launch_id; ++i)
    if (launches_[i]->launch.stream == stream && !launches_[i]->state.finished())
      return false;
  return true;
}

bool Gpu::try_dispatch_block(KernelState& ks, u32 sm) {
  if (dispatched_this_cycle_) return false;
  if (ks.fully_dispatched()) return false;
  assert(sm < num_sms());

  u32 actual_sm = sm;
  if (fault_ != nullptr && fault_->armed())
    actual_sm = fault_->corrupt_block_mapping(sm, num_sms(), cycle_);

  const KernelLaunch& launch = launches_[ks.launch_id]->launch;
  if (!sms_[actual_sm]->can_accept(launch)) return false;

  if (!ks.started()) ks.first_dispatch_cycle = cycle_;
  sms_[actual_sm]->accept_block(launch, ks.launch_id, ks.blocks_dispatched, sm,
                                cycle_);
  ks.blocks_dispatched += 1;
  dispatched_this_cycle_ = true;
  stats_.add("blocks_dispatched");
  return true;
}

const KernelState& Gpu::kernel_state(u32 launch_id) const {
  return launches_[launch_id]->state;
}

Cycle Gpu::kernel_cycles(u32 launch_id) const {
  const KernelState& ks = launches_[launch_id]->state;
  assert(ks.finished());
  return ks.done_cycle - ks.first_dispatch_cycle;
}

void Gpu::on_block_done(const BlockRecord& rec) {
  records_.push_back(rec);
  KernelState& ks = launches_[rec.launch_id]->state;
  ks.blocks_done += 1;
  if (ks.finished()) {
    ks.done_cycle = cycle_;
    stats_.add("kernels_completed");
  }
}

StatSet Gpu::collect_stats() const {
  StatSet all = stats_;
  all.merge(mem_.stats());
  for (const auto& sm : sms_) all.merge(sm->snapshot_stats());
  all.set("cycles", cycle_);
  return all;
}

}  // namespace higpu::sim
