// Redundancy-overhead bench (the Fig. 5 generalization the unified API
// enables): end-to-end slowdown vs the non-redundant baseline for every
// redundancy mode the ExecSession serves — N=2 bitwise (DCLS), N=3 bitwise,
// and N=3 majority vote (TMR) — across several workloads, under SRRS. Emits
// BENCH_redundancy.json for the CI artifact alongside BENCH_engine.json.
//
//   $ ./bench_redundancy_overhead [--scale=test|bench] [--out=PATH]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace higpu;
  using bench::ms;
  using core::RedundancySpec;

  workloads::Scale scale = workloads::Scale::kBench;
  std::string out_path = "BENCH_redundancy.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0)
      scale = workloads::parse_scale(arg.substr(8));
    else if (arg.rfind("--out=", 0) == 0)
      out_path = arg.substr(6);
  }

  // A short, a memory-heavy, a compute-heavy and a kernel-dominated
  // workload: the redundancy overhead spread of Fig. 5.
  const std::vector<std::string> names = {"hotspot", "bfs", "nn", "gaussian",
                                          "pathfinder"};
  struct Mode {
    const char* key;
    RedundancySpec spec;
  };
  const std::vector<Mode> modes = {
      {"dcls", RedundancySpec::dcls()},
      {"tmr_bitwise",
       [] {
         RedundancySpec r;
         r.n_copies = 3;
         return r;
       }()},
      {"tmr_vote", RedundancySpec::tmr()},
  };

  std::printf("Redundancy overhead: end-to-end slowdown vs baseline "
              "(SRRS, scale=%s)\n\n",
              workloads::scale_name(scale));
  TextTable table({"benchmark", "baseline(ms)", "DCLS", "TMR(bitwise)",
                   "TMR(vote)", "verified"});

  std::string json = "{\n  \"bench\": \"redundancy_overhead\",\n"
                     "  \"metric\": \"end-to-end slowdown vs N=1 baseline "
                     "(modelled ns, SRRS)\",\n  \"scale\": \"" +
                     std::string(workloads::scale_name(scale)) +
                     "\",\n  \"results\": [\n";
  bool all_ok = true;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const bench::RunResult base = bench::run_workload(
        name, scale, sched::Policy::kSrrs, RedundancySpec::baseline());
    bool ok = base.verified;
    std::vector<double> slowdown;
    std::string mode_json;
    for (size_t m = 0; m < modes.size(); ++m) {
      const bench::RunResult r = bench::run_workload(
          name, scale, sched::Policy::kSrrs, modes[m].spec);
      ok = ok && r.verified && r.outputs_matched;
      slowdown.push_back(static_cast<double>(r.elapsed_ns) /
                         static_cast<double>(base.elapsed_ns));
      char buf[128];
      std::snprintf(buf, sizeof(buf), "\"%s_slowdown\": %.3f, ",
                    modes[m].key, slowdown.back());
      mode_json += buf;
    }
    all_ok = all_ok && ok;

    table.add_row({name, TextTable::fmt(ms(base.elapsed_ns), 3),
                   TextTable::fmt_ratio(slowdown[0]),
                   TextTable::fmt_ratio(slowdown[1]),
                   TextTable::fmt_ratio(slowdown[2]), ok ? "yes" : "NO"});

    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"baseline_ns\": %llu, %s"
                  "\"verified\": %s}%s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(base.elapsed_ns),
                  mode_json.c_str(), ok ? "true" : "false",
                  i + 1 < names.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::printf("%s\n", table.render().c_str());
  std::printf("paper reference (Fig. 5): DCLS overhead is negligible unless "
              "kernel-dominated; TMR scales the kernel share by ~1.5x over "
              "DCLS, and voting adds host comparison time only.\n");

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
