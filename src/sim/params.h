// Top-level GPU configuration.
//
// Defaults approximate the paper's evaluated platforms: a 6-SM GPU
// (GPGPU-Sim config in Fig. 4; the GTX 1050 Ti of Fig. 5 also has 6 SMs).
#pragma once

#include "common/types.h"
#include "memsys/params.h"

namespace higpu::sim {

/// Simulation-core engine selection.
///
/// * kEvent — event-driven: SMs report the earliest cycle at which any
///   resident warp can become ready (scoreboard release, memory-response
///   arrival, unit availability, barrier release) and the GPU advances the
///   clock directly to the next such event, fast-forwarding quiescent
///   cycles. Bit-identical in results, cycle counts and statistics to the
///   dense loop.
/// * kDense — the classic tick loop: every SM is stepped on every cycle.
///   Kept as the reference implementation for the dual-engine equivalence
///   test and as a debugging fallback.
enum class SimEngine { kEvent, kDense };

/// Instruction-dispatch engine selection (orthogonal to SimEngine).
///
/// * kBlock — block-compiled: at launch each program is lowered once into a
///   pre-decoded superinstruction trace (see sim/blockexec.h) and the issue
///   stage dispatches through it; memory/control/barrier ops fall back to
///   the interpreter. Bit-identical results, cycle counts and architectural
///   statistics to kInterp — only dispatch cost changes.
/// * kInterp — the original per-instruction interpreter, kept as the
///   reference for the block/interp equivalence tests and benchmarks.
enum class ExecMode { kBlock, kInterp };

/// Launch-time static verification (see isa/verify/verify.h).
///
/// * kEnforce — every program is verified on its first launch per
///   (program, grid, block); error-severity diagnostics refuse the launch
///   with an isa::verify::VerifyError carrying the structured report.
///   Subsequent launches of the same program hit a memo and pay nothing
///   (trace-cache-style, like blockexec compilation).
/// * kWarn — verify and record the report, and launch merely-wrong programs
///   regardless (uninit reads, barrier deadlocks, modelled-memory OOB).
///   Programs whose defects would index *host* memory out of bounds on the
///   simulator's unchecked fetch / register-file paths
///   (isa::verify::Result::unsafe_to_execute) are still refused: there is
///   no meaningful "warn and run" for UB.
/// * kOff — skip verification entirely. Unsafe with untrusted programs:
///   nothing then guards the unchecked indexing paths (Warp::reg_at,
///   code fetch, parameter loads).
///
/// Like ExecMode, this never changes what a *valid* program computes, so it
/// is excluded from the snapshot parameter fingerprint.
enum class LaunchVerify { kEnforce, kWarn, kOff };

struct GpuParams {
  SimEngine engine = SimEngine::kEvent;
  ExecMode exec_mode = ExecMode::kBlock;
  LaunchVerify verify = LaunchVerify::kEnforce;

  u32 num_sms = 6;
  u32 warp_size = 32;

  // Per-SM occupancy limits.
  u32 max_warps_per_sm = 48;
  u32 max_blocks_per_sm = 16;
  u32 regfile_per_sm = 64 * 1024;      // 32-bit registers
  u32 shared_per_sm = 48 * 1024;       // bytes

  // Issue stage.
  u32 num_warp_schedulers = 2;

  // Execution latencies (cycles until writeback).
  u32 sp_latency = 6;
  u32 sfu_latency = 16;
  u32 sfu_interval = 4;  // SFU initiation interval (cycles between issues)

  // Host->GPU kernel dispatch is intrinsically serial (paper §IV.A): the
  // i-th launched kernel becomes visible to the kernel scheduler this many
  // cycles after the previous one (~2 us of driver/dispatch path at 1.4 GHz).
  u32 launch_gap_cycles = 3000;

  // Core clock, used to convert cycles to wall time in the platform model.
  double clock_ghz = 1.4;

  memsys::MemParams mem;

  bool operator==(const GpuParams& other) const = default;
};

}  // namespace higpu::sim
