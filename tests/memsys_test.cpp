#include <gtest/gtest.h>

#include "memsys/cache.h"
#include "memsys/coalescer.h"
#include "memsys/global_store.h"
#include "memsys/hierarchy.h"

namespace higpu::memsys {
namespace {

TEST(Cache, HitAfterFill) {
  SetAssocCache c(1024, 2, 128);  // 4 sets
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(1));
}

TEST(Cache, LruEviction) {
  SetAssocCache c(1024, 2, 128);  // 4 sets, 2 ways
  // Lines 0, 4, 8 map to set 0 (line % 4).
  c.access(0, false);
  c.access(4, false);
  c.access(0, false);  // touch 0 -> 4 is now LRU
  c.access(8, false);  // evicts 4
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(4));
  EXPECT_TRUE(c.probe(8));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  SetAssocCache c(1024, 2, 128);
  c.access(0, true);   // dirty
  c.access(4, false);
  const CacheAccessResult r = c.access(8, false);  // evicts line 0 (LRU)
  ASSERT_TRUE(r.writeback_line.has_value());
  EXPECT_EQ(*r.writeback_line, 0u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  SetAssocCache c(1024, 2, 128);
  c.access(0, false);
  c.access(4, false);
  const CacheAccessResult r = c.access(8, false);
  EXPECT_FALSE(r.writeback_line.has_value());
}

TEST(Cache, InvalidateLineReportsDirtiness) {
  SetAssocCache c(1024, 2, 128);
  c.access(0, true);
  EXPECT_TRUE(c.invalidate_line(0));
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.invalidate_line(0));
}

TEST(Cache, ClearDropsEverything) {
  SetAssocCache c(1024, 2, 128);
  c.access(0, true);
  c.clear();
  EXPECT_FALSE(c.probe(0));
}

TEST(Coalescer, ConsecutiveWordsShareOneLine) {
  std::vector<u64> addrs;
  for (u64 i = 0; i < 32; ++i) addrs.push_back(i * 4);
  EXPECT_EQ(coalesce(addrs, 128).size(), 1u);
}

TEST(Coalescer, StridedAccessHitsManyLines) {
  std::vector<u64> addrs;
  for (u64 i = 0; i < 32; ++i) addrs.push_back(i * 128);
  EXPECT_EQ(coalesce(addrs, 128).size(), 32u);
}

TEST(Coalescer, PreservesFirstAppearanceOrder) {
  const std::vector<u64> addrs = {400, 0, 404, 8};
  const std::vector<u64> lines = coalesce(addrs, 128);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], 3u);
  EXPECT_EQ(lines[1], 0u);
}

TEST(SmemConflicts, ConsecutiveWordsConflictFree) {
  std::vector<u64> addrs;
  for (u64 i = 0; i < 32; ++i) addrs.push_back(i * 4);
  EXPECT_EQ(smem_conflict_degree(addrs, 32), 1u);
}

TEST(SmemConflicts, SameWordBroadcastIsFree) {
  std::vector<u64> addrs(32, 64);
  EXPECT_EQ(smem_conflict_degree(addrs, 32), 1u);
}

TEST(SmemConflicts, PowerOfTwoStrideConflicts) {
  std::vector<u64> addrs;
  for (u64 i = 0; i < 32; ++i) addrs.push_back(i * 32 * 4);  // all bank 0
  EXPECT_EQ(smem_conflict_degree(addrs, 32), 32u);
}

TEST(GlobalStore, AllocAlignsAndSeparates) {
  GlobalStore g;
  const DevPtr a = g.alloc(100);
  const DevPtr b = g.alloc(100);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_NE(a, 0u);  // null device pointer reserved
}

TEST(GlobalStore, ReadWriteRoundTrip) {
  GlobalStore g;
  const DevPtr p = g.alloc(16);
  g.write32(p, 0xDEADBEEF);
  g.write32(p + 4, 42);
  EXPECT_EQ(g.read32(p), 0xDEADBEEFu);
  EXPECT_EQ(g.read32(p + 4), 42u);
}

TEST(GlobalStore, BlockTransfers) {
  GlobalStore g;
  const DevPtr p = g.alloc(64);
  std::vector<u32> in = {1, 2, 3, 4};
  g.write_block(p, in.data(), 16);
  std::vector<u32> out(4, 0);
  g.read_block(out.data(), p, 16);
  EXPECT_EQ(in, out);
}

TEST(Hierarchy, L1HitIsFasterThanMiss) {
  MemParams mp;
  MemHierarchy mem(2, mp);
  const Cycle miss = mem.access_line(0, 100, false, 1000);
  const Cycle hit = mem.access_line(0, 100, false, 2000);
  EXPECT_GT(miss - 1000, mp.l1_latency);
  EXPECT_EQ(hit - 2000, mp.l1_latency);
  EXPECT_EQ(mem.stats().get("l1_misses"), 1u);
  EXPECT_EQ(mem.stats().get("l1_hits"), 1u);
}

TEST(Hierarchy, L2SharedAcrossSms) {
  MemParams mp;
  MemHierarchy mem(2, mp);
  mem.access_line(0, 100, false, 0);   // fills L2 (and SM0's L1)
  const Cycle t = mem.access_line(1, 100, false, 10000);
  // SM1 misses L1 but hits L2: no new DRAM read.
  EXPECT_EQ(mem.stats().get("dram_reads"), 1u);
  EXPECT_LT(t - 10000, mp.dram_latency);
}

TEST(Hierarchy, MshrMergesConcurrentMisses) {
  MemParams mp;
  MemHierarchy mem(1, mp);
  const Cycle a = mem.access_line(0, 7, false, 100);
  const Cycle b = mem.access_line(0, 7, false, 101);  // in-flight merge
  EXPECT_EQ(b, a);
  EXPECT_EQ(mem.stats().get("l1_mshr_merges"), 1u);
  EXPECT_EQ(mem.stats().get("dram_reads"), 1u);
}

TEST(Hierarchy, DramBandwidthSerializesBursts) {
  MemParams mp;
  mp.dram_channels = 1;
  MemHierarchy mem(1, mp);
  // Distinct lines mapping to the single channel back to back.
  const Cycle t0 = mem.access_line(0, 0, false, 0);
  const Cycle t1 = mem.access_line(0, 64, false, 0);
  EXPECT_GE(t1, t0 + mp.dram_service - 1);
}

TEST(Hierarchy, AtomicBypassesL1) {
  MemParams mp;
  MemHierarchy mem(1, mp);
  mem.access_line(0, 5, false, 0);   // line resides in L1
  mem.access_atomic(0, 5, 1000);
  EXPECT_EQ(mem.stats().get("atomics"), 1u);
  // A later read misses the (invalidated) L1 line.
  mem.access_line(0, 5, false, 5000);
  EXPECT_EQ(mem.stats().get("l1_misses"), 2u);
}

TEST(Hierarchy, ResetRestoresColdState) {
  MemParams mp;
  MemHierarchy mem(1, mp);
  mem.access_line(0, 9, false, 0);
  mem.reset();
  EXPECT_EQ(mem.stats().get("l1_misses"), 0u);
  mem.access_line(0, 9, false, 0);
  EXPECT_EQ(mem.stats().get("l1_misses"), 1u);
}

}  // namespace
}  // namespace higpu::memsys
