#include "workloads/nw.h"

#include <algorithm>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr u32 kT = 16;            // tile size
constexpr u32 kShDim = kT + 1;    // shared tile with halo row/col

/// One 16-thread block processes one 16x16 tile of the DP matrix:
/// load halo + wavefront sweep in shared memory + store back.
/// Params: matrix, ref, ncols, d (tile diagonal), bi_start, penalty.
isa::ProgramPtr build_nw_tile_kernel() {
  using namespace isa;
  KernelBuilder kb("nw_tile");
  kb.set_shared_bytes(kShDim * kShDim * 4);

  Reg mat = kb.reg(), ref = kb.reg(), ncols = kb.reg(), diag = kb.reg(),
      bi_start = kb.reg(), pen = kb.reg();
  kb.ldp(mat, 0);
  kb.ldp(ref, 1);
  kb.ldp(ncols, 2);
  kb.ldp(diag, 3);
  kb.ldp(bi_start, 4);
  kb.ldp(pen, 5);

  Reg tx = kb.reg(), cta = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(cta, SReg::kCtaIdX);

  // Tile coordinates: bi = bi_start + cta; bj = diag - bi.
  Reg bi = kb.reg(), bj = kb.reg();
  kb.iadd(bi, bi_start, cta);
  kb.isub(bj, diag, bi);
  // Tile origin in the DP matrix (halo row/col 0 excluded).
  Reg row0 = kb.reg(), col0 = kb.reg();
  kb.imad(row0, bi, imm(static_cast<i32>(kT)), imm(1));
  kb.imad(col0, bj, imm(static_cast<i32>(kT)), imm(1));

  // ---- Load halo ----
  // shared[0][tx+1] = m[row0-1][col0+tx]
  Reg rm1 = kb.reg(), cm1 = kb.reg();
  kb.isub(rm1, row0, imm(1));
  kb.isub(cm1, col0, imm(1));
  Reg col_t = kb.reg();
  kb.iadd(col_t, col0, tx);
  Reg g_top = util::elem_addr2d(kb, mat, rm1, ncols, col_t);
  Reg v = kb.reg();
  kb.ldg(v, g_top);
  Reg sh_a = kb.reg();
  kb.imad(sh_a, tx, imm(4), imm(4));  // (0*17 + tx+1)*4
  kb.sts(sh_a, v);
  // shared[tx+1][0] = m[row0+tx][col0-1]
  Reg row_t = kb.reg();
  kb.iadd(row_t, row0, tx);
  Reg g_left = util::elem_addr2d(kb, mat, row_t, ncols, cm1);
  kb.ldg(v, g_left);
  kb.imad(sh_a, tx, imm(static_cast<i32>(kShDim * 4)),
          imm(static_cast<i32>(kShDim * 4)));  // ((tx+1)*17+0)*4
  kb.sts(sh_a, v);
  // thread 0: shared[0][0] = m[row0-1][col0-1]
  PredReg t0 = kb.pred();
  kb.setp(t0, CmpOp::kEq, DType::kI32, tx, imm(0));
  Reg g_corner = util::elem_addr2d(kb, mat, rm1, ncols, cm1);
  kb.ldg(v, g_corner).guard_if(t0);
  kb.sts(imm(0), v).guard_if(t0);
  kb.bar();

  // ---- Wavefront sweep ----
  // Thread tx owns column tx; at step s it computes cell (i=s-tx, j=tx)
  // when 0 <= i < 16 (checked with one unsigned compare).
  Reg i_r = kb.reg(), nw = kb.reg(), up = kb.reg(), left = kb.reg(),
      rv = kb.reg(), best = kb.reg(), tmp = kb.reg(), sh_nw = kb.reg(),
      sh_up = kb.reg(), sh_left = kb.reg(), sh_dst = kb.reg(),
      g_ref = kb.reg(), lin = kb.reg(), row_i = kb.reg();
  PredReg act = kb.pred();
  for (u32 s = 0; s < 2 * kT - 1; ++s) {
    kb.isub(i_r, imm(static_cast<i32>(s)), tx);
    kb.setp(act, CmpOp::kLt, DType::kU32, i_r, imm(static_cast<i32>(kT)));
    // shared indices: dst=(i+1,tx+1), nw=(i,tx), up=(i,tx+1), left=(i+1,tx)
    kb.imad(lin, i_r, imm(static_cast<i32>(kShDim)), tx).guard_if(act);
    kb.imul(sh_nw, lin, imm(4)).guard_if(act);
    kb.iadd(sh_up, sh_nw, imm(4)).guard_if(act);
    kb.iadd(sh_left, sh_nw, imm(static_cast<i32>(kShDim * 4))).guard_if(act);
    kb.iadd(sh_dst, sh_left, imm(4)).guard_if(act);
    kb.lds(nw, sh_nw).guard_if(act);
    kb.lds(up, sh_up).guard_if(act);
    kb.lds(left, sh_left).guard_if(act);
    // ref[row0+i][col0+tx]
    kb.iadd(row_i, row0, i_r).guard_if(act);
    kb.imad(lin, row_i, ncols, col_t).guard_if(act);
    kb.imad(g_ref, lin, imm(4), ref).guard_if(act);
    kb.ldg(rv, g_ref).guard_if(act);
    // best = max(nw + ref, max(up + pen, left + pen))
    kb.iadd(best, nw, rv).guard_if(act);
    kb.iadd(tmp, up, pen).guard_if(act);
    kb.imax(best, best, tmp).guard_if(act);
    kb.iadd(tmp, left, pen).guard_if(act);
    kb.imax(best, best, tmp).guard_if(act);
    kb.sts(sh_dst, best).guard_if(act);
    kb.bar();
  }

  // ---- Store tile back ----
  for (u32 i = 0; i < kT; ++i) {
    kb.imad(lin, tx, imm(1), imm(static_cast<i32>((i + 1) * kShDim + 1)));
    kb.imul(sh_dst, lin, imm(4));
    kb.lds(v, sh_dst);
    Reg row_s = kb.reg();
    kb.iadd(row_s, row0, imm(static_cast<i32>(i)));
    Reg g_out = util::elem_addr2d(kb, mat, row_s, ncols, col_t);
    kb.stg(g_out, v);
  }
  kb.exit();
  return kb.build();
}

}  // namespace

void Nw::setup(Scale scale, u64 seed) {
  n_ = scale == Scale::kTest ? 64 : 256;
  Rng rng(seed);
  const u32 dim = n_ + 1;

  ref_matrix_.assign(static_cast<size_t>(dim) * dim, 0);
  for (u32 r = 1; r <= n_; ++r)
    for (u32 c = 1; c <= n_; ++c)
      ref_matrix_[static_cast<size_t>(r) * dim + c] =
          static_cast<i32>(rng.next_below(10)) - 4;

  // CPU reference: plain DP (integer arithmetic, so tile order is exact).
  reference_.assign(static_cast<size_t>(dim) * dim, 0);
  for (u32 c = 0; c <= n_; ++c)
    reference_[c] = static_cast<i32>(c) * kPenalty;
  for (u32 r = 0; r <= n_; ++r)
    reference_[static_cast<size_t>(r) * dim] = static_cast<i32>(r) * kPenalty;
  for (u32 r = 1; r <= n_; ++r) {
    for (u32 c = 1; c <= n_; ++c) {
      const i32 nw = reference_[static_cast<size_t>(r - 1) * dim + (c - 1)] +
                     ref_matrix_[static_cast<size_t>(r) * dim + c];
      const i32 up = reference_[static_cast<size_t>(r - 1) * dim + c] + kPenalty;
      const i32 left = reference_[static_cast<size_t>(r) * dim + (c - 1)] + kPenalty;
      reference_[static_cast<size_t>(r) * dim + c] = std::max({nw, up, left});
    }
  }
  result_.clear();
}

void Nw::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_parse(input_bytes() * 4);  // sequence generation + host traceback

  const u32 dim = n_ + 1;
  const u64 bytes = static_cast<u64>(dim) * dim * 4;
  core::ReplicaPtr d_mat = session.alloc(bytes);
  core::ReplicaPtr d_ref = session.alloc(bytes);

  std::vector<i32> init(static_cast<size_t>(dim) * dim, 0);
  for (u32 c = 0; c <= n_; ++c) init[c] = static_cast<i32>(c) * kPenalty;
  for (u32 r = 0; r <= n_; ++r)
    init[static_cast<size_t>(r) * dim] = static_cast<i32>(r) * kPenalty;
  session.h2d(d_mat, init.data(), bytes);
  session.h2d(d_ref, ref_matrix_.data(), bytes);

  isa::ProgramPtr prog = build_nw_tile_kernel();
  const u32 nb = n_ / kTile;
  for (u32 d = 0; d < 2 * nb - 1; ++d) {
    const u32 bi_start = d < nb ? 0 : d - nb + 1;
    const u32 bi_end = std::min(d, nb - 1);
    const u32 blocks = bi_end - bi_start + 1;
    session.launch(prog, sim::Dim3{blocks, 1, 1}, sim::Dim3{kTile, 1, 1},
                   {d_mat, d_ref, dim, d, bi_start, kPenalty});
    // Tiles of the next diagonal depend on this one: stream order suffices.
  }
  session.sync();

  result_.resize(static_cast<size_t>(dim) * dim);
  session.d2h(result_.data(), d_mat, bytes);
  session.compare(d_mat, bytes, result_.data());
}

bool Nw::verify() const { return result_ == reference_; }

u64 Nw::input_bytes() const {
  return 2ull * (n_ + 1) * (n_ + 1) * 4;
}
u64 Nw::output_bytes() const { return static_cast<u64>(n_ + 1) * (n_ + 1) * 4; }

}  // namespace higpu::workloads
