// srad — speckle-reducing anisotropic diffusion (Rodinia): per iteration,
// kernel 1 computes gradients and the diffusion coefficient, kernel 2
// applies the divergence update. Host computes the image statistics (q0)
// between iterations.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Srad final : public Workload {
 public:
  std::string name() const override { return "srad"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 dim_ = 0;
  u32 iters_ = 0;
  std::vector<float> image_;
  std::vector<float> reference_;
  std::vector<float> result_;
};

}  // namespace higpu::workloads
