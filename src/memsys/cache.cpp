#include "memsys/cache.h"

#include <cassert>

namespace higpu::memsys {

SetAssocCache::SetAssocCache(u32 size_bytes, u32 assoc, u32 line_bytes)
    : num_sets_(size_bytes / line_bytes / assoc), assoc_(assoc) {
  assert(num_sets_ > 0);
  ways_.resize(static_cast<size_t>(num_sets_) * assoc_);
}

CacheAccessResult SetAssocCache::access(u64 line_addr, bool is_write) {
  const u32 set = set_of(line_addr);
  const u64 tag = tag_of(line_addr);
  Way* base = &ways_[static_cast<size_t>(set) * assoc_];

  // Hit path.
  for (u32 w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++use_counter_;
      if (is_write) way.dirty = true;
      return {.hit = true, .writeback_line = std::nullopt};
    }
  }

  // Miss: pick invalid way, else LRU victim.
  Way* victim = nullptr;
  for (u32 w = 0; w < assoc_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    victim = &base[0];
    for (u32 w = 1; w < assoc_; ++w)
      if (base[w].lru < victim->lru) victim = &base[w];
  }

  CacheAccessResult res;
  if (victim->valid && victim->dirty)
    res.writeback_line = victim->tag * num_sets_ + set;

  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = ++use_counter_;
  return res;
}

bool SetAssocCache::touch(u64 line_addr, bool mark_dirty) {
  const u32 set = set_of(line_addr);
  const u64 tag = tag_of(line_addr);
  Way* base = &ways_[static_cast<size_t>(set) * assoc_];
  for (u32 w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++use_counter_;
      if (mark_dirty) way.dirty = true;
      return true;
    }
  }
  return false;
}

bool SetAssocCache::probe(u64 line_addr) const {
  const u32 set = set_of(line_addr);
  const u64 tag = tag_of(line_addr);
  const Way* base = &ways_[static_cast<size_t>(set) * assoc_];
  for (u32 w = 0; w < assoc_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void SetAssocCache::clear() {
  for (Way& w : ways_) w = Way{};
  use_counter_ = 0;
}

void SetAssocCache::save(ckpt::Writer& w) const {
  for (const Way& way : ways_) {
    w.put8(way.valid ? 1 : 0);
    w.put8(way.dirty ? 1 : 0);
    w.put64(way.tag);
    w.put64(way.lru);
  }
  w.put64(use_counter_);
}

void SetAssocCache::restore(ckpt::Reader& r) {
  for (Way& way : ways_) {
    way.valid = r.get8() != 0;
    way.dirty = r.get8() != 0;
    way.tag = r.get64();
    way.lru = r.get64();
  }
  use_counter_ = r.get64();
}

bool SetAssocCache::invalidate_line(u64 line_addr) {
  const u32 set = set_of(line_addr);
  const u64 tag = tag_of(line_addr);
  Way* base = &ways_[static_cast<size_t>(set) * assoc_];
  for (u32 w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      const bool dirty = base[w].dirty;
      base[w] = Way{};
      return dirty;
    }
  }
  return false;
}

}  // namespace higpu::memsys
