#include "memsys/hierarchy.h"

#include <algorithm>

namespace higpu::memsys {

MemHierarchy::MemHierarchy(u32 num_sms, const MemParams& params)
    // Reject nonsensical geometry before any member computes with it
    // (lines_per_row_ divides by line_bytes; the DRAM model subtracts the
    // row latencies): validate() throws std::invalid_argument.
    : params_((validate(params), params)),
      lines_per_row_(params.dram_row_bytes / params.line_bytes),
      l2_(params.l2_size, params.l2_assoc, params.line_bytes),
      l1_port_free_(num_sms, 0),
      l2_bank_free_(params.l2_banks, 0),
      dram_channel_free_(params.dram_channels, 0),
      dram_banks_(static_cast<size_t>(params.dram_channels) *
                  params.dram_banks_per_channel),
      mshr_(num_sms) {
  l1_.reserve(num_sms);
  for (u32 i = 0; i < num_sms; ++i)
    l1_.emplace_back(params.l1_size, params.l1_assoc, params.line_bytes);
}

void MemHierarchy::set_obs_tracer(obs::Tracer* t) {
  obs_ = t;
  obs_dram_track_ = 0;
  obs_mshr_tracks_.clear();
  if (t == nullptr) return;
  obs_dram_track_ = t->track("dram", obs::kPidDevice);
  obs_mshr_tracks_.reserve(mshr_.size());
  for (size_t i = 0; i < mshr_.size(); ++i)
    obs_mshr_tracks_.push_back(
        t->track("mshr.sm" + std::to_string(i), obs::kPidDevice));
}

void MemHierarchy::reset() {
  for (auto& c : l1_) c.clear();
  l2_.clear();
  std::fill(l1_port_free_.begin(), l1_port_free_.end(), 0);
  std::fill(l2_bank_free_.begin(), l2_bank_free_.end(), 0);
  std::fill(dram_channel_free_.begin(), dram_channel_free_.end(), 0);
  std::fill(dram_banks_.begin(), dram_banks_.end(), DramBank{});
  for (auto& m : mshr_) m.clear();
  l1_hits_ = l1_misses_ = 0;
  l1_write_hits_ = l1_write_misses_ = 0;
  l1_mshr_merges_ = l1_writebacks_ = 0;
  l1_mshr_stalls_ = l1_mshr_stall_cycles_ = 0;
  l1_write_through_ = 0;
  l2_hits_ = l2_misses_ = 0;
  dram_reads_ = dram_writebacks_ = 0;
  dram_row_hits_ = dram_row_misses_ = 0;
  atomics_ = 0;
}

StatSet MemHierarchy::stats() const {
  StatSet s;
  // Counters appear only once nonzero, mirroring StatSet entries that were
  // created on first add().
  auto put = [&s](const char* name, u64 v) {
    if (v) s.add(name, v);
  };
  put("l1_hits", l1_hits_);
  put("l1_misses", l1_misses_);
  put("l1_write_hits", l1_write_hits_);
  put("l1_write_misses", l1_write_misses_);
  put("l1_mshr_merges", l1_mshr_merges_);
  put("l1_mshr_stalls", l1_mshr_stalls_);
  put("l1_mshr_stall_cycles", l1_mshr_stall_cycles_);
  put("l1_write_through", l1_write_through_);
  put("l1_writebacks", l1_writebacks_);
  put("l2_hits", l2_hits_);
  put("l2_misses", l2_misses_);
  put("dram_reads", dram_reads_);
  put("dram_writebacks", dram_writebacks_);
  put("dram_row_hits", dram_row_hits_);
  put("dram_row_misses", dram_row_misses_);
  put("atomics", atomics_);
  return s;
}

Cycle MemHierarchy::dram_access(u64 line_addr, Cycle when, bool is_write) {
  const u32 ch = static_cast<u32>(line_addr % params_.dram_channels);
  // Lines stripe across channels; within a channel, `lines_per_row_`
  // consecutive lines share a row. The row index is hashed into the bank
  // index (a bank-permutation scheme, as real controllers use) so streams
  // at power-of-two offsets spread across banks instead of thrashing one —
  // row-locality for streaming, bank-level parallelism across streams.
  const u64 row = (line_addr / params_.dram_channels) / lines_per_row_;
  const size_t bank_idx =
      static_cast<size_t>(ch) * params_.dram_banks_per_channel +
      (row * 0x9E3779B97F4A7C15ull >> 32) % params_.dram_banks_per_channel;
  DramBank& bank = dram_banks_[bank_idx];
  const Cycle start =
      std::max({when, dram_channel_free_[ch], bank.busy_until});
  const bool row_hit = bank.open_row == row;
  (row_hit ? dram_row_hits_ : dram_row_misses_) += 1;
  bank.open_row = row;
  const Cycle done = start + (row_hit ? params_.dram_row_hit_latency
                                      : params_.dram_row_miss_latency);
  dram_channel_free_[ch] = start + params_.dram_service;  // data-bus slot
  // Bank occupancy: one service slot, plus the precharge/activate overhead
  // on a row switch. Row hits stream at bus rate; row thrash serializes.
  bank.busy_until =
      start + params_.dram_service +
      (row_hit ? 0 : params_.dram_row_miss_latency - params_.dram_row_hit_latency);
  (is_write ? dram_writebacks_ : dram_reads_) += 1;
  if (obs_ != nullptr)
    obs_->emit(obs_dram_track_, obs::Ev::kDramBank, start,
               bank.busy_until - start, bank_idx, row);
  return done;
}

void MemHierarchy::writeback_to_l2(u64 line_addr, Cycle when) {
  // Consumes L2 bank bandwidth only (off the evicting access's critical
  // path). Installing the victim may in turn evict a dirty L2 line, which
  // cascades to a DRAM writeback.
  const u32 bank = static_cast<u32>(line_addr % params_.l2_banks);
  l2_bank_free_[bank] =
      std::max(l2_bank_free_[bank], when) + params_.l2_service;
  const CacheAccessResult res = l2_.access(line_addr, /*is_write=*/true);
  if (res.writeback_line) dram_access(*res.writeback_line, when, true);
  l1_writebacks_ += 1;
}

Cycle MemHierarchy::access_l2(u64 line_addr, bool is_write, Cycle now,
                              bool is_atomic) {
  const u32 bank = static_cast<u32>(line_addr % params_.l2_banks);
  const u32 service =
      params_.l2_service + (is_atomic ? params_.atomic_extra : 0);
  const Cycle start = std::max(now, l2_bank_free_[bank]);
  l2_bank_free_[bank] = start + service;

  const CacheAccessResult res = l2_.access(line_addr, is_write || is_atomic);
  if (res.writeback_line) {
    // Dirty eviction: consumes DRAM bandwidth but is off the critical path.
    dram_access(*res.writeback_line, start, true);
  }
  if (res.hit) {
    l2_hits_ += 1;
    return start + params_.l2_latency;
  }
  l2_misses_ += 1;
  return dram_access(line_addr, start, false);
}

void MemHierarchy::remove_entry(u32 sm, size_t idx) {
  auto& mshr = mshr_[sm];
  mshr[idx] = mshr.back();
  mshr.pop_back();
}

void MemHierarchy::fill_and_remove(u32 sm, size_t idx) {
  const MshrEntry e = mshr_[sm][idx];
  remove_entry(sm, idx);
  if (obs_ != nullptr)
    obs_->instant(obs_mshr_tracks_[sm], obs::Ev::kMshrFill, e.ready, e.line,
                  e.fill_dirty);
  // The fill installs the line at its completion cycle; a dirty victim's
  // writeback is charged at that same cycle (it leaves with the fill).
  const CacheAccessResult res = l1_[sm].access(e.line, e.fill_dirty);
  if (res.writeback_line) writeback_to_l2(*res.writeback_line, e.ready);
}

size_t MemHierarchy::earliest_entry(const std::vector<MshrEntry>& mshr) {
  size_t best = 0;
  for (size_t i = 1; i < mshr.size(); ++i) {
    if (mshr[i].ready < mshr[best].ready ||
        (mshr[i].ready == mshr[best].ready && mshr[i].line < mshr[best].line))
      best = i;
  }
  return best;
}

void MemHierarchy::reap_expired(u32 sm, Cycle now) {
  auto& mshr = mshr_[sm];
  // Fill in completion order so the L1's LRU state reflects arrival times.
  while (!mshr.empty()) {
    const size_t best = earliest_entry(mshr);
    if (mshr[best].ready > now) return;
    fill_and_remove(sm, best);
  }
}

MemResponse MemHierarchy::access_line(u32 sm, u64 line_addr, bool is_write,
                                      Cycle now) {
  // The cycles returned here are final (the event-driven contract in the
  // header): all contention is resolved now, against the bandwidth counters
  // as of `now`, so the caller can sleep until them without re-checking.
  // L1 port: one line transaction per cycle per SM.
  const Cycle t = std::max(now, l1_port_free_[sm]);
  const bool write_through =
      params_.l1_write_policy == WritePolicy::kWriteThrough;

  auto& mshr = mshr_[sm];
  reap_expired(sm, t);

  // Merge into an in-flight fill (MSHR hit): no new fetch traffic.
  for (MshrEntry& e : mshr) {
    if (e.line != line_addr) continue;  // reap left only entries ready > t
    l1_mshr_merges_ += 1;
    Cycle done = e.ready;
    if (is_write) {
      if (write_through) {
        // The store still goes through to the L2; the fill stays clean.
        done = access_l2(line_addr, true, t + params_.l1_latency, false);
        l1_write_through_ += 1;
      } else {
        // Retire the store into the arriving line: the fill installs it
        // dirty. The tag array is not touched until the fill completes.
        e.fill_dirty = true;
      }
    }
    l1_port_free_[sm] = t + 1;
    return {done, t + 1};
  }

  // L1 tag lookup. Hits refresh LRU (and dirtiness under write-back);
  // misses never fill here — lines enter the L1 only via MSHR completion.
  if (l1_[sm].touch(line_addr, is_write && !write_through)) {
    (is_write ? l1_write_hits_ : l1_hits_) += 1;
    Cycle done = t + params_.l1_latency;
    if (is_write && write_through) {
      done = access_l2(line_addr, true, t + params_.l1_latency, false);
      l1_write_through_ += 1;
    }
    l1_port_free_[sm] = t + 1;
    return {done, t + 1};
  }
  (is_write ? l1_write_misses_ : l1_misses_) += 1;

  // Reads always allocate; writes allocate per the L1 policy.
  const bool allocate =
      !is_write || params_.l1_write_alloc == WriteAlloc::kAllocate;

  Cycle issue = t;
  if (allocate && mshr.size() >= params_.l1_mshr_entries) {
    // MSHR full: the access occupies the L1 port until the earliest
    // in-flight fill frees its entry, then proceeds as a tracked miss.
    const size_t idx = earliest_entry(mshr);
    issue = mshr[idx].ready;  // > t, otherwise reap would have taken it
    l1_mshr_stalls_ += 1;
    l1_mshr_stall_cycles_ += issue - t;
    fill_and_remove(sm, idx);
  }
  l1_port_free_[sm] = issue + 1;

  if (is_write && (write_through || !allocate)) {
    // The store itself resolves at the L2.
    const Cycle done =
        access_l2(line_addr, true, issue + params_.l1_latency, false);
    l1_write_through_ += 1;
    if (allocate) {  // WT + write-allocate: the same transaction fills the L1
      mshr.push_back(MshrEntry{line_addr, done, false});
      if (obs_ != nullptr)
        obs_->instant(obs_mshr_tracks_[sm], obs::Ev::kMshrAlloc, issue,
                      line_addr, done);
    }
    return {done, issue + 1};
  }

  // Read miss, or write-back/write-allocate store miss: fetch the line.
  // The fetch is a read at the L2 (the dirty data lives in the L1 until
  // eviction); the store retires when the line arrives.
  const Cycle ready =
      access_l2(line_addr, false, issue + params_.l1_latency, false);
  mshr.push_back(MshrEntry{line_addr, ready, is_write});
  if (obs_ != nullptr)
    obs_->instant(obs_mshr_tracks_[sm], obs::Ev::kMshrAlloc, issue, line_addr,
                  ready);
  return {ready, issue + 1};
}

MemResponse MemHierarchy::access_atomic(u32 sm, u64 line_addr, Cycle now) {
  // Atomics bypass the L1; a stale local copy is invalidated (flushing it
  // to the L2 first when dirty, so the write is not silently dropped).
  const Cycle t = std::max(now, l1_port_free_[sm]);
  l1_port_free_[sm] = t + 1;
  reap_expired(sm, t);
  // Cancel an in-flight fill of this line: the atomic supersedes it, and a
  // later reap must not reinstall a copy the invalidation just removed.
  // (Loads merged on the entry keep their completion cycles — fixed at
  // issue; a merged store's data is functionally visible already.)
  auto& mshr = mshr_[sm];
  for (size_t i = 0; i < mshr.size(); ++i) {
    if (mshr[i].line == line_addr) {
      remove_entry(sm, i);
      break;
    }
  }
  if (l1_[sm].invalidate_line(line_addr)) writeback_to_l2(line_addr, t);
  atomics_ += 1;
  return {access_l2(line_addr, /*is_write=*/true, t, /*is_atomic=*/true),
          t + 1};
}

void MemHierarchy::save(ckpt::Writer& w) const {
  for (size_t i = 0; i < l1_.size(); ++i) {
    w.begin_section("l1[" + std::to_string(i) + "]",
                    l1_[i].set_record_bytes());
    l1_[i].save(w);
    w.end_section();
  }
  w.begin_section("l2", l2_.set_record_bytes());
  l2_.save(w);
  w.end_section();

  // The dram section holds bank records only (fixed 16-byte records), so a
  // snapshot diff maps its first differing byte to a real bank index;
  // channel-bus bandwidth counters live in the bookkeeping section.
  w.begin_section("dram", /*record_size=*/16);
  for (const DramBank& b : dram_banks_) {
    w.put64(b.busy_until);
    w.put64(b.open_row);
  }
  w.end_section();

  w.begin_section("memsys");
  w.put_u64_vec(dram_channel_free_);
  w.put_u64_vec(l1_port_free_);
  w.put_u64_vec(l2_bank_free_);
  w.put64(mshr_.size());
  for (const auto& mshr : mshr_) {
    w.put64(mshr.size());
    for (const MshrEntry& e : mshr) {
      w.put64(e.line);
      w.put64(e.ready);
      w.putb(e.fill_dirty);
    }
  }
  for (u64 c : {l1_hits_, l1_misses_, l1_write_hits_, l1_write_misses_,
                l1_mshr_merges_, l1_writebacks_, l1_mshr_stalls_,
                l1_mshr_stall_cycles_, l1_write_through_, l2_hits_,
                l2_misses_, dram_reads_, dram_writebacks_, dram_row_hits_,
                dram_row_misses_, atomics_})
    w.put64(c);
  w.end_section();
}

void MemHierarchy::restore(ckpt::Reader& r) {
  for (size_t i = 0; i < l1_.size(); ++i) {
    r.enter_section("l1[" + std::to_string(i) + "]");
    l1_[i].restore(r);
    r.leave_section();
  }
  r.enter_section("l2");
  l2_.restore(r);
  r.leave_section();

  r.enter_section("dram");
  for (DramBank& b : dram_banks_) {
    b.busy_until = r.get64();
    b.open_row = r.get64();
  }
  r.leave_section();

  r.enter_section("memsys");
  dram_channel_free_ = r.get_u64_vec();
  l1_port_free_ = r.get_u64_vec();
  l2_bank_free_ = r.get_u64_vec();
  const u64 n_mshr = r.get64();
  if (n_mshr != mshr_.size())
    throw ckpt::SnapshotError("snapshot MSHR array count mismatch");
  for (auto& mshr : mshr_) {
    mshr.resize(static_cast<size_t>(r.get64()));
    for (MshrEntry& e : mshr) {
      e.line = r.get64();
      e.ready = r.get64();
      e.fill_dirty = r.getb();
    }
  }
  for (u64* c : {&l1_hits_, &l1_misses_, &l1_write_hits_, &l1_write_misses_,
                 &l1_mshr_merges_, &l1_writebacks_, &l1_mshr_stalls_,
                 &l1_mshr_stall_cycles_, &l1_write_through_, &l2_hits_,
                 &l2_misses_, &dram_reads_, &dram_writebacks_,
                 &dram_row_hits_, &dram_row_misses_, &atomics_})
    *c = r.get64();
  r.leave_section();
}

}  // namespace higpu::memsys
