// Static verifier tests: every diagnostic code is pinned by an adversarial
// trigger + a structurally similar near-miss that must stay clean, the whole
// workload suite must verify with zero errors, and the Device launch gate
// must refuse erroring programs exactly once per (program, grid, block).
//
// Trigger programs are hand-built through the raw KernelProgram constructor
// on purpose: KernelBuilder::build() would reject most of them, and the
// verifier exists precisely for programs that did not come from the builder
// (fuzzers, future binary loaders, corrupted encodings).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "isa/builder.h"
#include "isa/verify/verify.h"
#include "runtime/device.h"
#include "sched/policies.h"
#include "tests/test_kernels.h"
#include "workloads/workload.h"

namespace higpu {
namespace {

using namespace isa;          // NOLINT: instruction factories below read better
using namespace isa::verify;  // NOLINT

// ---- Raw-instruction factories -----------------------------------------------

Instruction mk(Op op) {
  Instruction i;
  i.op = op;
  return i;
}

Operand R(u16 idx) { return Operand(Reg{idx}); }

Instruction I_exit() { return mk(Op::kExit); }
Instruction I_bar() { return mk(Op::kBar); }

Instruction I_mov(u16 dst, Operand a) {
  Instruction i = mk(Op::kMov);
  i.dst = dst;
  i.src[0] = a;
  return i;
}

Instruction I_iadd(u16 dst, Operand a, Operand b) {
  Instruction i = mk(Op::kIadd);
  i.dst = dst;
  i.src[0] = a;
  i.src[1] = b;
  return i;
}

Instruction I_shl(u16 dst, Operand a, Operand b) {
  Instruction i = mk(Op::kShl);
  i.dst = dst;
  i.src[0] = a;
  i.src[1] = b;
  return i;
}

Instruction I_s2r(u16 dst, SReg s) {
  Instruction i = mk(Op::kS2r);
  i.dst = dst;
  i.sreg = s;
  return i;
}

Instruction I_ldp(u16 dst, Operand index) {
  Instruction i = mk(Op::kLdp);
  i.dst = dst;
  i.src[0] = index;
  return i;
}

Instruction I_setp(i16 p, CmpOp c, Operand a, Operand b) {
  Instruction i = mk(Op::kSetp);
  i.dst = static_cast<u16>(p);
  i.cmp = c;
  i.dtype = DType::kI32;
  i.src[0] = a;
  i.src[1] = b;
  return i;
}

Instruction I_selp(u16 dst, Operand a, Operand b, i16 p) {
  Instruction i = mk(Op::kSelp);
  i.dst = dst;
  i.src[0] = a;
  i.src[1] = b;
  i.pred_src = p;
  return i;
}

Instruction I_bra(Pc target) {
  Instruction i = mk(Op::kBra);
  i.target = target;
  return i;
}

Instruction I_bra_if(Pc target, i16 guard) {
  Instruction i = I_bra(target);
  i.guard = guard;
  return i;
}

Instruction I_sts(Operand addr, Operand value, i32 offset = 0) {
  Instruction i = mk(Op::kSts);
  i.src[0] = addr;
  i.src[1] = value;
  i.mem_offset = offset;
  return i;
}

Instruction I_stg(Operand addr, Operand value) {
  Instruction i = mk(Op::kStg);
  i.src[0] = addr;
  i.src[1] = value;
  return i;
}

/// Hand-built program; the raw constructor never validates.
KernelProgram prog(std::vector<Instruction> code, u16 nregs = 4,
                   u16 npreds = 2, u32 shared = 0, u32 nparams = 0) {
  return KernelProgram("t", std::move(code), nregs, npreds, shared, nparams);
}

/// Unqualified `verify` is ambiguous here (the function vs. the namespace
/// `isa::verify` pulled in by `using namespace isa`); alias it once.
Result vrun(const KernelProgram& p, const LaunchBounds& lb = {}) {
  return isa::verify::verify(p, lb);
}

// ---- Pass 1: structural ---------------------------------------------------

TEST(VerifyStructural, EmptyProgramIsAnError) {
  const Result r = vrun(prog({}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kEmptyProgram));
}

TEST(VerifyStructural, SingleExitIsClean) {
  const Result r = vrun(prog({I_exit()}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.diags.empty());
}

TEST(VerifyStructural, BranchTargetOutsideProgram) {
  const Result r = vrun(prog({I_bra(5), I_exit()}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBadBranchTarget));
}

TEST(VerifyStructural, BranchToLastInstructionIsClean) {
  const Result r = vrun(prog({I_bra(1), I_exit()}));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kBadBranchTarget));
}

TEST(VerifyStructural, FallOffEnd) {
  const Result r = vrun(prog({I_mov(0, imm(1))}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kFallOffEnd));
}

TEST(VerifyStructural, ExitTerminatedProgramIsClean) {
  const Result r = vrun(prog({I_mov(0, imm(1)), I_exit()}));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kFallOffEnd));
}

TEST(VerifyStructural, InfiniteSelfLoopNeverReachesExit) {
  const Result r = vrun(prog({I_bra(0)}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kNoPathToExit));
}

TEST(VerifyStructural, LoopWithGuardedEscapeIsClean) {
  // r0 = 0; do { p0 = r0 >= 3; if (p0) break; } while (true); exit
  const Result r = vrun(prog({
      I_mov(0, imm(0)),
      I_setp(0, CmpOp::kGe, R(0), imm(3)),
      I_bra_if(4, 0),
      I_bra(1),
      I_exit(),
  }));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kNoPathToExit));
}

TEST(VerifyStructural, DeadCodeAfterUnguardedBranchWarns) {
  const Result r = vrun(prog({I_bra(2), I_mov(0, imm(1)), I_exit()}));
  EXPECT_TRUE(r.ok());  // a warning, not an error
  EXPECT_TRUE(r.has(Code::kUnreachableCode));
}

TEST(VerifyStructural, GuardedBranchKeepsFallthroughReachable) {
  const Result r = vrun(prog({
      I_setp(0, CmpOp::kEq, imm(0), imm(0)),
      I_bra_if(3, 0),
      I_mov(0, imm(1)),
      I_exit(),
  }));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kUnreachableCode));
}

TEST(VerifyStructural, GuardedExitIsAnError) {
  std::vector<Instruction> code{I_setp(0, CmpOp::kEq, imm(0), imm(0)),
                                I_exit()};
  code[1].guard = 0;
  const Result r = vrun(prog(std::move(code)));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kGuardedExitOrBar));
}

TEST(VerifyStructural, GuardedBarrierIsAnError) {
  std::vector<Instruction> code{I_setp(0, CmpOp::kEq, imm(0), imm(0)),
                                I_bar(), I_exit()};
  code[1].guard = 0;
  const Result r = vrun(prog(std::move(code)));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kGuardedExitOrBar));
}

TEST(VerifyStructural, UnguardedBarrierIsClean) {
  const Result r = vrun(prog({I_bar(), I_exit()}));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kGuardedExitOrBar));
}

TEST(VerifyStructural, MissingSourceOperand) {
  Instruction add = mk(Op::kIadd);  // no sources at all
  add.dst = 0;
  add.src[0] = imm(1);
  const Result r = vrun(prog({add, I_exit()}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBadOperand));
}

TEST(VerifyStructural, DistinctDefectsAtOnePcAllSurface) {
  // A bare iadd has three distinct kBadOperand defects at pc 0: missing
  // source 0, missing source 1, and no destination. The (pc, code, message)
  // dedup key must keep them apart instead of collapsing them into one.
  const Result r = vrun(prog({mk(Op::kIadd), I_exit()}));
  EXPECT_FALSE(r.ok());
  u32 bad_operands = 0;
  for (const Diag& d : r.diags)
    if (d.pc == 0 && d.code == Code::kBadOperand) ++bad_operands;
  EXPECT_EQ(bad_operands, 3u);
}

TEST(VerifyStructural, MissingDestination) {
  Instruction add = mk(Op::kIadd);
  add.src[0] = imm(1);
  add.src[1] = imm(2);  // dst left as kNoReg
  const Result r = vrun(prog({add, I_exit()}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBadOperand));
}

TEST(VerifyStructural, SelpWithoutPredicateSource) {
  const Result r = vrun(prog({I_selp(0, imm(1), imm(2), kNoPred), I_exit()}));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBadOperand));
}

TEST(VerifyStructural, CompleteArithmeticIsClean) {
  const Result r = vrun(prog({I_iadd(0, imm(1), imm(2)), I_exit()}));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kBadOperand));
}

TEST(VerifyStructural, LdpIndexBeyondDeclaredParams) {
  const Result r =
      vrun(prog({I_ldp(0, imm(2)), I_exit()}, 4, 2, 0, /*nparams=*/1));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBadParamIndex));
}

TEST(VerifyStructural, LdpRegisterIndexIsAnError) {
  const Result r =
      vrun(prog({I_mov(1, imm(0)), I_ldp(0, R(1)), I_exit()}, 4, 2, 0, 1));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBadParamIndex));
}

TEST(VerifyStructural, LdpLastDeclaredParamIsClean) {
  const Result r = vrun(prog({I_ldp(0, imm(0)), I_exit()}, 4, 2, 0, 1));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kBadParamIndex));
}

// ---- Pass 2: resource bounds -----------------------------------------------

TEST(VerifyResource, RegisterWriteBeyondFile) {
  const Result r = vrun(prog({I_mov(7, imm(0)), I_exit()}, /*nregs=*/4));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kRegOutOfRange));
}

TEST(VerifyResource, RegisterReadBeyondFile) {
  const Result r = vrun(prog({I_mov(0, R(9)), I_exit()}, /*nregs=*/4));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kRegOutOfRange));
}

TEST(VerifyResource, HighestDeclaredRegisterIsClean) {
  const Result r = vrun(prog({I_mov(3, imm(0)), I_exit()}, /*nregs=*/4));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kRegOutOfRange));
}

TEST(VerifyResource, PredicateWriteBeyondFile) {
  // The PR-6 defect class: setp into a predicate slot past the file, which
  // NDEBUG builds used to execute as a silent neighbor-state overwrite.
  const Result r = vrun(
      prog({I_setp(5, CmpOp::kEq, imm(0), imm(0)), I_exit()}, 4, /*npreds=*/2));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kPredOutOfRange));
}

TEST(VerifyResource, GuardPredicateBeyondFile) {
  const Result r = vrun(prog({I_setp(0, CmpOp::kEq, imm(0), imm(0)),
                                I_bra_if(2, /*guard=*/7), I_exit()},
                               4, /*npreds=*/2));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kPredOutOfRange));
}

TEST(VerifyResource, HighestDeclaredPredicateIsClean) {
  const Result r = vrun(
      prog({I_setp(1, CmpOp::kEq, imm(0), imm(0)), I_exit()}, 4, /*npreds=*/2));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kPredOutOfRange));
}

TEST(VerifyResource, UnsafeToExecuteClassification) {
  // Reg-file overflow would index host memory out of bounds at runtime
  // (unchecked Warp::reg_at): unsafe in every build.
  EXPECT_TRUE(
      vrun(prog({I_mov(7, imm(0)), I_exit()}, /*nregs=*/4)).unsafe_to_execute());
  // An uninit read is wrong but executes within bounds (registers are
  // zero-initialized): merely-wrong, so kWarn may launch it.
  const Result uninit = vrun(prog({I_mov(0, R(1)), I_exit()}, /*nregs=*/2));
  EXPECT_FALSE(uninit.ok());
  EXPECT_FALSE(uninit.unsafe_to_execute());
  EXPECT_FALSE(vrun(prog({I_mov(0, imm(0)), I_exit()})).unsafe_to_execute());
}

// ---- Pass 3: dataflow -------------------------------------------------------

TEST(VerifyDataflow, ReadOfNeverWrittenRegister) {
  const Result r = vrun(prog({I_mov(0, R(1)), I_exit()}, /*nregs=*/2));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kUninitRegRead));
}

TEST(VerifyDataflow, ReadAfterWriteIsClean) {
  const Result r =
      vrun(prog({I_mov(1, imm(0)), I_mov(0, R(1)), I_exit()}, /*nregs=*/2));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kUninitRegRead));
}

TEST(VerifyDataflow, ReadOfNeverWrittenPredicate) {
  const Result r =
      vrun(prog({I_selp(0, imm(1), imm(2), 0), I_exit()}, 4, /*npreds=*/1));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kUninitPredRead));
}

TEST(VerifyDataflow, GuardOnNeverWrittenPredicate) {
  const Result r = vrun(prog({I_bra_if(1, 0), I_exit()}, 4, /*npreds=*/1));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kUninitPredRead));
}

TEST(VerifyDataflow, PredicateReadAfterSetpIsClean) {
  const Result r = vrun(prog({I_setp(0, CmpOp::kEq, imm(0), imm(0)),
                                I_selp(0, imm(1), imm(2), 0), I_exit()},
                               4, /*npreds=*/1));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has(Code::kUninitPredRead));
}

TEST(VerifyDataflow, WriteOnOnePathOnlyWarns) {
  // if (p0) goto 3; r0 = 1; 3: r1 = r0  <- r0 unset when the branch is taken
  const Result r = vrun(prog({
      I_setp(0, CmpOp::kEq, imm(0), imm(0)),
      I_bra_if(3, 0),
      I_mov(0, imm(1)),
      I_mov(1, R(0)),
      I_exit(),
  }, /*nregs=*/2, /*npreds=*/1));
  EXPECT_TRUE(r.ok());  // a warning: some path does initialize it
  EXPECT_TRUE(r.has(Code::kMaybeUninitRead));
}

TEST(VerifyDataflow, WriteBeforeBranchOnAllPathsIsClean) {
  const Result r = vrun(prog({
      I_mov(0, imm(0)),
      I_setp(0, CmpOp::kEq, imm(0), imm(0)),
      I_bra_if(4, 0),
      I_mov(0, imm(1)),
      I_mov(1, R(0)),
      I_exit(),
  }, /*nregs=*/2, /*npreds=*/1));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kMaybeUninitRead));
}

// ---- Pass 4: barrier safety ---------------------------------------------------

TEST(VerifyBarrier, BarrierUnderTidDivergentBranchDeadlocks) {
  // if (tid < 5) goto 4; bar; 4: exit  -> only some lanes arrive at the bar.
  const Result r = vrun(prog({
      I_s2r(0, SReg::kTidX),
      I_setp(0, CmpOp::kLt, R(0), imm(5)),
      I_bra_if(4, 0),
      I_bar(),
      I_exit(),
  }));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBarrierDivergence));
}

TEST(VerifyBarrier, BarrierUnderUniformBranchIsClean) {
  // Identical shape, but the guard derives from an immediate: every thread
  // of the block computes the same predicate, so the branch is uniform.
  const Result r = vrun(prog({
      I_mov(0, imm(3)),
      I_setp(0, CmpOp::kLt, R(0), imm(5)),
      I_bra_if(4, 0),
      I_bar(),
      I_exit(),
  }));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kBarrierDivergence));
}

TEST(VerifyBarrier, BarrierAtReconvergencePointIsClean) {
  // The branch is tid-divergent, but the bar sits at the IPDOM block where
  // every lane has reconverged — the canonical guarded-work-then-sync shape.
  const Result r = vrun(prog({
      I_s2r(0, SReg::kTidX),
      I_setp(0, CmpOp::kLt, R(0), imm(5)),
      I_bra_if(4, 0),
      I_mov(1, imm(1)),
      I_bar(),
      I_exit(),
  }));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kBarrierDivergence));
}

TEST(VerifyBarrier, TaintPropagatesThroughArithmetic) {
  // The guard is derived from tid through two ALU hops.
  const Result r = vrun(prog({
      I_s2r(0, SReg::kTidX),
      I_iadd(1, R(0), imm(7)),
      I_shl(2, R(1), imm(1)),
      I_setp(0, CmpOp::kLt, R(2), imm(64)),
      I_bra_if(6, 0),
      I_bar(),
      I_exit(),
  }));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kBarrierDivergence));
}

// ---- Pass 5: memory bounds ----------------------------------------------------

TEST(VerifyMemory, StoreEntirelyOutsideSharedSegment) {
  const Result r = vrun(
      prog({I_sts(imm(32), imm(1)), I_exit()}, 4, 2, /*shared=*/16));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kSharedOutOfBounds));
}

TEST(VerifyMemory, LastWordOfSharedSegmentIsClean) {
  const Result r = vrun(
      prog({I_sts(imm(12), imm(1)), I_exit()}, 4, 2, /*shared=*/16));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kSharedOutOfBounds));
}

TEST(VerifyMemory, TidScaledAddressCanOverrunSharedSegment) {
  // addr = tid * 4 with blockDim.x = 8 covers [0, 28]; a 16-byte segment
  // holds only the first four lanes -> partial overrun, warning severity.
  LaunchBounds lb;
  lb.ntid_x = 8;
  const Result r = vrun(prog({
      I_s2r(0, SReg::kTidX),
      I_shl(1, R(0), imm(2)),
      I_sts(R(1), imm(1)),
      I_exit(),
  }, 4, 2, /*shared=*/16), lb);
  EXPECT_TRUE(r.ok());  // some lanes are in bounds: warning, not error
  EXPECT_TRUE(r.has(Code::kSharedMaybeOutOfBounds));
}

TEST(VerifyMemory, TidScaledAddressInsideSegmentIsClean) {
  LaunchBounds lb;
  lb.ntid_x = 8;
  const Result r = vrun(prog({
      I_s2r(0, SReg::kTidX),
      I_shl(1, R(0), imm(2)),
      I_sts(R(1), imm(1)),
      I_exit(),
  }, 4, 2, /*shared=*/32), lb);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kSharedMaybeOutOfBounds));
}

TEST(VerifyMemory, GlobalStoreBeyondDeclaredExtent) {
  LaunchBounds lb;
  lb.global_extent = 512;
  const Result r = vrun(
      prog({I_mov(0, imm(1000)), I_stg(R(0), imm(7)), I_exit()}), lb);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(Code::kGlobalOutOfBounds));
}

TEST(VerifyMemory, GlobalStoreInsideExtentIsClean) {
  LaunchBounds lb;
  lb.global_extent = 2048;
  const Result r = vrun(
      prog({I_mov(0, imm(1000)), I_stg(R(0), imm(7)), I_exit()}), lb);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_FALSE(r.has(Code::kGlobalOutOfBounds));
}

// ---- Reports --------------------------------------------------------------------

TEST(VerifyReport, JsonCarriesStructuredDiagnostics) {
  const Result r = vrun(prog({I_mov(7, imm(0)), I_exit()}, /*nregs=*/4));
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"kernel\":\"t\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"ok\":false"), std::string::npos) << j;
  EXPECT_NE(j.find("\"code\":\"reg-out-of-range\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"severity\":\"error\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"pc\":0"), std::string::npos) << j;
}

TEST(VerifyReport, CleanProgramJsonIsOkWithNoDiags) {
  const Result r = vrun(prog({I_exit()}));
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"ok\":true"), std::string::npos) << j;
  EXPECT_NE(j.find("\"diags\":[]"), std::string::npos) << j;
}

TEST(VerifyReport, DiagnosticsAreSortedByPc) {
  const Result r = vrun(prog({I_mov(9, imm(0)), I_mov(0, R(8)), I_exit()},
                               /*nregs=*/4));
  ASSERT_GE(r.diags.size(), 2u);
  for (size_t i = 1; i < r.diags.size(); ++i)
    EXPECT_LE(r.diags[i - 1].pc, r.diags[i].pc);
}

// ---- KernelBuilder resource accounting -------------------------------------

TEST(BuilderCounts, MatchAllocations) {
  KernelBuilder kb("counts");
  Reg a = kb.reg(), b = kb.reg();
  PredReg p = kb.pred();
  EXPECT_EQ(kb.reg_count(), 2u);
  EXPECT_EQ(kb.pred_count(), 1u);
  kb.mov(a, imm(1));
  kb.mov(b, imm(2));
  kb.setp(p, CmpOp::kEq, DType::kI32, a, b);
  kb.exit();
  const ProgramPtr prog = kb.build();
  EXPECT_EQ(prog->num_regs(), 2u);
  EXPECT_EQ(prog->num_preds(), 1u);
}

TEST(BuilderCounts, RaisedByHandEditedInstructionFields) {
  // Workloads occasionally post-edit emitted instructions; build() must
  // size the register files by what the code references, not just by the
  // allocator's high-water mark — otherwise the launch gate (correctly)
  // refuses the program as out-of-range.
  KernelBuilder kb("hand_edit");
  Reg a = kb.reg();
  kb.mov(a, imm(0)).dst = 7;
  kb.mov(a, imm(1));  // keep r0 written too
  kb.exit();
  const ProgramPtr prog = kb.build();
  EXPECT_EQ(prog->num_regs(), 8u);
  EXPECT_TRUE(vrun(*prog).ok());
}

TEST(BuilderCounts, RegisterBudgetOverflowThrows) {
  KernelBuilder kb("overflow");
  for (int i = 0; i < 255; ++i) kb.reg();
  EXPECT_THROW(kb.reg(), std::logic_error);
}

TEST(BuilderCounts, PredicateBudgetOverflowThrows) {
  KernelBuilder kb("overflow");
  for (int i = 0; i < 8; ++i) kb.pred();
  EXPECT_THROW(kb.pred(), std::logic_error);
}

// ---- Device launch gate ------------------------------------------------------

ProgramPtr bad_program() {
  // mov r0, r1 with r1 never written: an uninit-read error the gate must
  // refuse, yet harmless enough to execute under kWarn (registers zero-init).
  return std::make_shared<KernelProgram>(
      "bad", std::vector<Instruction>{I_mov(0, R(1)), I_exit()},
      /*num_regs=*/2, /*num_preds=*/1, /*shared=*/0, /*num_params=*/0);
}

sim::KernelLaunch bad_launch() {
  sim::KernelLaunch l;
  l.program = bad_program();
  l.grid = {1, 1, 1};
  l.block = {32, 1, 1};
  return l;
}

TEST(LaunchGate, RefusesErroringProgramWithStructuredReport) {
  runtime::Device dev;
  const sim::KernelLaunch l = bad_launch();
  try {
    dev.launch(l);
    FAIL() << "launch gate let an erroring program through";
  } catch (const VerifyError& e) {
    EXPECT_FALSE(e.result().ok());
    EXPECT_TRUE(e.result().has(Code::kUninitRegRead));
    EXPECT_NE(std::string(e.what()).find("uninit-reg-read"),
              std::string::npos);
  }
  EXPECT_EQ(dev.verify_runs(), 1u);

  // A repeat launch is refused from the memo: no second analysis.
  EXPECT_THROW(dev.launch(l), VerifyError);
  EXPECT_EQ(dev.verify_runs(), 1u);
  EXPECT_EQ(dev.verify_memo_hits(), 1u);
}

TEST(LaunchGate, MemoizesPerProgramGridBlock) {
  runtime::Device dev;
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kDefault));
  const ProgramPtr prog = testing::make_store_kernel();
  const memsys::DevPtr out = dev.malloc(64 * 4);
  const sim::KernelLaunch l = testing::make_launch(prog, 64, 64, {out, 64});

  for (int i = 0; i < 5; ++i) dev.launch(l);
  dev.synchronize();
  EXPECT_EQ(dev.verify_runs(), 1u);       // analysis ran exactly once
  EXPECT_EQ(dev.verify_memo_hits(), 4u);  // the rest were free
  ASSERT_EQ(dev.verify_reports().size(), 1u);
  EXPECT_TRUE(dev.verify_reports()[0].result.ok());

  // A different block shape is a new memo key (block dims feed the
  // analysis' tid intervals), so it costs one more analysis.
  dev.launch(testing::make_launch(prog, 64, 32, {out, 64}));
  dev.synchronize();
  EXPECT_EQ(dev.verify_runs(), 2u);
}

TEST(LaunchGate, RefusedProgramsStayPinnedByTheMemo) {
  // The memo is keyed on the program's address, so every record must own a
  // reference that keeps the program alive: a refused program never reaches
  // the Gpu, making the record its only owner once the caller lets go. If
  // the record held a raw pointer instead, the freed address could be
  // recycled by the next same-size allocation and replay a stale verdict.
  runtime::Device dev;
  sim::KernelLaunch l = bad_launch();
  EXPECT_THROW(dev.launch(l), VerifyError);
  const KernelProgram* raw = l.program.get();
  l.program.reset();  // drop the caller's reference
  ASSERT_EQ(dev.verify_reports().size(), 1u);
  const runtime::Device::VerifyRecord& rec = dev.verify_reports()[0];
  ASSERT_EQ(rec.program.get(), raw);
  EXPECT_EQ(rec.program.use_count(), 1);   // sole owner: lifetime pinned
  EXPECT_EQ(rec.program->name(), "bad");   // still safely dereferenceable

  // A second, freshly allocated program with identical shape and dims must
  // get its own analysis — never a replay of the first program's verdict.
  // (With the first program freed, the allocator would be free to hand its
  // address to this one; pinning makes that impossible.)
  EXPECT_THROW(dev.launch(bad_launch()), VerifyError);
  EXPECT_EQ(dev.verify_runs(), 2u);
  EXPECT_EQ(dev.verify_memo_hits(), 0u);
}

TEST(LaunchGate, WarnModeRecordsWithoutRefusing) {
  sim::GpuParams p;
  p.verify = sim::LaunchVerify::kWarn;
  runtime::Device dev(p);
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kDefault));
  EXPECT_NO_THROW(dev.launch(bad_launch()));
  dev.synchronize();
  ASSERT_EQ(dev.verify_runs(), 1u);
  EXPECT_FALSE(dev.verify_reports()[0].result.ok());
}

TEST(LaunchGate, WarnModeStillRefusesMemoryUnsafePrograms) {
  // kWarn waives merely-wrong programs (see above), not memory-unsafe ones:
  // mov into r7 with only 2 declared registers would write host memory out
  // of bounds through the unchecked Warp::reg_at path in every build, so
  // "warn and launch anyway" is not an option for this defect class.
  sim::GpuParams p;
  p.verify = sim::LaunchVerify::kWarn;
  runtime::Device dev(p);
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kDefault));
  sim::KernelLaunch l;
  l.program = std::make_shared<KernelProgram>(
      "oob", std::vector<Instruction>{I_mov(7, imm(0)), I_exit()},
      /*num_regs=*/2, /*num_preds=*/1, /*shared=*/0, /*num_params=*/0);
  l.grid = {1, 1, 1};
  l.block = {32, 1, 1};
  try {
    dev.launch(l);
    FAIL() << "kWarn launched a memory-unsafe program";
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.result().has(Code::kRegOutOfRange));
    EXPECT_TRUE(e.result().unsafe_to_execute());
  }
}

TEST(LaunchGate, OffModeSkipsAnalysisEntirely) {
  sim::GpuParams p;
  p.verify = sim::LaunchVerify::kOff;
  runtime::Device dev(p);
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kDefault));
  const ProgramPtr prog = testing::make_store_kernel();
  const memsys::DevPtr out = dev.malloc(64 * 4);
  dev.launch(testing::make_launch(prog, 64, 64, {out, 64}));
  dev.synchronize();
  EXPECT_EQ(dev.verify_runs(), 0u);
  EXPECT_EQ(dev.verify_memo_hits(), 0u);
}

TEST(LaunchGate, HostApiMisuseStillThrowsInvalidArgument) {
  // Host-side launch mistakes (no scheduler, missing parameters) are not
  // program defects: they surface as std::invalid_argument from Gpu::launch
  // even in release builds, independent of the static verifier.
  runtime::Device dev;  // no kernel scheduler installed
  const ProgramPtr prog = testing::make_store_kernel();
  EXPECT_THROW(dev.launch(testing::make_launch(prog, 64, 64, {0, 64})),
               std::invalid_argument);

  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kDefault));
  EXPECT_THROW(dev.launch(testing::make_launch(prog, 64, 64, {})),
               std::invalid_argument);  // program declares 2 params
}

// ---- Whole workload suite verifies clean ---------------------------------------

class WorkloadVerifiesClean : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadVerifiesClean, NoErrorDiagnosticsAcrossTheSuite) {
  exp::ScenarioSpec spec;
  spec.workload = GetParam();
  spec.scale = workloads::Scale::kTest;
  spec.seed = 1;
  spec.redundancy = core::RedundancySpec::baseline();

  u64 runs = 0;
  std::string failures;
  const exp::ScenarioResult r = exp::run_scenario(
      spec, 0,
      [&](runtime::Device& dev, workloads::Workload&, core::ExecSession&) {
        runs = dev.verify_runs();
        for (const runtime::Device::VerifyRecord& rec : dev.verify_reports())
          if (!rec.result.ok()) failures += rec.result.to_string();
      });
  // The scenario ran at all (kEnforce is the default: an erroring kernel
  // would have thrown inside run_scenario), produced correct output, and
  // every distinct kernel actually went through the analyzer.
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.verified);
  EXPECT_GE(runs, 1u);
  EXPECT_TRUE(failures.empty()) << failures;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadVerifiesClean,
                         ::testing::ValuesIn(workloads::all_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

}  // namespace
}  // namespace higpu
