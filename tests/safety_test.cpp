// ISO 26262 safety model: ASIL decomposition (Fig. 1), FTTI budgets,
// hardware metrics thresholds, and the kernel-scheduler BIST (§IV.C).
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "safety/asil.h"
#include "safety/bist.h"

namespace higpu::safety {
namespace {

TEST(Asil, Names) {
  EXPECT_STREQ(asil_name(Asil::kQM), "QM");
  EXPECT_STREQ(asil_name(Asil::kD), "ASIL-D");
}

TEST(Asil, Figure1Decompositions) {
  // Left example: ASIL-C = ASIL-A + ASIL-B (independent).
  EXPECT_TRUE(valid_decomposition(Asil::kC, Asil::kA, Asil::kB, true));
  // Middle example: ASIL-D = ASIL-B + ASIL-B — the DCLS pattern this paper
  // brings to GPUs.
  EXPECT_TRUE(valid_decomposition(Asil::kD, Asil::kB, Asil::kB, true));
  // Right example: ASIL-D = ASIL-D monitor + QM operation part.
  EXPECT_TRUE(valid_decomposition(Asil::kD, Asil::kD, Asil::kQM, true));
}

TEST(Asil, DecompositionIsOrderInsensitive) {
  EXPECT_TRUE(valid_decomposition(Asil::kC, Asil::kB, Asil::kA, true));
  EXPECT_TRUE(valid_decomposition(Asil::kD, Asil::kC, Asil::kA, true));
  EXPECT_TRUE(valid_decomposition(Asil::kD, Asil::kA, Asil::kC, true));
}

TEST(Asil, InvalidDecompositionsRejected) {
  EXPECT_FALSE(valid_decomposition(Asil::kD, Asil::kB, Asil::kA, true));
  EXPECT_FALSE(valid_decomposition(Asil::kD, Asil::kA, Asil::kA, true));
  EXPECT_FALSE(valid_decomposition(Asil::kC, Asil::kA, Asil::kA, true));
  EXPECT_FALSE(valid_decomposition(Asil::kB, Asil::kA, Asil::kQM, true));
}

TEST(Asil, IndependenceIsMandatory) {
  // Without freedom from common-cause faults no decomposition credit: this
  // is exactly why redundant kernels need *diverse* scheduling.
  EXPECT_FALSE(valid_decomposition(Asil::kD, Asil::kB, Asil::kB, false));
  EXPECT_FALSE(valid_decomposition(Asil::kC, Asil::kA, Asil::kB, false));
}

TEST(Asil, ComposedAsil) {
  EXPECT_EQ(composed_asil(Asil::kB, Asil::kB, true), Asil::kD);
  EXPECT_EQ(composed_asil(Asil::kA, Asil::kB, true), Asil::kC);
  EXPECT_EQ(composed_asil(Asil::kA, Asil::kA, true), Asil::kB);
  // Dependent redundancy earns nothing beyond the stronger element.
  EXPECT_EQ(composed_asil(Asil::kB, Asil::kB, false), Asil::kB);
}

TEST(Ftti, BudgetArithmetic) {
  FttiBudget b;
  b.detection_ns = 6'000'000;   // 6 ms redundant execution + compare
  b.reaction_ns = 20'000'000;   // 20 ms re-execution
  b.ftti_ns = 100'000'000;      // 100 ms FTTI
  EXPECT_TRUE(b.met());
  EXPECT_EQ(b.response_ns(), 26'000'000u);
  EXPECT_NEAR(b.margin(), 0.74, 1e-9);
  b.ftti_ns = 20'000'000;
  EXPECT_FALSE(b.met());
}

TEST(HwMetrics, AsilThresholds) {
  EXPECT_EQ(max_asil_for({0.995, 0.95}), Asil::kD);
  EXPECT_EQ(max_asil_for({0.98, 0.85}), Asil::kC);
  EXPECT_EQ(max_asil_for({0.92, 0.70}), Asil::kB);
  EXPECT_EQ(max_asil_for({0.50, 0.10}), Asil::kA);
  // LFM shortfall demotes even with a perfect SPFM.
  EXPECT_EQ(max_asil_for({1.00, 0.85}), Asil::kC);
  EXPECT_EQ(max_asil_for({1.00, 0.70}), Asil::kB);
}

TEST(HwMetrics, RequiredMetricsRoundTrip) {
  for (Asil a : {Asil::kB, Asil::kC, Asil::kD}) {
    const HwMetrics m = required_metrics(a);
    EXPECT_EQ(max_asil_for(m), a);
  }
}

TEST(Bist, PassesOnHealthyScheduler) {
  for (sched::Policy p : {sched::Policy::kSrrs, sched::Policy::kHalf}) {
    runtime::Device dev;
    const BistResult r = run_scheduler_bist(dev, p);
    EXPECT_TRUE(r.pass) << sched::policy_name(p);
    EXPECT_GT(r.blocks_checked, 0u);
    EXPECT_EQ(r.placement_violations, 0u);
    EXPECT_EQ(r.diversity_violations, 0u);
    EXPECT_FALSE(r.output_mismatch);
  }
}

TEST(Bist, CatchesSchedulerMappingFault) {
  // A latent scheduler fault (type-(2) of §IV.C): blocks silently placed on
  // the wrong SM. Functionally invisible — the BIST must flag it.
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_scheduler_fault(0, /*sm_offset=*/3);
  dev.gpu().set_fault_hook(&fi);
  const BistResult r = run_scheduler_bist(dev, sched::Policy::kSrrs);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.placement_violations, 0u);
  EXPECT_FALSE(r.output_mismatch);  // outputs are fine: the fault is latent
}

TEST(Bist, CatchesDiversityLossUnderHalf) {
  // Offset of half the SMs maps copy A's partition onto copy B's: blocks
  // land outside their mask and redundant blocks share SMs.
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_scheduler_fault(0, /*sm_offset=*/3);
  dev.gpu().set_fault_hook(&fi);
  const BistResult r = run_scheduler_bist(dev, sched::Policy::kHalf);
  EXPECT_FALSE(r.pass);
}

}  // namespace
}  // namespace higpu::safety
