// Cycle-attribution and host-phase profiling types.
//
// SmCycles is the per-SM breakdown the simulator maintains as it runs:
// every cycle an SM is resident-occupied (its "active" cycles) is
// attributed to exactly one class — it issued at least one instruction, or
// it was fully stalled and the dominant stall class names the cycle. Idle
// cycles (no resident block) are the remainder against the GPU clock, so
// per SM:
//
//   issued + scoreboard + barrier + structural == active
//   active + idle                              == total GPU cycles
//
// The attribution is computed identically by the dense per-cycle loop and
// the event engine's settle_to() fast-forward (pinned by the engine
// equivalence suite — the counters live in SmCore::snapshot_stats()), so
// the profile is deterministic and engine-independent.
//
// HostPhases is the wall-clock side: where a scenario's host time went
// (simulating vs capturing/restoring snapshots). It is diagnostic — wall
// time is never part of the determinism contract — and feeds
// BENCH_obs.json so the ROADMAP's Amdahl split is a measured artifact.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace higpu::obs {

/// Per-SM cycle attribution. All values in GPU cycles.
struct SmCycles {
  u64 issued = 0;      // cycles with at least one instruction issued
  u64 scoreboard = 0;  // fully-stalled cycles dominated by RAW/WAW hazards
  u64 barrier = 0;     // ... dominated by barrier waits
  u64 structural = 0;  // ... dominated by unit/memory structural hazards
  u64 idle = 0;        // cycles with no resident block
  u64 active() const { return issued + scoreboard + barrier + structural; }
  u64 total() const { return active() + idle; }
  bool operator==(const SmCycles& other) const = default;
};

/// Render per-SM attribution as an aligned text table (run_workload
/// --profile). `cycles` is the run's total GPU cycle count.
std::string profile_table(const std::vector<SmCycles>& sms, u64 cycles);

/// Host wall-clock phase split for one device lifetime, in seconds.
struct HostPhases {
  double sim_s = 0.0;      // inside Gpu::run_until_idle
  double snapshot_s = 0.0; // capturing checkpoints/snapshots
  double restore_s = 0.0;  // restoring/rolling back snapshots
};

}  // namespace higpu::obs
