// Unified N-copy redundant execution (paper §IV.A and footnote 1).
//
// One ExecSession covers every redundancy level the paper argues for:
//   n_copies = 1  — plain baseline execution (the Fig. 5 "Baseline"),
//   n_copies = 2  — DCLS-style duplication with host comparison (§IV.A),
//   n_copies >= 3 — N-modular redundancy with majority voting (footnote 1:
//                   "our approach could be seamlessly extended to other
//                   redundancy levels (e.g. triple modular redundancy)").
//
// The session implements the five-step offload flow on top of a
// runtime::Device:
//   (1) allocate GPU memory for every copy,
//   (2) transfer input data to each copy,
//   (3) launch the N redundant kernels with per-copy scheduling hints
//       (SRRS starting SMs spread around the ring; HALF becomes an N-way
//       SM partition),
//   (4) collect results back to the CPU,
//   (5) compare/vote the outcomes on the (assumed ASIL-D DCLS) host cores.
//
// What to do about a disagreement is part of the same value: a
// RedundancySpec carries the comparison semantics (bitwise / majority vote /
// float tolerance) and the recovery strategy (none / detect-and-retry within
// an FTTI / degrade), so "what does TMR cost vs DCLS+retry" is a spec sweep,
// not new code. Workload bodies are written once against ExecSession and run
// unchanged at any N.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/device.h"
#include "safety/asil.h"
#include "sched/policies.h"

namespace higpu::core {

/// How many copies to run, how to compare them, and how to react — the
/// entire redundancy configuration as a sweepable value.
struct RedundancySpec {
  enum class Compare {
    kBitwise,       // all copies must agree bit-exactly (DCLS semantics)
    kMajorityVote,  // per-word strict majority wins; dissenters out-voted
    kTolerance,     // float compare within `tolerance` (abs + rel)
  };
  enum class Recovery {
    kNone,     // report only
    kRetry,    // detect -> re-execute (up to max_retries) within the FTTI
    kRollback, // detect -> restore the last clean device checkpoint and
               // re-execute only from there (up to max_retries rollbacks);
               // cheaper than kRetry exactly when the FTTI is tightest
    kDegrade,  // detect -> flag degraded-mode transition, no re-execution
  };

  /// Sentinel for "pick a diverse start automatically".
  static constexpr u32 kAuto = 0xFFFFFFFF;

  /// 1 = baseline, 2 = DCLS, >= 3 = NMR.
  u32 n_copies = 2;
  Compare compare = Compare::kBitwise;
  /// kTolerance: |a-b| <= tolerance * max(1, |a|, |b|) counts as agreement.
  float tolerance = 0.0f;
  /// Diversity hints: per-copy SRRS starting SMs. Missing / kAuto entries
  /// resolve to an even spread around the SM ring ((c * num_sms) / n), which
  /// reproduces the classic DCLS defaults {0, num_sms/2} at n = 2.
  std::vector<u32> srrs_starts;
  Recovery recovery = Recovery::kNone;
  /// kRetry: additional executions allowed after the first detection.
  /// kRollback: rollback attempts, walking checkpoints newest to oldest.
  u32 max_retries = 2;
  /// The item's Fault-Tolerant Time Interval, nanoseconds (FTTI verdicts).
  u64 ftti_ns = 100'000'000;

  // ---- Common configurations ----------------------------------------------
  static RedundancySpec baseline();
  /// The paper's DCLS pair: 2 copies, bitwise comparison.
  static RedundancySpec dcls();
  /// DCLS with detect-and-retry (fail-operational DMR, footnote 1).
  static RedundancySpec dcls_retry(u32 max_retries = 2,
                                   u64 ftti_ns = 100'000'000);
  /// DCLS with checkpoint-rollback recovery: on a detected miscompare the
  /// session restores the last clean device checkpoint (captured before the
  /// kernels ran, or mid-run under an interval CheckpointPolicy) instead of
  /// re-executing the whole offload — no input re-transfer, no replay of
  /// already-completed kernel rounds.
  static RedundancySpec dcls_rollback(u32 max_rollbacks = 2,
                                      u64 ftti_ns = 100'000'000);
  /// N-modular redundancy with majority voting (n >= 3; n = 3 is TMR —
  /// voting needs a strict majority, use dcls() for pairs).
  static RedundancySpec nmr(u32 n);
  static RedundancySpec tmr() { return nmr(3); }

  bool redundant() const { return n_copies >= 2; }
  /// SRRS start SM for copy `c`, resolving kAuto / missing entries.
  u32 srrs_start_of(u32 c, u32 num_sms) const;

  /// Stable label fragment: "base", "red", "red-retry2", "red-rollback2",
  /// "tmr-vote", "nmr5-vote", "red-tol0.0001" (+"-retryN"/"-rollbackN"/
  /// "-degrade" recovery suffix).
  std::string label() const;

  /// Throws std::invalid_argument naming the offending field: zero/huge
  /// copy counts, vote with < 3 copies, tolerance without kTolerance (and
  /// vice versa), SRRS starts outside the GPU or colliding after kAuto
  /// resolution (no spatial diversity), HALF partitions needing more SMs
  /// than the GPU has.
  void validate(const sim::GpuParams& gpu, sched::Policy policy) const;

  /// The ASIL reachable by this configuration under ISO 26262-9
  /// decomposition (paper §II/Fig. 1): each copy executes on the COTS GPU,
  /// an ASIL-B capable element; two or more copies compose via
  /// safety::composed_asil(B, B, independent), where independence holds
  /// only when the scheduling policy enforces diversity (SRRS/HALF). A
  /// single copy claims no decomposition credit.
  safety::Asil achieved_asil(sched::Policy policy) const;

  bool operator==(const RedundancySpec& other) const = default;
};

const char* compare_name(RedundancySpec::Compare c);
const char* recovery_name(RedundancySpec::Recovery r);

/// A device allocation replicated across all copies (one entry per copy;
/// baseline sessions hold a single entry).
struct ReplicaPtr {
  std::vector<memsys::DevPtr> copy;

  /// The copy the host application reads back (copy 0).
  memsys::DevPtr primary() const { return copy.empty() ? 0 : copy[0]; }
};

/// Kernel parameter: a replicated buffer or a 32-bit scalar.
struct ReplicaParam {
  bool is_buffer = false;
  ReplicaPtr buf;
  u32 scalar = 0;

  ReplicaParam(const ReplicaPtr& p) : is_buffer(true), buf(p) {}  // NOLINT
  ReplicaParam(u32 v) : scalar(v) {}                              // NOLINT
  ReplicaParam(i32 v) : scalar(static_cast<u32>(v)) {}            // NOLINT
  ReplicaParam(float v) : scalar(f2bits(v)) {}                    // NOLINT
};

/// Outcome of one comparison/vote over a replicated buffer.
struct CompareVerdict {
  /// All copies agreed (bit-exactly, or within tolerance in kTolerance
  /// mode). Trivially true for baseline sessions.
  bool unanimous = false;
  /// A safe output exists: unanimous, or (kMajorityVote) a strict majority
  /// agreed on every word so dissenters were out-voted.
  bool majority = false;
  /// Words where at least one copy dissented.
  u64 dissenting_words = 0;
  /// Words with no strict majority (detected but uncorrectable; any bitwise
  /// or 2-copy disagreement lands here).
  u64 tied_words = 0;
  /// Index of a dissenting copy (first found), or -1.
  i32 faulty_copy = -1;
  /// Strict-majority words where the PRIMARY copy was the out-voted
  /// dissenter. These need repairing into the caller's host data; without
  /// a `host0` destination the majority value is discarded and the
  /// comparison does NOT count as safe.
  u64 primary_dissents = 0;
  /// The caller's host buffer was repaired with the voted majority words.
  bool corrected = false;

  /// Error detected (any disagreement at all).
  bool detected() const { return dissenting_words > 0 || tied_words > 0; }
};

class ExecSession {
 public:
  struct Config {
    sched::Policy policy = sched::Policy::kSrrs;
    RedundancySpec redundancy;
    /// Optional kernel-scheduler override. When set, the session installs
    /// scheduler_factory() instead of sched::make_scheduler(policy) — at
    /// construction AND at the start of every recovery attempt (each attempt
    /// gets fresh scheduler state, exactly as a fresh session would). The
    /// factory must produce schedulers that honour the policy's placement
    /// contract; the serve engine uses it to keep its deadline-aware EDF
    /// scheduler installed across attempts. `policy` still drives the
    /// per-copy SchedHints (SRRS starts / HALF masks) and ASIL accounting.
    std::function<std::unique_ptr<sim::IKernelScheduler>()> scheduler_factory;
  };

  /// Everything a recovery-wrapped execution reports: the fail-operational
  /// verdict plus the safety bookkeeping attached to the session.
  struct Report {
    /// Executions performed (1 = no uncorrectable error on the first try).
    u32 attempts = 0;
    /// A safe output was achieved (all comparisons unanimous or corrected
    /// by majority vote), possibly after re-execution.
    bool success = false;
    /// Recovery::kDegrade engaged: an uncorrectable error was detected and
    /// the item transitions to its degraded mode instead of re-executing.
    bool degraded = false;
    /// Modelled wall-clock of the whole detect/re-execute sequence.
    NanoSec total_ns = 0;
    /// FTTI verdict over the full sequence.
    safety::FttiBudget budget;
    /// RedundancySpec::achieved_asil for this session's configuration.
    safety::Asil asil = safety::Asil::kQM;
  };

  /// Installs the policy's kernel scheduler on the device's GPU. The
  /// redundancy spec must already be validated (ScenarioSpec::validate()
  /// does; direct users can call spec.validate() themselves).
  ExecSession(runtime::Device& dev, Config cfg);

  // ---- Step 1: allocation -------------------------------------------------
  ReplicaPtr alloc(u64 bytes);

  // ---- Step 2: input transfer ---------------------------------------------
  /// Uploads to every copy (n physical transfers).
  void h2d(const ReplicaPtr& dst, const void* src, u64 bytes);

  // ---- Step 3: redundant launch -------------------------------------------
  /// Launches one kernel per copy (stream = copy index) with the policy's
  /// per-copy scheduling hints (SRRS start SM / HALF partition mask).
  void launch(isa::ProgramPtr prog, sim::Dim3 grid, sim::Dim3 block,
              const std::vector<ReplicaParam>& params,
              const std::string& tag = "");

  /// Wait for all launched kernels of every copy. Drains the GPU through
  /// the configured simulation engine (event-driven by default; cycle
  /// counts are engine-independent). Returns GPU cycles consumed
  /// (accumulated into kernel_cycles()).
  Cycle sync();

  // ---- Step 4: result collection ------------------------------------------
  /// Reads back copy 0 (the host-visible result used by the application).
  void d2h(void* dst, const ReplicaPtr& src, u64 bytes);

  // ---- Step 5: comparison / vote ------------------------------------------
  /// Reads back copies 1..n-1 (and copy 0 unless the caller already fetched
  /// it and passes it via `host0`) and compares/votes them on the host per
  /// the spec's Compare mode. In kMajorityVote mode, when a strict majority
  /// exists and `host0` is non-null, dissenting words in `host0` are
  /// repaired with the voted value (fail-operational continuation); an
  /// out-voted PRIMARY copy with no `host0` to repair into counts as
  /// unsafe — the application would keep the wrong data. The
  /// fast path memcmps the copies and enters the word-by-word vote loop
  /// only on mismatch. No-op (unanimous) in baseline mode.
  ///
  /// Lifetime: under Recovery::kRollback the session records (buf, bytes,
  /// host0) and replays the comparison after a rollback — re-fetching the
  /// primary copy into `host0` to repair the application's data — so
  /// `host0` must stay valid until run() returns (pass member storage, not
  /// a stack local; every bundled workload does).
  CompareVerdict compare(const ReplicaPtr& buf, u64 bytes,
                         void* host0 = nullptr);

  // ---- Recovery -----------------------------------------------------------
  /// Run `body` under the spec's Recovery strategy: execute, and if an
  /// uncorrectable disagreement was detected, re-execute (kRetry, up to
  /// max_retries times), roll back to the last clean device checkpoint and
  /// resume from there (kRollback), or flag the degraded-mode transition
  /// (kDegrade). Per-attempt comparison counters reset between attempts (a
  /// retried mismatch that comes back clean is a recovered run);
  /// kernel_cycles and launch groups accumulate across attempts, so the
  /// session's totals are the real cost of the whole response. The FTTI
  /// verdict covers the full detect/re-execute sequence on the device's
  /// modelled timeline.
  ///
  /// kRollback mechanics: the session enables pre-kernel checkpointing on
  /// the device (unless a policy is already set — an interval policy adds
  /// mid-kernel checkpoints, shrinking the re-executed span further),
  /// records every launch and comparison the body performs, and on failure
  /// walks the captured checkpoints newest to oldest: restore, re-enqueue
  /// any launches the restore rolled away, re-drain the GPU, re-fetch the
  /// primary copies into the caller's host buffers, and re-compare. A
  /// checkpoint captured after the fault corrupted state simply fails its
  /// re-comparison and the walk falls back to an older (clean) one.
  ///
  /// Recovery boundary: rollback repairs device state and every
  /// compare()-registered host buffer — but NOT host-side values the body
  /// derived from mid-run d2h fetches (e.g. an accumulator updated per
  /// round from fetched partials); the session cannot re-run host code.
  /// Report::success therefore attests that all *compared* outputs are
  /// safe. Bodies whose application result folds uncompared per-round
  /// fetches into host state should use kRetry (full re-execution) or
  /// compare the buffers the host computation consumes.
  Report run(const std::function<void(ExecSession&)>& body);

  // ---- Results ------------------------------------------------------------
  u32 copies() const { return cfg_.redundancy.n_copies; }
  /// All comparisons of the current attempt were unanimous.
  bool all_unanimous() const { return detections_ == 0; }
  /// Every comparison of the current attempt produced a safe output
  /// (unanimous or majority-corrected) — the retry trigger is !all_safe().
  bool all_safe() const { return failures_ == 0; }
  u32 comparisons() const { return comparisons_; }
  /// Comparisons that detected any disagreement.
  u32 mismatches() const { return detections_; }
  /// First faulty copy identified across all comparisons, or -1.
  i32 faulty_copy() const { return faulty_copy_; }
  /// GPU cycles consumed across all sync() calls (the Fig. 4 metric),
  /// accumulated across recovery attempts.
  Cycle kernel_cycles() const { return kernel_cycles_; }
  /// Launch-id tuples of every redundant group (one id per copy).
  const std::vector<std::vector<u32>>& groups() const { return groups_; }
  /// Launch-id pairs (copy 0, copy 1) of every redundant group — the
  /// classic DCLS view consumed by the diversity analysis; empty in
  /// baseline mode.
  std::vector<std::pair<u32, u32>> pairs() const;
  /// Every unordered copy pair of every group, for N-way diversity
  /// analysis (equals pairs() at n = 2).
  std::vector<std::pair<u32, u32>> all_copy_pairs() const;
  runtime::Device& device() { return dev_; }
  const Config& config() const { return cfg_; }
  const RedundancySpec& redundancy() const { return cfg_.redundancy; }
  /// Flight-recorder dumps ("higpu.flight/1" JSON): when a tracer is
  /// attached to the device, every comparison that detects a disagreement
  /// captures the last trace events leading up to it — the black box for
  /// post-mortem analysis of a redundancy miscompare. One entry per
  /// detection, in detection order (accumulates across recovery attempts).
  const std::vector<std::string>& flight_dumps() const {
    return flight_dumps_;
  }

 private:
  sim::SchedHints hints_for_copy(u32 c) const;
  /// Lazily registers the host-side "compare" track on the device's tracer
  /// (which must be attached). Miscompare instants land there.
  u32 flight_track();
  void reset_attempt();
  void install_scheduler();
  void reset_compare_counters();
  bool rollback_once(const ckpt::Snapshot& snap);
  CompareVerdict vote_words(const std::vector<const u8*>& host, u64 bytes,
                            void* host0);

  runtime::Device& dev_;
  Config cfg_;
  u32 num_sms_;
  Cycle kernel_cycles_ = 0;
  u32 comparisons_ = 0;
  u32 detections_ = 0;
  u32 failures_ = 0;
  i32 faulty_copy_ = -1;
  std::vector<std::vector<u32>> groups_;
  std::vector<std::vector<u8>> scratch_;

  // Rollback-recovery bookkeeping (recorded only under Recovery::kRollback).
  struct RecordedLaunch {
    sim::KernelLaunch launch;  // one physical copy's launch, hints resolved
    u32 stream = 0;
  };
  struct RecordedCompare {
    ReplicaPtr buf;
    u64 bytes = 0;
    void* host0 = nullptr;
  };
  bool record_rollback_state_ = false;
  bool replaying_ = false;
  std::vector<RecordedLaunch> recorded_launches_;
  std::vector<RecordedCompare> recorded_compares_;

  std::vector<std::string> flight_dumps_;
  u32 flight_track_ = 0;
  bool flight_track_made_ = false;
  /// Trace events kept per flight dump.
  static constexpr size_t kFlightTail = 64;
};

}  // namespace higpu::core
