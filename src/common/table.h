// Tabular and structured report emission shared by benches, examples and
// the campaign runner: fixed-width ASCII tables, RFC-4180 CSV, and a small
// append-only JSON writer (no external dependencies).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace higpu {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render the table (header, rule, rows) as a string.
  std::string render() const;

  /// Render the same header + rows as RFC-4180 CSV (fields containing
  /// commas, quotes or newlines are quoted and inner quotes doubled).
  std::string render_csv() const;

  /// Format helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_ratio(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escape one CSV field per RFC 4180 (quote only when needed).
std::string csv_escape(const std::string& field);

/// Escape a string for inclusion inside a JSON string literal.
std::string json_escape(const std::string& s);

/// Minimal streaming JSON writer with automatic comma placement and
/// 2-space indentation. Usage:
///
///   JsonWriter jw;
///   jw.begin_object();
///   jw.field("name", "hotspot");
///   jw.key("results"); jw.begin_array();
///   ...
///   jw.end_array(); jw.end_object();
///   std::string out = jw.str();
///
/// Compact mode (JsonWriter::compact()) emits the same document with no
/// newlines or indentation — the single-line form JSONL records require.
class JsonWriter {
 public:
  JsonWriter() = default;
  /// A writer that emits everything on one line (for JSONL records).
  static JsonWriter compact() {
    JsonWriter jw;
    jw.compact_ = true;
    return jw;
  }

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit `"name":` inside an object; follow with a value or container.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(bool v);
  void value(u64 v);
  void value(i64 v);
  void value(u32 v) { value(static_cast<u64>(v)); }
  void value(i32 v) { value(static_cast<i64>(v)); }
  void value(double v);
  /// Emit a double with enough digits (%.17g) to round-trip bit-exactly
  /// through a parse, instead of the human-friendly %.6g of value(double).
  void value_exact(double v);
  template <typename T>
  void field_exact(const std::string& name, const T& v) {
    key(name);
    value_exact(v);
  }

  template <typename T>
  void field(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void pre_value();
  void newline_indent();

  std::string out_;
  std::vector<bool> needs_comma_;  // one level per open container
  bool pending_key_ = false;
  bool compact_ = false;  // single-line output (JSONL records)
};

}  // namespace higpu
