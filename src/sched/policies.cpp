#include "sched/policies.h"

namespace higpu::sched {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kDefault: return "default";
    case Policy::kHalf: return "half";
    case Policy::kSrrs: return "srrs";
  }
  return "?";
}

void DefaultKernelScheduler::dispatch(sim::Gpu& gpu) {
  const u32 n = gpu.num_sms();
  const auto& states = gpu.kernel_states();
  // The fully-dispatched prefix only grows; skip it in amortized O(1).
  while (first_pending_ < states.size() &&
         states[first_pending_]->fully_dispatched())
    ++first_pending_;
  for (u32 k = first_pending_; k < states.size(); ++k) {
    sim::KernelState* ks = states[k];
    if (ks->fully_dispatched() || !ks->arrived(gpu.now())) continue;
    if (!ks->started() && !gpu.stream_ready(*ks)) continue;
    const sim::KernelLaunch& launch = gpu.launch_of(ks->launch_id);
    // Greedy: first SM (round-robin from the cursor) with capacity that the
    // launch's mask allows.
    for (u32 i = 0; i < n; ++i) {
      const u32 sm = (rr_cursor_ + i) % n;
      if (!launch.hints.sm_allowed(sm)) continue;
      if (!gpu.sm_can_accept(sm, launch)) continue;
      if (gpu.try_dispatch_block(*ks, sm)) {
        rr_cursor_ = (sm + 1) % n;
        return;  // one block per cycle GPU-wide
      }
    }
  }
}

void SrrsKernelScheduler::dispatch(sim::Gpu& gpu) {
  // Strictly serial: only the earliest unfinished kernel may dispatch. The
  // finished prefix only grows; skip it in amortized O(1).
  const auto& states = gpu.kernel_states();
  while (first_unfinished_ < states.size() &&
         states[first_unfinished_]->finished())
    ++first_unfinished_;
  if (first_unfinished_ >= states.size()) return;
  sim::KernelState* ks = states[first_unfinished_];
  if (!ks->arrived(gpu.now())) return;
  if (ks->fully_dispatched()) return;  // draining
  // A kernel may only start on an idle GPU (rule 1).
  if (!ks->started() && !gpu.all_sms_drained()) return;

  const sim::KernelLaunch& launch = gpu.launch_of(ks->launch_id);
  // Strict round-robin from the software-selected starting SM (rules 2+3):
  // block i runs on SM (start_sm + i) mod N — waiting for capacity if the
  // target SM is full, so the mapping stays deterministic.
  const u32 target =
      (launch.hints.start_sm + ks->blocks_dispatched) % gpu.num_sms();
  if (gpu.sm_can_accept(target, launch)) gpu.try_dispatch_block(*ks, target);
}

std::unique_ptr<sim::IKernelScheduler> make_scheduler(Policy p) {
  if (p == Policy::kSrrs) return std::make_unique<SrrsKernelScheduler>();
  return std::make_unique<DefaultKernelScheduler>();
}

u64 sm_range_mask(u32 lo, u32 hi) {
  u64 mask = 0;
  for (u32 i = lo; i < hi; ++i) mask |= 1ull << i;
  return mask;
}

}  // namespace higpu::sched
