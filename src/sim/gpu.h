// Top-level GPU: SM array, shared memory hierarchy, kernel launch queue and
// the simulation core. The block-dispatch policy is delegated to a pluggable
// IKernelScheduler (the component this paper modifies).
//
// Two interchangeable, bit-identical engines drive run_until_idle():
//  * event-driven (default): an active set of SMs with a min-heap of wake
//    times. Each SM reports the earliest cycle at which any resident warp
//    can become ready; the global clock jumps directly to the next event
//    (SM wake, kernel arrival, dispatch recheck, or fault-window boundary),
//    fast-forwarding quiescent cycles in O(1).
//  * dense: the classic one-cycle-at-a-time tick loop, kept as the
//    reference for the dual-engine equivalence test (GpuParams::engine).
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serial.h"
#include "common/stats.h"
#include "common/types.h"
#include "memsys/global_store.h"
#include "memsys/hierarchy.h"
#include "sim/fault_hook.h"
#include "sim/kernel.h"
#include "sim/ksched.h"
#include "sim/params.h"
#include "sim/sm.h"

namespace higpu::sim {

/// Thrown when run_until_idle exceeds its cycle budget (scheduling deadlock
/// or runaway kernel).
class SimTimeout : public std::runtime_error {
 public:
  explicit SimTimeout(const std::string& what) : std::runtime_error(what) {}
};

class Gpu {
 public:
  /// `store` is the functional global memory (owned by the caller/runtime)
  /// and must outlive the Gpu.
  Gpu(const GpuParams& params, memsys::GlobalStore* store);

  // ---- Configuration ---------------------------------------------------
  void set_kernel_scheduler(std::unique_ptr<IKernelScheduler> sched);
  IKernelScheduler* kernel_scheduler() { return ksched_.get(); }
  void set_fault_hook(IFaultHook* hook);
  IFaultHook* fault_hook() const { return fault_; }
  void set_trace_sink(ITraceSink* sink);
  /// Attach (or detach, with nullptr) the observability tracer: creates one
  /// device track per SM plus a kernel track and forwards the tracer to
  /// every SM and the memory hierarchy. Pure observer — pinned bit-identical
  /// on/off by the trace-identity suite.
  void set_obs_tracer(obs::Tracer* t);
  void set_warp_sched_policy(WarpSchedPolicy p);
  const GpuParams& params() const { return params_; }

  // ---- Host-side API ------------------------------------------------------
  /// Enqueue a kernel; returns its launch id. Kernel dispatch is
  /// intrinsically serial: the launch becomes visible to the kernel
  /// scheduler `launch_gap_cycles` after the previous one (paper §IV.A).
  u32 launch(KernelLaunch launch);

  /// Run until all launched kernels completed, using the engine selected by
  /// GpuParams::engine. Throws SimTimeout after `max_cycles`. Returns the
  /// current cycle.
  Cycle run_until_idle(u64 max_cycles = 2'000'000'000ull);

  /// Advance a single cycle (always dense; composes with run_until_idle).
  void step();

  bool idle() const;
  Cycle now() const { return cycle_; }
  /// Quiescent cycles skipped by the event-driven engine so far (kept out
  /// of collect_stats() so both engines report identical statistics).
  Cycle fast_forwarded_cycles() const { return ff_cycles_; }

  // ---- Scheduler-facing API ----------------------------------------------
  u32 num_sms() const { return static_cast<u32>(sms_.size()); }
  bool sm_can_accept(u32 sm, const KernelLaunch& launch) const;
  /// True when no SM holds any resident block.
  bool all_sms_drained() const;
  /// Kernel states in launch order (stable storage; the vector itself is
  /// cached — schedulers call this every cycle).
  const std::vector<KernelState*>& kernel_states() { return state_ptrs_; }
  const KernelLaunch& launch_of(u32 launch_id) const;
  /// True if every kernel launched before `launch_id` has finished.
  bool priors_finished(u32 launch_id) const;
  /// True if every earlier kernel on the same stream has finished (stream
  /// ordering); schedulers must not dispatch a kernel before this holds.
  bool stream_ready(const KernelState& ks) const;
  /// Dispatch the next block of `ks` to SM `sm`. Enforces one dispatch per
  /// cycle GPU-wide; returns false if the budget is spent or the SM is full.
  bool try_dispatch_block(KernelState& ks, u32 sm);

  // ---- Results ----------------------------------------------------------------
  const KernelState& kernel_state(u32 launch_id) const;
  const std::vector<BlockRecord>& block_records() const { return records_; }
  /// Cycle span [first dispatch, completion] of one kernel.
  Cycle kernel_cycles(u32 launch_id) const;
  /// Aggregated statistics (SMs + memory + GPU counters).
  StatSet collect_stats() const;
  /// Per-SM cycle attribution against the current GPU clock; for each SM,
  /// issued + scoreboard + barrier + structural + idle == now().
  std::vector<obs::SmCycles> sm_profile() const;
  memsys::MemHierarchy& mem() { return mem_; }
  memsys::GlobalStore& store() { return *store_; }
  SmCore& sm(u32 i) { return *sms_[i]; }

  // ---- Checkpoint / restore ----------------------------------------------
  /// Install the mid-run capture callback. It fires inside run_until_idle
  /// at consistent points (the top of either engine's loop, all state
  /// settled through now()) with the nominal target cycle and whether it
  /// came from the explicit target list (vs the periodic interval).
  void set_checkpoint_hook(std::function<void(Cycle nominal, bool is_target)> cb) {
    ckpt_hook_ = std::move(cb);
  }
  /// Explicit capture cycles (sorted internally). Each target T fires the
  /// hook exactly once, at a point where all simulated work at cycles < T'
  /// (for some T' <= T... precisely: now() <= T and nothing remains to
  /// simulate at cycles <= T) is in the state — so a snapshot taken then,
  /// restored and resumed, replays cycles (now(), end] bit-identically and
  /// covers any event (e.g. a fault-window opening) at cycle >= T.
  void set_checkpoint_targets(std::vector<Cycle> targets);
  /// Periodic capture roughly every `cycles` (exact under the dense engine,
  /// at the previous event boundary under the event engine). 0 disables.
  void set_checkpoint_interval(u64 cycles);

  /// Serialize the complete GPU state (core, SMs, scheduler, memory
  /// hierarchy, armed fault-hook state) into snapshot sections. Kernel
  /// programs are emitted through `program_ref` as table indices.
  void save(ckpt::Writer& w,
            const std::function<u32(const isa::ProgramPtr&)>& program_ref) const;
  /// Inverse of save(). `program_of` resolves table indices; the installed
  /// kernel scheduler must match the serialized one by name. When
  /// `restore_fault` is false the fault hook's state is left untouched
  /// (rollback semantics: the environment is not rolled back).
  void restore(ckpt::Reader& r,
               const std::function<isa::ProgramPtr(u32)>& program_of,
               bool restore_fault);

  /// Forward a rollback notification to the installed fault hook.
  void notify_rollback() {
    if (fault_ != nullptr) fault_->on_rollback();
  }

 private:
  void on_block_done(const BlockRecord& rec);
  /// ExecMode::kBlock: attach the launch's compiled superinstruction trace
  /// (from the process-wide cache) and account its compile-time statistics.
  void attach_trace(KernelLaunch& launch);
  Cycle run_dense(u64 max_cycles);
  Cycle run_event(u64 max_cycles);
  /// Fire the checkpoint hook for every pending target/interval point that
  /// the run loop is about to move past (`horizon` = the next cycle it will
  /// actually simulate). Captures therefore happen *between* events with
  /// the clock still at the last processed cycle — resumed execution
  /// recomputes the same jump, keeping fast-forward accounting and every
  /// statistic bit-identical to an uninterrupted run.
  void maybe_checkpoint(Cycle horizon);
  /// Earliest future kernel-arrival cycle (launch_gap_cycles visibility),
  /// or kNeverCycle. Amortized O(1): arrivals are monotone in launch order.
  Cycle next_kernel_arrival();
  /// Pull SM `sm`'s wake time forward to `when` (event engine only); used
  /// by try_dispatch_block so a newly placed block executes immediately.
  void wake_sm(u32 sm, Cycle when);

  GpuParams params_;
  memsys::GlobalStore* store_;
  memsys::MemHierarchy mem_;
  std::vector<std::unique_ptr<SmCore>> sms_;
  std::unique_ptr<IKernelScheduler> ksched_;
  IFaultHook* fault_ = nullptr;
  obs::Tracer* obs_ = nullptr;
  u32 obs_kernel_track_ = 0;

  Cycle cycle_ = 0;
  Cycle last_arrival_ = 0;
  Cycle last_dispatch_cycle_ = 0;
  bool dispatched_this_cycle_ = false;

  // Event-engine state. sm_wake_[i] is the next cycle SM i must simulate;
  // kNeverCycle marks SMs outside the active set (no resident blocks and
  // nothing pending). The heap holds (wake, sm) pairs with lazy deletion:
  // an entry is stale when it no longer matches sm_wake_. All of this is
  // serializable (dispatch_wake_ included) so a snapshot taken mid-run
  // resumes without the conservative active-set rebuild: event_primed_
  // records whether the bookkeeping reflects the current SM state (dense
  // stepping clears it; run_event establishes it).
  bool event_running_ = false;
  bool event_primed_ = false;
  std::vector<Cycle> sm_wake_;
  std::priority_queue<std::pair<Cycle, u32>, std::vector<std::pair<Cycle, u32>>,
                      std::greater<>>
      wake_heap_;
  Cycle dispatch_wake_ = 0;
  Cycle ff_cycles_ = 0;

  // Checkpoint triggers (not snapshot state: each run arms its own).
  std::function<void(Cycle, bool)> ckpt_hook_;
  std::vector<Cycle> ckpt_targets_;  // sorted
  size_t ckpt_target_idx_ = 0;
  u64 ckpt_interval_ = 0;
  Cycle ckpt_next_interval_ = kNeverCycle;

  // Launches are stored behind unique_ptr so KernelState/KernelLaunch
  // references stay stable as new kernels arrive.
  struct LaunchSlot {
    KernelLaunch launch;
    KernelState state;
  };
  std::vector<std::unique_ptr<LaunchSlot>> launches_;
  std::vector<KernelState*> state_ptrs_;  // parallel to launches_
  u32 kernels_finished_ = 0;              // == launches_.size() when idle
  size_t arrival_cursor_ = 0;             // first launch not yet visible
  std::vector<BlockRecord> records_;
  StatSet stats_;
};

}  // namespace higpu::sim
