// Scalar functional semantics of the ISA, shared by the SM datapath and by
// unit tests. All values are 32-bit register bit patterns.
//
// Nothing here touches a register file: callers pass operand *values* and
// store results themselves, so there are no indices to bounds-check (the
// launch gate's resource pass validates every static register index before
// a program reaches these functions).
#pragma once

#include <cmath>

#include "common/types.h"
#include "isa/opcode.h"

namespace higpu::sim {

namespace detail {
/// Hard-error sinks for opcodes/enums that must never reach the functional
/// units. Logging + abort live in executor.cpp so the hot inline switches
/// below carry only a cold call on their dead edge.
[[noreturn]] void unknown_alu_op(isa::Op op);
[[noreturn]] void unknown_cmp_op(isa::CmpOp cmp);
[[noreturn]] void unknown_cmp_dtype(isa::DType t);
}  // namespace detail

/// Canonical quiet-NaN bit pattern. Arithmetic float ops canonicalize every
/// NaN result (GPU-style): NaN payload propagation through host fma/min/max
/// is implementation- and codegen-dependent (x86 picks the first source
/// operand *after* the compiler commuted them), so raw std:: results are not
/// reproducible across translation units or optimization levels. The
/// simulator's semantics must be: same inputs, same output bits, everywhere.
constexpr u32 kCanonNanBits = 0x7FC00000u;

/// Float result -> register bits, NaN canonicalized.
inline u32 canon_f(float v) { return std::isnan(v) ? kCanonNanBits : f2bits(v); }

/// Deterministic FMIN on register bits. NaN handling follows fminf (a NaN
/// operand loses), both-NaN canonicalizes, and the +-0 tie — where the
/// standard leaves the result unspecified — resolves to -0 (IEEE 754-2019
/// `minimum`). The tie-break is bitwise: operands that compare equal differ
/// only for +-0, where OR keeps the sign bit.
inline u32 fmin_bits(u32 a, u32 b) {
  const float fa = bits2f(a), fb = bits2f(b);
  if (std::isnan(fa)) return std::isnan(fb) ? kCanonNanBits : b;
  if (std::isnan(fb)) return a;
  if (fa < fb) return a;
  if (fb < fa) return b;
  return a | b;
}

/// Deterministic FMAX; the +-0 tie resolves to +0 (AND clears the sign bit).
inline u32 fmax_bits(u32 a, u32 b) {
  const float fa = bits2f(a), fb = bits2f(b);
  if (std::isnan(fa)) return std::isnan(fb) ? kCanonNanBits : b;
  if (std::isnan(fb)) return a;
  if (fa > fb) return a;
  if (fb > fa) return b;
  return a & b;
}

/// Evaluate a (non-memory, non-control) ALU/SFU opcode on raw register bits.
inline u32 eval_alu(isa::Op op, u32 a, u32 b, u32 c) {
  using isa::Op;
  const auto fa = bits2f(a), fb = bits2f(b), fc = bits2f(c);
  const auto sa = static_cast<i32>(a), sb = static_cast<i32>(b);
  switch (op) {
    case Op::kMov: return a;
    case Op::kIadd: return a + b;
    case Op::kIsub: return a - b;
    case Op::kImul: return a * b;
    case Op::kImad: return a * b + c;
    case Op::kImin: return static_cast<u32>(sa < sb ? sa : sb);
    case Op::kImax: return static_cast<u32>(sa > sb ? sa : sb);
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kNot: return ~a;
    case Op::kShl: return a << (b & 31);
    case Op::kShr: return a >> (b & 31);
    case Op::kSra: return static_cast<u32>(sa >> (b & 31));
    case Op::kFadd: return canon_f(fa + fb);
    case Op::kFsub: return canon_f(fa - fb);
    case Op::kFmul: return canon_f(fa * fb);
    case Op::kFfma: return canon_f(std::fma(fa, fb, fc));
    case Op::kFmin: return fmin_bits(a, b);
    case Op::kFmax: return fmax_bits(a, b);
    // FABS/FNEG are IEEE sign-bit operations, not arithmetic: payloads pass
    // through untouched, so they stay pure bit manipulation.
    case Op::kFabs: return a & 0x7FFFFFFFu;
    case Op::kFneg: return a ^ 0x80000000u;
    case Op::kFdiv: return canon_f(fa / fb);
    case Op::kFsqrt: return canon_f(std::sqrt(fa));
    case Op::kFrcp: return canon_f(1.0f / fa);
    case Op::kFexp: return canon_f(std::exp(fa));
    case Op::kFlog: return canon_f(std::log(fa));
    case Op::kFsin: return canon_f(std::sin(fa));
    case Op::kFcos: return canon_f(std::cos(fa));
    case Op::kI2f: return f2bits(static_cast<float>(sa));
    case Op::kF2i: {
      // Saturating conversion (CUDA cvt.rzi.s32.f32 semantics): a plain
      // static_cast is undefined behaviour for NaN and out-of-range values.
      if (std::isnan(fa)) return 0;
      if (fa >= 2147483648.0f) return 0x7FFFFFFFu;   // >= 2^31  -> INT_MAX
      if (fa < -2147483648.0f) return 0x80000000u;   // < -2^31 -> INT_MIN
      return static_cast<u32>(static_cast<i32>(fa));
    }
    default: detail::unknown_alu_op(op);  // memory/control op in the ALU path
  }
}

/// Evaluate a SETP comparison on raw register bits.
inline bool eval_cmp(isa::CmpOp cmp, isa::DType t, u32 a, u32 b) {
  using isa::CmpOp;
  using isa::DType;
  auto test = [&](auto x, auto y) {
    switch (cmp) {
      case CmpOp::kLt: return x < y;
      case CmpOp::kLe: return x <= y;
      case CmpOp::kGt: return x > y;
      case CmpOp::kGe: return x >= y;
      case CmpOp::kEq: return x == y;
      case CmpOp::kNe: return x != y;
    }
    detail::unknown_cmp_op(cmp);  // out-of-range CmpOp (corrupted encoding)
  };
  switch (t) {
    case DType::kI32: return test(static_cast<i32>(a), static_cast<i32>(b));
    case DType::kU32: return test(a, b);
    case DType::kF32: return test(bits2f(a), bits2f(b));
  }
  detail::unknown_cmp_dtype(t);  // out-of-range DType (corrupted encoding)
}

}  // namespace higpu::sim
