// kmeans — clustering (Rodinia): the membership-assignment kernel runs on
// the GPU (distance of every point to every centroid); recentering happens
// on the host between iterations.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Kmeans final : public Workload {
 public:
  std::string name() const override { return "kmeans"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kDims = 8;
  static constexpr u32 kClusters = 8;
  u32 n_ = 0;
  u32 iters_ = 0;
  std::vector<float> points_;            // n x kDims
  std::vector<float> init_centroids_;    // kClusters x kDims
  std::vector<i32> reference_;           // final membership
  std::vector<i32> result_;
};

}  // namespace higpu::workloads
