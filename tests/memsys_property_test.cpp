// Property tests for the memory system: the SetAssocCache is checked
// against an independent reference LRU model over random access streams;
// coalescer invariants hold for arbitrary address patterns; the hierarchy's
// timing is monotonic and causal.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "common/rng.h"
#include "memsys/cache.h"
#include "memsys/coalescer.h"
#include "memsys/hierarchy.h"

namespace higpu::memsys {
namespace {

/// Independent reference: per-set LRU list of (tag, dirty).
class RefCache {
 public:
  RefCache(u32 size_bytes, u32 assoc, u32 line_bytes)
      : sets_(size_bytes / line_bytes / assoc), assoc_(assoc) {}

  struct Result {
    bool hit;
    bool evicted_dirty;
    u64 evicted_line;
  };

  Result access(u64 line, bool write) {
    const u32 set = static_cast<u32>(line % sets_);
    const u64 tag = line / sets_;
    auto& lru = sets_state_[set];  // front = most recent
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->first == tag) {
        const bool dirty = it->second || write;
        lru.erase(it);
        lru.emplace_front(tag, dirty);
        return {true, false, 0};
      }
    }
    Result r{false, false, 0};
    if (lru.size() == assoc_) {
      r.evicted_dirty = lru.back().second;
      r.evicted_line = lru.back().first * sets_ + set;
      lru.pop_back();
    }
    lru.emplace_front(tag, write);
    return r;
  }

 private:
  u32 sets_;
  u32 assoc_;
  std::map<u32, std::list<std::pair<u64, bool>>> sets_state_;
};

struct CacheGeom {
  u32 size;
  u32 assoc;
};

class CacheVsReference : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(CacheVsReference, RandomStreamMatchesReferenceModel) {
  const CacheGeom g = GetParam();
  SetAssocCache dut(g.size, g.assoc, 128);
  RefCache ref(g.size, g.assoc, 128);
  Rng rng(g.size * 31 + g.assoc);

  for (u32 i = 0; i < 20000; ++i) {
    // Mix of hot lines (locality) and cold misses.
    const u64 line = rng.next_bool(0.7f) ? rng.next_below(64)
                                         : rng.next_below(1 << 16);
    const bool write = rng.next_bool(0.3f);
    const CacheAccessResult got = dut.access(line, write);
    const RefCache::Result want = ref.access(line, write);
    ASSERT_EQ(got.hit, want.hit) << "access " << i << " line " << line;
    ASSERT_EQ(got.writeback_line.has_value(), want.evicted_dirty)
        << "access " << i << " line " << line;
    if (got.writeback_line) {
      ASSERT_EQ(*got.writeback_line, want.evicted_line) << "access " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(CacheGeom{4 * 1024, 1}, CacheGeom{8 * 1024, 2},
                      CacheGeom{24 * 1024, 4}, CacheGeom{64 * 1024, 8}),
    [](const auto& info) {
      return std::to_string(info.param.size / 1024) + "k_w" +
             std::to_string(info.param.assoc);
    });

class CoalescerProperty : public ::testing::TestWithParam<u64> {};

TEST_P(CoalescerProperty, InvariantsHoldForRandomPatterns) {
  Rng rng(GetParam());
  for (u32 iter = 0; iter < 200; ++iter) {
    std::vector<u64> addrs;
    const u32 lanes = 1 + static_cast<u32>(rng.next_below(32));
    for (u32 l = 0; l < lanes; ++l)
      addrs.push_back(rng.next_below(1 << 20) * 4);
    const std::vector<u64> lines = coalesce(addrs, 128);

    // 1 <= |lines| <= lanes.
    ASSERT_GE(lines.size(), 1u);
    ASSERT_LE(lines.size(), addrs.size());
    // No duplicates.
    for (size_t i = 0; i < lines.size(); ++i)
      for (size_t j = i + 1; j < lines.size(); ++j)
        ASSERT_NE(lines[i], lines[j]);
    // Every address covered; every line justified by some address.
    for (u64 a : addrs)
      ASSERT_NE(std::find(lines.begin(), lines.end(), a / 128), lines.end());
    for (u64 line : lines) {
      bool justified = false;
      for (u64 a : addrs) justified |= a / 128 == line;
      ASSERT_TRUE(justified);
    }

    // Bank-conflict degree bounded by distinct word count and >= 1.
    const u32 deg = smem_conflict_degree(addrs, 32);
    ASSERT_GE(deg, 1u);
    ASSERT_LE(deg, lanes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerProperty, ::testing::Range<u64>(1, 9));

/// The four L1 write-policy combinations, the axis the property suite
/// sweeps: every invariant must hold under every policy.
std::vector<MemParams> policy_matrix() {
  std::vector<MemParams> out;
  for (WritePolicy wp : {WritePolicy::kWriteBack, WritePolicy::kWriteThrough}) {
    for (WriteAlloc wa : {WriteAlloc::kAllocate, WriteAlloc::kNoAllocate}) {
      MemParams mp;
      mp.l1_write_policy = wp;
      mp.l1_write_alloc = wa;
      out.push_back(mp);
    }
  }
  return out;
}

class HierarchyPolicyProperty : public ::testing::TestWithParam<MemParams> {};

TEST_P(HierarchyPolicyProperty, CompletionNeverBeforeIssue) {
  MemParams mp = GetParam();
  mp.l1_mshr_entries = 8;  // small enough that MSHR-full stalls exercise
  MemHierarchy mem(4, mp);
  Rng rng(77);
  Cycle now = 0;
  for (u32 i = 0; i < 5000; ++i) {
    now += rng.next_below(3);
    const u32 sm = static_cast<u32>(rng.next_below(4));
    const u64 line = rng.next_below(1 << 14);
    const MemResponse r =
        rng.next_bool(0.1f)
            ? mem.access_atomic(sm, line, now)
            : mem.access_line(sm, line, rng.next_bool(0.4f), now);
    ASSERT_GT(r.done, now);
    ASSERT_GT(r.issue_free, now);
    ASSERT_LT(r.done - now, 100'000u) << "latency blew up";
  }
}

TEST_P(HierarchyPolicyProperty, StatsBalance) {
  const MemParams mp = GetParam();
  MemHierarchy mem(2, mp);
  Rng rng(5);
  u64 accesses = 0;
  for (u32 i = 0; i < 3000; ++i) {
    mem.access_line(static_cast<u32>(rng.next_below(2)),
                    rng.next_below(4096), rng.next_bool(0.5f),
                    i * 2);
    ++accesses;
  }
  const StatSet& s = mem.stats();
  // Every access is classified exactly once.
  const u64 classified = s.get("l1_hits") + s.get("l1_misses") +
                         s.get("l1_write_hits") + s.get("l1_write_misses") +
                         s.get("l1_mshr_merges");
  EXPECT_EQ(classified, accesses);
  // Every L2 access originates from an L1 miss, writeback or forwarded store.
  EXPECT_LE(s.get("l2_misses"), s.get("l1_misses") + s.get("l1_write_misses") +
                                    s.get("l1_writebacks") +
                                    s.get("l1_write_through"));
  // Write-through keeps the L1 clean: no L1 writebacks, and every store
  // (hit, miss or merge) was forwarded to the L2.
  if (mp.l1_write_policy == WritePolicy::kWriteThrough) {
    EXPECT_EQ(s.get("l1_writebacks"), 0u);
    EXPECT_GE(s.get("l1_write_through"),
              s.get("l1_write_hits") + s.get("l1_write_misses"));
  }
  // A counted MSHR stall always pins at least one stall cycle and vice
  // versa (the stall target is strictly in the future).
  EXPECT_EQ(s.get("l1_mshr_stalls") == 0, s.get("l1_mshr_stall_cycles") == 0);
  // Row-buffer accounting covers every DRAM transaction.
  EXPECT_EQ(s.get("dram_row_hits") + s.get("dram_row_misses"),
            s.get("dram_reads") + s.get("dram_writebacks"));
}

INSTANTIATE_TEST_SUITE_P(
    WritePolicies, HierarchyPolicyProperty,
    ::testing::ValuesIn(policy_matrix()), [](const auto& info) {
      const std::string l = mem_label(info.param);
      std::string name = l.empty() ? "wb_wa" : l;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(HierarchyProperty, HitLatencyIsBoundedByMissLatency) {
  MemParams mp;
  MemHierarchy mem(1, mp);
  // Cold miss then repeated hits: hits must be uniformly cheaper.
  const Cycle miss = mem.access_line(0, 42, false, 1000).done - 1000;
  for (u32 i = 0; i < 10; ++i) {
    const Cycle t = 100'000 + i * 1000;
    const Cycle hit = mem.access_line(0, 42, false, t).done - t;
    ASSERT_LT(hit, miss);
  }
}

}  // namespace
}  // namespace higpu::memsys
