// Tracing overhead and host wall-clock phase split. Runs representative
// workloads with the obs::Tracer detached and attached, reports the sim-loop
// slowdown (target: <= 5%), and emits the measured host phase split
// (simulate / snapshot / restore / other) that ROADMAP.md's Amdahl argument
// points at. Emits BENCH_obs.json so both numbers are tracked from PR to PR.
//
//   $ ./bench_obs_overhead [--scale=test|bench] [--out=BENCH_obs.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace {

using namespace higpu;

struct ObsRun {
  double wall_sec = 0;    // device construction through teardown probe
  double sim_sec = 0;     // inside the simulation engine (Device counter)
  Cycle sim_cycles = 0;
  u64 events_recorded = 0;
  u64 events_dropped = 0;
  obs::HostPhases phases;
  bool ok = false;
};

/// One scenario run, optionally traced. DCLS redundancy plus pre-kernel
/// checkpointing so the snapshot phase in the Amdahl split is exercised, not
/// structurally zero.
ObsRun run_once(const std::string& name, workloads::Scale scale,
                obs::Tracer* tracer) {
  exp::ScenarioSpec spec;
  spec.workload = name;
  spec.scale = scale;
  spec.seed = 2019;
  spec.policy = sched::Policy::kSrrs;
  spec.redundancy = core::RedundancySpec::dcls();
  spec.ckpt = ckpt::CheckpointPolicy::pre_kernel();

  ObsRun r;
  const auto t0 = std::chrono::steady_clock::now();
  const exp::ScenarioResult res = exp::run_scenario(
      spec, 0,
      [&](runtime::Device& dev, workloads::Workload&, core::ExecSession&) {
        r.wall_sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        r.sim_cycles = dev.gpu().now();
        r.phases = dev.host_phases();
      },
      [&](runtime::Device& dev, workloads::Workload&, core::ExecSession&) {
        if (tracer != nullptr) dev.set_tracer(tracer);
      });
  r.sim_sec = res.sim_wall_sec;
  r.ok = res.ok && res.verified;
  if (tracer != nullptr) {
    r.events_recorded = tracer->events_recorded();
    r.events_dropped = tracer->events_dropped();
  }
  return r;
}

/// Best-of-N for both arms, interleaved (off, on, off, on, ...) so clock
/// drift and scheduler noise hit both sides equally — at test scale a run
/// is a few ms, so back-to-back pairing matters more than rep count. The
/// traced runs get a fresh Tracer each rep (ring state must not carry
/// over); its event counts are deterministic, so any rep's numbers serve.
void best_of_pair(const std::string& name, workloads::Scale scale, int reps,
                  ObsRun* off, ObsRun* on) {
  for (int i = 0; i < reps; ++i) {
    ObsRun r_off = run_once(name, scale, nullptr);
    obs::Tracer tracer;
    ObsRun r_on = run_once(name, scale, &tracer);
    if (i == 0 || r_off.sim_sec < off->sim_sec) *off = r_off;
    if (i == 0 || r_on.sim_sec < on->sim_sec) *on = r_on;
  }
}

}  // namespace

int main(int argc, char** argv) {
  workloads::Scale scale = workloads::Scale::kTest;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale=bench") == 0)
      scale = workloads::Scale::kBench;
    else if (std::strcmp(argv[i], "--scale=test") == 0)
      scale = workloads::Scale::kTest;
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
  }

  // hotspot: compute-regular, few stalls — near-zero trace traffic.
  // bfs: memory-stalled — the stall-classifier emits on most cycles, so this
  // is the tracer's worst case. streamcluster: the longest-running workload
  // in the suite, so the host-phase split is dominated by steady state.
  const std::vector<std::string> names = {"hotspot", "bfs", "streamcluster"};
  const int reps = 7;

  obs::HostPhases total;
  double total_wall = 0.0;
  double total_off = 0.0, total_on = 0.0;
  bool all_ok = true;

  std::string json = "{\n  \"bench\": \"obs_overhead\",\n  \"metric\": "
                     "\"trace_overhead_pct\",\n  \"target_max_overhead_pct\": "
                     "5.0,\n  \"workloads\": [\n";
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    ObsRun off, on;
    best_of_pair(name, scale, reps, &off, &on);
    const u64 recorded = on.events_recorded;
    const u64 dropped = on.events_dropped;
    const double overhead_pct =
        off.sim_sec > 0 ? 100.0 * (on.sim_sec - off.sim_sec) / off.sim_sec
                        : 0.0;
    all_ok = all_ok && off.ok && on.ok;
    total_off += off.sim_sec;
    total_on += on.sim_sec;
    total.sim_s += on.phases.sim_s;
    total.snapshot_s += on.phases.snapshot_s;
    total.restore_s += on.phases.restore_s;
    total_wall += on.wall_sec;

    std::printf("%-13s cycles=%-9llu off=%.4fs on=%.4fs overhead=%+.2f%% "
                "events=%llu dropped=%llu%s\n",
                name.c_str(), static_cast<unsigned long long>(on.sim_cycles),
                off.sim_sec, on.sim_sec, overhead_pct,
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(dropped),
                off.ok && on.ok ? "" : "  [RUN FAILED]");

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"sim_cycles\": %llu, "
        "\"untraced_sim_sec\": %.6f, \"traced_sim_sec\": %.6f, "
        "\"overhead_pct\": %.3f, \"events_recorded\": %llu, "
        "\"events_dropped\": %llu, \"verified\": %s}%s\n",
        name.c_str(), static_cast<unsigned long long>(on.sim_cycles),
        off.sim_sec, on.sim_sec, overhead_pct,
        static_cast<unsigned long long>(recorded),
        static_cast<unsigned long long>(dropped),
        off.ok && on.ok ? "true" : "false", i + 1 < names.size() ? "," : "");
    json += buf;
  }

  // The headline number: overhead over the whole suite. The per-workload
  // figures above bounce with timer noise on the shortest (~1 ms) runs; the
  // pooled ratio is what the <= 5% target is judged against.
  const double overall_pct =
      total_off > 0 ? 100.0 * (total_on - total_off) / total_off : 0.0;
  std::printf("overall overhead: %+.2f%% (target <= 5%%)\n", overall_pct);

  // The measured Amdahl split ROADMAP.md points at: where host wall time
  // goes across the traced runs (everything outside the three instrumented
  // phases — transfers, verify, program building — is "other").
  const double other =
      total_wall - total.sim_s - total.snapshot_s - total.restore_s;
  std::printf("host phases: sim=%.4fs snapshot=%.4fs restore=%.4fs "
              "other=%.4fs (of %.4fs wall)\n",
              total.sim_s, total.snapshot_s, total.restore_s,
              other > 0 ? other : 0.0, total_wall);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"overall_overhead_pct\": %.3f,\n"
                "  \"host_phase_split_sec\": {\"simulate\": %.6f, "
                "\"snapshot\": %.6f, \"restore\": %.6f, \"other\": %.6f, "
                "\"wall\": %.6f}\n}\n",
                overall_pct, total.sim_s, total.snapshot_s, total.restore_s,
                other > 0 ? other : 0.0, total_wall);
  json += buf;

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
