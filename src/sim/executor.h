// Scalar functional semantics of the ISA, shared by the SM datapath and by
// unit tests. All values are 32-bit register bit patterns.
#pragma once

#include <cmath>

#include "common/types.h"
#include "isa/opcode.h"

namespace higpu::sim {

/// Evaluate a (non-memory, non-control) ALU/SFU opcode on raw register bits.
inline u32 eval_alu(isa::Op op, u32 a, u32 b, u32 c) {
  using isa::Op;
  const auto fa = bits2f(a), fb = bits2f(b), fc = bits2f(c);
  const auto sa = static_cast<i32>(a), sb = static_cast<i32>(b);
  switch (op) {
    case Op::kMov: return a;
    case Op::kIadd: return a + b;
    case Op::kIsub: return a - b;
    case Op::kImul: return a * b;
    case Op::kImad: return a * b + c;
    case Op::kImin: return static_cast<u32>(sa < sb ? sa : sb);
    case Op::kImax: return static_cast<u32>(sa > sb ? sa : sb);
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kNot: return ~a;
    case Op::kShl: return a << (b & 31);
    case Op::kShr: return a >> (b & 31);
    case Op::kSra: return static_cast<u32>(sa >> (b & 31));
    case Op::kFadd: return f2bits(fa + fb);
    case Op::kFsub: return f2bits(fa - fb);
    case Op::kFmul: return f2bits(fa * fb);
    case Op::kFfma: return f2bits(std::fma(fa, fb, fc));
    case Op::kFmin: return f2bits(std::fmin(fa, fb));
    case Op::kFmax: return f2bits(std::fmax(fa, fb));
    case Op::kFabs: return f2bits(std::fabs(fa));
    case Op::kFneg: return f2bits(-fa);
    case Op::kFdiv: return f2bits(fa / fb);
    case Op::kFsqrt: return f2bits(std::sqrt(fa));
    case Op::kFrcp: return f2bits(1.0f / fa);
    case Op::kFexp: return f2bits(std::exp(fa));
    case Op::kFlog: return f2bits(std::log(fa));
    case Op::kFsin: return f2bits(std::sin(fa));
    case Op::kFcos: return f2bits(std::cos(fa));
    case Op::kI2f: return f2bits(static_cast<float>(sa));
    case Op::kF2i: {
      // Saturating conversion (CUDA cvt.rzi.s32.f32 semantics): a plain
      // static_cast is undefined behaviour for NaN and out-of-range values.
      if (std::isnan(fa)) return 0;
      if (fa >= 2147483648.0f) return 0x7FFFFFFFu;   // >= 2^31  -> INT_MAX
      if (fa < -2147483648.0f) return 0x80000000u;   // < -2^31 -> INT_MIN
      return static_cast<u32>(static_cast<i32>(fa));
    }
    default: return 0;
  }
}

/// Evaluate a SETP comparison on raw register bits.
inline bool eval_cmp(isa::CmpOp cmp, isa::DType t, u32 a, u32 b) {
  using isa::CmpOp;
  using isa::DType;
  auto test = [&](auto x, auto y) {
    switch (cmp) {
      case CmpOp::kLt: return x < y;
      case CmpOp::kLe: return x <= y;
      case CmpOp::kGt: return x > y;
      case CmpOp::kGe: return x >= y;
      case CmpOp::kEq: return x == y;
      case CmpOp::kNe: return x != y;
    }
    return false;
  };
  switch (t) {
    case DType::kI32: return test(static_cast<i32>(a), static_cast<i32>(b));
    case DType::kU32: return test(a, b);
    case DType::kF32: return test(bits2f(a), bits2f(b));
  }
  return false;
}

}  // namespace higpu::sim
