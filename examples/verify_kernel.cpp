// Standalone static-verification gate: run workloads just far enough to
// push every kernel they build through the launch-gate analyzer, print the
// structured reports, and fail (exit 1) if any kernel carries an
// error-severity diagnostic. CI runs `verify_kernel --all` as the
// suite-stays-clean check.
//
//   $ ./verify_kernel --all                 # all 19 workloads, test scale
//   $ ./verify_kernel hotspot bfs --json    # machine-readable reports
//   $ ./verify_kernel gaussian --scale=bench --seed=7
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "isa/verify/verify.h"
#include "runtime/device.h"
#include "workloads/workload.h"

namespace {

using namespace higpu;

int usage() {
  std::printf(
      "usage: verify_kernel <workload...> | --all [options]\n"
      "Statically verifies every kernel the named workloads launch and\n"
      "exits non-zero if any carries an error-severity diagnostic.\n"
      "options:\n"
      "  --all                verify every registered workload\n"
      "  --scale=test|bench   problem size driving kernel shapes (default:\n"
      "                       test; grid/block dims sharpen the analysis)\n"
      "  --seed=N             input-generation seed (default: 2019)\n"
      "  --json               print one JSON report object per kernel\n"
      "  --quiet              only print kernels with diagnostics\n");
  return 2;
}

/// A verify report detached from the device that produced it (the pinned
/// program in Device::VerifyRecord dies with the scenario's device).
struct KernelReport {
  std::string workload;
  sim::Dim3 grid, block;
  isa::verify::Result result;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  workloads::Scale scale = workloads::Scale::kTest;
  u64 seed = 2019;
  bool json = false;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--all") {
        names = workloads::all_names();
      } else if (arg.rfind("--scale=", 0) == 0) {
        scale = workloads::parse_scale(arg.substr(8));
      } else if (arg.rfind("--seed=", 0) == 0) {
        seed = std::stoull(arg.substr(7));
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        return usage();
      } else {
        names.push_back(arg);
      }
    }
    if (names.empty()) return usage();

    std::vector<KernelReport> reports;
    for (const std::string& name : names) {
      exp::ScenarioSpec spec;
      spec.workload = name;
      spec.scale = scale;
      spec.seed = seed;
      spec.redundancy = core::RedundancySpec::baseline();
      // Warn mode: collect the full report for merely-wrong kernels instead
      // of aborting the scenario at the first refused launch. (Memory-unsafe
      // defect classes are refused even under kWarn and surface as a failed
      // scenario below.)
      spec.gpu.verify = sim::LaunchVerify::kWarn;

      const exp::ScenarioResult r = exp::run_scenario(
          spec, 0,
          [&](runtime::Device& dev, workloads::Workload&,
              core::ExecSession&) {
            for (const runtime::Device::VerifyRecord& rec :
                 dev.verify_reports())
              reports.push_back(
                  KernelReport{name, rec.grid, rec.block, rec.result});
          });
      if (!r.ok) {
        std::fprintf(stderr, "error: workload '%s' failed to run: %s\n",
                     name.c_str(), r.error.c_str());
        return 1;
      }
    }

    u32 errors = 0, warnings = 0;
    for (const KernelReport& kr : reports) {
      errors += kr.result.count(isa::verify::Severity::kError);
      warnings += kr.result.count(isa::verify::Severity::kWarning);
      if (json) {
        std::printf("%s\n", kr.result.to_json().c_str());
        continue;
      }
      const bool clean = kr.result.diags.empty();
      if (quiet && clean) continue;
      std::printf("%-5s %-16s kernel '%s' grid %ux%ux%u block %ux%ux%u\n",
                  kr.result.ok() ? "ok" : "FAIL", kr.workload.c_str(),
                  kr.result.kernel.c_str(), kr.grid.x, kr.grid.y, kr.grid.z,
                  kr.block.x, kr.block.y, kr.block.z);
      if (!clean) std::printf("%s", kr.result.to_string().c_str());
    }
    if (!json)
      std::printf("%zu kernel(s) analyzed across %zu workload(s): "
                  "%u error(s), %u warning(s)\n",
                  reports.size(), names.size(), errors, warnings);
    return errors > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
