// b+tree — database index queries (Rodinia): a fixed-depth B+-tree laid out
// in device memory; a point-query kernel descends the tree per thread and a
// range kernel counts keys in an interval. Branchy, latency-bound short
// kernels.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class BTree final : public Workload {
 public:
  std::string name() const override { return "b+tree"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kFanout = 8;  // children per inner node
  u32 depth_ = 0;                    // inner levels above the leaves
  u32 num_leaves_ = 0;
  u32 num_queries_ = 0;
  // Inner nodes level by level: for each node, kFanout-1 separator keys.
  std::vector<i32> inner_keys_;
  std::vector<i32> leaf_values_;  // one value per leaf
  std::vector<i32> queries_;
  std::vector<i32> range_hi_;     // range query upper bounds
  std::vector<i32> reference_point_;
  std::vector<i32> reference_range_;
  std::vector<i32> result_point_;
  std::vector<i32> result_range_;
};

}  // namespace higpu::workloads
