#include "exp/units.h"

#include <algorithm>

namespace higpu::exp {

std::vector<WorkUnit> plan_units(const ScenarioSet& set, bool group_faults) {
  std::vector<WorkUnit> units;
  if (!group_faults) {
    units.reserve(set.size());
    for (size_t i = 0; i < set.size(); ++i) {
      WorkUnit u;
      u.members.push_back(i);
      u.fault_members = set[i].fault.active() ? 1 : 0;
      units.push_back(std::move(u));
    }
    return units;
  }
  std::vector<bool> grouped(set.size(), false);
  for (size_t i = 0; i < set.size(); ++i) {
    if (grouped[i]) continue;
    WorkUnit u;
    u.members.push_back(i);
    grouped[i] = true;
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (!grouped[j] && set[i].same_but_fault(set[j])) {
        u.members.push_back(j);
        grouped[j] = true;
      }
    }
    for (size_t m : u.members)
      if (set[m].fault.active()) ++u.fault_members;
    units.push_back(std::move(u));
  }
  return units;
}

ckpt::SnapshotPtr GroupBase::snapshot_for(Cycle c) const {
  // A failed base run leaves `snapshots` empty while `targets` still holds
  // the requested cycles; treat any shape mismatch as "no snapshot".
  if (snapshots.size() != targets.size()) return nullptr;
  const auto it = std::lower_bound(targets.begin(), targets.end(), c);
  if (it == targets.end() || *it != c) return nullptr;
  return snapshots[static_cast<size_t>(it - targets.begin())];
}

GroupBase run_group_base(const ScenarioSet& set,
                         const std::vector<size_t>& members) {
  SnapshotIo io;
  size_t nofault = GroupBase::kSynthetic;
  for (size_t i : members) {
    if (set[i].fault.active())
      io.capture_targets.push_back(set[i].fault.start);
    else if (nofault == GroupBase::kSynthetic)
      nofault = i;
  }

  // The clean base: reuse the group's own fault-free member if it has one
  // (captures are free and invisible, so its result doubles as the base's),
  // otherwise synthesize one whose result is discarded.
  GroupBase base;
  if (nofault != GroupBase::kSynthetic) {
    base.result_index = nofault;
    base.result =
        run_scenario(set[nofault], static_cast<u32>(nofault), nullptr,
                     nullptr, &io);
  } else {
    ScenarioSpec spec = set[members[0]];
    spec.fault = FaultPlan::none();
    base.result = run_scenario(spec, static_cast<u32>(members[0]), nullptr,
                               nullptr, &io);
  }
  base.targets = std::move(io.capture_targets);  // canonical sorted order
  base.snapshots = std::move(io.captured);
  base.final_state = std::move(io.final_state);
  return base;
}

ScenarioResult run_fork(const ScenarioSet& set, size_t i,
                        const GroupBase& base) {
  SnapshotIo io;
  if (base.ok()) {
    io.resume = base.snapshot_for(set[i].fault.start);
    io.divergence_ref = base.final_state;
  }
  return run_scenario(set[i], static_cast<u32>(i), nullptr, nullptr, &io);
}

}  // namespace higpu::exp
