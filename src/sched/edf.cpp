#include "sched/edf.h"

namespace higpu::sched {

void EdfKernelScheduler::dispatch(sim::Gpu& gpu) {
  const auto& states = gpu.kernel_states();
  // The finished prefix only grows; skip it in amortized O(1) so long-running
  // serve sessions (thousands of retired launches) stay cheap per cycle.
  while (first_unfinished_ < states.size() &&
         states[first_unfinished_]->finished())
    ++first_unfinished_;

  if (placement_ == Placement::kSrrs) {
    // Serialized placement: at most one kernel is in flight. If a started
    // kernel still has undispatched blocks it MUST keep dispatching —
    // preferring a newer, earlier-deadline kernel here would deadlock (the
    // newcomer cannot start until the GPU drains, which needs the started
    // kernel's remaining blocks placed).
    for (u32 k = first_unfinished_; k < states.size(); ++k) {
      sim::KernelState* ks = states[k];
      if (ks->finished() || !ks->started()) continue;
      if (ks->fully_dispatched()) return;  // draining: nobody else may start
      const sim::KernelLaunch& launch = gpu.launch_of(ks->launch_id);
      const u32 target =
          (launch.hints.start_sm + ks->blocks_dispatched) % gpu.num_sms();
      if (gpu.sm_can_accept(target, launch))
        gpu.try_dispatch_block(*ks, target);
      return;
    }
  }

  // EDF selection over the pending kernels: earliest stream deadline first,
  // launch order breaking ties (and ordering the no-deadline tail).
  sim::KernelState* best = nullptr;
  u64 best_deadline = kNoDeadline;
  for (u32 k = first_unfinished_; k < states.size(); ++k) {
    sim::KernelState* ks = states[k];
    if (ks->finished() || ks->fully_dispatched() || !ks->arrived(gpu.now()))
      continue;
    if (!ks->started() && !gpu.stream_ready(*ks)) continue;
    const u64 d = stream_deadline(gpu.launch_of(ks->launch_id).stream);
    if (best == nullptr || d < best_deadline) {
      best = ks;
      best_deadline = d;
    }
  }
  if (best == nullptr) return;

  const sim::KernelLaunch& launch = gpu.launch_of(best->launch_id);
  if (placement_ == Placement::kSrrs) {
    // Nothing is started (handled above): EDF picks who starts next, but the
    // SRRS rule still holds — a kernel starts only on an idle GPU.
    if (!gpu.all_sms_drained()) return;
    const u32 target =
        (launch.hints.start_sm + best->blocks_dispatched) % gpu.num_sms();
    if (gpu.sm_can_accept(target, launch))
      gpu.try_dispatch_block(*best, target);
    return;
  }

  // Greedy masked placement (Default-scheduler behaviour) for the selected
  // kernel only: EDF owns kernel order, the cursor owns SM fairness.
  const u32 n = gpu.num_sms();
  for (u32 i = 0; i < n; ++i) {
    const u32 sm = (rr_cursor_ + i) % n;
    if (!launch.hints.sm_allowed(sm)) continue;
    if (!gpu.sm_can_accept(sm, launch)) continue;
    if (gpu.try_dispatch_block(*best, sm)) {
      rr_cursor_ = (sm + 1) % n;
      return;  // one block per cycle GPU-wide
    }
  }
}

}  // namespace higpu::sched
