// Memory-system contention bench: drives MemHierarchy directly with
// synthetic multi-SM access streams and reports, per memory configuration,
// both the model's own evaluation throughput (accesses simulated per second
// of host time — the hot path the O(n^2) coalescer fix and flat MSHR serve)
// and the modelled contention (makespan, hit rates, row-buffer locality,
// MSHR stalls, writeback traffic). Emits BENCH_memsys.json so the memory
// model's perf and fidelity trajectory is tracked from PR to PR.
//
//   $ ./bench_memsys_contention [--rounds=N] [--out=BENCH_memsys.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "memsys/hierarchy.h"

namespace {

using namespace higpu;
using memsys::MemHierarchy;
using memsys::MemParams;

constexpr u32 kSms = 6;

struct PatternResult {
  std::string name;
  double accesses_per_sec = 0;  // host-side model throughput
  Cycle makespan = 0;           // modelled completion of the last access
  double l1_hit_rate = 0;
  double row_hit_rate = 0;
  u64 mshr_stalls = 0;
  u64 writebacks = 0;  // L1 dirty evictions + write-through stores
};

enum class Pattern { kStream, kStride, kHotset, kChase };

Pattern parse_pattern(const std::string& name) {
  if (name == "stream") return Pattern::kStream;
  if (name == "stride") return Pattern::kStride;
  if (name == "hotset") return Pattern::kHotset;
  return Pattern::kChase;
}

/// One access of pattern `p` for SM `sm` at round `r`. Patterns are
/// deterministic; `rng` is only used by the chase pattern.
u64 pattern_line(Pattern p, u32 sm, u32 r, Rng& rng) {
  switch (p) {
    case Pattern::kStream:  // disjoint sequential regions: row friendly
      return static_cast<u64>(sm) * (1u << 20) + r;
    case Pattern::kStride:  // shared region, large prime stride: row thrash
      return (static_cast<u64>(r) * 97 + sm * 13) % (1u << 16);
    case Pattern::kHotset:  // small shared working set: hits + write traffic
      return (static_cast<u64>(r) * 7 + sm) % 96;
    case Pattern::kChase:   // uniform random lines
      break;
  }
  return rng.next_below(1 << 18);
}

PatternResult run_pattern(const std::string& name, const MemParams& mp,
                          u32 rounds) {
  MemHierarchy mem(kSms, mp);
  Rng rng(2019);
  PatternResult out;
  out.name = name;
  // Resolve the pattern outside the timed loop: accesses_per_sec tracks the
  // model's hot path, not string comparisons.
  const Pattern pat = parse_pattern(name);
  const bool write_heavy = pat == Pattern::kHotset;

  const auto t0 = std::chrono::steady_clock::now();
  Cycle makespan = 0;
  for (u32 r = 0; r < rounds; ++r) {
    const Cycle now = static_cast<Cycle>(r) * 2;
    for (u32 sm = 0; sm < kSms; ++sm) {
      const u64 line = pattern_line(pat, sm, r, rng);
      const bool is_write =
          write_heavy ? (r + sm) % 2 == 0 : (r + sm) % 10 == 0;
      makespan = std::max(makespan, mem.access_line(sm, line, is_write, now).done);
    }
  }
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const StatSet s = mem.stats();
  const u64 hits = s.get("l1_hits") + s.get("l1_write_hits");
  const u64 total = hits + s.get("l1_misses") + s.get("l1_write_misses") +
                    s.get("l1_mshr_merges");
  const u64 row = s.get("dram_row_hits") + s.get("dram_row_misses");
  out.accesses_per_sec =
      sec > 0 ? static_cast<double>(rounds) * kSms / sec : 0.0;
  out.makespan = makespan;
  out.l1_hit_rate = total ? static_cast<double>(hits) / total : 0.0;
  out.row_hit_rate = row ? static_cast<double>(s.get("dram_row_hits")) / row : 0.0;
  out.mshr_stalls = s.get("l1_mshr_stalls");
  out.writebacks = s.get("l1_writebacks") + s.get("l1_write_through");
  return out;
}

struct Config {
  std::string label;
  MemParams mp;
};

std::vector<Config> configs() {
  std::vector<Config> out;
  out.push_back({"default", MemParams{}});
  Config wt{"wt-nwa", MemParams{}};
  wt.mp.l1_write_policy = memsys::WritePolicy::kWriteThrough;
  wt.mp.l1_write_alloc = memsys::WriteAlloc::kNoAllocate;
  out.push_back(wt);
  Config mshr{"mshr4", MemParams{}};
  mshr.mp.l1_mshr_entries = 4;
  out.push_back(mshr);
  Config dbk{"dbk1", MemParams{}};
  dbk.mp.dram_banks_per_channel = 1;
  out.push_back(dbk);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  u32 rounds = 20000;
  std::string out_path = "BENCH_memsys.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0)
      rounds = static_cast<u32>(std::strtoul(argv[i] + 9, nullptr, 10));
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
  }

  const std::vector<std::string> patterns = {"stream", "stride", "hotset",
                                             "chase"};
  const std::vector<Config> cfgs = configs();

  std::string json = "{\n  \"bench\": \"memsys_contention\",\n  \"rounds\": " +
                     std::to_string(rounds) + ",\n  \"configs\": [\n";
  for (size_t c = 0; c < cfgs.size(); ++c) {
    const Config& cfg = cfgs[c];
    std::printf("-- %s --\n", cfg.label.c_str());
    json += "    {\"label\": \"" + cfg.label + "\", \"patterns\": [\n";
    for (size_t p = 0; p < patterns.size(); ++p) {
      const PatternResult r = run_pattern(patterns[p], cfg.mp, rounds);
      std::printf("  %-7s %8.3g acc/s  makespan=%-9llu l1=%5.1f%%  row=%5.1f%%  "
                  "stalls=%-6llu wb=%llu\n",
                  r.name.c_str(), r.accesses_per_sec,
                  static_cast<unsigned long long>(r.makespan),
                  100.0 * r.l1_hit_rate, 100.0 * r.row_hit_rate,
                  static_cast<unsigned long long>(r.mshr_stalls),
                  static_cast<unsigned long long>(r.writebacks));
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "      {\"name\": \"%s\", \"model_accesses_per_sec\": "
                    "%.1f, \"makespan_cycles\": %llu, \"l1_hit_rate\": %.4f, "
                    "\"row_hit_rate\": %.4f, \"mshr_stalls\": %llu, "
                    "\"writebacks\": %llu}%s\n",
                    r.name.c_str(), r.accesses_per_sec,
                    static_cast<unsigned long long>(r.makespan), r.l1_hit_rate,
                    r.row_hit_rate,
                    static_cast<unsigned long long>(r.mshr_stalls),
                    static_cast<unsigned long long>(r.writebacks),
                    p + 1 < patterns.size() ? "," : "");
      json += buf;
    }
    json += std::string("    ]}") + (c + 1 < cfgs.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  return 1;
}
