// Checkpoint/restore subsystem tests.
//
// The load-bearing guarantee: a run resumed from a snapshot is bit-identical
// to a run that was never interrupted — results, cycle counts, statistics,
// the modelled timeline — under both simulation engines, for every workload,
// with or without an armed fault (including snapshots taken mid fault
// window). On top of that: rollback recovery beats re-execution on response
// time, snapshot hash diffing localizes fault divergence, campaign
// fast-forward returns bit-identical ScenarioResults, and the ScenarioSet
// sweep builders reject empty bases loudly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/campaign.h"
#include "sched/policies.h"

namespace higpu {
namespace {

using exp::FaultPlan;
using exp::ScenarioResult;
using exp::ScenarioSet;
using exp::ScenarioSpec;
using exp::SnapshotIo;

ScenarioSpec make_spec(const std::string& workload, sim::SimEngine engine) {
  ScenarioSpec s;
  s.workload = workload;
  s.gpu.engine = engine;
  return s;
}

std::string diff_hint(const ScenarioResult& a, const ScenarioResult& b) {
  std::string out;
  auto f = [&](const char* name, u64 x, u64 y) {
    if (x != y)
      out += std::string(name) + " " + std::to_string(x) + " vs " +
             std::to_string(y) + "; ";
  };
  f("kernel_cycles", a.kernel_cycles, b.kernel_cycles);
  f("elapsed_ns", a.elapsed_ns, b.elapsed_ns);
  f("ff_cycles", a.ff_cycles, b.ff_cycles);
  f("attempts", a.attempts, b.attempts);
  f("comparisons", a.comparisons, b.comparisons);
  f("mismatches", a.mismatches, b.mismatches);
  f("corruptions", a.corruptions, b.corruptions);
  f("verified", a.verified, b.verified);
  f("instructions", a.stats.get("instructions"),
    b.stats.get("instructions"));
  f("stats==", a.stats == b.stats, true);
  return out.empty() ? "(labels/other fields differ)" : out;
}

/// Capture a snapshot at `target` during one run of `capture_spec`, fork
/// `fork_spec` from it, and require the fork to be bit-identical to a
/// from-scratch run of `fork_spec`. Also requires the capture run itself to
/// be unperturbed by the captures.
void expect_fork_identical(const ScenarioSpec& capture_spec,
                           const ScenarioSpec& fork_spec, Cycle target) {
  const ScenarioResult scratch_capture = exp::run_scenario(capture_spec);
  ASSERT_TRUE(scratch_capture.ok) << scratch_capture.error;
  const ScenarioResult scratch_fork = exp::run_scenario(fork_spec);
  ASSERT_TRUE(scratch_fork.ok) << scratch_fork.error;

  SnapshotIo base_io;
  base_io.capture_targets = {target};
  const ScenarioResult base =
      exp::run_scenario(capture_spec, 0, nullptr, nullptr, &base_io);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_TRUE(base.deterministic_fields_equal(scratch_capture))
      << "captures perturbed the capture run: " << diff_hint(base, scratch_capture);
  ASSERT_NE(base_io.captured[0], nullptr)
      << capture_spec.label() << ": no snapshot covering cycle " << target;
  EXPECT_LE(base_io.captured[0]->cycle, target);

  SnapshotIo fork_io;
  fork_io.resume = base_io.captured[0];
  fork_io.divergence_ref = base_io.final_state;
  const ScenarioResult fork =
      exp::run_scenario(fork_spec, 0, nullptr, nullptr, &fork_io);
  ASSERT_TRUE(fork.ok) << fork.error;
  EXPECT_TRUE(fork.deterministic_fields_equal(scratch_fork))
      << fork_spec.label() << " forked from cycle "
      << base_io.captured[0]->cycle << ": " << diff_hint(fork, scratch_fork);
}

// ---- Save -> restore -> run bit-identical, all workloads x both engines ---

class CkptAllWorkloads
    : public ::testing::TestWithParam<std::tuple<std::string, sim::SimEngine>> {
};

TEST_P(CkptAllWorkloads, SaveRestoreRunBitIdentical) {
  const auto& [workload, engine] = GetParam();
  ScenarioSpec spec = make_spec(workload, engine);
  // Aim mid-execution: halfway through the total simulated cycle span.
  const ScenarioResult probe = exp::run_scenario(spec);
  ASSERT_TRUE(probe.ok) << probe.error;
  const Cycle target = probe.stats.get("cycles") / 2;
  expect_fork_identical(spec, spec, target);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CkptAllWorkloads,
    ::testing::Combine(::testing::ValuesIn(workloads::all_names()),
                       ::testing::Values(sim::SimEngine::kEvent,
                                         sim::SimEngine::kDense)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);  // "b+tree" -> "b_tree"
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name + (std::get<1>(info.param) == sim::SimEngine::kEvent
                         ? "_event"
                         : "_dense");
    });

// ---- Fuzz: restore at a random cycle mid fault window ---------------------

TEST(CkptFuzz, RestoreAtRandomCycleMidFaultWindow) {
  Rng rng(0xC0FFEEull);
  const std::vector<std::string> workloads = {"hotspot", "bfs", "srad"};
  for (const std::string& wl : workloads) {
    for (sim::SimEngine engine :
         {sim::SimEngine::kEvent, sim::SimEngine::kDense}) {
      ScenarioSpec clean = make_spec(wl, engine);
      const ScenarioResult probe = exp::run_scenario(clean);
      ASSERT_TRUE(probe.ok) << probe.error;
      const Cycle span = probe.stats.get("cycles");
      ASSERT_GT(span, 6000u);

      // A droop window inside the execution; three fuzzed capture points:
      // before, inside and right at the window.
      const Cycle start = 3000 + rng.next_below(span / 2);
      const Cycle width = 200 + rng.next_below(span / 4);
      ScenarioSpec faulted = clean;
      faulted.fault = FaultPlan::droop(start, width, 1 + rng.next_below(30));

      // Corruption can change control flow, so the faulted run's span is
      // its own; capture targets must fall inside it to be reachable.
      const ScenarioResult fprobe = exp::run_scenario(faulted);
      ASSERT_TRUE(fprobe.ok) << fprobe.error;
      const Cycle fspan = fprobe.stats.get("cycles");

      const Cycle targets[] = {rng.next_below(start), start,
                               start + rng.next_below(width)};
      for (Cycle t : targets) {
        if (t >= fspan) continue;  // window outlived the corrupted run
        SCOPED_TRACE(faulted.label() + " capture@" + std::to_string(t));
        // Capture during the faulted run itself (snapshots carry the armed
        // injector state, mid-window included) and fork the same fault.
        expect_fork_identical(faulted, faulted, t);
      }
    }
  }
}

// ---- Campaign fast-forward ------------------------------------------------

TEST(CkptCampaign, FastForwardBitIdenticalToFromScratch) {
  ScenarioSpec base = make_spec("hotspot", sim::SimEngine::kEvent);
  ScenarioSet set = ScenarioSet::of(base).sweep_faults(
      {FaultPlan::none(), FaultPlan::droop(9000, 400, 3),
       FaultPlan::droop(15000, 400, 3), FaultPlan::transient_sm(0, 12000, 600, 7),
       FaultPlan::permanent_sm(1, 10000, 5)});

  exp::CampaignRunner::Config plain_cfg;
  plain_cfg.jobs = 1;
  const exp::CampaignResult plain = exp::CampaignRunner(plain_cfg).run(set);

  exp::CampaignRunner::Config ff_cfg;
  ff_cfg.jobs = 1;
  ff_cfg.snapshot_fast_forward = true;
  const exp::CampaignResult ff = exp::CampaignRunner(ff_cfg).run(set);

  ASSERT_EQ(plain.results.size(), ff.results.size());
  for (size_t i = 0; i < plain.results.size(); ++i) {
    ASSERT_TRUE(plain.results[i].ok) << plain.results[i].error;
    ASSERT_TRUE(ff.results[i].ok) << ff.results[i].error;
    EXPECT_TRUE(plain.results[i].deterministic_fields_equal(ff.results[i]))
        << plain.results[i].label << ": "
        << diff_hint(ff.results[i], plain.results[i]);
  }
}

TEST(CkptCampaign, FastForwardBitIdenticalWithRollbackRecovery) {
  // Fast-forwarded forks of rollback scenarios must record the same
  // pre-kernel checkpoint anchors a from-scratch run records (at sync
  // entry, not at the teleported resume point), or the recovery walk — and
  // with it response_ns/attempts — would differ.
  ScenarioSpec base = make_spec("hotspot", sim::SimEngine::kEvent);
  base.redundancy = core::RedundancySpec::dcls_rollback(2);
  ScenarioSet set = ScenarioSet::of(base).sweep_faults(
      {FaultPlan::none(), FaultPlan::droop(9000, 1500, 3),
       FaultPlan::droop(15000, 1500, 3)});

  exp::CampaignRunner::Config plain_cfg;
  plain_cfg.jobs = 1;
  const exp::CampaignResult plain = exp::CampaignRunner(plain_cfg).run(set);
  exp::CampaignRunner::Config ff_cfg;
  ff_cfg.jobs = 1;
  ff_cfg.snapshot_fast_forward = true;
  const exp::CampaignResult ff = exp::CampaignRunner(ff_cfg).run(set);

  bool any_recovered = false;
  for (size_t i = 0; i < plain.results.size(); ++i) {
    ASSERT_TRUE(plain.results[i].ok) << plain.results[i].error;
    EXPECT_TRUE(plain.results[i].deterministic_fields_equal(ff.results[i]))
        << plain.results[i].label << ": "
        << diff_hint(ff.results[i], plain.results[i]);
    any_recovered = any_recovered || plain.results[i].recovered;
  }
  EXPECT_TRUE(any_recovered);  // the sweep must actually exercise recovery
}

TEST(CkptCampaign, FastForwardDeterministicAcrossJobs) {
  // Several fault-sweep groups (one per workload) so parallel workers each
  // own whole groups; results must not depend on the thread count.
  ScenarioSet set;
  for (const char* wl : {"hotspot", "nn", "pathfinder"})
    set.append(ScenarioSet::of(make_spec(wl, sim::SimEngine::kEvent))
                   .sweep_faults({FaultPlan::none(),
                                  FaultPlan::droop(8000, 400, 3),
                                  FaultPlan::droop(12000, 400, 3)}));

  exp::CampaignRunner::Config one;
  one.jobs = 1;
  one.snapshot_fast_forward = true;
  exp::CampaignRunner::Config four;
  four.jobs = 4;
  four.snapshot_fast_forward = true;
  const exp::CampaignResult a = exp::CampaignRunner(one).run(set);
  const exp::CampaignResult b = exp::CampaignRunner(four).run(set);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i)
    EXPECT_TRUE(a.results[i].deterministic_fields_equal(b.results[i]))
        << a.results[i].label << ": "
        << diff_hint(b.results[i], a.results[i]);
}

TEST(CkptCampaign, FastForwardReportsDivergenceForSdcOrDetectedFaults) {
  ScenarioSpec base = make_spec("hotspot", sim::SimEngine::kEvent);
  ScenarioSet set = ScenarioSet::of(base).sweep_faults(
      {FaultPlan::none(), FaultPlan::permanent_sm(0, 5000, 7),
       FaultPlan::permanent_sm(0, 5000, 8)});

  exp::CampaignRunner::Config cfg;
  cfg.jobs = 1;
  cfg.snapshot_fast_forward = true;
  const exp::CampaignResult res = exp::CampaignRunner(cfg).run(set);
  for (const ScenarioResult& r : res.results) {
    ASSERT_TRUE(r.ok) << r.error;
    if (!r.fault_active) continue;
    // A permanent SM fault that corrupted datapath results must leave an
    // architecturally divergent trace vs the clean run.
    if (r.corruptions > 0) {
      EXPECT_FALSE(r.divergence.empty()) << r.label;
    }
  }
}

// ---- Rollback recovery ----------------------------------------------------

TEST(CkptRollback, RecoversFromTransientAndBeatsRetry) {
  for (const std::string& wl : {std::string("hotspot"), std::string("nn")}) {
    ScenarioSpec retry = make_spec(wl, sim::SimEngine::kEvent);
    retry.fault = FaultPlan::droop(9000, 1500, 3);
    retry.redundancy = core::RedundancySpec::dcls_retry(2);
    const ScenarioResult r_retry = exp::run_scenario(retry);
    ASSERT_TRUE(r_retry.ok) << r_retry.error;

    ScenarioSpec rollback = retry;
    rollback.redundancy = core::RedundancySpec::dcls_rollback(2);
    const ScenarioResult r_rb = exp::run_scenario(rollback);
    ASSERT_TRUE(r_rb.ok) << r_rb.error;

    if (r_retry.mismatches == 0 && r_retry.attempts == 1) {
      // The window missed this workload's vulnerable phase: nothing to
      // recover, nothing to compare. (The bench sweeps windows that hit.)
      continue;
    }
    SCOPED_TRACE(wl);
    EXPECT_TRUE(r_rb.verified);
    EXPECT_TRUE(r_rb.recovered);
    EXPECT_EQ(r_rb.outcome, fault::Outcome::kDetected);
    EXPECT_GT(r_rb.attempts, 1u);
    // The point of checkpointing: the response fits a tighter budget than
    // whole-offload re-execution.
    EXPECT_LT(r_rb.response_ns, r_retry.response_ns);
  }
}

TEST(CkptRollback, WalksBackPastDirtyIntervalCheckpoints) {
  // Interval checkpoints land mid-execution; ones captured after the fault
  // corrupted state fail their re-comparison and the walk falls back to an
  // older clean checkpoint (ultimately the pre-kernel one).
  ScenarioSpec spec = make_spec("hotspot", sim::SimEngine::kEvent);
  spec.fault = FaultPlan::droop(9000, 1500, 3);
  spec.redundancy = core::RedundancySpec::dcls_rollback(4);
  spec.ckpt = ckpt::CheckpointPolicy::interval(2500);
  const ScenarioResult r = exp::run_scenario(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.recovered);
}

TEST(CkptRollback, PermanentFaultIsNotRecoverable) {
  ScenarioSpec spec = make_spec("hotspot", sim::SimEngine::kEvent);
  spec.fault = FaultPlan::permanent_sm(0, 0, 7);
  spec.redundancy = core::RedundancySpec::dcls_rollback(2);
  const ScenarioResult r = exp::run_scenario(spec);
  ASSERT_TRUE(r.ok) << r.error;
  // A permanent defect re-corrupts every re-execution; rollback must not
  // claim recovery (and must not silently pass corrupted data).
  EXPECT_FALSE(r.recovered);
  EXPECT_EQ(r.outcome, fault::Outcome::kDetected);
}

// ---- Snapshot hashing and divergence diagnosis ----------------------------

TEST(CkptSnapshot, HashStableAcrossSaveRestoreSave) {
  runtime::Device dev;
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kSrrs));
  const memsys::DevPtr p = dev.malloc(4096);
  std::vector<u32> data(1024, 0xDEADBEEF);
  dev.memcpy_h2d(p, data.data(), data.size() * 4);

  const ckpt::SnapshotPtr snap = dev.snapshot();
  EXPECT_GT(snap->size_bytes(), 0u);

  runtime::Device dev2;
  dev2.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kSrrs));
  dev2.restore(*snap);
  const ckpt::SnapshotPtr snap2 = dev2.snapshot();
  EXPECT_EQ(snap->hash(), snap2->hash());
  EXPECT_EQ(ckpt::first_divergence(*snap, *snap2), "");
  EXPECT_EQ(dev2.elapsed_ns(), dev.elapsed_ns());
}

TEST(CkptSnapshot, RestoreRejectsMismatchedParameters) {
  runtime::Device dev;
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kSrrs));
  const ckpt::SnapshotPtr snap = dev.snapshot();

  sim::GpuParams other;
  other.num_sms = 4;
  runtime::Device dev2(other);
  dev2.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kSrrs));
  EXPECT_THROW(dev2.restore(*snap), ckpt::SnapshotError);
}

TEST(CkptSnapshot, DivergenceNamesTheStore) {
  runtime::Device dev;
  dev.set_kernel_scheduler(sched::make_scheduler(sched::Policy::kSrrs));
  const memsys::DevPtr p = dev.malloc(256);
  u32 v = 1;
  dev.memcpy_h2d(p, &v, 4);
  const ckpt::SnapshotPtr a = dev.snapshot();
  v = 2;
  dev.memcpy_h2d(p, &v, 4);
  const ckpt::SnapshotPtr b = dev.snapshot();
  // Only global-store contents (and the host timeline) changed.
  EXPECT_EQ(ckpt::first_divergence(*a, *b).rfind("store", 0), 0u)
      << ckpt::first_divergence(*a, *b);
}

// ---- Policy / label / sweep validation ------------------------------------

TEST(CkptPolicy, IntervalZeroThrows) {
  EXPECT_THROW(ckpt::CheckpointPolicy::interval(0), std::invalid_argument);
}

TEST(CkptPolicy, LabelsAndSpecLabels) {
  EXPECT_EQ(ckpt::CheckpointPolicy::none().label(), "");
  EXPECT_EQ(ckpt::CheckpointPolicy::interval(5000).label(), "ckpt5000");
  EXPECT_EQ(ckpt::CheckpointPolicy::pre_kernel().label(), "prekernel");
  EXPECT_EQ(core::RedundancySpec::dcls_rollback(2).label(), "red-rollback2");

  ScenarioSpec spec = make_spec("hotspot", sim::SimEngine::kEvent);
  spec.redundancy = core::RedundancySpec::dcls_rollback(3);
  spec.ckpt = ckpt::CheckpointPolicy::interval(5000);
  const std::string label = spec.label();
  EXPECT_NE(label.find("red-rollback3"), std::string::npos) << label;
  EXPECT_NE(label.find(":ckpt5000"), std::string::npos) << label;
}

TEST(CkptPolicy, CheckpointingDoesNotPerturbResults) {
  ScenarioSpec plain = make_spec("bfs", sim::SimEngine::kEvent);
  ScenarioSpec ckpted = plain;
  ckpted.ckpt = ckpt::CheckpointPolicy::interval(2000);
  const ScenarioResult a = exp::run_scenario(plain);
  const ScenarioResult b = exp::run_scenario(ckpted);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(a.ff_cycles, b.ff_cycles);
  EXPECT_TRUE(a.stats == b.stats);
}

TEST(CkptSweeps, EmptyBaseSetThrowsNamingTheBuilder) {
  const ScenarioSet empty;
  const auto expect_named = [&](const char* name, auto&& call) {
    try {
      call();
      FAIL() << name << " accepted an empty base set";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << e.what();
    }
  };
  expect_named("sweep_policies",
               [&] { (void)empty.sweep_policies({sched::Policy::kSrrs}); });
  expect_named("sweep_faults",
               [&] { (void)empty.sweep_faults({FaultPlan::none()}); });
  expect_named("sweep_seeds", [&] { (void)empty.sweep_seeds({1}); });
  expect_named("sweep_workloads",
               [&] { (void)empty.sweep_workloads({"hotspot"}); });
  expect_named("sweep_redundancy", [&] { (void)empty.sweep_redundancy(); });
  expect_named("sweep_mem",
               [&] { (void)empty.sweep_mem({memsys::MemParams{}}); });
  expect_named("sweep_write_policies",
               [&] { (void)empty.sweep_write_policies(); });
  expect_named("product", [&] {
    (void)empty.product({[](ScenarioSpec&) {}});
  });
}

}  // namespace
}  // namespace higpu
