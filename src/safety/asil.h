// ISO 26262 ASIL model and decomposition rules (paper §II, Fig. 1).
#pragma once

#include <string>

#include "common/types.h"

namespace higpu::safety {

/// Automotive Safety Integrity Levels. QM = Quality Managed (no safety
/// requirements); D is the most stringent.
enum class Asil { kQM = 0, kA, kB, kC, kD };

const char* asil_name(Asil a);

/// ISO 26262-9 ASIL decomposition: a requirement at `goal` may be decomposed
/// onto two *independent* redundant elements at levels `x` and `y`.
/// Allowed schemes (order of x/y irrelevant):
///   D -> C + A | B + B | D + QM
///   C -> B + A | C + QM
///   B -> A + A | B + QM
///   A -> A + QM
/// Independence (freedom from common-cause faults) is a precondition: the
/// caller asserts it via `independent`; without it no decomposition credit
/// may be taken, which is exactly why the paper needs *diverse* redundancy.
bool valid_decomposition(Asil goal, Asil x, Asil y, bool independent);

/// The ASIL reachable by combining two independent redundant elements
/// ("ASIL addition", Fig. 1 left/middle): A+B -> C, B+B -> D, etc.
/// Returns the highest goal for which valid_decomposition holds.
Asil composed_asil(Asil x, Asil y, bool independent);

/// Fault-Tolerant Time Interval budget: a fault must be detected and the
/// reaction completed within the FTTI for the safety goal to hold.
struct FttiBudget {
  /// Worst-case fault detection latency (redundant execution + readback +
  /// DCLS comparison), in nanoseconds.
  u64 detection_ns = 0;
  /// Worst-case reaction time (e.g. re-execution or transition to degraded
  /// mode), in nanoseconds.
  u64 reaction_ns = 0;
  /// The item's FTTI, in nanoseconds.
  u64 ftti_ns = 0;

  u64 response_ns() const { return detection_ns + reaction_ns; }
  bool met() const { return response_ns() <= ftti_ns; }
  double margin() const {
    return ftti_ns == 0 ? 0.0
                        : 1.0 - static_cast<double>(response_ns()) /
                                    static_cast<double>(ftti_ns);
  }
};

/// Hardware architectural metrics thresholds (ISO 26262-5, Table 4/5).
/// SPFM = single-point fault metric, LFM = latent fault metric.
struct HwMetrics {
  double spfm = 1.0;
  double lfm = 1.0;
};

/// Highest ASIL whose SPFM/LFM targets these metrics meet
/// (D: >=99%/90%, C: >=97%/80%, B: >=90%/60%; A/QM: no quantitative target).
Asil max_asil_for(const HwMetrics& m);

/// Target metrics required for a given ASIL.
HwMetrics required_metrics(Asil a);

std::string describe_decomposition(Asil goal, Asil x, Asil y);

}  // namespace higpu::safety
