#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/cfg.h"

namespace higpu::isa {
namespace {

// Straight-line program: one block, branchless.
TEST(Cfg, StraightLineSingleBlock) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  kb.movi(a, 1);
  kb.iadd(a, a, imm(2));
  kb.exit();
  auto prog = kb.build();
  Cfg cfg(prog->code());
  EXPECT_EQ(cfg.num_blocks(), 1u);
  EXPECT_EQ(cfg.ipdom(0), cfg.virtual_exit());
}

// If/else diamond: reconvergence at the join block.
TEST(Cfg, DiamondReconvergesAtJoin) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  PredReg p = kb.pred();
  Label els = kb.label(), join = kb.label();
  kb.movi(a, 0);                                    // 0
  kb.setp(p, CmpOp::kEq, DType::kI32, a, imm(0));   // 1
  kb.bra(els).guard_if(p);                          // 2
  kb.movi(a, 1);                                    // 3 then
  kb.bra(join);                                     // 4
  kb.bind(els);
  kb.movi(a, 2);                                    // 5 else
  kb.bind(join);
  kb.iadd(a, a, imm(1));                            // 6 join
  kb.exit();                                        // 7
  auto prog = kb.build();
  EXPECT_EQ(prog->at(2).reconv_pc, 6u);  // guarded branch reconverges at join
}

// If without else: reconvergence right after the guarded region.
TEST(Cfg, IfWithoutElse) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  PredReg p = kb.pred();
  Label skip = kb.label();
  kb.movi(a, 0);                                   // 0
  kb.setp(p, CmpOp::kEq, DType::kI32, a, imm(0));  // 1
  kb.bra(skip).guard_if(p);                        // 2
  kb.movi(a, 1);                                   // 3
  kb.bind(skip);
  kb.iadd(a, a, imm(1));                           // 4
  kb.exit();                                       // 5
  auto prog = kb.build();
  EXPECT_EQ(prog->at(2).reconv_pc, 4u);
}

// Loop: the divergent backward branch reconverges at the loop exit.
TEST(Cfg, LoopBranchReconvergesAtExit) {
  KernelBuilder kb("t");
  Reg i = kb.reg();
  PredReg p = kb.pred();
  Label top = kb.label();
  kb.movi(i, 0);                                     // 0
  kb.bind(top);
  kb.iadd(i, i, imm(1));                             // 1
  kb.setp(p, CmpOp::kLt, DType::kI32, i, imm(10));   // 2
  kb.bra(top).guard_if(p);                           // 3
  kb.exit();                                         // 4
  auto prog = kb.build();
  EXPECT_EQ(prog->at(3).reconv_pc, 4u);
}

// Branch straight to exit: reconverges only at the end sentinel.
TEST(Cfg, BranchToExitBlockReconvergesAtEnd) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  PredReg p = kb.pred();
  Label out = kb.label();
  kb.movi(a, 0);                                   // 0
  kb.setp(p, CmpOp::kEq, DType::kI32, a, imm(0));  // 1
  kb.bra(out).guard_if(p);                         // 2
  kb.movi(a, 1);                                   // 3
  kb.bind(out);
  kb.exit();                                       // 4
  auto prog = kb.build();
  // IPDOM is the exit block itself (pc 4).
  EXPECT_EQ(prog->at(2).reconv_pc, 4u);
}

// Nested if inside a loop: inner reconvergence stays inside the loop body.
TEST(Cfg, NestedIfInsideLoop) {
  KernelBuilder kb("t");
  Reg i = kb.reg(), a = kb.reg();
  PredReg p = kb.pred(), q = kb.pred();
  Label top = kb.label(), skip = kb.label();
  kb.movi(i, 0);                                    // 0
  kb.movi(a, 0);                                    // 1
  kb.bind(top);
  kb.setp(q, CmpOp::kEq, DType::kI32, i, imm(3));   // 2
  kb.bra(skip).guard_if(q);                         // 3
  kb.iadd(a, a, imm(1));                            // 4
  kb.bind(skip);
  kb.iadd(i, i, imm(1));                            // 5
  kb.setp(p, CmpOp::kLt, DType::kI32, i, imm(10));  // 6
  kb.bra(top).guard_if(p);                          // 7
  kb.exit();                                        // 8
  auto prog = kb.build();
  EXPECT_EQ(prog->at(3).reconv_pc, 5u);  // inner if joins at `skip`
  EXPECT_EQ(prog->at(7).reconv_pc, 8u);  // loop joins at exit
}

TEST(Cfg, PostdominanceQueries) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  PredReg p = kb.pred();
  Label els = kb.label(), join = kb.label();
  kb.movi(a, 0);
  kb.setp(p, CmpOp::kEq, DType::kI32, a, imm(0));
  kb.bra(els).guard_if(p);
  kb.movi(a, 1);
  kb.bra(join);
  kb.bind(els);
  kb.movi(a, 2);
  kb.bind(join);
  kb.exit();
  auto prog = kb.build();
  Cfg cfg(prog->code());
  const u32 entry = cfg.block_of(0);
  const u32 join_blk = cfg.block_of(prog->size() - 1);
  EXPECT_TRUE(cfg.postdominates(join_blk, entry));
  EXPECT_FALSE(cfg.postdominates(entry, join_blk));
}

}  // namespace
}  // namespace higpu::isa
