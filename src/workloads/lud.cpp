#include "workloads/lud.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr u32 kT = 16;

/// Shared-memory tile helpers: tiles are kT x kT floats.
constexpr u32 kTileBytes = kT * kT * 4;

/// Emit code loading global tile (brow, bcol) into shared memory at
/// `sh_base` bytes; each 16x16 thread moves one element. `ty`/`tx` are the
/// thread coordinates, `mat`/`n` the matrix base and dimension, and
/// `brow`/`bcol` tile indices in registers.
void emit_tile_load(isa::KernelBuilder& kb, isa::Reg mat, isa::Reg n,
                    isa::Reg brow, isa::Reg bcol, isa::Reg ty, isa::Reg tx,
                    u32 sh_base) {
  using namespace isa;
  Reg row = kb.reg(), col = kb.reg(), lin = kb.reg(), g = kb.reg(),
      sh = kb.reg(), v = kb.reg();
  kb.imad(row, brow, imm(static_cast<i32>(kT)), ty);
  kb.imad(col, bcol, imm(static_cast<i32>(kT)), tx);
  kb.imad(lin, row, n, col);
  kb.imad(g, lin, imm(4), mat);
  kb.ldg(v, g);
  kb.imad(lin, ty, imm(static_cast<i32>(kT)), tx);
  kb.imad(sh, lin, imm(4), imm(static_cast<i32>(sh_base)));
  kb.sts(sh, v);
}

/// Emit code storing shared tile at `sh_base` back to global tile
/// (brow, bcol).
void emit_tile_store(isa::KernelBuilder& kb, isa::Reg mat, isa::Reg n,
                     isa::Reg brow, isa::Reg bcol, isa::Reg ty, isa::Reg tx,
                     u32 sh_base) {
  using namespace isa;
  Reg row = kb.reg(), col = kb.reg(), lin = kb.reg(), g = kb.reg(),
      sh = kb.reg(), v = kb.reg();
  kb.imad(lin, ty, imm(static_cast<i32>(kT)), tx);
  kb.imad(sh, lin, imm(4), imm(static_cast<i32>(sh_base)));
  kb.lds(v, sh);
  kb.imad(row, brow, imm(static_cast<i32>(kT)), ty);
  kb.imad(col, bcol, imm(static_cast<i32>(kT)), tx);
  kb.imad(lin, row, n, col);
  kb.imad(g, lin, imm(4), mat);
  kb.stg(g, v);
}

/// Diagonal kernel: in-place LU of tile (k,k). One 16x16 block.
/// Params: mat, n, k.
isa::ProgramPtr build_lud_diagonal() {
  using namespace isa;
  KernelBuilder kb("lud_diagonal");
  kb.set_shared_bytes(kTileBytes);

  Reg mat = kb.reg(), n = kb.reg(), k = kb.reg();
  kb.ldp(mat, 0);
  kb.ldp(n, 1);
  kb.ldp(k, 2);
  Reg tx = kb.reg(), ty = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);

  emit_tile_load(kb, mat, n, k, k, ty, tx, 0);
  kb.bar();

  // My element's shared address.
  Reg lin = kb.reg(), my_sh = kb.reg();
  kb.imad(lin, ty, imm(static_cast<i32>(kT)), tx);
  kb.imul(my_sh, lin, imm(4));

  Reg l = kb.reg(), u = kb.reg(), mine = kb.reg(), prod = kb.reg(),
      piv = kb.reg(), a_l = kb.reg(), a_u = kb.reg();
  // All three predicates are reused across the unrolled pivot iterations:
  // each is fully consumed within its iteration, and 3*(kT-1) fresh
  // allocations would blow the 8-register predicate file.
  PredReg p_row = kb.pred(), p_l = kb.pred(), p_in = kb.pred();
  for (u32 i = 0; i + 1 < kT; ++i) {
    kb.setp(p_row, CmpOp::kGt, DType::kI32, ty, imm(static_cast<i32>(i)));
    // L column: threads (ty>i, tx==i) divide by the pivot.
    kb.setp_and(p_l, CmpOp::kEq, DType::kI32, tx, imm(static_cast<i32>(i)),
                p_row);
    kb.lds(piv, imm(static_cast<i32>((i * kT + i) * 4)));
    kb.lds(mine, my_sh).guard_if(p_l);
    kb.fdiv(mine, mine, piv).guard_if(p_l);
    kb.sts(my_sh, mine).guard_if(p_l);
    kb.bar();
    // Trailing update: threads (ty>i, tx>i).
    kb.setp_and(p_in, CmpOp::kGt, DType::kI32, tx, imm(static_cast<i32>(i)),
                p_row);
    kb.imad(a_l, ty, imm(static_cast<i32>(kT * 4)),
            imm(static_cast<i32>(i * 4)));
    kb.lds(l, a_l).guard_if(p_in);
    kb.imad(a_u, tx, imm(4), imm(static_cast<i32>(i * kT * 4)));
    kb.lds(u, a_u).guard_if(p_in);
    kb.lds(mine, my_sh).guard_if(p_in);
    kb.fmul(prod, l, u).guard_if(p_in);
    kb.fsub(mine, mine, prod).guard_if(p_in);
    kb.sts(my_sh, mine).guard_if(p_in);
    kb.bar();
  }

  emit_tile_store(kb, mat, n, k, k, ty, tx, 0);
  kb.exit();
  return kb.build();
}

/// Row-perimeter kernel: A[k][j] <- L_kk^-1 * A[k][j] for j = k+1+blockIdx.x.
/// Shared: L tile at 0, A tile at kTileBytes. Params: mat, n, k.
isa::ProgramPtr build_lud_row_perimeter() {
  using namespace isa;
  KernelBuilder kb("lud_perimeter_row");
  kb.set_shared_bytes(2 * kTileBytes);

  Reg mat = kb.reg(), n = kb.reg(), k = kb.reg();
  kb.ldp(mat, 0);
  kb.ldp(n, 1);
  kb.ldp(k, 2);
  Reg tx = kb.reg(), ty = kb.reg(), cta = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);
  kb.s2r(cta, SReg::kCtaIdX);
  Reg j = kb.reg();
  kb.iadd(j, k, cta);
  kb.iadd(j, j, imm(1));

  emit_tile_load(kb, mat, n, k, k, ty, tx, 0);           // L tile
  emit_tile_load(kb, mat, n, k, j, ty, tx, kTileBytes);  // A tile
  kb.bar();

  Reg lin = kb.reg(), my_sh = kb.reg();
  kb.imad(lin, ty, imm(static_cast<i32>(kT)), tx);
  kb.imad(my_sh, lin, imm(4), imm(static_cast<i32>(kTileBytes)));

  Reg l = kb.reg(), u = kb.reg(), mine = kb.reg(), prod = kb.reg(),
      a_l = kb.reg();
  // Reused per-iteration predicate; see build_lud_diagonal.
  PredReg p = kb.pred();
  for (u32 i = 0; i + 1 < kT; ++i) {
    kb.setp(p, CmpOp::kGt, DType::kI32, ty, imm(static_cast<i32>(i)));
    kb.imad(a_l, ty, imm(static_cast<i32>(kT * 4)),
            imm(static_cast<i32>(i * 4)));
    kb.lds(l, a_l).guard_if(p);
    // u = A[i][tx]: address = kTileBytes + (i*kT + tx)*4
    kb.imad(a_l, tx, imm(4), imm(static_cast<i32>(kTileBytes + i * kT * 4)))
        .guard_if(p);
    kb.lds(u, a_l).guard_if(p);
    kb.lds(mine, my_sh).guard_if(p);
    kb.fmul(prod, l, u).guard_if(p);
    kb.fsub(mine, mine, prod).guard_if(p);
    kb.sts(my_sh, mine).guard_if(p);
    kb.bar();
  }

  emit_tile_store(kb, mat, n, k, j, ty, tx, kTileBytes);
  kb.exit();
  return kb.build();
}

/// Column-perimeter kernel: A[i][k] <- A[i][k] * U_kk^-1 for
/// i = k+1+blockIdx.x. Shared: U tile at 0, A tile at kTileBytes.
isa::ProgramPtr build_lud_col_perimeter() {
  using namespace isa;
  KernelBuilder kb("lud_perimeter_col");
  kb.set_shared_bytes(2 * kTileBytes);

  Reg mat = kb.reg(), n = kb.reg(), k = kb.reg();
  kb.ldp(mat, 0);
  kb.ldp(n, 1);
  kb.ldp(k, 2);
  Reg tx = kb.reg(), ty = kb.reg(), cta = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);
  kb.s2r(cta, SReg::kCtaIdX);
  Reg i_blk = kb.reg();
  kb.iadd(i_blk, k, cta);
  kb.iadd(i_blk, i_blk, imm(1));

  emit_tile_load(kb, mat, n, k, k, ty, tx, 0);               // U tile
  emit_tile_load(kb, mat, n, i_blk, k, ty, tx, kTileBytes);  // A tile
  kb.bar();

  Reg lin = kb.reg(), my_sh = kb.reg();
  kb.imad(lin, ty, imm(static_cast<i32>(kT)), tx);
  kb.imad(my_sh, lin, imm(4), imm(static_cast<i32>(kTileBytes)));

  Reg xj = kb.reg(), u = kb.reg(), mine = kb.reg(), prod = kb.reg(),
      a_x = kb.reg(), a_u = kb.reg(), piv = kb.reg();
  // Reused per-iteration predicates; see build_lud_diagonal.
  PredReg p_div = kb.pred(), p_upd = kb.pred();
  for (u32 jcol = 0; jcol < kT; ++jcol) {
    // Divide column jcol by U[j][j].
    kb.setp(p_div, CmpOp::kEq, DType::kI32, tx, imm(static_cast<i32>(jcol)));
    kb.lds(piv, imm(static_cast<i32>((jcol * kT + jcol) * 4)));
    kb.lds(mine, my_sh).guard_if(p_div);
    kb.fdiv(mine, mine, piv).guard_if(p_div);
    kb.sts(my_sh, mine).guard_if(p_div);
    kb.bar();
    if (jcol + 1 == kT) break;
    // Update columns tx > jcol: a[ty][tx] -= a[ty][jcol] * U[jcol][tx].
    kb.setp(p_upd, CmpOp::kGt, DType::kI32, tx, imm(static_cast<i32>(jcol)));
    kb.imad(a_x, ty, imm(static_cast<i32>(kT * 4)),
            imm(static_cast<i32>(kTileBytes + jcol * 4)));
    kb.lds(xj, a_x).guard_if(p_upd);
    kb.imad(a_u, tx, imm(4), imm(static_cast<i32>(jcol * kT * 4)));
    kb.lds(u, a_u).guard_if(p_upd);
    kb.lds(mine, my_sh).guard_if(p_upd);
    kb.fmul(prod, xj, u).guard_if(p_upd);
    kb.fsub(mine, mine, prod).guard_if(p_upd);
    kb.sts(my_sh, mine).guard_if(p_upd);
    kb.bar();
  }

  emit_tile_store(kb, mat, n, i_blk, k, ty, tx, kTileBytes);
  kb.exit();
  return kb.build();
}

/// Internal kernel: A[i][j] -= A[i][k] * A[k][j] over the trailing
/// submatrix; blockIdx = (j-k-1, i-k-1). Shared: L tile, U tile.
isa::ProgramPtr build_lud_internal() {
  using namespace isa;
  KernelBuilder kb("lud_internal");
  kb.set_shared_bytes(2 * kTileBytes);

  Reg mat = kb.reg(), n = kb.reg(), k = kb.reg();
  kb.ldp(mat, 0);
  kb.ldp(n, 1);
  kb.ldp(k, 2);
  Reg tx = kb.reg(), ty = kb.reg(), cx = kb.reg(), cy = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);
  kb.s2r(cx, SReg::kCtaIdX);
  kb.s2r(cy, SReg::kCtaIdY);
  Reg bi = kb.reg(), bj = kb.reg();
  kb.iadd(bi, k, cy);
  kb.iadd(bi, bi, imm(1));
  kb.iadd(bj, k, cx);
  kb.iadd(bj, bj, imm(1));

  emit_tile_load(kb, mat, n, bi, k, ty, tx, 0);           // L tile A[i][k]
  emit_tile_load(kb, mat, n, k, bj, ty, tx, kTileBytes);  // U tile A[k][j]
  kb.bar();

  // acc = A[i*16+ty][j*16+tx]
  Reg row = kb.reg(), col = kb.reg(), lin = kb.reg(), g = kb.reg(),
      acc = kb.reg();
  kb.imad(row, bi, imm(static_cast<i32>(kT)), ty);
  kb.imad(col, bj, imm(static_cast<i32>(kT)), tx);
  kb.imad(lin, row, n, col);
  kb.imad(g, lin, imm(4), mat);
  kb.ldg(acc, g);

  Reg l = kb.reg(), u = kb.reg(), prod = kb.reg(), a_l = kb.reg(),
      a_u = kb.reg();
  for (u32 m = 0; m < kT; ++m) {
    kb.imad(a_l, ty, imm(static_cast<i32>(kT * 4)),
            imm(static_cast<i32>(m * 4)));
    kb.lds(l, a_l);
    kb.imad(a_u, tx, imm(4), imm(static_cast<i32>(kTileBytes + m * kT * 4)));
    kb.lds(u, a_u);
    kb.fmul(prod, l, u);
    kb.fsub(acc, acc, prod);
  }
  kb.stg(g, acc);
  kb.exit();
  return kb.build();
}

}  // namespace

void Lud::setup(Scale scale, u64 seed) {
  n_ = scale == Scale::kTest ? 32 : 256;
  Rng rng(seed);

  matrix_.resize(static_cast<size_t>(n_) * n_);
  for (u32 r = 0; r < n_; ++r) {
    float sum = 0.0f;
    for (u32 c = 0; c < n_; ++c) {
      matrix_[static_cast<size_t>(r) * n_ + c] = rng.next_float(-1.0f, 1.0f);
      sum += std::fabs(matrix_[static_cast<size_t>(r) * n_ + c]);
    }
    matrix_[static_cast<size_t>(r) * n_ + r] += sum + 1.0f;
  }

  // CPU reference: identical blocked algorithm, identical operation order.
  reference_ = matrix_;
  auto at = [&](u32 r, u32 c) -> float& {
    return reference_[static_cast<size_t>(r) * n_ + c];
  };
  const u32 nb = n_ / kTile;
  for (u32 k = 0; k < nb; ++k) {
    const u32 base = k * kTile;
    // Diagonal.
    for (u32 i = 0; i + 1 < kTile; ++i) {
      for (u32 r = i + 1; r < kTile; ++r)
        at(base + r, base + i) /= at(base + i, base + i);
      for (u32 r = i + 1; r < kTile; ++r)
        for (u32 c = i + 1; c < kTile; ++c)
          at(base + r, base + c) -=
              at(base + r, base + i) * at(base + i, base + c);
    }
    // Row perimeter.
    for (u32 jb = k + 1; jb < nb; ++jb) {
      const u32 cb = jb * kTile;
      for (u32 i = 0; i + 1 < kTile; ++i)
        for (u32 r = i + 1; r < kTile; ++r)
          for (u32 c = 0; c < kTile; ++c)
            at(base + r, cb + c) -=
                at(base + r, base + i) * at(base + i, cb + c);
    }
    // Column perimeter.
    for (u32 ib = k + 1; ib < nb; ++ib) {
      const u32 rb = ib * kTile;
      for (u32 j = 0; j < kTile; ++j) {
        for (u32 r = 0; r < kTile; ++r)
          at(rb + r, base + j) /= at(base + j, base + j);
        for (u32 r = 0; r < kTile; ++r)
          for (u32 c = j + 1; c < kTile; ++c)
            at(rb + r, base + c) -=
                at(rb + r, base + j) * at(base + j, base + c);
      }
    }
    // Internal.
    for (u32 ib = k + 1; ib < nb; ++ib)
      for (u32 jb = k + 1; jb < nb; ++jb)
        for (u32 r = 0; r < kTile; ++r)
          for (u32 c = 0; c < kTile; ++c) {
            float acc = at(ib * kTile + r, jb * kTile + c);
            for (u32 m = 0; m < kTile; ++m)
              acc -= at(ib * kTile + r, base + m) * at(base + m, jb * kTile + c);
            at(ib * kTile + r, jb * kTile + c) = acc;
          }
  }
  result_.clear();
}

void Lud::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_parse(input_bytes() * 8);  // textual matrix file

  const u64 bytes = static_cast<u64>(n_) * n_ * 4;
  core::ReplicaPtr d_mat = session.alloc(bytes);
  session.h2d(d_mat, matrix_.data(), bytes);

  isa::ProgramPtr diag = build_lud_diagonal();
  isa::ProgramPtr row_perim = build_lud_row_perimeter();
  isa::ProgramPtr col_perim = build_lud_col_perimeter();
  isa::ProgramPtr internal = build_lud_internal();

  const u32 nb = n_ / kTile;
  for (u32 k = 0; k < nb; ++k) {
    session.launch(diag, sim::Dim3{1, 1, 1}, sim::Dim3{kTile, kTile, 1},
                   {d_mat, n_, k});
    const u32 rem = nb - k - 1;
    if (rem == 0) break;
    session.launch(row_perim, sim::Dim3{rem, 1, 1},
                   sim::Dim3{kTile, kTile, 1}, {d_mat, n_, k});
    session.launch(col_perim, sim::Dim3{rem, 1, 1},
                   sim::Dim3{kTile, kTile, 1}, {d_mat, n_, k});
    session.launch(internal, sim::Dim3{rem, rem, 1},
                   sim::Dim3{kTile, kTile, 1}, {d_mat, n_, k});
  }
  session.sync();

  result_.resize(static_cast<size_t>(n_) * n_);
  session.d2h(result_.data(), d_mat, bytes);
  session.compare(d_mat, bytes, result_.data());
}

bool Lud::verify() const { return approx_equal(result_, reference_, 5e-3f); }

u64 Lud::input_bytes() const { return static_cast<u64>(n_) * n_ * 4; }
u64 Lud::output_bytes() const { return input_bytes(); }

}  // namespace higpu::workloads
