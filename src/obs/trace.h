// obs::Tracer — deterministic structured tracing on the simulated timebase.
//
// One Tracer instance records typed events into fixed-capacity per-track
// ring buffers (one track per SM / memory component / tenant / worker).
// Components reach their tracer through a raw pointer that is nullptr when
// tracing is off, so the disabled cost is a single branch and the enabled
// path never allocates after track creation: an emit is a bounds-free store
// into a preallocated ring slot.
//
// Determinism contract: the tracer is an *observer*. It reads the cycle /
// elapsed_ns values the simulation already computed and writes only into
// its own buffers, so results are bit-identical with tracing on or off
// (pinned by tests/trace_identity_test.cpp across both engines and both
// exec modes).
//
// Two timebases share one trace, separated by Chrome process id:
//   pid 0 — device:  ts is the simulated GPU cycle.
//   pid 1 — host:    ts is the modelled (or, for dist, monotonic) ns.
//
// Export is Chrome trace-event JSON tagged "higpu.trace/1" — loadable in
// Perfetto / chrome://tracing. Spans are "X" (complete) events; everything
// else is an "i" (instant). The last-N events across all tracks, merged by
// timestamp, form the flight-recorder dump ("higpu.flight/1") shipped on
// redundancy-compare mismatches and worker death.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace higpu::obs {

constexpr const char* kTraceSchema = "higpu.trace/1";
constexpr const char* kFlightSchema = "higpu.flight/1";

/// Device-timebase tracks use this Chrome pid; host-timebase tracks pid 1.
constexpr u32 kPidDevice = 0;
constexpr u32 kPidHost = 1;

/// Typed event kinds. The wire/JSON name of each kind is ev_name(); spans
/// (is_span()) carry a duration, instants do not.
enum class Ev : u16 {
  // Device timebase (ts = cycle).
  kWarpStall = 1,  // span: one stall episode. a0 = warp slot, a1 = StallCls
  kKernel,         // span: launch -> drain.  a0 = launch id
  kMshrAlloc,      // instant: miss tracked.  a0 = line, a1 = fill cycle
  kMshrFill,       // instant: line filled.   a0 = line
  kDramBank,       // span: bank busy.        a0 = bank index, a1 = row
  kCheckpoint,     // instant: snapshot captured. a0 = capture cycle
  kRestore,        // instant: snapshot restored. a0 = snapshot cycle
  kRollback,       // instant: rollback recovery. a0 = snapshot cycle
  // Host timebase (ts = ns).
  kReqEnqueue,     // instant: a0 = request id, a1 = queue depth after
  kReqServe,       // span: dispatch -> completion. a0 = request id
  kReqShed,        // instant: a0 = request id, a1 = 0 expired / 1 overflow
  kDegrade,        // instant: ladder move. a0 = from level, a1 = to level
  kCompareFail,    // instant: redundancy miscompare. a0 = dissenting words
  kUnitShip,       // instant: a0 = unit id, a1 = worker id
  kUnitResult,     // instant: a0 = unit id, a1 = worker id
  kUnitSteal,      // instant: a0 = unit id, a1 = stealing worker
  kWorkerDeath,    // instant: a0 = worker id
  kLogLine,        // instant: a0 = log level
};

/// Stall classes carried in kWarpStall.a1 (mirrors the SM issue outcomes).
enum class StallCls : u8 { kScoreboard = 0, kBarrier = 1, kStructural = 2 };

const char* ev_name(Ev kind);
bool is_span(Ev kind);
const char* stall_cls_name(StallCls cls);

/// One recorded event. POD; rings hold these by value.
struct TraceEvent {
  u64 ts = 0;   // cycle (pid 0 tracks) or ns (pid 1 tracks)
  u64 dur = 0;  // span length; 0 for instants
  u64 a0 = 0;
  u64 a1 = 0;
  Ev kind = Ev::kWarpStall;
};

/// A flight-recorder entry: an event plus its originating track.
struct TaggedEvent {
  TraceEvent ev;
  u32 track = 0;
};

class Tracer {
 public:
  /// `ring_capacity` events are retained per track; older events are
  /// overwritten (and counted in events_dropped()).
  explicit Tracer(u32 ring_capacity = 4096);

  /// Get-or-create the track named `name` under Chrome process `pid`.
  /// Track ids are dense and stable for the Tracer's lifetime. Idempotent:
  /// re-registering an existing (name, pid) returns the same id.
  u32 track(const std::string& name, u32 pid);

  /// Record one event. `track_id` must come from track().
  void emit(u32 track_id, Ev kind, u64 ts, u64 dur, u64 a0 = 0, u64 a1 = 0);
  void instant(u32 track_id, Ev kind, u64 ts, u64 a0 = 0, u64 a1 = 0) {
    emit(track_id, kind, ts, 0, a0, a1);
  }

  u32 ring_capacity() const { return capacity_; }
  size_t num_tracks() const { return tracks_.size(); }
  const std::string& track_name(u32 track_id) const;
  /// Total events emitted, including ones the ring has since overwritten.
  u64 events_recorded() const { return recorded_; }
  /// Events lost to ring wrap-around.
  u64 events_dropped() const { return dropped_; }

  /// Events currently retained on `track_id`, oldest first.
  std::vector<TraceEvent> events(u32 track_id) const;

  /// The last `n` retained events across all tracks, merged oldest-first by
  /// (ts, track, emit order). This is the flight-recorder view.
  std::vector<TaggedEvent> tail(size_t n) const;

  /// Chrome trace-event JSON for the whole trace ("higpu.trace/1"): one
  /// metadata thread_name record per track, then every retained event.
  std::string to_chrome_json() const;

  /// Compact "higpu.flight/1" JSON object holding tail(n) — the payload
  /// dumped on a redundancy miscompare and shipped on worker death.
  std::string flight_json(size_t n) const;

 private:
  struct Track {
    std::string name;
    u32 pid = kPidDevice;
    std::vector<TraceEvent> ring;  // capacity_ slots, preallocated
    u32 head = 0;                  // next write slot (== count % capacity)
    u64 count = 0;                 // total emitted on this track
  };

  u32 capacity_;
  std::vector<Track> tracks_;
  u64 recorded_ = 0;
  u64 dropped_ = 0;
};

/// Validate `json` against the higpu.trace/1 schema: parses it, checks the
/// schema tag, the traceEvents array, per-event required fields (name, ph,
/// pid, tid, ts; dur on "X" events) and that every (pid, tid) referenced by
/// an event has a thread_name metadata record. Returns "" when valid, else
/// a one-line description of the first problem.
std::string validate_chrome_trace(const std::string& json);

}  // namespace higpu::obs
