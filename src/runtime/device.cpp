#include "runtime/device.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace higpu::runtime {

Device::Device(const sim::GpuParams& gpu_params, const PlatformParams& platform)
    : platform_(platform),
      store_(std::make_unique<memsys::GlobalStore>()),
      gpu_(std::make_unique<sim::Gpu>(gpu_params, store_.get())),
      ns_per_cycle_(1.0 / gpu_params.clock_ghz) {
  gpu_->set_checkpoint_hook([this](Cycle nominal, bool is_target) {
    on_gpu_checkpoint(nominal, is_target);
  });
}

void Device::set_tracer(obs::Tracer* t) {
  obs_ = t;
  obs_ckpt_track_ = t != nullptr ? t->track("ckpt", obs::kPidDevice) : 0;
  gpu_->set_obs_tracer(t);
}

DevPtr Device::malloc(u64 bytes) {
  now_ns_ += platform_.api_call_ns;
  return store_->alloc(bytes);
}

void Device::memcpy_h2d(DevPtr dst, const void* src, u64 bytes) {
  now_ns_ += platform_.transfer_ns(bytes, /*h2d=*/true);
  store_->write_block(dst, src, bytes);
}

void Device::memcpy_d2h(void* dst, DevPtr src, u64 bytes) {
  // cudaMemcpy D2H on the default flow implicitly synchronizes first.
  synchronize();
  now_ns_ += platform_.transfer_ns(bytes, /*h2d=*/false);
  store_->read_block(dst, src, bytes);
}

u32 Device::launch(sim::KernelLaunch launch, u32 stream) {
  verify_launch(launch);
  now_ns_ += platform_.launch_ns;
  launch.stream = stream;
  return gpu_->launch(std::move(launch));
}

void Device::verify_launch(const sim::KernelLaunch& launch) {
  const sim::LaunchVerify mode = gpu_->params().verify;
  if (mode == sim::LaunchVerify::kOff || launch.program == nullptr) return;

  // Memo: one analysis per (program, grid, block) for the Device's
  // lifetime, trace-cache-style — steady-state launches only pay this scan
  // over a handful of distinct kernels. Verification is a pure function of
  // the key (parameters stay symbolic), so replaying the recorded verdict
  // is exact. Each record pins its program (VerifyRecord::program is a
  // shared_ptr): the key is the program's address, which must not be
  // recycled by a later allocation while the verdict is replayable.
  auto same_dim = [](const sim::Dim3& a, const sim::Dim3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  };
  const isa::verify::Result* result = nullptr;
  for (const VerifyRecord& rec : verify_reports_) {
    if (rec.program == launch.program &&
        same_dim(rec.grid, launch.grid) && same_dim(rec.block, launch.block)) {
      verify_memo_hits_ += 1;
      result = &rec.result;
      break;
    }
  }
  if (result == nullptr) {
    isa::verify::LaunchBounds lb;
    lb.ntid_x = launch.block.x;
    lb.ntid_y = launch.block.y;
    lb.ntid_z = launch.block.z;
    lb.nctaid_x = launch.grid.x;
    lb.nctaid_y = launch.grid.y;
    lb.nctaid_z = launch.grid.z;
    verify_reports_.push_back(VerifyRecord{
        launch.program, launch.grid, launch.block,
        isa::verify::verify(*launch.program, lb)});
    result = &verify_reports_.back().result;
  }
  // kWarn lets merely-wrong programs run for report-collection flows
  // (run_workload --verify-only), but a program that would index host
  // memory out of bounds on the deliberately unchecked fetch/reg_at paths
  // is refused in every verifying mode — "warn" has no meaning for UB.
  if (!result->ok() && (mode == sim::LaunchVerify::kEnforce ||
                        result->unsafe_to_execute()))
    throw isa::verify::VerifyError(*result);
}

Cycle Device::synchronize() {
  sync_seq_ += 1;
  const Cycle before = gpu_->now();
  // Pre-kernel checkpoints are captured before any resume restore: a
  // fast-forwarded fork must record the same sync-entry anchor a
  // from-scratch run records (its prefix state here is identical by
  // determinism), not a mid-kernel state teleported in by the resume —
  // otherwise a later rollback would walk different checkpoints and break
  // the fork's bit-identical guarantee.
  if (ckpt_policy_.kind == ckpt::CheckpointPolicy::Kind::kPreKernel &&
      !gpu_->idle())
    push_checkpoint(capture(gpu_->now()), /*anchor=*/true);
  if (resume_ != nullptr && resume_->sync_seq == sync_seq_) {
    // Campaign fast-forward: this run's prefix up to here is deterministic
    // and identical to the run the snapshot came from; teleport over the
    // already-simulated cycles and continue live from the capture point.
    const ckpt::SnapshotPtr snap = std::move(resume_);
    restore(*snap);  // also restores sync_seq_ == the value just computed
  }

  const auto wall0 = std::chrono::steady_clock::now();
  gpu_->run_until_idle();
  sim_wall_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  const Cycle delta = gpu_->now() - before;
  // Only GPU time not already accounted for extends the wall clock.
  if (gpu_->now() > synced_upto_) {
    const Cycle fresh = gpu_->now() - synced_upto_;
    now_ns_ += static_cast<NanoSec>(static_cast<double>(fresh) * ns_per_cycle_);
    synced_upto_ = gpu_->now();
  }
  now_ns_ += platform_.sync_ns;
  gpu_cycles_ += delta;
  return delta;
}

void Device::host_compute(u64 bytes) {
  now_ns_ += platform_.host_compute_ns(bytes);
}

void Device::host_parse(u64 bytes) { now_ns_ += platform_.parse_ns(bytes); }

void Device::host_generate(u64 bytes) { now_ns_ += platform_.generate_ns(bytes); }

void Device::host_compare(u64 bytes) {
  now_ns_ += platform_.compare_ns(bytes);
}

// ---- Checkpoint / restore --------------------------------------------------

void Device::set_checkpoint_policy(const ckpt::CheckpointPolicy& p) {
  ckpt_policy_ = p;
  gpu_->set_checkpoint_interval(
      p.kind == ckpt::CheckpointPolicy::Kind::kInterval ? p.interval_cycles
                                                        : 0);
}

void Device::set_checkpoint_targets(std::vector<Cycle> cycles) {
  std::sort(cycles.begin(), cycles.end());
  cycles.erase(std::unique(cycles.begin(), cycles.end()), cycles.end());
  ckpt_targets_ = cycles;
  target_snaps_.assign(ckpt_targets_.size(), nullptr);
  gpu_->set_checkpoint_targets(std::move(cycles));
}

void Device::on_gpu_checkpoint(Cycle nominal, bool is_target) {
  ckpt::SnapshotPtr snap = capture(nominal);
  if (is_target) {
    const auto it =
        std::lower_bound(ckpt_targets_.begin(), ckpt_targets_.end(), nominal);
    if (it != ckpt_targets_.end() && *it == nominal)
      target_snaps_[static_cast<size_t>(it - ckpt_targets_.begin())] =
          std::move(snap);
  } else {
    push_checkpoint(std::move(snap), /*anchor=*/false);
  }
}

void Device::push_checkpoint(ckpt::SnapshotPtr snap, bool anchor) {
  checkpoints_.push_back(std::move(snap));
  checkpoint_is_anchor_.push_back(anchor ? 1 : 0);
  if (anchor) return;
  // Interval captures are periodic and each holds a full store image, so a
  // long run would otherwise accumulate memory proportional to its length.
  // Keep only the most recent few — rollback walks newest to oldest with a
  // small attempt budget — while pre-kernel anchors (one per sync round,
  // bounded by the workload's structure, and the guaranteed-clean fallback)
  // are never evicted.
  u32 intervals = 0;
  for (u8 a : checkpoint_is_anchor_)
    if (!a) ++intervals;
  if (intervals <= kMaxIntervalCheckpoints) return;
  for (size_t i = 0; i < checkpoints_.size(); ++i) {
    if (!checkpoint_is_anchor_[i]) {
      checkpoints_.erase(checkpoints_.begin() + static_cast<long>(i));
      checkpoint_is_anchor_.erase(checkpoint_is_anchor_.begin() +
                                  static_cast<long>(i));
      break;
    }
  }
}

u64 Device::params_fingerprint() const {
  ckpt::Writer w;
  const sim::GpuParams& g = gpu_->params();
  // exec_mode is deliberately NOT part of the fingerprint: the block engine
  // is bit-identical to the interpreter and its traces are derived state
  // rebuilt on restore, so snapshots are interchangeable across exec modes.
  // `verify` stays out for the same reason: the launch gate never changes
  // what a valid program computes, and its memo is derived state.
  w.put8(static_cast<u8>(g.engine));
  for (u32 v : {g.num_sms, g.warp_size, g.max_warps_per_sm,
                g.max_blocks_per_sm, g.regfile_per_sm, g.shared_per_sm,
                g.num_warp_schedulers, g.sp_latency, g.sfu_latency,
                g.sfu_interval, g.launch_gap_cycles})
    w.put32(v);
  w.putf64(g.clock_ghz);
  const memsys::MemParams& m = g.mem;
  w.put8(static_cast<u8>(m.l1_write_policy));
  w.put8(static_cast<u8>(m.l1_write_alloc));
  for (u32 v : {m.line_bytes, m.l1_size, m.l1_assoc, m.l1_latency,
                m.l1_mshr_entries, m.l2_size, m.l2_assoc, m.l2_banks,
                m.l2_latency, m.l2_service, m.dram_channels,
                m.dram_banks_per_channel, m.dram_row_bytes,
                m.dram_row_hit_latency, m.dram_row_miss_latency,
                m.dram_service, m.smem_banks, m.smem_latency, m.atomic_extra})
    w.put32(v);
  const PlatformParams& p = platform_;
  for (double v : {p.pcie_h2d_gbps, p.pcie_d2h_gbps, p.host_compare_gbps,
                   p.host_compute_gbps, p.file_parse_gbps, p.mem_generate_gbps,
                   p.ckpt_restore_gbps})
    w.putf64(v);
  for (NanoSec v : {p.api_call_ns, p.memcpy_latency_ns, p.launch_ns, p.sync_ns,
                    p.ckpt_restore_latency_ns})
    w.put64(v);
  return ckpt::fnv1a(w.blob().data(), w.blob().size());
}

ckpt::SnapshotPtr Device::snapshot() { return capture(gpu_->now()); }

ckpt::SnapshotPtr Device::capture(Cycle nominal) {
  const auto wall0 = std::chrono::steady_clock::now();
  auto snap = std::make_shared<ckpt::Snapshot>();
  ckpt::Writer w;

  w.begin_section("meta");
  w.put64(ckpt::Snapshot::kMagic);
  w.put32(ckpt::Snapshot::kVersion);
  w.put64(params_fingerprint());
  w.end_section();

  // sim_wall_sec_ is real host wall-clock (non-deterministic); it stays out
  // of the blob so snapshots of identical modelled state hash identically.
  w.begin_section("host");
  w.put64(now_ns_);
  w.put64(gpu_cycles_);
  w.put64(synced_upto_);
  w.put64(sync_seq_);
  w.end_section();

  w.begin_section("store", /*record_size=*/1);
  store_->save(w);
  w.end_section();

  std::unordered_map<const isa::KernelProgram*, u32> prog_index;
  gpu_->save(w, [&](const isa::ProgramPtr& p) -> u32 {
    const auto it = prog_index.find(p.get());
    if (it != prog_index.end()) return it->second;
    const u32 idx = static_cast<u32>(snap->programs.size());
    prog_index.emplace(p.get(), idx);
    snap->programs.push_back(p);
    return idx;
  });

  snap->blob = w.take_blob();
  snap->sections = w.take_sections();
  snap->cycle = gpu_->now();
  snap->sync_seq = sync_seq_;
  snap->launch_count = gpu_->kernel_states().size();
  snap->now_ns = now_ns_;
  snap->target = nominal;
  snapshot_wall_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (obs_ != nullptr)
    obs_->instant(obs_ckpt_track_, obs::Ev::kCheckpoint, snap->cycle,
                  snap->sync_seq, snap->size_bytes());
  return snap;
}

void Device::restore(const ckpt::Snapshot& s) {
  restore_impl(s, /*restore_fault=*/true);
  if (obs_ != nullptr)
    obs_->instant(obs_ckpt_track_, obs::Ev::kRestore, s.cycle, s.sync_seq,
                  s.size_bytes());
}

void Device::rollback(const ckpt::Snapshot& s) {
  const NanoSec keep_now = now_ns_;
  const Cycle keep_cycles = gpu_cycles_;
  const u64 keep_seq = sync_seq_;
  // The environment is not rolled back: the injector keeps its armed state
  // and cumulative corruption counters (restore_fault = false), and is told
  // the physical disturbance lies in the past (on_rollback).
  restore_impl(s, /*restore_fault=*/false);
  now_ns_ = keep_now + platform_.restore_ns(s.size_bytes());
  gpu_cycles_ = keep_cycles;
  sync_seq_ = keep_seq;
  gpu_->notify_rollback();
  if (obs_ != nullptr)
    obs_->instant(obs_ckpt_track_, obs::Ev::kRollback, s.cycle, s.sync_seq,
                  s.size_bytes());
}

void Device::restore_impl(const ckpt::Snapshot& s, bool restore_fault) {
  const auto wall0 = std::chrono::steady_clock::now();
  ckpt::Reader r(s.blob, s.sections);

  r.enter_section("meta");
  if (r.get64() != ckpt::Snapshot::kMagic)
    throw ckpt::SnapshotError("not a device snapshot (bad magic)");
  const u32 version = r.get32();
  if (version != ckpt::Snapshot::kVersion)
    throw ckpt::SnapshotError("snapshot format v" + std::to_string(version) +
                              " != supported v" +
                              std::to_string(ckpt::Snapshot::kVersion));
  if (r.get64() != params_fingerprint())
    throw ckpt::SnapshotError(
        "snapshot was captured on a device with different GPU/platform "
        "parameters");
  r.leave_section();

  r.enter_section("host");
  now_ns_ = r.get64();
  gpu_cycles_ = r.get64();
  synced_upto_ = r.get64();
  sync_seq_ = r.get64();
  r.leave_section();

  r.enter_section("store");
  store_->restore(r);
  r.leave_section();

  gpu_->restore(
      r, [&s](u32 idx) -> isa::ProgramPtr { return s.programs.at(idx); },
      restore_fault);
  restore_wall_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
}

}  // namespace higpu::runtime
