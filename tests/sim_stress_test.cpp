// SIMT stress cases: deep nested divergence, exits inside divergent code,
// barrier/exit interaction, maximum-size blocks, 3D grids, and shared-memory
// isolation between concurrently resident blocks.
#include <gtest/gtest.h>

#include "isa/builder.h"
#include "memsys/global_store.h"
#include "sched/policies.h"
#include "sim/gpu.h"

namespace higpu::sim {
namespace {

using isa::CmpOp;
using isa::DType;
using isa::imm;
using isa::KernelBuilder;
using isa::Label;
using isa::PredReg;
using isa::Reg;
using isa::SReg;

struct Harness {
  memsys::GlobalStore store;
  GpuParams params;
  std::unique_ptr<Gpu> gpu;

  Harness() {
    gpu = std::make_unique<Gpu>(params, &store);
    gpu->set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  }
  void run(isa::ProgramPtr prog, Dim3 grid, Dim3 block, std::vector<u32> p) {
    KernelLaunch l;
    l.program = std::move(prog);
    l.grid = grid;
    l.block = block;
    l.params = std::move(p);
    gpu->launch(std::move(l));
    gpu->run_until_idle(100'000'000);
  }
};

// Three levels of nested data-dependent branches; each lane takes its own
// path. out[i] = 100*b2 + 10*b1 + b0 where bK = bit K of the lane id.
TEST(SimStress, ThreeLevelNestedDivergence) {
  Harness h;
  const memsys::DevPtr out = h.store.alloc(32 * 4);

  KernelBuilder kb("nested");
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg gid = kb.global_tid_x();
  Reg acc = kb.reg(), bit = kb.reg();
  kb.movi(acc, 0);

  // For each level, branchy accumulate (not predication: real divergence).
  const i32 weights[3] = {1, 10, 100};
  for (u32 level = 0; level < 3; ++level) {
    PredReg p = kb.pred();
    Label skip = kb.label();
    kb.and_(bit, gid, imm(static_cast<i32>(1u << level)));
    kb.setp(p, CmpOp::kEq, DType::kI32, bit, imm(0));
    kb.bra(skip).guard_if(p);
    kb.iadd(acc, acc, imm(weights[level]));
    kb.bind(skip);
  }
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), po);
  kb.stg(addr, acc);
  kb.exit();

  h.run(kb.build(), {1, 1, 1}, {32, 1, 1}, {out});
  for (u32 i = 0; i < 32; ++i) {
    const u32 expect = (i & 1 ? 1 : 0) + (i & 2 ? 10 : 0) + (i & 4 ? 100 : 0);
    EXPECT_EQ(h.store.read32(out + i * 4), expect) << "lane " << i;
  }
}

// Lanes exit at different loop iterations (divergent exit); survivors keep
// looping. out[i] = i for lanes < 16 (exited early), 1000+i for the rest.
TEST(SimStress, DivergentEarlyExit) {
  Harness h;
  const memsys::DevPtr out = h.store.alloc(32 * 4);

  KernelBuilder kb("early_exit");
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg gid = kb.global_tid_x();
  Reg addr = kb.reg(), v = kb.reg();
  kb.imad(addr, gid, imm(4), po);

  PredReg low = kb.pred();
  Label stay = kb.label();
  kb.setp(low, CmpOp::kGe, DType::kI32, gid, imm(16));
  kb.bra(stay).guard_if(low);
  // Lanes 0..15: store gid and terminate.
  kb.stg(addr, gid);
  kb.exit();
  kb.bind(stay);
  kb.iadd(v, gid, imm(1000));
  kb.stg(addr, v);
  kb.exit();

  h.run(kb.build(), {1, 1, 1}, {32, 1, 1}, {out});
  for (u32 i = 0; i < 32; ++i)
    EXPECT_EQ(h.store.read32(out + i * 4), i < 16 ? i : 1000 + i);
}

// A warp exits entirely before reaching the barrier the other warps wait
// at; the block must not deadlock.
TEST(SimStress, WarpExitReleasesBarrier) {
  Harness h;
  const memsys::DevPtr out = h.store.alloc(64 * 4);

  KernelBuilder kb("exit_vs_barrier");
  kb.set_shared_bytes(4);
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg tid = kb.reg(), wid = kb.reg();
  kb.s2r(tid, SReg::kTidX);
  kb.s2r(wid, SReg::kWarpId);

  // Warp 0 exits immediately; warp 1 passes a barrier then stores.
  PredReg w0 = kb.pred();
  Label work = kb.label();
  kb.setp(w0, CmpOp::kEq, DType::kI32, wid, imm(1));
  kb.bra(work).guard_if(w0);
  kb.exit();
  kb.bind(work);
  kb.bar();
  Reg addr = kb.reg();
  kb.imad(addr, tid, imm(4), po);
  kb.stg(addr, tid);
  kb.exit();

  h.run(kb.build(), {1, 1, 1}, {64, 1, 1}, {out});
  for (u32 i = 32; i < 64; ++i) EXPECT_EQ(h.store.read32(out + i * 4), i);
}

// Maximum-size thread block (fills all warp slots of one SM).
TEST(SimStress, MaxSizeBlock) {
  Harness h;
  const u32 threads = h.params.max_warps_per_sm * h.params.warp_size;
  const memsys::DevPtr out = h.store.alloc(threads * 4);

  KernelBuilder kb("max_block");
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg gid = kb.global_tid_x();
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), po);
  kb.stg(addr, gid);
  kb.exit();

  h.run(kb.build(), {1, 1, 1}, {threads, 1, 1}, {out});
  for (u32 i = 0; i < threads; i += 97)
    EXPECT_EQ(h.store.read32(out + i * 4), i);
}

// 3D grid and 3D blocks: every special register combination addressed once.
TEST(SimStress, ThreeDimensionalGrid) {
  Harness h;
  const Dim3 grid{2, 3, 2}, block{4, 2, 2};
  const u32 total = grid.count() * block.count();
  const memsys::DevPtr out = h.store.alloc(total * 4);

  KernelBuilder kb("grid3d");
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg tx = kb.reg(), ty = kb.reg(), tz = kb.reg(), cx = kb.reg(),
      cy = kb.reg(), cz = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);
  kb.s2r(tz, SReg::kTidZ);
  kb.s2r(cx, SReg::kCtaIdX);
  kb.s2r(cy, SReg::kCtaIdY);
  kb.s2r(cz, SReg::kCtaIdZ);
  // linear = ((((cz*3+cy)*2+cx)*2+tz)*2+ty)*4+tx
  Reg lin = kb.reg();
  kb.imad(lin, cz, imm(3), cy);
  kb.imad(lin, lin, imm(2), cx);
  kb.imad(lin, lin, imm(2), tz);
  kb.imad(lin, lin, imm(2), ty);
  kb.imad(lin, lin, imm(4), tx);
  Reg addr = kb.reg(), one = kb.reg();
  kb.imad(addr, lin, imm(4), po);
  kb.movi(one, 1);
  Reg old = kb.reg();
  kb.atom_add(old, addr, one);
  kb.exit();

  h.run(kb.build(), grid, block, {out});
  for (u32 i = 0; i < total; ++i)
    EXPECT_EQ(h.store.read32(out + i * 4), 1u) << "slot " << i;
}

// Shared memory of concurrently resident blocks must be isolated: each
// block writes its block id everywhere, barriers, and checks it read back
// its own id (not a neighbour's).
TEST(SimStress, SharedMemoryIsolationBetweenBlocks) {
  Harness h;
  const u32 blocks = 24;
  const memsys::DevPtr out = h.store.alloc(blocks * 4);

  KernelBuilder kb("smem_isolation");
  kb.set_shared_bytes(64 * 4);
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg tid = kb.reg(), cta = kb.reg();
  kb.s2r(tid, SReg::kTidX);
  kb.s2r(cta, SReg::kCtaIdX);
  Reg sh = kb.reg();
  kb.imul(sh, tid, imm(4));
  kb.sts(sh, cta);
  kb.bar();
  // Read a different lane's slot: must still hold this block's id.
  Reg other = kb.reg(), oaddr = kb.reg(), t = kb.reg();
  kb.iadd(t, tid, imm(7));
  kb.and_(t, t, imm(63));
  kb.imul(oaddr, t, imm(4));
  kb.lds(other, oaddr);
  PredReg first = kb.pred();
  kb.setp(first, CmpOp::kEq, DType::kI32, tid, imm(0));
  Reg addr = kb.reg();
  kb.imad(addr, cta, imm(4), po).guard_if(first);
  kb.stg(addr, other).guard_if(first);
  kb.exit();

  h.run(kb.build(), {blocks, 1, 1}, {64, 1, 1}, {out});
  for (u32 b = 0; b < blocks; ++b)
    EXPECT_EQ(h.store.read32(out + b * 4), b) << "block " << b;
}

// Back-to-back kernels reusing the same SM slots must start from clean
// register/predicate/shared state.
TEST(SimStress, WarpSlotReuseStartsClean) {
  Harness h;
  const memsys::DevPtr out = h.store.alloc(64 * 4);

  // Kernel 1 dirties registers; kernel 2 stores an uninitialized register,
  // which must read as zero.
  KernelBuilder k1("dirty");
  Reg p1 = k1.reg(), x = k1.reg();
  k1.ldp(p1, 0);
  k1.movi(x, 0xDEAD);
  k1.stg(p1, x);
  k1.exit();

  KernelBuilder k2("clean_check");
  Reg p2 = k2.reg();
  k2.ldp(p2, 0);
  Reg fresh = k2.reg();  // never written
  Reg gid = k2.global_tid_x();
  Reg addr = k2.reg();
  k2.imad(addr, gid, imm(4), p2);
  k2.stg(addr, fresh);
  k2.exit();

  h.run(k1.build(), {6, 1, 1}, {64, 1, 1}, {out});
  h.run(k2.build(), {1, 1, 1}, {64, 1, 1}, {out});
  for (u32 i = 0; i < 64; ++i) EXPECT_EQ(h.store.read32(out + i * 4), 0u);
}

// Issue-stall statistics are populated and consistent.
TEST(SimStress, StallCountersExported) {
  Harness h;
  const memsys::DevPtr out = h.store.alloc(4096 * 4);

  KernelBuilder kb("stalls");
  Reg po = kb.reg();
  kb.ldp(po, 0);
  Reg gid = kb.global_tid_x();
  Reg acc = kb.reg();
  kb.movf(acc, 1.0f);
  for (int i = 0; i < 32; ++i) kb.fdiv(acc, acc, isa::fimm(1.1f));  // SFU chain
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), po);
  kb.stg(addr, acc);
  kb.exit();

  h.run(kb.build(), {32, 1, 1}, {128, 1, 1}, {out});
  const StatSet stats = h.gpu->collect_stats();
  EXPECT_GT(stats.get("issue_attempts_issued"), 0u);
  EXPECT_EQ(stats.get("issue_attempts_issued"), stats.get("instructions"));
  // A dependent SFU chain must produce scoreboard and/or structural stalls.
  EXPECT_GT(stats.get("issue_stall_scoreboard") +
                stats.get("issue_stall_structural"),
            0u);
}

}  // namespace
}  // namespace higpu::sim
