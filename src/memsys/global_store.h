// Functional backing store for GPU global memory, plus a bump allocator.
//
// Addresses are 32-bit (registers are 32-bit wide); the store grows lazily.
#pragma once

#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"

namespace higpu::memsys {

/// Device address. 0 is reserved (never returned by alloc).
using DevPtr = u32;

class GlobalStore {
 public:
  explicit GlobalStore(u64 capacity_bytes = 1ull << 30);

  /// Allocate `bytes` (256-byte aligned). Throws std::bad_alloc on exhaustion.
  DevPtr alloc(u64 bytes);

  /// Release all allocations (arena-style reset). Contents are kept so old
  /// pointers read stale data rather than faulting; callers should not use
  /// pointers across a reset.
  void reset();

  /// Bytes currently allocated.
  u64 allocated() const { return next_ - kBase; }

  // 32-bit word access (addresses must be 4-byte aligned).
  u32 read32(DevPtr addr) const;
  void write32(DevPtr addr, u32 value);

  // Bulk transfer helpers used by the host runtime.
  void write_block(DevPtr dst, const void* src, u64 bytes);
  void read_block(void* dst, DevPtr src, u64 bytes) const;

  // Checkpoint: allocator cursor plus the full (lazily grown) contents.
  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

 private:
  static constexpr DevPtr kBase = 256;  // keep nullptr-like 0 unmapped
  void ensure(u64 end);

  u64 capacity_;
  DevPtr next_ = kBase;
  mutable std::vector<u8> data_;
};

}  // namespace higpu::memsys
