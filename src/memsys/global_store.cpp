#include "memsys/global_store.h"

#include <cassert>
#include <cstring>
#include <new>

namespace higpu::memsys {

GlobalStore::GlobalStore(u64 capacity_bytes) : capacity_(capacity_bytes) {}

DevPtr GlobalStore::alloc(u64 bytes) {
  const u64 start = align_up(next_, 256);
  const u64 end = start + align_up(bytes, 4);
  if (end > capacity_ || end > 0xFFFFFFFFull) throw std::bad_alloc();
  next_ = static_cast<DevPtr>(end);
  ensure(end);
  return static_cast<DevPtr>(start);
}

void GlobalStore::reset() { next_ = kBase; }

void GlobalStore::ensure(u64 end) {
  if (data_.size() < end) data_.resize(end, 0);
}

u32 GlobalStore::read32(DevPtr addr) const {
  assert(addr % 4 == 0 && "unaligned 32-bit global read");
  if (addr + 4 > data_.size()) data_.resize(addr + 4, 0);
  u32 v;
  std::memcpy(&v, data_.data() + addr, 4);
  return v;
}

void GlobalStore::write32(DevPtr addr, u32 value) {
  assert(addr % 4 == 0 && "unaligned 32-bit global write");
  ensure(addr + 4);
  std::memcpy(data_.data() + addr, &value, 4);
}

void GlobalStore::write_block(DevPtr dst, const void* src, u64 bytes) {
  ensure(dst + bytes);
  std::memcpy(data_.data() + dst, src, bytes);
}

void GlobalStore::read_block(void* dst, DevPtr src, u64 bytes) const {
  if (data_.size() < src + bytes) data_.resize(src + bytes, 0);
  std::memcpy(dst, data_.data() + src, bytes);
}

void GlobalStore::save(ckpt::Writer& w) const {
  w.put32(next_);
  w.put64(data_.size());
  w.put_bytes(data_.data(), data_.size());
}

void GlobalStore::restore(ckpt::Reader& r) {
  next_ = r.get32();
  const u64 n = r.get64();
  data_.assign(static_cast<size_t>(n), 0);
  r.get_bytes(data_.data(), data_.size());
}

}  // namespace higpu::memsys
