#include "fault/injector.h"

namespace higpu::fault {

void FaultInjector::arm_droop(Cycle start, Cycle duration, u32 bit) {
  mode_ = Mode::kDroop;
  start_ = start;
  end_ = start + duration;
  bit_ = bit & 31;
  corruptions_ = diverted_ = 0;
}

void FaultInjector::arm_transient_sm(u32 sm, Cycle start, Cycle duration, u32 bit) {
  mode_ = Mode::kTransientSm;
  sm_ = sm;
  start_ = start;
  end_ = start + duration;
  bit_ = bit & 31;
  corruptions_ = diverted_ = 0;
}

void FaultInjector::arm_permanent_sm(u32 sm, Cycle start, u32 bit) {
  mode_ = Mode::kPermanentSm;
  sm_ = sm;
  start_ = start;
  end_ = ~Cycle{0};
  bit_ = bit & 31;
  corruptions_ = diverted_ = 0;
}

void FaultInjector::arm_scheduler_fault(Cycle start, u32 sm_offset) {
  mode_ = Mode::kScheduler;
  start_ = start;
  end_ = ~Cycle{0};
  sm_offset_ = sm_offset;
  corruptions_ = diverted_ = 0;
}

void FaultInjector::disarm() { mode_ = Mode::kNone; }

u32 FaultInjector::corrupt_alu(u32 sm, Cycle cycle, u32 value) {
  switch (mode_) {
    case Mode::kDroop:
      if (cycle >= start_ && cycle < end_) break;
      return value;
    case Mode::kTransientSm:
    case Mode::kPermanentSm:
      if (sm == sm_ && cycle >= start_ && cycle < end_) break;
      return value;
    default:
      return value;
  }
  ++corruptions_;
  return value ^ (1u << bit_);
}

u32 FaultInjector::corrupt_block_mapping(u32 intended_sm, u32 num_sms,
                                         Cycle cycle) {
  if (mode_ != Mode::kScheduler || cycle < start_) return intended_sm;
  return (intended_sm + sm_offset_) % num_sms;
}

void FaultInjector::on_block_diverted(u32 intended_sm, u32 actual_sm) {
  if (actual_sm != intended_sm) ++diverted_;
}

Cycle FaultInjector::next_trigger_cycle(Cycle now) const {
  if (mode_ == Mode::kNone) return kNeverCycle;
  if (start_ > now) return start_;           // window opens
  if (end_ != kNeverCycle && end_ > now) return end_;  // window closes
  return kNeverCycle;
}

void FaultInjector::save_state(ckpt::Writer& w) const {
  w.put8(static_cast<u8>(mode_));
  w.put32(sm_);
  w.put64(start_);
  w.put64(end_);
  w.put32(bit_);
  w.put32(sm_offset_);
  w.put64(corruptions_);
  w.put64(diverted_);
}

void FaultInjector::restore_state(ckpt::Reader& r) {
  mode_ = static_cast<Mode>(r.get8());
  sm_ = r.get32();
  start_ = r.get64();
  end_ = r.get64();
  bit_ = r.get32();
  sm_offset_ = r.get32();
  corruptions_ = r.get64();
  diverted_ = r.get64();
}

void FaultInjector::on_rollback() {
  if (mode_ == Mode::kDroop || mode_ == Mode::kTransientSm)
    mode_ = Mode::kNone;
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kMasked: return "masked";
    case Outcome::kDetected: return "detected";
    case Outcome::kSdc: return "SDC";
  }
  return "?";
}

Outcome classify(bool outputs_match, bool output_correct) {
  if (!outputs_match) return Outcome::kDetected;
  return output_correct ? Outcome::kMasked : Outcome::kSdc;
}

void CampaignTally::count(Outcome o) {
  switch (o) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kDetected: ++detected; break;
    case Outcome::kSdc: ++sdc; break;
  }
}

double CampaignTally::diagnostic_coverage() const {
  const u64 effective = detected + sdc;
  return effective == 0 ? 1.0
                        : static_cast<double>(detected) /
                              static_cast<double>(effective);
}

}  // namespace higpu::fault
