#include "obs/metrics.h"

#include <cstdio>

namespace higpu::obs {

void Registry::count(const std::string& name, u64 delta) {
  counters_[name] += delta;
}

void Registry::gauge_set(const std::string& name, i64 value, u64 at) {
  Gauge& g = gauges_[name];
  g.value = value;
  if (!g.initialized || value > g.watermark) {
    g.watermark = value;
    g.watermark_at = at;
    g.initialized = true;
  }
}

void Registry::observe(const std::string& name, i64 sample) {
  hists_[name].sample(sample);
}

u64 Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Percentiles* Registry::find_histogram(const std::string& name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

namespace {

void append_i64(std::string& out, i64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_u64(std::string& out, u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string Registry::snapshot_json(u64 at) const {
  std::string out = "{\"schema\":\"";
  out += kMetricsSchema;
  out += "\",\"at\":";
  append_u64(out, at);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":";
    append_u64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":{\"value\":";
    append_i64(out, g.value);
    out += ",\"watermark\":";
    append_i64(out, g.watermark);
    out += ",\"watermark_at\":";
    append_u64(out, g.watermark_at);
    out += '}';
  }
  out += "},\"hist\":{";
  first = true;
  for (const auto& [name, h] : hists_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":{\"count\":";
    append_u64(out, h.count());
    out += ",\"p50\":";
    append_i64(out, h.p50());
    out += ",\"p95\":";
    append_i64(out, h.p95());
    out += ",\"p99\":";
    append_i64(out, h.p99());
    out += '}';
  }
  out += "}}";
  return out;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauges_[name];
    mine.value = g.value;
    if (!mine.initialized || g.watermark > mine.watermark) {
      mine.watermark = g.watermark;
      mine.watermark_at = g.watermark_at;
      mine.initialized = true;
    }
  }
  for (const auto& [name, h] : other.hists_) hists_[name].merge(h);
}

}  // namespace higpu::obs
