// Figure 3 reproduction: categorize every kernel of every workload as
// short / heavy / friendly (by measured isolated duration and static
// resource saturation) and report the §IV.D policy recommendation.
#include <cstdio>

#include <map>

#include "common/table.h"
#include "core/categorize.h"
#include "exp/campaign.h"

int main() {
  using namespace higpu;
  using workloads::Scale;

  std::printf("Figure 3: kernel categories (short / heavy / friendly) and "
              "recommended policy (>>IV.D)\n\n");

  TextTable table({"benchmark", "kernels", "dominant-kernel", "cycles",
                   "blocks/SM", "gpu-fill", "category", "recommend"});

  for (const std::string& name : workloads::all_names()) {
    // Baseline (non-redundant) run: every kernel executes in isolation
    // (single stream), so per-kernel cycle spans are isolated durations.
    // The categorization needs the live device, so it runs as a probe.
    exp::ScenarioSpec spec;
    spec.workload = name;
    spec.scale = Scale::kBench;
    spec.policy = sched::Policy::kDefault;
    spec.redundancy = core::RedundancySpec::baseline();
    const exp::ScenarioResult res = exp::run_scenario(
        spec, 0, [&](runtime::Device& dev, workloads::Workload&,
                     core::ExecSession&) {
      // Aggregate per distinct kernel name; categorize the dominant one
      // (the kernel contributing the most total cycles).
      struct Agg {
        Cycle total = 0;
        Cycle longest = 0;
        u32 launch_id = 0;
        u32 launches = 0;
      };
      std::map<std::string, Agg> by_kernel;
      sim::Gpu& gpu = dev.gpu();
      for (sim::KernelState* ks : gpu.kernel_states()) {
        const sim::KernelLaunch& l = gpu.launch_of(ks->launch_id);
        const Cycle cycles = gpu.kernel_cycles(ks->launch_id);
        Agg& a = by_kernel[l.program->name()];
        a.total += cycles;
        a.launches += 1;
        if (cycles > a.longest) {
          a.longest = cycles;
          a.launch_id = ks->launch_id;
        }
      }
      const Agg* dominant = nullptr;
      std::string dominant_name;
      u32 total_launches = 0;
      for (const auto& [kname, agg] : by_kernel) {
        total_launches += agg.launches;
        if (dominant == nullptr || agg.total > dominant->total) {
          dominant = &agg;
          dominant_name = kname;
        }
      }

      const sim::KernelLaunch& launch = gpu.launch_of(dominant->launch_id);
      const core::CategoryReport rep =
          core::categorize_kernel(gpu.params(), launch, dominant->longest);
      table.add_row({name, std::to_string(total_launches), dominant_name,
                     std::to_string(rep.isolated_cycles),
                     std::to_string(rep.max_blocks_per_sm),
                     TextTable::fmt(rep.gpu_fill, 2),
                     core::category_name(rep.category),
                     sched::policy_name(core::recommend_policy(rep.category))});
        });
    if (!res.ok) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(), res.error.c_str());
      return 1;
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("paper reference: SRRS suits short and heavy kernels, HALF "
              "suits friendly kernels; most Rodinia kernels are friendly or "
              "short.\n");
  return 0;
}
