// Command-line campaign runner: execute any of the 19 Rodinia-style
// workloads — or a whole sweep of them — under any policy/redundancy
// configuration and print the metrics the paper reports. Everything is a
// ScenarioSpec underneath; multiple scenarios run as a parallel campaign.
//
//   $ ./run_workload hotspot --policy=srrs
//   $ ./run_workload cfd --policy=half --baseline --scale=test --seed=7
//   $ ./run_workload --fig4 --sweep-policies --jobs=4 --json=campaign.json
//   $ ./run_workload --list
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.h"
#include "dist/coordinator.h"
#include "exp/campaign.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/engine.h"

namespace {

using namespace higpu;

int usage() {
  std::printf(
      "usage: run_workload <name...> [options]\n"
      "       run_workload --all | --fig4 [options]\n"
      "       run_workload --list | --list-workloads\n"
      "options:\n"
      "  --policy=default|half|srrs   scheduling policy (default: srrs)\n"
      "  --sweep-policies             run every policy (overrides --policy)\n"
      "  --baseline                   single copy instead of a DCLS pair\n"
      "  --list-workloads             print every workload with its scales\n"
      "redundancy options (one ExecSession serves every mode):\n"
      "  --redundancy=N               copies: 1=baseline, 2=DCLS, >=3 NMR\n"
      "  --compare=bitwise|vote|tol:E comparison semantics (vote needs N>=3;\n"
      "                               tol:E = float tolerance E, e.g. tol:1e-4)\n"
      "  --recovery=retry:N|rollback:N|degrade\n"
      "                               detect-and-retry (N re-executions),\n"
      "                               checkpoint rollback (N rollbacks), or\n"
      "                               degraded-mode transition\n"
      "  --checkpoint-interval=N      snapshot device state every N cycles\n"
      "                               (labels gain :ckptN; rollback recovery\n"
      "                               uses the checkpoints)\n"
      "  --sweep-redundancy           run base, DCLS, DCLS+retry, TMR-vote,\n"
      "                               TMR-vote+retry (overrides the above)\n"
      "  --verify-only                statically verify every kernel the\n"
      "                               workloads launch, print the JSON\n"
      "                               diagnostic list and exit non-zero on\n"
      "                               any error-severity diagnostic\n"
      "  --scale=test|bench           problem size (default: bench)\n"
      "  --seed=N                     input-generation seed (default: 2019)\n"
      "  --jobs=N                     campaign worker threads (default: 1;\n"
      "                               0 = all hardware threads)\n"
      "  --json=PATH                  write the JSON campaign report\n"
      "  --csv=PATH                   write the CSV campaign report\n"
      "observability (README 'Observability'):\n"
      "  --trace=PATH                 record a Chrome trace-event JSON file\n"
      "                               (higpu.trace/1, Perfetto-loadable);\n"
      "                               single scenario or --serve only\n"
      "  --profile                    print the per-SM cycle-attribution\n"
      "                               table (issued / scoreboard / barrier /\n"
      "                               structural / idle)\n"
      "continuous-serving mode (each <name> becomes one tenant):\n"
      "  --serve                      serve a request stream instead of a\n"
      "                               one-shot campaign (EDF dispatch,\n"
      "                               overload degrade ladder, percentile\n"
      "                               telemetry; --json/--csv emit the\n"
      "                               higpu.serve/1 report)\n"
      "  --serve-pattern=periodic|poisson|bursty   arrivals (default poisson)\n"
      "  --serve-rps=R                offered load, requests/s (default 100)\n"
      "  --serve-duration-ms=N        traffic horizon (default 500)\n"
      "  --serve-max-requests=N       hard request cap (default 64)\n"
      "  --serve-deadline-ms=N        per-request deadline (default 50)\n"
      "  --serve-bist-ms=N            scheduler BIST period (default off)\n"
      "distributed campaign mode (see README 'Distributed campaigns'):\n"
      "  --distributed=N              run the campaign across N forked\n"
      "                               campaign_worker processes (0 = inline\n"
      "                               but still journaled); results are\n"
      "                               bit-identical to --jobs=1\n"
      "  --journal=PATH               append-only higpu.campaign.jsonl/1\n"
      "                               journal, one flushed record per result\n"
      "  --resume=PATH                scan an existing journal and execute\n"
      "                               only the scenarios it is missing\n"
      "  --check-golden               after the distributed run, re-run the\n"
      "                               campaign in-process (jobs=1) and fail\n"
      "                               on any deterministic-field difference\n"
      "  --chaos-kill-after=N         SIGKILL one worker after N worker\n"
      "                               results (tests death redispatch)\n"
      "  --stop-after=N               simulate a coordinator crash after N\n"
      "                               results (resume from the journal)\n"
      "memory-system options (reflected in scenario labels):\n"
      "  --mem-write=wb|wt            L1 write policy (default: wb)\n"
      "  --mem-alloc=wa|nwa           L1 write-miss allocation (default: wa)\n"
      "  --mem-mshr=N                 MSHR entries per SM (default: 32)\n"
      "  --mem-dram-banks=N           DRAM banks per channel (default: 4)\n"
      "  --mem-row-bytes=N            DRAM row-buffer size (default: 2048)\n"
      "  --sweep-mem-policies         run all four write-policy combos\n");
  return 2;
}

u64 parse_number(const std::string& flag, const std::string& s) {
  // Digits only: std::stoull alone would wrap "-5" to 2^64-5.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("bad value '" + s + "' for " + flag +
                                ": expected a non-negative integer");
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value '" + s + "' for " + flag +
                                ": out of range");
  }
}

core::RedundancySpec::Compare parse_compare(const std::string& s,
                                            float* tolerance) {
  if (s == "bitwise") return core::RedundancySpec::Compare::kBitwise;
  if (s == "vote") return core::RedundancySpec::Compare::kMajorityVote;
  if (s.rfind("tol:", 0) == 0) {
    try {
      *tolerance = std::stof(s.substr(4));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad tolerance in --compare=" + s);
    }
    return core::RedundancySpec::Compare::kTolerance;
  }
  throw std::invalid_argument("unknown compare mode '" + s +
                              "'; valid: bitwise vote tol:EPS");
}

void parse_recovery(const std::string& s, core::RedundancySpec* red) {
  if (s.rfind("retry:", 0) == 0) {
    red->recovery = core::RedundancySpec::Recovery::kRetry;
    red->max_retries =
        static_cast<u32>(parse_number("--recovery", s.substr(6)));
    return;
  }
  if (s == "retry") {
    red->recovery = core::RedundancySpec::Recovery::kRetry;
    return;
  }
  if (s.rfind("rollback:", 0) == 0) {
    red->recovery = core::RedundancySpec::Recovery::kRollback;
    red->max_retries =
        static_cast<u32>(parse_number("--recovery", s.substr(9)));
    return;
  }
  if (s == "rollback") {
    red->recovery = core::RedundancySpec::Recovery::kRollback;
    return;
  }
  if (s == "degrade") {
    red->recovery = core::RedundancySpec::Recovery::kDegrade;
    return;
  }
  throw std::invalid_argument("unknown recovery '" + s +
                              "'; valid: retry:N rollback:N degrade");
}

ckpt::CheckpointPolicy parse_checkpoint_interval(const std::string& s) {
  const u64 cycles = parse_number("--checkpoint-interval", s);
  if (cycles == 0)
    throw std::invalid_argument(
        "bad value '0' for --checkpoint-interval: expected a positive cycle "
        "count (e.g. 5000)");
  return ckpt::CheckpointPolicy::interval(cycles);
}

sched::Policy parse_policy(const std::string& s) {
  if (s == "default") return sched::Policy::kDefault;
  if (s == "half") return sched::Policy::kHalf;
  if (s == "srrs") return sched::Policy::kSrrs;
  throw std::invalid_argument("unknown policy '" + s +
                              "'; valid policies: default half srrs");
}

memsys::WritePolicy parse_write_policy(const std::string& s) {
  if (s == "wb") return memsys::WritePolicy::kWriteBack;
  if (s == "wt") return memsys::WritePolicy::kWriteThrough;
  throw std::invalid_argument("bad value '" + s +
                              "' for --mem-write: expected wb or wt");
}

memsys::WriteAlloc parse_write_alloc(const std::string& s) {
  if (s == "wa") return memsys::WriteAlloc::kAllocate;
  if (s == "nwa") return memsys::WriteAlloc::kNoAllocate;
  throw std::invalid_argument("bad value '" + s +
                              "' for --mem-alloc: expected wa or nwa");
}

/// Detailed single-scenario report (the classic run_workload output).
void print_detailed(const exp::ScenarioResult& r) {
  std::printf("scenario        : %s\n", r.label.c_str());
  if (!r.ok) {
    std::printf("error           : %s\n", r.error.c_str());
    return;
  }
  std::printf("kernel cycles   : %llu\n",
              static_cast<unsigned long long>(r.kernel_cycles));
  std::printf("end-to-end time : %.3f ms\n",
              static_cast<double>(r.elapsed_ns) / 1e6);
  std::printf("verified vs CPU : %s\n", r.verified ? "yes" : "NO");
  std::printf("redundancy      : %u cop%s, %u attempt%s, %s (FTTI %s)\n",
              r.n_copies, r.n_copies == 1 ? "y" : "ies", r.attempts,
              r.attempts == 1 ? "" : "s",
              higpu::safety::asil_name(r.achieved_asil),
              r.ftti_met ? "met" : "VIOLATED");
  if (r.comparisons > 0) {
    std::printf("comparisons     : %u (%u mismatching%s)\n", r.comparisons,
                r.mismatches,
                r.majority_ok && r.mismatches > 0 ? ", out-voted" : "");
    std::printf("diversity       : %u block pairs, %u same-SM, %u time-overlap\n",
                r.diversity.blocks_checked, r.diversity.same_sm,
                r.diversity.time_overlap);
  }
  std::printf("instructions    : %llu (stalls: %llu scoreboard, %llu "
              "structural, %llu barrier)\n",
              static_cast<unsigned long long>(r.stats.get("instructions")),
              static_cast<unsigned long long>(
                  r.stats.get("issue_stall_scoreboard")),
              static_cast<unsigned long long>(
                  r.stats.get("issue_stall_structural")),
              static_cast<unsigned long long>(r.stats.get("issue_stall_barrier")));
  std::printf("L1 hit rate     : %.1f%%   L2 hit rate: %.1f%%\n",
              r.stats.ratio("l1_hits", "l1_misses") * 100.0,
              r.stats.ratio("l2_hits", "l2_misses") * 100.0);
}

serve::TrafficSpec::Pattern parse_serve_pattern(const std::string& s) {
  if (s == "periodic") return serve::TrafficSpec::Pattern::kPeriodic;
  if (s == "poisson") return serve::TrafficSpec::Pattern::kPoisson;
  if (s == "bursty") return serve::TrafficSpec::Pattern::kBursty;
  throw std::invalid_argument("unknown serve pattern '" + s +
                              "'; valid: periodic poisson bursty");
}

double parse_rps(const std::string& s) {
  try {
    const double v = std::stod(s);
    if (v > 0.0) return v;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("bad value '" + s +
                              "' for --serve-rps: expected a positive rate");
}

bool write_file(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Validate the recorded trace against the higpu.trace/1 schema, then write
/// it. A trace that fails its own schema is a bug, not a report.
bool write_trace(const std::string& path, const obs::Tracer& tracer) {
  const std::string json = tracer.to_chrome_json();
  const std::string err = obs::validate_chrome_trace(json);
  if (!err.empty()) {
    std::fprintf(stderr, "trace failed schema validation: %s\n", err.c_str());
    return false;
  }
  return write_file(path, json);
}

/// Print the per-SM cycle-attribution tables for every completed scenario.
void print_profiles(const exp::CampaignResult& campaign) {
  for (const exp::ScenarioResult& r : campaign.results) {
    if (!r.ok || r.sm_profile.empty()) continue;
    if (campaign.results.size() > 1) std::printf("\n%s\n", r.label.c_str());
    std::printf("%s\n",
                obs::profile_table(r.sm_profile, r.stats.get("cycles"))
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  exp::ScenarioSpec proto;
  proto.scale = workloads::Scale::kBench;
  bool sweep_policies = false;
  bool sweep_redundancy = false;
  bool sweep_mem_policies = false;
  bool compare_explicit = false;
  u32 jobs = 1;
  std::string json_path, csv_path;
  std::string trace_path;
  bool profile = false;
  bool distributed_mode = false;
  u32 dist_workers = 0;
  std::string journal_path;
  bool resume = false;
  bool check_golden = false;
  u32 chaos_kill_after = 0;
  u32 stop_after = 0;
  bool verify_only = false;
  bool serve_mode = false;
  serve::TrafficSpec::Pattern serve_pattern =
      serve::TrafficSpec::Pattern::kPoisson;
  double serve_rps = 100.0;
  u64 serve_duration_ms = 500;
  u64 serve_max_requests = 64;
  u64 serve_deadline_ms = 50;
  u64 serve_bist_ms = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list") {
        for (const std::string& n : workloads::all_names())
          std::printf("%s\n", n.c_str());
        return 0;
      } else if (arg == "--list-workloads") {
        // Every workloads::is_known name with its available scales.
        for (const std::string& n : workloads::all_names())
          std::printf("%-16s %s,%s\n", n.c_str(),
                      workloads::scale_name(workloads::Scale::kTest),
                      workloads::scale_name(workloads::Scale::kBench));
        return 0;
      } else if (arg == "--all") {
        names = workloads::all_names();
      } else if (arg == "--fig4") {
        names = workloads::fig4_names();
      } else if (arg == "--baseline") {
        // Only the copy count: an explicit --compare/--recovery elsewhere
        // on the command line must survive (or fail validation loudly),
        // never be silently discarded by flag order.
        proto.redundancy.n_copies = 1;
      } else if (arg.rfind("--redundancy=", 0) == 0) {
        proto.redundancy.n_copies =
            static_cast<u32>(parse_number("--redundancy", arg.substr(13)));
      } else if (arg.rfind("--compare=", 0) == 0) {
        proto.redundancy.compare =
            parse_compare(arg.substr(10), &proto.redundancy.tolerance);
        compare_explicit = true;
      } else if (arg.rfind("--recovery=", 0) == 0) {
        parse_recovery(arg.substr(11), &proto.redundancy);
      } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
        proto.ckpt = parse_checkpoint_interval(arg.substr(22));
      } else if (arg == "--sweep-redundancy") {
        sweep_redundancy = true;
      } else if (arg == "--sweep-policies") {
        sweep_policies = true;
      } else if (arg.rfind("--policy=", 0) == 0) {
        proto.policy = parse_policy(arg.substr(9));
      } else if (arg.rfind("--scale=", 0) == 0) {
        proto.scale = workloads::parse_scale(arg.substr(8));
      } else if (arg.rfind("--seed=", 0) == 0) {
        proto.seed = parse_number("--seed", arg.substr(7));
      } else if (arg.rfind("--mem-write=", 0) == 0) {
        proto.gpu.mem.l1_write_policy = parse_write_policy(arg.substr(12));
      } else if (arg.rfind("--mem-alloc=", 0) == 0) {
        proto.gpu.mem.l1_write_alloc = parse_write_alloc(arg.substr(12));
      } else if (arg.rfind("--mem-mshr=", 0) == 0) {
        proto.gpu.mem.l1_mshr_entries =
            static_cast<u32>(parse_number("--mem-mshr", arg.substr(11)));
      } else if (arg.rfind("--mem-dram-banks=", 0) == 0) {
        proto.gpu.mem.dram_banks_per_channel =
            static_cast<u32>(parse_number("--mem-dram-banks", arg.substr(17)));
      } else if (arg.rfind("--mem-row-bytes=", 0) == 0) {
        proto.gpu.mem.dram_row_bytes =
            static_cast<u32>(parse_number("--mem-row-bytes", arg.substr(16)));
      } else if (arg == "--verify-only") {
        verify_only = true;
      } else if (arg == "--serve") {
        serve_mode = true;
      } else if (arg.rfind("--serve-pattern=", 0) == 0) {
        serve_pattern = parse_serve_pattern(arg.substr(16));
      } else if (arg.rfind("--serve-rps=", 0) == 0) {
        serve_rps = parse_rps(arg.substr(12));
      } else if (arg.rfind("--serve-duration-ms=", 0) == 0) {
        serve_duration_ms = parse_number("--serve-duration-ms", arg.substr(20));
      } else if (arg.rfind("--serve-max-requests=", 0) == 0) {
        serve_max_requests =
            parse_number("--serve-max-requests", arg.substr(21));
      } else if (arg.rfind("--serve-deadline-ms=", 0) == 0) {
        serve_deadline_ms = parse_number("--serve-deadline-ms", arg.substr(20));
      } else if (arg.rfind("--serve-bist-ms=", 0) == 0) {
        serve_bist_ms = parse_number("--serve-bist-ms", arg.substr(16));
      } else if (arg == "--sweep-mem-policies") {
        sweep_mem_policies = true;
      } else if (arg.rfind("--jobs=", 0) == 0) {
        jobs = static_cast<u32>(parse_number("--jobs", arg.substr(7)));
      } else if (arg.rfind("--distributed=", 0) == 0) {
        distributed_mode = true;
        dist_workers =
            static_cast<u32>(parse_number("--distributed", arg.substr(14)));
      } else if (arg.rfind("--journal=", 0) == 0) {
        journal_path = arg.substr(10);
      } else if (arg.rfind("--resume=", 0) == 0) {
        distributed_mode = true;
        resume = true;
        journal_path = arg.substr(9);
      } else if (arg == "--check-golden") {
        check_golden = true;
      } else if (arg.rfind("--chaos-kill-after=", 0) == 0) {
        chaos_kill_after = static_cast<u32>(
            parse_number("--chaos-kill-after", arg.substr(19)));
      } else if (arg.rfind("--stop-after=", 0) == 0) {
        stop_after =
            static_cast<u32>(parse_number("--stop-after", arg.substr(13)));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else if (arg.rfind("--csv=", 0) == 0) {
        csv_path = arg.substr(6);
      } else if (arg.rfind("--trace=", 0) == 0) {
        trace_path = arg.substr(8);
      } else if (arg == "--profile") {
        profile = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        return usage();
      } else if (arg == "default" || arg == "half" || arg == "srrs") {
        proto.policy = parse_policy(arg);  // legacy positional policy
      } else {
        names.push_back(arg);
      }
    }
    if (names.empty()) return usage();

    // Voting is the natural default once a majority exists — but never
    // override an explicit --compare choice, whatever the flag order.
    if (!compare_explicit && proto.redundancy.n_copies >= 3)
      proto.redundancy.compare = core::RedundancySpec::Compare::kMajorityVote;

    if (verify_only) {
      // Static verification only: run each workload once in warn mode (so
      // merely-wrong kernels yield a full report instead of aborting the
      // run; memory-unsafe defect classes are refused even here, surfacing
      // as a failed scenario) and emit the per-kernel diagnostic list as
      // JSON.
      proto.gpu.verify = sim::LaunchVerify::kWarn;
      u32 errors = 0, warnings = 0;
      std::string out = "[";
      bool first = true;
      for (const std::string& n : names) {
        exp::ScenarioSpec spec = proto;
        spec.workload = n;
        std::vector<std::string> kernel_reports;
        const exp::ScenarioResult r = exp::run_scenario(
            spec, 0,
            [&](runtime::Device& dev, workloads::Workload&,
                core::ExecSession&) {
              for (const runtime::Device::VerifyRecord& rec :
                   dev.verify_reports()) {
                kernel_reports.push_back(rec.result.to_json());
                errors += rec.result.count(isa::verify::Severity::kError);
                warnings += rec.result.count(isa::verify::Severity::kWarning);
              }
            });
        if (!r.ok) {
          std::fprintf(stderr, "error: workload '%s' failed to run: %s\n",
                       n.c_str(), r.error.c_str());
          return 1;
        }
        for (const std::string& k : kernel_reports) {
          if (!first) out += ",";
          first = false;
          out += "\n  " + k;
        }
      }
      out += "\n]\n";
      if (json_path.empty())
        std::printf("%s", out.c_str());
      else if (!write_file(json_path, out))
        return 1;
      std::fprintf(stderr, "%u error(s), %u warning(s)\n", errors, warnings);
      return errors > 0 ? 1 : 0;
    }

    if (serve_mode) {
      // Each workload name is one tenant; the redundancy/policy/scale flags
      // apply to all of them (per-tenant variation lives in the API).
      serve::ServeSpec spec;
      spec.traffic.pattern = serve_pattern;
      spec.traffic.seed = proto.seed;
      spec.traffic.offered_rps = serve_rps;
      spec.traffic.duration_ns = serve_duration_ms * 1'000'000;
      spec.traffic.max_requests = static_cast<u32>(serve_max_requests);
      for (const std::string& n : names) {
        serve::TenantSpec t;
        t.name = n;
        t.workload = n;
        t.scale = proto.scale;
        t.redundancy = proto.redundancy;
        t.deadline_ns = serve_deadline_ms * 1'000'000;
        spec.traffic.tenants.push_back(std::move(t));
      }
      spec.gpu = proto.gpu;
      spec.policy = proto.policy;
      spec.bist_interval_ns = serve_bist_ms * 1'000'000;
      spec.ckpt_interval_cycles =
          proto.ckpt.kind == ckpt::CheckpointPolicy::Kind::kInterval
              ? proto.ckpt.interval_cycles
              : 0;
      obs::Tracer tracer;
      if (!trace_path.empty()) spec.tracer = &tracer;

      const serve::ServeResult r = serve::run_serve(spec);
      TextTable table({"tenant", "offered", "served", "dropped", "misses",
                       "degraded", "p50(ms)", "p99(ms)"});
      for (const serve::TenantStats& t : r.tenants)
        table.add_row(
            {t.name, std::to_string(t.offered), std::to_string(t.served),
             std::to_string(t.dropped_expired + t.dropped_overflow),
             std::to_string(t.deadline_misses),
             std::to_string(t.degraded_served),
             TextTable::fmt(static_cast<double>(t.response_ns.p50()) / 1e6, 3),
             TextTable::fmt(static_cast<double>(t.response_ns.p99()) / 1e6,
                            3)});
      std::printf("%s\n", table.render().c_str());
      std::printf("%llu served, %llu dropped, %llu misses, %zu degrade "
                  "transitions; sustained %.1f req/s at %.0f%% utilization\n",
                  static_cast<unsigned long long>(r.served),
                  static_cast<unsigned long long>(r.dropped),
                  static_cast<unsigned long long>(r.deadline_misses),
                  r.transitions.size(), r.sustained_rps(),
                  r.utilization() * 100.0);
      bool io_ok = true;
      if (!trace_path.empty()) io_ok &= write_trace(trace_path, tracer);
      if (!json_path.empty())
        io_ok &= write_file(json_path, r.to_json(spec) + "\n");
      if (!csv_path.empty()) io_ok &= write_file(csv_path, r.to_csv());
      return r.verify_failures == 0 && r.bist_failures == 0 && io_ok ? 0 : 1;
    }

    exp::ScenarioSet set = exp::ScenarioSet::for_workloads(names, proto);
    if (sweep_policies)
      set = set.sweep_policies({sched::Policy::kDefault, sched::Policy::kHalf,
                                sched::Policy::kSrrs});
    if (sweep_redundancy) set = set.sweep_redundancy();
    if (sweep_mem_policies) set = set.sweep_write_policies();
    // CampaignRunner::run() validates the whole set before executing.

    const auto print_result = [](const exp::ScenarioResult& r) {
      std::printf("  [%3u] %-45s %s\n", r.index, r.label.c_str(),
                  r.ok ? (r.passed() ? "ok" : "FAIL") : r.error.c_str());
    };

    exp::CampaignResult campaign;
    if (!trace_path.empty()) {
      // Tracing records one device's flow; a tracer cannot follow forked
      // workers and a multi-scenario campaign would interleave devices.
      if (distributed_mode || !journal_path.empty())
        throw std::invalid_argument(
            "--trace is not supported with --distributed/--journal");
      if (set.size() != 1)
        throw std::invalid_argument(
            "--trace records exactly one scenario; this invocation expands "
            "to " + std::to_string(set.size()));
      obs::Tracer tracer;
      const exp::ScenarioProbe pre_run =
          [&tracer](runtime::Device& dev, workloads::Workload&,
                    core::ExecSession&) { dev.set_tracer(&tracer); };
      exp::ScenarioResult r =
          exp::run_scenario(set[0], 0, nullptr, pre_run, nullptr);
      campaign.jobs = 1;
      campaign.wall_sec = r.wall_sec;
      campaign.results.push_back(std::move(r));
      if (!write_trace(trace_path, tracer)) return 1;
    } else if (distributed_mode || !journal_path.empty()) {
      set.validate_all();
      dist::DistConfig dcfg;
      dcfg.workers = dist_workers;
      dcfg.journal_path = journal_path;
      dcfg.resume = resume;
      dcfg.chaos_kill_after = chaos_kill_after;
      dcfg.stop_after_results = stop_after;
      if (set.size() > 1) dcfg.on_result = print_result;
      const dist::DistReport rep = dist::run_distributed(set, dcfg);
      std::printf("distributed: %u workers, %llu units shipped, %llu "
                  "resumed, %llu executed, %llu workers died, %.1f KiB of "
                  "snapshots shipped\n",
                  dcfg.workers,
                  static_cast<unsigned long long>(rep.units_shipped),
                  static_cast<unsigned long long>(rep.resumed),
                  static_cast<unsigned long long>(rep.executed),
                  static_cast<unsigned long long>(rep.workers_died),
                  static_cast<double>(rep.snapshot_bytes_shipped) / 1024.0);
      if (rep.stopped_early) {
        // A deliberate --stop-after "crash" did what was asked; the journal
        // holds everything accepted so far for a later --resume.
        std::printf("campaign stopped early after %llu results; resume "
                    "with --resume=%s\n",
                    static_cast<unsigned long long>(rep.executed),
                    journal_path.c_str());
        return 0;
      }
      campaign = rep.campaign;
      if (check_golden) {
        exp::CampaignRunner::Config golden_cfg;
        golden_cfg.jobs = 1;
        const exp::CampaignResult golden =
            exp::CampaignRunner(golden_cfg).run(set);
        u32 mismatches = 0;
        for (size_t i = 0; i < golden.results.size(); ++i)
          if (!campaign.results[i].deterministic_fields_equal(
                  golden.results[i])) {
            ++mismatches;
            std::fprintf(stderr,
                         "GOLDEN MISMATCH at scenario %zu (%s): distributed "
                         "result differs from jobs=1\n",
                         i, golden.results[i].label.c_str());
          }
        if (mismatches > 0) return 1;
        std::printf("golden check: all %zu distributed results bit-identical "
                    "to jobs=1\n",
                    golden.results.size());
      }
    } else {
      exp::CampaignRunner::Config cfg;
      cfg.jobs = jobs;
      if (set.size() > 1) cfg.on_result = print_result;
      campaign = exp::CampaignRunner(cfg).run(set);
    }

    if (campaign.results.size() == 1) {
      print_detailed(campaign.results[0]);
    } else {
      TextTable table({"scenario", "cycles", "time(ms)", "verified", "DCLS",
                       "diverse"});
      for (const exp::ScenarioResult& r : campaign.results) {
        if (!r.ok) {
          // An errored run never produced verdicts; don't render its zeroed
          // fields as if the safety mechanism had flagged something.
          table.add_row({r.label, "-", "-", "ERROR", r.error, "-"});
          continue;
        }
        table.add_row(
            {r.label, std::to_string(r.kernel_cycles),
             TextTable::fmt(static_cast<double>(r.elapsed_ns) / 1e6, 3),
             r.verified ? "yes" : "NO", r.dcls_match ? "match" : "MISMATCH",
             r.diversity.spatially_diverse() ? "yes" : "no"});
      }
      std::printf("\n%s\n", table.render().c_str());
      std::printf("%zu scenarios, %u failed, %.2f s wall (%u jobs, %.2f "
                  "scenarios/s)\n",
                  campaign.results.size(), campaign.failed(),
                  campaign.wall_sec, campaign.jobs,
                  campaign.scenarios_per_sec());
    }

    if (profile) print_profiles(campaign);

    bool io_ok = true;
    if (!json_path.empty()) io_ok &= write_file(json_path, campaign.to_json());
    if (!csv_path.empty()) io_ok &= write_file(csv_path, campaign.to_csv());
    return campaign.all_passed() && io_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
