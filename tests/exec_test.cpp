// ExecSession: the unified N-copy redundant execution flow of paper §IV.A —
// one session API for baseline (N=1), DCLS (N=2, bitwise), and NMR (N>=3,
// majority vote), with pluggable comparison and session-owned recovery.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/exec.h"
#include "fault/injector.h"
#include "tests/test_kernels.h"

namespace higpu::core {
namespace {

using testing::make_spin_kernel;
using testing::make_store_kernel;

ExecSession::Config cfg_for(sched::Policy p, RedundancySpec red = {}) {
  ExecSession::Config c;
  c.policy = p;
  c.redundancy = red;
  return c;
}

// ---- RedundancySpec (the value) --------------------------------------------

TEST(RedundancySpec, LabelsCoverTheGrammar) {
  EXPECT_EQ(RedundancySpec::baseline().label(), "base");
  EXPECT_EQ(RedundancySpec::dcls().label(), "red");
  EXPECT_EQ(RedundancySpec::dcls_retry(2).label(), "red-retry2");
  EXPECT_EQ(RedundancySpec::tmr().label(), "tmr-vote");
  EXPECT_EQ(RedundancySpec::nmr(5).label(), "nmr5-vote");
  RedundancySpec tol;
  tol.compare = RedundancySpec::Compare::kTolerance;
  tol.tolerance = 1e-4f;
  EXPECT_EQ(tol.label(), "red-tol0.0001");
  tol.tolerance = 1e-6f;
  EXPECT_EQ(tol.label(), "red-tol1e-06")
      << "tolerance sweeps must yield distinct labels";
  RedundancySpec degrade = RedundancySpec::tmr();
  degrade.recovery = RedundancySpec::Recovery::kDegrade;
  EXPECT_EQ(degrade.label(), "tmr-vote-degrade");
}

TEST(RedundancySpec, ValidateRejectsNonsense) {
  const sim::GpuParams gpu;  // 6 SMs
  RedundancySpec r;
  r.n_copies = 0;
  EXPECT_THROW(r.validate(gpu, sched::Policy::kSrrs), std::invalid_argument);
  r = RedundancySpec::nmr(2);  // vote needs a majority
  EXPECT_THROW(r.validate(gpu, sched::Policy::kSrrs), std::invalid_argument);
  r = {};
  r.tolerance = 0.1f;  // tolerance without kTolerance
  EXPECT_THROW(r.validate(gpu, sched::Policy::kSrrs), std::invalid_argument);
  r = {};
  r.compare = RedundancySpec::Compare::kTolerance;  // ... and vice versa
  EXPECT_THROW(r.validate(gpu, sched::Policy::kSrrs), std::invalid_argument);
  r = {};
  r.srrs_starts = {0, 0};  // no spatial diversity after resolution
  EXPECT_THROW(r.validate(gpu, sched::Policy::kSrrs), std::invalid_argument);
  r = {};
  r.srrs_starts = {0, 9};  // outside the 6-SM GPU
  EXPECT_THROW(r.validate(gpu, sched::Policy::kSrrs), std::invalid_argument);
  r = RedundancySpec::nmr(7);  // 7 copies cannot partition 6 SMs
  EXPECT_THROW(r.validate(gpu, sched::Policy::kHalf), std::invalid_argument);
  // The same specs are fine where the constraint does not apply.
  r = RedundancySpec::nmr(7);
  r.validate(gpu, sched::Policy::kDefault);
  r = RedundancySpec::tmr();
  r.validate(gpu, sched::Policy::kSrrs);
}

TEST(RedundancySpec, AutoSrrsStartsSpreadAroundTheRing) {
  RedundancySpec r = RedundancySpec::dcls();
  EXPECT_EQ(r.srrs_start_of(0, 6), 0u);
  EXPECT_EQ(r.srrs_start_of(1, 6), 3u);  // the classic {0, num_sms/2}
  r = RedundancySpec::tmr();
  EXPECT_EQ(r.srrs_start_of(0, 6), 0u);
  EXPECT_EQ(r.srrs_start_of(1, 6), 2u);
  EXPECT_EQ(r.srrs_start_of(2, 6), 4u);
  // Explicit entries win; kAuto entries fall back to the spread.
  r.srrs_starts = {5, RedundancySpec::kAuto, 1};
  EXPECT_EQ(r.srrs_start_of(0, 6), 5u);
  EXPECT_EQ(r.srrs_start_of(1, 6), 2u);
  EXPECT_EQ(r.srrs_start_of(2, 6), 1u);
}

TEST(RedundancySpec, AchievedAsilRequiresDiverseRedundancy) {
  using safety::Asil;
  // A single COTS GPU element: ASIL-B at best, regardless of policy.
  EXPECT_EQ(RedundancySpec::baseline().achieved_asil(sched::Policy::kSrrs),
            Asil::kB);
  // Two diverse copies decompose B + B -> D (paper Fig. 1).
  EXPECT_EQ(RedundancySpec::dcls().achieved_asil(sched::Policy::kSrrs),
            Asil::kD);
  EXPECT_EQ(RedundancySpec::dcls().achieved_asil(sched::Policy::kHalf),
            Asil::kD);
  EXPECT_EQ(RedundancySpec::tmr().achieved_asil(sched::Policy::kSrrs),
            Asil::kD);
  // The default scheduler provides no independence: no decomposition credit.
  EXPECT_EQ(RedundancySpec::dcls().achieved_asil(sched::Policy::kDefault),
            Asil::kB);
}

// ---- Baseline / DCLS flow (the classic 5 steps) ----------------------------

TEST(ExecSession, BaselineModeAllocatesOneCopy) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kDefault,
                             RedundancySpec::baseline()));
  const ReplicaPtr p = s.alloc(64);
  ASSERT_EQ(p.copy.size(), 1u);
  const CompareVerdict v = s.compare(p, 64);  // vacuous in baseline mode
  EXPECT_TRUE(v.unanimous);
  EXPECT_TRUE(v.majority);
  EXPECT_EQ(s.comparisons(), 0u);
}

TEST(ExecSession, RedundantModeSeparatesBuffers) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs));
  const ReplicaPtr p = s.alloc(64);
  ASSERT_EQ(p.copy.size(), 2u);
  EXPECT_NE(p.copy[0], p.copy[1]);
}

TEST(ExecSession, UploadReachesEveryCopy) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, RedundancySpec::tmr()));
  const ReplicaPtr p = s.alloc(16);
  const std::vector<u32> data = {1, 2, 3, 4};
  s.h2d(p, data.data(), 16);
  for (u32 c = 0; c < 3; ++c) {
    std::vector<u32> got(4);
    dev.memcpy_d2h(got.data(), p.copy[c], 16);
    EXPECT_EQ(got, data) << "copy " << c;
  }
}

TEST(ExecSession, LaunchCreatesGroupsOnDistinctStreams) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs));
  const u32 n = 256;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_store_kernel(), sim::Dim3{2, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  ASSERT_EQ(s.pairs().size(), 1u);
  const auto [ida, idb] = s.pairs()[0];
  EXPECT_NE(ida, idb);
  EXPECT_EQ(dev.gpu().launch_of(ida).stream, 0u);
  EXPECT_EQ(dev.gpu().launch_of(idb).stream, 1u);
}

TEST(ExecSession, SrrsHintsDifferPerCopy) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs));
  const u32 n = 256;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_store_kernel(), sim::Dim3{2, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  const auto [ida, idb] = s.pairs()[0];
  const u32 start_a = dev.gpu().launch_of(ida).hints.start_sm;
  const u32 start_b = dev.gpu().launch_of(idb).hints.start_sm;
  EXPECT_NE(start_a, start_b);
  EXPECT_EQ(start_b, dev.gpu().num_sms() / 2);  // auto-spread default
}

TEST(ExecSession, HalfMasksAreDisjointHalves) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kHalf));
  const u32 n = 256;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_store_kernel(), sim::Dim3{2, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  const auto [ida, idb] = s.pairs()[0];
  const u64 mask_a = dev.gpu().launch_of(ida).hints.sm_mask;
  const u64 mask_b = dev.gpu().launch_of(idb).hints.sm_mask;
  EXPECT_NE(mask_a, 0u);
  EXPECT_NE(mask_b, 0u);
  EXPECT_EQ(mask_a & mask_b, 0u);
  EXPECT_EQ(mask_a | mask_b, sched::sm_range_mask(0, dev.gpu().num_sms()));
}

TEST(ExecSession, IdenticalCopiesCompareEqual) {
  for (sched::Policy p : {sched::Policy::kDefault, sched::Policy::kHalf,
                          sched::Policy::kSrrs}) {
    runtime::Device dev;
    ExecSession s(dev, cfg_for(p));
    const u32 n = 2048;
    const ReplicaPtr out = s.alloc(n * 4);
    s.launch(make_spin_kernel(30), sim::Dim3{16, 1, 1}, sim::Dim3{128, 1, 1},
             {out, n});
    s.sync();
    EXPECT_TRUE(s.compare(out, n * 4).unanimous)
        << "policy " << sched::policy_name(p);
    EXPECT_TRUE(s.all_unanimous());
    EXPECT_TRUE(s.all_safe());
    EXPECT_EQ(s.comparisons(), 1u);
    EXPECT_EQ(s.mismatches(), 0u);
  }
}

TEST(ExecSession, DetectsInjectedOutputCorruption) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs));
  const u32 n = 256;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_store_kernel(), sim::Dim3{2, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  // Corrupt one word of copy 1 directly in device memory.
  dev.gpu().store().write32(out.copy[1] + 40, 0xBAD);
  const CompareVerdict v = s.compare(out, n * 4);
  EXPECT_TRUE(v.detected());
  EXPECT_FALSE(v.unanimous);
  EXPECT_FALSE(v.majority);  // 1 vs 1: bitwise pairs cannot out-vote
  EXPECT_EQ(v.dissenting_words, 1u);
  EXPECT_EQ(v.tied_words, 1u);
  EXPECT_FALSE(s.all_unanimous());
  EXPECT_FALSE(s.all_safe());
  EXPECT_EQ(s.mismatches(), 1u);
}

TEST(ExecSession, KernelCyclesAccumulate) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs));
  const u32 n = 1024;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_spin_kernel(50), sim::Dim3{8, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  const Cycle c1 = s.kernel_cycles();
  EXPECT_GT(c1, 0u);
  s.launch(make_spin_kernel(50), sim::Dim3{8, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  EXPECT_GT(s.kernel_cycles(), c1);
}

TEST(ExecSession, WallClockGrowsWithCopyCount) {
  auto run_n = [&](const RedundancySpec& red) {
    runtime::Device dev;
    ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
    const u32 n = 4096;
    const ReplicaPtr out = s.alloc(n * 4);
    std::vector<u32> zeros(n, 0);
    s.h2d(out, zeros.data(), n * 4);
    s.launch(make_spin_kernel(100), sim::Dim3{32, 1, 1}, sim::Dim3{128, 1, 1},
             {out, n});
    s.sync();
    s.compare(out, n * 4);
    return dev.elapsed_ns();
  };
  const NanoSec base = run_n(RedundancySpec::baseline());
  const NanoSec dcls = run_n(RedundancySpec::dcls());
  const NanoSec tmr = run_n(RedundancySpec::tmr());
  EXPECT_GT(dcls, base);
  EXPECT_GT(tmr, dcls);
}

// ---- NMR / majority vote ---------------------------------------------------

constexpr u32 kN = 12 * 64;

ReplicaPtr run_group(ExecSession& s, isa::ProgramPtr prog) {
  ReplicaPtr out = s.alloc(kN * 4);
  std::vector<u32> zeros(kN, 0);
  s.h2d(out, zeros.data(), kN * 4);
  s.launch(std::move(prog), sim::Dim3{12, 1, 1}, sim::Dim3{64, 1, 1},
           {out, kN});
  s.sync();
  return out;
}

TEST(Nmr, TripleCopiesAllAgreeWhenFaultFree) {
  for (sched::Policy p : {sched::Policy::kDefault, sched::Policy::kHalf,
                          sched::Policy::kSrrs}) {
    runtime::Device dev;
    ExecSession s(dev, cfg_for(p, RedundancySpec::tmr()));
    ReplicaPtr out = run_group(s, make_spin_kernel(30));
    const CompareVerdict v = s.compare(out, kN * 4);
    EXPECT_TRUE(v.unanimous) << sched::policy_name(p);
    EXPECT_TRUE(v.majority);
    EXPECT_FALSE(v.detected());
    EXPECT_EQ(v.faulty_copy, -1);
  }
}

TEST(Nmr, LaunchesOneKernelPerCopy) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, RedundancySpec::tmr()));
  run_group(s, make_store_kernel());
  ASSERT_EQ(s.groups().size(), 1u);
  EXPECT_EQ(s.groups()[0].size(), 3u);
  // Distinct streams -> distinct launch ids and distinct SRRS start SMs.
  std::set<u32> starts;
  for (u32 id : s.groups()[0])
    starts.insert(dev.gpu().launch_of(id).hints.start_sm);
  EXPECT_EQ(starts.size(), 3u);
  // all_copy_pairs: 3 unordered pairs per group for diversity analysis.
  EXPECT_EQ(s.all_copy_pairs().size(), 3u);
}

TEST(Nmr, HalfPartitionsAreDisjointForThreeCopies) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kHalf, RedundancySpec::tmr()));
  run_group(s, make_spin_kernel(50));
  std::map<u32, std::set<u32>> sms;
  for (const sim::BlockRecord& r : dev.gpu().block_records())
    sms[r.launch_id].insert(r.sm);
  ASSERT_EQ(sms.size(), 3u);
  std::set<u32> all;
  u64 total = 0;
  for (const auto& [id, set] : sms) {
    total += set.size();
    all.insert(set.begin(), set.end());
  }
  EXPECT_EQ(all.size(), total);  // pairwise disjoint
}

TEST(Nmr, MajorityOutvotesSingleFaultyCopy) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, RedundancySpec::tmr()));
  ReplicaPtr out = run_group(s, make_store_kernel());
  // Corrupt one word of copy 2 directly.
  dev.gpu().store().write32(out.copy[2] + 16, 0xDEAD);
  const CompareVerdict v = s.compare(out, kN * 4);
  EXPECT_TRUE(v.detected());
  EXPECT_TRUE(v.majority);  // fail-operational: majority still intact
  EXPECT_FALSE(v.unanimous);
  EXPECT_EQ(v.dissenting_words, 1u);
  EXPECT_EQ(v.tied_words, 0u);
  EXPECT_EQ(v.faulty_copy, 2);
  EXPECT_TRUE(s.all_safe()) << "an out-voted fault is a safe outcome";
  EXPECT_FALSE(s.all_unanimous());
}

TEST(Nmr, VoteRepairsTheCallersHostBuffer) {
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, RedundancySpec::tmr()));
  ReplicaPtr out = run_group(s, make_store_kernel());
  // Corrupt the PRIMARY copy: the application's d2h data is wrong until the
  // vote repairs it (fail-operational continuation for every workload).
  dev.gpu().store().write32(out.copy[0] + 16, 0xDEAD);
  std::vector<u32> host(kN);
  s.d2h(host.data(), out, kN * 4);
  EXPECT_EQ(host[4], 0xDEADu) << "primary copy is corrupted before the vote";
  const CompareVerdict v = s.compare(out, kN * 4, host.data());
  EXPECT_TRUE(v.majority);
  EXPECT_TRUE(v.corrected);
  EXPECT_EQ(v.faulty_copy, 0);
  EXPECT_EQ(host[4], 4u) << "voted majority value (out[gid] = gid)";
}

TEST(Nmr, OutvotedPrimaryWithoutRepairDestinationIsNotSafe) {
  // Without a host buffer the majority value is discarded while the
  // application's d2h data stays wrong — that must not earn "safe" credit
  // (a dissenting SECONDARY copy needs no repair and stays safe).
  runtime::Device dev;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, RedundancySpec::tmr()));
  ReplicaPtr out = run_group(s, make_store_kernel());
  dev.gpu().store().write32(out.copy[0] + 16, 0xDEAD);
  const CompareVerdict v = s.compare(out, kN * 4);
  EXPECT_TRUE(v.detected());
  EXPECT_EQ(v.primary_dissents, 1u);
  EXPECT_FALSE(v.corrected);
  EXPECT_FALSE(v.majority) << "no safe output exists anywhere";
  EXPECT_FALSE(s.all_safe());
}

TEST(Nmr, BitwiseTripleDetectsButNeverCorrects) {
  runtime::Device dev;
  RedundancySpec red;
  red.n_copies = 3;  // bitwise TMR: unanimity or failure
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
  ReplicaPtr out = run_group(s, make_store_kernel());
  dev.gpu().store().write32(out.copy[0] + 16, 0xDEAD);
  std::vector<u32> host(kN);
  s.d2h(host.data(), out, kN * 4);
  const CompareVerdict v = s.compare(out, kN * 4, host.data());
  EXPECT_TRUE(v.detected());
  EXPECT_FALSE(v.majority);
  EXPECT_FALSE(v.corrected);
  EXPECT_EQ(host[4], 0xDEADu) << "bitwise mode must not touch the buffer";
  EXPECT_FALSE(s.all_safe());
}

TEST(Nmr, ToleranceModeAcceptsSmallFloatDeviations) {
  runtime::Device dev;
  RedundancySpec red;
  red.compare = RedundancySpec::Compare::kTolerance;
  red.tolerance = 1e-3f;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
  ReplicaPtr out = run_group(s, make_store_kernel());
  // Nudge one word of copy 1 within tolerance, one far outside.
  std::vector<u32> words(kN);
  dev.memcpy_d2h(words.data(), out.copy[1], kN * 4);
  // store kernel writes integers; treat as float bits for the nudge.
  const float v4 = bits2f(words[4]);
  dev.gpu().store().write32(out.copy[1] + 16, f2bits(v4 * (1.0f + 1e-4f)));
  EXPECT_TRUE(s.compare(out, kN * 4).unanimous)
      << "within-tolerance deviation must not be a detection";
  dev.gpu().store().write32(out.copy[1] + 16, f2bits(v4 * 2.0f + 7.0f));
  const CompareVerdict v = s.compare(out, kN * 4);
  EXPECT_TRUE(v.detected());
  EXPECT_EQ(v.faulty_copy, 1);
}

TEST(Nmr, ToleranceAgreementIsPairwiseNotJustVsReference) {
  // Tolerance agreement is not transitive: two copies straddling the
  // reference by just under eps each "agree" with copy 0 but not with each
  // other — that is a detectable disagreement, not unanimity.
  runtime::Device dev;
  RedundancySpec red;
  red.n_copies = 3;
  red.compare = RedundancySpec::Compare::kTolerance;
  red.tolerance = 1e-3f;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
  ReplicaPtr out = run_group(s, make_store_kernel());
  // Word 4 is ~0 in float terms (denormal bits of gid=4): give copies 1
  // and 2 opposite 0.9*eps absolute deviations.
  dev.gpu().store().write32(out.copy[1] + 16, f2bits(9e-4f));
  dev.gpu().store().write32(out.copy[2] + 16, f2bits(-9e-4f));
  const CompareVerdict v = s.compare(out, kN * 4);
  EXPECT_TRUE(v.detected())
      << "copies 1 and 2 disagree by 1.8*eps; unanimity must not be claimed";
}

TEST(Nmr, ToleranceModeBlamesTheReferenceCopyWhenItIsTheDissenter) {
  // With copies 1..n-1 agreeing among themselves, a deviating copy 0 must
  // be diagnosed as the faulty one — not the first copy that happens to
  // differ from the corrupted reference.
  runtime::Device dev;
  RedundancySpec red;
  red.n_copies = 3;
  red.compare = RedundancySpec::Compare::kTolerance;
  red.tolerance = 1e-3f;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
  ReplicaPtr out = run_group(s, make_store_kernel());
  std::vector<u32> words(kN);
  dev.memcpy_d2h(words.data(), out.copy[0], kN * 4);
  dev.gpu().store().write32(out.copy[0] + 16,
                            f2bits(bits2f(words[4]) * 2.0f + 7.0f));
  const CompareVerdict v = s.compare(out, kN * 4);
  EXPECT_TRUE(v.detected());
  EXPECT_EQ(v.faulty_copy, 0);
}

TEST(Nmr, TmrSurvivesPermanentSmFaultUnderSrrs) {
  // With three SRRS copies and one broken SM, at most one copy of any
  // logical block is corrupted: the majority always wins and the repaired
  // host data equals a fault-free execution.
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(1, 0, 20);
  dev.gpu().set_fault_hook(&fi);
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, RedundancySpec::tmr()));
  ReplicaPtr out = run_group(s, make_spin_kernel(40));
  std::vector<u32> host(kN);
  s.d2h(host.data(), out, kN * 4);
  const CompareVerdict v = s.compare(out, kN * 4, host.data());
  EXPECT_TRUE(v.detected());
  EXPECT_TRUE(v.majority) << "TMR must remain fail-operational";
  EXPECT_EQ(v.tied_words, 0u);

  runtime::Device clean_dev;
  ExecSession clean(clean_dev,
                    cfg_for(sched::Policy::kSrrs, RedundancySpec::dcls()));
  ReplicaPtr ref = run_group(clean, make_spin_kernel(40));
  std::vector<u32> golden(kN);
  clean_dev.gpu().store().read_block(golden.data(), ref.primary(), kN * 4);
  EXPECT_EQ(host, golden);
}

// ---- Session-owned recovery ------------------------------------------------

void spin_body(ExecSession& s) {
  const u32 n = 12 * 64;
  ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_spin_kernel(60), sim::Dim3{12, 1, 1}, sim::Dim3{64, 1, 1},
           {out, n});
  s.sync();
  // The standard workload pattern: fetch the primary result, then compare
  // with the host buffer as the repair destination.
  std::vector<u32> host(n);
  s.d2h(host.data(), out, n * 4);
  s.compare(out, n * 4, host.data());
}

TEST(Recovery, NoRetryWhenFaultFree) {
  runtime::Device dev;
  ExecSession s(dev,
                cfg_for(sched::Policy::kSrrs, RedundancySpec::dcls_retry(2)));
  const ExecSession::Report rep = s.run(spin_body);
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.attempts, 1u);
  EXPECT_TRUE(rep.budget.met());
  EXPECT_EQ(rep.asil, safety::Asil::kD);
}

TEST(Recovery, TransientFaultRecoveredByReexecution) {
  runtime::Device dev;
  fault::FaultInjector fi;
  // Single-SM transient hitting only the first attempt's execution window.
  fi.arm_transient_sm(0, 4000, 4000, 20);
  dev.gpu().set_fault_hook(&fi);

  ExecSession s(dev, cfg_for(sched::Policy::kSrrs,
                             RedundancySpec::dcls_retry(3, 1'000'000'000)));
  const ExecSession::Report rep = s.run(spin_body);
  EXPECT_TRUE(rep.success);
  EXPECT_GT(rep.attempts, 1u) << "first attempt must have been corrupted";
  EXPECT_TRUE(s.all_unanimous()) << "the final attempt is clean";
  EXPECT_TRUE(rep.budget.met());
}

TEST(Recovery, PermanentFaultExhaustsRetries) {
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(2, 0, 20);
  dev.gpu().set_fault_hook(&fi);

  ExecSession s(dev,
                cfg_for(sched::Policy::kSrrs, RedundancySpec::dcls_retry(2)));
  const ExecSession::Report rep = s.run(spin_body);
  EXPECT_FALSE(rep.success);
  EXPECT_FALSE(rep.degraded);  // kRetry never degrades
  EXPECT_EQ(rep.attempts, 3u);  // initial + 2 retries
}

TEST(Recovery, TmrOutvotesInsteadOfRetrying) {
  // Fail-operational NMR: a single corrupted copy is out-voted, so the
  // retry loop never fires even though the fault was detected.
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(2, 0, 20);
  dev.gpu().set_fault_hook(&fi);

  RedundancySpec red = RedundancySpec::tmr();
  red.recovery = RedundancySpec::Recovery::kRetry;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
  const ExecSession::Report rep = s.run(spin_body);
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.attempts, 1u) << "majority vote already produced a safe output";
  EXPECT_GT(s.mismatches(), 0u) << "the fault was still detected";
}

TEST(Recovery, DegradeFlagsTheTransitionWithoutReexecuting) {
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(2, 0, 20);
  dev.gpu().set_fault_hook(&fi);

  RedundancySpec red = RedundancySpec::dcls();
  red.recovery = RedundancySpec::Recovery::kDegrade;
  ExecSession s(dev, cfg_for(sched::Policy::kSrrs, red));
  const ExecSession::Report rep = s.run(spin_body);
  EXPECT_FALSE(rep.success);
  EXPECT_TRUE(rep.degraded);
  EXPECT_EQ(rep.attempts, 1u);
}

TEST(Recovery, RetryAccountsTheWholeResponseAgainstTheFtti) {
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(2, 0, 20);
  dev.gpu().set_fault_hook(&fi);

  // An FTTI far too small for even one execution: the verdict must fail
  // although every retry executed "correctly".
  ExecSession s(dev,
                cfg_for(sched::Policy::kSrrs, RedundancySpec::dcls_retry(1, 10)));
  const ExecSession::Report rep = s.run(spin_body);
  EXPECT_FALSE(rep.budget.met());
  EXPECT_EQ(rep.budget.response_ns(), static_cast<u64>(rep.total_ns));
  EXPECT_GT(rep.total_ns, 0);
}

}  // namespace
}  // namespace higpu::core
