#include "sim/gpu.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "sim/blockexec.h"

namespace higpu::sim {

Gpu::Gpu(const GpuParams& params, memsys::GlobalStore* store)
    : params_(params), store_(store), mem_(params.num_sms, params.mem) {
  assert(store != nullptr);
  sms_.reserve(params.num_sms);
  for (u32 i = 0; i < params.num_sms; ++i) {
    sms_.push_back(std::make_unique<SmCore>(i, params_, &mem_, store_));
    sms_.back()->set_block_done_callback(
        [this](const BlockRecord& rec) { on_block_done(rec); });
  }
}

void Gpu::set_kernel_scheduler(std::unique_ptr<IKernelScheduler> sched) {
  ksched_ = std::move(sched);
}

void Gpu::set_fault_hook(IFaultHook* hook) {
  fault_ = hook;
  for (auto& sm : sms_) sm->set_fault_hook(hook);
}

void Gpu::set_trace_sink(ITraceSink* sink) {
  for (auto& sm : sms_) sm->set_trace_sink(sink);
}

void Gpu::set_obs_tracer(obs::Tracer* t) {
  obs_ = t;
  obs_kernel_track_ = 0;
  if (t != nullptr) {
    obs_kernel_track_ = t->track("kernels", obs::kPidDevice);
    for (u32 i = 0; i < sms_.size(); ++i)
      sms_[i]->set_obs_tracer(t, t->track("sm" + std::to_string(i),
                                          obs::kPidDevice));
  } else {
    for (auto& sm : sms_) sm->set_obs_tracer(nullptr, 0);
  }
  mem_.set_obs_tracer(t);
}

std::vector<obs::SmCycles> Gpu::sm_profile() const {
  std::vector<obs::SmCycles> out;
  out.reserve(sms_.size());
  for (const auto& sm : sms_) out.push_back(sm->cycle_breakdown(cycle_));
  return out;
}

void Gpu::set_warp_sched_policy(WarpSchedPolicy p) {
  for (auto& sm : sms_) sm->set_warp_sched_policy(p);
}

u32 Gpu::launch(KernelLaunch launch) {
  // Always-on launch validation (formerly NDEBUG-masked asserts): these are
  // host-API usage errors, not program defects, so the static verifier
  // cannot prove them away — a release build must refuse them too.
  if (ksched_ == nullptr)
    throw std::invalid_argument("set a kernel scheduler before launching");
  if (launch.program == nullptr)
    throw std::invalid_argument("kernel launch has no program");
  if (launch.total_blocks() == 0 || launch.threads_per_block() == 0)
    throw std::invalid_argument("kernel '" + launch.program->name() +
                                "': empty grid or block");
  if (launch.threads_per_block() >
      params_.max_warps_per_sm * params_.warp_size)
    throw std::invalid_argument("kernel '" + launch.program->name() +
                                "': thread block larger than an SM");
  if (launch.params.size() < launch.program->num_params())
    throw std::invalid_argument(
        "kernel '" + launch.program->name() + "': launch passes " +
        std::to_string(launch.params.size()) + " parameter(s), program "
        "declares " + std::to_string(launch.program->num_params()));

  auto slot = std::make_unique<LaunchSlot>();
  const u32 id = static_cast<u32>(launches_.size());
  slot->launch = std::move(launch);
  attach_trace(slot->launch);
  slot->state.launch_id = id;
  slot->state.total_blocks = slot->launch.total_blocks();
  last_arrival_ = std::max(cycle_, last_arrival_) + params_.launch_gap_cycles;
  slot->state.arrival = last_arrival_;
  launches_.push_back(std::move(slot));
  state_ptrs_.push_back(&launches_.back()->state);
  stats_.add("kernels_launched");
  return id;
}

bool Gpu::idle() const {
  return kernels_finished_ == launches_.size();
}

void Gpu::attach_trace(KernelLaunch& launch) {
  if (params_.exec_mode != ExecMode::kBlock) return;
  launch.trace = blockexec::trace_for(launch.program);
  // Compilation statistics come from the (deterministic) trace metadata,
  // counted once per launch — never from cache misses, whose hit pattern
  // depends on what else the process ran and would break run-to-run
  // stat determinism.
  stats_.add("blocks_compiled", launch.trace->num_blocks());
  stats_.add("superops_compiled", launch.trace->num_superops());
  stats_.add("block_fused_runs", launch.trace->num_fused_runs());
  stats_.add("block_static_insns", launch.trace->size());
}

void Gpu::step() {
  // Dense stepping changes SM state behind the event bookkeeping's back;
  // the next run_event entry must rebuild its active set.
  event_primed_ = false;
  cycle_ += 1;
  dispatched_this_cycle_ = false;
  if (ksched_) ksched_->dispatch(*this);
  for (auto& sm : sms_) {
    sm->set_use_wake_records(false);  // faithful dense semantics
    sm->cycle(cycle_);
  }
}

Cycle Gpu::run_until_idle(u64 max_cycles) {
  return params_.engine == SimEngine::kDense ? run_dense(max_cycles)
                                             : run_event(max_cycles);
}

Cycle Gpu::run_dense(u64 max_cycles) {
  const Cycle limit = cycle_ + max_cycles;
  for (auto& sm : sms_) sm->set_use_wake_records(false);
  while (!idle()) {
    // Loop top: all cycles <= cycle_ fully processed — the dense capture
    // point (targets <= cycle_ fire before cycle_ + 1 is simulated).
    maybe_checkpoint(cycle_ + 1);
    if (cycle_ >= limit)
      throw SimTimeout("GPU did not drain within cycle budget (scheduler deadlock?)");
    step();
  }
  return cycle_;
}

Cycle Gpu::next_kernel_arrival() {
  // Arrivals are assigned in monotonically increasing order at launch(), so
  // a cursor over the prefix already visible at cycle_ is exact.
  while (arrival_cursor_ < launches_.size() &&
         launches_[arrival_cursor_]->state.arrival <= cycle_)
    ++arrival_cursor_;
  return arrival_cursor_ < launches_.size()
             ? launches_[arrival_cursor_]->state.arrival
             : kNeverCycle;
}

void Gpu::wake_sm(u32 sm, Cycle when) {
  if (!event_running_ || when >= sm_wake_[sm]) return;
  sm_wake_[sm] = when;
  wake_heap_.push({when, sm});
}

Cycle Gpu::run_event(u64 max_cycles) {
  const Cycle limit = cycle_ + max_cycles;
  event_running_ = true;
  for (auto& sm : sms_) sm->set_use_wake_records(true);
  if (!event_primed_) {
    // (Re)build the active set. Host code may have stepped the GPU densely
    // since the last run, so start every resident SM on the next cycle and
    // let the first ticks establish real wake times. A restored snapshot
    // arrives primed (wake times, heap and dispatch_wake_ deserialized) and
    // skips this, resuming exactly where the captured run left off.
    sm_wake_.assign(num_sms(), kNeverCycle);
    wake_heap_ = {};
    for (u32 i = 0; i < num_sms(); ++i)
      if (!sms_[i]->idle()) wake_sm(i, cycle_ + 1);
    dispatch_wake_ = cycle_ + 1;
    event_primed_ = true;
  }

  while (!idle()) {
    // Earliest future event: dispatch recheck, kernel arrival, SM wake, or
    // fault-window boundary. SMs due on the very next cycle (the common
    // case while work is flowing) bypass the heap entirely; the heap only
    // holds true sleeps.
    Cycle next = std::min(dispatch_wake_, next_kernel_arrival());
    while (!wake_heap_.empty()) {
      const auto [when, sm] = wake_heap_.top();
      if (when != sm_wake_[sm]) {  // stale heap entry
        wake_heap_.pop();
        continue;
      }
      next = std::min(next, when);
      break;
    }
    if (fault_ != nullptr)
      next = std::min(next, fault_->next_trigger_cycle(cycle_));

    // Capture checkpoints the jump to `next` would move past. The clock is
    // still at the last processed event, so the captured state resumes by
    // recomputing this very jump — fast-forward accounting included.
    maybe_checkpoint(next);

    if (next > limit) {
      // The dense loop would have ticked quiescently up to `limit` before
      // throwing; replay its accounting so statistics stay bit-identical.
      for (auto& sm : sms_) sm->settle_to(limit);
      cycle_ = limit;
      event_running_ = false;
      event_primed_ = false;
      throw SimTimeout("GPU did not drain within cycle budget (scheduler deadlock?)");
    }

    ff_cycles_ += next - cycle_ - 1;
    cycle_ = next;
    dispatched_this_cycle_ = false;
    // Dispatch first, exactly as in the dense loop. A dispatch may wake a
    // sleeping SM for this very cycle (wake_sm via try_dispatch_block).
    if (ksched_) ksched_->dispatch(*this);
    bool progress = dispatched_this_cycle_;

    bool any_next_cycle = false;
    for (u32 i = 0; i < num_sms(); ++i) {
      if (sm_wake_[i] > cycle_) continue;
      SmCore& sm = *sms_[i];
      sm.cycle(cycle_);
      if (sm.progressed()) {
        // State changed; other warps (or the scheduler) may act next cycle.
        sm_wake_[i] = cycle_ + 1;
        progress = true;
        any_next_cycle = true;
      } else {
        sm_wake_[i] = sm.next_event_cycle();
        if (sm_wake_[i] != kNeverCycle) wake_heap_.push({sm_wake_[i], i});
      }
    }

    // Any progress (issue, completion, block placement) can change the next
    // dispatch decision, so re-run the kernel scheduler one cycle later.
    // With no progress, only a kernel arrival or an SM wake can unblock it —
    // both are events already in the computation above.
    dispatch_wake_ = (progress || any_next_cycle) ? cycle_ + 1 : kNeverCycle;
  }
  event_running_ = false;
  return cycle_;
}

void Gpu::set_checkpoint_targets(std::vector<Cycle> targets) {
  std::sort(targets.begin(), targets.end());
  ckpt_targets_ = std::move(targets);
  ckpt_target_idx_ = 0;
  // Never capture "in the past": a target below the current clock would
  // yield a snapshot that does not cover it.
  while (ckpt_target_idx_ < ckpt_targets_.size() &&
         ckpt_targets_[ckpt_target_idx_] < cycle_)
    ++ckpt_target_idx_;
}

void Gpu::set_checkpoint_interval(u64 cycles) {
  ckpt_interval_ = cycles;
  if (cycles == 0) {
    ckpt_next_interval_ = kNeverCycle;
    return;
  }
  ckpt_next_interval_ = (cycle_ / cycles + 1) * cycles;
}

void Gpu::maybe_checkpoint(Cycle horizon) {
  if (!ckpt_hook_) return;
  // `horizon` is the next cycle the loop will actually simulate. A target T
  // with T <= horizon fires now, while the clock is still strictly below T
  // (nothing in (now(), T) exists to simulate), so the snapshot predates
  // every possible event at cycles >= T — including a fault window a forked
  // run arms to open exactly at T.
  while (ckpt_target_idx_ < ckpt_targets_.size() &&
         ckpt_targets_[ckpt_target_idx_] <= horizon) {
    ckpt_hook_(ckpt_targets_[ckpt_target_idx_], /*is_target=*/true);
    ++ckpt_target_idx_;
  }
  while (ckpt_interval_ != 0 && ckpt_next_interval_ <= horizon) {
    ckpt_hook_(ckpt_next_interval_, /*is_target=*/false);
    ckpt_next_interval_ += ckpt_interval_;
  }
}

bool Gpu::sm_can_accept(u32 sm, const KernelLaunch& launch) const {
  return sms_[sm]->can_accept(launch);
}

bool Gpu::all_sms_drained() const {
  for (const auto& sm : sms_)
    if (!sm->idle()) return false;
  return true;
}

const KernelLaunch& Gpu::launch_of(u32 launch_id) const {
  return launches_[launch_id]->launch;
}

bool Gpu::priors_finished(u32 launch_id) const {
  for (u32 i = 0; i < launch_id; ++i)
    if (!launches_[i]->state.finished()) return false;
  return true;
}

bool Gpu::stream_ready(const KernelState& ks) const {
  const u32 stream = launches_[ks.launch_id]->launch.stream;
  for (u32 i = 0; i < ks.launch_id; ++i)
    if (launches_[i]->launch.stream == stream && !launches_[i]->state.finished())
      return false;
  return true;
}

bool Gpu::try_dispatch_block(KernelState& ks, u32 sm) {
  if (dispatched_this_cycle_) return false;
  if (ks.fully_dispatched()) return false;
  assert(sm < num_sms());

  u32 actual_sm = sm;
  if (fault_ != nullptr && fault_->armed())
    actual_sm = fault_->corrupt_block_mapping(sm, num_sms(), cycle_);

  const KernelLaunch& launch = launches_[ks.launch_id]->launch;
  if (!sms_[actual_sm]->can_accept(launch)) return false;

  if (!ks.started()) ks.first_dispatch_cycle = cycle_;
  sms_[actual_sm]->accept_block(launch, ks.launch_id, ks.blocks_dispatched, sm,
                                cycle_);
  if (fault_ != nullptr && actual_sm != sm) fault_->on_block_diverted(sm, actual_sm);
  ks.blocks_dispatched += 1;
  dispatched_this_cycle_ = true;
  // The target SM must simulate this cycle so the new block's warps can
  // start issuing exactly when the dense loop would run them.
  wake_sm(actual_sm, cycle_);
  stats_.add("blocks_dispatched");
  return true;
}

const KernelState& Gpu::kernel_state(u32 launch_id) const {
  return launches_[launch_id]->state;
}

Cycle Gpu::kernel_cycles(u32 launch_id) const {
  const KernelState& ks = launches_[launch_id]->state;
  assert(ks.finished());
  return ks.done_cycle - ks.first_dispatch_cycle;
}

void Gpu::on_block_done(const BlockRecord& rec) {
  records_.push_back(rec);
  KernelState& ks = launches_[rec.launch_id]->state;
  ks.blocks_done += 1;
  if (ks.finished()) {
    ks.done_cycle = cycle_;
    kernels_finished_ += 1;
    stats_.add("kernels_completed");
    if (obs_ != nullptr)
      obs_->emit(obs_kernel_track_, obs::Ev::kKernel, ks.first_dispatch_cycle,
                 ks.done_cycle - ks.first_dispatch_cycle, rec.launch_id,
                 ks.total_blocks);
  }
}

void Gpu::save(
    ckpt::Writer& w,
    const std::function<u32(const isa::ProgramPtr&)>& program_ref) const {
  w.begin_section("gpu");
  w.put64(cycle_);
  w.put64(last_arrival_);
  w.put64(last_dispatch_cycle_);
  w.putb(dispatched_this_cycle_);
  w.put64(ff_cycles_);
  w.putb(event_primed_);
  w.put64(dispatch_wake_);
  if (sm_wake_.empty()) {
    // Never entered the event engine: serialize the canonical empty wake
    // table so save -> restore -> save round-trips byte-identically.
    const std::vector<Cycle> all_asleep(sms_.size(), kNeverCycle);
    w.put_u64_vec(all_asleep);
  } else {
    w.put_u64_vec(sm_wake_);
  }
  // The wake heap normalized: one live entry per sleeping SM (stale
  // lazy-deletion entries are dropped — they are semantic no-ops, and
  // normalizing keeps snapshots of identical states byte-identical).
  w.put64(arrival_cursor_);
  w.put32(kernels_finished_);

  w.put64(launches_.size());
  for (const auto& slot : launches_) {
    const KernelLaunch& l = slot->launch;
    w.put32(program_ref(l.program));
    for (u32 d : {l.grid.x, l.grid.y, l.grid.z, l.block.x, l.block.y,
                  l.block.z})
      w.put32(d);
    w.put_u32_vec(l.params);
    w.put32(l.hints.start_sm);
    w.put64(l.hints.sm_mask);
    w.put32(l.stream);
    w.put_string(l.tag);
    const KernelState& ks = slot->state;
    w.put32(ks.launch_id);
    w.put64(ks.arrival);
    w.put32(ks.blocks_dispatched);
    w.put32(ks.blocks_done);
    w.put32(ks.total_blocks);
    w.put64(ks.first_dispatch_cycle);
    w.put64(ks.done_cycle);
  }

  w.put64(records_.size());
  for (const BlockRecord& rec : records_) {
    w.put32(rec.launch_id);
    w.put32(rec.block_linear);
    w.put32(rec.sm);
    w.put32(rec.intended_sm);
    w.put64(rec.dispatch_cycle);
    w.put64(rec.end_cycle);
  }

  const auto stat_entries = stats_.entries();
  w.put64(stat_entries.size());
  for (const auto& [name, value] : stat_entries) {
    w.put_string(name);
    w.put64(value);
  }
  w.end_section();

  w.begin_section("sched");
  w.put_string(ksched_ ? ksched_->name() : "");
  if (ksched_) ksched_->save_state(w);
  w.end_section();

  for (u32 i = 0; i < num_sms(); ++i) {
    w.begin_section("sm" + std::to_string(i));
    sms_[i]->save(w);
    w.end_section();
  }

  mem_.save(w);

  w.begin_section("fault");
  w.putb(fault_ != nullptr);
  if (fault_ != nullptr) fault_->save_state(w);
  w.end_section();
}

void Gpu::restore(ckpt::Reader& r,
                  const std::function<isa::ProgramPtr(u32)>& program_of,
                  bool restore_fault) {
  r.enter_section("gpu");
  cycle_ = r.get64();
  last_arrival_ = r.get64();
  last_dispatch_cycle_ = r.get64();
  dispatched_this_cycle_ = r.getb();
  ff_cycles_ = r.get64();
  event_primed_ = r.getb();
  dispatch_wake_ = r.get64();
  sm_wake_ = r.get_u64_vec();
  // A device that never entered the event engine (dense runs, fresh
  // devices) has no wake table yet; its snapshot carries an empty one.
  if (sm_wake_.empty()) sm_wake_.assign(sms_.size(), kNeverCycle);
  if (sm_wake_.size() != sms_.size())
    throw ckpt::SnapshotError("snapshot SM count mismatch");
  // Rebuild the heap from the normalized wake times. Pop order is a strict
  // (cycle, sm) order regardless of the heap's internal layout, so this is
  // behaviourally identical to the captured heap minus its stale entries.
  wake_heap_ = {};
  for (u32 i = 0; i < sm_wake_.size(); ++i)
    if (sm_wake_[i] != kNeverCycle) wake_heap_.push({sm_wake_[i], i});
  arrival_cursor_ = static_cast<size_t>(r.get64());
  kernels_finished_ = r.get32();

  const u64 n_launches = r.get64();
  launches_.clear();
  state_ptrs_.clear();
  launches_.reserve(static_cast<size_t>(n_launches));
  for (u64 i = 0; i < n_launches; ++i) {
    auto slot = std::make_unique<LaunchSlot>();
    KernelLaunch& l = slot->launch;
    l.program = program_of(r.get32());
    l.grid.x = r.get32();
    l.grid.y = r.get32();
    l.grid.z = r.get32();
    l.block.x = r.get32();
    l.block.y = r.get32();
    l.block.z = r.get32();
    l.params = r.get_u32_vec();
    l.hints.start_sm = r.get32();
    l.hints.sm_mask = r.get64();
    l.stream = r.get32();
    l.tag = r.get_string();
    // Traces are derived state: rebuilt (via the process-wide cache), not
    // deserialized. The compile-time stats ride in the stats_ snapshot, so
    // no attach_trace() accounting here. Must happen before the SMs are
    // restored — they re-derive warp.ctrace from the launch.
    if (params_.exec_mode == ExecMode::kBlock)
      l.trace = blockexec::trace_for(l.program);
    KernelState& ks = slot->state;
    ks.launch_id = r.get32();
    ks.arrival = r.get64();
    ks.blocks_dispatched = r.get32();
    ks.blocks_done = r.get32();
    ks.total_blocks = r.get32();
    ks.first_dispatch_cycle = r.get64();
    ks.done_cycle = r.get64();
    launches_.push_back(std::move(slot));
    state_ptrs_.push_back(&launches_.back()->state);
  }

  records_.resize(static_cast<size_t>(r.get64()));
  for (BlockRecord& rec : records_) {
    rec.launch_id = r.get32();
    rec.block_linear = r.get32();
    rec.sm = r.get32();
    rec.intended_sm = r.get32();
    rec.dispatch_cycle = r.get64();
    rec.end_cycle = r.get64();
  }

  stats_ = StatSet{};
  const u64 n_stats = r.get64();
  for (u64 i = 0; i < n_stats; ++i) {
    const std::string name = r.get_string();
    stats_.set(name, r.get64());
  }
  r.leave_section();

  r.enter_section("sched");
  const std::string sched_name = r.get_string();
  if ((ksched_ ? ksched_->name() : "") != sched_name)
    throw ckpt::SnapshotError(
        "snapshot kernel scheduler mismatch: captured '" + sched_name +
        "', installed '" + (ksched_ ? ksched_->name() : "") + "'");
  if (ksched_) ksched_->restore_state(r);
  r.leave_section();

  const auto launch_of = [this](u32 id) -> const KernelLaunch* {
    return &launches_.at(id)->launch;
  };
  for (u32 i = 0; i < num_sms(); ++i) {
    r.enter_section("sm" + std::to_string(i));
    sms_[i]->restore(r, launch_of);
    r.leave_section();
  }

  mem_.restore(r);

  r.enter_section("fault");
  const bool had_fault = r.getb();
  if (had_fault && restore_fault && fault_ != nullptr)
    fault_->restore_state(r);
  else
    // Either no hook is installed now, or a rollback restore deliberately
    // leaves the environment un-rewound: drop the serialized hook state.
    r.skip_to_section_end();
  r.leave_section();

  // A restored run arms its own capture triggers; never fire for points the
  // restored clock has already passed.
  std::vector<Cycle> targets = std::move(ckpt_targets_);
  set_checkpoint_targets(std::move(targets));
  set_checkpoint_interval(ckpt_interval_);
}

StatSet Gpu::collect_stats() const {
  StatSet all = stats_;
  all.merge(mem_.stats());
  for (const auto& sm : sms_) all.merge(sm->snapshot_stats());
  all.set("cycles", cycle_);
  return all;
}

}  // namespace higpu::sim
