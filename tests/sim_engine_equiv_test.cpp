// Dual-engine equivalence: the event-driven engine (active-SM set +
// quiescent-cycle fast-forward) must be bit-identical to the dense tick
// loop — same final memory state, same per-kernel cycle counts, same block
// records and same aggregated statistics — across every workload, policy,
// stream mix and fault scenario. This is the guard that lets the event
// engine be the default.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/exec.h"
#include "fault/injector.h"
#include "memsys/global_store.h"
#include "sched/policies.h"
#include "sim/gpu.h"
#include "tests/test_kernels.h"
#include "exp/campaign.h"
#include "workloads/workload.h"

namespace higpu {
namespace {

void expect_same_stats(const StatSet& dense, const StatSet& event,
                       const std::string& what) {
  const auto de = dense.entries();
  const auto ee = event.entries();
  ASSERT_EQ(de.size(), ee.size()) << what << ": stat-set shape differs";
  for (size_t i = 0; i < de.size(); ++i) {
    EXPECT_EQ(de[i].first, ee[i].first) << what << ": stat name differs";
    EXPECT_EQ(de[i].second, ee[i].second)
        << what << ": counter '" << de[i].first << "' differs";
  }
}

void expect_same_records(const std::vector<sim::BlockRecord>& d,
                         const std::vector<sim::BlockRecord>& e,
                         const std::string& what) {
  ASSERT_EQ(d.size(), e.size()) << what << ": block-record count differs";
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].launch_id, e[i].launch_id) << what << " record " << i;
    EXPECT_EQ(d[i].block_linear, e[i].block_linear) << what << " record " << i;
    EXPECT_EQ(d[i].sm, e[i].sm) << what << " record " << i;
    EXPECT_EQ(d[i].intended_sm, e[i].intended_sm) << what << " record " << i;
    EXPECT_EQ(d[i].dispatch_cycle, e[i].dispatch_cycle) << what << " record " << i;
    EXPECT_EQ(d[i].end_cycle, e[i].end_cycle) << what << " record " << i;
  }
}

}  // namespace
}  // namespace higpu

namespace higpu::sim {
namespace {

using testing::make_launch;
using testing::make_spin_kernel;
using testing::make_store_kernel;

GpuParams engine_params(SimEngine e) {
  GpuParams p;
  p.engine = e;
  return p;
}

// ---- GPU-level equivalence over controlled kernel mixes --------------------

/// A load-reduce kernel: each thread gathers `reps` strided words from `in`
/// and accumulates them into out[gid]. Memory-bound: warps spend most cycles
/// stalled on DRAM responses, the event engine's best case.
isa::ProgramPtr make_gather_kernel(u32 reps, const std::string& name = "gather") {
  using namespace isa;
  KernelBuilder kb(name);
  Reg in = kb.reg(), out = kb.reg(), n = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(out, 1);
  kb.ldp(n, 2);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);

  Reg acc = kb.reg(), k = kb.reg(), addr = kb.reg(), v = kb.reg();
  kb.movi(acc, 0);
  kb.movi(k, 0);
  Label loop = kb.label(), end = kb.label();
  kb.bind(loop);
  PredReg fin = kb.pred();
  kb.setp(fin, CmpOp::kGe, DType::kI32, k, imm(static_cast<i32>(reps)));
  kb.bra(end).guard_if(fin);
  // Stride by 97 lines so consecutive iterations miss in L1/L2.
  kb.imad(addr, k, imm(97 * 128), gid);
  kb.and_(addr, addr, imm(0x3FFFF));
  kb.imad(addr, addr, imm(4), in);
  kb.ldg(v, addr);
  kb.iadd(acc, acc, v);
  kb.iadd(k, k, imm(1));
  kb.bra(loop);
  kb.bind(end);
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

struct RunArtifacts {
  Cycle final_cycle = 0;
  std::vector<Cycle> kernel_cycles;
  StatSet stats;
  std::vector<BlockRecord> records;
  std::vector<u32> memory;
};

/// Run one multi-kernel, multi-stream scenario under `engine` and capture
/// everything the equivalence contract covers.
RunArtifacts run_scenario(SimEngine engine, sched::Policy policy) {
  GpuParams params = engine_params(engine);
  memsys::GlobalStore store;
  Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(sched::make_scheduler(policy));

  const memsys::DevPtr in = store.alloc(256 * 1024);
  for (u32 i = 0; i < 64 * 1024; ++i) store.write32(in + i * 4, i * 2654435761u);

  struct Shape {
    u32 threads, block, stream;
  };
  const Shape shapes[] = {
      {1024, 128, 0}, {768, 64, 1}, {2048, 256, 0}, {512, 32, 2}, {1536, 128, 1}};
  std::vector<memsys::DevPtr> outs;
  std::vector<u32> ids;
  std::vector<u32> out_words;
  u32 k = 0;
  for (const Shape& s : shapes) {
    const memsys::DevPtr out = store.alloc(s.threads * 4);
    KernelLaunch l =
        (k % 2 == 0)
            ? make_launch(make_gather_kernel(6 + k, "g" + std::to_string(k)),
                          s.threads, s.block, {in, out, s.threads})
            : make_launch(make_spin_kernel(20 + 7 * k, "s" + std::to_string(k)),
                          s.threads, s.block, {out, s.threads});
    l.stream = s.stream;
    if (policy == sched::Policy::kSrrs) l.hints.start_sm = k % 6;
    if (policy == sched::Policy::kHalf)
      l.hints.sm_mask = (k % 2) ? sched::sm_range_mask(3, 6) : sched::sm_range_mask(0, 3);
    ids.push_back(gpu.launch(std::move(l)));
    outs.push_back(out);
    out_words.push_back(s.threads);
    ++k;
  }

  RunArtifacts a;
  a.final_cycle = gpu.run_until_idle(200'000'000);
  for (u32 id : ids) a.kernel_cycles.push_back(gpu.kernel_cycles(id));
  a.stats = gpu.collect_stats();
  a.records = gpu.block_records();
  for (size_t i = 0; i < outs.size(); ++i)
    for (u32 w = 0; w < out_words[i]; ++w)
      a.memory.push_back(store.read32(outs[i] + w * 4));
  return a;
}

class EngineEquivalence : public ::testing::TestWithParam<sched::Policy> {};

TEST_P(EngineEquivalence, MultiKernelScenarioBitIdentical) {
  const RunArtifacts dense = run_scenario(SimEngine::kDense, GetParam());
  const RunArtifacts event = run_scenario(SimEngine::kEvent, GetParam());

  EXPECT_EQ(dense.final_cycle, event.final_cycle);
  EXPECT_EQ(dense.kernel_cycles, event.kernel_cycles);
  expect_same_stats(dense.stats, event.stats, "scenario");
  expect_same_records(dense.records, event.records, "scenario");
  EXPECT_EQ(dense.memory, event.memory) << "final memory state differs";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EngineEquivalence,
                         ::testing::Values(sched::Policy::kDefault,
                                           sched::Policy::kHalf,
                                           sched::Policy::kSrrs),
                         [](const auto& info) {
                           return std::string(sched::policy_name(info.param));
                         });

// ---- Fault-injection equivalence -------------------------------------------
// Injected-fault cycles are wake events; a fault window targeted at cycles
// deep inside a quiescent region must corrupt exactly what it corrupts under
// the dense loop.

struct FaultArtifacts {
  Cycle final_cycle = 0;
  u64 corruptions = 0;
  u64 diverted = 0;
  StatSet stats;
  std::vector<u32> memory;
};

FaultArtifacts run_faulted(SimEngine engine, int scenario) {
  GpuParams params = engine_params(engine);
  memsys::GlobalStore store;
  Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::SrrsKernelScheduler>());
  fault::FaultInjector inj;
  switch (scenario) {
    case 0: inj.arm_droop(4000, 300, 5); break;
    case 1: inj.arm_transient_sm(2, 3500, 2000, 12); break;
    case 2: inj.arm_permanent_sm(4, 5000, 0); break;
    case 3: inj.arm_scheduler_fault(3100, 2); break;
    default: break;
  }
  gpu.set_fault_hook(&inj);

  const memsys::DevPtr in = store.alloc(256 * 1024);
  for (u32 i = 0; i < 64 * 1024; ++i) store.write32(in + i * 4, i ^ 0x9E3779B9u);
  const u32 threads = 1024;
  const memsys::DevPtr out = store.alloc(threads * 4);
  gpu.launch(make_launch(make_gather_kernel(8), threads, 128, {in, out, threads}));

  FaultArtifacts a;
  a.final_cycle = gpu.run_until_idle(100'000'000);
  a.corruptions = inj.corruptions();
  a.diverted = inj.diverted_blocks();
  a.stats = gpu.collect_stats();
  for (u32 w = 0; w < threads; ++w) a.memory.push_back(store.read32(out + w * 4));
  return a;
}

TEST(EngineEquivalenceFaults, InjectedFaultCyclesNeverSkipped) {
  for (int scenario = 0; scenario < 4; ++scenario) {
    SCOPED_TRACE("fault scenario " + std::to_string(scenario));
    const FaultArtifacts dense = run_faulted(SimEngine::kDense, scenario);
    const FaultArtifacts event = run_faulted(SimEngine::kEvent, scenario);
    EXPECT_EQ(dense.final_cycle, event.final_cycle);
    EXPECT_EQ(dense.corruptions, event.corruptions);
    EXPECT_EQ(dense.diverted, event.diverted);
    expect_same_stats(dense.stats, event.stats, "faulted run");
    EXPECT_EQ(dense.memory, event.memory);
  }
}

// ---- Timeout equivalence ---------------------------------------------------

TEST(EngineEquivalenceTimeout, TimeoutCycleMatchesDense) {
  // launch_gap_cycles (3000) exceeds the budget: both engines must throw
  // with the clock parked exactly at the budget limit.
  for (SimEngine e : {SimEngine::kDense, SimEngine::kEvent}) {
    GpuParams params = engine_params(e);
    memsys::GlobalStore store;
    Gpu gpu(params, &store);
    gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
    const memsys::DevPtr out = store.alloc(4096);
    gpu.launch(make_launch(make_store_kernel(), 256, 128, {out, 256}));
    EXPECT_THROW(gpu.run_until_idle(1000), SimTimeout);
    EXPECT_EQ(gpu.now(), 1000u);
  }
}

// ---- Mixed step()/run_until_idle() driving ---------------------------------

TEST(EngineEquivalenceMixed, DenseSteppingComposesWithEventRuns) {
  auto run = [](SimEngine e, u32 presteps) {
    GpuParams params = engine_params(e);
    memsys::GlobalStore store;
    Gpu gpu(params, &store);
    gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
    const u32 threads = 512;
    const memsys::DevPtr out = store.alloc(threads * 4);
    gpu.launch(make_launch(make_spin_kernel(40), threads, 64, {out, threads}));
    for (u32 i = 0; i < presteps; ++i) gpu.step();
    gpu.run_until_idle(50'000'000);
    return std::make_pair(gpu.now(), gpu.collect_stats());
  };
  // Interleave manual dense stepping (including past the arrival cycle and
  // past kernel completion) with the event engine; totals must match a run
  // that did the same stepping and drained densely.
  for (u32 presteps : {0u, 1u, 2999u, 3001u, 3600u, 4000u}) {
    SCOPED_TRACE("presteps=" + std::to_string(presteps));
    const auto dense = run(SimEngine::kDense, presteps);
    const auto mixed = run(SimEngine::kEvent, presteps);
    EXPECT_EQ(dense.first, mixed.first);
    expect_same_stats(dense.second, mixed.second, "mixed driving");
  }
}

}  // namespace
}  // namespace higpu::sim

// ---- Workload-level equivalence (full 5-step redundant flow) ---------------

namespace higpu::workloads {
namespace {

struct WorkloadArtifacts {
  Cycle kernel_cycles = 0;
  NanoSec elapsed_ns = 0;
  bool verified = false;
  bool matched = false;
  StatSet stats;
  std::vector<sim::BlockRecord> records;
};

WorkloadArtifacts run_workload_with(const std::string& name, sim::SimEngine engine,
                                    sched::Policy policy,
                                    const core::RedundancySpec& redundancy) {
  exp::ScenarioSpec spec;
  spec.workload = name;
  spec.scale = Scale::kTest;
  spec.seed = 2019;
  spec.gpu.engine = engine;
  spec.policy = policy;
  spec.redundancy = redundancy;

  WorkloadArtifacts a;
  const exp::ScenarioResult r = exp::run_scenario(
      spec, 0, [&](runtime::Device& dev, Workload&, core::ExecSession&) {
        a.records = dev.gpu().block_records();
      });
  EXPECT_TRUE(r.ok) << r.error;
  a.kernel_cycles = r.kernel_cycles;
  a.elapsed_ns = r.elapsed_ns;
  a.verified = r.verified;
  a.matched = r.dcls_match;
  a.stats = r.stats;
  return a;
}

class WorkloadEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadEquivalence, EventEngineBitIdenticalToDense) {
  const auto dense =
      run_workload_with(GetParam(), sim::SimEngine::kDense,
                        sched::Policy::kSrrs, core::RedundancySpec::dcls());
  const auto event =
      run_workload_with(GetParam(), sim::SimEngine::kEvent,
                        sched::Policy::kSrrs, core::RedundancySpec::dcls());
  EXPECT_TRUE(dense.verified);
  EXPECT_TRUE(event.verified);
  EXPECT_TRUE(dense.matched);
  EXPECT_TRUE(event.matched);
  EXPECT_EQ(dense.kernel_cycles, event.kernel_cycles) << "cycle counts differ";
  EXPECT_EQ(dense.elapsed_ns, event.elapsed_ns) << "wall-clock model differs";
  expect_same_stats(dense.stats, event.stats, GetParam());
  expect_same_records(dense.records, event.records, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadEquivalence,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '+' || c == '-') c = '_';
                           return name;
                         });

// Three streams of three replica kernels exercise engine wake/dispatch
// paths the DCLS pair never reaches; the engines must still agree bit-for-
// bit at N = 3 with majority voting.
class NmrEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(NmrEquivalence, EventEngineBitIdenticalToDenseAtTmr) {
  const auto dense =
      run_workload_with(GetParam(), sim::SimEngine::kDense,
                        sched::Policy::kSrrs, core::RedundancySpec::tmr());
  const auto event =
      run_workload_with(GetParam(), sim::SimEngine::kEvent,
                        sched::Policy::kSrrs, core::RedundancySpec::tmr());
  EXPECT_TRUE(dense.verified);
  EXPECT_TRUE(event.verified);
  EXPECT_TRUE(dense.matched);
  EXPECT_TRUE(event.matched);
  EXPECT_EQ(dense.kernel_cycles, event.kernel_cycles) << "cycle counts differ";
  EXPECT_EQ(dense.elapsed_ns, event.elapsed_ns) << "wall-clock model differs";
  expect_same_stats(dense.stats, event.stats, GetParam());
  expect_same_records(dense.records, event.records, GetParam());
}

INSTANTIATE_TEST_SUITE_P(TmrWorkloads, NmrEquivalence,
                         ::testing::Values("hotspot", "bfs", "lud"));

}  // namespace
}  // namespace higpu::workloads
