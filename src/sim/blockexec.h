// Block-compiled vectorized execution engine.
//
// At kernel launch the program's `isa::cfg` basic blocks are lowered into a
// pre-decoded *superinstruction trace*: one SuperOp per pc with operands
// resolved to register-file row offsets, immediates folded into splat values,
// the opcode-classification predicates (unit class, writeback kind, datapath
// membership) baked into flags, and the scoreboard-check sequence precomputed
// as an ordered hazard plan. Consecutive superops inside a basic block form
// *fused runs* — contiguous pre-decoded spans the issue stage walks without
// ever touching the original `isa::Instruction` encoding.
//
// The trace changes *dispatch cost only*. Issue still happens one
// instruction per warp scheduler per cycle with the exact scoreboard,
// structural-hazard, guard-mask and writeback-latency semantics of the
// interpreter, so cycle counts, stall classification, fault-injection
// windows and statistics stay bit-identical (pinned by the dual-engine and
// golden-cycle suites). Memory, control-flow and barrier instructions are
// not lowered — they exit the block path and fall back to the per-
// instruction interpreter, leaving divergence handling, MSHR backpressure
// and barrier accounting untouched.
//
// The per-lane math of a superop executes over the warp's struct-of-arrays
// register file (one contiguous 32-lane row per register, see sim/warp.h) as
// width-32 lane kernels written so the compiler can autovectorize them into
// 4/8-lane SIMD. All lane kernels are bit-exact re-expressions of
// sim::eval_alu — enforced per-op by tests/blockexec_test.cpp and across
// optimization levels by the -O0 vs -O3 reproducibility CI job.
//
// Compiled traces are cached process-wide, keyed by the program identity:
// every SM, engine, redundancy copy and campaign worker thread executing the
// same `isa::KernelProgram` shares one immutable trace. Traces are derived
// state — never serialized — and are rebuilt on snapshot restore.
#pragma once

#include <memory>

#include "common/types.h"
#include "isa/instruction.h"
#include "isa/program.h"

namespace higpu::sim::blockexec {

/// Lowered execution form of one instruction.
enum class SopKind : u8 {
  kFallback,  // not lowered: interpreter path (memory/control/barrier/nop)
  kAlu,       // SP/SFU data op through a lane-vector kernel
  kSetp,      // predicate compare (optional .and input)
  kSelp,      // predicate select
  kS2r,       // special-register read
  kLdp,       // kernel-parameter broadcast
};

/// Lane-kernel selector for SopKind::kAlu. Hot integer/float ops get a
/// dedicated width-32 kernel; long-latency SFU/libm ops share the generic
/// eval_alu loop (their cost is the math, not the dispatch).
enum class VKind : u8 {
  kMov, kIadd, kIsub, kImul, kImad, kImin, kImax,
  kAnd, kOr, kXor, kNot, kShl, kShr, kSra,
  kFadd, kFsub, kFmul, kFfma, kFmin, kFmax, kFabs, kFneg,
  kI2f, kF2i,
  kGeneric,
};

/// One pre-decoded source operand: a register row index or a folded
/// immediate. Absent operands fold to immediate 0, mirroring the
/// interpreter's `present() ? value : 0`.
struct SrcPlan {
  u16 reg = 0;
  bool is_imm = true;
  u32 imm = 0;
};

/// One scoreboard check: register (or predicate) index + file.
struct HazPlan {
  u16 reg = 0;
  bool is_pred = false;
};

/// A pre-decoded superinstruction. Everything the issue stage derives from
/// an `isa::Instruction` per dynamic execution — operand routing, unit
/// class, writeback kind, hazard sequence — resolved once at compile time.
struct SuperOp {
  SopKind kind = SopKind::kFallback;
  VKind vkind = VKind::kGeneric;
  isa::Op op = isa::Op::kNop;  // original opcode (generic kernel, fault path)

  // Flags folded from the isa:: classification predicates.
  bool is_sfu = false;
  bool is_datapath = false;
  bool writes_gpr = false;
  bool writes_pred = false;

  // Guard predicate.
  i16 guard = isa::kNoPred;
  bool guard_neg = false;

  u16 dst = 0;  // GPR row (kAlu/kSelp/kS2r/kLdp) or predicate row (kSetp)
  SrcPlan a, b, c;

  // kSetp / kSelp extras.
  isa::CmpOp cmp = isa::CmpOp::kEq;
  isa::DType dtype = isa::DType::kI32;
  i16 pred_src = isa::kNoPred;

  // kS2r / kLdp extras.
  isa::SReg sreg = isa::SReg::kTidX;
  u32 param_idx = 0;

  /// Ordered scoreboard plan, exactly the interpreter's check sequence:
  /// guard, pred_src, sources in operand order, then the destination.
  /// The order is behavioural: a stall records the *first* hazarded
  /// register's release cycle as the warp's wake event.
  HazPlan hazards[6];
  u8 n_hazards = 0;
};

/// A compiled program trace: one SuperOp per pc, plus fused-run and
/// coverage metadata. Immutable after construction; safely shared across
/// threads. Holds a reference to its program so the cache key (the program
/// address) cannot be reused while the trace is alive.
class CompiledTrace {
 public:
  explicit CompiledTrace(isa::ProgramPtr prog);

  const SuperOp& at(isa::Pc pc) const { return sops_[pc]; }
  u32 size() const { return static_cast<u32>(sops_.size()); }

  /// Basic blocks in the program's CFG (the compilation unit).
  u32 num_blocks() const { return num_blocks_; }
  /// Static instructions lowered to superops (non-fallback entries).
  u32 num_superops() const { return num_superops_; }
  /// Maximal spans of consecutive superops within one basic block.
  u32 num_fused_runs() const { return num_fused_runs_; }
  /// Static superop coverage in percent (rounded down).
  u32 static_coverage_pct() const {
    return size() ? num_superops_ * 100 / size() : 0;
  }

  const isa::KernelProgram& program() const { return *prog_; }

 private:
  isa::ProgramPtr prog_;
  std::vector<SuperOp> sops_;
  u32 num_blocks_ = 0;
  u32 num_superops_ = 0;
  u32 num_fused_runs_ = 0;
};

using TracePtr = std::shared_ptr<const CompiledTrace>;

/// Compiled trace for `prog`, served from the process-wide cache (compiles
/// on first use). Thread-safe; concurrent campaign workers launching the
/// same program share one trace.
TracePtr trace_for(const isa::ProgramPtr& prog);

/// Live entries in the process-wide trace cache (test introspection).
u64 trace_cache_live();

/// Lane-kernel selector an ALU opcode lowers to.
VKind vkind_for(isa::Op op);

/// Execute one width-32 lane kernel: for every lane in `mask`,
/// d[lane] = op(a[lane], b[lane], c[lane]). Bit-identical to calling
/// sim::eval_alu per lane (the golden-bit contract; see blockexec_test).
/// `op` is consulted only by the VKind::kGeneric kernel.
void run_vkernel(VKind k, isa::Op op, u32* d, const u32* a, const u32* b,
                 const u32* c, u32 mask);

}  // namespace higpu::sim::blockexec
