// Shared helpers for simulator-level tests: tiny kernels of controllable
// shape and a convenience harness around Gpu.
#pragma once

#include "isa/builder.h"
#include "sim/gpu.h"

namespace higpu::testing {

/// A kernel that spins `iters` FFMA iterations per thread, then writes one
/// word to out[gid]. Duration scales ~linearly with `iters`.
inline isa::ProgramPtr make_spin_kernel(u32 iters, const std::string& name = "spin") {
  using namespace isa;
  KernelBuilder kb(name);
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);

  Reg acc = kb.reg(), k = kb.reg();
  kb.movf(acc, 1.0f);
  kb.movi(k, 0);
  Label loop = kb.label(), end = kb.label();
  kb.bind(loop);
  PredReg fin = kb.pred();
  kb.setp(fin, CmpOp::kGe, DType::kI32, k, imm(static_cast<i32>(iters)));
  kb.bra(end).guard_if(fin);
  kb.ffma(acc, acc, fimm(1.000001f), fimm(0.5f));
  kb.iadd(k, k, imm(1));
  kb.bra(loop);
  kb.bind(end);
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

/// A trivial one-instruction-per-thread kernel: out[gid] = gid.
inline isa::ProgramPtr make_store_kernel(const std::string& name = "store_gid") {
  using namespace isa;
  KernelBuilder kb(name);
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, gid);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

/// Build a launch descriptor for `threads` total threads in blocks of
/// `block_size`.
inline sim::KernelLaunch make_launch(isa::ProgramPtr prog, u32 threads,
                                     u32 block_size, std::vector<u32> params) {
  sim::KernelLaunch l;
  l.program = std::move(prog);
  l.grid = {higpu::ceil_div(threads, block_size), 1, 1};
  l.block = {block_size, 1, 1};
  l.params = std::move(params);
  return l;
}

}  // namespace higpu::testing
