// Shared harness for the paper-reproduction benches: run one workload under
// one policy/redundancy configuration and collect the metrics the figures
// report.
#pragma once

#include <string>

#include "core/diversity.h"
#include "core/redundant.h"
#include "sched/policies.h"
#include "workloads/workload.h"

namespace higpu::bench {

struct RunResult {
  /// GPU cycles consumed by kernel execution (the Fig. 4 metric).
  Cycle kernel_cycles = 0;
  /// End-to-end wall-clock on the modelled platform (the Fig. 5 metric).
  NanoSec elapsed_ns = 0;
  /// Output matched the CPU reference.
  bool verified = false;
  /// Redundant copies compared equal (vacuously true in baseline mode).
  bool outputs_matched = false;
  /// Block-level diversity across all redundant pairs.
  core::DiversityReport diversity;
};

inline RunResult run_workload(const std::string& name, workloads::Scale scale,
                              sched::Policy policy, bool redundant,
                              u64 seed = 2019,
                              const sim::GpuParams& gpu_params = {}) {
  workloads::WorkloadPtr w = workloads::make(name);
  w->setup(scale, seed);

  runtime::Device dev(gpu_params);
  core::RedundantSession::Config cfg;
  cfg.policy = policy;
  cfg.redundant = redundant;
  core::RedundantSession session(dev, cfg);
  w->run(session);

  RunResult r;
  r.kernel_cycles = session.kernel_cycles();
  r.elapsed_ns = dev.elapsed_ns();
  r.verified = w->verify();
  r.outputs_matched = session.all_outputs_matched();
  if (redundant)
    r.diversity = core::analyze_block_diversity(dev.gpu().block_records(),
                                                session.pairs());
  return r;
}

inline double ms(NanoSec ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace higpu::bench
