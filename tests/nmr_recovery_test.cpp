// N-modular redundancy (TMR extension, paper footnote 1) and the
// fail-operational recovery manager.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/nmr.h"
#include "core/recovery.h"
#include "fault/injector.h"
#include "tests/test_kernels.h"

namespace higpu::core {
namespace {

using testing::make_spin_kernel;
using testing::make_store_kernel;

constexpr u32 kN = 12 * 64;

NPtr run_nmr(NmrSession& s, isa::ProgramPtr prog) {
  NPtr out = s.alloc(kN * 4);
  std::vector<u32> zeros(kN, 0);
  s.h2d(out, zeros.data(), kN * 4);
  s.launch(std::move(prog), sim::Dim3{12, 1, 1}, sim::Dim3{64, 1, 1},
           {out, kN});
  s.sync();
  return out;
}

TEST(Nmr, TripleCopiesAllAgreeWhenFaultFree) {
  for (sched::Policy p : {sched::Policy::kDefault, sched::Policy::kHalf,
                          sched::Policy::kSrrs}) {
    runtime::Device dev;
    NmrSession s(dev, {p, 3});
    NPtr out = run_nmr(s, make_spin_kernel(30));
    const VoteResult v = s.vote(out, kN * 4);
    EXPECT_TRUE(v.unanimous) << sched::policy_name(p);
    EXPECT_TRUE(v.majority);
    EXPECT_FALSE(v.detected());
    EXPECT_EQ(v.faulty_copy, -1);
  }
}

TEST(Nmr, LaunchesOneKernelPerCopy) {
  runtime::Device dev;
  NmrSession s(dev, {sched::Policy::kSrrs, 3});
  run_nmr(s, make_store_kernel());
  ASSERT_EQ(s.groups().size(), 1u);
  EXPECT_EQ(s.groups()[0].size(), 3u);
  // Distinct streams -> distinct launch ids and distinct SRRS start SMs.
  std::set<u32> starts;
  for (u32 id : s.groups()[0])
    starts.insert(dev.gpu().launch_of(id).hints.start_sm);
  EXPECT_EQ(starts.size(), 3u);
}

TEST(Nmr, HalfPartitionsAreDisjointForThreeCopies) {
  runtime::Device dev;
  NmrSession s(dev, {sched::Policy::kHalf, 3});
  run_nmr(s, make_spin_kernel(50));
  std::map<u32, std::set<u32>> sms;
  for (const sim::BlockRecord& r : dev.gpu().block_records())
    sms[r.launch_id].insert(r.sm);
  ASSERT_EQ(sms.size(), 3u);
  std::set<u32> all;
  u64 total = 0;
  for (const auto& [id, set] : sms) {
    total += set.size();
    all.insert(set.begin(), set.end());
  }
  EXPECT_EQ(all.size(), total);  // pairwise disjoint
}

TEST(Nmr, MajorityOutvotesSingleFaultyCopy) {
  runtime::Device dev;
  NmrSession s(dev, {sched::Policy::kSrrs, 3});
  NPtr out = run_nmr(s, make_store_kernel());
  // Corrupt one word of copy 2 directly.
  dev.gpu().store().write32(out.copy[2] + 16, 0xDEAD);
  std::vector<u32> voted;
  const VoteResult v = s.vote(out, kN * 4, &voted);
  EXPECT_TRUE(v.detected());
  EXPECT_TRUE(v.majority);  // fail-operational: majority still intact
  EXPECT_FALSE(v.unanimous);
  EXPECT_EQ(v.dissenting_words, 1u);
  EXPECT_EQ(v.tied_words, 0u);
  EXPECT_EQ(v.faulty_copy, 2);
  EXPECT_EQ(voted[4], 4u);  // corrected value (out[gid] = gid)
}

TEST(Nmr, TieWithTwoCopiesIsDetectedNotCorrected) {
  runtime::Device dev;
  NmrSession s(dev, {sched::Policy::kSrrs, 2});
  NPtr out = run_nmr(s, make_store_kernel());
  dev.gpu().store().write32(out.copy[1] + 16, 0xBAD);
  const VoteResult v = s.vote(out, kN * 4);
  EXPECT_TRUE(v.detected());
  EXPECT_FALSE(v.majority);  // 1 vs 1: no strict majority
  EXPECT_EQ(v.tied_words, 1u);
}

TEST(Nmr, TmrSurvivesPermanentSmFaultUnderSrrs) {
  // With three SRRS copies and one broken SM, at most one copy of any
  // logical block is corrupted: the majority always wins.
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(1, 0, 20);
  dev.gpu().set_fault_hook(&fi);
  NmrSession s(dev, {sched::Policy::kSrrs, 3});
  NPtr out = run_nmr(s, make_spin_kernel(40));
  std::vector<u32> voted;
  const VoteResult v = s.vote(out, kN * 4, &voted);
  EXPECT_TRUE(v.detected());
  EXPECT_TRUE(v.majority) << "TMR must remain fail-operational";
  EXPECT_EQ(v.tied_words, 0u);

  // The voted result equals a fault-free execution.
  runtime::Device clean_dev;
  NmrSession clean(clean_dev, {sched::Policy::kSrrs, 1 + 1});
  NPtr ref = run_nmr(clean, make_spin_kernel(40));
  std::vector<u32> golden(kN);
  clean_dev.gpu().store().read_block(golden.data(), ref.copy[0], kN * 4);
  EXPECT_EQ(voted, golden);
}

TEST(Recovery, NoRetryWhenFaultFree) {
  runtime::Device dev;
  RecoveryManager mgr(dev, {sched::Policy::kSrrs, 2, 100'000'000});
  const RecoveryReport rep = mgr.run([](RedundantSession& s) {
    const u32 n = 256;
    DualPtr out = s.alloc(n * 4);
    s.launch(make_store_kernel(), sim::Dim3{2, 1, 1}, sim::Dim3{128, 1, 1},
             {out, n});
    s.sync();
    s.compare(out, n * 4);
  });
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.attempts, 1u);
  EXPECT_TRUE(rep.budget.met());
}

TEST(Recovery, TransientFaultRecoveredByReexecution) {
  runtime::Device dev;
  fault::FaultInjector fi;
  // Single-SM transient hitting only the first attempt's execution window.
  fi.arm_transient_sm(0, 4000, 4000, 20);
  dev.gpu().set_fault_hook(&fi);

  RecoveryManager mgr(dev, {sched::Policy::kSrrs, 3, 1'000'000'000});
  const RecoveryReport rep = mgr.run([](RedundantSession& s) {
    const u32 n = 12 * 64;
    DualPtr out = s.alloc(n * 4);
    s.launch(make_spin_kernel(60), sim::Dim3{12, 1, 1}, sim::Dim3{64, 1, 1},
             {out, n});
    s.sync();
    s.compare(out, n * 4);
  });
  EXPECT_TRUE(rep.success);
  EXPECT_GT(rep.attempts, 1u) << "first attempt must have been corrupted";
  EXPECT_TRUE(rep.budget.met());
}

TEST(Recovery, PermanentFaultExhaustsRetries) {
  runtime::Device dev;
  fault::FaultInjector fi;
  fi.arm_permanent_sm(2, 0, 20);
  dev.gpu().set_fault_hook(&fi);

  RecoveryManager mgr(dev, {sched::Policy::kSrrs, 2, 100'000'000});
  const RecoveryReport rep = mgr.run([](RedundantSession& s) {
    const u32 n = 12 * 64;
    DualPtr out = s.alloc(n * 4);
    s.launch(make_spin_kernel(60), sim::Dim3{12, 1, 1}, sim::Dim3{64, 1, 1},
             {out, n});
    s.sync();
    s.compare(out, n * 4);
  });
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.attempts, 3u);  // initial + 2 retries
}

}  // namespace
}  // namespace higpu::core
