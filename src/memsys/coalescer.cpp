#include "memsys/coalescer.h"

#include <algorithm>

namespace higpu::memsys {

std::vector<u64> coalesce(const std::vector<u64>& byte_addrs, u32 line_bytes) {
  std::vector<u64> lines;
  coalesce_into(byte_addrs, line_bytes, lines);
  return lines;
}

void coalesce_into(const std::vector<u64>& byte_addrs, u32 line_bytes,
                   std::vector<u64>& lines) {
  lines.clear();
  for (u64 a : byte_addrs) {
    const u64 line = a / line_bytes;
    if (std::find(lines.begin(), lines.end(), line) == lines.end())
      lines.push_back(line);
  }
}

u32 smem_conflict_degree(const std::vector<u64>& byte_addrs, u32 num_banks) {
  if (byte_addrs.empty()) return 1;
  // Count distinct words per bank.
  std::vector<u64> words;
  words.reserve(byte_addrs.size());
  for (u64 a : byte_addrs) {
    const u64 w = a / 4;
    if (std::find(words.begin(), words.end(), w) == words.end())
      words.push_back(w);
  }
  std::vector<u32> per_bank(num_banks, 0);
  u32 worst = 1;
  for (u64 w : words) {
    const u32 bank = static_cast<u32>(w % num_banks);
    worst = std::max(worst, ++per_bank[bank]);
  }
  return worst;
}

}  // namespace higpu::memsys
