// Distributed campaign throughput: scenarios/sec of dist::run_distributed
// vs worker-process count, against the in-process CampaignRunner at the
// same parallelism, on a campaign mixing fault-free singletons with
// same_but_fault groups (so base snapshots actually ship over the wire).
// Also reports the snapshot-shipping overhead per shipped unit. Emits
// BENCH_dist.json so process-fleet scaling and wire overhead are tracked
// from PR to PR. Determinism is asserted on the way: every worker count
// must reproduce the jobs=1 results bit-for-bit.
//
//   $ ./bench_dist_throughput [--scale=test|bench] [--workers=1,2,4]
//                             [--out=BENCH_dist.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "dist/coordinator.h"
#include "exp/campaign.h"

namespace {

using namespace higpu;

std::vector<u32> parse_workers_list(const std::string& csv) {
  std::vector<u32> workers;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string tok = csv.substr(pos, comma - pos);
    if (tok.empty() || tok.size() > 9 ||
        tok.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr,
                   "bad --workers value '%s': expected a comma-separated list "
                   "of non-negative integers, e.g. --workers=1,2,4\n",
                   csv.c_str());
      std::exit(2);
    }
    workers.push_back(static_cast<u32>(std::stoul(tok)));
    pos = comma + 1;
  }
  return workers;
}

/// Fig. 4 subset as fault-free singletons, plus one snapshot-fast-forward
/// group per workload (clean + two droop windows) so every run ships base
/// snapshots to the fleet.
exp::ScenarioSet bench_set(workloads::Scale scale) {
  exp::ScenarioSpec proto;
  proto.scale = scale;
  exp::ScenarioSet singles =
      exp::ScenarioSet::for_workloads(workloads::fig4_names(), proto);
  exp::ScenarioSet groups =
      exp::ScenarioSet::for_workloads(workloads::fig4_names(), proto)
          .sweep_faults({exp::FaultPlan::none(),
                         exp::FaultPlan::droop(2000, 50, 2),
                         exp::FaultPlan::droop(4000, 50, 3)});
  return singles.append(groups);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::Scale scale = workloads::Scale::kTest;
  std::vector<u32> workers_list = {1, 2, 4};
  std::string out_path = "BENCH_dist.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      try {
        scale = workloads::parse_scale(argv[i] + 8);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0)
      workers_list = parse_workers_list(argv[i] + 10);
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      out_path = argv[i] + 6;
  }

  const exp::ScenarioSet set = bench_set(scale);
  std::printf("campaign: %zu scenarios (fig4 singletons + fault groups, %s "
              "scale)\n\n",
              set.size(), workloads::scale_name(scale));

  // The determinism reference and in-process baseline.
  exp::CampaignRunner::Config ref_cfg;
  ref_cfg.jobs = 1;
  const exp::CampaignResult reference = exp::CampaignRunner(ref_cfg).run(set);
  std::printf("in-process jobs=1: %6.2f s  %7.2f scenarios/s\n",
              reference.wall_sec, reference.scenarios_per_sec());

  struct Sample {
    u32 workers = 0;
    double dist_wall_sec = 0;
    double dist_rate = 0;
    double inproc_wall_sec = 0;
    double inproc_rate = 0;
    u64 units_shipped = 0;
    u64 snapshot_bytes_shipped = 0;
    bool deterministic = true;
    bool all_passed = false;
  };
  std::vector<Sample> samples;

  bool ok = true;
  for (u32 workers : workers_list) {
    Sample s;
    s.workers = workers;

    dist::DistConfig dcfg;
    dcfg.workers = workers;
    const dist::DistReport rep = dist::run_distributed(set, dcfg);
    s.dist_wall_sec = rep.campaign.wall_sec;
    s.dist_rate = rep.campaign.scenarios_per_sec();
    s.units_shipped = rep.units_shipped;
    s.snapshot_bytes_shipped = rep.snapshot_bytes_shipped;
    s.all_passed = rep.campaign.all_passed();
    for (size_t i = 0; i < set.size(); ++i)
      s.deterministic = s.deterministic &&
                        rep.campaign.results[i].deterministic_fields_equal(
                            reference.results[i]);

    // The in-process comparison point at the same parallelism.
    exp::CampaignRunner::Config cfg;
    cfg.jobs = std::max<u32>(1, workers);
    const exp::CampaignResult inproc = exp::CampaignRunner(cfg).run(set);
    s.inproc_wall_sec = inproc.wall_sec;
    s.inproc_rate = inproc.scenarios_per_sec();

    ok = ok && s.all_passed && s.deterministic;
    std::printf(
        "workers=%-3u dist %6.2f s (%7.2f sc/s)  in-process %6.2f s "
        "(%7.2f sc/s)  %llu units, %.1f KiB snapshots (%.1f KiB/unit)  "
        "deterministic=%s  passed=%s\n",
        workers, s.dist_wall_sec, s.dist_rate, s.inproc_wall_sec,
        s.inproc_rate, static_cast<unsigned long long>(s.units_shipped),
        static_cast<double>(s.snapshot_bytes_shipped) / 1024.0,
        s.units_shipped
            ? static_cast<double>(s.snapshot_bytes_shipped) / 1024.0 /
                  static_cast<double>(s.units_shipped)
            : 0.0,
        s.deterministic ? "yes" : "NO", s.all_passed ? "yes" : "NO");
    samples.push_back(s);
  }

  JsonWriter jw;
  jw.begin_object();
  jw.field("bench", std::string("dist_throughput"));
  jw.field("metric", std::string("scenarios_per_sec"));
  jw.field("scenarios", static_cast<u64>(set.size()));
  jw.field("scale", std::string(workloads::scale_name(scale)));
  jw.field("inproc_jobs1_scenarios_per_sec", reference.scenarios_per_sec());
  jw.key("runs");
  jw.begin_array();
  for (const Sample& s : samples) {
    jw.begin_object();
    jw.field("workers", s.workers);
    jw.field("dist_wall_sec", s.dist_wall_sec);
    jw.field("dist_scenarios_per_sec", s.dist_rate);
    jw.field("inproc_wall_sec", s.inproc_wall_sec);
    jw.field("inproc_scenarios_per_sec", s.inproc_rate);
    jw.field("dist_vs_inproc",
             s.inproc_rate > 0 ? s.dist_rate / s.inproc_rate : 0.0);
    jw.field("units_shipped", s.units_shipped);
    jw.field("snapshot_bytes_shipped", s.snapshot_bytes_shipped);
    jw.field("snapshot_bytes_per_unit",
             s.units_shipped ? static_cast<double>(s.snapshot_bytes_shipped) /
                                   static_cast<double>(s.units_shipped)
                             : 0.0);
    jw.field("deterministic", s.deterministic);
    jw.field("all_passed", s.all_passed);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs((jw.str() + "\n").c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
