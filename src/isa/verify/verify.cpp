#include "isa/verify/verify.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/cfg.h"
#include "isa/opcode.h"

namespace higpu::isa::verify {

namespace {

// ---- Instruction shape metadata ---------------------------------------------

/// Number of meaningful src[] slots an opcode reads. Slots beyond this are
/// ignored by the executor and therefore by the analysis.
u32 op_nsrc(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kS2r:
    case Op::kBra:
    case Op::kExit:
    case Op::kBar:
      return 0;
    case Op::kMov:
    case Op::kLdp:
    case Op::kNot:
    case Op::kFabs:
    case Op::kFneg:
    case Op::kFsqrt:
    case Op::kFrcp:
    case Op::kFexp:
    case Op::kFlog:
    case Op::kFsin:
    case Op::kFcos:
    case Op::kI2f:
    case Op::kF2i:
    case Op::kLdg:
    case Op::kLds:
      return 1;
    case Op::kImad:
    case Op::kFfma:
      return 3;
    default:
      return 2;
  }
}

/// True for opcodes whose pred_src field is consumed unconditionally
/// (kSelp); kSetp consumes it only when != kNoPred (setp.and).
bool requires_pred_src(Op op) { return op == Op::kSelp; }

constexpr u8 kMaxSReg = static_cast<u8>(SReg::kWarpId);

std::string at_op(const Instruction& ins) {
  return std::string(op_name(ins.op));
}

// ---- Diagnostic emission -----------------------------------------------------

class Sink {
 public:
  explicit Sink(std::vector<Diag>* out) : out_(out) {}

  void emit(Severity sev, Pc pc, u32 block, Code code, std::string msg,
            std::string hint = "") {
    // One diagnostic per (pc, code, message): the same defect re-discovered
    // on another path or lane adds noise, not information — but distinct
    // defects sharing a code at one pc (say, two missing source operands)
    // must both surface, and the message carries that discriminator.
    for (const Diag& d : *out_)
      if (d.pc == pc && d.code == code && d.message == msg) return;
    out_->push_back(Diag{sev, pc, block, code, std::move(msg), std::move(hint)});
  }

  bool has_error() const {
    return std::any_of(out_->begin(), out_->end(), [](const Diag& d) {
      return d.severity == Severity::kError;
    });
  }

 private:
  std::vector<Diag>* out_;
};

// ---- Pass 1: structural ------------------------------------------------------

/// Validates operand shapes and pc-level control flow. Returns true when the
/// program satisfies every invariant isa::Cfg's constructor asserts (branch
/// targets in range, no fall-off-the-end, every block reaches exit), i.e.
/// when it is safe to build a Cfg for the later passes.
bool structural_pass(const KernelProgram& prog, Sink& sink) {
  const std::vector<Instruction>& code = prog.code();
  const u32 n = prog.size();
  if (n == 0) {
    sink.emit(Severity::kError, 0, kNoBlock, Code::kEmptyProgram,
              "program has no instructions",
              "a kernel must contain at least an exit instruction");
    return false;
  }

  bool cfg_safe = true;

  for (Pc pc = 0; pc < n; ++pc) {
    const Instruction& ins = code[pc];

    // Operand shapes.
    const u32 nsrc = op_nsrc(ins.op);
    for (u32 i = 0; i < nsrc; ++i) {
      if (!ins.src[i].present()) {
        sink.emit(Severity::kError, pc, kNoBlock, Code::kBadOperand,
                  at_op(ins) + " is missing source operand " +
                      std::to_string(i),
                  "expected " + std::to_string(nsrc) + " source operand(s)");
      } else if (ins.src[i].is_reg() && ins.src[i].reg == kNoReg) {
        sink.emit(Severity::kError, pc, kNoBlock, Code::kBadOperand,
                  at_op(ins) + " source operand " + std::to_string(i) +
                      " is an invalid register handle");
      }
    }
    if (writes_gpr(ins.op) && ins.dst == kNoReg)
      sink.emit(Severity::kError, pc, kNoBlock, Code::kBadOperand,
                at_op(ins) + " has no destination register");
    if (writes_pred(ins.op) && ins.dst == static_cast<u16>(kNoPred))
      sink.emit(Severity::kError, pc, kNoBlock, Code::kBadOperand,
                "setp has no destination predicate");
    if (requires_pred_src(ins.op) && ins.pred_src == kNoPred)
      sink.emit(Severity::kError, pc, kNoBlock, Code::kBadOperand,
                "selp has no predicate source",
                "selp selects between operands by a predicate register");
    if (ins.op == Op::kS2r && static_cast<u8>(ins.sreg) > kMaxSReg)
      sink.emit(Severity::kError, pc, kNoBlock, Code::kBadOperand,
                "s2r reads undefined special register #" +
                    std::to_string(static_cast<u32>(ins.sreg)));

    if (ins.op == Op::kLdp) {
      if (!ins.src[0].is_imm()) {
        sink.emit(Severity::kError, pc, kNoBlock, Code::kBadParamIndex,
                  "ldp parameter index must be an immediate",
                  "parameter loads are resolved at decode time; a register "
                  "index would make the access untraceable");
      } else if (ins.src[0].imm >= prog.num_params()) {
        sink.emit(Severity::kError, pc, kNoBlock, Code::kBadParamIndex,
                  "ldp reads parameter " + std::to_string(ins.src[0].imm) +
                      " but the program declares " +
                      std::to_string(prog.num_params()) + " parameter(s)");
      }
    }

    // Control flow.
    if (ins.op == Op::kBra && ins.target >= n) {
      sink.emit(Severity::kError, pc, kNoBlock, Code::kBadBranchTarget,
                "branch target " + std::to_string(ins.target) +
                    " is outside the program (size " + std::to_string(n) +
                    ")");
      cfg_safe = false;
    }
    if ((ins.op == Op::kExit || ins.op == Op::kBar) && ins.guard != kNoPred)
      sink.emit(Severity::kError, pc, kNoBlock, Code::kGuardedExitOrBar,
                at_op(ins) + " must not be guarded",
                "guard the branch leading here instead; guarded exit/bar "
                "break the SIMT reconvergence-stack invariants");

    // Fall-off-the-end: the last pc must not have an implicit fall-through.
    const bool falls_through =
        ins.op != Op::kExit &&
        !(ins.op == Op::kBra && ins.guard == kNoPred);
    if (falls_through && pc + 1 >= n) {
      sink.emit(Severity::kError, pc, kNoBlock, Code::kFallOffEnd,
                "control flow runs past the last instruction",
                "end the program (and every path) with exit");
      cfg_safe = false;
    }
  }

  // Reachability walks need in-range branch targets.
  if (!cfg_safe) return false;

  // Forward reachability from entry.
  std::vector<u8> reach(n, 0);
  std::vector<Pc> work{0};
  reach[0] = 1;
  auto visit = [&](Pc next) {
    if (next < n && !reach[next]) {
      reach[next] = 1;
      work.push_back(next);
    }
  };
  while (!work.empty()) {
    const Pc pc = work.back();
    work.pop_back();
    const Instruction& ins = code[pc];
    if (ins.op == Op::kExit) continue;
    if (ins.op == Op::kBra) {
      visit(ins.target);
      if (ins.guard != kNoPred) visit(pc + 1);
    } else {
      visit(pc + 1);
    }
  }
  for (Pc pc = 0; pc < n;) {
    if (reach[pc]) {
      ++pc;
      continue;
    }
    Pc end = pc;
    while (end < n && !reach[end]) ++end;
    sink.emit(Severity::kWarning, pc, kNoBlock, Code::kUnreachableCode,
              end - pc == 1
                  ? "instruction is unreachable"
                  : "instructions " + std::to_string(pc) + ".." +
                        std::to_string(end - 1) + " are unreachable",
              "no path from entry executes this code");
    pc = end;
  }

  // Reverse reachability to kExit over *all* pcs (including
  // entry-unreachable ones: the Cfg post-dominator analysis requires every
  // block to reach the virtual exit, reachable or not).
  std::vector<u8> can_exit(n, 0);
  std::vector<std::vector<Pc>> rpreds(n);
  for (Pc pc = 0; pc < n; ++pc) {
    const Instruction& ins = code[pc];
    if (ins.op == Op::kExit) {
      can_exit[pc] = 1;
      work.push_back(pc);
      continue;
    }
    if (ins.op == Op::kBra) {
      rpreds[ins.target].push_back(pc);
      if (ins.guard != kNoPred && pc + 1 < n) rpreds[pc + 1].push_back(pc);
    } else if (pc + 1 < n) {
      rpreds[pc + 1].push_back(pc);
    }
  }
  while (!work.empty()) {
    const Pc pc = work.back();
    work.pop_back();
    for (Pc p : rpreds[pc]) {
      if (!can_exit[p]) {
        can_exit[p] = 1;
        work.push_back(p);
      }
    }
  }
  u32 stuck = 0;
  Pc first_stuck = 0;
  for (Pc pc = 0; pc < n; ++pc) {
    if (!can_exit[pc]) {
      if (stuck == 0) first_stuck = pc;
      ++stuck;
    }
  }
  if (stuck > 0) {
    sink.emit(Severity::kError, first_stuck, kNoBlock, Code::kNoPathToExit,
              std::to_string(stuck) +
                  " instruction(s) can never reach exit (infinite loop)",
              "every cycle in the control-flow graph needs an exiting path");
    return false;
  }

  return true;
}

// ---- Pass 2: resource bounds -------------------------------------------------

void check_pred_index(const Instruction& ins, Pc pc, i16 idx, const char* what,
                      u16 num_preds, Sink& sink) {
  if (idx == kNoPred) return;
  if (idx < 0 || static_cast<u16>(idx) >= num_preds)
    sink.emit(Severity::kError, pc, kNoBlock, Code::kPredOutOfRange,
              at_op(ins) + " " + what + " reads predicate " +
                  std::to_string(idx) + " but the program declares " +
                  std::to_string(num_preds) + " predicate(s)",
              "a predicate-file overflow corrupts a neighboring thread's "
              "predicates at runtime");
}

void resource_pass(const KernelProgram& prog, Sink& sink) {
  const u16 num_regs = prog.num_regs();
  const u16 num_preds = prog.num_preds();
  for (Pc pc = 0; pc < prog.size(); ++pc) {
    const Instruction& ins = prog.at(pc);
    if (writes_gpr(ins.op) && ins.dst != kNoReg && ins.dst >= num_regs)
      sink.emit(Severity::kError, pc, kNoBlock, Code::kRegOutOfRange,
                at_op(ins) + " writes r" + std::to_string(ins.dst) +
                    " but the program declares " + std::to_string(num_regs) +
                    " register(s)",
                "a register-file overflow corrupts a neighboring thread's "
                "registers at runtime");
    const u32 nsrc = op_nsrc(ins.op);
    for (u32 i = 0; i < nsrc; ++i) {
      const Operand& o = ins.src[i];
      if (o.is_reg() && o.reg != kNoReg && o.reg >= num_regs)
        sink.emit(Severity::kError, pc, kNoBlock, Code::kRegOutOfRange,
                  at_op(ins) + " reads r" + std::to_string(o.reg) +
                      " but the program declares " +
                      std::to_string(num_regs) + " register(s)");
    }
    if (writes_pred(ins.op) && ins.dst != static_cast<u16>(kNoPred) &&
        ins.dst >= num_preds)
      sink.emit(Severity::kError, pc, kNoBlock, Code::kPredOutOfRange,
                "setp writes p" + std::to_string(ins.dst) +
                    " but the program declares " + std::to_string(num_preds) +
                    " predicate(s)",
                "a predicate-file overflow corrupts a neighboring thread's "
                "predicates at runtime");
    check_pred_index(ins, pc, ins.guard, "guard", num_preds, sink);
    if (ins.op == Op::kSelp || ins.op == Op::kSetp)
      check_pred_index(ins, pc, ins.pred_src, "pred source", num_preds, sink);
  }
}

// ---- Read/write sets (shared by passes 3 and 4) -------------------------------

struct Access {
  bool is_pred = false;
  u32 idx = 0;
};

void collect_reads(const Instruction& ins, std::vector<Access>& out) {
  out.clear();
  if (ins.guard != kNoPred)
    out.push_back({true, static_cast<u32>(ins.guard)});
  const u32 nsrc = op_nsrc(ins.op);
  for (u32 i = 0; i < nsrc; ++i)
    if (ins.src[i].is_reg() && ins.src[i].reg != kNoReg)
      out.push_back({false, ins.src[i].reg});
  if ((ins.op == Op::kSelp || ins.op == Op::kSetp) && ins.pred_src != kNoPred)
    out.push_back({true, static_cast<u32>(ins.pred_src)});
}

bool instruction_write(const Instruction& ins, Access* w) {
  if (writes_gpr(ins.op) && ins.dst != kNoReg) {
    *w = {false, ins.dst};
    return true;
  }
  if (writes_pred(ins.op) && ins.dst != static_cast<u16>(kNoPred)) {
    *w = {true, ins.dst};
    return true;
  }
  return false;
}

/// Blocks reachable from the entry block over CFG edges.
std::vector<u8> reachable_blocks(const Cfg& cfg) {
  std::vector<u8> reach(cfg.num_blocks(), 0);
  std::vector<u32> work{cfg.block_of(0)};
  reach[cfg.block_of(0)] = 1;
  while (!work.empty()) {
    const u32 b = work.back();
    work.pop_back();
    for (u32 s : cfg.block(b).succs) {
      if (!reach[s]) {
        reach[s] = 1;
        work.push_back(s);
      }
    }
  }
  return reach;
}

// ---- Pass 3: dataflow (definite assignment) -----------------------------------

void dataflow_pass(const KernelProgram& prog, const Cfg& cfg, Sink& sink) {
  const u32 nregs = prog.num_regs();
  const u32 npreds = prog.num_preds();
  const u32 nbits = nregs + npreds;  // preds live at bit nregs + idx
  if (nbits == 0) return;
  const std::vector<u8> reach = reachable_blocks(cfg);

  auto bit_of = [&](const Access& a) { return (a.is_pred ? nregs : 0) + a.idx; };
  auto in_range = [&](const Access& a) {
    return a.is_pred ? a.idx < npreds : a.idx < nregs;
  };

  // Registers written by any reachable instruction (out-of-range indices
  // were already flagged by the resource pass; skip them here).
  std::vector<u8> written_anywhere(nbits, 0);
  Access w;
  for (u32 b = 0; b < cfg.num_blocks(); ++b) {
    if (!reach[b]) continue;
    for (Pc pc = cfg.block(b).first; pc <= cfg.block(b).last; ++pc)
      if (instruction_write(prog.at(pc), &w) && in_range(w))
        written_anywhere[bit_of(w)] = 1;
  }

  // Forward must-analysis: in[b] = AND over preds(out[p]); a register is
  // "definitely written" at a pc only if every path from entry writes it.
  using BitSet = std::vector<u8>;
  const u32 entry = cfg.block_of(0);
  std::vector<BitSet> in(cfg.num_blocks(), BitSet(nbits, 1));
  std::vector<BitSet> out(cfg.num_blocks(), BitSet(nbits, 1));
  in[entry].assign(nbits, 0);

  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 b = 0; b < cfg.num_blocks(); ++b) {
      if (!reach[b]) continue;
      BitSet next_in = in[b];
      if (b != entry) {
        next_in.assign(nbits, 1);
        for (u32 p : cfg.block(b).preds) {
          if (!reach[p]) continue;
          for (u32 i = 0; i < nbits; ++i) next_in[i] &= out[p][i];
        }
      }
      BitSet next_out = next_in;
      for (Pc pc = cfg.block(b).first; pc <= cfg.block(b).last; ++pc)
        if (instruction_write(prog.at(pc), &w) && in_range(w))
          next_out[bit_of(w)] = 1;
      if (next_in != in[b] || next_out != out[b]) {
        in[b] = std::move(next_in);
        out[b] = std::move(next_out);
        changed = true;
      }
    }
  }

  // Report: walk each reachable block with its converged entry state.
  std::vector<Access> reads;
  for (u32 b = 0; b < cfg.num_blocks(); ++b) {
    if (!reach[b]) continue;
    BitSet state = in[b];
    for (Pc pc = cfg.block(b).first; pc <= cfg.block(b).last; ++pc) {
      const Instruction& ins = prog.at(pc);
      collect_reads(ins, reads);
      for (const Access& r : reads) {
        if (!in_range(r)) continue;  // resource pass already flagged it
        const char* kind = r.is_pred ? "p" : "r";
        if (!written_anywhere[bit_of(r)]) {
          sink.emit(Severity::kError, pc, b,
                    r.is_pred ? Code::kUninitPredRead : Code::kUninitRegRead,
                    at_op(ins) + " reads " + kind + std::to_string(r.idx) +
                        ", which no instruction writes",
                    "uninitialized register files can diverge across "
                    "redundant copies, breaking the determinism contract");
        } else if (!state[bit_of(r)]) {
          sink.emit(Severity::kWarning, pc, b, Code::kMaybeUninitRead,
                    at_op(ins) + " reads " + kind + std::to_string(r.idx) +
                        " before it is written on some path from entry");
        }
      }
      if (instruction_write(ins, &w) && in_range(w)) state[bit_of(w)] = 1;
    }
  }
}

// ---- Pass 4: barrier safety ----------------------------------------------------

/// Flow-insensitive divergence-taint fixpoint: a register/predicate is
/// tainted when its value can differ across the threads of one block.
/// Sources: tid.*, laneid, warpid, atomics' return values, and loads whose
/// address is tainted. Propagates through the datapath and setp/selp.
void barrier_pass(const KernelProgram& prog, const Cfg& cfg, Sink& sink) {
  // Does the program have a barrier at all? (Common case: no.)
  bool has_bar = false;
  for (Pc pc = 0; pc < prog.size(); ++pc)
    if (prog.at(pc).op == Op::kBar) has_bar = true;
  if (!has_bar) return;

  const u32 nregs = prog.num_regs();
  const u32 npreds = prog.num_preds();
  std::vector<u8> taint(nregs + npreds, 0);
  auto reg_bit = [&](u32 r) { return r; };
  auto pred_bit = [&](u32 p) { return nregs + p; };

  std::vector<Access> reads;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Pc pc = 0; pc < prog.size(); ++pc) {
      const Instruction& ins = prog.at(pc);
      Access w;
      if (!instruction_write(ins, &w)) continue;
      if ((w.is_pred && w.idx >= npreds) || (!w.is_pred && w.idx >= nregs))
        continue;
      const u32 wbit = w.is_pred ? pred_bit(w.idx) : reg_bit(w.idx);
      if (taint[wbit]) continue;

      bool t = false;
      switch (ins.op) {
        case Op::kS2r:
          // tid/laneid diverge across the threads of a warp; warpid
          // diverges across the warps of a block — either desynchronizes
          // a block-wide barrier.
          t = ins.sreg == SReg::kTidX || ins.sreg == SReg::kTidY ||
              ins.sreg == SReg::kTidZ || ins.sreg == SReg::kLaneId ||
              ins.sreg == SReg::kWarpId;
          break;
        case Op::kAtomAdd:
          t = true;  // returns the pre-update value: unique per thread
          break;
        case Op::kLdp:
          t = false;  // parameters are block-uniform
          break;
        default: {
          collect_reads(ins, reads);
          for (const Access& r : reads) {
            if ((r.is_pred && r.idx >= npreds) || (!r.is_pred && r.idx >= nregs))
              continue;
            if (taint[r.is_pred ? pred_bit(r.idx) : reg_bit(r.idx)]) t = true;
          }
          break;
        }
      }
      if (t) {
        taint[wbit] = 1;
        changed = true;
      }
    }
  }

  // A guarded branch with a tainted guard splits the threads of a block;
  // the divergent region is everything reachable from the branch before
  // control reconverges at its IPDOM block. A barrier inside that region is
  // only reached by the threads that took its side: the block deadlocks.
  const std::vector<u8> reach = reachable_blocks(cfg);
  for (Pc pc = 0; pc < prog.size(); ++pc) {
    const Instruction& ins = prog.at(pc);
    if (ins.op != Op::kBra || ins.guard == kNoPred) continue;
    if (static_cast<u16>(ins.guard) >= npreds) continue;
    if (!taint[pred_bit(static_cast<u32>(ins.guard))]) continue;
    const u32 b = cfg.block_of(pc);
    if (!reach[b]) continue;
    const u32 reconv = cfg.ipdom(b);

    std::vector<u8> in_region(cfg.num_blocks(), 0);
    std::vector<u32> work;
    for (u32 s : cfg.block(b).succs) {
      if (s != reconv && !in_region[s]) {
        in_region[s] = 1;
        work.push_back(s);
      }
    }
    while (!work.empty()) {
      const u32 cur = work.back();
      work.pop_back();
      for (u32 s : cfg.block(cur).succs) {
        if (s != reconv && !in_region[s]) {
          in_region[s] = 1;
          work.push_back(s);
        }
      }
    }
    for (u32 rb = 0; rb < cfg.num_blocks(); ++rb) {
      if (!in_region[rb]) continue;
      for (Pc bp = cfg.block(rb).first; bp <= cfg.block(rb).last; ++bp) {
        if (prog.at(bp).op != Op::kBar) continue;
        sink.emit(Severity::kError, bp, rb, Code::kBarrierDivergence,
                  "barrier is control-dependent on the thread-divergent "
                  "branch at pc " +
                      std::to_string(pc),
                  "threads that skip the barrier never arrive: the block "
                  "deadlocks. Hoist the barrier past the reconvergence "
                  "point or make the guard block-uniform");
      }
    }
  }
}

// ---- Pass 5: memory bounds (interval abstract interpretation) -----------------

struct Ival {
  bool top = true;
  i64 lo = 0, hi = 0;  // invariant when !top: 0 <= lo <= hi <= 2^32-1

  static Ival all() { return {}; }
  static Ival exact(u32 v) { return {false, v, v}; }
  static Ival range(i64 lo, i64 hi) { return {false, lo, hi}; }

  bool operator==(const Ival&) const = default;
};

constexpr i64 kU32Max = 0xFFFFFFFF;

Ival join(const Ival& a, const Ival& b) {
  if (a.top || b.top) return Ival::all();
  return Ival::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

/// Reduce an unconstrained i64 range back into u32 space: if the whole
/// range wraps by the same multiple of 2^32, wrapping is a uniform shift;
/// if it straddles a wrap boundary, all precision is lost.
Ival norm(i64 lo, i64 hi) {
  const i64 span = kU32Max + 1;
  const i64 lo_wraps = lo >= 0 ? lo / span : -((-lo + span - 1) / span);
  const i64 hi_wraps = hi >= 0 ? hi / span : -((-hi + span - 1) / span);
  if (lo_wraps != hi_wraps) return Ival::all();
  return Ival::range(lo - lo_wraps * span, hi - lo_wraps * span);
}

class IntervalState {
 public:
  IntervalState(const KernelProgram& prog, const LaunchBounds& lb)
      : prog_(prog), lb_(lb), regs_(prog.num_regs()),
        update_count_(prog.num_regs(), 0), written_(prog.num_regs(), 0) {}

  /// Flow-insensitive fixpoint over the whole program: each register gets
  /// one interval covering every value it can hold anywhere. Sound (a
  /// per-point analysis would only be tighter) and cheap; widening to TOP
  /// after a few updates guarantees termination on loops.
  void solve() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (Pc pc = 0; pc < prog_.size(); ++pc)
        if (transfer(prog_.at(pc))) changed = true;
    }
  }

  Ival value_of(const Operand& o) const {
    if (o.is_imm()) return Ival::exact(o.imm);
    if (o.is_reg() && o.reg < regs_.size() && written_[o.reg])
      return regs_[o.reg];
    return Ival::all();  // unwritten: pass 3's problem, stay sound here
  }

 private:
  bool assign(u16 dst, const Ival& v) {
    if (dst >= regs_.size()) return false;
    Ival next = written_[dst] ? join(regs_[dst], v) : v;
    if (!next.top && update_count_[dst] >= 8) next = Ival::all();  // widen
    if (written_[dst] && next == regs_[dst]) return false;
    if (written_[dst]) update_count_[dst] += 1;
    written_[dst] = 1;
    regs_[dst] = next;
    return true;
  }

  Ival sreg_value(SReg s) const {
    auto dim = [](u32 v) { return v ? Ival::range(0, v - 1) : Ival::all(); };
    auto exact_or_top = [](u32 v) { return v ? Ival::exact(v) : Ival::all(); };
    switch (s) {
      case SReg::kTidX: return dim(lb_.ntid_x);
      case SReg::kTidY: return dim(lb_.ntid_y);
      case SReg::kTidZ: return dim(lb_.ntid_z);
      case SReg::kCtaIdX: return dim(lb_.nctaid_x);
      case SReg::kCtaIdY: return dim(lb_.nctaid_y);
      case SReg::kCtaIdZ: return dim(lb_.nctaid_z);
      case SReg::kNTidX: return exact_or_top(lb_.ntid_x);
      case SReg::kNTidY: return exact_or_top(lb_.ntid_y);
      case SReg::kNTidZ: return exact_or_top(lb_.ntid_z);
      case SReg::kNCtaIdX: return exact_or_top(lb_.nctaid_x);
      case SReg::kNCtaIdY: return exact_or_top(lb_.nctaid_y);
      case SReg::kNCtaIdZ: return exact_or_top(lb_.nctaid_z);
      case SReg::kLaneId: return Ival::range(0, 31);
      case SReg::kWarpId: {
        if (!lb_.ntid_x || !lb_.ntid_y || !lb_.ntid_z) return Ival::all();
        const u32 threads = lb_.ntid_x * lb_.ntid_y * lb_.ntid_z;
        return Ival::range(0, (threads + 31) / 32 - 1);
      }
    }
    return Ival::all();
  }

  bool transfer(const Instruction& ins) {
    if (!writes_gpr(ins.op) || ins.dst == kNoReg) return false;
    const Ival a = value_of(ins.src[0]);
    const Ival b = value_of(ins.src[1]);
    Ival v = Ival::all();
    switch (ins.op) {
      case Op::kMov:
        v = a;
        break;
      case Op::kS2r:
        v = sreg_value(ins.sreg);
        break;
      case Op::kLdp:
        if (lb_.params != nullptr && ins.src[0].is_imm() &&
            ins.src[0].imm < lb_.params->size())
          v = Ival::exact((*lb_.params)[ins.src[0].imm]);
        break;
      case Op::kIadd:
        if (!a.top && !b.top) v = norm(a.lo + b.lo, a.hi + b.hi);
        break;
      case Op::kIsub:
        if (!a.top && !b.top) v = norm(a.lo - b.hi, a.hi - b.lo);
        break;
      case Op::kImul:
        // Unsigned product; give up when the upper corner can wrap.
        if (!a.top && !b.top &&
            (b.hi == 0 || a.hi <= kU32Max / (b.hi ? b.hi : 1)))
          v = Ival::range(a.lo * b.lo, a.hi * b.hi);
        break;
      case Op::kImad: {
        const Ival c = value_of(ins.src[2]);
        if (!a.top && !b.top && !c.top &&
            (b.hi == 0 || a.hi <= kU32Max / (b.hi ? b.hi : 1)))
          v = norm(a.lo * b.lo + c.lo, a.hi * b.hi + c.hi);
        break;
      }
      case Op::kShl:
        if (!a.top && !b.top && b.lo == b.hi) {
          const i64 s = b.lo & 31;
          if (a.hi <= (kU32Max >> s)) v = Ival::range(a.lo << s, a.hi << s);
        }
        break;
      case Op::kShr:
        if (!a.top && !b.top && b.lo == b.hi) {
          const i64 s = b.lo & 31;
          v = Ival::range(a.lo >> s, a.hi >> s);
        }
        break;
      case Op::kSra:
        // Identical to shr while the value is non-negative as i32.
        if (!a.top && !b.top && b.lo == b.hi && a.hi <= 0x7FFFFFFF) {
          const i64 s = b.lo & 31;
          v = Ival::range(a.lo >> s, a.hi >> s);
        }
        break;
      case Op::kAnd:
        // Masking can only clear bits: bounded by both inputs' maxima.
        if (!a.top || !b.top)
          v = Ival::range(0, std::min(a.top ? kU32Max : a.hi,
                                      b.top ? kU32Max : b.hi));
        break;
      case Op::kImin:
        if (!a.top && !b.top && a.hi <= 0x7FFFFFFF && b.hi <= 0x7FFFFFFF)
          v = Ival::range(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
        break;
      case Op::kImax:
        if (!a.top && !b.top && a.hi <= 0x7FFFFFFF && b.hi <= 0x7FFFFFFF)
          v = Ival::range(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
        break;
      case Op::kSelp:
        v = join(a, b);
        break;
      default:
        break;  // float ops, loads, conversions: TOP
    }
    return assign(ins.dst, v);
  }

  const KernelProgram& prog_;
  const LaunchBounds& lb_;
  std::vector<Ival> regs_;
  std::vector<u8> update_count_;
  std::vector<u8> written_;
};

void memory_pass(const KernelProgram& prog, const Cfg& cfg,
                 const LaunchBounds& lb, Sink& sink) {
  bool has_mem = false;
  for (Pc pc = 0; pc < prog.size(); ++pc)
    if (is_shared_mem(prog.at(pc).op) || is_global_mem(prog.at(pc).op))
      has_mem = true;
  if (!has_mem) return;

  IntervalState state(prog, lb);
  state.solve();

  for (Pc pc = 0; pc < prog.size(); ++pc) {
    const Instruction& ins = prog.at(pc);
    if (!is_shared_mem(ins.op) && !is_global_mem(ins.op)) continue;
    const Ival addr = state.value_of(ins.src[0]);
    if (addr.top) continue;  // unbounded address: nothing provable
    const i64 lo = addr.lo + ins.mem_offset;
    const i64 hi = addr.hi + ins.mem_offset;
    const u32 block = cfg.block_of(pc);

    if (is_shared_mem(ins.op)) {
      const i64 size = prog.shared_bytes();
      if (lo + 4 > size || hi < 0) {
        sink.emit(Severity::kError, pc, block, Code::kSharedOutOfBounds,
                  at_op(ins) + " address range [" + std::to_string(lo) +
                      ", " + std::to_string(hi + 3) +
                      "]: every possible access falls outside the " +
                      std::to_string(size) + "-byte shared segment",
                  "declare enough shared memory (set_shared_bytes) or fix "
                  "the address computation");
      } else if (hi + 4 > size || lo < 0) {
        sink.emit(Severity::kWarning, pc, block,
                  Code::kSharedMaybeOutOfBounds,
                  at_op(ins) + " address range [" + std::to_string(lo) +
                      ", " + std::to_string(hi + 3) +
                      "] can overrun the " + std::to_string(size) +
                      "-byte shared segment");
      }
    } else if (lb.global_extent > 0) {
      // Provable errors only: the global extent covers the whole store, so
      // a partial overlap is routinely a false alarm on strided accesses.
      if (lo + 4 > static_cast<i64>(lb.global_extent)) {
        sink.emit(Severity::kError, pc, block, Code::kGlobalOutOfBounds,
                  at_op(ins) + " address range [" + std::to_string(lo) +
                      ", " + std::to_string(hi + 3) +
                      "]: every possible access overruns the " +
                      std::to_string(lb.global_extent) +
                      "-byte global store");
      }
    }
  }
}

}  // namespace

// ---- Public API ----------------------------------------------------------------

const char* code_name(Code c) {
  switch (c) {
    case Code::kEmptyProgram: return "empty-program";
    case Code::kBadBranchTarget: return "bad-branch-target";
    case Code::kFallOffEnd: return "fall-off-end";
    case Code::kNoPathToExit: return "no-path-to-exit";
    case Code::kUnreachableCode: return "unreachable-code";
    case Code::kGuardedExitOrBar: return "guarded-exit-or-bar";
    case Code::kBadOperand: return "bad-operand";
    case Code::kBadParamIndex: return "bad-param-index";
    case Code::kRegOutOfRange: return "reg-out-of-range";
    case Code::kPredOutOfRange: return "pred-out-of-range";
    case Code::kUninitRegRead: return "uninit-reg-read";
    case Code::kUninitPredRead: return "uninit-pred-read";
    case Code::kMaybeUninitRead: return "maybe-uninit-read";
    case Code::kBarrierDivergence: return "barrier-divergence";
    case Code::kSharedOutOfBounds: return "shared-oob";
    case Code::kSharedMaybeOutOfBounds: return "shared-maybe-oob";
    case Code::kGlobalOutOfBounds: return "global-oob";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

bool Result::ok() const { return count(Severity::kError) == 0; }

bool Result::unsafe_to_execute() const {
  // Exactly the defect classes that reach an unchecked host-memory index at
  // runtime: out-of-range code fetch (empty program, wild branch target,
  // fall-off-the-end), out-of-range register-file / parameter-table access
  // (malformed operands incl. kNoReg sentinels, kLdp index, static indices
  // past the declared file sizes). Keep in sync with the Warp::reg_at and
  // LaunchVerify::kWarn contracts.
  return std::any_of(diags.begin(), diags.end(), [](const Diag& d) {
    switch (d.code) {
      case Code::kEmptyProgram:
      case Code::kBadBranchTarget:
      case Code::kFallOffEnd:
      case Code::kBadOperand:
      case Code::kBadParamIndex:
      case Code::kRegOutOfRange:
      case Code::kPredOutOfRange:
        return true;
      default:
        return false;
    }
  });
}

u32 Result::count(Severity s) const {
  u32 n = 0;
  for (const Diag& d : diags)
    if (d.severity == s) ++n;
  return n;
}

bool Result::has(Code c) const {
  return std::any_of(diags.begin(), diags.end(),
                     [c](const Diag& d) { return d.code == c; });
}

namespace {
void json_escape(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string Result::to_json() const {
  std::string j = "{\"kernel\":\"";
  json_escape(kernel, j);
  j += "\",\"ok\":";
  j += ok() ? "true" : "false";
  j += ",\"errors\":" + std::to_string(count(Severity::kError));
  j += ",\"warnings\":" + std::to_string(count(Severity::kWarning));
  j += ",\"diags\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diag& d = diags[i];
    if (i) j += ',';
    j += "{\"severity\":\"";
    j += severity_name(d.severity);
    j += "\",\"code\":\"";
    j += code_name(d.code);
    j += "\",\"pc\":" + std::to_string(d.pc);
    if (d.block != kNoBlock) j += ",\"block\":" + std::to_string(d.block);
    j += ",\"message\":\"";
    json_escape(d.message, j);
    j += '"';
    if (!d.hint.empty()) {
      j += ",\"hint\":\"";
      json_escape(d.hint, j);
      j += '"';
    }
    j += '}';
  }
  j += "]}";
  return j;
}

std::string Result::to_string() const {
  std::string s =
      "kernel '" + kernel + "': " + std::to_string(count(Severity::kError)) +
      " error(s), " + std::to_string(count(Severity::kWarning)) +
      " warning(s)\n";
  for (const Diag& d : diags) {
    s += "  [";
    s += severity_name(d.severity);
    s += "] pc ";
    s += std::to_string(d.pc);
    s += " ";
    s += code_name(d.code);
    s += ": " + d.message;
    if (!d.hint.empty()) s += " (" + d.hint + ")";
    s += '\n';
  }
  return s;
}

Result verify(const KernelProgram& program, const LaunchBounds& bounds) {
  Result res;
  res.kernel = program.name();
  Sink sink(&res.diags);

  const bool cfg_safe = structural_pass(program, sink);
  resource_pass(program, sink);
  if (!cfg_safe) return res;  // Cfg construction needs the invariants above

  const Cfg cfg(program.code());
  dataflow_pass(program, cfg, sink);
  barrier_pass(program, cfg, sink);
  memory_pass(program, cfg, bounds, sink);

  // Keep reports deterministic and readable: program order, errors before
  // warnings/notes at the same pc (Severity's enumerator order), emission
  // order beyond that (stable).
  std::stable_sort(res.diags.begin(), res.diags.end(),
                   [](const Diag& a, const Diag& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     return a.severity < b.severity;
                   });
  return res;
}

VerifyError::VerifyError(Result result)
    : std::runtime_error("kernel launch refused by the static verifier: " +
                         result.to_string()),
      result_(std::move(result)) {}

}  // namespace higpu::isa::verify
