// Deadline-aware kernel scheduling: EDF over streams (serving mode).
//
// The continuous-operation engine (src/serve) attaches an absolute deadline
// to every request it admits; the request's kernels are launched on streams,
// and this scheduler dispatches blocks of the pending kernel whose stream
// carries the *earliest* deadline first (Earliest Deadline First). Kernels
// whose stream has no registered deadline sort last, in launch order — with
// no deadlines registered at all the scheduler degenerates to the baseline
// greedy/SRRS behaviour, so it can be installed unconditionally.
//
// Placement (which SM a selected block lands on) is orthogonal to selection
// and reuses the existing policies:
//   * kGreedy — Default-scheduler placement: first SM with capacity, round-
//     robin cursor, honouring each launch's SchedHints::sm_mask (HALF).
//   * kSrrs  — SRRS placement: a kernel starts only on an idle GPU, block i
//     goes to SM (start_sm + i) mod N, kernels fully serialize. EDF then
//     decides *which* kernel starts next once the GPU drains, preserving the
//     paper's diversity guarantees for the redundant copies of one request.
#pragma once

#include <map>

#include "sched/policies.h"
#include "sim/gpu.h"
#include "sim/ksched.h"

namespace higpu::sched {

class EdfKernelScheduler final : public sim::IKernelScheduler {
 public:
  /// Block-placement flavour once EDF has selected a kernel.
  enum class Placement : u8 { kGreedy, kSrrs };

  /// Sorts after every registered deadline (streams without one).
  static constexpr u64 kNoDeadline = ~u64{0};

  explicit EdfKernelScheduler(Placement placement = Placement::kGreedy)
      : placement_(placement) {}

  /// Placement matching `p`: SRRS keeps its serialized round-robin mapping;
  /// Default and HALF (masks) use greedy placement.
  static Placement placement_for(Policy p) {
    return p == Policy::kSrrs ? Placement::kSrrs : Placement::kGreedy;
  }

  std::string name() const override { return "edf"; }
  void dispatch(sim::Gpu& gpu) override;
  void reset() override {
    rr_cursor_ = first_unfinished_ = 0;
    deadline_.clear();
  }

  /// Register (or overwrite) the absolute deadline, in host-timeline
  /// nanoseconds, of every kernel launched on `stream`. Deadlines are
  /// behavioural scheduler state: they are serialized into checkpoints and
  /// survive rollback restores.
  void set_stream_deadline(u32 stream, u64 abs_deadline_ns) {
    deadline_[stream] = abs_deadline_ns;
  }
  void clear_stream_deadline(u32 stream) { deadline_.erase(stream); }
  u64 stream_deadline(u32 stream) const {
    const auto it = deadline_.find(stream);
    return it == deadline_.end() ? kNoDeadline : it->second;
  }

  void save_state(ckpt::Writer& w) const override {
    w.put8(static_cast<u8>(placement_));
    w.put32(rr_cursor_);
    w.put32(first_unfinished_);
    w.put32(static_cast<u32>(deadline_.size()));
    for (const auto& [stream, ns] : deadline_) {  // std::map: sorted, stable
      w.put32(stream);
      w.put64(ns);
    }
  }
  void restore_state(ckpt::Reader& r) override {
    placement_ = static_cast<Placement>(r.get8());
    rr_cursor_ = r.get32();
    first_unfinished_ = r.get32();
    deadline_.clear();
    const u32 n = r.get32();
    for (u32 i = 0; i < n; ++i) {
      const u32 stream = r.get32();
      deadline_[stream] = r.get64();
    }
  }

 private:
  Placement placement_;
  u32 rr_cursor_ = 0;        // greedy-placement SM round-robin cursor
  u32 first_unfinished_ = 0; // skip the finished launch prefix in O(1)
  std::map<u32, u64> deadline_;  // stream -> absolute deadline (ns)
};

}  // namespace higpu::sched
