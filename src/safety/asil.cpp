#include "safety/asil.h"

#include <algorithm>

namespace higpu::safety {

const char* asil_name(Asil a) {
  switch (a) {
    case Asil::kQM: return "QM";
    case Asil::kA: return "ASIL-A";
    case Asil::kB: return "ASIL-B";
    case Asil::kC: return "ASIL-C";
    case Asil::kD: return "ASIL-D";
  }
  return "?";
}

bool valid_decomposition(Asil goal, Asil x, Asil y, bool independent) {
  if (!independent) return false;
  const Asil lo = std::min(x, y);
  const Asil hi = std::max(x, y);
  switch (goal) {
    case Asil::kD:
      return (hi == Asil::kC && lo == Asil::kA) ||
             (hi == Asil::kB && lo == Asil::kB) ||
             (hi == Asil::kD && lo == Asil::kQM);
    case Asil::kC:
      return (hi == Asil::kB && lo == Asil::kA) ||
             (hi == Asil::kC && lo == Asil::kQM);
    case Asil::kB:
      return (hi == Asil::kA && lo == Asil::kA) ||
             (hi == Asil::kB && lo == Asil::kQM);
    case Asil::kA:
      return hi == Asil::kA && lo == Asil::kQM;
    case Asil::kQM:
      return true;
  }
  return false;
}

Asil composed_asil(Asil x, Asil y, bool independent) {
  if (!independent) return std::max(x, y);
  for (Asil goal : {Asil::kD, Asil::kC, Asil::kB, Asil::kA})
    if (valid_decomposition(goal, x, y, independent)) return goal;
  return std::max(x, y);
}

Asil max_asil_for(const HwMetrics& m) {
  if (m.spfm >= 0.99 && m.lfm >= 0.90) return Asil::kD;
  if (m.spfm >= 0.97 && m.lfm >= 0.80) return Asil::kC;
  if (m.spfm >= 0.90 && m.lfm >= 0.60) return Asil::kB;
  return Asil::kA;
}

HwMetrics required_metrics(Asil a) {
  switch (a) {
    case Asil::kD: return {0.99, 0.90};
    case Asil::kC: return {0.97, 0.80};
    case Asil::kB: return {0.90, 0.60};
    default: return {0.0, 0.0};
  }
}

std::string describe_decomposition(Asil goal, Asil x, Asil y) {
  std::string s = asil_name(goal);
  s += " = ";
  s += asil_name(x);
  s += "(D) + ";
  s += asil_name(y);
  s += "(D)";
  return s;
}

}  // namespace higpu::safety
