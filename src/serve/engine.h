// Continuous-operation serving engine (deadline-aware, fail-degraded).
//
// Runs a TrafficSpec against one persistent runtime::Device: requests are
// admitted as the host timeline reaches their arrival, queued, and served
// in EDF order — both at the request queue (earliest absolute deadline
// next) and at block-dispatch granularity (the session installs a
// sched::EdfKernelScheduler carrying the request's per-stream deadlines).
//
// Overload is handled explicitly instead of letting latency collapse:
//   * degrade ladder — when the predicted completion of the next request
//     would miss its deadline (or a session reports Recovery::kDegrade),
//     the engine drops one redundancy level: TMR -> DCLS -> baseline.
//     Recovery is hysteretic: only after `recover_after` consecutive
//     on-time completions with a near-empty queue does the level step back
//     up, so the engine cannot flap at the overload boundary.
//   * load shedding — requests whose deadline already passed while queued
//     are dropped (they could only waste capacity), and the queue depth is
//     capped; every drop is accounted per tenant and per reason.
//
// Safety cadence between requests: a periodic scheduler BIST (paper §IV.C)
// and, when configured, an interval CheckpointPolicy so kRollback tenants
// always have fresh restore points mid-stream.
//
// Determinism: the device timeline, the arrival stream, the EDF order, the
// degrade ladder and every percentile are functions of (spec, seed) only —
// the same spec reproduces bit-identical results under both sim engines
// and both exec modes.
#pragma once

#include <string>
#include <vector>

#include "common/percentiles.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/device.h"
#include "serve/traffic.h"

namespace higpu::serve {

/// What to do when demand exceeds capacity.
struct OverloadPolicy {
  /// Walk the redundancy ladder down under deadline pressure (and on
  /// session-reported kDegrade). Off = keep full redundancy, shed instead.
  bool enable_degrade = true;
  /// Drop queued requests whose absolute deadline has already passed.
  bool shed_expired = true;
  /// Hard cap on queued requests; the latest-deadline entries are shed
  /// first when it overflows. 0 = unbounded.
  u32 max_queue_depth = 64;
  /// Hysteresis: consecutive on-time completions (with the queue at or
  /// below low_watermark) required before stepping one level back up.
  u32 recover_after = 4;
  u32 low_watermark = 1;
};

struct ServeSpec {
  TrafficSpec traffic;
  sim::GpuParams gpu;
  runtime::PlatformParams platform;
  /// Placement policy for every session (also the BIST policy); the EDF
  /// scheduler keeps this policy's placement contract.
  sched::Policy policy = sched::Policy::kSrrs;
  OverloadPolicy overload;
  /// Period of the scheduler BIST cadence (0 = no BIST).
  u64 bist_interval_ns = 0;
  /// Interval CheckpointPolicy installed on the device (0 = none); gives
  /// kRollback tenants mid-stream restore points.
  u64 ckpt_interval_cycles = 0;

  // ---- Observability (pure observers; results stay bit-identical) --------
  /// Optional tracer attached to the device for the run; the engine adds
  /// host tracks for request spans (kReqServe), enqueue/shed instants and
  /// degrade transitions. Not part of the spec's identity/label.
  obs::Tracer* tracer = nullptr;
  /// When non-empty, append one "higpu.metrics/1" record to this JSONL file
  /// every `metrics_interval_ns` of *modelled* time (so the series is
  /// deterministic): queue-depth gauge, served/dropped counters, response
  /// histogram. The file is truncated at the start of the run.
  std::string metrics_jsonl_path;
  u64 metrics_interval_ns = 0;

  void validate() const;
  std::string label() const;
};

/// Why a degrade-ladder transition happened.
enum class DegradeReason : u8 {
  kDeadlinePressure,  // predicted completion past the deadline
  kSessionDegrade,    // ExecSession reported Recovery::kDegrade
  kRecovered,         // hysteretic step back up
};
const char* degrade_reason_name(DegradeReason r);

struct DegradeTransition {
  u64 t_ns = 0;
  u32 from_level = 0;
  u32 to_level = 0;
  DegradeReason reason = DegradeReason::kDeadlinePressure;
  u32 queue_depth = 0;

  bool operator==(const DegradeTransition& other) const = default;
};

/// One served request, in completion order (the determinism witness).
struct Completion {
  u32 request_id = 0;
  u32 tenant = 0;
  u32 level = 0;        // degrade level it was served at
  u64 start_ns = 0;     // dispatch time (queue wait = start - arrival)
  u64 finish_ns = 0;
  u64 response_ns = 0;  // finish - arrival
  bool deadline_met = false;

  bool operator==(const Completion& other) const = default;
};

/// Per-tenant telemetry.
struct TenantStats {
  std::string name;
  u64 offered = 0;
  u64 served = 0;
  u64 dropped_expired = 0;
  u64 dropped_overflow = 0;
  u64 deadline_misses = 0;   // served but late
  u64 degraded_served = 0;   // served at level > 0
  Percentiles response_ns;
  Percentiles queue_wait_ns;
  /// ftti_ns - detect/react response of the session (negative = FTTI bust).
  Percentiles ftti_slack_ns;
};

struct ServeResult {
  std::string label;
  std::vector<TenantStats> tenants;
  /// Response-time percentiles split by the degrade level served at.
  std::vector<Percentiles> by_level;
  std::vector<DegradeTransition> transitions;
  std::vector<Completion> completions;

  u64 served = 0;
  u64 dropped = 0;
  u64 deadline_misses = 0;
  u64 verify_failures = 0;
  u64 max_queue_depth = 0;
  /// Modelled time at which max_queue_depth was first reached (the
  /// high-watermark instant; 0 when the queue never held a request).
  u64 queue_high_watermark_ns = 0;
  /// Queue depth over modelled time: one (t_ns, depth) point per change,
  /// deterministic (same under both engines and both exec modes).
  std::vector<std::pair<u64, u32>> queue_depth_series;
  u64 bist_runs = 0;
  u64 bist_failures = 0;
  u64 checkpoints_captured = 0;
  /// Host-timeline span of the whole serving run and the busy part of it.
  u64 span_ns = 0;
  u64 busy_ns = 0;

  double utilization() const {
    return span_ns == 0 ? 0.0
                        : static_cast<double>(busy_ns) /
                              static_cast<double>(span_ns);
  }
  /// Completed requests per modelled second.
  double sustained_rps() const {
    return span_ns == 0 ? 0.0
                        : static_cast<double>(served) * 1e9 /
                              static_cast<double>(span_ns);
  }

  /// Schema "higpu.serve/1".
  std::string to_json(const ServeSpec& spec) const;
  /// Per-tenant CSV (one row per tenant).
  std::string to_csv() const;

  /// The determinism witness: completion order, levels, timings,
  /// transitions and every percentile sample compare exactly.
  bool operator==(const ServeResult& other) const {
    if (completions != other.completions) return false;
    if (transitions != other.transitions) return false;
    if (tenants.size() != other.tenants.size()) return false;
    for (size_t i = 0; i < tenants.size(); ++i) {
      if (tenants[i].response_ns != other.tenants[i].response_ns ||
          tenants[i].ftti_slack_ns != other.tenants[i].ftti_slack_ns)
        return false;
    }
    return served == other.served && dropped == other.dropped &&
           deadline_misses == other.deadline_misses &&
           max_queue_depth == other.max_queue_depth &&
           queue_high_watermark_ns == other.queue_high_watermark_ns &&
           queue_depth_series == other.queue_depth_series;
  }
};

/// Run the serving loop to completion (every generated request served or
/// dropped) and return the telemetry.
ServeResult run_serve(const ServeSpec& spec);

/// The effective redundancy of `base` at degrade `level`: each level strips
/// one copy (TMR -> DCLS -> baseline), majority vote falls back to bitwise
/// below 3 copies, recovery falls back to kNone at 1 copy, and explicit
/// SRRS starts are cleared (the even auto-spread re-derives diversity for
/// the reduced copy count).
core::RedundancySpec degrade(const core::RedundancySpec& base, u32 level);

}  // namespace higpu::serve
