// Fault injection and the §IV.C detection argument: chip-wide droops are
// detected under SRRS/HALF, permanent SM faults are detected whenever the
// policy guarantees spatial diversity, and scheduler faults stay observable.
#include <gtest/gtest.h>

#include "core/diversity.h"
#include "core/exec.h"
#include "exp/campaign.h"
#include "fault/injector.h"
#include "tests/test_kernels.h"

namespace higpu::fault {
namespace {

using core::ExecSession;
using core::ReplicaPtr;
using testing::make_spin_kernel;

TEST(Injector, ClassifyOutcomes) {
  EXPECT_EQ(classify(true, true), Outcome::kMasked);
  EXPECT_EQ(classify(false, true), Outcome::kDetected);
  EXPECT_EQ(classify(false, false), Outcome::kDetected);
  EXPECT_EQ(classify(true, false), Outcome::kSdc);
}

TEST(Injector, TallyAndCoverage) {
  CampaignTally t;
  t.count(Outcome::kMasked);
  t.count(Outcome::kDetected);
  t.count(Outcome::kDetected);
  t.count(Outcome::kSdc);
  EXPECT_EQ(t.total(), 4u);
  EXPECT_DOUBLE_EQ(t.diagnostic_coverage(), 2.0 / 3.0);
  CampaignTally clean;
  clean.count(Outcome::kMasked);
  EXPECT_DOUBLE_EQ(clean.diagnostic_coverage(), 1.0);  // nothing to detect
}

TEST(Injector, DroopCorruptsOnlyInsideWindow) {
  FaultInjector fi;
  fi.arm_droop(100, 10, 0);
  EXPECT_EQ(fi.corrupt_alu(0, 99, 42), 42u);
  EXPECT_EQ(fi.corrupt_alu(3, 105, 42), 43u);  // bit 0 flipped, any SM
  EXPECT_EQ(fi.corrupt_alu(0, 110, 42), 42u);  // window is half-open
  EXPECT_EQ(fi.corruptions(), 1u);
}

TEST(Injector, TransientSmRestrictsToOneSm) {
  FaultInjector fi;
  fi.arm_transient_sm(2, 100, 10, 4);
  EXPECT_EQ(fi.corrupt_alu(1, 105, 0), 0u);
  EXPECT_EQ(fi.corrupt_alu(2, 105, 0), 16u);
}

TEST(Injector, PermanentSmNeverEnds) {
  FaultInjector fi;
  fi.arm_permanent_sm(1, 50, 3);
  EXPECT_EQ(fi.corrupt_alu(1, 49, 0), 0u);
  EXPECT_EQ(fi.corrupt_alu(1, 1'000'000, 0), 8u);
}

TEST(Injector, SchedulerFaultRotatesMapping) {
  FaultInjector fi;
  fi.arm_scheduler_fault(0, 1);
  EXPECT_EQ(fi.corrupt_block_mapping(0, 6, 10), 1u);
  EXPECT_EQ(fi.corrupt_block_mapping(5, 6, 10), 0u);
  // Mapping queries are pure: the dense and event engines query at
  // different cadences. Diversions are counted once per placed block.
  EXPECT_EQ(fi.diverted_blocks(), 0u);
  fi.on_block_diverted(0, 1);
  fi.on_block_diverted(5, 0);
  EXPECT_EQ(fi.diverted_blocks(), 2u);
}

TEST(Injector, DisarmStopsEverything) {
  FaultInjector fi;
  fi.arm_droop(0, 1'000'000, 5);
  fi.disarm();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.corrupt_alu(0, 10, 7), 7u);
}

/// Run a redundant spin-kernel pair under `policy` with a droop armed in
/// [start, start+width). The fault is declared as an exp::FaultPlan — the
/// same value type campaign specs carry. Returns (outputs_match,
/// corruptions).
std::pair<bool, u64> run_with_droop(sched::Policy policy, Cycle start,
                                    Cycle width, u32 launch_gap = 400) {
  sim::GpuParams p;
  p.launch_gap_cycles = launch_gap;
  runtime::Device dev(p);
  FaultInjector fi;
  // bit 20: large numeric error
  exp::FaultPlan::droop(start, width, 20).arm(fi);
  dev.gpu().set_fault_hook(&fi);

  ExecSession::Config cfg;
  cfg.policy = policy;
  ExecSession s(dev, cfg);
  const u32 n = 12 * 128;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_spin_kernel(200), sim::Dim3{12, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  const bool match = s.compare(out, n * 4).unanimous;
  return {match, fi.corruptions()};
}

TEST(DroopCampaign, SrrsDetectsMidExecutionDroop) {
  // Droop while only one copy can be executing (SRRS serializes).
  const auto [match, corruptions] = run_with_droop(sched::Policy::kSrrs, 2000, 50);
  EXPECT_GT(corruptions, 0u);
  EXPECT_FALSE(match);  // only one copy corrupted -> comparison flags it
}

TEST(DroopCampaign, HalfDetectsMidExecutionDroop) {
  const auto [match, corruptions] = run_with_droop(sched::Policy::kHalf, 2000, 50);
  EXPECT_GT(corruptions, 0u);
  EXPECT_FALSE(match);
}

/// The adversarial scenario of §IV.C: under the Default policy with no
/// dispatch slack, the redundant copies can execute the same computation at
/// (nearly) the same instant. We *compute* a droop window that corrupts the
/// exact same instruction set in both copies from the instruction trace,
/// then inject it and observe an undetected CCF (SDC). SRRS makes such a
/// window provably nonexistent.
struct ZeroGapProbe {
  core::InstrTraceCollector trace;
  u32 id_a = 0, id_b = 0;
  std::vector<u8> clean_output;
};

/// Straight-line FFMA chain: every datapath instruction feeds the output,
/// so corrupting ANY of them must change the result (no dead code to mask
/// the injection).
isa::ProgramPtr make_chain_kernel() {
  using namespace isa;
  KernelBuilder kb("chain");
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);
  Reg acc = kb.reg();
  kb.movf(acc, 1.37f);
  for (int i = 0; i < 200; ++i)
    kb.ffma(acc, acc, fimm(1.000001f), fimm(0.25f));
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

ZeroGapProbe probe_zero_gap(sched::Policy policy, const u32 n,
                            fault::FaultInjector* fi = nullptr,
                            Cycle droop_start = 0, Cycle droop_end = 0,
                            std::vector<u8>* out_bytes = nullptr,
                            bool* out_match = nullptr) {
  sim::GpuParams p;
  p.launch_gap_cycles = 0;
  runtime::Device dev(p);
  ZeroGapProbe probe;
  dev.gpu().set_trace_sink(&probe.trace);
  if (fi != nullptr) {
    fi->arm_droop(droop_start, droop_end - droop_start, 2);
    dev.gpu().set_fault_hook(fi);
  }
  ExecSession::Config cfg;
  cfg.policy = policy;
  ExecSession s(dev, cfg);
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_chain_kernel(), sim::Dim3{1, 1, 1}, sim::Dim3{n, 1, 1},
           {out, n});
  s.sync();
  const bool match = s.compare(out, n * 4).unanimous;
  if (out_match != nullptr) *out_match = match;
  if (out_bytes != nullptr) {
    out_bytes->resize(n * 4);
    dev.gpu().store().read_block(out_bytes->data(), out.primary(), n * 4);
  }
  probe.id_a = s.pairs()[0].first;
  probe.id_b = s.pairs()[0].second;
  return probe;
}

TEST(DroopCampaign, DefaultZeroGapHasIdenticalCorruptionWindows) {
  std::vector<u8> clean;
  ZeroGapProbe probe =
      probe_zero_gap(sched::Policy::kDefault, 32, nullptr, 0, 0, &clean);
  const auto window = probe.trace.find_identical_corruption_window(
      probe.id_a, probe.id_b, /*max_width=*/16);
  ASSERT_TRUE(window.has_value())
      << "default policy with zero gap should expose aligned execution";

  // Inject exactly that window: both copies corrupted identically ->
  // comparison passes although the output is wrong (SDC).
  fault::FaultInjector fi;
  bool match = false;
  std::vector<u8> faulty;
  probe_zero_gap(sched::Policy::kDefault, 32, &fi, window->first,
                 window->second, &faulty, &match);
  EXPECT_GT(fi.corruptions(), 0u);
  EXPECT_TRUE(match) << "identical corruption must be invisible to DCLS";
  EXPECT_NE(clean, faulty) << "the output must actually be corrupted";
}

TEST(DroopCampaign, SrrsHasNoIdenticalCorruptionWindow) {
  ZeroGapProbe probe = probe_zero_gap(sched::Policy::kSrrs, 32);
  EXPECT_FALSE(probe.trace
                   .find_identical_corruption_window(probe.id_a, probe.id_b,
                                                     /*max_width=*/64)
                   .has_value());
}

TEST(DroopCampaign, HalfZeroGapStillSpatiallyDiverse) {
  // Even in the pathological zero-gap case, HALF keeps the copies on
  // disjoint SMs, so permanent/spatial CCFs remain covered.
  sim::GpuParams p;
  p.launch_gap_cycles = 0;
  runtime::Device dev(p);
  ExecSession::Config cfg;
  cfg.policy = sched::Policy::kHalf;
  ExecSession s(dev, cfg);
  const u32 n = 12 * 128;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_spin_kernel(50), sim::Dim3{12, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  const auto rep =
      core::analyze_block_diversity(dev.gpu().block_records(), s.pairs());
  EXPECT_TRUE(rep.spatially_diverse());
}

TEST(PermanentFault, SrrsDetectsBrokenSm) {
  sim::GpuParams p;
  runtime::Device dev(p);
  FaultInjector fi;
  exp::FaultPlan::permanent_sm(2, 0, 20).arm(fi);
  dev.gpu().set_fault_hook(&fi);

  ExecSession::Config cfg;
  cfg.policy = sched::Policy::kSrrs;
  ExecSession s(dev, cfg);
  const u32 n = 12 * 128;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_spin_kernel(100), sim::Dim3{12, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  // SRRS guarantees each logical block runs on different SMs across copies,
  // so a broken SM corrupts different logical blocks in each copy.
  EXPECT_FALSE(s.compare(out, n * 4).unanimous);
}

TEST(PermanentFault, HalfDetectsBrokenSm) {
  sim::GpuParams p;
  runtime::Device dev(p);
  FaultInjector fi;
  exp::FaultPlan::permanent_sm(4, 0, 20).arm(fi);
  dev.gpu().set_fault_hook(&fi);

  ExecSession::Config cfg;
  cfg.policy = sched::Policy::kHalf;
  ExecSession s(dev, cfg);
  const u32 n = 12 * 128;
  const ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_spin_kernel(100), sim::Dim3{12, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  // SM 4 belongs to copy B's partition only: copies differ.
  EXPECT_FALSE(s.compare(out, n * 4).unanimous);
}

// ---- Scenario-level fault campaigns (the §IV.C sweep as a declarative
// ScenarioSet: spec construction + one run() call) ---------------------------

exp::ScenarioSpec campaign_base() {
  exp::ScenarioSpec spec;
  spec.workload = "hotspot";
  spec.scale = workloads::Scale::kTest;
  spec.seed = 2019;
  spec.gpu.launch_gap_cycles = 400;
  return spec;
}

TEST(FaultScenario, PermanentSmSweepDetectedUnderDiversePolicies) {
  const exp::ScenarioSet set =
      exp::ScenarioSet::of(campaign_base())
          .sweep_policies({sched::Policy::kHalf, sched::Policy::kSrrs})
          .sweep_faults({exp::FaultPlan::permanent_sm(0, 0, 20),
                         exp::FaultPlan::permanent_sm(3, 0, 20)});
  ASSERT_EQ(set.size(), 4u);
  const exp::CampaignResult campaign = exp::CampaignRunner().run(set);
  for (const exp::ScenarioResult& r : campaign.results) {
    ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_GT(r.corruptions, 0u) << r.label;
    // Spatial diversity turns the broken SM into a detected mismatch, never
    // an SDC.
    EXPECT_EQ(r.outcome, Outcome::kDetected) << r.label;
  }
}

TEST(FaultScenario, SchedulerFaultIsFunctionallyLatent) {
  exp::ScenarioSpec spec = campaign_base();
  spec.policy = sched::Policy::kSrrs;
  spec.fault = exp::FaultPlan::scheduler(0, 3);
  const exp::ScenarioResult r = exp::run_scenario(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.diverted_blocks, 0u);
  // The mapping fault diverts blocks but corrupts no data: outputs stay
  // correct and matching (why the scheduler needs the periodic BIST).
  EXPECT_TRUE(r.verified) << r.label;
  EXPECT_TRUE(r.dcls_match) << r.label;
  EXPECT_EQ(r.outcome, Outcome::kMasked) << r.label;
}

TEST(FaultScenario, FaultFreeCampaignPassesAllPolicies) {
  const exp::ScenarioSet set =
      exp::ScenarioSet::of(campaign_base())
          .sweep_policies({sched::Policy::kDefault, sched::Policy::kHalf,
                           sched::Policy::kSrrs})
          .sweep_redundancy();
  ASSERT_EQ(set.size(), 15u);  // 3 policies x 5 redundancy modes
  const exp::CampaignResult campaign = exp::CampaignRunner().run(set);
  EXPECT_TRUE(campaign.all_passed());
  for (const exp::ScenarioResult& r : campaign.results) {
    EXPECT_TRUE(r.verified) << r.label;
    EXPECT_EQ(r.corruptions, 0u) << r.label;
  }
}

}  // namespace
}  // namespace higpu::fault
