#include "workloads/dwt2d.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr float kInvSqrt2 = 0.70710678f;

/// Haar row pass over the top-left (w x h) region of a `stride`-wide image:
/// out[y][i]      = (in[y][2i] + in[y][2i+1]) * 1/sqrt(2)
/// out[y][i+w/2]  = (in[y][2i] - in[y][2i+1]) * 1/sqrt(2)
/// Params: in, out, w, h, stride. Threads: (w/2) x h.
isa::ProgramPtr build_dwt_rows() {
  using namespace isa;
  KernelBuilder kb("dwt2d_rows");

  Reg in = kb.reg(), out = kb.reg(), w = kb.reg(), h = kb.reg(),
      stride = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(out, 1);
  kb.ldp(w, 2);
  kb.ldp(h, 3);
  kb.ldp(stride, 4);

  Reg gx = kb.global_tid_x();
  Reg gy = kb.global_tid_y();
  Reg half = kb.reg();
  kb.shr(half, w, imm(1));
  Label done = kb.label();
  util::exit_if_ge(kb, gx, half, done);
  util::exit_if_ge(kb, gy, h, done);

  Reg x2 = kb.reg();
  kb.shl(x2, gx, imm(1));
  Reg a_even = util::elem_addr2d(kb, in, gy, stride, x2);
  Reg v_e = kb.reg(), v_o = kb.reg();
  kb.ldg(v_e, a_even);
  kb.ldg(v_o, a_even, 4);

  Reg lo = kb.reg(), hi = kb.reg();
  kb.fadd(lo, v_e, v_o);
  kb.fmul(lo, lo, fimm(kInvSqrt2));
  kb.fsub(hi, v_e, v_o);
  kb.fmul(hi, hi, fimm(kInvSqrt2));

  Reg a_lo = util::elem_addr2d(kb, out, gy, stride, gx);
  Reg xh = kb.reg();
  kb.iadd(xh, gx, half);
  Reg a_hi = util::elem_addr2d(kb, out, gy, stride, xh);
  kb.stg(a_lo, lo);
  kb.stg(a_hi, hi);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

/// Haar column pass (same formula down columns). Threads: w x (h/2).
isa::ProgramPtr build_dwt_cols() {
  using namespace isa;
  KernelBuilder kb("dwt2d_cols");

  Reg in = kb.reg(), out = kb.reg(), w = kb.reg(), h = kb.reg(),
      stride = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(out, 1);
  kb.ldp(w, 2);
  kb.ldp(h, 3);
  kb.ldp(stride, 4);

  Reg gx = kb.global_tid_x();
  Reg gy = kb.global_tid_y();
  Reg half = kb.reg();
  kb.shr(half, h, imm(1));
  Label done = kb.label();
  util::exit_if_ge(kb, gx, w, done);
  util::exit_if_ge(kb, gy, half, done);

  Reg y2 = kb.reg();
  kb.shl(y2, gy, imm(1));
  Reg a_even = util::elem_addr2d(kb, in, y2, stride, gx);
  Reg y2p = kb.reg();
  kb.iadd(y2p, y2, imm(1));
  Reg a_odd = util::elem_addr2d(kb, in, y2p, stride, gx);
  Reg v_e = kb.reg(), v_o = kb.reg();
  kb.ldg(v_e, a_even);
  kb.ldg(v_o, a_odd);

  Reg lo = kb.reg(), hi = kb.reg();
  kb.fadd(lo, v_e, v_o);
  kb.fmul(lo, lo, fimm(kInvSqrt2));
  kb.fsub(hi, v_e, v_o);
  kb.fmul(hi, hi, fimm(kInvSqrt2));

  Reg a_lo = util::elem_addr2d(kb, out, gy, stride, gx);
  Reg yh = kb.reg();
  kb.iadd(yh, gy, half);
  Reg a_hi = util::elem_addr2d(kb, out, yh, stride, gx);
  kb.stg(a_lo, lo);
  kb.stg(a_hi, hi);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

void haar_rows_ref(std::vector<float>& img, std::vector<float>& tmp, u32 w,
                   u32 h, u32 stride) {
  for (u32 y = 0; y < h; ++y) {
    for (u32 x = 0; x < w / 2; ++x) {
      const float e = img[y * stride + 2 * x];
      const float o = img[y * stride + 2 * x + 1];
      tmp[y * stride + x] = (e + o) * kInvSqrt2;
      tmp[y * stride + x + w / 2] = (e - o) * kInvSqrt2;
    }
  }
  for (u32 y = 0; y < h; ++y)
    for (u32 x = 0; x < w; ++x) img[y * stride + x] = tmp[y * stride + x];
}

void haar_cols_ref(std::vector<float>& img, std::vector<float>& tmp, u32 w,
                   u32 h, u32 stride) {
  for (u32 y = 0; y < h / 2; ++y) {
    for (u32 x = 0; x < w; ++x) {
      const float e = img[(2 * y) * stride + x];
      const float o = img[(2 * y + 1) * stride + x];
      tmp[y * stride + x] = (e + o) * kInvSqrt2;
      tmp[(y + h / 2) * stride + x] = (e - o) * kInvSqrt2;
    }
  }
  for (u32 y = 0; y < h; ++y)
    for (u32 x = 0; x < w; ++x) img[y * stride + x] = tmp[y * stride + x];
}

}  // namespace

void Dwt2d::setup(Scale scale, u64 seed) {
  dim_ = scale == Scale::kTest ? 32 : 256;
  levels_ = scale == Scale::kTest ? 2 : 3;
  Rng rng(seed);

  image_.resize(static_cast<size_t>(dim_) * dim_);
  for (float& v : image_) v = rng.next_float(0.0f, 255.0f);

  reference_ = image_;
  std::vector<float> tmp(reference_.size(), 0.0f);
  u32 w = dim_, h = dim_;
  for (u32 level = 0; level < levels_; ++level) {
    haar_rows_ref(reference_, tmp, w, h, dim_);
    haar_cols_ref(reference_, tmp, w, h, dim_);
    w /= 2;
    h /= 2;
  }
  result_.clear();
}

void Dwt2d::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_parse(input_bytes() * 3);  // BMP decode + component setup

  const u64 bytes = static_cast<u64>(dim_) * dim_ * 4;
  core::ReplicaPtr d_img = session.alloc(bytes);
  core::ReplicaPtr d_tmp = session.alloc(bytes);
  session.h2d(d_img, image_.data(), bytes);
  // Seed d_tmp with the image too so the ping-pong keeps the inactive
  // quadrants intact across levels.
  session.h2d(d_tmp, image_.data(), bytes);

  isa::ProgramPtr rows = build_dwt_rows();
  isa::ProgramPtr cols = build_dwt_cols();
  u32 w = dim_, h = dim_;
  core::ReplicaPtr src = d_img, dst = d_tmp;
  for (u32 level = 0; level < levels_; ++level) {
    session.launch(rows,
                   sim::Dim3{ceil_div(w / 2, 16), ceil_div(h, 16), 1},
                   sim::Dim3{16, 16, 1}, {src, dst, w, h, dim_});
    session.launch(cols,
                   sim::Dim3{ceil_div(w, 16), ceil_div(h / 2, 16), 1},
                   sim::Dim3{16, 16, 1}, {dst, src, w, h, dim_});
    w /= 2;
    h /= 2;
  }
  session.sync();

  result_.resize(static_cast<size_t>(dim_) * dim_);
  session.d2h(result_.data(), d_img, bytes);
  session.compare(d_img, bytes, result_.data());
}

bool Dwt2d::verify() const { return approx_equal(result_, reference_); }

u64 Dwt2d::input_bytes() const { return static_cast<u64>(dim_) * dim_ * 4; }
u64 Dwt2d::output_bytes() const { return input_bytes(); }

}  // namespace higpu::workloads
