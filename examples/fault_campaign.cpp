// Narrated fault-injection demo: shows, fault by fault, why the paper's
// scheduling policies turn undetectable common-cause faults into detected
// errors.
//
//   $ ./fault_campaign
#include <cstdio>

#include "core/diversity.h"
#include "core/redundant.h"
#include "fault/injector.h"
#include "isa/builder.h"

namespace {

using namespace higpu;

isa::ProgramPtr make_kernel() {
  using namespace isa;
  KernelBuilder kb("demo");
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);
  Reg acc = kb.reg(), f = kb.reg();
  kb.i2f(f, gid);
  kb.ffma(acc, f, fimm(0.01f), fimm(1.0f));
  for (int i = 0; i < 100; ++i)
    kb.ffma(acc, acc, fimm(1.000001f), fimm(0.5f));
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

struct Result {
  bool match;
  u64 corruptions;
};

Result run(sched::Policy policy, fault::FaultInjector* fi, u32 gap = 400) {
  sim::GpuParams p;
  p.launch_gap_cycles = gap;
  runtime::Device dev(p);
  if (fi) dev.gpu().set_fault_hook(fi);
  core::RedundantSession::Config cfg;
  cfg.policy = policy;
  core::RedundantSession s(dev, cfg);
  const u32 n = 12 * 128;
  core::DualPtr out = s.alloc(n * 4);
  s.launch(make_kernel(), sim::Dim3{12, 1, 1}, sim::Dim3{128, 1, 1}, {out, n});
  s.sync();
  return {s.compare(out, n * 4), fi ? fi->corruptions() : 0};
}

void report(const char* what, const Result& r) {
  std::printf("  %-46s corrupted %4llu results -> %s\n", what,
              static_cast<unsigned long long>(r.corruptions),
              r.match ? "UNDETECTED (outputs identical)"
                      : "DETECTED (outputs differ)");
}

}  // namespace

int main() {
  std::printf("Fault-injection walkthrough (paper >>IV.C)\n");
  std::printf("==========================================\n\n");

  std::printf("[1] 50-cycle chip-wide voltage droop mid-execution\n");
  for (sched::Policy p : {sched::Policy::kDefault, sched::Policy::kHalf,
                          sched::Policy::kSrrs}) {
    fault::FaultInjector fi;
    fi.arm_droop(3000, 50, 2);
    Result r = run(p, &fi);
    std::printf("  policy %-8s:", sched::policy_name(p));
    report("", r);
  }

  std::printf("\n[2] permanent defect in SM 2 (broken multiplier)\n");
  for (sched::Policy p : {sched::Policy::kHalf, sched::Policy::kSrrs}) {
    fault::FaultInjector fi;
    fi.arm_permanent_sm(2, 0, 2);
    Result r = run(p, &fi);
    std::printf("  policy %-8s:", sched::policy_name(p));
    report("", r);
  }

  std::printf("\n[3] scheduler mapping fault (blocks silently diverted)\n");
  {
    fault::FaultInjector fi;
    fi.arm_scheduler_fault(0, 3);
    Result r = run(sched::Policy::kSrrs, &fi);
    std::printf("  outputs still %s (fault is functionally latent!)\n",
                r.match ? "match" : "differ");
    std::printf("  -> this is why the global kernel scheduler needs the "
                "periodic BIST (see adas_pipeline example).\n");
  }

  std::printf("\n[4] temporal-diversity slack per policy (min cycles between "
              "corresponding instructions)\n");
  for (sched::Policy p : {sched::Policy::kDefault, sched::Policy::kHalf,
                          sched::Policy::kSrrs}) {
    sim::GpuParams gp;
    runtime::Device dev(gp);
    core::InstrTraceCollector tc;
    dev.gpu().set_trace_sink(&tc);
    core::RedundantSession::Config cfg;
    cfg.policy = p;
    core::RedundantSession s(dev, cfg);
    const u32 n = 12 * 128;
    core::DualPtr out = s.alloc(n * 4);
    s.launch(make_kernel(), sim::Dim3{12, 1, 1}, sim::Dim3{128, 1, 1},
             {out, n});
    s.sync();
    const auto [ida, idb] = s.pairs()[0];
    const auto rep = tc.slack(ida, idb, 50);
    std::printf("  policy %-8s: min slack %6llu cycles, %llu instruction "
                "pairs within a 50-cycle droop\n",
                sched::policy_name(p),
                static_cast<unsigned long long>(rep.min_slack),
                static_cast<unsigned long long>(rep.exposed));
  }

  std::printf("\nconclusion: SRRS/HALF guarantee that no single transient or "
              "permanent fault can corrupt both redundant copies identically; "
              "the default scheduler cannot.\n");
  return 0;
}
