// Set-associative cache tag array with true-LRU replacement.
//
// This models tags/state only; data always lives in the functional global
// store. Timing is composed by MemHierarchy.
#pragma once

#include <optional>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"

namespace higpu::memsys {

/// Result of a cache access.
struct CacheAccessResult {
  bool hit = false;
  /// Line address of a dirty line evicted by the fill (if any).
  std::optional<u64> writeback_line;
};

class SetAssocCache {
 public:
  /// size/line_bytes must be divisible by assoc.
  SetAssocCache(u32 size_bytes, u32 assoc, u32 line_bytes);

  /// Probe + fill on miss. `is_write` marks the line dirty.
  CacheAccessResult access(u64 line_addr, bool is_write);

  /// Hit-path-only access: if the line is present, refresh its LRU state
  /// (and mark it dirty when requested) and return true; a miss changes
  /// nothing. Lets MemHierarchy defer fills to MSHR completion.
  bool touch(u64 line_addr, bool mark_dirty);

  /// Probe without state change.
  bool probe(u64 line_addr) const;

  /// Invalidate everything (e.g. between independent simulations).
  void clear();

  /// Drop one line if present, returning whether it was dirty.
  bool invalidate_line(u64 line_addr);

  u32 num_sets() const { return num_sets_; }
  u32 assoc() const { return assoc_; }

  // Checkpoint: the tag array set-by-set (fixed-size records so a snapshot
  // diff can name the first divergent set), then the LRU use counter.
  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);
  /// Serialized bytes per set — the snapshot section's record size.
  u64 set_record_bytes() const { return 18ull * assoc_; }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    u64 tag = 0;
    u64 lru = 0;  // larger = more recently used
  };

  u32 set_of(u64 line_addr) const { return static_cast<u32>(line_addr % num_sets_); }
  u64 tag_of(u64 line_addr) const { return line_addr / num_sets_; }

  u32 num_sets_;
  u32 assoc_;
  u64 use_counter_ = 0;
  std::vector<Way> ways_;  // num_sets_ * assoc_
};

}  // namespace higpu::memsys
