#include "workloads/pathfinder.h"

#include <algorithm>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

/// dst[x] = data[row][x] + min(src[x-1], src[x], src[x+1]) (clamped).
isa::ProgramPtr build_pathfinder_kernel() {
  using namespace isa;
  KernelBuilder kb("pathfinder_row");

  Reg src = kb.reg(), dst = kb.reg(), data = kb.reg(), cols = kb.reg(),
      row = kb.reg();
  kb.ldp(src, 0);
  kb.ldp(dst, 1);
  kb.ldp(data, 2);
  kb.ldp(cols, 3);
  kb.ldp(row, 4);

  Reg x = kb.global_tid_x();
  Label done = kb.label();
  util::exit_if_ge(kb, x, cols, done);

  Reg cm1 = kb.reg(), xm = kb.reg(), xp = kb.reg(), t = kb.reg();
  kb.isub(cm1, cols, imm(1));
  kb.isub(t, x, imm(1));
  kb.imax(xm, t, imm(0));
  kb.iadd(t, x, imm(1));
  kb.imin(xp, t, cm1);

  Reg a_m = util::elem_addr(kb, src, xm);
  Reg a_c = util::elem_addr(kb, src, x);
  Reg a_p = util::elem_addr(kb, src, xp);
  Reg vm = kb.reg(), vc = kb.reg(), vp = kb.reg(), best = kb.reg();
  kb.ldg(vm, a_m);
  kb.ldg(vc, a_c);
  kb.ldg(vp, a_p);
  kb.imin(best, vm, vc);
  kb.imin(best, best, vp);

  Reg a_d = util::elem_addr2d(kb, data, row, cols, x);
  Reg w = kb.reg();
  kb.ldg(w, a_d);
  kb.iadd(best, best, w);
  Reg a_o = util::elem_addr(kb, dst, x);
  kb.stg(a_o, best);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Pathfinder::setup(Scale scale, u64 seed) {
  cols_ = scale == Scale::kTest ? 1024 : 16384;
  rows_ = scale == Scale::kTest ? 8 : 32;
  Rng rng(seed);

  data_.resize(static_cast<size_t>(rows_) * cols_);
  for (i32& v : data_) v = static_cast<i32>(rng.next_below(10));

  // Reference DP.
  std::vector<i32> cur(data_.begin(), data_.begin() + cols_);
  std::vector<i32> next(cols_);
  for (u32 r = 1; r < rows_; ++r) {
    for (u32 x = 0; x < cols_; ++x) {
      const u32 xm = x == 0 ? 0 : x - 1;
      const u32 xp = x == cols_ - 1 ? cols_ - 1 : x + 1;
      const i32 best = std::min({cur[xm], cur[x], cur[xp]});
      next[x] = best + data_[static_cast<size_t>(r) * cols_ + x];
    }
    std::swap(cur, next);
  }
  reference_ = cur;
  result_.clear();
}

void Pathfinder::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_generate(input_bytes() * 4);  // rand() loop synthesis

  const u64 row_bytes = static_cast<u64>(cols_) * 4;
  const u64 data_bytes = static_cast<u64>(rows_) * cols_ * 4;
  core::ReplicaPtr d_data = session.alloc(data_bytes);
  core::ReplicaPtr d_a = session.alloc(row_bytes);
  core::ReplicaPtr d_b = session.alloc(row_bytes);
  session.h2d(d_data, data_.data(), data_bytes);
  session.h2d(d_a, data_.data(), row_bytes);  // row 0 seeds the DP

  isa::ProgramPtr prog = build_pathfinder_kernel();
  core::ReplicaPtr src = d_a, dst = d_b;
  for (u32 r = 1; r < rows_; ++r) {
    session.launch(prog, sim::Dim3{ceil_div(cols_, 256), 1, 1},
                   sim::Dim3{256, 1, 1}, {src, dst, d_data, cols_, r});
    std::swap(src, dst);
  }
  session.sync();

  result_.resize(cols_);
  session.d2h(result_.data(), src, row_bytes);
  session.compare(src, row_bytes, result_.data());
}

bool Pathfinder::verify() const { return result_ == reference_; }

u64 Pathfinder::input_bytes() const {
  return static_cast<u64>(rows_) * cols_ * 4;
}
u64 Pathfinder::output_bytes() const { return static_cast<u64>(cols_) * 4; }

}  // namespace higpu::workloads
