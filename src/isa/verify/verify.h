// Static ISA program verifier: multi-pass analysis over a KernelProgram
// that proves it safe to execute before the simulator trusts it.
//
// Every kernel entering the simulator today is trusted blindly — hand-built
// workloads, fuzz-generated programs, and (soon) binary-loaded kernels. The
// verifier turns malformed programs into structured diagnostics instead of
// silent state corruption inside a safety-critical redundancy simulator:
//
//   1. structural     — branch targets in range, every path reaches kExit,
//                       no fall-off-the-end, operand kinds legal per opcode
//                       (kLdp param index an in-range immediate, kSelp has a
//                       predicate source, ...).
//   2. resource       — GPR / predicate indices vs the program's declared
//                       register-file sizes: the defect class behind PR 6's
//                       NDEBUG-masked predicate-file overflows, caught
//                       statically instead of at runtime-if-asserts-on.
//   3. dataflow       — forward def-before-use over the CFG. A read of a
//                       register no instruction ever writes is an error (a
//                       determinism hazard under redundant execution, since
//                       uninitialized register files can diverge across
//                       copies); a read only some paths initialize is a
//                       warning.
//   4. barrier safety — kBar reachable under divergent guarded control flow
//                       (a guard tainted by tid/laneid/atomics, checked
//                       against the same IPDOM reconvergence structure the
//                       SIMT stack uses) deadlocks the block: some lanes
//                       wait forever at the barrier. Flagged as an error.
//   5. memory bounds  — interval abstract interpretation over tid / ctaid /
//                       param-derived address arithmetic proving kLds/kSts
//                       inside the declared shared segment and flagging
//                       provably out-of-bounds kLdg/kStg.
//
// Pass order matters: the CFG-based passes (3-5) require the structural
// invariants pass 1 checks (isa::Cfg asserts them), so a structural error
// skips them — the structural diagnostics are the result.
//
// verify() never throws on malformed input: malformed-ness is the output.
// The launch gate (runtime::Device::launch, sim::GpuParams::verify) wraps
// an erroring Result in a VerifyError instead of running the program.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace higpu::isa::verify {

enum class Severity : u8 { kError, kWarning, kNote };

/// Stable diagnostic codes (kebab-case names via code_name). Each code is
/// pinned by a trigger + near-miss pair in tests/verify_test.cpp; the README
/// "Static verification" section is the user-facing catalog.
enum class Code : u8 {
  // Pass 1: structural.
  kEmptyProgram,      // program has no instructions
  kBadBranchTarget,   // kBra target outside the program
  kFallOffEnd,        // a path runs past the last instruction
  kNoPathToExit,      // reachable code that can never reach kExit
  kUnreachableCode,   // warning: instructions no path from entry executes
  kGuardedExitOrBar,  // kExit/kBar carries a guard predicate
  kBadOperand,        // operand shape illegal for the opcode
  kBadParamIndex,     // kLdp index not an immediate or >= num_params
  // Pass 2: resource bounds.
  kRegOutOfRange,   // GPR index >= num_regs
  kPredOutOfRange,  // predicate index >= num_preds
  // Pass 3: dataflow.
  kUninitRegRead,    // read of a GPR no instruction writes
  kUninitPredRead,   // read of a predicate no instruction writes
  kMaybeUninitRead,  // warning: read initialized on some paths only
  // Pass 4: barrier safety.
  kBarrierDivergence,  // kBar under tid-divergent control flow (deadlock)
  // Pass 5: memory bounds.
  kSharedOutOfBounds,       // every possible kLds/kSts address is OOB
  kSharedMaybeOutOfBounds,  // warning: bounded address range overruns
  kGlobalOutOfBounds,       // provably OOB kLdg/kStg/kAtomAdd
};

const char* code_name(Code c);
const char* severity_name(Severity s);

/// Block id for diagnostics raised before a CFG exists.
constexpr u32 kNoBlock = 0xFFFFFFFF;

/// One diagnostic. `pc` indexes the program's instruction vector; `block`
/// is the CFG block id (kNoBlock for structural diagnostics, which are
/// raised before a CFG can be built).
struct Diag {
  Severity severity = Severity::kError;
  Pc pc = 0;
  u32 block = kNoBlock;
  Code code = Code::kEmptyProgram;
  std::string message;
  std::string hint;
};

/// Optional launch context that sharpens the analysis. Everything defaults
/// to "unknown": the memory-bounds pass treats unknown dimensions as
/// unbounded and unknown parameters as symbolic, so a Result computed
/// without parameter values stays sound for every parameter assignment —
/// which is what lets the launch gate memoize per (program, grid, block).
struct LaunchBounds {
  u32 ntid_x = 0, ntid_y = 0, ntid_z = 0;        // block dims; 0 = unknown
  u32 nctaid_x = 0, nctaid_y = 0, nctaid_z = 0;  // grid dims; 0 = unknown
  /// Concrete parameter words (null = symbolic parameters).
  const std::vector<u32>* params = nullptr;
  /// Global-store extent in bytes (0 = unknown): enables provable-OOB
  /// checks on param-derived global addresses in tests and tools.
  u64 global_extent = 0;
};

struct Result {
  std::string kernel;
  std::vector<Diag> diags;

  /// True when no diagnostic is error-severity (warnings/notes allowed).
  bool ok() const;
  /// True when executing the program would index host memory out of bounds:
  /// the simulator's hot paths (code fetch, Warp::reg_at/pred_at, parameter
  /// loads) deliberately trust the static indices the structural and
  /// resource passes prove in range, so these diagnostic classes make a
  /// launch unsafe in every build — the gate refuses them even under
  /// LaunchVerify::kWarn. Merely-wrong programs (uninit reads, barrier
  /// deadlocks, modelled-memory OOB) are not in this set: they corrupt
  /// simulated state, not the host.
  bool unsafe_to_execute() const;
  u32 count(Severity s) const;
  bool has(Code c) const;

  /// Machine-readable report:
  ///   {"kernel":"...","ok":false,"errors":1,"warnings":0,"diags":[
  ///    {"severity":"error","code":"reg-out-of-range","pc":3,"block":0,
  ///     "message":"...","hint":"..."}]}
  std::string to_json() const;
  /// Human-readable report, one diagnostic per line.
  std::string to_string() const;
};

/// Run every pass over `program`. Never throws: a malformed program is a
/// Result carrying error diagnostics.
Result verify(const KernelProgram& program, const LaunchBounds& bounds = {});

/// Thrown by the launch gate when an erroring program is refused. Carries
/// the full structured Result; what() embeds the human-readable report.
class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(Result result);
  const Result& result() const { return result_; }

 private:
  Result result_;
};

}  // namespace higpu::isa::verify
