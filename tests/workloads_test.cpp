// Every workload must produce correct results (vs its CPU reference) in
// baseline mode and under each redundancy policy, with matching redundant
// outputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "exp/campaign.h"
#include "workloads/workload.h"

namespace higpu::workloads {
namespace {

exp::ScenarioSpec spec_for(const std::string& name, sched::Policy policy,
                           bool redundant, u64 seed) {
  exp::ScenarioSpec spec;
  spec.workload = name;
  spec.scale = Scale::kTest;
  spec.seed = seed;
  spec.policy = policy;
  spec.redundancy = redundant ? core::RedundancySpec::dcls()
                               : core::RedundancySpec::baseline();
  return spec;
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadCorrectness, BaselineMatchesCpuReference) {
  const exp::ScenarioResult r = exp::run_scenario(
      spec_for(GetParam(), sched::Policy::kDefault, false, /*seed=*/1234));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.verified) << GetParam() << " baseline output wrong";
}

TEST_P(WorkloadCorrectness, SrrsRedundantPairMatches) {
  const exp::ScenarioResult r = exp::run_scenario(
      spec_for(GetParam(), sched::Policy::kSrrs, true, /*seed=*/99));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.verified) << GetParam() << " output wrong under SRRS";
  EXPECT_TRUE(r.dcls_match)
      << GetParam() << " redundant copies diverged under SRRS";
  EXPECT_GT(r.comparisons, 0u);
}

TEST_P(WorkloadCorrectness, HalfRedundantPairMatches) {
  const exp::ScenarioResult r = exp::run_scenario(
      spec_for(GetParam(), sched::Policy::kHalf, true, /*seed=*/7));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.verified) << GetParam() << " output wrong under HALF";
  EXPECT_TRUE(r.dcls_match)
      << GetParam() << " redundant copies diverged under HALF";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCorrectness,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           // gtest names must be alphanumeric ("b+tree").
                           std::string name = info.param;
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return name;
                         });

TEST(WorkloadRegistry, Fig4SubsetIsImplemented) {
  const auto names = all_names();
  for (const std::string& n : fig4_names())
    EXPECT_NE(std::find(names.begin(), names.end(), n), names.end()) << n;
  EXPECT_EQ(fig4_names().size(), 11u);  // the paper's simulated subset
}

TEST(WorkloadRegistry, FullSuiteIncludesCotsOnlyBenchmarks) {
  const auto names = all_names();
  EXPECT_EQ(names.size(), 19u);
  for (const char* extra :
       {"cfd", "streamcluster", "kmeans", "pathfinder", "srad", "lavaMD",
        "particlefilter", "b+tree"})
    EXPECT_NE(std::find(names.begin(), names.end(), extra), names.end());
}

TEST(WorkloadRegistry, UnknownNameThrowsListingValidNames) {
  try {
    make("no_such_workload");
    FAIL() << "make() must throw for unknown names";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_workload"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hotspot"), std::string::npos)
        << "message must list the valid names: " << msg;
  }
  EXPECT_TRUE(is_known("hotspot"));
  EXPECT_FALSE(is_known("no_such_workload"));
}

TEST(WorkloadRegistry, ScaleNamesRoundTrip) {
  EXPECT_EQ(parse_scale("test"), Scale::kTest);
  EXPECT_EQ(parse_scale("bench"), Scale::kBench);
  EXPECT_STREQ(scale_name(Scale::kTest), "test");
  EXPECT_STREQ(scale_name(Scale::kBench), "bench");
  EXPECT_THROW(parse_scale("huge"), std::invalid_argument);
}

TEST(WorkloadHelpers, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0f, 1.0f));
  EXPECT_TRUE(approx_equal(1000.0f, 1000.5f, 1e-3f));
  EXPECT_FALSE(approx_equal(1.0f, 1.1f, 1e-3f));
  EXPECT_FALSE(approx_equal(std::nanf(""), 1.0f));
  EXPECT_FALSE(approx_equal({1.0f, 2.0f}, {1.0f}));
  EXPECT_TRUE(approx_equal({1.0f, 2.0f}, {1.0f, 2.0f}));
}

TEST(WorkloadHelpers, BitCastRoundTrip) {
  const std::vector<float> f = {1.5f, -2.25f, 0.0f};
  EXPECT_EQ(from_bits(to_bits(f)), f);
}

TEST(WorkloadDeterminism, SameSeedSameResults) {
  auto run_once = [] {
    const exp::ScenarioResult r = exp::run_scenario(
        spec_for("hotspot", sched::Policy::kSrrs, false, /*seed=*/42));
    return std::make_pair(r.elapsed_ns, r.kernel_cycles);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WorkloadMetadata, ByteCountsArePositive) {
  for (const std::string& n : all_names()) {
    WorkloadPtr w = make(n);
    w->setup(Scale::kTest, 1);
    EXPECT_GT(w->input_bytes(), 0u) << n;
    EXPECT_GT(w->output_bytes(), 0u) << n;
    EXPECT_EQ(w->name(), n);
  }
}

}  // namespace
}  // namespace higpu::workloads
