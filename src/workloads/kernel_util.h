// Small builder idioms shared across workload kernels.
#pragma once

#include "isa/builder.h"

namespace higpu::workloads::util {

/// Byte address of element `index` (32-bit) in array at `base`.
inline isa::Reg elem_addr(isa::KernelBuilder& kb, isa::Reg base,
                          isa::Operand index) {
  isa::Reg a = kb.reg();
  kb.imad(a, index, isa::imm(4), base);
  return a;
}

/// Byte address of element [row][col] in a row-major matrix of `ncols`.
inline isa::Reg elem_addr2d(isa::KernelBuilder& kb, isa::Reg base,
                            isa::Operand row, isa::Operand ncols,
                            isa::Operand col) {
  isa::Reg lin = kb.reg(), a = kb.reg();
  kb.imad(lin, row, ncols, col);
  kb.imad(a, lin, isa::imm(4), base);
  return a;
}

/// Emit "if (gid >= bound) { exit }" using a dedicated exit label that the
/// caller must bind at the end (before kb.exit()).
inline void exit_if_ge(isa::KernelBuilder& kb, isa::Reg v, isa::Operand bound,
                       isa::Label exit_label) {
  isa::PredReg p = kb.pred();
  kb.setp(p, isa::CmpOp::kGe, isa::DType::kI32, v, bound);
  kb.bra(exit_label).guard_if(p);
}

}  // namespace higpu::workloads::util
