// Distributed campaign service tests.
//
// The headline pin is the determinism contract: dist::run_distributed
// produces results bit-identical (ScenarioResult::deterministic_fields_equal)
// to CampaignRunner jobs=1 at any worker count, under work stealing, across
// a worker SIGKILL mid-campaign, and across a simulated coordinator crash
// plus journal resume. Around it: the higpu.wire/1 frame and payload codecs
// (corruption is loud, never misinterpreted), wire-framed snapshot
// round-trips with per-section integrity (a corrupted section is named),
// JSONL result round-trips including control characters in error strings,
// journal scan/resume semantics (torn tails tolerated, corrupted records
// named, foreign campaigns refused, only missing scenarios re-executed),
// and cross-process snapshot portability through the campaign_worker file
// mode (a parameter-mismatched snapshot is refused cleanly).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/wire.h"
#include "dist/coordinator.h"
#include "dist/journal.h"
#include "dist/protocol.h"
#include "exp/campaign.h"
#include "exp/result_io.h"

namespace higpu {
namespace {

using exp::FaultPlan;
using exp::ScenarioResult;
using exp::ScenarioSet;
using exp::ScenarioSpec;
using exp::SnapshotIo;

ScenarioSpec test_spec(const std::string& workload) {
  ScenarioSpec s;
  s.workload = workload;
  s.scale = workloads::Scale::kTest;
  return s;
}

/// A small campaign that exercises every dispatch shape: fault-free
/// singletons, and a same_but_fault group (clean member + two faults) that
/// gets a shared base run and snapshot-carrying forks.
ScenarioSet mixed_set() {
  ScenarioSet set = ScenarioSet::of(test_spec("hotspot"))
                        .sweep_faults({FaultPlan::none(),
                                       FaultPlan::droop(2000, 50, 2),
                                       FaultPlan::transient_sm(1, 3000, 40, 3)});
  set.add(test_spec("pathfinder"));
  set.add(test_spec("nw"));
  return set;
}

exp::CampaignResult golden_jobs1(const ScenarioSet& set) {
  exp::CampaignRunner::Config cfg;
  cfg.jobs = 1;
  return exp::CampaignRunner(cfg).run(set);
}

void expect_equals_golden(const exp::CampaignResult& got,
                          const exp::CampaignResult& golden) {
  ASSERT_EQ(got.results.size(), golden.results.size());
  for (size_t i = 0; i < golden.results.size(); ++i)
    EXPECT_TRUE(
        got.results[i].deterministic_fields_equal(golden.results[i]))
        << "scenario " << i << " (" << golden.results[i].label
        << ") differs from the jobs=1 golden";
}

std::string tmp_path(const std::string& stem) {
  return "/tmp/higpu_dist_test_" + std::to_string(::getpid()) + "_" + stem;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

// ---- Wire frames -----------------------------------------------------------

TEST(WireFrame, RoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  const std::vector<u8> payload = {1, 2, 3, 250, 0, 42};
  dist::send_frame(sv[0], dist::Msg::kResult, payload);
  dist::send_frame(sv[0], dist::Msg::kHeartbeat, {});
  dist::Frame f;
  ASSERT_TRUE(dist::recv_frame(sv[1], &f));
  EXPECT_EQ(dist::Msg::kResult, f.type);
  EXPECT_EQ(payload, f.payload);
  ASSERT_TRUE(dist::recv_frame(sv[1], &f));
  EXPECT_EQ(dist::Msg::kHeartbeat, f.type);
  EXPECT_TRUE(f.payload.empty());
  // Clean EOF at a frame boundary is "peer exited", not an error.
  ::close(sv[0]);
  EXPECT_FALSE(dist::recv_frame(sv[1], &f));
  ::close(sv[1]);
}

TEST(WireFrame, CorruptedPayloadIsLoud) {
  int raw[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, raw));
  const std::vector<u8> payload = {10, 20, 30, 40};
  dist::send_frame(raw[0], dist::Msg::kWork, payload);
  const size_t frame_len = 13 + payload.size() + 8;
  std::vector<u8> bytes(frame_len);
  size_t done = 0;
  while (done < frame_len) {
    const ssize_t n = ::read(raw[1], bytes.data() + done, frame_len - done);
    ASSERT_GT(n, 0);
    done += static_cast<size_t>(n);
  }
  ::close(raw[0]);
  ::close(raw[1]);

  bytes[13 + 1] ^= 0xFF;  // flip one payload byte
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  ASSERT_EQ(static_cast<ssize_t>(bytes.size()),
            ::write(sv[0], bytes.data(), bytes.size()));
  dist::Frame f;
  try {
    dist::recv_frame(sv[1], &f);
    FAIL() << "corrupted frame was accepted";
  } catch (const dist::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  ::close(sv[0]);
  ::close(sv[1]);

  // Torn frame (peer died mid-write) is an error, not a clean EOF.
  int sv2[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv2));
  ASSERT_EQ(5, ::write(sv2[0], bytes.data(), 5));
  ::close(sv2[0]);
  EXPECT_THROW(dist::recv_frame(sv2[1], &f), dist::WireError);
  ::close(sv2[1]);
}

// ---- ScenarioSpec codec ----------------------------------------------------

TEST(WireSpec, RoundTripPreservesEveryField) {
  ScenarioSpec spec = test_spec("srad");
  spec.seed = 777;
  spec.gpu.engine = sim::SimEngine::kDense;
  spec.gpu.exec_mode = sim::ExecMode::kInterp;
  spec.gpu.verify = sim::LaunchVerify::kWarn;
  spec.gpu.num_sms = 4;
  spec.gpu.sp_latency = 7;
  spec.gpu.clock_ghz = 1.9;
  spec.gpu.mem.l1_write_policy = memsys::WritePolicy::kWriteThrough;
  spec.gpu.mem.l1_write_alloc = memsys::WriteAlloc::kNoAllocate;
  spec.gpu.mem.l1_mshr_entries = 4;
  spec.gpu.mem.dram_row_bytes = 4096;
  spec.platform.pcie_h2d_gbps = 7.5;
  spec.platform.launch_ns = 1234;
  spec.policy = sched::Policy::kHalf;
  spec.redundancy.n_copies = 3;
  spec.redundancy.compare = core::RedundancySpec::Compare::kMajorityVote;
  spec.redundancy.tolerance = 0.25f;
  spec.redundancy.srrs_starts = {0, 2, 4};
  spec.redundancy.recovery = core::RedundancySpec::Recovery::kRetry;
  spec.redundancy.max_retries = 5;
  spec.redundancy.ftti_ns = 42'000'000;
  spec.fault = FaultPlan::permanent_sm(2, 5000, 7);
  spec.ckpt = ckpt::CheckpointPolicy::interval(4096);

  ckpt::Writer w;
  dist::put_spec(w, spec);
  const std::vector<u8> blob = w.take_blob();
  ckpt::Reader r(blob, {});
  const ScenarioSpec back = dist::get_spec(r);
  EXPECT_TRUE(spec == back);
  EXPECT_EQ(spec.label(), back.label());
}

TEST(WireSpec, CampaignFingerprintTracksContent) {
  const ScenarioSet a = mixed_set();
  const ScenarioSet b = mixed_set();
  EXPECT_EQ(dist::campaign_fingerprint(a), dist::campaign_fingerprint(b));
  ScenarioSet c = mixed_set();
  c.add(test_spec("bfs"));
  EXPECT_NE(dist::campaign_fingerprint(a), dist::campaign_fingerprint(c));
}

// ---- Snapshot wire framing (satellites 1 and 3) ----------------------------

/// Capture a mid-run snapshot of the clean hotspot scenario at the fault
/// group's injection cycle, plus the clean final state.
void capture_base(ckpt::SnapshotPtr* snap, ckpt::SnapshotPtr* final_state) {
  SnapshotIo io;
  io.capture_targets = {2000};
  const ScenarioResult r =
      exp::run_scenario(test_spec("hotspot"), 0, nullptr, nullptr, &io);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(1u, io.captured.size());
  ASSERT_NE(nullptr, io.captured[0]);
  *snap = io.captured[0];
  *final_state = io.final_state;
}

TEST(SnapshotWire, EncodeDecodeRestoreRoundTrip) {
  ckpt::SnapshotPtr snap, final_state;
  capture_base(&snap, &final_state);

  const std::vector<u8> framed = ckpt::encode_snapshot(*snap);
  const ckpt::SnapshotPtr back = ckpt::decode_snapshot(framed);
  ASSERT_NE(nullptr, back);
  EXPECT_EQ(snap->cycle, back->cycle);
  EXPECT_EQ(snap->sync_seq, back->sync_seq);
  EXPECT_EQ(snap->launch_count, back->launch_count);
  EXPECT_EQ(snap->blob, back->blob);
  EXPECT_EQ(snap->hash(), back->hash());
  EXPECT_EQ(snap->programs.size(), back->programs.size());

  // The decoded snapshot must actually *work*: a fault fork resumed from it
  // is bit-identical to one resumed from the original.
  ScenarioSpec fork = test_spec("hotspot");
  fork.fault = FaultPlan::droop(2000, 50, 2);
  SnapshotIo io_orig;
  io_orig.resume = snap;
  const ScenarioResult from_orig =
      exp::run_scenario(fork, 0, nullptr, nullptr, &io_orig);
  SnapshotIo io_back;
  io_back.resume = back;
  const ScenarioResult from_back =
      exp::run_scenario(fork, 0, nullptr, nullptr, &io_back);
  ASSERT_TRUE(from_orig.ok) << from_orig.error;
  ASSERT_TRUE(from_back.ok) << from_back.error;
  EXPECT_TRUE(from_orig.deterministic_fields_equal(from_back));
}

TEST(SnapshotWire, CorruptedSectionIsNamed) {
  ckpt::SnapshotPtr snap, final_state;
  capture_base(&snap, &final_state);
  ASSERT_FALSE(snap->sections.empty());

  // Corrupt one byte inside the first section *before* framing: the frame
  // checksum then matches what was sent, and the per-section integrity
  // check must catch it and name the section.
  ckpt::Snapshot mutated = *snap;
  const ckpt::Section& victim = mutated.sections.front();
  ASSERT_GT(victim.len, 0u);
  mutated.blob[victim.offset] ^= 0xFF;
  const std::vector<u8> framed = ckpt::encode_snapshot(mutated);
  try {
    ckpt::decode_snapshot(framed);
    FAIL() << "corrupted section was accepted";
  } catch (const ckpt::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find(victim.name), std::string::npos)
        << "diagnostic does not name the corrupted section: " << e.what();
  }

  // Corruption of the frame itself (transit damage) is caught by the frame
  // checksum; truncation is caught before that.
  std::vector<u8> damaged = ckpt::encode_snapshot(*snap);
  damaged[damaged.size() / 2] ^= 0x01;
  EXPECT_THROW(ckpt::decode_snapshot(damaged), ckpt::SnapshotError);
  std::vector<u8> truncated = ckpt::encode_snapshot(*snap);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(ckpt::decode_snapshot(truncated), ckpt::SnapshotError);
}

TEST(SnapshotWire, FileRoundTripAndWorkItemCodec) {
  ckpt::SnapshotPtr snap, final_state;
  capture_base(&snap, &final_state);
  const std::string path = tmp_path("snap.bin");
  ckpt::write_snapshot_file(path, *snap);
  const ckpt::SnapshotPtr back = ckpt::read_snapshot_file(path);
  EXPECT_EQ(snap->blob, back->blob);
  std::remove(path.c_str());

  dist::WorkItem item;
  item.unit_id = 7;
  item.index = 3;
  item.spec = test_spec("hotspot");
  item.spec.fault = FaultPlan::droop(2000, 50, 2);
  item.resume = snap;
  item.divergence_ref = final_state;
  const dist::WorkItem got = dist::decode_work(dist::encode_work(item));
  EXPECT_EQ(7u, got.unit_id);
  EXPECT_EQ(3u, got.index);
  EXPECT_TRUE(item.spec == got.spec);
  ASSERT_NE(nullptr, got.resume);
  EXPECT_EQ(snap->blob, got.resume->blob);
  ASSERT_NE(nullptr, got.divergence_ref);
  EXPECT_EQ(final_state->blob, got.divergence_ref->blob);

  dist::WorkItem bare;
  bare.index = 1;
  bare.spec = test_spec("nw");
  const dist::WorkItem got_bare = dist::decode_work(dist::encode_work(bare));
  EXPECT_EQ(nullptr, got_bare.resume);
  EXPECT_EQ(nullptr, got_bare.divergence_ref);
}

// ---- JSONL result records (satellite 2) ------------------------------------

TEST(ResultJsonl, RoundTripIsDeterministicallyEqual) {
  const ScenarioResult r =
      exp::run_scenario(test_spec("hotspot"), 5, nullptr, nullptr, nullptr);
  ASSERT_TRUE(r.ok) << r.error;
  const std::string line = exp::result_to_jsonl(r);
  EXPECT_EQ(std::string::npos, line.find('\n')) << "record spans lines";
  const ScenarioResult back = exp::result_from_jsonl(line);
  EXPECT_TRUE(r.deterministic_fields_equal(back));
  EXPECT_EQ(r.stats, back.stats);
  // And the JSONL layer is idempotent: re-serializing the parsed record
  // yields the identical line.
  EXPECT_EQ(line, exp::result_to_jsonl(back));
}

TEST(ResultJsonl, EscapesControlCharactersAndQuotes) {
  // The satellite pin: an error string carrying a newline, a quote and a
  // backslash must survive a JSONL round trip on one line.
  ScenarioResult r;
  r.index = 9;
  r.workload = "hotspot";
  r.label = "hotspot:test:seed2019:srrs:red:nofault";
  r.ok = false;
  r.error = "device said \"no\"\n\tat cycle 42 (path C:\\tmp)";
  r.outcome = fault::Outcome::kDetected;
  const std::string line = exp::result_to_jsonl(r);
  EXPECT_EQ(std::string::npos, line.find('\n'));
  EXPECT_EQ(std::string::npos, line.find('\t'));
  const ScenarioResult back = exp::result_from_jsonl(line);
  EXPECT_EQ(r.error, back.error);
  EXPECT_TRUE(r.deterministic_fields_equal(back));
}

TEST(ResultJsonl, MalformedRecordIsLoud) {
  EXPECT_THROW(exp::result_from_jsonl("{\"index\":}"), std::exception);
  EXPECT_THROW(exp::result_from_jsonl("not json at all"), std::exception);
  EXPECT_THROW(exp::result_from_jsonl("{}"), std::exception);  // no fields
}

// ---- Journal ---------------------------------------------------------------

TEST(Journal, WriteScanRoundTrip) {
  const std::string path = tmp_path("journal.jsonl");
  const ScenarioResult r0 =
      exp::run_scenario(test_spec("hotspot"), 0, nullptr, nullptr, nullptr);
  const ScenarioResult r2 =
      exp::run_scenario(test_spec("nw"), 2, nullptr, nullptr, nullptr);
  {
    dist::Journal j = dist::Journal::create(path, 0xABCD, 4);
    j.add(r0);
    j.add(r2);
    EXPECT_EQ(2u, j.records_written());
  }
  const dist::Scan scan = dist::scan_journal(path);
  EXPECT_EQ(0xABCDu, scan.fingerprint);
  EXPECT_EQ(4u, scan.scenarios);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(2u, scan.results.size());
  EXPECT_TRUE(scan.results.at(0).deterministic_fields_equal(r0));
  EXPECT_TRUE(scan.results.at(2).deterministic_fields_equal(r2));
  std::remove(path.c_str());
}

TEST(Journal, TornTailToleratedCorruptionNamed) {
  const std::string path = tmp_path("torn.jsonl");
  const ScenarioResult r0 =
      exp::run_scenario(test_spec("hotspot"), 0, nullptr, nullptr, nullptr);
  {
    dist::Journal j = dist::Journal::create(path, 1, 3);
    j.add(r0);
  }
  // SIGKILL artifact: a record torn mid-write, no trailing newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"index\":1,\"label\":\"half-writ";
  }
  const dist::Scan scan = dist::scan_journal(path);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(1u, scan.results.size());

  // A *complete* malformed line is corruption and must be named.
  write_text(path,
             "{\"schema\":\"higpu.campaign.jsonl/1\",\"fingerprint\":1,"
             "\"scenarios\":3}\n"
             "{\"index\":oops}\n");
  try {
    dist::scan_journal(path);
    FAIL() << "corrupted journal record was accepted";
  } catch (const dist::JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos)
        << e.what();
  }

  // Wrong schema and an out-of-range index are refused too.
  write_text(path, "{\"schema\":\"something.else/9\",\"fingerprint\":1,"
                   "\"scenarios\":3}\n");
  EXPECT_THROW(dist::scan_journal(path), dist::JournalError);
  std::remove(path.c_str());
}

TEST(Journal, DisagreeingDuplicateIsRefused) {
  const std::string path = tmp_path("dup.jsonl");
  ScenarioResult a =
      exp::run_scenario(test_spec("hotspot"), 0, nullptr, nullptr, nullptr);
  {
    dist::Journal j = dist::Journal::create(path, 1, 2);
    j.add(a);
    j.add(a);  // identical duplicate: fine (redispatch race)
  }
  EXPECT_EQ(1u, dist::scan_journal(path).results.size());
  ScenarioResult b = a;
  b.kernel_cycles += 1;  // same index, different deterministic fields
  {
    dist::Journal j = dist::Journal::append_to(path);
    j.add(b);
  }
  EXPECT_THROW(dist::scan_journal(path), dist::JournalError);
  std::remove(path.c_str());
}

// ---- The determinism contract ----------------------------------------------

TEST(Distributed, BitIdenticalAtAnyWorkerCount) {
  const ScenarioSet set = mixed_set();
  const exp::CampaignResult golden = golden_jobs1(set);
  for (u32 workers : {1u, 2u, 4u}) {
    dist::DistConfig cfg;
    cfg.workers = workers;
    const dist::DistReport rep = dist::run_distributed(set, cfg);
    EXPECT_FALSE(rep.stopped_early);
    EXPECT_EQ(0u, rep.workers_died) << "workers=" << workers;
    expect_equals_golden(rep.campaign, golden);
    if (workers >= 2) {
      // The fault forks of the hotspot group ship their base snapshot.
      EXPECT_GT(rep.snapshot_bytes_shipped, 0u) << "workers=" << workers;
    }
  }
}

TEST(Distributed, InlineModeJournalsAndMatches) {
  const ScenarioSet set = mixed_set();
  const exp::CampaignResult golden = golden_jobs1(set);
  const std::string path = tmp_path("inline.jsonl");
  dist::DistConfig cfg;
  cfg.workers = 0;  // no fleet: coordinator runs everything itself
  cfg.journal_path = path;
  const dist::DistReport rep = dist::run_distributed(set, cfg);
  expect_equals_golden(rep.campaign, golden);
  const dist::Scan scan = dist::scan_journal(path);
  EXPECT_EQ(set.size(), scan.results.size());
  EXPECT_EQ(dist::campaign_fingerprint(set), scan.fingerprint);
  std::remove(path.c_str());
}

TEST(Distributed, SurvivesWorkerSigkill) {
  const ScenarioSet set = mixed_set();
  const exp::CampaignResult golden = golden_jobs1(set);
  dist::DistConfig cfg;
  cfg.workers = 2;
  cfg.chaos_kill_after = 1;  // SIGKILL a live worker after the 1st result
  const dist::DistReport rep = dist::run_distributed(set, cfg);
  EXPECT_GE(rep.workers_died, 1u);
  expect_equals_golden(rep.campaign, golden);
}

TEST(Distributed, FallsBackInlineWhenFleetDies) {
  const ScenarioSet set = mixed_set();
  const exp::CampaignResult golden = golden_jobs1(set);
  dist::DistConfig cfg;
  cfg.workers = 1;
  cfg.chaos_kill_after = 1;  // the whole (one-worker) fleet dies
  const dist::DistReport rep = dist::run_distributed(set, cfg);
  EXPECT_GE(rep.workers_died, 1u);
  expect_equals_golden(rep.campaign, golden);
}

TEST(Distributed, ResumeExecutesOnlyMissingScenarios) {
  const ScenarioSet set = mixed_set();
  const exp::CampaignResult golden = golden_jobs1(set);
  const std::string path = tmp_path("resume.jsonl");

  // First run "crashes" after 2 accepted results.
  dist::DistConfig cfg;
  cfg.workers = 2;
  cfg.journal_path = path;
  cfg.stop_after_results = 2;
  const dist::DistReport partial = dist::run_distributed(set, cfg);
  EXPECT_TRUE(partial.stopped_early);
  EXPECT_GE(partial.executed, 2u);

  const size_t already = dist::scan_journal(path).results.size();
  ASSERT_GT(already, 0u);
  ASSERT_LT(already, set.size());

  // The resume must re-execute exactly the missing indices — no more.
  dist::DistConfig rcfg;
  rcfg.workers = 2;
  rcfg.journal_path = path;
  rcfg.resume = true;
  const dist::DistReport rep = dist::run_distributed(set, rcfg);
  EXPECT_FALSE(rep.stopped_early);
  EXPECT_EQ(already, rep.resumed);
  EXPECT_EQ(set.size() - already, rep.executed);
  expect_equals_golden(rep.campaign, golden);

  // A second resume of the now-complete journal executes nothing.
  const dist::DistReport noop = dist::run_distributed(set, rcfg);
  EXPECT_EQ(set.size(), noop.resumed);
  EXPECT_EQ(0u, noop.executed);
  expect_equals_golden(noop.campaign, golden);
  std::remove(path.c_str());
}

TEST(Distributed, ResumeRefusesForeignJournal) {
  const ScenarioSet set = mixed_set();
  const std::string path = tmp_path("foreign.jsonl");
  {
    dist::Journal j = dist::Journal::create(path, 12345, set.size());
    (void)j;
  }
  dist::DistConfig cfg;
  cfg.workers = 0;
  cfg.journal_path = path;
  cfg.resume = true;
  try {
    dist::run_distributed(set, cfg);
    FAIL() << "foreign journal was accepted for resume";
  } catch (const dist::JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

// ---- Cross-process snapshot portability (satellite 3) ----------------------

/// Run one encoded WorkItem through a freshly spawned campaign_worker in
/// file mode and parse the result record it writes.
ScenarioResult run_in_fresh_process(const dist::WorkItem& item) {
  const std::string work = tmp_path("work.bin");
  const std::string out = tmp_path("out.jsonl");
  const std::vector<u8> payload = dist::encode_work(item);
  {
    std::ofstream f(work, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  }
  const std::string cmd = dist::default_worker_exe() + " --work=" + work +
                          " --out=" + out;
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(0, rc) << cmd;
  std::string line = read_text(out);
  std::remove(work.c_str());
  std::remove(out.c_str());
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return exp::result_from_jsonl(line);
}

TEST(Distributed, SnapshotIsPortableAcrossProcesses) {
  ckpt::SnapshotPtr snap, final_state;
  capture_base(&snap, &final_state);

  dist::WorkItem item;
  item.index = 1;
  item.spec = test_spec("hotspot");
  item.spec.fault = FaultPlan::droop(2000, 50, 2);
  item.resume = snap;
  item.divergence_ref = final_state;

  // In-process reference: the same fork resumed from the same snapshot.
  SnapshotIo io;
  io.resume = snap;
  io.divergence_ref = final_state;
  const ScenarioResult local =
      exp::run_scenario(item.spec, item.index, nullptr, nullptr, &io);
  ASSERT_TRUE(local.ok) << local.error;

  const ScenarioResult remote = run_in_fresh_process(item);
  ASSERT_TRUE(remote.ok) << remote.error;
  EXPECT_TRUE(local.deterministic_fields_equal(remote))
      << "cross-process resume is not bit-identical";
}

TEST(Distributed, MismatchedSnapshotIsRefusedCleanly) {
  ckpt::SnapshotPtr snap, final_state;
  capture_base(&snap, &final_state);  // captured on the default 6-SM GPU

  dist::WorkItem item;
  item.index = 0;
  item.spec = test_spec("hotspot");
  item.spec.gpu.num_sms = 4;  // a different device than the snapshot's
  item.spec.fault = FaultPlan::droop(2000, 50, 2);
  item.resume = snap;

  const ScenarioResult remote = run_in_fresh_process(item);
  EXPECT_FALSE(remote.ok);
  EXPECT_NE(std::string::npos, remote.error.find("parameters"))
      << "refusal should name the parameter mismatch, got: " << remote.error;
}

}  // namespace
}  // namespace higpu
