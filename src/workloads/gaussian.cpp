#include "workloads/gaussian.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

/// Fan1: m[row][k] = a[row][k] / a[k][k] for row in (k, n).
/// One thread per row below the pivot.
isa::ProgramPtr build_fan1() {
  using namespace isa;
  KernelBuilder kb("gaussian_fan1");

  Reg a = kb.reg(), m = kb.reg(), n = kb.reg(), k = kb.reg();
  kb.ldp(a, 0);
  kb.ldp(m, 1);
  kb.ldp(n, 2);
  kb.ldp(k, 3);

  Reg tid = kb.global_tid_x();
  // row = k + 1 + tid
  Reg row = kb.reg();
  kb.iadd(row, tid, k);
  kb.iadd(row, row, imm(1));
  Label done = kb.label();
  util::exit_if_ge(kb, row, n, done);

  Reg a_rk = util::elem_addr2d(kb, a, row, n, k);
  Reg a_kk = util::elem_addr2d(kb, a, k, n, k);
  Reg v_rk = kb.reg(), v_kk = kb.reg(), mult = kb.reg();
  kb.ldg(v_rk, a_rk);
  kb.ldg(v_kk, a_kk);
  kb.fdiv(mult, v_rk, v_kk);
  Reg m_rk = util::elem_addr2d(kb, m, row, n, k);
  kb.stg(m_rk, mult);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

/// Fan2: a[row][col] -= m[row][k] * a[k][col] for row in (k,n), col in [k,n);
/// the col==k thread also updates b[row] -= m[row][k]*b[k].
isa::ProgramPtr build_fan2() {
  using namespace isa;
  KernelBuilder kb("gaussian_fan2");

  Reg a = kb.reg(), b = kb.reg(), m = kb.reg(), n = kb.reg(), k = kb.reg();
  kb.ldp(a, 0);
  kb.ldp(b, 1);
  kb.ldp(m, 2);
  kb.ldp(n, 3);
  kb.ldp(k, 4);

  Reg gx = kb.global_tid_x();  // column offset
  Reg gy = kb.global_tid_y();  // row offset
  Reg row = kb.reg(), col = kb.reg();
  kb.iadd(row, gy, k);
  kb.iadd(row, row, imm(1));
  kb.iadd(col, gx, k);
  Label done = kb.label();
  util::exit_if_ge(kb, row, n, done);
  util::exit_if_ge(kb, col, n, done);

  Reg m_rk = util::elem_addr2d(kb, m, row, n, k);
  Reg a_kc = util::elem_addr2d(kb, a, k, n, col);
  Reg a_rc = util::elem_addr2d(kb, a, row, n, col);
  Reg v_m = kb.reg(), v_kc = kb.reg(), v_rc = kb.reg(), prod = kb.reg();
  kb.ldg(v_m, m_rk);
  kb.ldg(v_kc, a_kc);
  kb.ldg(v_rc, a_rc);
  kb.fmul(prod, v_m, v_kc);
  kb.fsub(v_rc, v_rc, prod);
  kb.stg(a_rc, v_rc);

  // RHS update by the col==k thread.
  PredReg is_pivot_col = kb.pred();
  kb.setp(is_pivot_col, CmpOp::kEq, DType::kI32, col, k);
  Reg b_r = kb.reg(), b_k = kb.reg(), v_br = kb.reg(), v_bk = kb.reg(),
      prod2 = kb.reg();
  kb.imad(b_r, row, imm(4), b).guard_if(is_pivot_col);
  kb.imad(b_k, k, imm(4), b).guard_if(is_pivot_col);
  kb.ldg(v_br, b_r).guard_if(is_pivot_col);
  kb.ldg(v_bk, b_k).guard_if(is_pivot_col);
  kb.fmul(prod2, v_m, v_bk).guard_if(is_pivot_col);
  kb.fsub(v_br, v_br, prod2).guard_if(is_pivot_col);
  kb.stg(b_r, v_br).guard_if(is_pivot_col);

  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Gaussian::setup(Scale scale, u64 seed) {
  n_ = scale == Scale::kTest ? 16 : 96;
  Rng rng(seed);

  a_.resize(static_cast<size_t>(n_) * n_);
  b_.resize(n_);
  for (u32 r = 0; r < n_; ++r) {
    float row_sum = 0.0f;
    for (u32 c = 0; c < n_; ++c) {
      a_[static_cast<size_t>(r) * n_ + c] = rng.next_float(-1.0f, 1.0f);
      row_sum += std::fabs(a_[static_cast<size_t>(r) * n_ + c]);
    }
    // Diagonal dominance keeps the elimination numerically stable.
    a_[static_cast<size_t>(r) * n_ + r] += row_sum + 1.0f;
    b_[r] = rng.next_float(-1.0f, 1.0f);
  }

  // Reference elimination, mirroring the kernel arithmetic.
  ref_a_ = a_;
  ref_b_ = b_;
  std::vector<float> mult(static_cast<size_t>(n_) * n_, 0.0f);
  for (u32 k = 0; k + 1 < n_; ++k) {
    for (u32 r = k + 1; r < n_; ++r)
      mult[static_cast<size_t>(r) * n_ + k] =
          ref_a_[static_cast<size_t>(r) * n_ + k] /
          ref_a_[static_cast<size_t>(k) * n_ + k];
    for (u32 r = k + 1; r < n_; ++r) {
      const float mv = mult[static_cast<size_t>(r) * n_ + k];
      for (u32 c = k; c < n_; ++c)
        ref_a_[static_cast<size_t>(r) * n_ + c] -=
            mv * ref_a_[static_cast<size_t>(k) * n_ + c];
      ref_b_[r] -= mv * ref_b_[k];
    }
  }
  got_a_.clear();
  got_b_.clear();
}

void Gaussian::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  // Rodinia gaussian parses a textual matrix file (long decimal literals).
  session.device().host_parse(input_bytes() * 30);

  const u64 a_bytes = static_cast<u64>(n_) * n_ * 4;
  const u64 b_bytes = static_cast<u64>(n_) * 4;
  core::ReplicaPtr d_a = session.alloc(a_bytes);
  core::ReplicaPtr d_b = session.alloc(b_bytes);
  core::ReplicaPtr d_m = session.alloc(a_bytes);
  session.h2d(d_a, a_.data(), a_bytes);
  session.h2d(d_b, b_.data(), b_bytes);

  isa::ProgramPtr fan1 = build_fan1();
  isa::ProgramPtr fan2 = build_fan2();
  for (u32 k = 0; k + 1 < n_; ++k) {
    const u32 rows = n_ - k - 1;
    session.launch(fan1, sim::Dim3{ceil_div(rows, 64), 1, 1},
                   sim::Dim3{64, 1, 1}, {d_a, d_m, n_, k});
    const u32 cols = n_ - k;
    session.launch(fan2,
                   sim::Dim3{ceil_div(cols, 16), ceil_div(rows, 16), 1},
                   sim::Dim3{16, 16, 1}, {d_a, d_b, d_m, n_, k});
  }
  session.sync();

  got_a_.resize(ref_a_.size());
  got_b_.resize(ref_b_.size());
  session.d2h(got_a_.data(), d_a, a_bytes);
  session.d2h(got_b_.data(), d_b, b_bytes);
  session.compare(d_a, a_bytes, got_a_.data());
  session.compare(d_b, b_bytes, got_b_.data());
}

bool Gaussian::verify() const {
  return approx_equal(got_a_, ref_a_, 2e-3f) && approx_equal(got_b_, ref_b_, 2e-3f);
}

u64 Gaussian::input_bytes() const {
  return static_cast<u64>(n_) * n_ * 4 + static_cast<u64>(n_) * 4;
}
u64 Gaussian::output_bytes() const { return input_bytes(); }

}  // namespace higpu::workloads
