// Kernel-scheduler policies (paper §IV).
//
// * DefaultKernelScheduler — models the baseline GPGPU-Sim behaviour: blocks
//   of any arrived kernel are dispatched greedily to any SM with capacity
//   (earliest-launched kernel first), so redundant kernels may run
//   concurrently anywhere. It honours each launch's SchedHints::sm_mask,
//   which is exactly how the paper implements HALF: "we use the default
//   scheduling policy implemented in GPGPUSim and restrict each kernel
//   execution to 3 dedicated SMs".
// * SrrsKernelScheduler — Start, Round-Robin and Serial: a kernel starts
//   only on an idle GPU, its first block goes to SchedHints::start_sm,
//   blocks are placed strictly round-robin from there (block i on SM
//   (start_sm + i) mod N), kernels are fully serialized.
#pragma once

#include "sim/gpu.h"
#include "sim/ksched.h"

namespace higpu::sched {

/// Which of the paper's policies a redundant pair should be run with.
enum class Policy { kDefault, kHalf, kSrrs };

const char* policy_name(Policy p);

class DefaultKernelScheduler final : public sim::IKernelScheduler {
 public:
  std::string name() const override { return "default"; }
  void dispatch(sim::Gpu& gpu) override;
  void reset() override { rr_cursor_ = first_pending_ = 0; }
  void save_state(ckpt::Writer& w) const override {
    w.put32(rr_cursor_);
    w.put32(first_pending_);
  }
  void restore_state(ckpt::Reader& r) override {
    rr_cursor_ = r.get32();
    first_pending_ = r.get32();
  }

 private:
  u32 rr_cursor_ = 0;  // SM round-robin cursor for fair greedy placement
  u32 first_pending_ = 0;  // skip the fully-dispatched launch prefix
};

class SrrsKernelScheduler final : public sim::IKernelScheduler {
 public:
  std::string name() const override { return "srrs"; }
  void dispatch(sim::Gpu& gpu) override;
  void reset() override { first_unfinished_ = 0; }
  void save_state(ckpt::Writer& w) const override {
    w.put32(first_unfinished_);
  }
  void restore_state(ckpt::Reader& r) override {
    first_unfinished_ = r.get32();
  }

 private:
  u32 first_unfinished_ = 0;  // skip the finished launch prefix
};

/// Instantiate the scheduler implementing `p`. (HALF uses the default
/// scheduler; the SM partitioning is carried by each launch's sm_mask.)
std::unique_ptr<sim::IKernelScheduler> make_scheduler(Policy p);

/// SM mask with SMs [lo, hi) set — helper for HALF partitioning.
u64 sm_range_mask(u32 lo, u32 hi);

}  // namespace higpu::sched
