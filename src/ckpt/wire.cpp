#include "ckpt/wire.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "isa/instruction.h"

namespace higpu::ckpt {

namespace {

void put_operand(Writer& w, const isa::Operand& o) {
  w.put8(static_cast<u8>(o.kind));
  w.put16(o.reg);
  w.put32(o.imm);
}

isa::Operand get_operand(Reader& r) {
  isa::Operand o;
  o.kind = static_cast<isa::OperandKind>(r.get8());
  o.reg = r.get16();
  o.imm = r.get32();
  return o;
}

void put_program(Writer& w, const isa::KernelProgram& p) {
  w.put_string(p.name());
  w.put16(p.num_regs());
  w.put16(p.num_preds());
  w.put32(p.shared_bytes());
  w.put32(p.num_params());
  w.put64(p.code().size());
  for (const isa::Instruction& ins : p.code()) {
    w.put16(static_cast<u16>(ins.op));
    w.put16(static_cast<u16>(ins.guard));
    w.putb(ins.guard_neg);
    w.put16(ins.dst);
    for (const isa::Operand& o : ins.src) put_operand(w, o);
    w.put8(static_cast<u8>(ins.cmp));
    w.put8(static_cast<u8>(ins.dtype));
    w.put16(static_cast<u16>(ins.pred_src));
    w.put8(static_cast<u8>(ins.sreg));
    w.put32(ins.target);
    w.put32(ins.reconv_pc);
    w.put32(static_cast<u32>(ins.mem_offset));
  }
}

isa::ProgramPtr get_program(Reader& r) {
  std::string name = r.get_string();
  const u16 num_regs = r.get16();
  const u16 num_preds = r.get16();
  const u32 shared_bytes = r.get32();
  const u32 num_params = r.get32();
  const u64 n = r.get64();
  std::vector<isa::Instruction> code;
  code.reserve(static_cast<size_t>(n));
  for (u64 i = 0; i < n; ++i) {
    isa::Instruction ins;
    ins.op = static_cast<isa::Op>(r.get16());
    ins.guard = static_cast<i16>(r.get16());
    ins.guard_neg = r.getb();
    ins.dst = r.get16();
    for (isa::Operand& o : ins.src) o = get_operand(r);
    ins.cmp = static_cast<isa::CmpOp>(r.get8());
    ins.dtype = static_cast<isa::DType>(r.get8());
    ins.pred_src = static_cast<i16>(r.get16());
    ins.sreg = static_cast<isa::SReg>(r.get8());
    ins.target = r.get32();
    ins.reconv_pc = r.get32();
    ins.mem_offset = static_cast<i32>(r.get32());
    code.push_back(ins);
  }
  return std::make_shared<const isa::KernelProgram>(
      std::move(name), std::move(code), num_regs, num_preds, shared_bytes,
      num_params);
}

}  // namespace

std::vector<u8> encode_snapshot(const Snapshot& snap) {
  Writer w;
  w.put64(kWireMagic);
  w.put32(kWireVersion);
  w.put32(Snapshot::kVersion);

  // Capture metadata (mirrors the cheap-access copies on Snapshot).
  w.put64(snap.cycle);
  w.put64(snap.sync_seq);
  w.put64(snap.launch_count);
  w.put64(static_cast<u64>(snap.now_ns));
  w.put64(snap.target);

  w.put64(snap.sections.size());
  for (const Section& s : snap.sections) {
    w.put_string(s.name);
    w.put64(s.offset);
    w.put64(s.len);
    w.put64(s.record_size);
    w.put64(s.hash);
  }

  w.put64(snap.blob.size());
  w.put_bytes(snap.blob.data(), snap.blob.size());

  w.put64(snap.programs.size());
  for (const isa::ProgramPtr& p : snap.programs) put_program(w, *p);

  // Trailing checksum over everything framed so far: a truncated or
  // bit-flipped stream fails before any of it is interpreted as state.
  std::vector<u8> out = w.take_blob();
  const u64 checksum = fnv1a(out.data(), out.size());
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<u8>(checksum >> (8 * i)));
  return out;
}

SnapshotPtr decode_snapshot(const std::vector<u8>& bytes) {
  if (bytes.size() < 8 + 8)
    throw SnapshotError("snapshot frame truncated: " +
                        std::to_string(bytes.size()) + " bytes");
  u64 stored = 0;
  for (int i = 0; i < 8; ++i)
    stored |= static_cast<u64>(bytes[bytes.size() - 8 + static_cast<size_t>(i)])
              << (8 * i);
  const u64 actual = fnv1a(bytes.data(), bytes.size() - 8);
  if (stored != actual) {
    char buf[80];
    std::snprintf(buf, sizeof(buf),
                  "snapshot frame checksum mismatch (stored %016llx, "
                  "computed %016llx)",
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(actual));
    throw SnapshotError(buf);
  }

  // The frame body is one unnamed stream; reuse Reader's bounds-checked
  // primitives with an empty section table.
  const std::vector<u8> body(bytes.begin(), bytes.end() - 8);
  const std::vector<Section> no_sections;
  Reader r(body, no_sections);

  if (r.get64() != kWireMagic)
    throw SnapshotError("not a framed snapshot (bad wire magic)");
  const u32 wire_version = r.get32();
  if (wire_version != kWireVersion)
    throw SnapshotError("snapshot frame v" + std::to_string(wire_version) +
                        " != supported v" + std::to_string(kWireVersion));
  const u32 snap_version = r.get32();
  if (snap_version != Snapshot::kVersion)
    throw SnapshotError("snapshot format v" + std::to_string(snap_version) +
                        " != supported v" +
                        std::to_string(Snapshot::kVersion));

  auto snap = std::make_shared<Snapshot>();
  snap->cycle = r.get64();
  snap->sync_seq = r.get64();
  snap->launch_count = r.get64();
  snap->now_ns = static_cast<NanoSec>(r.get64());
  snap->target = r.get64();

  const u64 num_sections = r.get64();
  snap->sections.reserve(static_cast<size_t>(num_sections));
  for (u64 i = 0; i < num_sections; ++i) {
    Section s;
    s.name = r.get_string();
    s.offset = static_cast<size_t>(r.get64());
    s.len = static_cast<size_t>(r.get64());
    s.record_size = r.get64();
    s.hash = r.get64();
    snap->sections.push_back(std::move(s));
  }

  const u64 blob_len = r.get64();
  snap->blob.resize(static_cast<size_t>(blob_len));
  r.get_bytes(snap->blob.data(), snap->blob.size());

  // Per-section integrity: recompute each section's hash over the received
  // blob. The frame checksum already rules out transport corruption; this
  // catches a frame assembled from a blob that was corrupted *before*
  // encoding, and names the damaged component either way.
  for (const Section& s : snap->sections) {
    if (s.offset + s.len > snap->blob.size())
      throw SnapshotError("snapshot section '" + s.name +
                          "' extends past the end of the blob");
    if (fnv1a(snap->blob.data() + s.offset, s.len) != s.hash)
      throw SnapshotError("snapshot section '" + s.name +
                          "' corrupted in transit (stored hash does not "
                          "match its contents)");
  }

  const u64 num_programs = r.get64();
  snap->programs.reserve(static_cast<size_t>(num_programs));
  for (u64 i = 0; i < num_programs; ++i) snap->programs.push_back(get_program(r));
  return snap;
}

void write_snapshot_file(const std::string& path, const Snapshot& snap) {
  const std::vector<u8> bytes = encode_snapshot(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("cannot write snapshot file '" + path +
                             "': " + std::strerror(errno));
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed)
    throw std::runtime_error("short write to snapshot file '" + path + "'");
}

SnapshotPtr read_snapshot_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("cannot read snapshot file '" + path +
                             "': " + std::strerror(errno));
  std::vector<u8> bytes;
  u8 buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error)
    throw std::runtime_error("error reading snapshot file '" + path + "'");
  return decode_snapshot(bytes);
}

}  // namespace higpu::ckpt
