#include "obs/profile.h"

#include "common/table.h"

namespace higpu::obs {

std::string profile_table(const std::vector<SmCycles>& sms, u64 cycles) {
  TextTable t({"sm", "issued", "scoreboard", "barrier", "structural", "idle",
               "busy%"});
  SmCycles sum;
  for (size_t i = 0; i < sms.size(); ++i) {
    const SmCycles& s = sms[i];
    sum.issued += s.issued;
    sum.scoreboard += s.scoreboard;
    sum.barrier += s.barrier;
    sum.structural += s.structural;
    sum.idle += s.idle;
    t.add_row({std::to_string(i), std::to_string(s.issued),
               std::to_string(s.scoreboard), std::to_string(s.barrier),
               std::to_string(s.structural), std::to_string(s.idle),
               TextTable::fmt(cycles == 0 ? 0.0
                                          : 100.0 *
                                                static_cast<double>(s.issued) /
                                                static_cast<double>(cycles),
                              1)});
  }
  const u64 total = static_cast<u64>(sms.size()) * cycles;
  t.add_row({"all", std::to_string(sum.issued), std::to_string(sum.scoreboard),
             std::to_string(sum.barrier), std::to_string(sum.structural),
             std::to_string(sum.idle),
             TextTable::fmt(total == 0 ? 0.0
                                       : 100.0 *
                                             static_cast<double>(sum.issued) /
                                             static_cast<double>(total),
                            1)});
  return t.render();
}

}  // namespace higpu::obs
