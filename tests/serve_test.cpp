// Continuous-operation serving mode: deterministic traffic generation, EDF
// admission, the overload degrade ladder, safety cadence, and the exact
// percentile telemetry. The headline guarantee under test: the same
// ServeSpec produces bit-identical completion order, percentiles and
// degrade transitions under both sim engines and both exec modes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/percentiles.h"
#include "serve/engine.h"
#include "serve/traffic.h"

namespace higpu {
namespace {

using serve::Request;
using serve::ServeResult;
using serve::ServeSpec;
using serve::TenantSpec;
using serve::TrafficSpec;

// ---- Percentiles -----------------------------------------------------------

TEST(PercentilesTest, NearestRankExact) {
  Percentiles p;
  for (i64 v = 1; v <= 100; ++v) p.sample(101 - v);  // insert descending
  EXPECT_EQ(p.count(), 100u);
  EXPECT_EQ(p.min(), 1);
  EXPECT_EQ(p.max(), 100);
  EXPECT_EQ(p.p50(), 50);
  EXPECT_EQ(p.p95(), 95);
  EXPECT_EQ(p.p99(), 99);
  EXPECT_EQ(p.p999(), 100);  // ceil(0.999 * 100) = 100
  EXPECT_EQ(p.percentile(0.0), 1);
  EXPECT_EQ(p.percentile(100.0), 100);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(PercentilesTest, SmallAndNegativeSamples) {
  Percentiles p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.p99(), 0);  // empty -> 0 by contract
  p.sample(-5);
  EXPECT_EQ(p.p50(), -5);
  EXPECT_EQ(p.p999(), -5);
  p.sample(7);
  // N=2: ceil(0.5*2)=1 -> first sorted sample.
  EXPECT_EQ(p.p50(), -5);
  EXPECT_EQ(p.p95(), 7);
  EXPECT_EQ(p.min(), -5);
  EXPECT_EQ(p.sum(), 2);
}

TEST(PercentilesTest, MergeAndEquality) {
  Percentiles a, b, c;
  a.sample(1);
  a.sample(2);
  b.sample(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 3);
  c.sample(1);
  c.sample(2);
  c.sample(3);
  EXPECT_TRUE(a == c);  // same values, same order
}

// ---- Traffic generation ----------------------------------------------------

TrafficSpec small_traffic(TrafficSpec::Pattern pattern, u64 seed) {
  TrafficSpec t;
  t.pattern = pattern;
  t.seed = seed;
  t.offered_rps = 2000.0;
  t.duration_ns = 10'000'000;
  TenantSpec camera;
  camera.name = "camera";
  camera.workload = "nn";
  camera.redundancy = core::RedundancySpec::dcls();
  camera.deadline_ns = 5'000'000;
  camera.weight = 3;
  TenantSpec radar;
  radar.name = "radar";
  radar.workload = "nn";
  radar.redundancy = core::RedundancySpec::baseline();
  radar.deadline_ns = 2'000'000;
  radar.weight = 1;
  t.tenants = {camera, radar};
  return t;
}

TEST(TrafficTest, GenerationIsDeterministic) {
  for (const auto pattern :
       {TrafficSpec::Pattern::kPeriodic, TrafficSpec::Pattern::kPoisson,
        TrafficSpec::Pattern::kBursty}) {
    const TrafficSpec t = small_traffic(pattern, 7);
    const std::vector<Request> a = t.generate();
    const std::vector<Request> b = t.generate();
    ASSERT_FALSE(a.empty()) << serve::pattern_name(pattern);
    EXPECT_EQ(a, b) << serve::pattern_name(pattern);
    // Sorted arrivals, ids in order, absolute deadlines attached.
    for (u32 i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, i);
      if (i > 0) EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
      EXPECT_EQ(a[i].deadline_ns,
                a[i].arrival_ns + t.tenants[a[i].tenant].deadline_ns);
    }
  }
}

TEST(TrafficTest, SeedChangesPoissonArrivals) {
  const std::vector<Request> a =
      small_traffic(TrafficSpec::Pattern::kPoisson, 1).generate();
  const std::vector<Request> b =
      small_traffic(TrafficSpec::Pattern::kPoisson, 2).generate();
  EXPECT_NE(a, b);
}

TEST(TrafficTest, TraceRoundtrip) {
  const TrafficSpec t = small_traffic(TrafficSpec::Pattern::kPoisson, 11);
  const std::vector<Request> orig = t.generate();
  const std::string text = t.format_trace(orig);
  const std::vector<Request> replay = t.parse_trace(text);
  EXPECT_EQ(orig, replay);

  TrafficSpec replayer = t;
  replayer.pattern = TrafficSpec::Pattern::kTrace;
  replayer.trace = replay;
  EXPECT_EQ(replayer.generate(), orig);
}

TEST(TrafficTest, ValidateRejectsBadSpecs) {
  TrafficSpec t = small_traffic(TrafficSpec::Pattern::kPoisson, 1);
  t.tenants.clear();
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = small_traffic(TrafficSpec::Pattern::kPoisson, 1);
  t.tenants[1].name = t.tenants[0].name;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = small_traffic(TrafficSpec::Pattern::kPoisson, 1);
  t.tenants[0].workload = "no-such-workload";
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = small_traffic(TrafficSpec::Pattern::kPoisson, 1);
  t.offered_rps = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

// ---- Degrade ladder --------------------------------------------------------

TEST(ServeTest, DegradeLadderStripsCopies) {
  const core::RedundancySpec tmr = core::RedundancySpec::tmr();
  const core::RedundancySpec l1 = serve::degrade(tmr, 1);
  EXPECT_EQ(l1.n_copies, 2u);
  EXPECT_EQ(l1.compare, core::RedundancySpec::Compare::kBitwise);
  const core::RedundancySpec l2 = serve::degrade(tmr, 2);
  EXPECT_EQ(l2.n_copies, 1u);
  EXPECT_EQ(l2.recovery, core::RedundancySpec::Recovery::kNone);
  // Degrading past the bottom stays at baseline.
  EXPECT_EQ(serve::degrade(core::RedundancySpec::dcls(), 5).n_copies, 1u);
}

// ---- Serving determinism across engines and exec modes ---------------------

ServeSpec small_serve(sim::SimEngine engine, sim::ExecMode mode) {
  ServeSpec s;
  s.traffic = small_traffic(TrafficSpec::Pattern::kPoisson, 13);
  s.traffic.offered_rps = 500.0;
  s.traffic.duration_ns = 20'000'000;
  s.traffic.max_requests = 8;
  // Generous deadlines: this spec exercises the steady-state path.
  s.traffic.tenants[0].deadline_ns = 400'000'000;
  s.traffic.tenants[1].deadline_ns = 400'000'000;
  s.gpu.engine = engine;
  s.gpu.exec_mode = mode;
  s.policy = sched::Policy::kSrrs;
  return s;
}

TEST(ServeTest, BitIdenticalAcrossEnginesAndExecModes) {
  const ServeResult reference =
      run_serve(small_serve(sim::SimEngine::kDense, sim::ExecMode::kInterp));
  ASSERT_GT(reference.served, 0u);
  EXPECT_EQ(reference.dropped, 0u);
  EXPECT_EQ(reference.verify_failures, 0u);

  for (const auto engine : {sim::SimEngine::kDense, sim::SimEngine::kEvent}) {
    for (const auto mode : {sim::ExecMode::kInterp, sim::ExecMode::kBlock}) {
      const ServeResult r = run_serve(small_serve(engine, mode));
      EXPECT_TRUE(r == reference)
          << "engine=" << static_cast<int>(engine)
          << " mode=" << static_cast<int>(mode);
      EXPECT_EQ(r.span_ns, reference.span_ns);
      EXPECT_EQ(r.busy_ns, reference.busy_ns);
    }
  }
}

TEST(ServeTest, CompletionsFollowEdfOrder) {
  // Three same-time arrivals with different deadlines: the engine must
  // serve them earliest-deadline-first regardless of trace order.
  TrafficSpec t;
  t.pattern = TrafficSpec::Pattern::kTrace;
  TenantSpec slow, mid, fast;
  slow.name = "slow";
  slow.deadline_ns = 900'000'000;
  mid.name = "mid";
  mid.deadline_ns = 600'000'000;
  fast.name = "fast";
  fast.deadline_ns = 300'000'000;
  for (TenantSpec* ts : {&slow, &mid, &fast}) {
    ts->workload = "nn";
    ts->redundancy = core::RedundancySpec::baseline();
  }
  t.tenants = {slow, mid, fast};
  t.trace = {{0, 0, 1000, 0}, {0, 1, 1000, 0}, {0, 2, 1000, 0}};

  ServeSpec s;
  s.traffic = t;
  const ServeResult r = run_serve(s);
  ASSERT_EQ(r.completions.size(), 3u);
  EXPECT_EQ(r.completions[0].tenant, 2u);  // fast first
  EXPECT_EQ(r.completions[1].tenant, 1u);
  EXPECT_EQ(r.completions[2].tenant, 0u);
}

// ---- Overload: enter and exit degrade --------------------------------------

/// Service time of one request of `tenant` on an idle device (measured, so
/// the overload trace adapts to the cost model instead of hard-coding it).
u64 measure_service_ns(const TenantSpec& tenant) {
  TrafficSpec t;
  t.pattern = TrafficSpec::Pattern::kTrace;
  t.tenants = {tenant};
  t.trace = {{0, 0, 1000, 0}};
  ServeSpec s;
  s.traffic = t;
  const ServeResult r = run_serve(s);
  EXPECT_EQ(r.served, 1u);
  return r.completions.at(0).finish_ns - r.completions.at(0).start_ns;
}

TEST(ServeTest, OverloadEntersAndExitsDegradeWithDropAccounting) {
  TenantSpec tenant;
  tenant.name = "planner";
  tenant.workload = "nn";
  tenant.redundancy = core::RedundancySpec::tmr();

  // TMR service time on an idle device calibrates the whole scenario.
  tenant.deadline_ns = 1;  // irrelevant for the measurement run
  const u64 service = measure_service_ns(tenant);
  ASSERT_GT(service, 0u);
  // 2.5x service: the first two burst requests fit at full redundancy, the
  // third's predicted completion (start + est = arrival + 3x) overshoots by
  // ~0.5x — a robust margin that forces the ladder down.
  tenant.deadline_ns = 5 * service / 2;

  // Burst: 12 requests nearly at once (only ~2 can make the deadline at
  // full redundancy), then a relaxed tail spaced far apart so the
  // hysteresis can walk the ladder back up.
  TrafficSpec t;
  t.pattern = TrafficSpec::Pattern::kTrace;
  t.tenants = {tenant};
  for (u32 i = 0; i < 12; ++i)
    t.trace.push_back({0, 0, static_cast<u64>(1000 + i), 0});
  const u64 tail_start = 20 * service;
  for (u32 i = 0; i < 12; ++i)
    t.trace.push_back({0, 0, tail_start + i * 4 * service, 0});

  ServeSpec s;
  s.traffic = t;
  s.overload.enable_degrade = true;
  s.overload.shed_expired = true;
  s.overload.recover_after = 3;
  const ServeResult r = run_serve(s);

  // The burst provably entered degrade...
  bool entered = false, exited = false;
  for (const serve::DegradeTransition& tr : r.transitions) {
    if (tr.to_level > tr.from_level) entered = true;
    if (tr.reason == serve::DegradeReason::kRecovered &&
        tr.to_level < tr.from_level)
      exited = true;
  }
  EXPECT_TRUE(entered) << "no degrade transition under a 6x overload burst";
  EXPECT_TRUE(exited) << "hysteresis never recovered on the relaxed tail";
  ASSERT_EQ(r.tenants.size(), 1u);
  EXPECT_GT(r.tenants[0].degraded_served, 0u);
  // ...shed what could no longer make its deadline...
  EXPECT_GT(r.dropped, 0u);
  EXPECT_EQ(r.dropped,
            r.tenants[0].dropped_expired + r.tenants[0].dropped_overflow);
  EXPECT_EQ(r.served + r.dropped, r.tenants[0].offered);
  // ...and the relaxed tail is back on time.
  EXPECT_TRUE(r.completions.back().deadline_met);

  // Drop/degrade accounting lands in the JSON telemetry.
  const std::string json = r.to_json(s);
  EXPECT_NE(json.find("\"schema\": \"higpu.serve/1\""), std::string::npos);
  EXPECT_NE(json.find("\"transitions\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_expired\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline-pressure\""), std::string::npos);
  EXPECT_NE(json.find("\"recovered\""), std::string::npos);

  // Determinism holds through the full overload trajectory too.
  ServeSpec s2 = s;
  s2.gpu.engine = s.gpu.engine == sim::SimEngine::kEvent
                      ? sim::SimEngine::kDense
                      : sim::SimEngine::kEvent;
  EXPECT_TRUE(run_serve(s2) == r);
}

// ---- Safety cadence --------------------------------------------------------

TEST(ServeTest, BistAndCheckpointCadence) {
  ServeSpec s = small_serve(sim::SimEngine::kEvent, sim::ExecMode::kBlock);
  s.traffic.max_requests = 4;
  // DCLS tenant rolls back from interval snapshots; BIST fires between
  // requests on the host timeline.
  s.traffic.tenants[0].redundancy = core::RedundancySpec::dcls_rollback();
  s.bist_interval_ns = 1'000'000;
  s.ckpt_interval_cycles = 2000;
  const ServeResult r = run_serve(s);
  EXPECT_GT(r.served, 0u);
  EXPECT_GT(r.bist_runs, 0u);
  EXPECT_EQ(r.bist_failures, 0u);
  EXPECT_GT(r.checkpoints_captured, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
}

// ---- Telemetry output ------------------------------------------------------

TEST(ServeTest, CsvHasOneRowPerTenant) {
  const ServeSpec s = small_serve(sim::SimEngine::kEvent, sim::ExecMode::kBlock);
  const ServeResult r = run_serve(s);
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("tenant,offered,served"), std::string::npos);
  EXPECT_NE(csv.find("camera"), std::string::npos);
  EXPECT_NE(csv.find("radar"), std::string::npos);
}

TEST(ServeTest, FttiSlackIsTracked) {
  const ServeSpec s = small_serve(sim::SimEngine::kEvent, sim::ExecMode::kBlock);
  const ServeResult r = run_serve(s);
  for (const serve::TenantStats& ts : r.tenants) {
    if (ts.served == 0) continue;
    EXPECT_EQ(ts.ftti_slack_ns.count(), ts.served);
    // Steady state, generous FTTI: slack must be positive.
    EXPECT_GT(ts.ftti_slack_ns.min(), 0);
  }
}

}  // namespace
}  // namespace higpu
