// Workload interface: scaled-down re-implementations of the Rodinia
// benchmarks used in the paper's evaluation (Figs. 4 and 5).
//
// Each workload generates its inputs deterministically, runs its kernels
// through a (possibly redundant) session — including all host<->device
// transfers and DCLS comparisons — and verifies the fetched outputs against
// a CPU reference.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/exec.h"

namespace higpu::workloads {

/// Problem-size scale: kTest keeps unit tests fast; kBench approximates the
/// kernel-shape balance of the original Rodinia inputs.
enum class Scale { kTest = 0, kBench = 1 };

const char* scale_name(Scale s);
/// Parse "test" / "bench"; throws std::invalid_argument otherwise.
Scale parse_scale(const std::string& s);

/// Execution context handed to Workload::run. It bundles the (possibly
/// redundant) session with the device it drives, so a workload body is
/// written once and runs unchanged at any redundancy level — baseline,
/// DCLS, NMR, with or without fault injection or recovery — the variant
/// wiring (policy, RedundancySpec, fault hooks, trace sinks) is owned by
/// exp::run_scenario, never by the workload or its call sites.
class RunContext {
 public:
  explicit RunContext(core::ExecSession& session) : session_(session) {}

  core::ExecSession& session() { return session_; }
  runtime::Device& device() { return session_.device(); }
  const core::ExecSession::Config& config() const {
    return session_.config();
  }

 private:
  core::ExecSession& session_;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Rodinia benchmark name (e.g. "hotspot").
  virtual std::string name() const = 0;

  /// Generate inputs and compute the CPU reference.
  virtual void setup(Scale scale, u64 seed) = 0;

  /// Execute on the device: allocate, upload, launch kernel(s), read back,
  /// compare (the full 5-step flow of paper §IV.A).
  virtual void run(RunContext& ctx) = 0;

  /// Check outputs fetched by run() against the CPU reference.
  virtual bool verify() const = 0;

  /// Total bytes of input transferred to the device (for reporting).
  virtual u64 input_bytes() const = 0;
  /// Total bytes of compared output (for reporting).
  virtual u64 output_bytes() const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

/// Names of all implemented workloads (full Fig. 5 suite).
std::vector<std::string> all_names();
/// The 11-benchmark subset evaluated on the simulator in Fig. 4.
std::vector<std::string> fig4_names();
/// True if `name` names an implemented workload.
bool is_known(const std::string& name);
/// The error message thrown for an unknown workload name: names the bad
/// input and lists every valid name (shared with ScenarioSpec validation).
std::string unknown_workload_message(const std::string& name);
/// Instantiate by name; throws std::invalid_argument listing the valid
/// names when `name` is unknown.
WorkloadPtr make(const std::string& name);

/// Approximate float comparison used by verifiers (relative + absolute).
bool approx_equal(float a, float b, float tol = 1e-3f);
bool approx_equal(const std::vector<float>& a, const std::vector<float>& b,
                  float tol = 1e-3f);

/// Bit-cast helpers between float vectors and the u32 transfer format.
std::vector<u32> to_bits(const std::vector<float>& v);
std::vector<float> from_bits(const std::vector<u32>& v);

}  // namespace higpu::workloads
