#include "dist/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/log.h"
#include "core/exec.h"
#include "dist/protocol.h"
#include "exp/campaign.h"
#include "exp/result_io.h"
#include "obs/trace.h"
#include "runtime/device.h"

namespace higpu::dist {

namespace {

/// Serializes frame writes: the heartbeat thread and the result path share
/// one socket, and an interleaved frame would desynchronize the stream.
class FrameSender {
 public:
  explicit FrameSender(int fd) : fd_(fd) {}
  void send(Msg type, const std::vector<u8>& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    send_frame(fd_, type, payload);
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Runs one unit with a tracer attached so redundancy miscompares leave a
/// flight-recorder dump; any dumps are shipped to the coordinator before
/// the result frame.
exp::ScenarioResult run_work(const WorkItem& item, FrameSender& sender) {
  exp::SnapshotIo io;
  io.resume = item.resume;
  io.divergence_ref = item.divergence_ref;
  obs::Tracer tracer;
  const exp::ScenarioProbe pre_run = [&tracer](runtime::Device& dev,
                                               workloads::Workload&,
                                               core::ExecSession&) {
    dev.set_tracer(&tracer);
  };
  const exp::ScenarioProbe probe = [&sender](runtime::Device&,
                                             workloads::Workload&,
                                             core::ExecSession& session) {
    for (const std::string& dump : session.flight_dumps()) {
      try {
        sender.send(Msg::kFlight, encode_flight(dump));
      } catch (const WireError&) {
        return;  // coordinator gone; the result send will fail loudly
      }
    }
  };
  return exp::run_scenario(item.spec, item.index, probe, pre_run, &io);
}

}  // namespace

int worker_main(int fd, u32 worker_id, int heartbeat_interval_ms) {
  FrameSender sender(fd);
  sender.send(Msg::kHello, encode_hello(worker_id));

  // Redirect this process's log lines to the coordinator, which lands them
  // in the campaign journal tagged with this worker's prefix.
  set_log_prefix("w" + std::to_string(worker_id));
  set_log_sink([&sender](LogLevel level, const std::string& line) {
    try {
      LogMsg msg;
      msg.level = static_cast<u32>(level);
      msg.line = line;
      sender.send(Msg::kLog, encode_log(msg));
    } catch (const WireError&) {
      // Coordinator gone; dropping the line beats crashing the logger.
    }
  });

  // Worker-lifecycle trace: which units this process touched, in order.
  // Shipped as the final flight frame if the worker dies, so the
  // coordinator's journal records what it was doing.
  obs::Tracer wtr;
  const u32 wtrack = wtr.track("worker", obs::kPidHost);

  std::atomic<bool> stop{false};
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  std::thread heartbeat;
  if (heartbeat_interval_ms > 0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!stop.load()) {
        hb_cv.wait_for(lock, std::chrono::milliseconds(heartbeat_interval_ms));
        if (stop.load()) break;
        try {
          sender.send(Msg::kHeartbeat, {});
        } catch (const WireError&) {
          return;  // coordinator gone; main loop will see it too
        }
      }
    });
  }

  int exit_code = 0;
  try {
    Frame frame;
    // EOF without kShutdown = coordinator died; exiting quietly is right
    // either way.
    while (recv_frame(fd, &frame)) {
      if (frame.type == Msg::kShutdown) break;
      if (frame.type != Msg::kWork) continue;  // kHeartbeat etc.: ignore
      const WorkItem item = decode_work(frame.payload);
      wtr.instant(wtrack, obs::Ev::kUnitShip, log_monotonic_ms() * 1000000ull,
                  item.unit_id, item.index);
      const exp::ScenarioResult result = run_work(item, sender);
      wtr.instant(wtrack, obs::Ev::kUnitResult,
                  log_monotonic_ms() * 1000000ull, item.unit_id, item.index);
      ResultMsg msg;
      msg.unit_id = item.unit_id;
      msg.index = item.index;
      msg.jsonl = exp::result_to_jsonl(result);
      sender.send(Msg::kResult, encode_result(msg));
    }
  } catch (const std::exception& e) {
    wtr.instant(wtrack, obs::Ev::kWorkerDeath, log_monotonic_ms() * 1000000ull,
                worker_id, 0);
    try {
      // The black box: last worker-lifecycle events, shipped before exit.
      sender.send(Msg::kFlight, encode_flight(wtr.flight_json(64)));
      LogMsg msg;
      msg.level = static_cast<u32>(LogLevel::kError);
      msg.line = "campaign_worker " + std::to_string(worker_id) +
                 " fatal: " + e.what();
      sender.send(Msg::kLog, encode_log(msg));
    } catch (const WireError&) {
      // Coordinator unreachable; stderr below is all that's left.
    }
    std::fprintf(stderr, "campaign_worker %u: %s\n", worker_id, e.what());
    exit_code = 1;
  }
  set_log_sink(nullptr);  // sender dies with this frame; detach first
  set_log_prefix("");

  stop.store(true);
  hb_cv.notify_all();
  if (heartbeat.joinable()) heartbeat.join();
  return exit_code;
}

}  // namespace higpu::dist
