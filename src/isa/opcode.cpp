#include "isa/opcode.h"

namespace higpu::isa {

UnitClass unit_class(Op op) {
  switch (op) {
    case Op::kFdiv:
    case Op::kFsqrt:
    case Op::kFrcp:
    case Op::kFexp:
    case Op::kFlog:
    case Op::kFsin:
    case Op::kFcos:
      return UnitClass::kSfu;
    case Op::kLdg:
    case Op::kStg:
    case Op::kAtomAdd:
    case Op::kLds:
    case Op::kSts:
      return UnitClass::kMem;
    case Op::kBra:
    case Op::kExit:
    case Op::kBar:
      return UnitClass::kCtrl;
    default:
      return UnitClass::kSp;
  }
}

bool is_global_mem(Op op) {
  return op == Op::kLdg || op == Op::kStg || op == Op::kAtomAdd;
}

bool is_shared_mem(Op op) { return op == Op::kLds || op == Op::kSts; }

bool writes_gpr(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kSetp:
    case Op::kBra:
    case Op::kExit:
    case Op::kStg:
    case Op::kSts:
    case Op::kBar:
      return false;
    default:
      return true;
  }
}

bool writes_pred(Op op) { return op == Op::kSetp; }

bool is_datapath(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kS2r:
    case Op::kLdp:
    case Op::kSetp:
    case Op::kSelp:
    case Op::kBra:
    case Op::kExit:
    case Op::kBar:
    case Op::kLdg:
    case Op::kStg:
    case Op::kAtomAdd:
    case Op::kLds:
    case Op::kSts:
      return false;
    default:
      return true;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kMov: return "mov";
    case Op::kS2r: return "s2r";
    case Op::kLdp: return "ldp";
    case Op::kIadd: return "iadd";
    case Op::kIsub: return "isub";
    case Op::kImul: return "imul";
    case Op::kImad: return "imad";
    case Op::kImin: return "imin";
    case Op::kImax: return "imax";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kSra: return "sra";
    case Op::kFadd: return "fadd";
    case Op::kFsub: return "fsub";
    case Op::kFmul: return "fmul";
    case Op::kFfma: return "ffma";
    case Op::kFmin: return "fmin";
    case Op::kFmax: return "fmax";
    case Op::kFabs: return "fabs";
    case Op::kFneg: return "fneg";
    case Op::kFdiv: return "fdiv";
    case Op::kFsqrt: return "fsqrt";
    case Op::kFrcp: return "frcp";
    case Op::kFexp: return "fexp";
    case Op::kFlog: return "flog";
    case Op::kFsin: return "fsin";
    case Op::kFcos: return "fcos";
    case Op::kI2f: return "i2f";
    case Op::kF2i: return "f2i";
    case Op::kSetp: return "setp";
    case Op::kSelp: return "selp";
    case Op::kBra: return "bra";
    case Op::kExit: return "exit";
    case Op::kLdg: return "ldg";
    case Op::kStg: return "stg";
    case Op::kAtomAdd: return "atom.add";
    case Op::kLds: return "lds";
    case Op::kSts: return "sts";
    case Op::kBar: return "bar.sync";
  }
  return "?";
}

const char* sreg_name(SReg sreg) {
  switch (sreg) {
    case SReg::kTidX: return "tid.x";
    case SReg::kTidY: return "tid.y";
    case SReg::kTidZ: return "tid.z";
    case SReg::kCtaIdX: return "ctaid.x";
    case SReg::kCtaIdY: return "ctaid.y";
    case SReg::kCtaIdZ: return "ctaid.z";
    case SReg::kNTidX: return "ntid.x";
    case SReg::kNTidY: return "ntid.y";
    case SReg::kNTidZ: return "ntid.z";
    case SReg::kNCtaIdX: return "nctaid.x";
    case SReg::kNCtaIdY: return "nctaid.y";
    case SReg::kNCtaIdZ: return "nctaid.z";
    case SReg::kLaneId: return "laneid";
    case SReg::kWarpId: return "warpid";
  }
  return "?";
}

const char* cmp_name(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kLt: return "lt";
    case CmpOp::kLe: return "le";
    case CmpOp::kGt: return "gt";
    case CmpOp::kGe: return "ge";
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
  }
  return "?";
}

}  // namespace higpu::isa
