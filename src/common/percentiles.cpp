#include "common/percentiles.h"

#include <algorithm>
#include <cmath>

namespace higpu {

void Percentiles::sample(i64 v) {
  samples_.push_back(v);
  sorted_.clear();
}

void Percentiles::merge(const Percentiles& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_.clear();
}

void Percentiles::ensure_sorted() const {
  if (sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
}

i64 Percentiles::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return sorted_.front();
}

i64 Percentiles::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return sorted_.back();
}

i64 Percentiles::sum() const {
  i64 s = 0;
  for (i64 v : samples_) s += v;
  return s;
}

double Percentiles::mean() const {
  return samples_.empty()
             ? 0.0
             : static_cast<double>(sum()) / static_cast<double>(count());
}

i64 Percentiles::percentile(double p) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  // Nearest rank: ceil(p/100 * N), 1-based. ceil on the exact product keeps
  // the rank deterministic (no epsilon fudging); the clamp guards the
  // p == 100 boundary against floating rounding.
  const double n = static_cast<double>(sorted_.size());
  u64 rank = static_cast<u64>(std::ceil(p / 100.0 * n));
  if (rank < 1) rank = 1;
  if (rank > sorted_.size()) rank = sorted_.size();
  return sorted_[rank - 1];
}

}  // namespace higpu
