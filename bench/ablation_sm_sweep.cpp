// Ablations on the design choices DESIGN.md calls out:
//  (a) GPU size sweep: HALF/SRRS overheads vs number of SMs (the paper
//      evaluates only a 6-SM GPU; this shows how the policy gap scales).
//  (b) SRRS start-SM distance: the diversity guarantee needs only
//      start_a != start_b — overhead must be independent of the distance.
//  (c) Kernel-dispatch gap sweep: temporal slack of HALF vs the dispatch
//      serialization gap it relies on (>>IV.B: "their starting times differ
//      due to the serial dispatch of kernels").
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/diversity.h"
#include "core/exec.h"
#include "exp/campaign.h"
#include "tests/test_kernels.h"

using namespace higpu;

namespace {

void sm_sweep() {
  std::printf("(a) policy overhead vs GPU size (hotspot, redundant)\n\n");
  TextTable table({"SMs", "default(cycles)", "HALF", "SRRS"});
  for (u32 sms : {2u, 4u, 6u, 8u, 12u}) {
    sim::GpuParams p;
    p.num_sms = sms;
    const auto def = bench::run_workload("hotspot", workloads::Scale::kBench,
                                         sched::Policy::kDefault, true, 2019, p);
    const auto half = bench::run_workload("hotspot", workloads::Scale::kBench,
                                          sched::Policy::kHalf, true, 2019, p);
    const auto srrs = bench::run_workload("hotspot", workloads::Scale::kBench,
                                          sched::Policy::kSrrs, true, 2019, p);
    const double base = static_cast<double>(def.kernel_cycles);
    table.add_row({std::to_string(sms), std::to_string(def.kernel_cycles),
                   TextTable::fmt_ratio(half.kernel_cycles / base),
                   TextTable::fmt_ratio(srrs.kernel_cycles / base)});
  }
  std::printf("%s\n", table.render().c_str());
}

void start_distance_sweep() {
  std::printf("(b) SRRS overhead vs start-SM distance (hotspot)\n\n");
  TextTable table({"start_b", "cycles", "spatially-diverse"});
  for (u32 start_b : {1u, 2u, 3u, 4u, 5u}) {
    exp::ScenarioSpec spec;
    spec.workload = "hotspot";
    spec.scale = workloads::Scale::kBench;
    spec.policy = sched::Policy::kSrrs;
    spec.redundancy.srrs_starts = {0, start_b};
    const exp::ScenarioResult r = exp::run_scenario(spec);
    table.add_row({std::to_string(start_b), std::to_string(r.kernel_cycles),
                   r.diversity.spatially_diverse() ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
}

void gap_sweep() {
  std::printf("(c) instruction-level temporal slack vs kernel-dispatch gap "
              "(spin kernel pair)\n\n");
  TextTable table({"gap(cycles)", "default-min-slack", "HALF-min-slack",
                   "SRRS-min-slack"});
  for (u32 gap : {0u, 50u, 200u, 400u, 800u}) {
    std::vector<std::string> row{std::to_string(gap)};
    for (sched::Policy policy : {sched::Policy::kDefault, sched::Policy::kHalf,
                                 sched::Policy::kSrrs}) {
      sim::GpuParams p;
      p.launch_gap_cycles = gap;
      runtime::Device dev(p);
      core::InstrTraceCollector tc;
      dev.gpu().set_trace_sink(&tc);
      core::ExecSession::Config cfg;
      cfg.policy = policy;
      core::ExecSession s(dev, cfg);
      const u32 n = 12 * 128;
      const core::ReplicaPtr out = s.alloc(n * 4);
      s.launch(higpu::testing::make_spin_kernel(150), sim::Dim3{12, 1, 1},
               sim::Dim3{128, 1, 1}, {out, n});
      s.sync();
      const auto [ida, idb] = s.pairs()[0];
      row.push_back(std::to_string(tc.slack(ida, idb, 1).min_slack));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("interpretation: SRRS slack ~= a full kernel execution "
              "regardless of the gap; HALF/default slack tracks the dispatch "
              "gap, vanishing when dispatch is not serialized.\n");
}

void tmr_sweep() {
  std::printf("(d) N-modular redundancy: kernel cycles vs copy count "
              "(hotspot-like spin kernel, SRRS)\n\n");
  TextTable table({"copies", "kernel-cycles", "vs-DMR", "fail-operational"});
  Cycle dmr_cycles = 0;
  for (u32 copies : {2u, 3u, 4u}) {
    runtime::Device dev;
    core::RedundancySpec red = copies >= 3 ? core::RedundancySpec::nmr(copies)
                                           : core::RedundancySpec::dcls();
    core::ExecSession s(dev, {sched::Policy::kSrrs, red});
    const u32 n = 12 * 128;
    core::ReplicaPtr out = s.alloc(n * 4);
    std::vector<u32> zeros(n, 0);
    s.h2d(out, zeros.data(), n * 4);
    s.launch(higpu::testing::make_spin_kernel(150), sim::Dim3{12, 1, 1},
             sim::Dim3{128, 1, 1}, {out, n});
    s.sync();
    const core::CompareVerdict v = s.compare(out, n * 4);
    if (copies == 2) dmr_cycles = s.kernel_cycles();
    table.add_row({std::to_string(copies), std::to_string(s.kernel_cycles()),
                   TextTable::fmt_ratio(static_cast<double>(s.kernel_cycles()) /
                                        static_cast<double>(dmr_cycles)),
                   copies >= 3 && v.majority ? "yes (majority vote)"
                                             : "no (detect only)"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("interpretation: TMR buys fail-operational voting for ~%s the "
              "serialized execution cost (paper footnote 1).\n\n",
              "1.5x");
}

}  // namespace

int main() {
  std::printf("Ablation benches for the diverse-redundancy design\n\n");
  sm_sweep();
  start_distance_sweep();
  gap_sweep();
  tmr_sweep();
  return 0;
}
