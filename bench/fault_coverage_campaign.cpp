// Fault-injection campaign backing the paper's §IV.C safety argument.
//
// Three experiments per policy:
//  1. Transient chip-wide droop sweep: 50-cycle droops injected at many
//     points of the redundant pair's execution; outcomes classified as
//     masked / detected / SDC against a golden (fault-free) run.
//  2. Permanent SM defect sweep: one broken SM at a time.
//  3. Temporal-diversity slack: instruction-level minimum slack between the
//     copies and the droop widths they are exposed to, including a search
//     for a window that would corrupt both copies identically.
#include <cstdio>

#include "common/table.h"
#include "core/diversity.h"
#include "core/exec.h"
#include "fault/injector.h"
#include "isa/builder.h"
#include "safety/asil.h"

namespace {

using namespace higpu;

/// Dense, all-live kernel (every datapath result reaches the output):
/// out[gid] = chain of FFMAs seeded by gid.
isa::ProgramPtr make_campaign_kernel() {
  using namespace isa;
  KernelBuilder kb("campaign");
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);
  Reg acc = kb.reg(), f = kb.reg();
  kb.i2f(f, gid);
  kb.ffma(acc, f, fimm(0.001f), fimm(1.0f));
  for (int i = 0; i < 120; ++i)
    kb.ffma(acc, acc, fimm(1.0000011f), fimm(0.125f));
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

struct RunOutput {
  std::vector<u8> bits_a;
  bool copies_match = true;
  Cycle span_begin = 0, span_end = 0;
  u64 corruptions = 0;
};

constexpr u32 kBlocks = 12;
constexpr u32 kThreads = kBlocks * 128;

RunOutput run_campaign(sched::Policy policy, fault::FaultInjector* fi) {
  runtime::Device dev;
  if (fi != nullptr) dev.gpu().set_fault_hook(fi);
  core::ExecSession::Config cfg;
  cfg.policy = policy;
  core::ExecSession s(dev, cfg);
  const core::ReplicaPtr out = s.alloc(kThreads * 4);
  s.launch(make_campaign_kernel(), sim::Dim3{kBlocks, 1, 1},
           sim::Dim3{128, 1, 1}, {out, kThreads});
  s.sync();

  RunOutput r;
  r.copies_match = s.compare(out, kThreads * 4).unanimous;
  r.bits_a.resize(kThreads * 4);
  dev.gpu().store().read_block(r.bits_a.data(), out.primary(), kThreads * 4);
  r.span_begin = ~Cycle{0};
  for (const sim::BlockRecord& rec : dev.gpu().block_records()) {
    r.span_begin = std::min(r.span_begin, rec.dispatch_cycle);
    r.span_end = std::max(r.span_end, rec.end_cycle);
  }
  if (fi != nullptr) r.corruptions = fi->corruptions();
  return r;
}

void droop_sweep(sched::Policy policy, const RunOutput& golden,
                 fault::CampaignTally& tally) {
  const Cycle span = golden.span_end - golden.span_begin;
  constexpr u32 kInjections = 40;
  constexpr Cycle kWidth = 50;
  for (u32 i = 0; i < kInjections; ++i) {
    const Cycle start = golden.span_begin + span * i / kInjections;
    fault::FaultInjector fi;
    fi.arm_droop(start, kWidth, 2);
    const RunOutput r = run_campaign(policy, &fi);
    if (fi.corruptions() == 0) {
      tally.count(fault::Outcome::kMasked);  // droop hit an idle phase
      continue;
    }
    tally.count(
        fault::classify(r.copies_match, r.bits_a == golden.bits_a));
  }
}

void permanent_sweep(sched::Policy policy, const RunOutput& golden,
                     fault::CampaignTally& tally) {
  for (u32 sm = 0; sm < 6; ++sm) {
    fault::FaultInjector fi;
    fi.arm_permanent_sm(sm, 0, 2);
    const RunOutput r = run_campaign(policy, &fi);
    if (fi.corruptions() == 0) {
      tally.count(fault::Outcome::kMasked);
      continue;
    }
    tally.count(
        fault::classify(r.copies_match, r.bits_a == golden.bits_a));
  }
}

core::InstrTraceCollector::SlackReport slack_for(sched::Policy policy,
                                                 bool* window_exists) {
  runtime::Device dev;
  core::InstrTraceCollector tc;
  dev.gpu().set_trace_sink(&tc);
  core::ExecSession::Config cfg;
  cfg.policy = policy;
  core::ExecSession s(dev, cfg);
  const core::ReplicaPtr out = s.alloc(kThreads * 4);
  s.launch(make_campaign_kernel(), sim::Dim3{kBlocks, 1, 1},
           sim::Dim3{128, 1, 1}, {out, kThreads});
  s.sync();
  const auto [ida, idb] = s.pairs()[0];
  *window_exists =
      tc.find_identical_corruption_window(ida, idb, 50).has_value();
  return tc.slack(ida, idb, 50);
}

}  // namespace

int main() {
  using higpu::TextTable;
  std::printf("Fault-injection campaign (>>IV.C): 50-cycle chip-wide droops "
              "+ permanent SM defects, per policy\n\n");

  const sched::Policy policies[] = {sched::Policy::kDefault,
                                    sched::Policy::kHalf,
                                    sched::Policy::kSrrs};

  TextTable table({"policy", "faults", "masked", "detected", "SDC",
                   "diag-coverage", "min-slack(cyc)", "exposed@50",
                   "ccf-window", "claimable"});
  for (sched::Policy policy : policies) {
    const RunOutput golden = run_campaign(policy, nullptr);
    fault::CampaignTally tally;
    droop_sweep(policy, golden, tally);
    permanent_sweep(policy, golden, tally);

    bool window_exists = false;
    const auto slack = slack_for(policy, &window_exists);

    // A mechanism with SDCs cannot claim ASIL-D decomposition credit.
    const double dc = tally.diagnostic_coverage();
    const safety::Asil claim =
        (tally.sdc == 0 && dc >= 0.99)
            ? safety::composed_asil(safety::Asil::kB, safety::Asil::kB, true)
            : safety::Asil::kB;

    table.add_row({sched::policy_name(policy), std::to_string(tally.total()),
                   std::to_string(tally.masked),
                   std::to_string(tally.detected), std::to_string(tally.sdc),
                   TextTable::fmt(dc, 3), std::to_string(slack.min_slack),
                   std::to_string(slack.exposed),
                   window_exists ? "EXISTS" : "none",
                   safety::asil_name(claim)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("interpretation: SRRS/HALF must show zero SDC and no window in "
              "which a chip-wide transient corrupts both copies identically; "
              "the default scheduler gives no such guarantee (paper >>IV.C).\n");
  return 0;
}
