// google-benchmark microbenchmarks of the simulator's hot components:
// cache tag array, coalescer, memory-hierarchy timing path, SIMT issue loop
// and kernel-program finalization (CFG + post-dominators).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "memsys/cache.h"
#include "memsys/coalescer.h"
#include "memsys/hierarchy.h"
#include "sched/policies.h"
#include "sim/gpu.h"
#include "tests/test_kernels.h"

namespace {

using namespace higpu;

void BM_CacheAccess(benchmark::State& state) {
  memsys::SetAssocCache cache(24 * 1024, 4, 128);
  Rng rng(7);
  u64 line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line, (line & 1) != 0).hit);
    line = rng.next_below(4096);
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CoalesceUnitStride(benchmark::State& state) {
  std::vector<u64> addrs;
  for (u64 i = 0; i < 32; ++i) addrs.push_back(1000 + i * 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(memsys::coalesce(addrs, 128).size());
}
BENCHMARK(BM_CoalesceUnitStride);

void BM_CoalesceScatter(benchmark::State& state) {
  Rng rng(13);
  std::vector<u64> addrs;
  for (u64 i = 0; i < 32; ++i) addrs.push_back(rng.next_below(1 << 20) * 4);
  for (auto _ : state)
    benchmark::DoNotOptimize(memsys::coalesce(addrs, 128).size());
}
BENCHMARK(BM_CoalesceScatter);

void BM_HierarchyAccess(benchmark::State& state) {
  memsys::MemParams mp;
  memsys::MemHierarchy mem(6, mp);
  Rng rng(29);
  Cycle now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem.access_line(static_cast<u32>(rng.next_below(6)),
                        rng.next_below(1 << 16), false, now)
            .done);
    ++now;
  }
}
BENCHMARK(BM_HierarchyAccess);

void BM_ProgramFinalize(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(testing::make_spin_kernel(100)->size());
}
BENCHMARK(BM_ProgramFinalize);

void BM_SimulateKernel(benchmark::State& state) {
  // Whole-kernel simulation throughput (cycles simulated per second is the
  // interesting derived metric).
  const u32 threads = static_cast<u32>(state.range(0));
  isa::ProgramPtr prog = testing::make_spin_kernel(50);
  for (auto _ : state) {
    memsys::GlobalStore store;
    sim::GpuParams p;
    sim::Gpu gpu(p, &store);
    gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
    sim::KernelLaunch l =
        testing::make_launch(prog, threads, 128, {store.alloc(threads * 4), threads});
    gpu.launch(std::move(l));
    gpu.run_until_idle();
    benchmark::DoNotOptimize(gpu.now());
    state.counters["sim_cycles"] = static_cast<double>(gpu.now());
  }
}
BENCHMARK(BM_SimulateKernel)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
