// Lightweight named statistics counters used by every simulator component.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace higpu {

/// A bag of named 64-bit counters plus derived helpers. Components own a
/// StatSet and export it for reporting; the GPU top-level merges them.
class StatSet {
 public:
  /// Add `delta` to counter `name` (creates it at zero on first use).
  void add(const std::string& name, u64 delta = 1);

  /// Set counter `name` to `value`.
  void set(const std::string& name, u64 value);

  /// Value of counter `name` (0 if absent).
  u64 get(const std::string& name) const;

  /// True if the counter exists.
  bool has(const std::string& name) const;

  /// Ratio a/(a+b), or 0 if both zero. Useful for hit rates.
  double ratio(const std::string& a, const std::string& b) const;

  /// Merge all counters of `other` into this set (summing).
  void merge(const StatSet& other);

  /// Reset all counters to zero (keeps names).
  void clear();

  /// Sorted (name, value) pairs for reporting.
  std::vector<std::pair<std::string, u64>> entries() const;

  /// Exact counter-for-counter equality (campaign determinism checks).
  bool operator==(const StatSet& other) const = default;

 private:
  std::map<std::string, u64> counters_;
};

/// Simple running aggregate (min/max/sum/count) for sampled values.
class RunningStat {
 public:
  void sample(double v);
  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace higpu
