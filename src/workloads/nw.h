// nw — Needleman-Wunsch sequence alignment (Rodinia): integer dynamic
// programming processed in 16x16 tiles along anti-diagonals. One kernel
// launch per tile diagonal (2*nb-1 launches of 1..nb small blocks); inside a
// block the tile is swept wavefront-style in shared memory with a barrier
// per step. Many short, narrow kernels.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Nw final : public Workload {
 public:
  std::string name() const override { return "nw"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kTile = 16;
  static constexpr i32 kPenalty = -2;
  u32 n_ = 0;  // alignment length; DP matrix is (n_+1)^2
  std::vector<i32> ref_matrix_;  // similarity scores, (n_+1)^2
  std::vector<i32> reference_;   // CPU DP result
  std::vector<i32> result_;
};

}  // namespace higpu::workloads
