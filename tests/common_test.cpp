#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace higpu {
namespace {

TEST(Types, FloatBitCastRoundTrips) {
  EXPECT_EQ(bits2f(f2bits(1.5f)), 1.5f);
  EXPECT_EQ(bits2f(f2bits(-0.0f)), -0.0f);
  EXPECT_EQ(f2bits(0.0f), 0u);
}

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Types, AlignUp) {
  EXPECT_EQ(align_up(0, 256), 0u);
  EXPECT_EQ(align_up(1, 256), 256u);
  EXPECT_EQ(align_up(256, 256), 256u);
  EXPECT_EQ(align_up(257, 256), 512u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, FloatInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = r.next_float(2.0f, 3.0f);
    EXPECT_GE(v, 2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NextBelowBounded) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), r.next_u64());
}

TEST(Stats, AddAndGet) {
  StatSet s;
  EXPECT_EQ(s.get("x"), 0u);
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5u);
  EXPECT_TRUE(s.has("x"));
  EXPECT_FALSE(s.has("y"));
}

TEST(Stats, MergeSums) {
  StatSet a, b;
  a.add("hits", 3);
  b.add("hits", 4);
  b.add("misses", 1);
  a.merge(b);
  EXPECT_EQ(a.get("hits"), 7u);
  EXPECT_EQ(a.get("misses"), 1u);
}

TEST(Stats, RatioHandlesZero) {
  StatSet s;
  EXPECT_DOUBLE_EQ(s.ratio("a", "b"), 0.0);
  s.add("a", 3);
  s.add("b", 1);
  EXPECT_DOUBLE_EQ(s.ratio("a", "b"), 0.75);
}

TEST(RunningStat, TracksMinMaxMean) {
  RunningStat r;
  r.sample(2.0);
  r.sample(4.0);
  r.sample(6.0);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_DOUBLE_EQ(r.mean(), 4.0);
  EXPECT_DOUBLE_EQ(r.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.max(), 6.0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1.000"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt_ratio(0.5), "0.500");
}

}  // namespace
}  // namespace higpu
