#include "memsys/hierarchy.h"

#include <algorithm>

namespace higpu::memsys {

MemHierarchy::MemHierarchy(u32 num_sms, const MemParams& params)
    : params_(params),
      l2_(params.l2_size, params.l2_assoc, params.line_bytes),
      l1_port_free_(num_sms, 0),
      l2_bank_free_(params.l2_banks, 0),
      dram_channel_free_(params.dram_channels, 0),
      mshr_(num_sms) {
  l1_.reserve(num_sms);
  for (u32 i = 0; i < num_sms; ++i)
    l1_.emplace_back(params.l1_size, params.l1_assoc, params.line_bytes);
}

void MemHierarchy::reset() {
  for (auto& c : l1_) c.clear();
  l2_.clear();
  std::fill(l1_port_free_.begin(), l1_port_free_.end(), 0);
  std::fill(l2_bank_free_.begin(), l2_bank_free_.end(), 0);
  std::fill(dram_channel_free_.begin(), dram_channel_free_.end(), 0);
  for (auto& m : mshr_) m.clear();
  l1_hits_ = l1_misses_ = 0;
  l1_write_hits_ = l1_write_misses_ = 0;
  l1_mshr_merges_ = l1_writebacks_ = 0;
  l2_hits_ = l2_misses_ = 0;
  dram_reads_ = dram_writebacks_ = 0;
  atomics_ = 0;
}

StatSet MemHierarchy::stats() const {
  StatSet s;
  // Counters appear only once nonzero, mirroring StatSet entries that were
  // created on first add().
  auto put = [&s](const char* name, u64 v) {
    if (v) s.add(name, v);
  };
  put("l1_hits", l1_hits_);
  put("l1_misses", l1_misses_);
  put("l1_write_hits", l1_write_hits_);
  put("l1_write_misses", l1_write_misses_);
  put("l1_mshr_merges", l1_mshr_merges_);
  put("l1_writebacks", l1_writebacks_);
  put("l2_hits", l2_hits_);
  put("l2_misses", l2_misses_);
  put("dram_reads", dram_reads_);
  put("dram_writebacks", dram_writebacks_);
  put("atomics", atomics_);
  return s;
}

Cycle MemHierarchy::access_l2(u64 line_addr, bool is_write, Cycle now,
                              bool is_atomic) {
  const u32 bank = static_cast<u32>(line_addr % params_.l2_banks);
  const u32 service =
      params_.l2_service + (is_atomic ? params_.atomic_extra : 0);
  const Cycle start = std::max(now, l2_bank_free_[bank]);
  l2_bank_free_[bank] = start + service;

  const CacheAccessResult res = l2_.access(line_addr, is_write || is_atomic);
  if (res.writeback_line) {
    // Dirty eviction: consumes DRAM bandwidth but is off the critical path.
    const u32 ch = static_cast<u32>(*res.writeback_line % params_.dram_channels);
    dram_channel_free_[ch] =
        std::max(dram_channel_free_[ch], start) + params_.dram_service;
    dram_writebacks_ += 1;
  }
  if (res.hit) {
    l2_hits_ += 1;
    return start + params_.l2_latency;
  }
  l2_misses_ += 1;
  const u32 ch = static_cast<u32>(line_addr % params_.dram_channels);
  const Cycle dram_start = std::max(start, dram_channel_free_[ch]);
  dram_channel_free_[ch] = dram_start + params_.dram_service;
  dram_reads_ += 1;
  return dram_start + params_.dram_latency;
}

Cycle MemHierarchy::access_line(u32 sm, u64 line_addr, bool is_write, Cycle now) {
  // The cycle returned here is final (the event-driven contract in the
  // header): all contention is resolved now, against the bandwidth counters
  // as of `now`, so the caller can sleep until it without re-checking.
  // L1 port: one line transaction per cycle per SM.
  const Cycle t = std::max(now, l1_port_free_[sm]);
  l1_port_free_[sm] = t + 1;

  // Reap completed in-flight fills lazily.
  auto& mshr = mshr_[sm];
  for (size_t i = 0; i < mshr.size(); ++i) {
    if (mshr[i].line != line_addr) continue;
    if (mshr[i].ready > t) {
      // Merge into the in-flight fill (MSHR hit): no new traffic.
      l1_mshr_merges_ += 1;
      const Cycle done = mshr[i].ready;
      if (is_write) l1_[sm].access(line_addr, true);
      return done;
    }
    mshr[i] = mshr.back();
    mshr.pop_back();
    break;
  }

  const CacheAccessResult res = l1_[sm].access(line_addr, is_write);
  if (res.writeback_line) {
    // Write dirty victim back to L2 (consumes bank bandwidth only).
    const u32 bank = static_cast<u32>(*res.writeback_line % params_.l2_banks);
    l2_bank_free_[bank] = std::max(l2_bank_free_[bank], t) + params_.l2_service;
    l2_.access(*res.writeback_line, /*is_write=*/true);
    l1_writebacks_ += 1;
  }
  if (res.hit) {
    (is_write ? l1_write_hits_ : l1_hits_) += 1;
    return t + params_.l1_latency;
  }
  (is_write ? l1_write_misses_ : l1_misses_) += 1;

  const Cycle ready = access_l2(line_addr, is_write, t + params_.l1_latency,
                                /*is_atomic=*/false);
  if (mshr.size() < params_.l1_mshr_entries)
    mshr.push_back(MshrEntry{line_addr, ready});
  return ready;
}

Cycle MemHierarchy::access_atomic(u32 sm, u64 line_addr, Cycle now) {
  // Atomics bypass the L1; invalidate a stale local copy if present.
  const Cycle t = std::max(now, l1_port_free_[sm]);
  l1_port_free_[sm] = t + 1;
  l1_[sm].invalidate_line(line_addr);
  atomics_ += 1;
  return access_l2(line_addr, /*is_write=*/true, t, /*is_atomic=*/true);
}

}  // namespace higpu::memsys
