// ScenarioResult <-> JSONL record conversion (higpu.campaign.jsonl/1).
//
// One ScenarioResult is one self-contained JSON object on one line. Every
// deterministic field round-trips bit-exactly — they are all integers,
// booleans, enums (serialized by name) or strings — which is what lets the
// distributed campaign service journal results as they stream in and still
// honor the campaign determinism contract on resume
// (ScenarioResult::deterministic_fields_equal against a jobs=1 golden).
// The non-deterministic wall-clock fields travel as doubles for reporting
// and are excluded from that equality, exactly as in the in-process runner.
#pragma once

#include <string>

#include "exp/campaign.h"

namespace higpu::exp {

/// Serialize one result as a single-line JSON object (no trailing newline).
/// The `error` string may contain newlines/quotes/control characters from
/// exception text; they are escaped so the record never spans lines.
std::string result_to_jsonl(const ScenarioResult& r);

/// Parse a record produced by result_to_jsonl. Throws std::runtime_error
/// (with the offending field or parse offset) on malformed input — a
/// corrupted journal line is always a loud failure, never a silent skip.
ScenarioResult result_from_jsonl(const std::string& line);

}  // namespace higpu::exp
