// streamcluster — online clustering (Rodinia): repeated candidate-center
// evaluation kernels computing, for every point, the distance to a candidate
// and the resulting cost delta. Points are synthesized in memory and the
// many compute-dense kernel launches dominate end-to-end time — the second
// benchmark with visible redundancy cost in Fig. 5.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Streamcluster final : public Workload {
 public:
  std::string name() const override { return "streamcluster"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kDims = 32;
  u32 n_ = 0;
  u32 candidates_ = 0;
  std::vector<float> points_;      // n x kDims
  std::vector<float> reference_;   // final min-cost per point
  std::vector<float> result_;
};

}  // namespace higpu::workloads
