// Minimal leveled logging. Off by default so simulations stay quiet in tests;
// benches/examples can raise the level for progress reporting.
//
// Every emitted line carries a monotonic "+<ms>" timestamp (steady clock
// since process start) and an optional process-wide prefix (a dist worker
// sets "w<id>"), and the output path is pluggable: set_log_sink() redirects
// fully formatted lines away from stderr — the dist worker installs a sink
// that ships them to the coordinator, which lands them in the campaign
// journal. All of it is thread-safe (worker heartbeat threads log
// concurrently with the main thread).
#pragma once

#include <functional>
#include <string>

#include "common/types.h"

namespace higpu {

enum class LogLevel { kSilent = 0, kError, kWarn, kInfo, kDebug };

/// Set the global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every line that passes the threshold, fully formatted
/// ("+<ms>ms [<prefix>] LEVEL: <msg>") but without trailing newline.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Redirect log output to `sink` (nullptr restores stderr). The sink runs
/// under the log mutex: keep it quick and never log from inside it.
void set_log_sink(LogSink sink);

/// Prefix stamped into every subsequent line (e.g. "w3" on a dist worker);
/// empty disables.
void set_log_prefix(const std::string& prefix);

/// Milliseconds since process start (steady clock) — the timestamp used in
/// log lines.
u64 log_monotonic_ms();

/// Emit a message if `level` is at or below the global threshold.
void log_msg(LogLevel level, const std::string& msg);

inline void log_error(const std::string& m) { log_msg(LogLevel::kError, m); }
inline void log_warn(const std::string& m) { log_msg(LogLevel::kWarn, m); }
inline void log_info(const std::string& m) { log_msg(LogLevel::kInfo, m); }
inline void log_debug(const std::string& m) { log_msg(LogLevel::kDebug, m); }

}  // namespace higpu
