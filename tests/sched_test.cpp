// Kernel-scheduler policy behaviour: SRRS mapping/serialization, HALF
// partitioning via masks, default-policy concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "ckpt/serial.h"
#include "memsys/global_store.h"
#include "sched/edf.h"
#include "sched/policies.h"
#include "sim/gpu.h"
#include "tests/test_kernels.h"

namespace higpu::sched {
namespace {

using sim::BlockRecord;
using sim::Gpu;
using sim::GpuParams;
using sim::KernelLaunch;
using testing::make_launch;
using testing::make_spin_kernel;

struct RunResult {
  std::vector<BlockRecord> records;
  Cycle first_dispatch_a = 0, done_a = 0;
  Cycle first_dispatch_b = 0, done_b = 0;
};

/// Launch two copies of the same kernel under `policy` with the given hints.
RunResult run_pair(Policy policy, u32 threads, u32 spin, sim::SchedHints ha,
                   sim::SchedHints hb) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(make_scheduler(policy));

  isa::ProgramPtr prog = make_spin_kernel(spin);
  KernelLaunch a = make_launch(prog, threads, 128,
                               {store.alloc(threads * 4), threads});
  a.hints = ha;
  a.stream = 0;
  KernelLaunch b = make_launch(prog, threads, 128,
                               {store.alloc(threads * 4), threads});
  b.hints = hb;
  b.stream = 1;

  const u32 ida = gpu.launch(std::move(a));
  const u32 idb = gpu.launch(std::move(b));
  gpu.run_until_idle(200'000'000);

  RunResult r;
  r.records = gpu.block_records();
  r.first_dispatch_a = gpu.kernel_state(ida).first_dispatch_cycle;
  r.done_a = gpu.kernel_state(ida).done_cycle;
  r.first_dispatch_b = gpu.kernel_state(idb).first_dispatch_cycle;
  r.done_b = gpu.kernel_state(idb).done_cycle;
  return r;
}

TEST(SmRangeMask, BuildsExpectedBits) {
  EXPECT_EQ(sm_range_mask(0, 3), 0b111u);
  EXPECT_EQ(sm_range_mask(3, 6), 0b111000u);
  EXPECT_EQ(sm_range_mask(2, 2), 0u);
}

TEST(SmRangeMask, EdgeWidthsAreWellDefined) {
  // hi == 64 must fill the whole mask without a 64-bit shift (UB); the
  // widest single shift the implementation performs is 1ull << 63.
  EXPECT_EQ(sm_range_mask(0, 64), ~0ull);
  EXPECT_EQ(sm_range_mask(63, 64), 1ull << 63);
  // Empty ranges at both extremes are exactly zero.
  EXPECT_EQ(sm_range_mask(0, 0), 0u);
  EXPECT_EQ(sm_range_mask(64, 64), 0u);
}

TEST(SchedHints, MaskSemantics) {
  sim::SchedHints h;
  EXPECT_TRUE(h.sm_allowed(0));  // 0 mask = all allowed
  EXPECT_TRUE(h.sm_allowed(5));
  h.sm_mask = 0b101;
  EXPECT_TRUE(h.sm_allowed(0));
  EXPECT_FALSE(h.sm_allowed(1));
  EXPECT_TRUE(h.sm_allowed(2));
}

TEST(Srrs, StrictRoundRobinMapping) {
  sim::SchedHints ha, hb;
  ha.start_sm = 0;
  hb.start_sm = 3;
  const RunResult r = run_pair(Policy::kSrrs, 36 * 128, 20, ha, hb);
  for (const BlockRecord& rec : r.records) {
    const u32 start = rec.launch_id == 0 ? 0u : 3u;
    EXPECT_EQ(rec.sm, (start + rec.block_linear) % 6)
        << "launch " << rec.launch_id << " block " << rec.block_linear;
  }
}

TEST(Srrs, DifferentStartsGiveDisjointSmsPerBlock) {
  sim::SchedHints ha, hb;
  ha.start_sm = 0;
  hb.start_sm = 3;
  const RunResult r = run_pair(Policy::kSrrs, 24 * 128, 20, ha, hb);
  std::map<u32, u32> sm_a, sm_b;
  for (const BlockRecord& rec : r.records)
    (rec.launch_id == 0 ? sm_a : sm_b)[rec.block_linear] = rec.sm;
  ASSERT_EQ(sm_a.size(), sm_b.size());
  for (const auto& [block, sm] : sm_a) EXPECT_NE(sm, sm_b.at(block));
}

TEST(Srrs, FullySerializesKernels) {
  sim::SchedHints ha, hb;
  hb.start_sm = 3;
  const RunResult r = run_pair(Policy::kSrrs, 24 * 128, 50, ha, hb);
  // The second kernel starts only after the first fully completed.
  EXPECT_GE(r.first_dispatch_b, r.done_a);
}

TEST(Srrs, BlockIntervalsNeverOverlapAcrossCopies) {
  sim::SchedHints ha, hb;
  hb.start_sm = 1;
  const RunResult r = run_pair(Policy::kSrrs, 12 * 128, 50, ha, hb);
  Cycle max_end_a = 0, min_start_b = ~Cycle{0};
  for (const BlockRecord& rec : r.records) {
    if (rec.launch_id == 0) max_end_a = std::max(max_end_a, rec.end_cycle);
    if (rec.launch_id == 1)
      min_start_b = std::min(min_start_b, rec.dispatch_cycle);
  }
  EXPECT_GE(min_start_b, max_end_a);
}

TEST(Half, MasksPartitionTheSms) {
  sim::SchedHints ha, hb;
  ha.sm_mask = sm_range_mask(0, 3);
  hb.sm_mask = sm_range_mask(3, 6);
  const RunResult r = run_pair(Policy::kHalf, 24 * 128, 50, ha, hb);
  for (const BlockRecord& rec : r.records) {
    if (rec.launch_id == 0)
      EXPECT_LT(rec.sm, 3u);
    else
      EXPECT_GE(rec.sm, 3u);
  }
}

TEST(Half, CopiesOverlapInTime) {
  sim::SchedHints ha, hb;
  ha.sm_mask = sm_range_mask(0, 3);
  hb.sm_mask = sm_range_mask(3, 6);
  const RunResult r = run_pair(Policy::kHalf, 24 * 128, 400, ha, hb);
  // Friendly kernels: the second copy starts well before the first ends.
  EXPECT_LT(r.first_dispatch_b, r.done_a);
}

TEST(Default, UsesAllSmsAndOverlaps) {
  const RunResult r = run_pair(Policy::kDefault, 24 * 128, 400, {}, {});
  std::set<u32> sms_a;
  for (const BlockRecord& rec : r.records)
    if (rec.launch_id == 0) sms_a.insert(rec.sm);
  EXPECT_EQ(sms_a.size(), 6u);  // unconstrained kernel spreads over all SMs
  EXPECT_LT(r.first_dispatch_b, r.done_a);  // concurrent kernels
}

TEST(Default, RespectsStreamOrdering) {
  // Two kernels on the SAME stream must serialize even under Default.
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<DefaultKernelScheduler>());
  isa::ProgramPtr prog = make_spin_kernel(50);
  KernelLaunch a = make_launch(prog, 12 * 128, 128, {store.alloc(12 * 128 * 4), 12 * 128});
  KernelLaunch b = make_launch(prog, 12 * 128, 128, {store.alloc(12 * 128 * 4), 12 * 128});
  a.stream = 7;
  b.stream = 7;
  const u32 ida = gpu.launch(std::move(a));
  const u32 idb = gpu.launch(std::move(b));
  gpu.run_until_idle(100'000'000);
  EXPECT_GE(gpu.kernel_state(idb).first_dispatch_cycle,
            gpu.kernel_state(ida).done_cycle);
}

TEST(Policies, FactoryAndNames) {
  EXPECT_EQ(make_scheduler(Policy::kSrrs)->name(), "srrs");
  EXPECT_EQ(make_scheduler(Policy::kDefault)->name(), "default");
  EXPECT_EQ(make_scheduler(Policy::kHalf)->name(), "default");  // HALF = masks
  EXPECT_STREQ(policy_name(Policy::kHalf), "half");
  EXPECT_STREQ(policy_name(Policy::kSrrs), "srrs");
}

TEST(Srrs, HonoursLaunchGapBeforeStart) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<SrrsKernelScheduler>());
  KernelLaunch l = make_launch(make_spin_kernel(10), 128, 128,
                               {store.alloc(128 * 4), 128});
  const u32 id = gpu.launch(std::move(l));
  gpu.run_until_idle(10'000'000);
  EXPECT_GE(gpu.kernel_state(id).first_dispatch_cycle, p.launch_gap_cycles);
}

// ---- EDF-over-streams (serving mode) ---------------------------------------

TEST(Edf, NoDeadlinesDegeneratesToLaunchOrder) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<EdfKernelScheduler>(
      EdfKernelScheduler::Placement::kSrrs));

  isa::ProgramPtr prog = make_spin_kernel(200);
  std::vector<u32> ids;
  for (u32 s = 0; s < 3; ++s) {
    KernelLaunch l =
        make_launch(prog, 768, 128, {store.alloc(768 * 4), 768});
    l.stream = s;
    ids.push_back(gpu.launch(std::move(l)));
  }
  gpu.run_until_idle(200'000'000);
  EXPECT_LT(gpu.kernel_state(ids[0]).done_cycle,
            gpu.kernel_state(ids[1]).first_dispatch_cycle);
  EXPECT_LT(gpu.kernel_state(ids[1]).done_cycle,
            gpu.kernel_state(ids[2]).first_dispatch_cycle);
}

TEST(Edf, DeadlineBeatsLaunchOrderUnderSrrsPlacement) {
  // Three serialized kernels with deadlines *reversed* against launch
  // order. The first kernel starts alone (launch-gap staggering makes it
  // the only arrived one); by the time it drains, both later kernels are
  // visible and EDF must pick the latest-launched, earliest-deadline one.
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  auto edf = std::make_unique<EdfKernelScheduler>(
      EdfKernelScheduler::Placement::kSrrs);
  edf->set_stream_deadline(0, 9'000'000);
  edf->set_stream_deadline(1, 5'000'000);
  edf->set_stream_deadline(2, 1'000'000);
  gpu.set_kernel_scheduler(std::move(edf));

  isa::ProgramPtr prog = make_spin_kernel(4000);
  std::vector<u32> ids;
  for (u32 s = 0; s < 3; ++s) {
    KernelLaunch l =
        make_launch(prog, 768, 128, {store.alloc(768 * 4), 768});
    l.stream = s;
    ids.push_back(gpu.launch(std::move(l)));
  }
  gpu.run_until_idle(500'000'000);

  const Cycle d0 = gpu.kernel_state(ids[0]).first_dispatch_cycle;
  const Cycle d1 = gpu.kernel_state(ids[1]).first_dispatch_cycle;
  const Cycle d2 = gpu.kernel_state(ids[2]).first_dispatch_cycle;
  EXPECT_LT(d0, d2);  // k0 was alone when it started
  EXPECT_LT(d2, d1);  // then deadline order wins: k2 (1ms) before k1 (5ms)
  // SRRS placement contract still holds: serialized, round-robin mapping.
  for (const BlockRecord& r : gpu.block_records())
    EXPECT_EQ(r.sm, r.block_linear % gpu.num_sms());
}

TEST(Edf, DeadlineBeatsLaunchOrderUnderGreedyPlacement) {
  // A wide long-running kernel saturates every SM slot; a later, smaller
  // kernel with an earlier deadline must overtake the backlog as slots
  // free up, finishing first despite launching second.
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  auto edf = std::make_unique<EdfKernelScheduler>(
      EdfKernelScheduler::Placement::kGreedy);
  edf->set_stream_deadline(0, 9'000'000);
  edf->set_stream_deadline(1, 1'000'000);
  gpu.set_kernel_scheduler(std::move(edf));

  isa::ProgramPtr prog = make_spin_kernel(5000);
  KernelLaunch big =
      make_launch(prog, 128 * 120, 128, {store.alloc(128 * 120 * 4), 128 * 120});
  big.stream = 0;
  KernelLaunch small =
      make_launch(prog, 128 * 6, 128, {store.alloc(128 * 6 * 4), 128 * 6});
  small.stream = 1;
  const u32 id_big = gpu.launch(std::move(big));
  const u32 id_small = gpu.launch(std::move(small));
  gpu.run_until_idle(500'000'000);

  EXPECT_LT(gpu.kernel_state(id_small).done_cycle,
            gpu.kernel_state(id_big).done_cycle);
}

TEST(Edf, StateSurvivesCheckpointRoundtrip) {
  EdfKernelScheduler a(EdfKernelScheduler::Placement::kSrrs);
  a.set_stream_deadline(0, 111);
  a.set_stream_deadline(7, 42);
  ckpt::Writer w;
  a.save_state(w);
  const std::vector<u8> blob = w.blob();
  const std::vector<ckpt::Section> sections;  // raw stream, no sections
  ckpt::Reader r(blob, sections);
  EdfKernelScheduler b;
  b.restore_state(r);
  EXPECT_EQ(b.stream_deadline(0), 111u);
  EXPECT_EQ(b.stream_deadline(7), 42u);
  EXPECT_EQ(b.stream_deadline(3), EdfKernelScheduler::kNoDeadline);
}

TEST(Edf, PlacementForPolicy) {
  EXPECT_EQ(EdfKernelScheduler::placement_for(Policy::kSrrs),
            EdfKernelScheduler::Placement::kSrrs);
  EXPECT_EQ(EdfKernelScheduler::placement_for(Policy::kDefault),
            EdfKernelScheduler::Placement::kGreedy);
  EXPECT_EQ(EdfKernelScheduler::placement_for(Policy::kHalf),
            EdfKernelScheduler::Placement::kGreedy);
}

}  // namespace
}  // namespace higpu::sched
