// lavaMD — molecular dynamics in a boxed domain (Rodinia): one thread block
// per box; every particle accumulates pairwise exp-kernel forces against all
// particles of the home box and its neighbour boxes. Arithmetic-dense,
// SFU-heavy, one big kernel launch.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class LavaMd final : public Workload {
 public:
  std::string name() const override { return "lavaMD"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kParticles = 32;  // per box
  static constexpr u32 kNeighbors = 8;   // neighbour boxes per box (incl. self)
  u32 boxes_ = 0;
  std::vector<i32> neigh_;   // boxes_ x kNeighbors box ids
  std::vector<float> px_, py_, pz_, charge_;
  std::vector<float> reference_;  // potential per particle
  std::vector<float> result_;
};

}  // namespace higpu::workloads
