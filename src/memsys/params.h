// Timing/geometry parameters for the GPU memory hierarchy.
#pragma once

#include "common/types.h"

namespace higpu::memsys {

/// All latencies in core cycles; all sizes in bytes.
struct MemParams {
  // Cache line (memory transaction) size. One coalesced warp access moves
  // one or more lines of this size.
  u32 line_bytes = 128;

  // Per-SM L1 data cache.
  u32 l1_size = 24 * 1024;
  u32 l1_assoc = 4;
  u32 l1_latency = 28;      // hit latency
  u32 l1_mshr_entries = 32; // outstanding misses per SM

  // Shared L2.
  u32 l2_size = 1024 * 1024;
  u32 l2_assoc = 8;
  u32 l2_banks = 8;
  u32 l2_latency = 120;     // hit latency (incl. interconnect)
  u32 l2_service = 2;       // bank occupancy per transaction (bandwidth)

  // DRAM.
  u32 dram_latency = 320;       // load-to-use latency on L2 miss
  u32 dram_service = 4;         // cycles of channel occupancy per line (bandwidth)
  u32 dram_channels = 4;

  // Shared memory (per SM).
  u32 smem_banks = 32;
  u32 smem_latency = 24;

  // Atomic operations are resolved at the L2; extra service time per access.
  u32 atomic_extra = 8;
};

}  // namespace higpu::memsys
