// obs::Registry — a named counter / gauge / histogram registry whose state
// can be snapshotted on an interval as one JSONL record per snapshot
// ("higpu.metrics/1").
//
// Naming convention (README "Observability"): dot-separated
// `<subsystem>.<noun>[.<qualifier>]`, e.g. "serve.queue_depth",
// "serve.tenant.bfs.response_ns", "dist.units_shipped". Names are created
// on first use and stay registered for the Registry's lifetime.
//
// Metric kinds:
//  * counter   — monotonically increasing u64 (events, bytes, drops);
//  * gauge     — instantaneous i64 plus its high watermark and the
//                timestamp at which the watermark was reached (closes the
//                serve-mode "queue depth over time" telemetry gap);
//  * histogram — exact sample set with nearest-rank percentiles
//                (common::Percentiles), for latency-style values.
//
// Determinism: a Registry driven from modelled time (serve mode) snapshots
// bit-identically across engines; registries driven from wall time (the
// dist coordinator's fleet view) are diagnostic only.
#pragma once

#include <map>
#include <string>

#include "common/percentiles.h"
#include "common/types.h"

namespace higpu::obs {

constexpr const char* kMetricsSchema = "higpu.metrics/1";

struct Gauge {
  i64 value = 0;
  i64 watermark = 0;
  /// Timestamp (caller's timebase) at which `watermark` was first reached.
  u64 watermark_at = 0;
  /// False until the first gauge_set (so a first negative value still
  /// establishes the watermark).
  bool initialized = false;
};

class Registry {
 public:
  /// Add `delta` to counter `name` (created at zero on first use).
  void count(const std::string& name, u64 delta = 1);
  /// Set gauge `name` to `value` at time `at`, updating the watermark.
  void gauge_set(const std::string& name, i64 value, u64 at);
  /// Record one histogram sample.
  void observe(const std::string& name, i64 sample);

  u64 counter_value(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Percentiles* find_histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }

  /// One self-contained JSON object (no newline): every counter, every
  /// gauge (value, watermark, watermark_at) and every histogram's
  /// count/p50/p95/p99 as of now, stamped with `at`. Suitable for a JSONL
  /// time series — serve mode appends one per metrics interval, the dist
  /// coordinator appends its fleet view to the campaign journal.
  std::string snapshot_json(u64 at) const;

  /// Fold `other` into this registry: counters add, gauges take the max
  /// watermark (value takes other's — last writer wins), histograms merge
  /// samples. The coordinator uses this to aggregate per-worker registries
  /// into the fleet view.
  void merge(const Registry& other);

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Percentiles> hists_;
};

}  // namespace higpu::obs
