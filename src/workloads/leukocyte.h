// leukocyte — cell detection & tracking (Rodinia), reduced to its two
// characteristic kernels: a GICOV-style directional gradient-score kernel
// (compute-heavy per pixel: 8 directions x 4 radii sampled per pixel) and a
// 5x5 dilation (max filter) over the score map. Arithmetic-dense friendly
// kernels.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Leukocyte final : public Workload {
 public:
  std::string name() const override { return "leukocyte"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 dim_ = 0;
  std::vector<float> image_;
  std::vector<float> reference_;  // dilated score map
  std::vector<float> result_;
};

}  // namespace higpu::workloads
