#include "dist/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "dist/protocol.h"
#include "exp/campaign.h"
#include "exp/result_io.h"

namespace higpu::dist {

namespace {

/// Serializes frame writes: the heartbeat thread and the result path share
/// one socket, and an interleaved frame would desynchronize the stream.
class FrameSender {
 public:
  explicit FrameSender(int fd) : fd_(fd) {}
  void send(Msg type, const std::vector<u8>& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    send_frame(fd_, type, payload);
  }

 private:
  int fd_;
  std::mutex mu_;
};

exp::ScenarioResult run_work(const WorkItem& item) {
  exp::SnapshotIo io;
  io.resume = item.resume;
  io.divergence_ref = item.divergence_ref;
  return exp::run_scenario(item.spec, item.index, nullptr, nullptr, &io);
}

}  // namespace

int worker_main(int fd, u32 worker_id, int heartbeat_interval_ms) {
  FrameSender sender(fd);
  sender.send(Msg::kHello, encode_hello(worker_id));

  std::atomic<bool> stop{false};
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  std::thread heartbeat;
  if (heartbeat_interval_ms > 0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!stop.load()) {
        hb_cv.wait_for(lock, std::chrono::milliseconds(heartbeat_interval_ms));
        if (stop.load()) break;
        try {
          sender.send(Msg::kHeartbeat, {});
        } catch (const WireError&) {
          return;  // coordinator gone; main loop will see it too
        }
      }
    });
  }

  int exit_code = 0;
  try {
    Frame frame;
    // EOF without kShutdown = coordinator died; exiting quietly is right
    // either way.
    while (recv_frame(fd, &frame)) {
      if (frame.type == Msg::kShutdown) break;
      if (frame.type != Msg::kWork) continue;  // kHeartbeat etc.: ignore
      const WorkItem item = decode_work(frame.payload);
      const exp::ScenarioResult result = run_work(item);
      ResultMsg msg;
      msg.unit_id = item.unit_id;
      msg.index = item.index;
      msg.jsonl = exp::result_to_jsonl(result);
      sender.send(Msg::kResult, encode_result(msg));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_worker %u: %s\n", worker_id, e.what());
    exit_code = 1;
  }

  stop.store(true);
  hb_cv.notify_all();
  if (heartbeat.joinable()) heartbeat.join();
  return exit_code;
}

}  // namespace higpu::dist
