// Redundant kernel execution (paper §IV.A).
//
// A RedundantSession implements the five-step DCLS-offload flow on top of a
// runtime::Device:
//   (1) allocate GPU memory for both redundant copies,
//   (2) transfer input data for each copy,
//   (3) launch the two redundant kernels (policy-specific scheduling hints),
//   (4) collect results of both kernels back to the CPU,
//   (5) compare the outcomes on the (assumed ASIL-D DCLS) host cores.
//
// The same session API also runs in non-redundant baseline mode so workloads
// are written once and measured in both configurations (Fig. 5).
#pragma once

#include <string>
#include <vector>

#include "runtime/device.h"
#include "sched/policies.h"

namespace higpu::core {

using memsys::DevPtr;

/// A device allocation in a redundant session: one buffer per copy.
/// In baseline mode `b` aliases `a`.
struct DualPtr {
  DevPtr a = 0;
  DevPtr b = 0;
};

/// Kernel parameter: a dual buffer or a 32-bit scalar.
struct DualParam {
  bool is_buffer = false;
  DualPtr buf;
  u32 scalar = 0;

  DualParam(DualPtr p) : is_buffer(true), buf(p) {}     // NOLINT
  DualParam(u32 v) : scalar(v) {}                        // NOLINT
  DualParam(i32 v) : scalar(static_cast<u32>(v)) {}      // NOLINT
  DualParam(float v) : scalar(f2bits(v)) {}              // NOLINT
};

class RedundantSession {
 public:
  struct Config {
    sched::Policy policy = sched::Policy::kSrrs;
    /// false => plain single execution (the Fig. 5 "Baseline").
    bool redundant = true;
    /// SRRS starting SMs for the two copies (must differ for diversity).
    u32 srrs_start_a = 0;
    /// Defaults to num_sms/2 when left as kAuto.
    static constexpr u32 kAuto = 0xFFFFFFFF;
    u32 srrs_start_b = kAuto;
  };

  /// Installs the policy's kernel scheduler on the device's GPU.
  RedundantSession(runtime::Device& dev, Config cfg);

  // ---- Step 1: allocation -------------------------------------------------
  DualPtr alloc(u64 bytes);

  // ---- Step 2: input transfer ----------------------------------------------
  /// Uploads to both copies (two physical transfers in redundant mode).
  void h2d(DualPtr dst, const void* src, u64 bytes);

  // ---- Step 3: redundant launch ---------------------------------------------
  /// Launches copy A (stream 0) and, in redundant mode, copy B (stream 1)
  /// with the policy's scheduling hints (start SM / SM mask).
  void launch(isa::ProgramPtr prog, sim::Dim3 grid, sim::Dim3 block,
              const std::vector<DualParam>& params, const std::string& tag = "");

  /// Wait for all launched kernels of both copies. Drains the GPU through
  /// the configured simulation engine (event-driven by default; cycle
  /// counts are engine-independent, so Fig. 4/5 metrics and fault-campaign
  /// verdicts do not depend on the engine).
  /// Returns GPU cycles consumed (accumulated into kernel_cycles()).
  Cycle sync();

  // ---- Step 4: result collection --------------------------------------------
  /// Reads back copy A (host-visible result used by the application).
  void d2h(void* dst, DualPtr src, u64 bytes);

  // ---- Step 5: DCLS comparison ----------------------------------------------
  /// Reads back copy B (and copy A unless the caller already fetched it and
  /// passes it via `host_a`) and compares them on the host. Returns true if
  /// they match; accumulates the verdict. No-op (true) in baseline mode.
  bool compare(DualPtr buf, u64 bytes, const void* host_a = nullptr);

  // ---- Results -----------------------------------------------------------------
  bool all_outputs_matched() const { return mismatches_ == 0; }
  u32 comparisons() const { return comparisons_; }
  u32 mismatches() const { return mismatches_; }
  /// GPU cycles consumed across all sync() calls (the Fig. 4 metric).
  Cycle kernel_cycles() const { return kernel_cycles_; }
  /// (launch id A, launch id B) of every redundant pair, for diversity
  /// analysis over the GPU's block records.
  const std::vector<std::pair<u32, u32>>& pairs() const { return pairs_; }
  runtime::Device& device() { return dev_; }
  const Config& config() const { return cfg_; }

 private:
  sim::SchedHints hints_for_copy(bool copy_b) const;

  runtime::Device& dev_;
  Config cfg_;
  u32 num_sms_;
  Cycle kernel_cycles_ = 0;
  u32 comparisons_ = 0;
  u32 mismatches_ = 0;
  std::vector<std::pair<u32, u32>> pairs_;
  std::vector<u8> scratch_a_, scratch_b_;
};

}  // namespace higpu::core
