// Figure 5 reproduction: end-to-end execution time of the full Rodinia
// suite on the modelled COTS platform (Ryzen + GTX 1050 Ti class), baseline
// vs redundant-serialized execution (the paper mimics SRRS with
// cudaDeviceSynchronize()).
//
// Expected shape (paper): the redundancy overhead is negligible for all
// benchmarks except cfd and streamcluster, whose end-to-end time is
// dominated by kernel execution.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace higpu;
  using bench::ms;
  using bench::run_workload;
  using workloads::Scale;

  std::printf("Figure 5: end-to-end execution time (ms), baseline vs "
              "redundant serialized (SRRS mimic)\n\n");

  TextTable table({"benchmark", "baseline(ms)", "redundant(ms)", "ratio",
                   "kernel-share", "verified"});

  for (const std::string& name : workloads::all_names()) {
    const auto base = run_workload(name, Scale::kBench, sched::Policy::kDefault,
                                   /*redundant=*/false);
    const auto red = run_workload(name, Scale::kBench, sched::Policy::kSrrs,
                                  /*redundant=*/true);
    const double ratio =
        static_cast<double>(red.elapsed_ns) / static_cast<double>(base.elapsed_ns);
    // Fraction of baseline time spent in kernel execution (explains which
    // benchmarks suffer from redundancy).
    const double clock_ghz = 1.4;
    const double kernel_ns = static_cast<double>(base.kernel_cycles) / clock_ghz;
    const double kshare = kernel_ns / static_cast<double>(base.elapsed_ns);

    table.add_row({name, TextTable::fmt(ms(base.elapsed_ns), 3),
                   TextTable::fmt(ms(red.elapsed_ns), 3),
                   TextTable::fmt_ratio(ratio), TextTable::fmt(kshare, 2),
                   (base.verified && red.verified && red.outputs_matched)
                       ? "yes"
                       : "NO"});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("paper reference: overhead negligible for all benchmarks but "
              "cfd and streamcluster (kernel-dominated).\n");
  return 0;
}
