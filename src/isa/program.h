// A finalized kernel program: instructions + static resource requirements.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace higpu::isa {

/// Immutable, finalized kernel program. Produced by KernelBuilder::build().
///
/// Finalization resolves labels, validates structural invariants (every path
/// ends in EXIT, barriers are not guarded, ...) and computes the IPDOM
/// reconvergence pc for every guarded branch.
class KernelProgram {
 public:
  KernelProgram(std::string name, std::vector<Instruction> code, u16 num_regs,
                u16 num_preds, u32 shared_bytes, u32 num_params);

  const std::string& name() const { return name_; }
  const std::vector<Instruction>& code() const { return code_; }
  const Instruction& at(Pc pc) const { return code_[pc]; }
  u32 size() const { return static_cast<u32>(code_.size()); }

  /// Pc one past the last instruction; used as the "reconverge at thread
  /// exit" sentinel.
  Pc end_pc() const { return static_cast<Pc>(code_.size()); }

  /// Number of 32-bit GPRs each thread requires.
  u16 num_regs() const { return num_regs_; }
  /// Number of predicate registers each thread requires.
  u16 num_preds() const { return num_preds_; }
  /// Static shared-memory bytes per thread block.
  u32 shared_bytes() const { return shared_bytes_; }
  /// Number of 32-bit kernel parameters expected at launch.
  u32 num_params() const { return num_params_; }

  /// Count of static instructions per unit class (used by the kernel
  /// categorizer to estimate arithmetic vs memory intensity).
  u32 static_count(UnitClass uc) const;

  /// Human-readable disassembly of the whole program.
  std::string disassemble() const;

 private:
  std::string name_;
  std::vector<Instruction> code_;
  u16 num_regs_;
  u16 num_preds_;
  u32 shared_bytes_;
  u32 num_params_;
};

using ProgramPtr = std::shared_ptr<const KernelProgram>;

/// Disassemble one instruction (exposed for debugging and tests).
std::string disassemble(const Instruction& ins, Pc pc);

}  // namespace higpu::isa
