// Fundamental fixed-width types and small helpers shared across higpu.
#pragma once

#include <cstdint>
#include <cstddef>
#include <bit>

namespace higpu {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulator time unit: one GPU core clock cycle.
using Cycle = u64;

/// Sentinel for "no such future cycle" (event-driven engine wake times,
/// fault-trigger queries). Larger than any reachable simulation cycle.
constexpr Cycle kNeverCycle = ~Cycle{0};

/// Host-side time in nanoseconds (platform model).
using NanoSec = u64;

/// Reinterpret a float as its IEEE-754 bit pattern (register file storage).
constexpr u32 f2bits(float f) { return std::bit_cast<u32>(f); }
/// Reinterpret a 32-bit pattern as a float.
constexpr float bits2f(u32 b) { return std::bit_cast<float>(b); }

/// Integer ceiling division for grid sizing.
constexpr u32 ceil_div(u32 a, u32 b) { return (a + b - 1) / b; }

/// Round `v` up to a multiple of `align` (align must be a power of two).
constexpr u64 align_up(u64 v, u64 align) { return (v + align - 1) & ~(align - 1); }

}  // namespace higpu
