// Checkpoint subsystem benchmark: BENCH_ckpt.json.
//
// Two measurements, matching the two consumers of src/ckpt:
//
//  1. Campaign fast-forward — a fault sweep over injection times on an
//     otherwise identical scenario, run from scratch vs with
//     CampaignRunner's snapshot fast-forward (one clean base simulation,
//     per-fault forks from the snapshot at each injection point). Results
//     are required to be bit-identical; the payoff is wall-clock.
//
//  2. Rollback vs retry — for EVERY workload, the same detected fault
//     recovered by Recovery::kRollback (restore the pre-kernel checkpoint,
//     re-execute only the kernels) vs Recovery::kRetry (re-execute the
//     whole offload: re-upload inputs, relaunch, resimulate). The paper's
//     FTTI argument wants the response time, so that is what we compare:
//     rollback must beat retry on response_ns at equal fault plans.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"

namespace {

using namespace higpu;
using exp::FaultPlan;
using exp::ScenarioResult;
using exp::ScenarioSet;
using exp::ScenarioSpec;

ScenarioSpec base_spec(const std::string& workload) {
  ScenarioSpec s;
  s.workload = workload;
  return s;
}

/// A fault plan that this workload's DCLS pair actually detects: try a
/// droop window inside the execution first, then fall back to a permanent
/// SM-0 defect (detected for any workload that runs at least one block on
/// SM 0, i.e. all of them under SRRS).
FaultPlan detected_plan(const std::string& workload, Cycle span,
                        bool* detected) {
  const std::vector<FaultPlan> candidates = {
      FaultPlan::droop(3000 + span / 4, std::max<Cycle>(800, span / 4), 3),
      FaultPlan::droop(3000, std::max<Cycle>(800, span / 2), 7),
      FaultPlan::permanent_sm(0, 0, 7),
  };
  for (const FaultPlan& plan : candidates) {
    ScenarioSpec probe = base_spec(workload);
    probe.fault = plan;
    const ScenarioResult r = exp::run_scenario(probe);
    if (r.ok && r.mismatches > 0) {
      *detected = true;
      return plan;
    }
  }
  *detected = false;
  return candidates.back();
}

}  // namespace

int main() {
  JsonWriter jw;
  jw.begin_object();
  jw.field("schema", std::string("higpu.bench.ckpt/1"));

  // ---- 1. Campaign fast-forward ------------------------------------------
  {
    // Bench scale: simulation dominates the per-scenario wall clock, which
    // is the regime fault campaigns live in (and the one fast-forward
    // accelerates — host-side setup is not skippable).
    const std::vector<std::string> workloads = {"hotspot", "bfs", "srad"};
    ScenarioSet set;
    for (const std::string& wl : workloads) {
      ScenarioSpec clean = base_spec(wl);
      clean.scale = workloads::Scale::kBench;
      const ScenarioResult probe = exp::run_scenario(clean);
      const Cycle span = probe.ok ? probe.stats.get("cycles") : 100000;
      // Injection points deep into the run: the shared prefix dominates,
      // which is exactly the case snapshot fast-forward accelerates.
      std::vector<FaultPlan> faults = {FaultPlan::none()};
      for (u32 pct : {55, 65, 75, 85, 95})
        faults.push_back(FaultPlan::droop(span * pct / 100, 400, 3));
      set.append(ScenarioSet::of(clean).sweep_faults(faults));
    }

    exp::CampaignRunner::Config plain_cfg;
    plain_cfg.jobs = 1;
    const exp::CampaignResult plain = exp::CampaignRunner(plain_cfg).run(set);

    exp::CampaignRunner::Config ff_cfg;
    ff_cfg.jobs = 1;
    ff_cfg.snapshot_fast_forward = true;
    const exp::CampaignResult ff = exp::CampaignRunner(ff_cfg).run(set);

    bool identical = plain.results.size() == ff.results.size();
    for (size_t i = 0; identical && i < plain.results.size(); ++i)
      identical = plain.results[i].deterministic_fields_equal(ff.results[i]);

    const double speedup =
        ff.wall_sec > 0 ? plain.wall_sec / ff.wall_sec : 0.0;
    std::printf(
        "campaign fast-forward: %zu scenarios, from-scratch %.2fs, "
        "snapshot-ff %.2fs (%.2fx), results %s\n",
        plain.results.size(), plain.wall_sec, ff.wall_sec, speedup,
        identical ? "bit-identical" : "DIFFER (BUG)");

    jw.key("fast_forward");
    jw.begin_object();
    jw.field("scenarios", static_cast<u64>(plain.results.size()));
    jw.field("from_scratch_wall_sec", plain.wall_sec);
    jw.field("snapshot_ff_wall_sec", ff.wall_sec);
    jw.field("speedup", speedup);
    jw.field("bit_identical", identical);
    jw.end_object();
  }

  // ---- 2. Rollback vs retry, every workload ------------------------------
  bool rollback_wins_all = true;
  jw.key("rollback_vs_retry");
  jw.begin_array();
  for (const std::string& wl : workloads::all_names()) {
    const ScenarioResult probe = exp::run_scenario(base_spec(wl));
    if (!probe.ok) {
      std::fprintf(stderr, "%s: probe failed: %s\n", wl.c_str(),
                   probe.error.c_str());
      rollback_wins_all = false;
      continue;
    }
    bool detected = false;
    const FaultPlan plan =
        detected_plan(wl, probe.stats.get("cycles"), &detected);

    ScenarioSpec retry = base_spec(wl);
    retry.fault = plan;
    retry.redundancy = core::RedundancySpec::dcls_retry(2);
    const ScenarioResult r_retry = exp::run_scenario(retry);

    ScenarioSpec rollback = retry;
    rollback.redundancy = core::RedundancySpec::dcls_rollback(2);
    const ScenarioResult r_rb = exp::run_scenario(rollback);

    const bool wins = r_rb.ok && r_retry.ok &&
                      r_rb.response_ns < r_retry.response_ns;
    rollback_wins_all = rollback_wins_all && detected && wins;

    std::printf(
        "%-16s %-22s retry %8.3f ms (%u att%s) | rollback %8.3f ms "
        "(%u att%s) | %s\n",
        wl.c_str(), plan.label().c_str(), bench::ms(r_retry.response_ns),
        r_retry.attempts, r_retry.recovered ? ", rec" : "",
        bench::ms(r_rb.response_ns), r_rb.attempts,
        r_rb.recovered ? ", rec" : "", wins ? "rollback wins" : "RETRY WINS");

    jw.begin_object();
    jw.field("workload", wl);
    jw.field("fault", plan.label());
    jw.field("detected", detected);
    jw.field("retry_response_ns", r_retry.response_ns);
    jw.field("rollback_response_ns", r_rb.response_ns);
    jw.field("retry_recovered", r_retry.recovered);
    jw.field("rollback_recovered", r_rb.recovered);
    jw.field("retry_attempts", r_retry.attempts);
    jw.field("rollback_attempts", r_rb.attempts);
    jw.field("rollback_wins", wins);
    jw.end_object();
  }
  jw.end_array();
  jw.field("rollback_wins_all", rollback_wins_all);
  jw.end_object();

  FILE* f = std::fopen("BENCH_ckpt.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ckpt.json\n");
    return 1;
  }
  std::fputs((jw.str() + "\n").c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_ckpt.json (rollback_wins_all=%s)\n",
              rollback_wins_all ? "true" : "false");
  return rollback_wins_all ? 0 : 1;
}
