#include "exp/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/table.h"
#include "exp/units.h"

namespace higpu::exp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

bool ScenarioResult::deterministic_fields_equal(
    const ScenarioResult& other) const {
  return index == other.index && label == other.label &&
         workload == other.workload && ok == other.ok &&
         error == other.error && verified == other.verified &&
         dcls_match == other.dcls_match &&
         majority_ok == other.majority_ok &&
         comparisons == other.comparisons &&
         mismatches == other.mismatches &&
         faulty_copy == other.faulty_copy && n_copies == other.n_copies &&
         attempts == other.attempts && recovered == other.recovered &&
         degraded == other.degraded && ftti_met == other.ftti_met &&
         response_ns == other.response_ns &&
         achieved_asil == other.achieved_asil &&
         kernel_cycles == other.kernel_cycles &&
         elapsed_ns == other.elapsed_ns && ff_cycles == other.ff_cycles &&
         diversity == other.diversity && stats == other.stats &&
         sm_profile == other.sm_profile &&
         fault_active == other.fault_active &&
         corruptions == other.corruptions &&
         diverted_blocks == other.diverted_blocks && outcome == other.outcome;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, u32 index,
                            const ScenarioProbe& probe,
                            const ScenarioProbe& pre_run, SnapshotIo* snap) {
  ScenarioResult r;
  r.index = index;
  r.label = spec.label();
  r.workload = spec.workload;
  r.fault_active = spec.fault.active();

  const auto t0 = Clock::now();
  try {
    spec.validate();

    workloads::WorkloadPtr w = workloads::make(spec.workload);
    w->setup(spec.scale, spec.seed);

    runtime::Device dev(spec.gpu, spec.platform);
    if (spec.ckpt.active()) dev.set_checkpoint_policy(spec.ckpt);
    if (snap != nullptr) {
      if (!snap->capture_targets.empty())
        dev.set_checkpoint_targets(snap->capture_targets);
      if (snap->resume != nullptr) dev.arm_resume(snap->resume);
    }
    fault::FaultInjector injector;
    if (spec.fault.active()) {
      spec.fault.arm(injector);
      dev.gpu().set_fault_hook(&injector);
    }

    core::ExecSession session(dev, spec.session_config());
    if (pre_run) pre_run(dev, *w, session);
    workloads::RunContext ctx(session);
    // The session owns the recovery loop: detect -> re-execute -> FTTI
    // accounting, for every workload (not just ad-hoc bodies).
    const core::ExecSession::Report srep =
        session.run([&](core::ExecSession&) { w->run(ctx); });
    // The probe fires directly after the workload's (possibly retried)
    // run, before the result harvest below, so pre_run/probe pairs bracket
    // exactly the workload's device flow (engine benches time this
    // interval).
    if (probe) probe(dev, *w, session);

    r.verified = w->verify();
    r.dcls_match = session.all_unanimous();
    r.majority_ok = session.all_safe();
    r.comparisons = session.comparisons();
    r.mismatches = session.mismatches();
    r.faulty_copy = session.faulty_copy();
    r.n_copies = session.copies();
    r.attempts = srep.attempts;
    r.recovered = srep.attempts > 1 && srep.success;
    r.degraded = srep.degraded;
    r.ftti_met = srep.budget.met();
    r.response_ns = srep.total_ns;
    r.achieved_asil = srep.asil;
    r.kernel_cycles = session.kernel_cycles();
    r.elapsed_ns = dev.elapsed_ns();
    r.ff_cycles = dev.gpu().fast_forwarded_cycles();
    r.sim_wall_sec = dev.sim_wall_seconds();
    if (spec.redundancy.redundant())
      r.diversity = core::analyze_block_diversity(dev.gpu().block_records(),
                                                  session.all_copy_pairs());
    r.stats = dev.gpu().collect_stats();
    r.sm_profile = dev.gpu().sm_profile();
    r.corruptions = injector.corruptions();
    r.diverted_blocks = injector.diverted_blocks();
    // A retry that came back clean still *detected* the fault on an
    // earlier attempt — that must classify as kDetected, never kMasked.
    const bool detected = !session.all_unanimous() || r.attempts > 1;
    r.outcome = fault::classify(!detected, r.verified);
    if (snap != nullptr) {
      snap->capture_targets = dev.targets();  // canonical sorted order
      snap->captured = dev.target_snapshots();
      snap->final_state = dev.snapshot();
      if (snap->divergence_ref != nullptr)
        r.divergence =
            ckpt::first_divergence(*snap->divergence_ref, *snap->final_state);
    }
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_sec = seconds_since(t0);
  return r;
}

namespace {

/// Dynamic superop coverage of one run: share of issued instructions that
/// dispatched through a compiled superop (block engine only; hits plus
/// fallback exits is every issued instruction). Derived for reporting — the
/// raw counters live in the StatSet.
double block_coverage_pct(const StatSet& s) {
  const double hits = static_cast<double>(s.get("block_exec_hits"));
  const double total = hits + static_cast<double>(s.get("block_fallback_exits"));
  return total > 0 ? 100.0 * hits / total : 0.0;
}

}  // namespace

u32 CampaignResult::failed() const {
  u32 n = 0;
  for (const ScenarioResult& r : results)
    if (!r.passed()) ++n;
  return n;
}

bool CampaignResult::all_passed() const { return failed() == 0; }

std::string CampaignResult::to_json() const {
  JsonWriter jw;
  jw.begin_object();
  jw.field("schema", std::string("higpu.campaign/1"));
  jw.field("scenarios", static_cast<u64>(results.size()));
  jw.field("jobs", jobs);
  jw.field("wall_sec", wall_sec);
  jw.field("scenarios_per_sec", scenarios_per_sec());
  jw.field("failed", failed());
  jw.key("results");
  jw.begin_array();
  for (const ScenarioResult& r : results) {
    jw.begin_object();
    jw.field("index", r.index);
    jw.field("label", r.label);
    jw.field("workload", r.workload);
    jw.field("ok", r.ok);
    if (!r.ok) jw.field("error", r.error);
    jw.field("passed", r.passed());
    jw.field("verified", r.verified);
    jw.field("dcls_match", r.dcls_match);
    jw.field("majority_ok", r.majority_ok);
    jw.field("comparisons", r.comparisons);
    jw.field("mismatches", r.mismatches);
    jw.field("n_copies", r.n_copies);
    jw.field("attempts", r.attempts);
    jw.field("recovered", r.recovered);
    jw.field("degraded", r.degraded);
    jw.field("ftti_met", r.ftti_met);
    jw.field("response_ns", r.response_ns);
    jw.field("achieved_asil", std::string(safety::asil_name(r.achieved_asil)));
    if (r.faulty_copy >= 0) jw.field("faulty_copy", r.faulty_copy);
    jw.field("kernel_cycles", r.kernel_cycles);
    jw.field("elapsed_ns", r.elapsed_ns);
    jw.field("fault_active", r.fault_active);
    if (r.fault_active) {
      jw.field("corruptions", r.corruptions);
      jw.field("diverted_blocks", r.diverted_blocks);
      jw.field("fault_outcome", std::string(fault::outcome_name(r.outcome)));
    }
    if (!r.divergence.empty()) jw.field("divergence", r.divergence);
    jw.key("diversity");
    jw.begin_object();
    jw.field("blocks_checked", r.diversity.blocks_checked);
    jw.field("same_sm", r.diversity.same_sm);
    jw.field("time_overlap", r.diversity.time_overlap);
    jw.end_object();
    jw.key("stats");
    jw.begin_object();
    for (const auto& [name, value] : r.stats.entries()) jw.field(name, value);
    jw.end_object();
    jw.key("sm_profile");
    jw.begin_array();
    for (const obs::SmCycles& c : r.sm_profile) {
      jw.begin_object();
      jw.field("issued", c.issued);
      jw.field("scoreboard", c.scoreboard);
      jw.field("barrier", c.barrier);
      jw.field("structural", c.structural);
      jw.field("idle", c.idle);
      jw.end_object();
    }
    jw.end_array();
    if (r.stats.get("block_exec_hits") + r.stats.get("block_fallback_exits") > 0)
      jw.field("block_superop_coverage_pct", block_coverage_pct(r.stats));
    jw.field("wall_sec", r.wall_sec);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  return jw.str() + "\n";
}

std::string CampaignResult::to_csv() const {
  TextTable table({"index", "label", "workload", "ok", "passed", "verified",
                   "dcls_match", "comparisons", "mismatches", "n_copies",
                   "attempts", "asil", "ftti_met", "kernel_cycles",
                   "elapsed_ns", "fault", "corruptions", "fault_outcome",
                   "divergence", "instructions", "block_exec_hits",
                   "block_fallback_exits", "block_coverage_pct",
                   "cycles_issued", "cycles_stall_scoreboard",
                   "cycles_stall_barrier", "cycles_stall_structural",
                   "error"});
  for (const ScenarioResult& r : results) {
    table.add_row({std::to_string(r.index), r.label, r.workload,
                   r.ok ? "true" : "false", r.passed() ? "true" : "false",
                   r.verified ? "true" : "false",
                   r.dcls_match ? "true" : "false",
                   std::to_string(r.comparisons), std::to_string(r.mismatches),
                   std::to_string(r.n_copies), std::to_string(r.attempts),
                   safety::asil_name(r.achieved_asil),
                   r.ftti_met ? "true" : "false",
                   std::to_string(r.kernel_cycles),
                   std::to_string(r.elapsed_ns),
                   r.fault_active ? "true" : "false",
                   std::to_string(r.corruptions),
                   r.fault_active ? fault::outcome_name(r.outcome) : "",
                   r.divergence,
                   std::to_string(r.stats.get("instructions")),
                   std::to_string(r.stats.get("block_exec_hits")),
                   std::to_string(r.stats.get("block_fallback_exits")),
                   std::to_string(block_coverage_pct(r.stats)),
                   std::to_string(r.stats.get("cycles_issued")),
                   std::to_string(r.stats.get("cycles_stall_scoreboard")),
                   std::to_string(r.stats.get("cycles_stall_barrier")),
                   std::to_string(r.stats.get("cycles_stall_structural")),
                   r.error});
  }
  return table.render_csv();
}

namespace {

/// Execute one fault-sweep group with a shared clean base run, via the
/// exp/units.h helpers also used by the distributed coordinator. Members
/// whose snapshot is unavailable (the base finished before the target, or
/// the base itself failed) fall back to from-scratch execution, so
/// fast-forward is purely an acceleration: per-scenario results never
/// depend on it.
void run_ff_group(const ScenarioSet& set, const std::vector<size_t>& members,
                  const std::function<void(const ScenarioResult&)>& report,
                  std::vector<ScenarioResult>& results) {
  const GroupBase base = run_group_base(set, members);
  if (base.result_index != GroupBase::kSynthetic) {
    results[base.result_index] = base.result;
    report(results[base.result_index]);
  }
  for (size_t i : members) {
    if (i == base.result_index) continue;
    results[i] = set[i].fault.active()
                     ? run_fork(set, i, base)
                     : run_scenario(set[i], static_cast<u32>(i));
    report(results[i]);
  }
}

}  // namespace

CampaignResult CampaignRunner::run(const ScenarioSet& set) const {
  set.validate_all();

  CampaignResult out;
  out.results.resize(set.size());
  u32 jobs = cfg_.jobs != 0 ? cfg_.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = std::min<u32>(jobs, set.empty() ? 1 : static_cast<u32>(set.size()));
  out.jobs = jobs;

  // Work units: normally one scenario each; under snapshot fast-forward,
  // scenarios differing only in their fault plan coalesce into one unit
  // that shares a clean base simulation (>= 2 faulted members make the
  // base run worthwhile). Unit discovery is deterministic, and results are
  // stored at each scenario's index, so campaign output remains
  // bit-identical regardless of jobs or fast-forward.
  const std::vector<WorkUnit> units =
      plan_units(set, cfg_.snapshot_fast_forward);

  const auto t0 = Clock::now();
  std::atomic<size_t> next{0};
  std::mutex report_mutex;

  const auto report = [&](const ScenarioResult& r) {
    if (cfg_.on_result) {
      std::lock_guard<std::mutex> lock(report_mutex);
      cfg_.on_result(r);
    }
  };

  auto worker = [&] {
    for (size_t u = next.fetch_add(1); u < units.size();
         u = next.fetch_add(1)) {
      const WorkUnit& unit = units[u];
      if (unit.worth_base_run()) {
        run_ff_group(set, unit.members, report, out.results);
        continue;
      }
      for (size_t i : unit.members) {
        ScenarioResult r = run_scenario(set[i], static_cast<u32>(i));
        report(r);
        out.results[i] = std::move(r);
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (u32 t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  out.wall_sec = seconds_since(t0);
  return out;
}

}  // namespace higpu::exp
