// Control-flow graph construction and post-dominator analysis.
//
// Used at program-finalize time to compute the immediate-post-dominator
// (IPDOM) reconvergence point of every potentially-divergent branch, exactly
// as classic SIMT hardware (and GPGPU-Sim) does.
#pragma once

#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace higpu::isa {

/// A maximal straight-line sequence of instructions.
struct BasicBlock {
  Pc first = 0;  // pc of first instruction
  Pc last = 0;   // pc of last instruction (inclusive)
  std::vector<u32> succs;
  std::vector<u32> preds;
};

/// CFG over a finalized instruction vector, with post-dominator analysis.
class Cfg {
 public:
  /// Builds blocks/edges and runs post-dominator analysis.
  /// Requires: code non-empty; every path ends in kExit (validated by the
  /// program builder); all blocks reachable from entry.
  explicit Cfg(const std::vector<Instruction>& code);

  u32 num_blocks() const { return static_cast<u32>(blocks_.size()); }
  const BasicBlock& block(u32 id) const { return blocks_[id]; }
  u32 block_of(Pc pc) const { return block_of_pc_[pc]; }

  /// Immediate post-dominator block of `id`, or kVirtualExit if the block
  /// post-dominates straight to program exit.
  u32 ipdom(u32 id) const { return ipdom_[id]; }

  /// Sentinel id representing the virtual exit node.
  u32 virtual_exit() const { return num_blocks(); }

  /// Reconvergence pc for a branch instruction at `pc`: first pc of the
  /// IPDOM block, or `end_pc` (== code.size()) when control only reconverges
  /// at thread exit.
  Pc reconv_pc_for_branch(Pc pc) const;

  /// True if block `a` post-dominates block `b`.
  bool postdominates(u32 a, u32 b) const;

 private:
  void build_blocks(const std::vector<Instruction>& code);
  void compute_postdominators();

  std::vector<BasicBlock> blocks_;
  std::vector<u32> block_of_pc_;
  std::vector<u32> ipdom_;
  Pc end_pc_ = 0;
};

}  // namespace higpu::isa
