// Deterministic multi-tenant traffic generation for continuous serving.
//
// A continuous-operation deployment of the paper's offload model (an ADAS
// domain controller serving camera/radar/planning items) is driven by a
// *request stream*, not a one-shot campaign. TrafficSpec describes that
// stream as a value: a seeded arrival process (periodic / Poisson / bursty,
// or a replayable trace) over a set of tenants, where each tenant binds a
// workload + scale to a RedundancySpec and a relative deadline. generate()
// expands the spec into a fully materialized, sorted request list — the same
// seed and spec always produce the identical list, so every downstream
// serving result (completion order, percentiles, degrade transitions) is
// reproducible bit-for-bit.
#pragma once

#include <string>
#include <vector>

#include "core/exec.h"
#include "workloads/workload.h"

namespace higpu::serve {

/// One logical client class: what it runs, how redundantly, and how fast it
/// needs the answer back (relative deadline per request).
struct TenantSpec {
  std::string name;
  std::string workload = "nn";
  workloads::Scale scale = workloads::Scale::kTest;
  /// Redundancy at degrade level 0; the overload ladder strips copies off
  /// this spec (TMR -> DCLS -> baseline) one level at a time.
  core::RedundancySpec redundancy = core::RedundancySpec::dcls();
  /// Relative deadline: a request arriving at t must finish by t + this.
  u64 deadline_ns = 50'000'000;
  /// Relative share of the arrival stream (weighted tenant draw).
  u32 weight = 1;
};

/// One materialized request of the stream.
struct Request {
  u32 id = 0;         // position in arrival order (ties broken by id)
  u32 tenant = 0;     // index into TrafficSpec::tenants
  u64 arrival_ns = 0; // host-timeline arrival
  /// Absolute deadline: arrival_ns + tenants[tenant].deadline_ns.
  u64 deadline_ns = 0;

  bool operator==(const Request& other) const = default;
};

struct TrafficSpec {
  enum class Pattern : u8 {
    kPeriodic,  // fixed inter-arrival 1e9 / offered_rps
    kPoisson,   // exponential inter-arrivals at rate offered_rps
    kBursty,    // Poisson, alternating hot (x burst_factor) / quiet phases
    kTrace,     // replay `trace` verbatim (offered_rps ignored)
  };

  Pattern pattern = Pattern::kPeriodic;
  u64 seed = 2019;
  /// Offered load, requests per second (arrival process intensity).
  double offered_rps = 100.0;
  /// Generation stops at the first arrival past this horizon...
  u64 duration_ns = 1'000'000'000;
  /// ...or after this many requests, whichever comes first (0 = no cap).
  u32 max_requests = 0;
  /// kBursty: hot-phase rate multiplier (quiet phases run at offered_rps /
  /// burst_factor, so the long-run average stays near offered_rps).
  double burst_factor = 4.0;
  /// kBursty: fraction of the horizon spent in hot phases, in (0, 1).
  double burst_fraction = 0.25;
  /// kTrace: explicit arrivals to replay (tenant indices must be valid).
  std::vector<Request> trace;

  std::vector<TenantSpec> tenants;

  /// Expand into the sorted request list (stable: arrival, then id).
  /// Deterministic for a fixed spec+seed.
  std::vector<Request> generate() const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// Stable identity fragment, e.g. "poisson:rps100:seed2019:t2".
  std::string label() const;

  /// Render `requests` as a replayable trace ("arrival_ns tenant_name" per
  /// line); parse_trace() inverts it against the same tenant set.
  std::string format_trace(const std::vector<Request>& requests) const;
  /// Parse a trace produced by format_trace (or written by hand). Throws
  /// std::invalid_argument on malformed lines or unknown tenant names.
  std::vector<Request> parse_trace(const std::string& text) const;
};

const char* pattern_name(TrafficSpec::Pattern p);

}  // namespace higpu::serve
