// Opcode and enum definitions for the higpu kernel ISA.
//
// The ISA is a small PTX/SASS-like register machine: 32-bit general-purpose
// registers, 1-bit predicate registers, predicated execution, explicit
// branches with IPDOM reconvergence computed at program-finalize time, and
// separate global/shared memory access instructions.
#pragma once

#include "common/types.h"

namespace higpu::isa {

enum class Op : u8 {
  kNop,
  // Register moves and reads of special/parameter state.
  kMov,   // dst = src0
  kS2r,   // dst = special register
  kLdp,   // dst = kernel parameter [imm index in src0]
  // Integer ALU.
  kIadd,  // dst = src0 + src1
  kIsub,  // dst = src0 - src1
  kImul,  // dst = src0 * src1 (low 32 bits)
  kImad,  // dst = src0 * src1 + src2
  kImin,  // dst = min(signed src0, src1)
  kImax,  // dst = max(signed src0, src1)
  kAnd,   // dst = src0 & src1
  kOr,    // dst = src0 | src1
  kXor,   // dst = src0 ^ src1
  kNot,   // dst = ~src0
  kShl,   // dst = src0 << (src1 & 31)
  kShr,   // dst = src0 >> (src1 & 31) logical
  kSra,   // dst = src0 >> (src1 & 31) arithmetic
  // Floating-point ALU (single precision).
  kFadd,
  kFsub,
  kFmul,
  kFfma,  // dst = src0 * src1 + src2
  kFmin,
  kFmax,
  kFabs,
  kFneg,
  // Special-function unit (transcendentals, long-latency).
  kFdiv,
  kFsqrt,
  kFrcp,
  kFexp,  // natural exponent
  kFlog,  // natural logarithm
  kFsin,
  kFcos,
  // Conversions.
  kI2f,  // signed int -> float
  kF2i,  // float -> signed int (truncate)
  // Predicates and selection.
  kSetp,  // pred[dst] = cmp(src0, src1) under dtype
  kSelp,  // dst = pred ? src0 : src1   (pred index in `pred_src`)
  // Control flow.
  kBra,   // branch to `target` (guarded => potentially divergent)
  kExit,  // thread terminates
  // Global memory.
  kLdg,      // dst = mem32[src0 + offset]
  kStg,      // mem32[src0 + offset] = src1
  kAtomAdd,  // dst = old = mem32[src0 + offset]; mem += src1 (integer)
  // Shared memory (per thread block).
  kLds,  // dst = shmem32[src0 + offset]
  kSts,  // shmem32[src0 + offset] = src1
  // Synchronization.
  kBar,  // block-wide barrier
};

/// Special (read-only) registers exposed through S2R.
enum class SReg : u8 {
  kTidX,
  kTidY,
  kTidZ,
  kCtaIdX,
  kCtaIdY,
  kCtaIdZ,
  kNTidX,   // block dim
  kNTidY,
  kNTidZ,
  kNCtaIdX,  // grid dim
  kNCtaIdY,
  kNCtaIdZ,
  kLaneId,
  kWarpId,
};

/// Comparison operators for SETP.
enum class CmpOp : u8 { kLt, kLe, kGt, kGe, kEq, kNe };

/// Data interpretation for SETP comparisons.
enum class DType : u8 { kI32, kU32, kF32 };

/// Execution-unit class an opcode issues to; drives latency/throughput.
enum class UnitClass : u8 {
  kSp,    // simple int/fp ALU pipeline
  kSfu,   // special function unit (div/sqrt/exp/...)
  kMem,   // global/shared load-store unit
  kCtrl,  // branches, exit, barrier (handled in-order by the scheduler)
};

/// Unit an opcode executes on.
UnitClass unit_class(Op op);

/// True for instructions that read or write global memory.
bool is_global_mem(Op op);
/// True for instructions that read or write shared memory.
bool is_shared_mem(Op op);
/// True if the instruction writes a general-purpose destination register.
bool writes_gpr(Op op);
/// True for instructions whose result flows through the SP/SFU datapath and
/// is therefore exposed to datapath fault injection (and relevant for
/// temporal-diversity analysis).
bool is_datapath(Op op);
/// True if the instruction writes a predicate register.
bool writes_pred(Op op);

/// Mnemonic for disassembly.
const char* op_name(Op op);
const char* sreg_name(SReg sreg);
const char* cmp_name(CmpOp cmp);

}  // namespace higpu::isa
