#include "exp/result_io.h"

#include "common/jsonl.h"
#include "common/table.h"

namespace higpu::exp {

namespace {

safety::Asil parse_asil(const std::string& s) {
  for (safety::Asil a : {safety::Asil::kQM, safety::Asil::kA, safety::Asil::kB,
                         safety::Asil::kC, safety::Asil::kD})
    if (s == safety::asil_name(a)) return a;
  throw std::runtime_error("unknown ASIL name '" + s + "'");
}

fault::Outcome parse_outcome(const std::string& s) {
  for (fault::Outcome o : {fault::Outcome::kMasked, fault::Outcome::kDetected,
                           fault::Outcome::kSdc})
    if (s == fault::outcome_name(o)) return o;
  throw std::runtime_error("unknown fault outcome '" + s + "'");
}

}  // namespace

std::string result_to_jsonl(const ScenarioResult& r) {
  JsonWriter jw = JsonWriter::compact();
  jw.begin_object();
  jw.field("index", r.index);
  jw.field("label", r.label);
  jw.field("workload", r.workload);
  jw.field("ok", r.ok);
  jw.field("error", r.error);
  jw.field("verified", r.verified);
  jw.field("dcls_match", r.dcls_match);
  jw.field("majority_ok", r.majority_ok);
  jw.field("comparisons", r.comparisons);
  jw.field("mismatches", r.mismatches);
  jw.field("faulty_copy", r.faulty_copy);
  jw.field("n_copies", r.n_copies);
  jw.field("attempts", r.attempts);
  jw.field("recovered", r.recovered);
  jw.field("degraded", r.degraded);
  jw.field("ftti_met", r.ftti_met);
  jw.field("response_ns", r.response_ns);
  jw.field("achieved_asil", std::string(safety::asil_name(r.achieved_asil)));
  jw.field("kernel_cycles", r.kernel_cycles);
  jw.field("elapsed_ns", r.elapsed_ns);
  jw.field("ff_cycles", r.ff_cycles);
  jw.key("diversity");
  jw.begin_object();
  jw.field("blocks_checked", r.diversity.blocks_checked);
  jw.field("same_sm", r.diversity.same_sm);
  jw.field("same_sm_time_overlap", r.diversity.same_sm_time_overlap);
  jw.field("time_overlap", r.diversity.time_overlap);
  jw.end_object();
  jw.key("stats");
  jw.begin_object();
  for (const auto& [name, value] : r.stats.entries()) jw.field(name, value);
  jw.end_object();
  jw.key("sm_profile");
  jw.begin_array();
  for (const obs::SmCycles& c : r.sm_profile) {
    jw.begin_object();
    jw.field("issued", c.issued);
    jw.field("scoreboard", c.scoreboard);
    jw.field("barrier", c.barrier);
    jw.field("structural", c.structural);
    jw.field("idle", c.idle);
    jw.end_object();
  }
  jw.end_array();
  jw.field("fault_active", r.fault_active);
  jw.field("corruptions", r.corruptions);
  jw.field("diverted_blocks", r.diverted_blocks);
  jw.field("outcome", std::string(fault::outcome_name(r.outcome)));
  jw.field("divergence", r.divergence);
  // Wall-clock fields: non-deterministic, excluded from
  // deterministic_fields_equal, emitted at full precision so a resumed
  // campaign reports the values that were measured.
  jw.field_exact("wall_sec", r.wall_sec);
  jw.field_exact("sim_wall_sec", r.sim_wall_sec);
  jw.end_object();
  return jw.str();
}

ScenarioResult result_from_jsonl(const std::string& line) {
  const JsonValue v = parse_json(line);
  if (v.kind != JsonValue::Kind::kObject)
    throw std::runtime_error("result record is not a JSON object");

  ScenarioResult r;
  r.index = static_cast<u32>(v.get_u64("index"));
  r.label = v.get_string("label");
  r.workload = v.get_string("workload");
  r.ok = v.get_bool("ok");
  r.error = v.get_string("error");
  r.verified = v.get_bool("verified");
  r.dcls_match = v.get_bool("dcls_match");
  r.majority_ok = v.get_bool("majority_ok");
  r.comparisons = static_cast<u32>(v.get_u64("comparisons"));
  r.mismatches = static_cast<u32>(v.get_u64("mismatches"));
  r.faulty_copy = static_cast<i32>(v.get_i64("faulty_copy"));
  r.n_copies = static_cast<u32>(v.get_u64("n_copies"));
  r.attempts = static_cast<u32>(v.get_u64("attempts"));
  r.recovered = v.get_bool("recovered");
  r.degraded = v.get_bool("degraded");
  r.ftti_met = v.get_bool("ftti_met");
  r.response_ns = v.get_u64("response_ns");
  r.achieved_asil = parse_asil(v.get_string("achieved_asil"));
  r.kernel_cycles = v.get_u64("kernel_cycles");
  r.elapsed_ns = v.get_u64("elapsed_ns");
  r.ff_cycles = v.get_u64("ff_cycles");
  const JsonValue& div = v.at("diversity");
  r.diversity.blocks_checked = static_cast<u32>(div.get_u64("blocks_checked"));
  r.diversity.same_sm = static_cast<u32>(div.get_u64("same_sm"));
  r.diversity.same_sm_time_overlap =
      static_cast<u32>(div.get_u64("same_sm_time_overlap"));
  r.diversity.time_overlap = static_cast<u32>(div.get_u64("time_overlap"));
  const JsonValue& stats = v.at("stats");
  if (stats.kind != JsonValue::Kind::kObject)
    throw std::runtime_error("field 'stats' is not an object");
  for (const auto& [name, val] : stats.object) {
    if (val.kind != JsonValue::Kind::kNumber || !val.is_integer ||
        val.negative)
      throw std::runtime_error("stat counter '" + name +
                               "' is not a non-negative integer");
    r.stats.set(name, val.integer);
  }
  const JsonValue* prof = v.find("sm_profile");
  if (prof != nullptr) {
    if (prof->kind != JsonValue::Kind::kArray)
      throw std::runtime_error("field 'sm_profile' is not an array");
    for (const JsonValue& e : prof->array) {
      obs::SmCycles c;
      c.issued = e.get_u64("issued");
      c.scoreboard = e.get_u64("scoreboard");
      c.barrier = e.get_u64("barrier");
      c.structural = e.get_u64("structural");
      c.idle = e.get_u64("idle");
      r.sm_profile.push_back(c);
    }
  }
  r.fault_active = v.get_bool("fault_active");
  r.corruptions = v.get_u64("corruptions");
  r.diverted_blocks = v.get_u64("diverted_blocks");
  r.outcome = parse_outcome(v.get_string("outcome"));
  r.divergence = v.get_string("divergence");
  r.wall_sec = v.get_double("wall_sec");
  r.sim_wall_sec = v.get_double("sim_wall_sec");
  return r;
}

}  // namespace higpu::exp
