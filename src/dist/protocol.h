// higpu.wire/1 — the coordinator <-> worker message protocol.
//
// Transport is any reliable byte stream (the coordinator uses an AF_UNIX
// socketpair shared with each forked worker). Every message is one frame:
//
//   u32  magic      "HGWR" (0x52574748 little-endian on the wire)
//   u8   type       Msg enumerator
//   u64  length     payload bytes that follow
//   ...  payload    type-specific, serialized with ckpt::Writer primitives
//   u64  checksum   FNV-1a over the payload bytes
//
// Frames are self-delimiting and validated on receipt: bad magic, an
// unknown type, an implausible length or a checksum mismatch all throw
// WireError — a corrupted or desynchronized stream is a loud failure,
// never a misinterpreted work unit. A clean EOF (peer exited) is reported
// as its own condition so the coordinator can distinguish "worker died"
// from "worker sent garbage".
//
// Payloads:
//   kHello      u32 protocol version, u32 worker id (echoed by the worker)
//   kWork       u64 unit id, u32 scenario index, ScenarioSpec,
//               optional framed base snapshot (ckpt::encode_snapshot),
//               optional framed clean-final-state snapshot (divergence ref)
//   kResult     u64 unit id, u32 scenario index, one higpu.campaign.jsonl/1
//               record (the worker's ScenarioResult)
//   kHeartbeat  (empty) — liveness, sent periodically by workers
//   kShutdown   (empty) — coordinator tells the worker to exit cleanly
//   kLog        u32 level, string line — one formatted worker log line
//               (common::set_log_sink redirect); journaled as {"log": ...}
//   kFlight     string json — one "higpu.flight/1" flight-recorder dump
//               (trace tail at a redundancy miscompare or worker failure);
//               journaled as {"flight": ...}
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/serial.h"
#include "ckpt/wire.h"
#include "exp/scenario.h"

namespace higpu::dist {

constexpr u32 kProtocolVersion = 1;
constexpr u32 kFrameMagic = 0x52574748u;  // "HGWR"
/// Upper bound on a frame payload; anything larger means a desynchronized
/// or corrupted stream, not a legitimate message.
constexpr u64 kMaxPayload = 1ull << 32;

enum class Msg : u8 {
  kHello = 1,
  kWork = 2,
  kResult = 3,
  kHeartbeat = 4,
  kShutdown = 5,
  kLog = 6,
  kFlight = 7,
};

/// True when `t` is a Msg enumerator a peer may legally send; recv_frame
/// rejects anything else as a desynchronized stream.
bool known_msg(u8 t);

/// Thrown on a malformed frame or an I/O error mid-frame.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

struct Frame {
  Msg type = Msg::kHeartbeat;
  std::vector<u8> payload;
};

/// Write one frame to `fd` (complete, in order; loops over partial
/// writes, suppresses SIGPIPE). Throws WireError when the peer is gone or
/// the write fails. Callers sharing an fd across threads must serialize.
void send_frame(int fd, Msg type, const std::vector<u8>& payload);

/// Read one frame from `fd`, blocking until it is complete. Returns false
/// on a clean EOF at a frame boundary (peer exited); throws WireError on
/// mid-frame EOF, validation failure or I/O error.
bool recv_frame(int fd, Frame* out);

// ---- Payload serialization -------------------------------------------------

/// Full field-by-field ScenarioSpec serialization: the worker reconstructs
/// the exact experiment — workload/scale/seed, every GPU, memory and
/// platform parameter, policy, the complete RedundancySpec, fault plan and
/// checkpoint policy — so a scenario runs bit-identically in any process.
void put_spec(ckpt::Writer& w, const exp::ScenarioSpec& spec);
exp::ScenarioSpec get_spec(ckpt::Reader& r);

/// One unit of distributed work.
struct WorkItem {
  u64 unit_id = 0;
  u32 index = 0;  // position in the campaign's ScenarioSet
  exp::ScenarioSpec spec;
  /// Base snapshot to resume from (fault fork), or null (run from scratch).
  ckpt::SnapshotPtr resume;
  /// Clean final state for divergence diagnosis, or null.
  ckpt::SnapshotPtr divergence_ref;
};

std::vector<u8> encode_work(const WorkItem& item);
WorkItem decode_work(const std::vector<u8>& payload);

struct ResultMsg {
  u64 unit_id = 0;
  u32 index = 0;
  std::string jsonl;  // one higpu.campaign.jsonl/1 record
};

std::vector<u8> encode_result(const ResultMsg& msg);
ResultMsg decode_result(const std::vector<u8>& payload);

std::vector<u8> encode_hello(u32 worker_id);
u32 decode_hello(const std::vector<u8>& payload);

/// One redirected worker log line (level + the formatted text).
struct LogMsg {
  u32 level = 0;  // LogLevel enumerator value
  std::string line;
};

std::vector<u8> encode_log(const LogMsg& msg);
LogMsg decode_log(const std::vector<u8>& payload);

/// "higpu.flight/1" JSON, shipped verbatim.
std::vector<u8> encode_flight(const std::string& json);
std::string decode_flight(const std::vector<u8>& payload);

/// Order- and process-independent identity of a campaign: FNV-1a over the
/// serialized bytes of every spec in order. The journal header records it
/// so a resume against a *different* campaign is refused, not merged.
u64 campaign_fingerprint(const exp::ScenarioSet& set);

}  // namespace higpu::dist
