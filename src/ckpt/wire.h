// Wire/file framing for ckpt::Snapshot — the unit of distribution.
//
// An in-memory Snapshot is three things: the padding-free state blob, its
// section table, and the immutable kernel programs the blob references by
// index. encode_snapshot() frames all three as one self-contained byte
// stream ("higpu.snap/1") that can cross a socket or live in a file:
//
//   header     magic, frame version, snapshot version, capture metadata
//   sections   name / offset / length / record size / FNV-1a hash each
//   blob       the raw state bytes
//   programs   each KernelProgram serialized field-by-field (instructions,
//              register/predicate/shared/param requirements)
//   trailer    FNV-1a checksum over every preceding frame byte
//
// decode_snapshot() refuses corruption loudly instead of restoring garbage:
// the frame checksum is validated first (truncation, bit rot, a torn
// transfer), then every section's stored hash is recomputed over the
// received blob — a mismatch names the damaged section ("snapshot section
// 'sm3' corrupted in transit"), which is the difference between a
// diagnosable dead worker and a silently wrong campaign. Restoring a
// decoded snapshot onto a device still performs the existing
// magic/version/parameter-fingerprint checks inside the blob.
#pragma once

#include <string>
#include <vector>

#include "ckpt/snapshot.h"

namespace higpu::ckpt {

/// Frame format version; bump on any change to the framing layout (the
/// snapshot *blob* layout is versioned independently by Snapshot::kVersion).
constexpr u32 kWireVersion = 1;
constexpr u64 kWireMagic = 0x48475055534E4150ull;  // "HGPUSNAP"

/// Serialize a snapshot (blob + sections + programs + metadata) into one
/// checksummed byte stream.
std::vector<u8> encode_snapshot(const Snapshot& snap);

/// Parse an encoded snapshot. Throws SnapshotError on: bad magic, frame
/// version skew, a frame checksum mismatch (naming the expected/actual
/// values), truncation, or a section whose recomputed hash differs from the
/// stored one (naming the section). The returned snapshot is bit-identical
/// to the encoded one (same blob, hence same Snapshot::hash()).
SnapshotPtr decode_snapshot(const std::vector<u8>& bytes);

/// Write an encoded snapshot to `path` (atomically enough for our purposes:
/// full write + flush; the decode checksum catches torn files). Throws
/// std::runtime_error on I/O failure.
void write_snapshot_file(const std::string& path, const Snapshot& snap);

/// Read + decode a snapshot file. Throws std::runtime_error if the file
/// can't be read, SnapshotError if its contents fail validation.
SnapshotPtr read_snapshot_file(const std::string& path);

}  // namespace higpu::ckpt
