// Periodic built-in self-test of the global kernel scheduler (paper §IV.C):
// faults of type (2) — functionally correct execution that silently loses
// diversity — must not become latent, so the scheduler's block->SM mapping
// is exercised with a canary kernel pair and checked against the policy's
// deterministic expectation.
#pragma once

#include "core/exec.h"
#include "runtime/device.h"
#include "sched/policies.h"

namespace higpu::safety {

struct BistResult {
  bool pass = false;
  u32 blocks_checked = 0;
  /// Blocks that ran on an SM other than the policy mandates.
  u32 placement_violations = 0;
  /// Logical blocks whose redundant copies shared an SM (diversity loss).
  u32 diversity_violations = 0;
  /// Canary outputs mismatched (the fault was already detectable).
  bool output_mismatch = false;
};

/// Run a small canary kernel redundantly under `policy` on `dev` and verify
/// every block landed on the SM the policy mandates. Detects latent
/// scheduler mapping faults. The device's kernel scheduler is replaced.
BistResult run_scheduler_bist(runtime::Device& dev, sched::Policy policy);

}  // namespace higpu::safety
