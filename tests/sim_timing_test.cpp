// Timing behaviour of the simulator: determinism, latency ordering,
// occupancy limits, launch serialization gap, block records.
#include <gtest/gtest.h>

#include "memsys/global_store.h"
#include "sched/policies.h"
#include "sim/gpu.h"
#include "tests/test_kernels.h"

namespace higpu::sim {
namespace {

using testing::make_launch;
using testing::make_spin_kernel;
using testing::make_store_kernel;

Cycle run_one(const GpuParams& params, const KernelLaunch& launch) {
  memsys::GlobalStore store;
  Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  KernelLaunch l = launch;
  l.params[0] = store.alloc(l.grid.count() * l.block.count() * 4);
  const u32 id = gpu.launch(std::move(l));
  gpu.run_until_idle(100'000'000);
  return gpu.kernel_cycles(id);
}

TEST(SimTiming, BitExactDeterminism) {
  GpuParams p;
  const KernelLaunch l =
      make_launch(make_spin_kernel(50), 2048, 128, {0, 2048});
  const Cycle a = run_one(p, l);
  const Cycle b = run_one(p, l);
  EXPECT_EQ(a, b);
}

TEST(SimTiming, MoreWorkTakesLonger) {
  GpuParams p;
  const Cycle small =
      run_one(p, make_launch(make_spin_kernel(10), 1024, 128, {0, 1024}));
  const Cycle big =
      run_one(p, make_launch(make_spin_kernel(200), 1024, 128, {0, 1024}));
  EXPECT_GT(big, small);
}

TEST(SimTiming, MoreSmsFinishFaster) {
  GpuParams two;
  two.num_sms = 2;
  GpuParams six;
  six.num_sms = 6;
  const KernelLaunch l =
      make_launch(make_spin_kernel(100), 8192, 128, {0, 8192});
  EXPECT_GT(run_one(two, l), run_one(six, l));
}

TEST(SimTiming, SfuOpsSlowerThanSpOps) {
  // Same structure, one kernel uses fdiv (SFU) instead of ffma (SP).
  using namespace isa;
  auto build = [](bool use_sfu) {
    KernelBuilder kb(use_sfu ? "sfu" : "sp");
    Reg out = kb.reg(), n = kb.reg();
    kb.ldp(out, 0);
    kb.ldp(n, 1);
    Reg gid = kb.global_tid_x();
    Label done = kb.label();
    kb.guard_range(gid, n, done);
    Reg acc = kb.reg();
    kb.movf(acc, 1.5f);
    for (int i = 0; i < 64; ++i) {
      if (use_sfu)
        kb.fdiv(acc, acc, fimm(1.000001f));
      else
        kb.ffma(acc, acc, fimm(1.000001f), fimm(0.0f));
    }
    Reg addr = kb.reg();
    kb.imad(addr, gid, imm(4), out);
    kb.stg(addr, acc);
    kb.bind(done);
    kb.exit();
    return kb.build();
  };
  GpuParams p;
  const Cycle sp = run_one(p, make_launch(build(false), 4096, 128, {0, 4096}));
  const Cycle sfu = run_one(p, make_launch(build(true), 4096, 128, {0, 4096}));
  EXPECT_GT(sfu, sp);
}

TEST(SimTiming, LaunchGapDelaysVisibility) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  KernelLaunch l = make_launch(make_store_kernel(), 64, 64, {0, 64});
  l.params[0] = store.alloc(64 * 4);
  const u32 id = gpu.launch(std::move(l));
  gpu.run_until_idle(10'000'000);
  // The first block cannot be dispatched before the arrival gap.
  EXPECT_GE(gpu.kernel_state(id).first_dispatch_cycle, p.launch_gap_cycles);
}

TEST(SimTiming, BlockRecordsCoverAllBlocks) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  KernelLaunch l = make_launch(make_spin_kernel(20), 4096, 128, {0, 4096});
  l.params[0] = store.alloc(4096 * 4);
  const u32 id = gpu.launch(std::move(l));
  gpu.run_until_idle(100'000'000);

  const auto& records = gpu.block_records();
  EXPECT_EQ(records.size(), 32u);
  std::vector<bool> seen(32, false);
  for (const BlockRecord& r : records) {
    EXPECT_EQ(r.launch_id, id);
    EXPECT_LT(r.sm, p.num_sms);
    EXPECT_EQ(r.sm, r.intended_sm);  // no faults armed
    EXPECT_LE(r.dispatch_cycle, r.end_cycle);
    seen[r.block_linear] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SimTiming, SharedMemoryLimitsOccupancy) {
  // A block using all shared memory: only one such block per SM.
  using namespace isa;
  KernelBuilder kb("hog");
  kb.set_shared_bytes(48 * 1024);
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);
  Reg addr = kb.reg();
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, gid);
  kb.bind(done);
  kb.exit();

  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  KernelLaunch l;
  l.program = kb.build();
  l.grid = {12, 1, 1};
  l.block = {64, 1, 1};
  l.params = {store.alloc(12 * 64 * 4), 12 * 64};
  gpu.launch(std::move(l));

  // Step until some blocks are resident; verify <= 1 per SM at all times.
  for (int step = 0; step < 20000; ++step) {
    gpu.step();
    for (u32 s = 0; s < p.num_sms; ++s)
      ASSERT_LE(gpu.sm(s).resident_blocks(), 1u);
    if (gpu.idle()) break;
  }
  EXPECT_TRUE(gpu.idle());
}

TEST(SimTiming, RunUntilIdleThrowsOnBudgetExhaustion) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  KernelLaunch l = make_launch(make_spin_kernel(100000), 4096, 128, {0, 4096});
  l.params[0] = store.alloc(4096 * 4);
  gpu.launch(std::move(l));
  EXPECT_THROW(gpu.run_until_idle(1000), SimTimeout);
}

TEST(SimTiming, LrrAndGtoBothCompleteCorrectly) {
  for (WarpSchedPolicy wp : {WarpSchedPolicy::kGto, WarpSchedPolicy::kLrr}) {
    GpuParams p;
    memsys::GlobalStore store;
    Gpu gpu(p, &store);
    gpu.set_warp_sched_policy(wp);
    gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
    const u32 n = 512;
    KernelLaunch l = make_launch(make_store_kernel(), n, 128, {0, n});
    const memsys::DevPtr out = store.alloc(n * 4);
    l.params[0] = out;
    gpu.launch(std::move(l));
    gpu.run_until_idle(10'000'000);
    for (u32 i = 0; i < n; ++i) EXPECT_EQ(store.read32(out + i * 4), i);
  }
}

TEST(SimTiming, StatsAreCollected) {
  GpuParams p;
  memsys::GlobalStore store;
  Gpu gpu(p, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  KernelLaunch l = make_launch(make_spin_kernel(10), 1024, 128, {0, 1024});
  l.params[0] = store.alloc(1024 * 4);
  gpu.launch(std::move(l));
  gpu.run_until_idle(10'000'000);
  const StatSet stats = gpu.collect_stats();
  EXPECT_GT(stats.get("instructions"), 0u);
  EXPECT_GT(stats.get("blocks_dispatched"), 0u);
  EXPECT_EQ(stats.get("kernels_completed"), 1u);
  EXPECT_GT(stats.get("cycles"), 0u);
}

}  // namespace
}  // namespace higpu::sim
