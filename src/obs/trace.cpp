#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "common/jsonl.h"

namespace higpu::obs {

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::kWarpStall: return "stall";
    case Ev::kKernel: return "kernel";
    case Ev::kMshrAlloc: return "mshr_alloc";
    case Ev::kMshrFill: return "mshr_fill";
    case Ev::kDramBank: return "dram_bank";
    case Ev::kCheckpoint: return "checkpoint";
    case Ev::kRestore: return "restore";
    case Ev::kRollback: return "rollback";
    case Ev::kReqEnqueue: return "req_enqueue";
    case Ev::kReqServe: return "req_serve";
    case Ev::kReqShed: return "req_shed";
    case Ev::kDegrade: return "degrade";
    case Ev::kCompareFail: return "compare_fail";
    case Ev::kUnitShip: return "unit_ship";
    case Ev::kUnitResult: return "unit_result";
    case Ev::kUnitSteal: return "unit_steal";
    case Ev::kWorkerDeath: return "worker_death";
    case Ev::kLogLine: return "log";
  }
  return "?";
}

bool is_span(Ev kind) {
  switch (kind) {
    case Ev::kWarpStall:
    case Ev::kKernel:
    case Ev::kDramBank:
    case Ev::kReqServe:
      return true;
    default:
      return false;
  }
}

const char* stall_cls_name(StallCls cls) {
  switch (cls) {
    case StallCls::kScoreboard: return "scoreboard";
    case StallCls::kBarrier: return "barrier";
    case StallCls::kStructural: return "structural";
  }
  return "?";
}

Tracer::Tracer(u32 ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

u32 Tracer::track(const std::string& name, u32 pid) {
  for (u32 i = 0; i < tracks_.size(); ++i)
    if (tracks_[i].name == name && tracks_[i].pid == pid) return i;
  Track t;
  t.name = name;
  t.pid = pid;
  t.ring.resize(capacity_);
  tracks_.push_back(std::move(t));
  return static_cast<u32>(tracks_.size() - 1);
}

void Tracer::emit(u32 track_id, Ev kind, u64 ts, u64 dur, u64 a0, u64 a1) {
  // Hot path: one store per simulated stall/miss event. The write slot is
  // the incrementally wrapped head_ (no division), count stays the total.
  Track& t = tracks_.at(track_id);
  TraceEvent& slot = t.ring[t.head];
  if (++t.head == capacity_) t.head = 0;
  if (t.count >= capacity_) dropped_ += 1;
  slot.ts = ts;
  slot.dur = dur;
  slot.a0 = a0;
  slot.a1 = a1;
  slot.kind = kind;
  t.count += 1;
  recorded_ += 1;
}

const std::string& Tracer::track_name(u32 track_id) const {
  return tracks_.at(track_id).name;
}

std::vector<TraceEvent> Tracer::events(u32 track_id) const {
  const Track& t = tracks_.at(track_id);
  const u64 retained = std::min<u64>(t.count, capacity_);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(retained));
  // Oldest retained slot is count % capacity_ once the ring has wrapped.
  const u64 first = t.count > capacity_ ? t.count % capacity_ : 0;
  for (u64 i = 0; i < retained; ++i)
    out.push_back(t.ring[(first + i) % capacity_]);
  return out;
}

std::vector<TaggedEvent> Tracer::tail(size_t n) const {
  std::vector<TaggedEvent> all;
  for (u32 tid = 0; tid < tracks_.size(); ++tid)
    for (const TraceEvent& e : events(tid)) all.push_back(TaggedEvent{e, tid});
  // Merge by end time so the flight recorder reads as "what just happened":
  // a span that closed at the mismatch sorts next to the instants around it.
  std::stable_sort(all.begin(), all.end(),
                   [](const TaggedEvent& a, const TaggedEvent& b) {
                     return a.ev.ts + a.ev.dur < b.ev.ts + b.ev.dur;
                   });
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<long>(n));
  return all;
}

namespace {

/// Chrome wants ts in microseconds. Device tracks use the raw cycle count
/// as the µs value (the unit label is cosmetic; spans stay proportional);
/// host tracks scale ns down with a fixed 3-digit fraction so nothing
/// rounds away. Both renderings are pure integer formatting — the exported
/// text is deterministic.
void append_ts(std::string& out, const char* key, u64 v, bool is_host_ns) {
  char buf[48];
  if (is_host_ns)
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu.%03llu", key,
                  static_cast<unsigned long long>(v / 1000),
                  static_cast<unsigned long long>(v % 1000));
  else
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                  static_cast<unsigned long long>(v));
  out += buf;
}

void append_u64(std::string& out, const char* key, u64 v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

std::string event_record(const TraceEvent& e, u32 pid, u32 tid) {
  const bool host = pid == kPidHost;
  std::string r = "{\"name\":\"";
  r += ev_name(e.kind);
  if (e.kind == Ev::kWarpStall && e.a1 <= 2) {
    r += '.';
    r += stall_cls_name(static_cast<StallCls>(e.a1));
  }
  r += "\",\"ph\":\"";
  r += is_span(e.kind) ? 'X' : 'i';
  r += "\",";
  if (!is_span(e.kind)) r += "\"s\":\"t\",";  // instant scope: thread
  append_u64(r, "pid", pid);
  r += ',';
  append_u64(r, "tid", tid);
  r += ',';
  append_ts(r, "ts", e.ts, host);
  if (is_span(e.kind)) {
    r += ',';
    append_ts(r, "dur", e.dur, host);
  }
  r += ",\"args\":{";
  append_u64(r, "a0", e.a0);
  r += ',';
  append_u64(r, "a1", e.a1);
  r += "}}";
  return r;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::string out = "{\"schema\":\"";
  out += kTraceSchema;
  out += "\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto add = [&out, &first](const std::string& rec) {
    if (!first) out += ",\n";
    first = false;
    out += rec;
  };
  add("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"device (cycles)\"}}");
  add("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"host (ns)\"}}");
  for (u32 tid = 0; tid < tracks_.size(); ++tid) {
    const Track& t = tracks_[tid];
    std::string m = "{\"name\":\"thread_name\",\"ph\":\"M\",";
    append_u64(m, "pid", t.pid);
    m += ',';
    append_u64(m, "tid", tid);
    m += ",\"args\":{\"name\":\"" + t.name + "\"}}";
    add(m);
  }
  for (u32 tid = 0; tid < tracks_.size(); ++tid)
    for (const TraceEvent& e : events(tid))
      add(event_record(e, tracks_[tid].pid, tid));
  out += "\n]}\n";
  return out;
}

std::string Tracer::flight_json(size_t n) const {
  std::string out = "{\"schema\":\"";
  out += kFlightSchema;
  out += "\",";
  append_u64(out, "recorded", recorded_);
  out += ',';
  append_u64(out, "dropped", dropped_);
  out += ",\"events\":[";
  bool first = true;
  for (const TaggedEvent& te : tail(n)) {
    if (!first) out += ',';
    first = false;
    out += "{\"track\":\"" + tracks_[te.track].name + "\",\"name\":\"";
    out += ev_name(te.ev.kind);
    out += "\",";
    append_u64(out, "ts", te.ev.ts);
    out += ',';
    append_u64(out, "dur", te.ev.dur);
    out += ',';
    append_u64(out, "a0", te.ev.a0);
    out += ',';
    append_u64(out, "a1", te.ev.a1);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string validate_chrome_trace(const std::string& json) {
  JsonValue root;
  try {
    root = parse_json(json);
  } catch (const JsonError& e) {
    return std::string("not valid JSON: ") + e.what();
  }
  if (root.kind != JsonValue::Kind::kObject) return "top level is not an object";
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->string != kTraceSchema)
    return std::string("missing or wrong schema tag (want ") + kTraceSchema +
           ")";
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray)
    return "traceEvents missing or not an array";

  std::set<std::pair<u64, u64>> named_threads;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = " (event " + std::to_string(i) + ")";
    if (e.kind != JsonValue::Kind::kObject) return "event is not an object" + at;
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString)
      return "event lacks a ph string" + at;
    if (name == nullptr || name->kind != JsonValue::Kind::kString)
      return "event lacks a name" + at;
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (pid == nullptr || tid == nullptr)
      return "event lacks pid/tid" + at;
    if (ph->string == "M") {
      if (name->string == "thread_name")
        named_threads.emplace(pid->integer, tid->integer);
      continue;
    }
    if (e.find("ts") == nullptr) return "event lacks ts" + at;
    if (ph->string == "X") {
      if (e.find("dur") == nullptr) return "X event lacks dur" + at;
    } else if (ph->string != "i") {
      return "unexpected ph '" + ph->string + "'" + at;
    }
    if (named_threads.find({pid->integer, tid->integer}) ==
        named_threads.end())
      return "event references unnamed track pid=" +
             std::to_string(pid->integer) + " tid=" +
             std::to_string(tid->integer) + at;
  }
  return "";
}

}  // namespace higpu::obs
