// N-modular redundant kernel execution (paper §IV.A, footnote 1: "our
// approach could be seamlessly extended to other redundancy levels (e.g.
// triple modular redundancy)").
//
// With N >= 3 copies and majority voting the system becomes fail-operational
// without re-execution: a single faulty copy is out-voted. Scheduling hints
// generalize naturally: SRRS spreads the N starting SMs evenly around the
// ring; HALF becomes an N-way SM partition.
#pragma once

#include <string>
#include <vector>

#include "runtime/device.h"
#include "sched/policies.h"

namespace higpu::core {

/// A device allocation replicated across all N copies.
struct NPtr {
  std::vector<memsys::DevPtr> copy;
};

/// Kernel parameter for an N-modular launch.
struct NParam {
  bool is_buffer = false;
  const NPtr* buf = nullptr;
  u32 scalar = 0;

  NParam(const NPtr& p) : is_buffer(true), buf(&p) {}  // NOLINT
  NParam(u32 v) : scalar(v) {}                          // NOLINT
  NParam(i32 v) : scalar(static_cast<u32>(v)) {}        // NOLINT
  NParam(float v) : scalar(f2bits(v)) {}                // NOLINT
};

/// Outcome of a majority vote over one buffer.
struct VoteResult {
  /// All copies agreed bit-exactly.
  bool unanimous = false;
  /// A strict majority agreed on every word; dissenting copies were
  /// out-voted (fail-operational continuation possible).
  bool majority = false;
  /// Words where at least one copy dissented.
  u64 dissenting_words = 0;
  /// Words with no strict majority (detected but uncorrectable).
  u64 tied_words = 0;
  /// Index of a dissenting copy (first found), or -1.
  i32 faulty_copy = -1;

  /// Error detected (any disagreement at all).
  bool detected() const { return dissenting_words > 0 || tied_words > 0; }
};

class NmrSession {
 public:
  struct Config {
    sched::Policy policy = sched::Policy::kSrrs;
    u32 copies = 3;
  };

  NmrSession(runtime::Device& dev, Config cfg);

  NPtr alloc(u64 bytes);
  /// Upload to every copy (N physical transfers).
  void h2d(const NPtr& dst, const void* src, u64 bytes);
  /// Read back the voted majority value of each word into `dst`.
  /// (Callers should vote() first; this reads copy 0 which equals the
  /// majority when vote().majority holds.)
  void d2h(void* dst, const NPtr& src, u64 bytes);
  /// Launch all N copies with per-copy scheduling hints (stream = copy id).
  void launch(isa::ProgramPtr prog, sim::Dim3 grid, sim::Dim3 block,
              const std::vector<NParam>& params, const std::string& tag = "");
  Cycle sync();

  /// Majority vote across all copies of `buf` on the (DCLS) host. When a
  /// strict majority exists, `voted` (if non-null) receives the corrected
  /// words.
  VoteResult vote(const NPtr& buf, u64 bytes, std::vector<u32>* voted = nullptr);

  u32 copies() const { return cfg_.copies; }
  Cycle kernel_cycles() const { return kernel_cycles_; }
  /// Launch-id tuples of every redundant group.
  const std::vector<std::vector<u32>>& groups() const { return groups_; }
  runtime::Device& device() { return dev_; }

 private:
  sim::SchedHints hints_for_copy(u32 c) const;

  runtime::Device& dev_;
  Config cfg_;
  u32 num_sms_;
  Cycle kernel_cycles_ = 0;
  std::vector<std::vector<u32>> groups_;
  std::vector<std::vector<u32>> scratch_;
};

}  // namespace higpu::core
