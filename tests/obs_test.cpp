// Observability layer: ring-buffer tracer semantics, Chrome trace schema,
// flight recorder, the metrics registry, per-SM cycle attribution (the
// issued/stall/idle split must exactly tile the GPU clock), the serve
// queue-depth telemetry, the journal's auxiliary records and the wire
// codecs that ship worker logs / flight dumps to the coordinator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/jsonl.h"
#include "common/log.h"
#include "core/exec.h"
#include "dist/journal.h"
#include "dist/protocol.h"
#include "exp/campaign.h"
#include "exp/result_io.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/device.h"
#include "serve/engine.h"
#include "tests/test_kernels.h"

namespace higpu {
namespace {

using testing::make_launch;
using testing::make_spin_kernel;
using testing::make_store_kernel;

// ---- Tracer rings ----------------------------------------------------------

TEST(Tracer, RingWrapKeepsNewestAndCountsDropped) {
  obs::Tracer tr(8);
  const u32 t = tr.track("sm0", obs::kPidDevice);
  for (u64 i = 0; i < 20; ++i)
    tr.emit(t, obs::Ev::kWarpStall, /*ts=*/i, /*dur=*/1, /*a0=*/i);
  EXPECT_EQ(tr.events_recorded(), 20u);
  EXPECT_EQ(tr.events_dropped(), 12u);
  const std::vector<obs::TraceEvent> evs = tr.events(t);
  ASSERT_EQ(evs.size(), 8u);
  for (size_t i = 0; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].ts, 12 + i) << "oldest-first order after wrap";
}

TEST(Tracer, TrackRegistrationIsIdempotent) {
  obs::Tracer tr;
  const u32 a = tr.track("dram", obs::kPidDevice);
  const u32 b = tr.track("dram", obs::kPidDevice);
  const u32 c = tr.track("serve", obs::kPidHost);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(tr.num_tracks(), 2u);
  EXPECT_EQ(tr.track_name(a), "dram");
}

TEST(Tracer, TailMergesTracksByTimestamp) {
  obs::Tracer tr(16);
  const u32 a = tr.track("a", obs::kPidDevice);
  const u32 b = tr.track("b", obs::kPidDevice);
  tr.instant(a, obs::Ev::kMshrAlloc, 10);
  tr.instant(b, obs::Ev::kMshrFill, 5);
  tr.instant(a, obs::Ev::kMshrAlloc, 30);
  tr.instant(b, obs::Ev::kMshrFill, 20);
  const std::vector<obs::TaggedEvent> tail = tr.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].ev.ts, 10u);
  EXPECT_EQ(tail[1].ev.ts, 20u);
  EXPECT_EQ(tail[2].ev.ts, 30u);
}

// ---- Chrome trace JSON schema ----------------------------------------------

TEST(Tracer, ChromeJsonValidatesAndRoundTrips) {
  obs::Tracer tr;
  const u32 sm = tr.track("sm0", obs::kPidDevice);
  const u32 host = tr.track("serve.requests", obs::kPidHost);
  tr.emit(sm, obs::Ev::kWarpStall, 100, 40, 3,
          static_cast<u64>(obs::StallCls::kScoreboard));
  tr.instant(sm, obs::Ev::kCheckpoint, 150, 150);
  tr.emit(host, obs::Ev::kReqServe, 1'000'000, 250'000, 7);

  const std::string json = tr.to_chrome_json();
  EXPECT_EQ(obs::validate_chrome_trace(json), "");

  const JsonValue root = parse_json(json);
  EXPECT_EQ(root.get_string("schema"), obs::kTraceSchema);
  const JsonValue& evs = root.at("traceEvents");
  ASSERT_EQ(evs.kind, JsonValue::Kind::kArray);
  u32 spans = 0, instants = 0, meta = 0;
  for (const JsonValue& e : evs.array) {
    const std::string ph = e.get_string("ph");
    if (ph == "X") ++spans;
    else if (ph == "i") ++instants;
    else if (ph == "M") ++meta;
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(meta, 4u);  // 2 process_name + 2 thread_name
}

TEST(Tracer, ValidatorRejectsMalformedTraces) {
  EXPECT_NE(obs::validate_chrome_trace("not json"), "");
  EXPECT_NE(obs::validate_chrome_trace("{\"schema\":\"wrong/1\","
                                       "\"traceEvents\":[]}"), "");
  // An event referencing a track with no thread_name metadata record.
  EXPECT_NE(obs::validate_chrome_trace(
                std::string("{\"schema\":\"") + obs::kTraceSchema +
                "\",\"traceEvents\":[{\"name\":\"kernel\",\"ph\":\"i\","
                "\"pid\":0,\"tid\":9,\"ts\":1}]}"),
            "");
}

TEST(Tracer, FlightJsonIsSingleLineAndTagged) {
  obs::Tracer tr;
  const u32 t = tr.track("worker", obs::kPidHost);
  tr.instant(t, obs::Ev::kUnitShip, 1000, 42, 0);
  tr.instant(t, obs::Ev::kWorkerDeath, 2000, 3, 0);
  const std::string dump = tr.flight_json(8);
  EXPECT_EQ(dump.find('\n'), std::string::npos) << "must fit one JSONL line";
  const JsonValue v = parse_json(dump);
  EXPECT_EQ(v.get_string("schema"), obs::kFlightSchema);
  EXPECT_EQ(v.get_u64("recorded"), 2u);
  ASSERT_EQ(v.at("events").array.size(), 2u);
  EXPECT_EQ(v.at("events").array[1].get_string("name"), "worker_death");
}

// ---- Metrics registry ------------------------------------------------------

TEST(Registry, CountersGaugesHistograms) {
  obs::Registry reg;
  reg.count("serve.served");
  reg.count("serve.served", 4);
  EXPECT_EQ(reg.counter_value("serve.served"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);

  reg.gauge_set("serve.queue_depth", 3, 100);
  reg.gauge_set("serve.queue_depth", 9, 200);
  reg.gauge_set("serve.queue_depth", 2, 300);
  const obs::Gauge* g = reg.find_gauge("serve.queue_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 2);
  EXPECT_EQ(g->watermark, 9);
  EXPECT_EQ(g->watermark_at, 200u);

  for (i64 v = 1; v <= 100; ++v) reg.observe("serve.response_ns", v);
  const Percentiles* h = reg.find_histogram("serve.response_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p99(), 99);
}

TEST(Registry, FirstNegativeGaugeEstablishesWatermark) {
  obs::Registry reg;
  reg.gauge_set("depth", -4, 10);
  const obs::Gauge* g = reg.find_gauge("depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->watermark, -4);
  EXPECT_EQ(g->watermark_at, 10u);
}

TEST(Registry, SnapshotJsonParsesWithSchema) {
  obs::Registry reg;
  reg.count("dist.w0.results", 3);
  reg.gauge_set("serve.queue_depth", 5, 777);
  reg.observe("lat", 12);
  const std::string json = reg.snapshot_json(999);
  const JsonValue v = parse_json(json);
  EXPECT_EQ(v.get_string("schema"), obs::kMetricsSchema);
  EXPECT_EQ(v.get_u64("at"), 999u);
  EXPECT_EQ(v.at("counters").get_u64("dist.w0.results"), 3u);
  EXPECT_EQ(v.at("gauges").at("serve.queue_depth").get_u64("watermark_at"),
            777u);
}

TEST(Registry, MergeAggregatesFleetView) {
  obs::Registry a, b;
  a.count("units", 2);
  b.count("units", 3);
  a.gauge_set("depth", 1, 10);
  b.gauge_set("depth", 7, 20);
  a.observe("lat", 1);
  b.observe("lat", 9);
  a.merge(b);
  EXPECT_EQ(a.counter_value("units"), 5u);
  EXPECT_EQ(a.find_gauge("depth")->watermark, 7);
  EXPECT_EQ(a.find_histogram("lat")->count(), 2u);
}

// ---- Cycle attribution -----------------------------------------------------

TEST(CycleAttribution, ClassesTileTheGpuClockExactly) {
  exp::ScenarioSpec spec;
  spec.workload = "hotspot";
  spec.scale = workloads::Scale::kTest;
  const exp::ScenarioResult r = exp::run_scenario(spec);
  ASSERT_TRUE(r.ok) << r.error;
  const u64 total = r.stats.get("cycles");
  ASSERT_GT(total, 0u);
  ASSERT_FALSE(r.sm_profile.empty());
  u64 issued = 0, sb = 0, bar = 0, str = 0;
  for (const obs::SmCycles& c : r.sm_profile) {
    // The invariant behind run_workload --profile: every SM's five classes
    // sum to the GPU's total cycle count, with no gap and no overlap.
    EXPECT_EQ(c.total(), total);
    issued += c.issued;
    sb += c.scoreboard;
    bar += c.barrier;
    str += c.structural;
  }
  EXPECT_GT(issued, 0u);
  EXPECT_EQ(issued, r.stats.get("cycles_issued"));
  EXPECT_EQ(sb, r.stats.get("cycles_stall_scoreboard"));
  EXPECT_EQ(bar, r.stats.get("cycles_stall_barrier"));
  EXPECT_EQ(str, r.stats.get("cycles_stall_structural"));
}

TEST(CycleAttribution, ResultJsonlRoundTripsSmProfile) {
  exp::ScenarioSpec spec;
  spec.workload = "bfs";
  spec.scale = workloads::Scale::kTest;
  const exp::ScenarioResult r = exp::run_scenario(spec, 3);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.sm_profile.empty());
  const exp::ScenarioResult back = exp::result_from_jsonl(exp::result_to_jsonl(r));
  EXPECT_EQ(back.sm_profile, r.sm_profile);
  EXPECT_TRUE(r.deterministic_fields_equal(back));
}

TEST(CycleAttribution, ProfileTableRendersAllRow) {
  std::vector<obs::SmCycles> sms(2);
  sms[0] = {10, 5, 0, 5, 80};
  sms[1] = {0, 0, 0, 0, 100};
  const std::string table = obs::profile_table(sms, 100);
  EXPECT_NE(table.find("all"), std::string::npos);
  EXPECT_NE(table.find("scoreboard"), std::string::npos);
}

// ---- Flight recorder on a redundancy miscompare ----------------------------

TEST(FlightRecorder, CompareMismatchDumpsTraceTail) {
  runtime::Device dev;
  obs::Tracer tracer;
  dev.set_tracer(&tracer);
  core::ExecSession::Config cfg;
  cfg.policy = sched::Policy::kSrrs;
  core::ExecSession s(dev, cfg);
  const u32 n = 256;
  const core::ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_store_kernel(), sim::Dim3{2, 1, 1}, sim::Dim3{128, 1, 1},
           {out, n});
  s.sync();
  EXPECT_TRUE(s.flight_dumps().empty()) << "no detection yet";

  // Corrupt one word of copy 1 directly in device memory: the next compare
  // must detect it and capture the black box.
  dev.gpu().store().write32(out.copy[1] + 40, 0xBAD);
  EXPECT_TRUE(s.compare(out, n * 4).detected());
  ASSERT_EQ(s.flight_dumps().size(), 1u);

  const JsonValue v = parse_json(s.flight_dumps()[0]);
  EXPECT_EQ(v.get_string("schema"), obs::kFlightSchema);
  bool saw_compare_fail = false;
  for (const JsonValue& e : v.at("events").array)
    if (e.get_string("name") == "compare_fail") saw_compare_fail = true;
  EXPECT_TRUE(saw_compare_fail)
      << "the dump must include the triggering miscompare event";
}

TEST(FlightRecorder, NoTracerMeansNoDumps) {
  runtime::Device dev;
  core::ExecSession::Config cfg;
  cfg.policy = sched::Policy::kSrrs;
  core::ExecSession s(dev, cfg);
  const u32 n = 64;
  const core::ReplicaPtr out = s.alloc(n * 4);
  s.launch(make_store_kernel(), sim::Dim3{1, 1, 1}, sim::Dim3{64, 1, 1},
           {out, n});
  s.sync();
  dev.gpu().store().write32(out.copy[1] + 8, 0xBAD);
  EXPECT_TRUE(s.compare(out, n * 4).detected());
  EXPECT_TRUE(s.flight_dumps().empty());
}

// ---- Serve queue-depth telemetry -------------------------------------------

TEST(ServeTelemetry, QueueDepthSeriesAndWatermarkAreDeterministic) {
  serve::ServeSpec spec;
  spec.traffic.pattern = serve::TrafficSpec::Pattern::kBursty;
  spec.traffic.seed = 11;
  spec.traffic.offered_rps = 4000.0;
  spec.traffic.duration_ns = 5'000'000;
  spec.traffic.max_requests = 24;
  serve::TenantSpec t;
  t.name = "camera";
  t.workload = "nn";
  t.scale = workloads::Scale::kTest;
  t.deadline_ns = 20'000'000;
  spec.traffic.tenants.push_back(t);

  const serve::ServeResult a = serve::run_serve(spec);
  const serve::ServeResult b = serve::run_serve(spec);
  EXPECT_TRUE(a == b) << "telemetry must not break serve determinism";

  ASSERT_FALSE(a.queue_depth_series.empty());
  u32 max_depth = 0;
  u64 at = 0;
  for (const auto& [t_ns, depth] : a.queue_depth_series)
    if (depth > max_depth) {
      max_depth = depth;
      at = t_ns;
    }
  EXPECT_EQ(max_depth, a.max_queue_depth);
  EXPECT_EQ(at, a.queue_high_watermark_ns)
      << "watermark timestamp must name the first time the peak was reached";
  // The series is on the modelled clock, monotonically ordered.
  for (size_t i = 1; i < a.queue_depth_series.size(); ++i)
    EXPECT_GE(a.queue_depth_series[i].first,
              a.queue_depth_series[i - 1].first);
}

TEST(ServeTelemetry, MetricsJsonlSnapshotsOnModelledInterval) {
  serve::ServeSpec spec;
  spec.traffic.pattern = serve::TrafficSpec::Pattern::kPeriodic;
  spec.traffic.seed = 3;
  spec.traffic.offered_rps = 2000.0;
  spec.traffic.duration_ns = 4'000'000;
  spec.traffic.max_requests = 8;
  serve::TenantSpec t;
  t.name = "radar";
  t.workload = "nn";
  t.scale = workloads::Scale::kTest;
  t.deadline_ns = 20'000'000;
  spec.traffic.tenants.push_back(t);
  spec.metrics_jsonl_path = ::testing::TempDir() + "serve_metrics.jsonl";
  spec.metrics_interval_ns = 1'000'000;

  const serve::ServeResult r = serve::run_serve(spec);
  EXPECT_GT(r.served, 0u);

  std::FILE* f = std::fopen(spec.metrics_jsonl_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  u64 lines = 0, last_at = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    const JsonValue v = parse_json(text.substr(pos, nl - pos));
    EXPECT_EQ(v.get_string("schema"), obs::kMetricsSchema);
    const u64 at = v.get_u64("at");
    EXPECT_GE(at, last_at) << "snapshots advance on the modelled clock";
    last_at = at;
    ++lines;
    pos = nl + 1;
  }
  EXPECT_GE(lines, 2u) << "interval snapshots plus the final one";
}

// ---- Wire codecs and journal aux records -----------------------------------

TEST(WireCodecs, LogAndFlightRoundTrip) {
  dist::LogMsg msg;
  msg.level = static_cast<u32>(LogLevel::kWarn);
  msg.line = "+42ms w3 WARN: bank conflict storm";
  const dist::LogMsg back = dist::decode_log(dist::encode_log(msg));
  EXPECT_EQ(back.level, msg.level);
  EXPECT_EQ(back.line, msg.line);

  const std::string dump = "{\"schema\":\"higpu.flight/1\",\"events\":[]}";
  EXPECT_EQ(dist::decode_flight(dist::encode_flight(dump)), dump);

  EXPECT_TRUE(dist::known_msg(static_cast<u8>(dist::Msg::kLog)));
  EXPECT_TRUE(dist::known_msg(static_cast<u8>(dist::Msg::kFlight)));
  EXPECT_FALSE(dist::known_msg(8));
}

TEST(JournalAux, ScanSkipsAndCountsAuxRecords) {
  const std::string path = ::testing::TempDir() + "aux_journal.jsonl";
  {
    dist::Journal j = dist::Journal::create(path, /*fingerprint=*/77,
                                            /*scenarios=*/2);
    exp::ScenarioResult r;
    r.index = 0;
    r.label = "a";
    r.workload = "nn";
    j.add(r);
    j.add_aux("{\"log\":{\"worker\":1,\"level\":2,\"line\":\"hello\"}}");
    j.add_aux("{\"flight\":{\"worker\":1,\"dump\":{\"schema\":"
              "\"higpu.flight/1\",\"events\":[]}}}");
    r.index = 1;
    j.add(r);
    j.add_aux("{\"fleet\":{\"schema\":\"higpu.metrics/1\",\"at\":9,"
              "\"counters\":{},\"gauges\":{},\"histograms\":{}}}");
  }
  const dist::Scan scan = dist::scan_journal(path);
  EXPECT_EQ(scan.fingerprint, 77u);
  EXPECT_EQ(scan.results.size(), 2u);
  EXPECT_EQ(scan.aux_records, 3u);
  EXPECT_FALSE(scan.torn_tail);
}

// ---- Pluggable log sink ----------------------------------------------------

TEST(LogSink, SinkReceivesPrefixedTimestampedLines) {
  std::vector<std::pair<LogLevel, std::string>> got;
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_prefix("w7");
  set_log_sink([&got](LogLevel lvl, const std::string& line) {
    got.emplace_back(lvl, line);
  });
  log_info("checkpoint captured");
  log_debug("below threshold");  // filtered: must not reach the sink
  set_log_sink(nullptr);
  set_log_prefix("");
  set_log_level(before);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, LogLevel::kInfo);
  EXPECT_NE(got[0].second.find("w7"), std::string::npos);
  EXPECT_NE(got[0].second.find("INFO: checkpoint captured"),
            std::string::npos);
  EXPECT_EQ(got[0].second.rfind("+", 0), 0u) << "monotonic +<ms> stamp";
}

}  // namespace
}  // namespace higpu
