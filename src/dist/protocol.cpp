#include "dist/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace higpu::dist {

namespace {

// Frame header/trailer are built with the same little-endian primitives as
// payloads so the wire format is struct-padding-free end to end.
constexpr size_t kHeaderBytes = 4 + 1 + 8;  // magic + type + length

void write_all(int fd, const u8* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // coordinator with SIGPIPE mid-campaign.
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire send failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
}

/// Read exactly `len` bytes. Returns false on EOF before the first byte
/// when `eof_ok`; EOF mid-read always throws (a torn frame).
bool read_all(int fd, u8* data, size_t len, bool eof_ok) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (done == 0 && eof_ok) return false;
      throw WireError("wire stream ended mid-frame after " +
                      std::to_string(done) + " of " + std::to_string(len) +
                      " bytes");
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

void put_snapshot_opt(ckpt::Writer& w, const ckpt::SnapshotPtr& snap) {
  if (!snap) {
    w.putb(false);
    return;
  }
  w.putb(true);
  const std::vector<u8> framed = ckpt::encode_snapshot(*snap);
  w.put64(framed.size());
  w.put_bytes(framed.data(), framed.size());
}

ckpt::SnapshotPtr get_snapshot_opt(ckpt::Reader& r) {
  if (!r.getb()) return nullptr;
  const u64 n = r.get64();
  std::vector<u8> framed(static_cast<size_t>(n));
  r.get_bytes(framed.data(), framed.size());
  // decode_snapshot revalidates the inner frame (checksum, magic, per-
  // section hashes), so snapshot corruption is caught even if the outer
  // frame survived.
  return ckpt::decode_snapshot(framed);
}

}  // namespace

bool known_msg(u8 t) {
  return t >= static_cast<u8>(Msg::kHello) &&
         t <= static_cast<u8>(Msg::kFlight);
}

void send_frame(int fd, Msg type, const std::vector<u8>& payload) {
  ckpt::Writer w;
  w.put32(kFrameMagic);
  w.put8(static_cast<u8>(type));
  w.put64(payload.size());
  w.put_bytes(payload.data(), payload.size());
  w.put64(ckpt::fnv1a(payload.data(), payload.size()));
  const std::vector<u8>& bytes = w.blob();
  write_all(fd, bytes.data(), bytes.size());
}

bool recv_frame(int fd, Frame* out) {
  std::vector<u8> header(kHeaderBytes);
  if (!read_all(fd, header.data(), header.size(), /*eof_ok=*/true))
    return false;

  ckpt::Reader hr(header, {});
  const u32 magic = hr.get32();
  const u8 type = hr.get8();
  const u64 length = hr.get64();
  if (magic != kFrameMagic)
    throw WireError("wire frame has bad magic 0x" +
                    [&] {
                      char buf[16];
                      std::snprintf(buf, sizeof buf, "%08x", magic);
                      return std::string(buf);
                    }() +
                    " (stream desynchronized or corrupted)");
  if (!known_msg(type))
    throw WireError("wire frame has unknown message type " +
                    std::to_string(type));
  if (length > kMaxPayload)
    throw WireError("wire frame claims implausible payload of " +
                    std::to_string(length) + " bytes");

  out->type = static_cast<Msg>(type);
  out->payload.resize(static_cast<size_t>(length));
  read_all(fd, out->payload.data(), out->payload.size(), /*eof_ok=*/false);

  std::vector<u8> trailer(8);
  read_all(fd, trailer.data(), trailer.size(), /*eof_ok=*/false);
  ckpt::Reader tr(trailer, {});
  const u64 want = tr.get64();
  const u64 got = ckpt::fnv1a(out->payload.data(), out->payload.size());
  if (want != got)
    throw WireError("wire frame payload checksum mismatch (expected " +
                    std::to_string(want) + ", computed " +
                    std::to_string(got) + ")");
  return true;
}

// ---- ScenarioSpec ----------------------------------------------------------

void put_spec(ckpt::Writer& w, const exp::ScenarioSpec& spec) {
  w.put_string(spec.workload);
  w.put8(static_cast<u8>(spec.scale));
  w.put64(spec.seed);

  const sim::GpuParams& g = spec.gpu;
  w.put8(static_cast<u8>(g.engine));
  w.put8(static_cast<u8>(g.exec_mode));
  w.put8(static_cast<u8>(g.verify));
  w.put32(g.num_sms);
  w.put32(g.warp_size);
  w.put32(g.max_warps_per_sm);
  w.put32(g.max_blocks_per_sm);
  w.put32(g.regfile_per_sm);
  w.put32(g.shared_per_sm);
  w.put32(g.num_warp_schedulers);
  w.put32(g.sp_latency);
  w.put32(g.sfu_latency);
  w.put32(g.sfu_interval);
  w.put32(g.launch_gap_cycles);
  w.putf64(g.clock_ghz);

  const memsys::MemParams& m = g.mem;
  w.put32(m.line_bytes);
  w.put32(m.l1_size);
  w.put32(m.l1_assoc);
  w.put32(m.l1_latency);
  w.put32(m.l1_mshr_entries);
  w.put8(static_cast<u8>(m.l1_write_policy));
  w.put8(static_cast<u8>(m.l1_write_alloc));
  w.put32(m.l2_size);
  w.put32(m.l2_assoc);
  w.put32(m.l2_banks);
  w.put32(m.l2_latency);
  w.put32(m.l2_service);
  w.put32(m.dram_channels);
  w.put32(m.dram_banks_per_channel);
  w.put32(m.dram_row_bytes);
  w.put32(m.dram_row_hit_latency);
  w.put32(m.dram_row_miss_latency);
  w.put32(m.dram_service);
  w.put32(m.smem_banks);
  w.put32(m.smem_latency);
  w.put32(m.atomic_extra);

  const runtime::PlatformParams& p = spec.platform;
  w.putf64(p.pcie_h2d_gbps);
  w.putf64(p.pcie_d2h_gbps);
  w.put64(p.api_call_ns);
  w.put64(p.memcpy_latency_ns);
  w.put64(p.launch_ns);
  w.put64(p.sync_ns);
  w.putf64(p.host_compare_gbps);
  w.putf64(p.host_compute_gbps);
  w.putf64(p.file_parse_gbps);
  w.putf64(p.mem_generate_gbps);
  w.putf64(p.ckpt_restore_gbps);
  w.put64(p.ckpt_restore_latency_ns);

  w.put8(static_cast<u8>(spec.policy));

  const core::RedundancySpec& r = spec.redundancy;
  w.put32(r.n_copies);
  w.put8(static_cast<u8>(r.compare));
  w.putf64(static_cast<double>(r.tolerance));
  w.put_u32_vec(r.srrs_starts);
  w.put8(static_cast<u8>(r.recovery));
  w.put32(r.max_retries);
  w.put64(r.ftti_ns);

  const exp::FaultPlan& f = spec.fault;
  w.put8(static_cast<u8>(f.kind));
  w.put32(f.sm);
  w.put64(f.start);
  w.put64(f.duration);
  w.put32(f.bit);
  w.put32(f.sm_offset);

  w.put8(static_cast<u8>(spec.ckpt.kind));
  w.put64(spec.ckpt.interval_cycles);
}

exp::ScenarioSpec get_spec(ckpt::Reader& r) {
  exp::ScenarioSpec spec;
  spec.workload = r.get_string();
  spec.scale = static_cast<workloads::Scale>(r.get8());
  spec.seed = r.get64();

  sim::GpuParams& g = spec.gpu;
  g.engine = static_cast<sim::SimEngine>(r.get8());
  g.exec_mode = static_cast<sim::ExecMode>(r.get8());
  g.verify = static_cast<sim::LaunchVerify>(r.get8());
  g.num_sms = r.get32();
  g.warp_size = r.get32();
  g.max_warps_per_sm = r.get32();
  g.max_blocks_per_sm = r.get32();
  g.regfile_per_sm = r.get32();
  g.shared_per_sm = r.get32();
  g.num_warp_schedulers = r.get32();
  g.sp_latency = r.get32();
  g.sfu_latency = r.get32();
  g.sfu_interval = r.get32();
  g.launch_gap_cycles = r.get32();
  g.clock_ghz = r.getf64();

  memsys::MemParams& m = g.mem;
  m.line_bytes = r.get32();
  m.l1_size = r.get32();
  m.l1_assoc = r.get32();
  m.l1_latency = r.get32();
  m.l1_mshr_entries = r.get32();
  m.l1_write_policy = static_cast<memsys::WritePolicy>(r.get8());
  m.l1_write_alloc = static_cast<memsys::WriteAlloc>(r.get8());
  m.l2_size = r.get32();
  m.l2_assoc = r.get32();
  m.l2_banks = r.get32();
  m.l2_latency = r.get32();
  m.l2_service = r.get32();
  m.dram_channels = r.get32();
  m.dram_banks_per_channel = r.get32();
  m.dram_row_bytes = r.get32();
  m.dram_row_hit_latency = r.get32();
  m.dram_row_miss_latency = r.get32();
  m.dram_service = r.get32();
  m.smem_banks = r.get32();
  m.smem_latency = r.get32();
  m.atomic_extra = r.get32();

  runtime::PlatformParams& p = spec.platform;
  p.pcie_h2d_gbps = r.getf64();
  p.pcie_d2h_gbps = r.getf64();
  p.api_call_ns = r.get64();
  p.memcpy_latency_ns = r.get64();
  p.launch_ns = r.get64();
  p.sync_ns = r.get64();
  p.host_compare_gbps = r.getf64();
  p.host_compute_gbps = r.getf64();
  p.file_parse_gbps = r.getf64();
  p.mem_generate_gbps = r.getf64();
  p.ckpt_restore_gbps = r.getf64();
  p.ckpt_restore_latency_ns = r.get64();

  spec.policy = static_cast<sched::Policy>(r.get8());

  core::RedundancySpec& red = spec.redundancy;
  red.n_copies = r.get32();
  red.compare = static_cast<core::RedundancySpec::Compare>(r.get8());
  red.tolerance = static_cast<float>(r.getf64());
  red.srrs_starts = r.get_u32_vec();
  red.recovery = static_cast<core::RedundancySpec::Recovery>(r.get8());
  red.max_retries = r.get32();
  red.ftti_ns = r.get64();

  exp::FaultPlan& f = spec.fault;
  f.kind = static_cast<exp::FaultPlan::Kind>(r.get8());
  f.sm = r.get32();
  f.start = r.get64();
  f.duration = r.get64();
  f.bit = r.get32();
  f.sm_offset = r.get32();

  spec.ckpt.kind = static_cast<ckpt::CheckpointPolicy::Kind>(r.get8());
  spec.ckpt.interval_cycles = r.get64();
  return spec;
}

// ---- Work / result payloads ------------------------------------------------

std::vector<u8> encode_work(const WorkItem& item) {
  ckpt::Writer w;
  w.put64(item.unit_id);
  w.put32(item.index);
  put_spec(w, item.spec);
  put_snapshot_opt(w, item.resume);
  put_snapshot_opt(w, item.divergence_ref);
  return w.take_blob();
}

WorkItem decode_work(const std::vector<u8>& payload) {
  ckpt::Reader r(payload, {});
  WorkItem item;
  item.unit_id = r.get64();
  item.index = r.get32();
  item.spec = get_spec(r);
  item.resume = get_snapshot_opt(r);
  item.divergence_ref = get_snapshot_opt(r);
  return item;
}

std::vector<u8> encode_result(const ResultMsg& msg) {
  ckpt::Writer w;
  w.put64(msg.unit_id);
  w.put32(msg.index);
  w.put_string(msg.jsonl);
  return w.take_blob();
}

ResultMsg decode_result(const std::vector<u8>& payload) {
  ckpt::Reader r(payload, {});
  ResultMsg msg;
  msg.unit_id = r.get64();
  msg.index = r.get32();
  msg.jsonl = r.get_string();
  return msg;
}

std::vector<u8> encode_hello(u32 worker_id) {
  ckpt::Writer w;
  w.put32(kProtocolVersion);
  w.put32(worker_id);
  return w.take_blob();
}

u32 decode_hello(const std::vector<u8>& payload) {
  ckpt::Reader r(payload, {});
  const u32 version = r.get32();
  if (version != kProtocolVersion)
    throw WireError("worker speaks higpu.wire/" + std::to_string(version) +
                    ", coordinator expects higpu.wire/" +
                    std::to_string(kProtocolVersion));
  return r.get32();
}

std::vector<u8> encode_log(const LogMsg& msg) {
  ckpt::Writer w;
  w.put32(msg.level);
  w.put_string(msg.line);
  return w.take_blob();
}

LogMsg decode_log(const std::vector<u8>& payload) {
  ckpt::Reader r(payload, {});
  LogMsg msg;
  msg.level = r.get32();
  msg.line = r.get_string();
  return msg;
}

std::vector<u8> encode_flight(const std::string& json) {
  ckpt::Writer w;
  w.put_string(json);
  return w.take_blob();
}

std::string decode_flight(const std::vector<u8>& payload) {
  ckpt::Reader r(payload, {});
  return r.get_string();
}

u64 campaign_fingerprint(const exp::ScenarioSet& set) {
  ckpt::Writer w;
  w.put64(set.size());
  for (const exp::ScenarioSpec& spec : set) put_spec(w, spec);
  const std::vector<u8>& b = w.blob();
  return ckpt::fnv1a(b.data(), b.size());
}

}  // namespace higpu::dist
