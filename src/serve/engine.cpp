#include "serve/engine.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/jsonl.h"
#include "common/table.h"
#include "safety/bist.h"
#include "sched/edf.h"

namespace higpu::serve {

const char* degrade_reason_name(DegradeReason r) {
  switch (r) {
    case DegradeReason::kDeadlinePressure: return "deadline-pressure";
    case DegradeReason::kSessionDegrade: return "session-degrade";
    case DegradeReason::kRecovered: return "recovered";
  }
  return "?";
}

void ServeSpec::validate() const {
  traffic.validate();
  for (const TenantSpec& t : traffic.tenants)
    t.redundancy.validate(gpu, policy);
}

std::string ServeSpec::label() const {
  std::ostringstream os;
  os << traffic.label() << ':' << sched::policy_name(policy);
  if (bist_interval_ns != 0) os << ":bist";
  if (ckpt_interval_cycles != 0) os << ":ckpt" << ckpt_interval_cycles;
  return os.str();
}

core::RedundancySpec degrade(const core::RedundancySpec& base, u32 level) {
  core::RedundancySpec eff = base;
  eff.n_copies = base.n_copies > level ? base.n_copies - level : 1;
  if (eff.n_copies < 3 &&
      eff.compare == core::RedundancySpec::Compare::kMajorityVote)
    eff.compare = core::RedundancySpec::Compare::kBitwise;
  if (eff.n_copies == 1)
    eff.recovery = core::RedundancySpec::Recovery::kNone;
  // Explicit per-copy starts were chosen for the full copy count; let the
  // even auto-spread re-derive diversity for the reduced one.
  eff.srrs_starts.clear();
  return eff;
}

namespace {

/// Mutable serving state for one run_serve() invocation.
struct Loop {
  const ServeSpec& spec;
  runtime::Device dev;
  std::vector<Request> requests;
  std::vector<u32> queue;  // indices into requests, unordered
  u32 next_arrival = 0;    // first not-yet-admitted request
  u32 level = 0;           // current degrade level (0 = full redundancy)
  u32 max_level = 0;
  u32 consecutive_good = 0;
  u64 next_bist_ns = 0;
  /// EWMA of observed service time per tenant (prediction for admission).
  std::vector<u64> est_service_ns;
  ServeResult res;

  // Observability (pure observers on the modelled timeline).
  obs::Tracer* tr = nullptr;
  u32 trk_req = 0;  // host track: kReqEnqueue/kReqServe/kReqShed
  u32 trk_ctl = 0;  // host track: kDegrade
  obs::Registry metrics;
  std::unique_ptr<JsonlWriter> metrics_out;
  u64 next_metrics_ns = 0;

  explicit Loop(const ServeSpec& s)
      : spec(s), dev(s.gpu, s.platform), requests(s.traffic.generate()) {
    for (const TenantSpec& t : s.traffic.tenants) {
      max_level = std::max(max_level, t.redundancy.n_copies - 1);
      TenantStats ts;
      ts.name = t.name;
      res.tenants.push_back(std::move(ts));
      est_service_ns.push_back(0);
    }
    res.by_level.resize(max_level + 1);
    res.label = s.label();
    for (const Request& r : requests) ++res.tenants[r.tenant].offered;
    if (s.ckpt_interval_cycles != 0)
      dev.set_checkpoint_policy(
          ckpt::CheckpointPolicy::interval(s.ckpt_interval_cycles));
    next_bist_ns = s.bist_interval_ns;  // first BIST one period in
    if (s.tracer != nullptr) {
      tr = s.tracer;
      dev.set_tracer(tr);
      trk_req = tr->track("serve.requests", obs::kPidHost);
      trk_ctl = tr->track("serve.control", obs::kPidHost);
    }
    if (!s.metrics_jsonl_path.empty() && s.metrics_interval_ns != 0) {
      metrics_out =
          std::make_unique<JsonlWriter>(s.metrics_jsonl_path, /*truncate=*/true);
      next_metrics_ns = s.metrics_interval_ns;
    }
  }

  /// Record the queue depth after any change: the over-time series, the
  /// high watermark (with the modelled instant it was first reached) and
  /// the metrics gauge all key off this one observation point.
  void note_queue(u64 now) {
    const u64 depth = queue.size();
    if (res.queue_depth_series.empty() ||
        res.queue_depth_series.back().second != depth)
      res.queue_depth_series.emplace_back(now, static_cast<u32>(depth));
    if (depth > res.max_queue_depth) {
      res.max_queue_depth = depth;
      res.queue_high_watermark_ns = now;
    }
    metrics.gauge_set("serve.queue_depth", static_cast<i64>(depth), now);
  }

  /// Emit one metrics record per elapsed interval boundary (modelled time,
  /// so the series is deterministic and engine-independent).
  void flush_metrics(u64 now) {
    if (metrics_out == nullptr) return;
    while (next_metrics_ns <= now) {
      metrics_out->append(metrics.snapshot_json(next_metrics_ns));
      next_metrics_ns += spec.metrics_interval_ns;
    }
  }

  void admit(u64 now) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_ns <= now) {
      const Request& r = requests[next_arrival];
      if (tr != nullptr)
        tr->instant(trk_req, obs::Ev::kReqEnqueue, r.arrival_ns, r.id,
                    r.tenant);
      queue.push_back(next_arrival);
      ++next_arrival;
    }
    note_queue(now);
  }

  void run_bist_if_due(u64 now) {
    if (spec.bist_interval_ns == 0 || now < next_bist_ns) return;
    const safety::BistResult b = safety::run_scheduler_bist(dev, spec.policy);
    ++res.bist_runs;
    if (!b.pass) ++res.bist_failures;
    // One catch-up run covers any number of missed periods (a long request
    // must not trigger a BIST burst afterwards).
    while (next_bist_ns <= dev.elapsed_ns())
      next_bist_ns += spec.bist_interval_ns;
  }

  void transition(u64 t, u32 to, DegradeReason reason) {
    DegradeTransition rec;
    rec.t_ns = t;
    rec.from_level = level;
    rec.to_level = to;
    rec.reason = reason;
    rec.queue_depth = static_cast<u32>(queue.size());
    res.transitions.push_back(rec);
    if (tr != nullptr)
      tr->instant(trk_ctl, obs::Ev::kDegrade, t, to, static_cast<u64>(reason));
    metrics.count("serve.degrade_transitions");
    level = to;
    consecutive_good = 0;
  }

  void shed(u64 now) {
    if (spec.overload.shed_expired) {
      for (size_t i = 0; i < queue.size();) {
        const Request& r = requests[queue[i]];
        if (r.deadline_ns < now) {
          ++res.tenants[r.tenant].dropped_expired;
          ++res.dropped;
          metrics.count("serve.dropped_expired");
          if (tr != nullptr)
            tr->instant(trk_req, obs::Ev::kReqShed, now, r.id, 0);
          queue[i] = queue.back();
          queue.pop_back();
        } else {
          ++i;
        }
      }
    }
    const u32 cap = spec.overload.max_queue_depth;
    while (cap != 0 && queue.size() > cap) {
      // Shed the least urgent entry (latest deadline; highest id breaks the
      // tie so the choice is deterministic).
      size_t worst = 0;
      for (size_t i = 1; i < queue.size(); ++i) {
        const Request& a = requests[queue[i]];
        const Request& b = requests[queue[worst]];
        if (a.deadline_ns > b.deadline_ns ||
            (a.deadline_ns == b.deadline_ns && a.id > b.id))
          worst = i;
      }
      const Request& r = requests[queue[worst]];
      ++res.tenants[r.tenant].dropped_overflow;
      ++res.dropped;
      metrics.count("serve.dropped_overflow");
      if (tr != nullptr) tr->instant(trk_req, obs::Ev::kReqShed, now, r.id, 1);
      queue[worst] = queue.back();
      queue.pop_back();
    }
    note_queue(now);
  }

  /// EDF over the queue: earliest absolute deadline, lowest id on ties.
  u32 pop_edf() {
    size_t best = 0;
    for (size_t i = 1; i < queue.size(); ++i) {
      const Request& a = requests[queue[i]];
      const Request& b = requests[queue[best]];
      if (a.deadline_ns < b.deadline_ns ||
          (a.deadline_ns == b.deadline_ns && a.id < b.id))
        best = i;
    }
    const u32 idx = queue[best];
    queue[best] = queue.back();
    queue.pop_back();
    return idx;
  }

  void serve_one(u32 idx) {
    const Request& req = requests[idx];
    const TenantSpec& tenant = spec.traffic.tenants[req.tenant];
    TenantStats& ts = res.tenants[req.tenant];
    const u64 start = dev.elapsed_ns();

    // Overload prediction: would this request, started now, finish past its
    // deadline? One ladder step per decision — the next request re-decides.
    const u64 est = est_service_ns[req.tenant];
    if (spec.overload.enable_degrade && level < max_level && est != 0 &&
        start + est > req.deadline_ns)
      transition(start, level + 1, DegradeReason::kDeadlinePressure);

    const core::RedundancySpec eff = degrade(tenant.redundancy, level);
    core::ExecSession::Config cfg;
    cfg.policy = spec.policy;
    cfg.redundancy = eff;
    // Deadline-aware block dispatch: every copy stream of this request
    // carries the request's absolute deadline. The factory re-arms the
    // deadlines on every recovery attempt, keeping retries deterministic.
    const u32 copies = eff.n_copies;
    const u64 abs_deadline = req.deadline_ns;
    const sched::Policy pol = spec.policy;
    cfg.scheduler_factory = [copies, abs_deadline, pol]() {
      auto s = std::make_unique<sched::EdfKernelScheduler>(
          sched::EdfKernelScheduler::placement_for(pol));
      for (u32 c = 0; c < copies; ++c)
        s->set_stream_deadline(c, abs_deadline);
      return s;
    };

    workloads::WorkloadPtr w = workloads::make(tenant.workload);
    // Per-request input seed: deterministic, distinct per request.
    w->setup(tenant.scale, spec.traffic.seed + 0x9E37u * (req.id + 1));

    core::ExecSession session(dev, cfg);
    workloads::RunContext ctx(session);
    const core::ExecSession::Report rep =
        session.run([&](core::ExecSession&) { w->run(ctx); });
    if (!w->verify()) ++res.verify_failures;

    const u64 finish = dev.elapsed_ns();
    Completion c;
    c.request_id = req.id;
    c.tenant = req.tenant;
    c.level = level;
    c.start_ns = start;
    c.finish_ns = finish;
    c.response_ns = finish - req.arrival_ns;
    c.deadline_met = finish <= req.deadline_ns;
    res.completions.push_back(c);

    ++res.served;
    ++ts.served;
    metrics.count("serve.served");
    metrics.observe("serve.response_ns", static_cast<i64>(c.response_ns));
    if (tr != nullptr)
      tr->emit(trk_req, obs::Ev::kReqServe, start, finish - start, req.id,
               level);
    if (!c.deadline_met) {
      ++ts.deadline_misses;
      ++res.deadline_misses;
      metrics.count("serve.deadline_misses");
    }
    if (level > 0) ++ts.degraded_served;
    ts.response_ns.sample(static_cast<i64>(c.response_ns));
    ts.queue_wait_ns.sample(static_cast<i64>(start - req.arrival_ns));
    ts.ftti_slack_ns.sample(static_cast<i64>(eff.ftti_ns) -
                            static_cast<i64>(rep.budget.response_ns()));
    res.by_level[level].sample(static_cast<i64>(c.response_ns));
    res.busy_ns += finish - start;

    // Service-time estimate (EWMA, alpha = 1/2): level-agnostic on purpose —
    // a degraded service time predicting the full-redundancy cost errs
    // toward degrading early, which is the safe direction under overload.
    est_service_ns[req.tenant] =
        est == 0 ? (finish - start) : (est + (finish - start)) / 2;

    // Count interval-policy captures, then drop them: snapshots of a served
    // request must never feed the next one's rollback.
    res.checkpoints_captured += dev.checkpoints().size();
    dev.clear_checkpoints();

    // Session-detected degrade (Recovery::kDegrade engaged): take a ladder
    // step too — the fault already cost this request its redundancy budget.
    if (rep.degraded && spec.overload.enable_degrade && level < max_level)
      transition(finish, level + 1, DegradeReason::kSessionDegrade);

    // Hysteretic recovery: step back up only after a run of on-time
    // completions with the queue (nearly) drained.
    admit(finish);
    const bool good =
        c.deadline_met && queue.size() <= spec.overload.low_watermark;
    if (good) {
      ++consecutive_good;
      if (level > 0 && consecutive_good >= spec.overload.recover_after)
        transition(finish, level - 1, DegradeReason::kRecovered);
    } else {
      consecutive_good = 0;
    }
  }

  ServeResult run() {
    while (next_arrival < requests.size() || !queue.empty()) {
      u64 now = dev.elapsed_ns();
      admit(now);
      run_bist_if_due(now);
      flush_metrics(dev.elapsed_ns());
      if (queue.empty()) {
        // Idle: jump to the next arrival (or an earlier pending BIST).
        u64 wake = requests[next_arrival].arrival_ns;
        if (spec.bist_interval_ns != 0) wake = std::min(wake, next_bist_ns);
        now = dev.elapsed_ns();
        if (wake > now) dev.host_delay(wake - now);
        continue;
      }
      shed(dev.elapsed_ns());
      if (queue.empty()) continue;
      const u32 idx = pop_edf();
      note_queue(dev.elapsed_ns());
      serve_one(idx);
    }
    res.span_ns = dev.elapsed_ns();
    // Close out the metrics series at the end of the modelled span.
    if (metrics_out != nullptr)
      metrics_out->append(metrics.snapshot_json(res.span_ns));
    return std::move(res);
  }
};

void emit_percentiles(JsonWriter& jw, const char* key, const Percentiles& p) {
  jw.key(key);
  jw.begin_object();
  jw.field("count", p.count());
  jw.field("min", p.min());
  jw.field("max", p.max());
  jw.field("mean", p.mean());
  jw.field("p50", p.p50());
  jw.field("p95", p.p95());
  jw.field("p99", p.p99());
  jw.field("p999", p.p999());
  jw.end_object();
}

}  // namespace

ServeResult run_serve(const ServeSpec& spec) {
  spec.validate();
  Loop loop(spec);
  return loop.run();
}

std::string ServeResult::to_json(const ServeSpec& spec) const {
  JsonWriter jw;
  jw.begin_object();
  jw.field("schema", "higpu.serve/1");
  jw.field("label", label);
  jw.field("pattern", pattern_name(spec.traffic.pattern));
  jw.field("seed", spec.traffic.seed);
  jw.field("policy", sched::policy_name(spec.policy));
  jw.field("offered_rps", spec.traffic.offered_rps);
  jw.field("served", served);
  jw.field("dropped", dropped);
  jw.field("deadline_misses", deadline_misses);
  jw.field("verify_failures", verify_failures);
  jw.field("max_queue_depth", max_queue_depth);
  jw.field("queue_high_watermark_ns", queue_high_watermark_ns);
  jw.field("bist_runs", bist_runs);
  jw.field("bist_failures", bist_failures);
  jw.field("checkpoints_captured", checkpoints_captured);
  jw.field("span_ns", span_ns);
  jw.field("busy_ns", busy_ns);
  jw.field("utilization", utilization());
  jw.field("sustained_rps", sustained_rps());

  jw.key("tenants");
  jw.begin_array();
  for (const TenantStats& t : tenants) {
    jw.begin_object();
    jw.field("name", t.name);
    jw.field("offered", t.offered);
    jw.field("served", t.served);
    jw.field("dropped_expired", t.dropped_expired);
    jw.field("dropped_overflow", t.dropped_overflow);
    jw.field("deadline_misses", t.deadline_misses);
    jw.field("degraded_served", t.degraded_served);
    emit_percentiles(jw, "response_ns", t.response_ns);
    emit_percentiles(jw, "queue_wait_ns", t.queue_wait_ns);
    emit_percentiles(jw, "ftti_slack_ns", t.ftti_slack_ns);
    jw.end_object();
  }
  jw.end_array();

  jw.key("by_level");
  jw.begin_array();
  for (u32 l = 0; l < by_level.size(); ++l) {
    jw.begin_object();
    jw.field("level", l);
    emit_percentiles(jw, "response_ns", by_level[l]);
    jw.end_object();
  }
  jw.end_array();

  jw.key("queue_depth_series");
  jw.begin_array();
  for (const auto& [t_ns, depth] : queue_depth_series) {
    jw.begin_object();
    jw.field("t_ns", t_ns);
    jw.field("depth", depth);
    jw.end_object();
  }
  jw.end_array();

  jw.key("transitions");
  jw.begin_array();
  for (const DegradeTransition& tr : transitions) {
    jw.begin_object();
    jw.field("t_ns", tr.t_ns);
    jw.field("from_level", tr.from_level);
    jw.field("to_level", tr.to_level);
    jw.field("reason", degrade_reason_name(tr.reason));
    jw.field("queue_depth", tr.queue_depth);
    jw.end_object();
  }
  jw.end_array();

  jw.end_object();
  return jw.str();
}

std::string ServeResult::to_csv() const {
  TextTable t({"tenant", "offered", "served", "dropped_expired",
               "dropped_overflow", "deadline_misses", "degraded_served",
               "response_p50_ns", "response_p95_ns", "response_p99_ns",
               "response_p999_ns", "ftti_slack_p50_ns", "ftti_slack_min_ns"});
  for (const TenantStats& ts : tenants) {
    t.add_row({ts.name, std::to_string(ts.offered),
               std::to_string(ts.served), std::to_string(ts.dropped_expired),
               std::to_string(ts.dropped_overflow),
               std::to_string(ts.deadline_misses),
               std::to_string(ts.degraded_served),
               std::to_string(ts.response_ns.p50()),
               std::to_string(ts.response_ns.p95()),
               std::to_string(ts.response_ns.p99()),
               std::to_string(ts.response_ns.p999()),
               std::to_string(ts.ftti_slack_ns.p50()),
               std::to_string(ts.ftti_slack_ns.min())});
  }
  return t.render_csv();
}

}  // namespace higpu::serve
