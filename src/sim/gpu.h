// Top-level GPU: SM array, shared memory hierarchy, kernel launch queue and
// the cycle loop. The block-dispatch policy is delegated to a pluggable
// IKernelScheduler (the component this paper modifies).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memsys/global_store.h"
#include "memsys/hierarchy.h"
#include "sim/fault_hook.h"
#include "sim/kernel.h"
#include "sim/ksched.h"
#include "sim/params.h"
#include "sim/sm.h"

namespace higpu::sim {

/// Thrown when run_until_idle exceeds its cycle budget (scheduling deadlock
/// or runaway kernel).
class SimTimeout : public std::runtime_error {
 public:
  explicit SimTimeout(const std::string& what) : std::runtime_error(what) {}
};

class Gpu {
 public:
  /// `store` is the functional global memory (owned by the caller/runtime)
  /// and must outlive the Gpu.
  Gpu(const GpuParams& params, memsys::GlobalStore* store);

  // ---- Configuration ---------------------------------------------------
  void set_kernel_scheduler(std::unique_ptr<IKernelScheduler> sched);
  IKernelScheduler* kernel_scheduler() { return ksched_.get(); }
  void set_fault_hook(IFaultHook* hook);
  void set_trace_sink(ITraceSink* sink);
  void set_warp_sched_policy(WarpSchedPolicy p);
  const GpuParams& params() const { return params_; }

  // ---- Host-side API ------------------------------------------------------
  /// Enqueue a kernel; returns its launch id. Kernel dispatch is
  /// intrinsically serial: the launch becomes visible to the kernel
  /// scheduler `launch_gap_cycles` after the previous one (paper §IV.A).
  u32 launch(KernelLaunch launch);

  /// Run until all launched kernels completed. Throws SimTimeout after
  /// `max_cycles`. Returns the current cycle.
  Cycle run_until_idle(u64 max_cycles = 2'000'000'000ull);

  /// Advance a single cycle.
  void step();

  bool idle() const;
  Cycle now() const { return cycle_; }

  // ---- Scheduler-facing API ----------------------------------------------
  u32 num_sms() const { return static_cast<u32>(sms_.size()); }
  bool sm_can_accept(u32 sm, const KernelLaunch& launch) const;
  /// True when no SM holds any resident block.
  bool all_sms_drained() const;
  /// Kernel states in launch order (stable storage).
  std::vector<KernelState*> kernel_states();
  const KernelLaunch& launch_of(u32 launch_id) const;
  /// True if every kernel launched before `launch_id` has finished.
  bool priors_finished(u32 launch_id) const;
  /// True if every earlier kernel on the same stream has finished (stream
  /// ordering); schedulers must not dispatch a kernel before this holds.
  bool stream_ready(const KernelState& ks) const;
  /// Dispatch the next block of `ks` to SM `sm`. Enforces one dispatch per
  /// cycle GPU-wide; returns false if the budget is spent or the SM is full.
  bool try_dispatch_block(KernelState& ks, u32 sm);

  // ---- Results ----------------------------------------------------------------
  const KernelState& kernel_state(u32 launch_id) const;
  const std::vector<BlockRecord>& block_records() const { return records_; }
  /// Cycle span [first dispatch, completion] of one kernel.
  Cycle kernel_cycles(u32 launch_id) const;
  /// Aggregated statistics (SMs + memory + GPU counters).
  StatSet collect_stats() const;
  memsys::MemHierarchy& mem() { return mem_; }
  memsys::GlobalStore& store() { return *store_; }
  SmCore& sm(u32 i) { return *sms_[i]; }

 private:
  void on_block_done(const BlockRecord& rec);

  GpuParams params_;
  memsys::GlobalStore* store_;
  memsys::MemHierarchy mem_;
  std::vector<std::unique_ptr<SmCore>> sms_;
  std::unique_ptr<IKernelScheduler> ksched_;
  IFaultHook* fault_ = nullptr;

  Cycle cycle_ = 0;
  Cycle last_arrival_ = 0;
  Cycle last_dispatch_cycle_ = 0;
  bool dispatched_this_cycle_ = false;

  // Launches are stored behind unique_ptr so KernelState/KernelLaunch
  // references stay stable as new kernels arrive.
  struct LaunchSlot {
    KernelLaunch launch;
    KernelState state;
  };
  std::vector<std::unique_ptr<LaunchSlot>> launches_;
  std::vector<BlockRecord> records_;
  StatSet stats_;
};

}  // namespace higpu::sim
