// Optional instruction-issue trace interface.
//
// The DiversityMonitor subscribes to this to measure *temporal diversity
// slack*: the minimum time distance between corresponding instruction
// executions of a redundant kernel pair (paper §IV.C). Identity of an
// instruction instance is (launch, logical block, warp-in-block, per-warp
// issue sequence number) — identical across policies because functional
// execution is deterministic.
#pragma once

#include "common/types.h"

namespace higpu::sim {

class ITraceSink {
 public:
  virtual ~ITraceSink() = default;
  virtual void record(u32 launch_id, u32 block_linear, u32 warp_in_block,
                      u64 instr_seq, u32 sm, Cycle cycle) = 0;
};

}  // namespace higpu::sim
