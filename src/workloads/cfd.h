// cfd — unstructured-grid Euler solver (Rodinia euler3d): per iteration, a
// short step-factor kernel and a heavy flux kernel walking each element's
// neighbour list with division/sqrt-dense arithmetic. End-to-end time is
// dominated by kernel execution — one of the two benchmarks where redundant
// serialized execution visibly costs (Fig. 5).
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Cfd final : public Workload {
 public:
  std::string name() const override { return "cfd"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kNeighbors = 4;
  u32 n_ = 0;
  u32 iters_ = 0;
  std::vector<i32> neighbors_;   // n x kNeighbors element indices
  std::vector<float> density_;
  std::vector<float> momentum_;  // n (1D momentum magnitude, simplified)
  std::vector<float> energy_;
  std::vector<float> ref_density_;
  std::vector<float> got_density_;
  std::vector<float> got_energy_;
};

}  // namespace higpu::workloads
