#include "runtime/device.h"

#include <chrono>

namespace higpu::runtime {

Device::Device(const sim::GpuParams& gpu_params, const PlatformParams& platform)
    : platform_(platform),
      store_(std::make_unique<memsys::GlobalStore>()),
      gpu_(std::make_unique<sim::Gpu>(gpu_params, store_.get())),
      ns_per_cycle_(1.0 / gpu_params.clock_ghz) {}

DevPtr Device::malloc(u64 bytes) {
  now_ns_ += platform_.api_call_ns;
  return store_->alloc(bytes);
}

void Device::memcpy_h2d(DevPtr dst, const void* src, u64 bytes) {
  now_ns_ += platform_.transfer_ns(bytes, /*h2d=*/true);
  store_->write_block(dst, src, bytes);
}

void Device::memcpy_d2h(void* dst, DevPtr src, u64 bytes) {
  // cudaMemcpy D2H on the default flow implicitly synchronizes first.
  synchronize();
  now_ns_ += platform_.transfer_ns(bytes, /*h2d=*/false);
  store_->read_block(dst, src, bytes);
}

u32 Device::launch(sim::KernelLaunch launch, u32 stream) {
  now_ns_ += platform_.launch_ns;
  launch.stream = stream;
  return gpu_->launch(std::move(launch));
}

Cycle Device::synchronize() {
  const Cycle before = gpu_->now();
  const auto wall0 = std::chrono::steady_clock::now();
  gpu_->run_until_idle();
  sim_wall_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  const Cycle delta = gpu_->now() - before;
  // Only GPU time not already accounted for extends the wall clock.
  if (gpu_->now() > synced_upto_) {
    const Cycle fresh = gpu_->now() - synced_upto_;
    now_ns_ += static_cast<NanoSec>(static_cast<double>(fresh) * ns_per_cycle_);
    synced_upto_ = gpu_->now();
  }
  now_ns_ += platform_.sync_ns;
  gpu_cycles_ += delta;
  return delta;
}

void Device::host_compute(u64 bytes) {
  now_ns_ += platform_.host_compute_ns(bytes);
}

void Device::host_parse(u64 bytes) { now_ns_ += platform_.parse_ns(bytes); }

void Device::host_generate(u64 bytes) { now_ns_ += platform_.generate_ns(bytes); }

void Device::host_compare(u64 bytes) {
  now_ns_ += platform_.compare_ns(bytes);
}

}  // namespace higpu::runtime
