// Instruction and operand representation for the higpu kernel ISA.
#pragma once

#include <cassert>

#include "common/types.h"
#include "isa/opcode.h"

namespace higpu::isa {

/// Program counter: index into the program's instruction vector.
using Pc = u32;

constexpr u16 kNoReg = 0xFFFF;
constexpr i16 kNoPred = -1;

/// Strongly-typed general-purpose register handle produced by KernelBuilder.
struct Reg {
  u16 idx = kNoReg;
  bool valid() const { return idx != kNoReg; }
};

/// Strongly-typed predicate register handle.
struct PredReg {
  i16 idx = kNoPred;
  bool valid() const { return idx != kNoPred; }
};

enum class OperandKind : u8 { kNone, kReg, kImm };

/// A source operand: either a register or a 32-bit immediate (raw bits;
/// interpretation — int vs float — is defined by the opcode).
struct Operand {
  OperandKind kind = OperandKind::kNone;
  u16 reg = kNoReg;
  u32 imm = 0;

  Operand() = default;
  // Implicit: registers are the common case in builder call sites.
  Operand(Reg r) : kind(OperandKind::kReg), reg(r.idx) {}  // NOLINT

  static Operand make_imm(u32 bits) {
    Operand o;
    o.kind = OperandKind::kImm;
    o.imm = bits;
    return o;
  }
  bool is_reg() const { return kind == OperandKind::kReg; }
  bool is_imm() const { return kind == OperandKind::kImm; }
  bool present() const { return kind != OperandKind::kNone; }
};

/// Integer immediate operand.
inline Operand imm(i32 v) { return Operand::make_imm(static_cast<u32>(v)); }
inline Operand immu(u32 v) { return Operand::make_imm(v); }
/// Float immediate operand (stored as IEEE-754 bits).
inline Operand fimm(float v) { return Operand::make_imm(f2bits(v)); }

/// One decoded instruction. Kept POD-ish so programs are cheap to copy.
struct Instruction {
  Op op = Op::kNop;

  // Guard predicate: execute lane only if pred[guard] == !guard_neg.
  i16 guard = kNoPred;
  bool guard_neg = false;

  // Destination: GPR index for ALU/loads, predicate index for SETP.
  u16 dst = kNoReg;

  Operand src[3];

  // SETP fields.
  CmpOp cmp = CmpOp::kEq;
  DType dtype = DType::kI32;

  // SELP predicate source; for SETP it is an optional AND input
  // (PTX setp.and: pred[dst] = cmp(a,b) && pred[pred_src]).
  i16 pred_src = kNoPred;

  // S2R source.
  SReg sreg = SReg::kTidX;

  // Branch target (instruction index), resolved at build time.
  Pc target = 0;
  // Reconvergence pc for potentially-divergent branches (filled by finalize).
  Pc reconv_pc = 0;

  // Byte offset added to the address register for memory ops.
  i32 mem_offset = 0;

  /// Attach a guard predicate: execute where pred is true.
  Instruction& guard_if(PredReg p) {
    guard = p.idx;
    guard_neg = false;
    return *this;
  }
  /// Attach a negated guard predicate: execute where pred is false.
  Instruction& guard_ifnot(PredReg p) {
    guard = p.idx;
    guard_neg = true;
    return *this;
  }
};

}  // namespace higpu::isa
