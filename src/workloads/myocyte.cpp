#include "workloads/myocyte.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr float kDt = 0.002f;
constexpr float kA = 0.8f;
constexpr float kB = 0.35f;
constexpr float kC = 0.6f;

/// Forward-Euler integration of y' = a*exp(-b*y) - c*y + 0.05*sin(y).
/// One thread per cell; `steps` sequential steps (uniform loop).
isa::ProgramPtr build_myocyte_kernel() {
  using namespace isa;
  KernelBuilder kb("myocyte_ode");

  Reg y0 = kb.reg(), out = kb.reg(), n = kb.reg(), steps = kb.reg();
  kb.ldp(y0, 0);
  kb.ldp(out, 1);
  kb.ldp(n, 2);
  kb.ldp(steps, 3);

  Reg tid = kb.global_tid_x();
  Label done = kb.label();
  util::exit_if_ge(kb, tid, n, done);

  Reg a_y = util::elem_addr(kb, y0, tid);
  Reg y = kb.reg();
  kb.ldg(y, a_y);

  Reg s = kb.reg();
  kb.movi(s, 0);
  Label loop = kb.label(), loop_end = kb.label();
  kb.bind(loop);
  PredReg fin = kb.pred();
  kb.setp(fin, CmpOp::kGe, DType::kI32, s, steps);
  kb.bra(loop_end).guard_if(fin);

  // rhs = a*exp(-b*y) - c*y + 0.05*sin(y)
  Reg t = kb.reg(), e = kb.reg(), rhs = kb.reg(), sn = kb.reg();
  kb.fmul(t, y, fimm(-kB));
  kb.fexp(e, t);
  kb.fmul(rhs, e, fimm(kA));
  kb.ffma(rhs, y, fimm(-kC), rhs);
  kb.fsin(sn, y);
  kb.ffma(rhs, sn, fimm(0.05f), rhs);
  // y += dt * rhs
  kb.ffma(y, rhs, fimm(kDt), y);

  kb.iadd(s, s, imm(1));
  kb.bra(loop);
  kb.bind(loop_end);

  Reg a_o = util::elem_addr(kb, out, tid);
  kb.stg(a_o, y);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Myocyte::setup(Scale scale, u64 seed) {
  cells_ = 64;  // deliberately a single thread block
  steps_ = scale == Scale::kTest ? 64 : 4096;
  Rng rng(seed);

  y0_.resize(cells_);
  for (float& v : y0_) v = rng.next_float(0.1f, 1.0f);

  reference_.resize(cells_);
  for (u32 i = 0; i < cells_; ++i) {
    float y = y0_[i];
    for (u32 s = 0; s < steps_; ++s) {
      float rhs = std::exp(y * -kB) * kA;
      rhs = std::fma(y, -kC, rhs);
      rhs = std::fma(std::sin(y), 0.05f, rhs);
      y = std::fma(rhs, kDt, y);
    }
    reference_[i] = y;
  }
  result_.clear();
}

void Myocyte::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  // Rodinia myocyte spends substantial host time reading/writing state.
  session.device().host_parse(64 * 1024 * 8);

  const u64 bytes = static_cast<u64>(cells_) * 4;
  core::ReplicaPtr d_y0 = session.alloc(bytes);
  core::ReplicaPtr d_out = session.alloc(bytes);
  session.h2d(d_y0, y0_.data(), bytes);

  session.launch(build_myocyte_kernel(), sim::Dim3{1, 1, 1},
                 sim::Dim3{cells_, 1, 1}, {d_y0, d_out, cells_, steps_});
  session.sync();

  result_.resize(cells_);
  session.d2h(result_.data(), d_out, bytes);
  session.compare(d_out, bytes, result_.data());
}

bool Myocyte::verify() const { return approx_equal(result_, reference_, 5e-3f); }

u64 Myocyte::input_bytes() const { return static_cast<u64>(cells_) * 4; }
u64 Myocyte::output_bytes() const { return input_bytes(); }

}  // namespace higpu::workloads
