// bfs — level-synchronous breadth-first search (Rodinia): two very short
// kernels per level plus a host-read termination flag. Like backprop, its
// kernels are too short to overlap but need many blocks, so SRRS is
// innocuous while HALF costs (Fig. 4).
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Bfs final : public Workload {
 public:
  std::string name() const override { return "bfs"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 num_nodes_ = 0;
  std::vector<u32> offsets_;  // CSR: num_nodes_+1
  std::vector<u32> edges_;
  std::vector<i32> reference_cost_;
  std::vector<i32> result_cost_;
};

}  // namespace higpu::workloads
