// The worker side of the distributed campaign service.
//
// A worker is a child process holding one end of an AF_UNIX socketpair. Its
// loop is deliberately dumb: say Hello, then for every kWork frame decode
// the ScenarioSpec (and base/divergence snapshots when shipped), run the
// scenario through the exact same exp::run_scenario / SnapshotIo resume
// path the in-process CampaignRunner uses, and stream the result back as a
// higpu.campaign.jsonl/1 record. All policy — sharding, stealing, retry,
// journaling — lives in the coordinator; determinism lives in the
// simulator. A background thread emits kHeartbeat frames so the
// coordinator can distinguish "busy simulating" from "dead".
//
// A scenario that throws is not a worker crash: the worker reports it as a
// failed ScenarioResult (ok=false, error set), same as CampaignRunner.
#pragma once

#include "common/types.h"

namespace higpu::dist {

/// Run the worker protocol loop over `fd` until kShutdown or EOF.
/// `worker_id` is echoed in the Hello frame. `heartbeat_interval_ms` <= 0
/// disables the heartbeat thread (useful under test).
/// Returns the process exit code (0 on clean shutdown).
int worker_main(int fd, u32 worker_id, int heartbeat_interval_ms = 200);

}  // namespace higpu::dist
