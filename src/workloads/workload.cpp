#include "workloads/workload.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <stdexcept>

#include "workloads/backprop.h"
#include "workloads/bfs.h"
#include "workloads/btree.h"
#include "workloads/cfd.h"
#include "workloads/dwt2d.h"
#include "workloads/gaussian.h"
#include "workloads/hotspot.h"
#include "workloads/hotspot3d.h"
#include "workloads/kmeans.h"
#include "workloads/lavamd.h"
#include "workloads/leukocyte.h"
#include "workloads/lud.h"
#include "workloads/myocyte.h"
#include "workloads/nn.h"
#include "workloads/nw.h"
#include "workloads/particlefilter.h"
#include "workloads/pathfinder.h"
#include "workloads/srad.h"
#include "workloads/streamcluster.h"

namespace higpu::workloads {

namespace {

using Factory = std::function<WorkloadPtr()>;

const std::map<std::string, Factory>& registry() {
  static const std::map<std::string, Factory> kRegistry = {
      {"backprop", [] { return WorkloadPtr(new Backprop); }},
      {"bfs", [] { return WorkloadPtr(new Bfs); }},
      {"b+tree", [] { return WorkloadPtr(new BTree); }},
      {"cfd", [] { return WorkloadPtr(new Cfd); }},
      {"dwt2d", [] { return WorkloadPtr(new Dwt2d); }},
      {"gaussian", [] { return WorkloadPtr(new Gaussian); }},
      {"hotspot", [] { return WorkloadPtr(new Hotspot); }},
      {"hotspot3D", [] { return WorkloadPtr(new Hotspot3d); }},
      {"kmeans", [] { return WorkloadPtr(new Kmeans); }},
      {"lavaMD", [] { return WorkloadPtr(new LavaMd); }},
      {"leukocyte", [] { return WorkloadPtr(new Leukocyte); }},
      {"lud", [] { return WorkloadPtr(new Lud); }},
      {"myocyte", [] { return WorkloadPtr(new Myocyte); }},
      {"nn", [] { return WorkloadPtr(new Nn); }},
      {"nw", [] { return WorkloadPtr(new Nw); }},
      {"particlefilter", [] { return WorkloadPtr(new ParticleFilter); }},
      {"pathfinder", [] { return WorkloadPtr(new Pathfinder); }},
      {"srad", [] { return WorkloadPtr(new Srad); }},
      {"streamcluster", [] { return WorkloadPtr(new Streamcluster); }},
  };
  return kRegistry;
}

}  // namespace

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

std::vector<std::string> fig4_names() {
  return {"backprop", "bfs",       "dwt2d", "gaussian", "hotspot", "hotspot3D",
          "leukocyte", "lud",      "myocyte", "nn",      "nw"};
}

bool is_known(const std::string& name) {
  return registry().count(name) != 0;
}

std::string unknown_workload_message(const std::string& name) {
  std::string msg = "unknown workload '" + name + "'; valid names:";
  for (const auto& [known, factory] : registry()) msg += " " + known;
  return msg;
}

WorkloadPtr make(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end())
    throw std::invalid_argument(unknown_workload_message(name));
  return it->second();
}

const char* scale_name(Scale s) {
  return s == Scale::kTest ? "test" : "bench";
}

Scale parse_scale(const std::string& s) {
  if (s == "test") return Scale::kTest;
  if (s == "bench") return Scale::kBench;
  throw std::invalid_argument("unknown scale '" + s +
                              "'; valid scales: test bench");
}

bool approx_equal(float a, float b, float tol) {
  if (a == b) return true;
  if (std::isnan(a) || std::isnan(b)) return false;
  const float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

bool approx_equal(const std::vector<float>& a, const std::vector<float>& b,
                  float tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (!approx_equal(a[i], b[i], tol)) return false;
  return true;
}

std::vector<u32> to_bits(const std::vector<float>& v) {
  std::vector<u32> out(v.size());
  std::memcpy(out.data(), v.data(), v.size() * 4);
  return out;
}

std::vector<float> from_bits(const std::vector<u32>& v) {
  std::vector<float> out(v.size());
  std::memcpy(out.data(), v.data(), v.size() * 4);
  return out;
}

}  // namespace higpu::workloads
