// Kernel categorization (Fig. 3) and policy recommendation (§IV.D).
#include <gtest/gtest.h>

#include "core/categorize.h"
#include "tests/test_kernels.h"

namespace higpu::core {
namespace {

using testing::make_launch;
using testing::make_spin_kernel;

sim::KernelLaunch launch_of(u32 threads, u32 block, u32 shared_bytes = 0) {
  isa::ProgramPtr prog;
  if (shared_bytes > 0) {
    isa::KernelBuilder kb("shmem");
    kb.set_shared_bytes(shared_bytes);
    isa::Reg out = kb.reg();
    kb.ldp(out, 0);
    kb.exit();
    prog = kb.build();
  } else {
    prog = make_spin_kernel(10);
  }
  return make_launch(std::move(prog), threads, block, {0, threads});
}

TEST(Occupancy, LimitedByWarpSlots) {
  sim::GpuParams p;  // 48 warps/SM
  const sim::KernelLaunch l = launch_of(4096, 512);  // 16 warps per block
  EXPECT_EQ(max_blocks_per_sm(p, l), 3u);
}

TEST(Occupancy, LimitedBySharedMemory) {
  sim::GpuParams p;  // 48 KiB shared per SM
  const sim::KernelLaunch l = launch_of(1024, 64, 20 * 1024);
  EXPECT_EQ(max_blocks_per_sm(p, l), 2u);
}

TEST(Occupancy, LimitedByBlockSlots) {
  sim::GpuParams p;  // max 16 blocks/SM
  const sim::KernelLaunch l = launch_of(4096, 32);  // tiny blocks
  EXPECT_EQ(max_blocks_per_sm(p, l), 16u);
}

TEST(Categorize, ShortKernel) {
  sim::GpuParams p;  // launch gap 400 cycles
  const sim::KernelLaunch l = launch_of(256, 128);
  const CategoryReport rep = categorize_kernel(p, l, /*isolated_cycles=*/300);
  EXPECT_EQ(rep.category, KernelCategory::kShort);
}

TEST(Categorize, HeavyKernelSaturatesGpu) {
  sim::GpuParams p;
  // 512-thread blocks -> 3 blocks/SM -> 18 blocks saturate; launch 64 blocks.
  const sim::KernelLaunch l = launch_of(64 * 512, 512);
  const CategoryReport rep = categorize_kernel(p, l, /*isolated_cycles=*/100000);
  EXPECT_EQ(rep.category, KernelCategory::kHeavy);
  EXPECT_GT(rep.gpu_fill, 1.0);
}

TEST(Categorize, FriendlyKernel) {
  sim::GpuParams p;
  // 4 modest blocks, long enough to overlap.
  const sim::KernelLaunch l = launch_of(4 * 128, 128);
  const CategoryReport rep = categorize_kernel(p, l, /*isolated_cycles=*/100000);
  EXPECT_EQ(rep.category, KernelCategory::kFriendly);
  EXPECT_LT(rep.gpu_fill, 1.0);
}

TEST(Categorize, PolicyRecommendation) {
  EXPECT_EQ(recommend_policy(KernelCategory::kShort), sched::Policy::kSrrs);
  EXPECT_EQ(recommend_policy(KernelCategory::kHeavy), sched::Policy::kSrrs);
  EXPECT_EQ(recommend_policy(KernelCategory::kFriendly), sched::Policy::kHalf);
}

TEST(Categorize, NamesAreStable) {
  EXPECT_STREQ(category_name(KernelCategory::kShort), "short");
  EXPECT_STREQ(category_name(KernelCategory::kHeavy), "heavy");
  EXPECT_STREQ(category_name(KernelCategory::kFriendly), "friendly");
}

}  // namespace
}  // namespace higpu::core
