// Fault-injection hook interface.
//
// The simulator calls into this interface at the two places the paper's
// §IV.C argument cares about: datapath result production (transient droops,
// permanent SM defects) and kernel-scheduler block placement (scheduler
// faults). Implementations live in src/fault; a null hook costs one branch.
#pragma once

#include "common/types.h"

namespace higpu::sim {

class IFaultHook {
 public:
  virtual ~IFaultHook() = default;

  /// Possibly corrupt an ALU/SFU result produced on SM `sm` at `cycle`.
  /// Return the (possibly modified) value.
  virtual u32 corrupt_alu(u32 sm, Cycle cycle, u32 value) = 0;

  /// Possibly corrupt the kernel scheduler's block->SM mapping decision.
  /// Return the SM the block is actually sent to.
  virtual u32 corrupt_block_mapping(u32 intended_sm, u32 num_sms, Cycle cycle) = 0;

  /// Cheap global gate so the hot path can skip per-lane virtual calls when
  /// no fault is armed.
  virtual bool armed() const = 0;
};

}  // namespace higpu::sim
