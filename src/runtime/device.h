// CUDA-like host runtime over the GPU simulator, with stream semantics and
// an end-to-end wall-clock model.
//
// One Device owns the functional global store and one Gpu. All host-visible
// operations advance a single nanosecond timeline (`elapsed_ns`), combining
// platform overheads with simulated GPU cycles, which is what the Fig. 5
// end-to-end experiment measures.
//
// synchronize() drains the GPU through the engine selected by
// GpuParams::engine (event-driven by default): wall-clock cost scales with
// the work simulated, not with idle GPU cycles, while cycle counts and all
// reported statistics stay bit-identical to the dense reference loop.
//
// Checkpoint/restore (src/ckpt): snapshot() captures the complete device
// state — GPU core, memory system, global store, host timeline, scheduler
// cursors, armed fault state — as a versioned binary ckpt::Snapshot;
// restore() resumes from one bit-identically to an uninterrupted run, on
// this device or a freshly constructed one with identical parameters.
// Snapshots can be captured automatically (a CheckpointPolicy or explicit
// mid-run target cycles) and consumed two ways: rollback() re-anchors the
// simulation at a checkpoint while the host timeline keeps advancing
// (recovery semantics: restore cost is charged, the fault hook is told the
// physical world moved on), and arm_resume() teleports a deterministic
// re-run of the same workload over its already-simulated prefix (campaign
// fast-forward).
#pragma once

#include <memory>
#include <vector>

#include "ckpt/snapshot.h"
#include "common/types.h"
#include "isa/verify/verify.h"
#include "memsys/global_store.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/platform.h"
#include "sim/gpu.h"

namespace higpu::runtime {

using memsys::DevPtr;

class Device {
 public:
  explicit Device(const sim::GpuParams& gpu_params = {},
                  const PlatformParams& platform = {});

  // ---- Configuration -----------------------------------------------------
  sim::Gpu& gpu() { return *gpu_; }
  const PlatformParams& platform() const { return platform_; }
  /// Simulation engine driving this device's GPU (set via GpuParams).
  sim::SimEngine engine() const { return gpu_->params().engine; }
  void set_kernel_scheduler(std::unique_ptr<sim::IKernelScheduler> s) {
    gpu_->set_kernel_scheduler(std::move(s));
  }
  /// Attach (or detach, with nullptr) the observability tracer: forwards to
  /// the GPU (per-SM, kernel, DRAM and MSHR tracks) and creates a host-side
  /// checkpoint track for snapshot/restore/rollback instants. Pure observer:
  /// tracer state is never serialized and never enters params_fingerprint,
  /// so snapshots and results are bit-identical tracing on or off.
  void set_tracer(obs::Tracer* t);
  obs::Tracer* tracer() const { return obs_; }

  // ---- Memory -----------------------------------------------------------------
  DevPtr malloc(u64 bytes);
  void memcpy_h2d(DevPtr dst, const void* src, u64 bytes);
  void memcpy_d2h(void* dst, DevPtr src, u64 bytes);

  // ---- Execution ---------------------------------------------------------------
  /// Asynchronous launch on `stream`. Kernels on the same stream serialize;
  /// different streams may overlap (subject to the kernel scheduler policy).
  ///
  /// Launch gate: under GpuParams::verify == kEnforce (the default) the
  /// program is statically verified on its first launch per
  /// (program, grid, block); an error-severity diagnostic refuses the
  /// launch by throwing isa::verify::VerifyError with the full report.
  /// kWarn records the report and launches anyway — except programs whose
  /// defects are unsafe to execute on the simulator's unchecked indexing
  /// paths (isa::verify::Result::unsafe_to_execute), which every mode but
  /// kOff refuses. Repeat launches hit a memo and pay no analysis cost.
  /// Parameters stay symbolic in the analysis so the memoized verdict is
  /// sound for every parameter assignment.
  u32 launch(sim::KernelLaunch launch, u32 stream = 0);

  // ---- Launch-gate verification reports -----------------------------------
  /// One record per analysis actually run (memo misses), in first-launch
  /// order. Derived state: never serialized into snapshots. The record owns
  /// a reference to the program: the memo is keyed on its address, so the
  /// program must stay alive for the memo's lifetime — otherwise a new
  /// program allocated at a recycled address would replay a stale verdict.
  struct VerifyRecord {
    isa::ProgramPtr program;
    sim::Dim3 grid, block;
    isa::verify::Result result;
  };
  const std::vector<VerifyRecord>& verify_reports() const {
    return verify_reports_;
  }
  /// Static analyses executed (== verify_reports().size()).
  u64 verify_runs() const { return verify_reports_.size(); }
  /// Launches answered from the memo without re-analysis.
  u64 verify_memo_hits() const { return verify_memo_hits_; }

  /// Block until all launched work completed (cudaDeviceSynchronize).
  /// Returns the GPU cycles consumed by this synchronization.
  Cycle synchronize();

  // ---- Checkpoint / restore ----------------------------------------------
  /// Automatic capture policy: kPreKernel snapshots at every synchronize()
  /// with pending kernel work (the rollback anchors), kInterval snapshots
  /// periodically during execution. Captured snapshots accumulate in
  /// checkpoints() in capture order.
  void set_checkpoint_policy(const ckpt::CheckpointPolicy& p);
  const ckpt::CheckpointPolicy& checkpoint_policy() const {
    return ckpt_policy_;
  }
  /// Explicit mid-run capture cycles (a campaign's fault-injection points).
  /// After the run, target_snapshots()[i] holds the snapshot covering
  /// targets()[i] (sorted order), or null if the run ended before it.
  void set_checkpoint_targets(std::vector<Cycle> cycles);
  const std::vector<Cycle>& targets() const { return ckpt_targets_; }
  const std::vector<ckpt::SnapshotPtr>& target_snapshots() const {
    return target_snaps_;
  }
  /// Policy captures in capture order. Pre-kernel anchors are all kept
  /// (one per sync round with pending work); interval captures are a ring
  /// of the most recent kMaxIntervalCheckpoints so long runs don't
  /// accumulate memory proportional to their length.
  const std::vector<ckpt::SnapshotPtr>& checkpoints() const {
    return checkpoints_;
  }
  void clear_checkpoints() {
    checkpoints_.clear();
    checkpoint_is_anchor_.clear();
  }
  static constexpr u32 kMaxIntervalCheckpoints = 8;

  /// Capture the complete device state right now (between host operations,
  /// or from the GPU's mid-run capture points). Captures are free on the
  /// modelled timeline (see PlatformParams::ckpt_restore_gbps).
  ckpt::SnapshotPtr snapshot();

  /// Exact restore: device state becomes the snapshot's, and continued
  /// execution is bit-identical to the run the snapshot was captured from —
  /// results, cycle counts, statistics and the modelled timeline included.
  /// Throws ckpt::SnapshotError on version/parameter mismatch.
  void restore(const ckpt::Snapshot& s);

  /// Rollback restore: the simulated machine state is restored exactly, but
  /// the host timeline keeps advancing — the restore is charged at the
  /// platform's checkpoint-restore rate, cycles re-executed after the
  /// rollback are charged again, and the fault hook's on_rollback() fires
  /// (a past transient disturbance does not recur). This is the recovery
  /// primitive behind RedundancySpec::Recovery::kRollback.
  void rollback(const ckpt::Snapshot& s);

  /// Restore `s` at the entry of the matching future synchronize() call
  /// (the one with the snapshot's sync_seq), fast-forwarding a
  /// deterministic re-run over its already-simulated prefix.
  void arm_resume(ckpt::SnapshotPtr s) { resume_ = std::move(s); }

  // ---- Host-side time accounting ----------------------------------------------
  /// Charge host computation over `bytes` of data.
  void host_compute(u64 bytes);
  /// Charge parsing `bytes` of a text input file (slow, fscanf-style).
  void host_parse(u64 bytes);
  /// Charge synthesizing `bytes` of input data in memory.
  void host_generate(u64 bytes);
  /// Charge a DCLS output comparison over `bytes`.
  void host_compare(u64 bytes);
  /// Charge a fixed host delay.
  void host_delay(NanoSec ns) { now_ns_ += ns; }

  NanoSec elapsed_ns() const { return now_ns_; }
  /// Total GPU cycles consumed inside synchronize() calls.
  Cycle gpu_cycles_consumed() const { return gpu_cycles_; }
  /// Real (host wall-clock) seconds spent inside the simulation engine
  /// across synchronize() calls — the denominator for engine-throughput
  /// benches. Not part of the modelled timeline.
  double sim_wall_seconds() const { return sim_wall_sec_; }
  /// Host wall-clock phase split (simulate / snapshot / restore) for this
  /// device's lifetime so far. Diagnostic only — never part of the modelled
  /// timeline or the determinism contract.
  obs::HostPhases host_phases() const {
    obs::HostPhases p;
    p.sim_s = sim_wall_sec_;
    p.snapshot_s = snapshot_wall_sec_;
    p.restore_s = restore_wall_sec_;
    return p;
  }

 private:
  void verify_launch(const sim::KernelLaunch& launch);
  void on_gpu_checkpoint(Cycle nominal, bool is_target);
  void push_checkpoint(ckpt::SnapshotPtr snap, bool anchor);
  ckpt::SnapshotPtr capture(Cycle nominal);
  void restore_impl(const ckpt::Snapshot& s, bool restore_fault);
  u64 params_fingerprint() const;

  PlatformParams platform_;
  std::unique_ptr<memsys::GlobalStore> store_;
  std::unique_ptr<sim::Gpu> gpu_;
  NanoSec now_ns_ = 0;
  Cycle gpu_cycles_ = 0;
  Cycle synced_upto_ = 0;
  u64 sync_seq_ = 0;  // 1-based index of the synchronize() in progress
  double ns_per_cycle_;
  double sim_wall_sec_ = 0.0;
  double snapshot_wall_sec_ = 0.0;
  double restore_wall_sec_ = 0.0;

  obs::Tracer* obs_ = nullptr;
  u32 obs_ckpt_track_ = 0;

  ckpt::CheckpointPolicy ckpt_policy_;
  std::vector<Cycle> ckpt_targets_;               // sorted
  std::vector<ckpt::SnapshotPtr> target_snaps_;   // parallel to ckpt_targets_
  std::vector<ckpt::SnapshotPtr> checkpoints_;    // policy captures, in order
  std::vector<u8> checkpoint_is_anchor_;          // parallel: 1 = pre-kernel
  ckpt::SnapshotPtr resume_;

  std::vector<VerifyRecord> verify_reports_;
  u64 verify_memo_hits_ = 0;
};

}  // namespace higpu::runtime
