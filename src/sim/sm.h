// Streaming Multiprocessor model: resident thread blocks, warp scheduling
// (greedy-then-oldest), scoreboarding, execution pipelines, shared memory
// and barriers. Functional execution happens at issue; timing is charged
// through per-unit availability counters and the memory hierarchy.
#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memsys/global_store.h"
#include "memsys/hierarchy.h"
#include "sim/fault_hook.h"
#include "sim/kernel.h"
#include "sim/params.h"
#include "sim/trace.h"
#include "sim/warp.h"

namespace higpu::sim {

/// A thread block resident on an SM.
struct ResidentBlock {
  bool active = false;
  u32 launch_id = 0;
  u32 block_linear = 0;
  Dim3 block_idx;
  const KernelLaunch* launch = nullptr;
  u32 num_warps = 0;
  u32 warps_live = 0;
  u32 barrier_count = 0;  // warps currently waiting at the barrier
  std::vector<u8> shared;  // functional shared memory
  // Reserved resources, released when the block completes.
  u32 regs_reserved = 0;
  u32 shared_reserved = 0;
  u32 intended_sm = 0;
  Cycle dispatch_cycle = 0;
};

/// Warp-scheduler selection policy within an SM.
enum class WarpSchedPolicy { kGto, kLrr };

class SmCore {
 public:
  using BlockDoneFn = std::function<void(const BlockRecord&)>;

  SmCore(u32 sm_id, const GpuParams& params, memsys::MemHierarchy* mem,
         memsys::GlobalStore* store);

  u32 id() const { return sm_id_; }

  /// True if a block of `launch` fits in the currently-free resources.
  bool can_accept(const KernelLaunch& launch) const;

  /// Bind block `block_linear` of `launch` to this SM (resources must fit).
  void accept_block(const KernelLaunch& launch, u32 launch_id, u32 block_linear,
                    u32 intended_sm, Cycle now);

  /// Advance one cycle: each warp scheduler tries to issue one instruction.
  void cycle(Cycle now);

  /// No resident blocks.
  bool idle() const { return blocks_used_ == 0; }

  void set_block_done_callback(BlockDoneFn fn) { on_block_done_ = std::move(fn); }
  void set_fault_hook(IFaultHook* hook) { fault_ = hook; }
  void set_trace_sink(ITraceSink* sink) { trace_ = sink; }
  void set_warp_sched_policy(WarpSchedPolicy p) { warp_policy_ = p; }

  const StatSet& stats() const { return stats_; }
  StatSet& stats() { return stats_; }

  // Free-resource introspection (used by tests and occupancy analysis).
  u32 free_warp_slots() const { return params_.max_warps_per_sm - warps_used_; }
  u32 free_regs() const { return params_.regfile_per_sm - regs_used_; }
  u32 free_shared() const { return params_.shared_per_sm - shared_used_; }
  u32 resident_blocks() const { return blocks_used_; }

  /// Static per-block resource footprint of a launch on this configuration.
  static u32 warps_needed(const GpuParams& p, const KernelLaunch& l);
  static u32 regs_needed(const GpuParams& p, const KernelLaunch& l);

  /// Statistics snapshot including derived stall-reason counters.
  StatSet snapshot_stats() const;

 private:
  // Issue path.
  enum class IssueOutcome : u8 {
    kIssued,
    kWarpDone,
    kBarrier,
    kScoreboard,
    kStructural,
  };
  IssueOutcome try_issue_classified(Warp& w, Cycle now);
  bool try_issue(Warp& w, Cycle now);
  void execute(Warp& w, const isa::Instruction& ins, u32 guard_mask, Cycle now);
  void exec_branch(Warp& w, const isa::Instruction& ins, u32 guard_mask);
  void exec_global_mem(Warp& w, const isa::Instruction& ins, u32 guard_mask, Cycle now);
  void exec_shared_mem(Warp& w, const isa::Instruction& ins, u32 guard_mask, Cycle now);
  void exec_barrier(Warp& w);
  u32 sreg_value(const Warp& w, isa::SReg sreg, u32 lane) const;
  u32 operand_value(const Warp& w, const isa::Operand& o, u32 lane) const;
  u32 maybe_corrupt(u32 value, Cycle now) const;

  // Completion path.
  void complete_warp(Warp& w, Cycle now);
  void complete_block(ResidentBlock& b, Cycle now);
  void release_barrier(ResidentBlock& b);

  u32 sm_id_;
  const GpuParams& params_;
  memsys::MemHierarchy* mem_;
  memsys::GlobalStore* store_;
  IFaultHook* fault_ = nullptr;
  ITraceSink* trace_ = nullptr;
  WarpSchedPolicy warp_policy_ = WarpSchedPolicy::kGto;

  std::vector<ResidentBlock> blocks_;  // max_blocks_per_sm slots
  std::vector<Warp> warps_;            // max_warps_per_sm slots

  // Occupancy accounting.
  u32 warps_used_ = 0;
  u32 blocks_used_ = 0;
  u32 regs_used_ = 0;
  u32 shared_used_ = 0;

  // Structural availability.
  Cycle sfu_free_ = 0;
  Cycle mem_free_ = 0;

  // Warp-scheduler bookkeeping.
  std::vector<i32> last_issued_;  // per scheduler: warp slot or -1
  u64 age_counter_ = 0;

  // Scratch buffers reused across cycles.
  std::vector<u64> addr_scratch_;
  std::vector<std::pair<u64, u32>> order_scratch_;

  BlockDoneFn on_block_done_;
  StatSet stats_;

  // Issue-attempt outcome counters (exported via snapshot_stats()).
  u64 stall_scoreboard_ = 0;
  u64 stall_barrier_ = 0;
  u64 stall_structural_ = 0;
  u64 issued_attempts_ = 0;
};

}  // namespace higpu::sim
