// Differential fuzzing of the SIMT execution engine: random straight-line
// programs (ALU + predication + SELP/SETP, with guards) are executed on the
// simulator and on an independent per-thread reference interpreter written
// here with plain C++ operators. Any divergence in operand routing, guard
// masking, writeback ordering or warp scheduling shows up as a mismatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "isa/builder.h"
#include "isa/verify/verify.h"
#include "memsys/global_store.h"
#include "sched/policies.h"
#include "sim/gpu.h"

namespace higpu {
namespace {

constexpr u32 kDataRegs = 8;   // r0..r7 hold live data
constexpr u32 kPreds = 4;
constexpr u32 kProgramLen = 60;
constexpr u32 kThreads = 64;   // two warps

struct FuzzOp {
  isa::Op op;
  u32 dst;          // data register index (or predicate index for kSetp)
  u32 a, b, c;      // data register indices
  bool b_imm;       // use an immediate for operand b
  u32 imm_bits;
  isa::CmpOp cmp;
  bool is_float_cmp;
  u32 pred;         // predicate source for setp.and / selp
  i32 guard;        // -1 = unguarded, else predicate index
  bool guard_neg;
  bool clamp;       // float result: clamp to +-1e6 to keep programs NaN-free
                    // (NaN payload bits are not pinned by IEEE-754, so a
                    // payload surviving into an int op would be a false
                    // positive; fmin(NaN, 1e6) == 1e6 squashes them
                    // identically on both sides)
};

/// Ops safe under arbitrary operand values (no div/NaN surprises; float ops
/// stay finite because inputs are bounded and programs are short).
const isa::Op kIntOps[] = {isa::Op::kIadd, isa::Op::kIsub, isa::Op::kImul,
                           isa::Op::kImad, isa::Op::kImin, isa::Op::kImax,
                           isa::Op::kAnd,  isa::Op::kOr,   isa::Op::kXor,
                           isa::Op::kShl,  isa::Op::kShr,  isa::Op::kSra};
const isa::Op kFloatOps[] = {isa::Op::kFadd, isa::Op::kFsub, isa::Op::kFmul,
                             isa::Op::kFfma, isa::Op::kFmin, isa::Op::kFmax};

std::vector<FuzzOp> random_program(Rng& rng) {
  std::vector<FuzzOp> prog;
  for (u32 i = 0; i < kProgramLen; ++i) {
    FuzzOp f{};
    const u32 kind = static_cast<u32>(rng.next_below(10));
    if (kind < 4) {
      f.op = kIntOps[rng.next_below(std::size(kIntOps))];
    } else if (kind < 7) {
      f.op = kFloatOps[rng.next_below(std::size(kFloatOps))];
    } else if (kind < 8) {
      f.op = isa::Op::kSetp;
    } else {
      f.op = isa::Op::kSelp;
    }
    f.dst = static_cast<u32>(rng.next_below(f.op == isa::Op::kSetp ? kPreds : kDataRegs));
    f.a = static_cast<u32>(rng.next_below(kDataRegs));
    f.b = static_cast<u32>(rng.next_below(kDataRegs));
    f.c = static_cast<u32>(rng.next_below(kDataRegs));
    f.b_imm = rng.next_bool(0.3f);
    // Immediates: small ints for int ops, small floats for float ops.
    const bool is_float =
        std::find(std::begin(kFloatOps), std::end(kFloatOps), f.op) !=
        std::end(kFloatOps);
    f.imm_bits = is_float ? f2bits(rng.next_float(-2.0f, 2.0f))
                          : static_cast<u32>(rng.next_below(64));
    f.cmp = static_cast<isa::CmpOp>(rng.next_below(6));
    f.is_float_cmp = rng.next_bool(0.5f);
    f.pred = static_cast<u32>(rng.next_below(kPreds));
    f.guard = rng.next_bool(0.3f) ? static_cast<i32>(rng.next_below(kPreds)) : -1;
    f.guard_neg = rng.next_bool(0.5f);
    f.clamp = is_float;
    prog.push_back(f);
  }
  return prog;
}

/// Independent reference interpreter: plain C++ operators, per thread.
struct RefThread {
  u32 r[kDataRegs];
  bool p[kPreds];
};

void ref_execute(const std::vector<FuzzOp>& prog, RefThread& t) {
  auto fbits = [](float f) { return std::bit_cast<u32>(f); };
  auto bitsf = [](u32 b) { return std::bit_cast<float>(b); };
  for (const FuzzOp& f : prog) {
    if (f.guard >= 0 && t.p[f.guard] == f.guard_neg) continue;
    const u32 a = t.r[f.a];
    const u32 b = f.b_imm ? f.imm_bits : t.r[f.b];
    const u32 c = t.r[f.c];
    switch (f.op) {
      case isa::Op::kIadd: t.r[f.dst] = a + b; break;
      case isa::Op::kIsub: t.r[f.dst] = a - b; break;
      case isa::Op::kImul: t.r[f.dst] = a * b; break;
      case isa::Op::kImad: t.r[f.dst] = a * b + c; break;
      case isa::Op::kImin:
        t.r[f.dst] = static_cast<u32>(
            std::min(static_cast<i32>(a), static_cast<i32>(b)));
        break;
      case isa::Op::kImax:
        t.r[f.dst] = static_cast<u32>(
            std::max(static_cast<i32>(a), static_cast<i32>(b)));
        break;
      case isa::Op::kAnd: t.r[f.dst] = a & b; break;
      case isa::Op::kOr: t.r[f.dst] = a | b; break;
      case isa::Op::kXor: t.r[f.dst] = a ^ b; break;
      case isa::Op::kShl: t.r[f.dst] = a << (b & 31); break;
      case isa::Op::kShr: t.r[f.dst] = a >> (b & 31); break;
      case isa::Op::kSra:
        t.r[f.dst] = static_cast<u32>(static_cast<i32>(a) >> (b & 31));
        break;
      case isa::Op::kFadd: t.r[f.dst] = fbits(bitsf(a) + bitsf(b)); break;
      case isa::Op::kFsub: t.r[f.dst] = fbits(bitsf(a) - bitsf(b)); break;
      case isa::Op::kFmul: t.r[f.dst] = fbits(bitsf(a) * bitsf(b)); break;
      case isa::Op::kFfma:
        t.r[f.dst] = fbits(std::fma(bitsf(a), bitsf(b), bitsf(c)));
        break;
      case isa::Op::kFmin: t.r[f.dst] = fbits(std::fmin(bitsf(a), bitsf(b))); break;
      case isa::Op::kFmax: t.r[f.dst] = fbits(std::fmax(bitsf(a), bitsf(b))); break;
      case isa::Op::kSetp: {
        bool res = false;
        if (f.is_float_cmp) {
          const float x = bitsf(a), y = bitsf(b);
          switch (f.cmp) {
            case isa::CmpOp::kLt: res = x < y; break;
            case isa::CmpOp::kLe: res = x <= y; break;
            case isa::CmpOp::kGt: res = x > y; break;
            case isa::CmpOp::kGe: res = x >= y; break;
            case isa::CmpOp::kEq: res = x == y; break;
            case isa::CmpOp::kNe: res = x != y; break;
          }
        } else {
          const i32 x = static_cast<i32>(a), y = static_cast<i32>(b);
          switch (f.cmp) {
            case isa::CmpOp::kLt: res = x < y; break;
            case isa::CmpOp::kLe: res = x <= y; break;
            case isa::CmpOp::kGt: res = x > y; break;
            case isa::CmpOp::kGe: res = x >= y; break;
            case isa::CmpOp::kEq: res = x == y; break;
            case isa::CmpOp::kNe: res = x != y; break;
          }
        }
        t.p[f.dst] = res;
        break;
      }
      case isa::Op::kSelp:
        t.r[f.dst] = t.p[f.pred] ? a : b;
        break;
      default:
        FAIL() << "unexpected op in fuzz program";
    }
    if (f.clamp && f.op != isa::Op::kSetp) {
      const float v = bitsf(t.r[f.dst]);
      t.r[f.dst] = fbits(std::fmax(std::fmin(v, 1e6f), -1e6f));
    }
  }
}

/// Build the equivalent simulator kernel: seed r0..r7 from the thread id,
/// run the program, store all data registers to out[tid*kDataRegs + i].
isa::ProgramPtr build_kernel(const std::vector<FuzzOp>& prog) {
  using namespace isa;
  KernelBuilder kb("fuzz");
  Reg out = kb.reg();
  kb.ldp(out, 0);
  Reg tid = kb.global_tid_x();

  std::vector<Reg> r(kDataRegs);
  std::vector<PredReg> p(kPreds);
  for (u32 i = 0; i < kDataRegs; ++i) r[i] = kb.reg();
  for (u32 i = 0; i < kPreds; ++i) p[i] = kb.pred();

  // Seed: r[i] = (tid + 1) * (2i + 3) as int; odd regs as floats of that.
  for (u32 i = 0; i < kDataRegs; ++i) {
    Reg t = kb.reg();
    kb.iadd(t, tid, imm(1));
    kb.imul(r[i], t, imm(static_cast<i32>(2 * i + 3)));
    if (i % 2 == 1) kb.i2f(r[i], r[i]);
  }
  // Seed predicates deterministically: p[i] = (tid & (1<<i)) != 0.
  for (u32 i = 0; i < kPreds; ++i) {
    Reg t = kb.reg();
    kb.and_(t, tid, imm(static_cast<i32>(1u << i)));
    kb.setp(p[i], CmpOp::kNe, DType::kI32, t, imm(0));
  }

  for (const FuzzOp& f : prog) {
    Operand b = f.b_imm ? Operand(immu(f.imm_bits)) : Operand(r[f.b]);
    Instruction* ins = nullptr;
    switch (f.op) {
      case Op::kImad:
        ins = &kb.imad(r[f.dst], r[f.a], b, r[f.c]);
        break;
      case Op::kFfma:
        ins = &kb.ffma(r[f.dst], r[f.a], b, r[f.c]);
        break;
      case Op::kSetp:
        ins = &kb.setp(p[f.dst], f.cmp,
                       f.is_float_cmp ? DType::kF32 : DType::kI32, r[f.a], b);
        break;
      case Op::kSelp:
        ins = &kb.selp(r[f.dst], r[f.a], b, p[f.pred]);
        break;
      default: {
        // Route through the builder's named two-source emitters.
        switch (f.op) {
          case Op::kIadd: ins = &kb.iadd(r[f.dst], r[f.a], b); break;
          case Op::kIsub: ins = &kb.isub(r[f.dst], r[f.a], b); break;
          case Op::kImul: ins = &kb.imul(r[f.dst], r[f.a], b); break;
          case Op::kImin: ins = &kb.imin(r[f.dst], r[f.a], b); break;
          case Op::kImax: ins = &kb.imax(r[f.dst], r[f.a], b); break;
          case Op::kAnd: ins = &kb.and_(r[f.dst], r[f.a], b); break;
          case Op::kOr: ins = &kb.or_(r[f.dst], r[f.a], b); break;
          case Op::kXor: ins = &kb.xor_(r[f.dst], r[f.a], b); break;
          case Op::kShl: ins = &kb.shl(r[f.dst], r[f.a], b); break;
          case Op::kShr: ins = &kb.shr(r[f.dst], r[f.a], b); break;
          case Op::kSra: ins = &kb.sra(r[f.dst], r[f.a], b); break;
          case Op::kFadd: ins = &kb.fadd(r[f.dst], r[f.a], b); break;
          case Op::kFsub: ins = &kb.fsub(r[f.dst], r[f.a], b); break;
          case Op::kFmul: ins = &kb.fmul(r[f.dst], r[f.a], b); break;
          case Op::kFmin: ins = &kb.fmin(r[f.dst], r[f.a], b); break;
          case Op::kFmax: ins = &kb.fmax(r[f.dst], r[f.a], b); break;
          default: break;
        }
        break;
      }
    }
    if (ins == nullptr) throw std::logic_error("unhandled fuzz op");
    auto apply_guard = [&](Instruction& instr) {
      if (f.guard < 0) return;
      if (f.guard_neg)
        instr.guard_ifnot(p[f.guard]);
      else
        instr.guard_if(p[f.guard]);
    };
    apply_guard(*ins);
    if (f.clamp && f.op != Op::kSetp) {
      apply_guard(kb.fmin(r[f.dst], r[f.dst], fimm(1e6f)));
      apply_guard(kb.fmax(r[f.dst], r[f.dst], fimm(-1e6f)));
    }
  }

  // Store out[tid*kDataRegs + i] = r[i].
  Reg base = kb.reg(), addr = kb.reg();
  kb.imul(base, tid, imm(static_cast<i32>(kDataRegs * 4)));
  kb.iadd(base, base, out);
  for (u32 i = 0; i < kDataRegs; ++i) {
    kb.iadd(addr, base, imm(static_cast<i32>(i * 4)));
    kb.stg(addr, r[i]);
  }
  kb.exit();
  return kb.build();
}

class FuzzExec : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzExec, SimMatchesReferenceInterpreter) {
  Rng rng(GetParam() * 0x9E3779B9u + 1);
  const std::vector<FuzzOp> prog = random_program(rng);

  // Reference.
  std::vector<RefThread> ref(kThreads);
  for (u32 t = 0; t < kThreads; ++t) {
    for (u32 i = 0; i < kDataRegs; ++i) {
      ref[t].r[i] = (t + 1) * (2 * i + 3);
      if (i % 2 == 1)
        ref[t].r[i] = f2bits(static_cast<float>(static_cast<i32>(ref[t].r[i])));
    }
    for (u32 i = 0; i < kPreds; ++i) ref[t].p[i] = (t & (1u << i)) != 0;
    ref_execute(prog, ref[t]);
  }

  // Simulator.
  memsys::GlobalStore store;
  sim::GpuParams params;
  sim::Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  const memsys::DevPtr out = store.alloc(kThreads * kDataRegs * 4);
  sim::KernelLaunch launch;
  launch.program = build_kernel(prog);
  // Static-verifier oracle: every generated program must analyze clean.
  // This launch goes straight to Gpu::launch, bypassing the Device gate,
  // so the fuzzer exercises the verifier explicitly — a false positive
  // here means the analysis would refuse a legal program.
  const isa::verify::Result vr = isa::verify::verify(*launch.program);
  ASSERT_TRUE(vr.ok()) << "seed " << GetParam() << ":\n" << vr.to_string();
  launch.grid = {1, 1, 1};
  launch.block = {kThreads, 1, 1};
  launch.params = {out};
  gpu.launch(std::move(launch));
  gpu.run_until_idle(20'000'000);

  for (u32 t = 0; t < kThreads; ++t)
    for (u32 i = 0; i < kDataRegs; ++i)
      ASSERT_EQ(store.read32(out + (t * kDataRegs + i) * 4), ref[t].r[i])
          << "seed " << GetParam() << " thread " << t << " reg " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExec,
                         ::testing::Range<u64>(1, 25));

}  // namespace
}  // namespace higpu
