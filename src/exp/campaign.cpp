#include "exp/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/table.h"

namespace higpu::exp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

bool ScenarioResult::deterministic_fields_equal(
    const ScenarioResult& other) const {
  return index == other.index && label == other.label &&
         workload == other.workload && ok == other.ok &&
         error == other.error && verified == other.verified &&
         dcls_match == other.dcls_match && comparisons == other.comparisons &&
         mismatches == other.mismatches &&
         kernel_cycles == other.kernel_cycles &&
         elapsed_ns == other.elapsed_ns && ff_cycles == other.ff_cycles &&
         diversity == other.diversity && stats == other.stats &&
         fault_active == other.fault_active &&
         corruptions == other.corruptions &&
         diverted_blocks == other.diverted_blocks && outcome == other.outcome;
}

ScenarioResult run_scenario(const ScenarioSpec& spec, u32 index,
                            const ScenarioProbe& probe,
                            const ScenarioProbe& pre_run) {
  ScenarioResult r;
  r.index = index;
  r.label = spec.label();
  r.workload = spec.workload;
  r.fault_active = spec.fault.active();

  const auto t0 = Clock::now();
  try {
    spec.validate();

    workloads::WorkloadPtr w = workloads::make(spec.workload);
    w->setup(spec.scale, spec.seed);

    runtime::Device dev(spec.gpu, spec.platform);
    fault::FaultInjector injector;
    if (spec.fault.active()) {
      spec.fault.arm(injector);
      dev.gpu().set_fault_hook(&injector);
    }

    core::RedundantSession session(dev, spec.session_config());
    if (pre_run) pre_run(dev, *w, session);
    workloads::RunContext ctx(session);
    w->run(ctx);
    // The probe fires directly after Workload::run, before the result
    // harvest below, so pre_run/probe pairs bracket exactly the workload's
    // device flow (engine benches time this interval).
    if (probe) probe(dev, *w, session);

    r.verified = w->verify();
    r.dcls_match = session.all_outputs_matched();
    r.comparisons = session.comparisons();
    r.mismatches = session.mismatches();
    r.kernel_cycles = session.kernel_cycles();
    r.elapsed_ns = dev.elapsed_ns();
    r.ff_cycles = dev.gpu().fast_forwarded_cycles();
    r.sim_wall_sec = dev.sim_wall_seconds();
    if (spec.redundant)
      r.diversity = core::analyze_block_diversity(dev.gpu().block_records(),
                                                  session.pairs());
    r.stats = dev.gpu().collect_stats();
    r.corruptions = injector.corruptions();
    r.diverted_blocks = injector.diverted_blocks();
    r.outcome = fault::classify(r.dcls_match, r.verified);
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_sec = seconds_since(t0);
  return r;
}

u32 CampaignResult::failed() const {
  u32 n = 0;
  for (const ScenarioResult& r : results)
    if (!r.passed()) ++n;
  return n;
}

bool CampaignResult::all_passed() const { return failed() == 0; }

std::string CampaignResult::to_json() const {
  JsonWriter jw;
  jw.begin_object();
  jw.field("schema", std::string("higpu.campaign/1"));
  jw.field("scenarios", static_cast<u64>(results.size()));
  jw.field("jobs", jobs);
  jw.field("wall_sec", wall_sec);
  jw.field("scenarios_per_sec", scenarios_per_sec());
  jw.field("failed", failed());
  jw.key("results");
  jw.begin_array();
  for (const ScenarioResult& r : results) {
    jw.begin_object();
    jw.field("index", r.index);
    jw.field("label", r.label);
    jw.field("workload", r.workload);
    jw.field("ok", r.ok);
    if (!r.ok) jw.field("error", r.error);
    jw.field("passed", r.passed());
    jw.field("verified", r.verified);
    jw.field("dcls_match", r.dcls_match);
    jw.field("comparisons", r.comparisons);
    jw.field("mismatches", r.mismatches);
    jw.field("kernel_cycles", r.kernel_cycles);
    jw.field("elapsed_ns", r.elapsed_ns);
    jw.field("fault_active", r.fault_active);
    if (r.fault_active) {
      jw.field("corruptions", r.corruptions);
      jw.field("diverted_blocks", r.diverted_blocks);
      jw.field("fault_outcome", std::string(fault::outcome_name(r.outcome)));
    }
    jw.key("diversity");
    jw.begin_object();
    jw.field("blocks_checked", r.diversity.blocks_checked);
    jw.field("same_sm", r.diversity.same_sm);
    jw.field("time_overlap", r.diversity.time_overlap);
    jw.end_object();
    jw.key("stats");
    jw.begin_object();
    for (const auto& [name, value] : r.stats.entries()) jw.field(name, value);
    jw.end_object();
    jw.field("wall_sec", r.wall_sec);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  return jw.str() + "\n";
}

std::string CampaignResult::to_csv() const {
  TextTable table({"index", "label", "workload", "ok", "passed", "verified",
                   "dcls_match", "comparisons", "mismatches", "kernel_cycles",
                   "elapsed_ns", "fault", "corruptions", "fault_outcome",
                   "instructions", "error"});
  for (const ScenarioResult& r : results) {
    table.add_row({std::to_string(r.index), r.label, r.workload,
                   r.ok ? "true" : "false", r.passed() ? "true" : "false",
                   r.verified ? "true" : "false",
                   r.dcls_match ? "true" : "false",
                   std::to_string(r.comparisons), std::to_string(r.mismatches),
                   std::to_string(r.kernel_cycles),
                   std::to_string(r.elapsed_ns),
                   r.fault_active ? "true" : "false",
                   std::to_string(r.corruptions),
                   r.fault_active ? fault::outcome_name(r.outcome) : "",
                   std::to_string(r.stats.get("instructions")), r.error});
  }
  return table.render_csv();
}

CampaignResult CampaignRunner::run(const ScenarioSet& set) const {
  set.validate_all();

  CampaignResult out;
  out.results.resize(set.size());
  u32 jobs = cfg_.jobs != 0 ? cfg_.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = std::min<u32>(jobs, set.empty() ? 1 : static_cast<u32>(set.size()));
  out.jobs = jobs;

  const auto t0 = Clock::now();
  std::atomic<size_t> next{0};
  std::mutex report_mutex;

  auto worker = [&] {
    for (size_t i = next.fetch_add(1); i < set.size();
         i = next.fetch_add(1)) {
      ScenarioResult r = run_scenario(set[i], static_cast<u32>(i));
      if (cfg_.on_result) {
        std::lock_guard<std::mutex> lock(report_mutex);
        cfg_.on_result(r);
      }
      out.results[i] = std::move(r);
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (u32 t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  out.wall_sec = seconds_since(t0);
  return out;
}

}  // namespace higpu::exp
