#include "core/redundant.h"

#include <cstring>

namespace higpu::core {

RedundantSession::RedundantSession(runtime::Device& dev, Config cfg)
    : dev_(dev), cfg_(cfg), num_sms_(dev.gpu().num_sms()) {
  if (cfg_.srrs_start_b == Config::kAuto)
    cfg_.srrs_start_b = num_sms_ / 2;
  dev_.set_kernel_scheduler(sched::make_scheduler(cfg_.policy));
}

DualPtr RedundantSession::alloc(u64 bytes) {
  DualPtr p;
  p.a = dev_.malloc(bytes);
  p.b = (cfg_.redundant) ? dev_.malloc(bytes) : p.a;
  return p;
}

void RedundantSession::h2d(DualPtr dst, const void* src, u64 bytes) {
  dev_.memcpy_h2d(dst.a, src, bytes);
  if (cfg_.redundant) dev_.memcpy_h2d(dst.b, src, bytes);
}

void RedundantSession::d2h(void* dst, DualPtr src, u64 bytes) {
  dev_.memcpy_d2h(dst, src.a, bytes);
}

sim::SchedHints RedundantSession::hints_for_copy(bool copy_b) const {
  sim::SchedHints h;
  switch (cfg_.policy) {
    case sched::Policy::kDefault:
      break;  // unconstrained
    case sched::Policy::kHalf: {
      const u32 half = num_sms_ / 2;
      if (cfg_.redundant)
        h.sm_mask = copy_b ? sched::sm_range_mask(half, num_sms_)
                           : sched::sm_range_mask(0, half);
      break;
    }
    case sched::Policy::kSrrs:
      h.start_sm = copy_b ? cfg_.srrs_start_b : cfg_.srrs_start_a;
      break;
  }
  return h;
}

void RedundantSession::launch(isa::ProgramPtr prog, sim::Dim3 grid,
                              sim::Dim3 block,
                              const std::vector<DualParam>& params,
                              const std::string& tag) {
  sim::KernelLaunch a;
  a.program = prog;
  a.grid = grid;
  a.block = block;
  a.hints = hints_for_copy(false);
  a.tag = tag.empty() ? prog->name() : tag;
  for (const DualParam& p : params)
    a.params.push_back(p.is_buffer ? p.buf.a : p.scalar);

  if (!cfg_.redundant) {
    dev_.launch(std::move(a), /*stream=*/0);
    return;
  }

  sim::KernelLaunch b = a;
  b.hints = hints_for_copy(true);
  b.params.clear();
  for (const DualParam& p : params)
    b.params.push_back(p.is_buffer ? p.buf.b : p.scalar);
  b.tag = a.tag + "#r";

  const u32 id_a = dev_.launch(std::move(a), /*stream=*/0);
  const u32 id_b = dev_.launch(std::move(b), /*stream=*/1);
  pairs_.emplace_back(id_a, id_b);
}

Cycle RedundantSession::sync() {
  const Cycle delta = dev_.synchronize();
  kernel_cycles_ += delta;
  return delta;
}

bool RedundantSession::compare(DualPtr buf, u64 bytes, const void* host_a) {
  if (!cfg_.redundant) return true;
  const void* a = host_a;
  if (a == nullptr) {
    scratch_a_.resize(bytes);
    dev_.memcpy_d2h(scratch_a_.data(), buf.a, bytes);
    a = scratch_a_.data();
  }
  scratch_b_.resize(bytes);
  dev_.memcpy_d2h(scratch_b_.data(), buf.b, bytes);
  dev_.host_compare(bytes);
  comparisons_ += 1;
  const bool equal = std::memcmp(a, scratch_b_.data(), bytes) == 0;
  if (!equal) mismatches_ += 1;
  return equal;
}

}  // namespace higpu::core
