// hotspot — 2D thermal simulation (Rodinia): iterative 5-point stencil over
// a temperature grid driven by a power map. One kernel launch per time step
// on 16x16 thread blocks with ping-pong buffers. A classic "friendly"
// kernel: many medium blocks, moderate resources.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Hotspot final : public Workload {
 public:
  std::string name() const override { return "hotspot"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 dim_ = 0;
  u32 steps_ = 0;
  std::vector<float> temp_;
  std::vector<float> power_;
  std::vector<float> reference_;
  std::vector<float> result_;
};

}  // namespace higpu::workloads
