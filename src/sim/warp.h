// SIMT warp state: per-lane registers, predicate file, reconvergence stack,
// exit mask and an in-order scoreboard.
#pragma once

#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace higpu::sim {

namespace blockexec {
class CompiledTrace;
}  // namespace blockexec

constexpr u32 kWarpSize = 32;
constexpr u32 kFullMask = 0xFFFFFFFFu;

/// One reconvergence-stack entry (classic IPDOM scheme).
struct StackEntry {
  isa::Pc pc = 0;
  isa::Pc rpc = 0;  // pop when pc reaches rpc
  u32 mask = 0;     // lanes owned by this entry
};

/// A warp resident on an SM. Plain state; all behaviour lives in SmCore.
struct Warp {
  // ---- Slot management ----
  bool active = false;      // slot occupied
  u64 age = 0;              // monotonically increasing activation order (GTO)
  u32 block_slot = 0;       // index of owning ResidentBlock within the SM
  u32 warp_in_block = 0;

  // ---- Program state ----
  const isa::KernelProgram* prog = nullptr;
  /// Compiled superinstruction trace for `prog` (null in interpreter mode).
  /// Derived state: set alongside `prog` on block acceptance and on snapshot
  /// restore, never serialized. Owned by the KernelLaunch.
  const blockexec::CompiledTrace* ctrace = nullptr;
  u32 valid_mask = 0;                 // lanes that exist (partial last warp)
  u32 exited = 0;                     // lanes that executed EXIT
  std::vector<StackEntry> stack;
  // Struct-of-arrays register files: one contiguous kWarpSize-lane row per
  // architectural register, `regs[r * kWarpSize + lane]`. The row layout is
  // what lets the block engine hand whole rows to width-32 lane kernels
  // (see reg_row / blockexec::run_vkernel).
  std::vector<u32> regs;              // num_regs x kWarpSize, lane-major per reg
  std::vector<u8> preds;              // num_preds x kWarpSize

  // ---- Hazards ----
  bool at_barrier = false;
  struct Pending {
    u16 reg = 0;
    bool is_pred = false;
    Cycle ready = 0;
  };
  std::vector<Pending> pending;  // outstanding register writebacks

  // ---- Stats ----
  u64 instructions = 0;

  // Indexing is deliberately unchecked on this hot path: register and
  // predicate indices are static program fields proven in range before any
  // warp executes — the launch gate refuses reg-out-of-range /
  // pred-out-of-range programs under kEnforce AND kWarn (they are in
  // isa::verify::Result::unsafe_to_execute's class; kWarn only waives
  // merely-wrong defects) — and fault injection corrupts register
  // *values*, never the decoded indices. LaunchVerify::kOff disables that
  // proof and is therefore unsafe with untrusted programs.
  u32& reg_at(u16 r, u32 lane) { return regs[static_cast<size_t>(r) * kWarpSize + lane]; }
  u32 reg_at(u16 r, u32 lane) const { return regs[static_cast<size_t>(r) * kWarpSize + lane]; }
  u8& pred_at(i16 p, u32 lane) { return preds[static_cast<size_t>(p) * kWarpSize + lane]; }
  u8 pred_at(i16 p, u32 lane) const { return preds[static_cast<size_t>(p) * kWarpSize + lane]; }

  /// Contiguous 32-lane SoA row of GPR `r` / predicate `p`.
  u32* reg_row(u16 r) { return regs.data() + static_cast<size_t>(r) * kWarpSize; }
  const u32* reg_row(u16 r) const { return regs.data() + static_cast<size_t>(r) * kWarpSize; }
  u8* pred_row(i16 p) { return preds.data() + static_cast<size_t>(p) * kWarpSize; }
  const u8* pred_row(i16 p) const { return preds.data() + static_cast<size_t>(p) * kWarpSize; }

  /// Drop finished/empty stack entries. Returns false when the warp has
  /// fully completed (stack empty or all lanes exited).
  bool refresh_stack() {
    while (!stack.empty()) {
      const StackEntry& top = stack.back();
      const u32 eff = top.mask & ~exited;
      if (eff == 0 || top.pc == top.rpc) {
        stack.pop_back();
        continue;
      }
      return true;
    }
    return false;
  }

  /// Lanes that will execute the next instruction.
  u32 effective_mask() const { return stack.back().mask & ~exited; }
  isa::Pc pc() const { return stack.back().pc; }

  /// Scoreboard: true if register/pred `r` has an outstanding write that is
  /// not ready at `now` (removes stale entries as a side effect).
  bool hazard(u16 r, bool is_pred, Cycle now) {
    for (size_t i = 0; i < pending.size();) {
      if (pending[i].ready <= now) {
        pending[i] = pending.back();
        pending.pop_back();
        continue;
      }
      if (pending[i].reg == r && pending[i].is_pred == is_pred) return true;
      ++i;
    }
    return false;
  }

  /// Cycle at which hazard(r, is_pred, ...) turns false: the latest `ready`
  /// among outstanding writes to that register, or `t` if none is in flight
  /// after `t`. Pure (no reaping) — used by the event-driven engine to turn
  /// scoreboard releases into wake events.
  Cycle release_cycle(u16 r, bool is_pred, Cycle t) const {
    Cycle rel = t;
    for (const Pending& p : pending)
      if (p.reg == r && p.is_pred == is_pred && p.ready > rel) rel = p.ready;
    return rel;
  }

  /// True if any outstanding writeback is still in flight at `now`.
  bool any_pending(Cycle now) {
    for (size_t i = 0; i < pending.size();) {
      if (pending[i].ready <= now) {
        pending[i] = pending.back();
        pending.pop_back();
        continue;
      }
      return true;
    }
    return false;
  }
};

}  // namespace higpu::sim
