#include "common/stats.h"

namespace higpu {

void StatSet::add(const std::string& name, u64 delta) { counters_[name] += delta; }

void StatSet::set(const std::string& name, u64 value) { counters_[name] = value; }

u64 StatSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatSet::has(const std::string& name) const {
  return counters_.find(name) != counters_.end();
}

double StatSet::ratio(const std::string& a, const std::string& b) const {
  const double va = static_cast<double>(get(a));
  const double vb = static_cast<double>(get(b));
  const double denom = va + vb;
  return denom == 0.0 ? 0.0 : va / denom;
}

void StatSet::merge(const StatSet& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
}

void StatSet::clear() {
  for (auto& [name, value] : counters_) value = 0;
}

std::vector<std::pair<std::string, u64>> StatSet::entries() const {
  return {counters_.begin(), counters_.end()};
}

void RunningStat::sample(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  sum_ += v;
  ++count_;
}

}  // namespace higpu
