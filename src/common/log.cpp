#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace higpu {

namespace {
// Atomic so campaign worker threads can log while the main thread adjusts
// the level (and so the read stays TSan-clean).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_msg(LogLevel level, const std::string& msg) {
  if (level > log_level() || level == LogLevel::kSilent) return;
  std::fprintf(stderr, "[higpu:%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace higpu
