#include "sim/executor.h"

#include <cstdio>
#include <cstdlib>

namespace higpu::sim::detail {

namespace {

[[noreturn]] void die(const char* what, int value) {
  // One line on stderr, then abort: a bad enum in the functional units means
  // the instruction stream is corrupt, and silently producing zeros (the old
  // behaviour) masks exactly the miscompiles/memory bugs this should catch.
  std::fprintf(stderr, "higpu: fatal: %s (value %d) reached the ALU path\n",
               what, value);
  std::abort();
}

}  // namespace

void unknown_alu_op(isa::Op op) {
  die("non-ALU opcode", static_cast<int>(op));
}

void unknown_cmp_op(isa::CmpOp cmp) {
  die("unknown compare op", static_cast<int>(cmp));
}

void unknown_cmp_dtype(isa::DType t) {
  die("unknown compare dtype", static_cast<int>(t));
}

}  // namespace higpu::sim::detail
