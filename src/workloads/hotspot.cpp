#include "workloads/hotspot.h"

#include <cmath>

#include "isa/builder.h"

namespace higpu::workloads {

namespace {

constexpr float kC1 = 0.12f;  // lateral conduction coefficient
constexpr float kC2 = 0.04f;  // power injection coefficient

/// out[y*dim+x] = t + c1*(tN+tS+tE+tW - 4t) + c2*power, borders clamped.
isa::ProgramPtr build_hotspot_kernel() {
  using namespace isa;
  KernelBuilder kb("hotspot_step");

  Reg in = kb.reg(), out = kb.reg(), pw = kb.reg(), dim = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(out, 1);
  kb.ldp(pw, 2);
  kb.ldp(dim, 3);

  Reg gx = kb.global_tid_x();
  Reg gy = kb.global_tid_y();

  Label done = kb.label();
  PredReg oob = kb.pred();
  kb.setp(oob, CmpOp::kGe, DType::kI32, gx, dim);
  kb.bra(done).guard_if(oob);
  kb.setp(oob, CmpOp::kGe, DType::kI32, gy, dim);
  kb.bra(done).guard_if(oob);

  // Clamped neighbour coordinates.
  Reg dm1 = kb.reg();
  kb.isub(dm1, dim, imm(1));
  Reg xm = kb.reg(), xp = kb.reg(), ym = kb.reg(), yp = kb.reg();
  Reg t0 = kb.reg();
  kb.isub(t0, gx, imm(1));
  kb.imax(xm, t0, imm(0));
  kb.iadd(t0, gx, imm(1));
  kb.imin(xp, t0, dm1);
  kb.isub(t0, gy, imm(1));
  kb.imax(ym, t0, imm(0));
  kb.iadd(t0, gy, imm(1));
  kb.imin(yp, t0, dm1);

  // Addresses (4-byte words).
  auto addr2d = [&](Reg y, Reg x, Reg base) {
    Reg lin = kb.reg(), a = kb.reg();
    kb.imad(lin, y, dim, x);
    kb.imad(a, lin, imm(4), base);
    return a;
  };
  Reg a_c = addr2d(gy, gx, in);
  Reg a_n = addr2d(ym, gx, in);
  Reg a_s = addr2d(yp, gx, in);
  Reg a_e = addr2d(gy, xp, in);
  Reg a_w = addr2d(gy, xm, in);
  Reg a_p = addr2d(gy, gx, pw);
  Reg a_o = addr2d(gy, gx, out);

  Reg t = kb.reg(), tn = kb.reg(), ts = kb.reg(), te = kb.reg(), tw = kb.reg(),
      p = kb.reg();
  kb.ldg(t, a_c);
  kb.ldg(tn, a_n);
  kb.ldg(ts, a_s);
  kb.ldg(te, a_e);
  kb.ldg(tw, a_w);
  kb.ldg(p, a_p);

  // sum = tn+ts+te+tw - 4t ; result = t + c1*sum + c2*p
  Reg sum = kb.reg(), res = kb.reg();
  kb.fadd(sum, tn, ts);
  kb.fadd(sum, sum, te);
  kb.fadd(sum, sum, tw);
  kb.ffma(sum, t, fimm(-4.0f), sum);
  kb.ffma(res, sum, fimm(kC1), t);
  kb.ffma(res, p, fimm(kC2), res);
  kb.stg(a_o, res);

  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Hotspot::setup(Scale scale, u64 seed) {
  dim_ = scale == Scale::kTest ? 32 : 192;
  steps_ = scale == Scale::kTest ? 2 : 10;
  Rng rng(seed);

  const u32 n = dim_ * dim_;
  temp_.resize(n);
  power_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    temp_[i] = rng.next_float(320.0f, 340.0f);
    power_[i] = rng.next_float(0.0f, 1.0f);
  }

  // CPU reference mirrors the kernel arithmetic exactly.
  std::vector<float> cur = temp_, next(n);
  for (u32 s = 0; s < steps_; ++s) {
    for (u32 y = 0; y < dim_; ++y) {
      for (u32 x = 0; x < dim_; ++x) {
        const u32 xm = x == 0 ? 0 : x - 1;
        const u32 xp = x == dim_ - 1 ? dim_ - 1 : x + 1;
        const u32 ym = y == 0 ? 0 : y - 1;
        const u32 yp = y == dim_ - 1 ? dim_ - 1 : y + 1;
        const float t = cur[y * dim_ + x];
        float sum = cur[ym * dim_ + x] + cur[yp * dim_ + x];
        sum += cur[y * dim_ + xp];
        sum += cur[y * dim_ + xm];
        sum = std::fma(t, -4.0f, sum);
        float res = std::fma(sum, kC1, t);
        res = std::fma(power_[y * dim_ + x], kC2, res);
        next[y * dim_ + x] = res;
      }
    }
    std::swap(cur, next);
  }
  reference_ = cur;
  result_.clear();
}

void Hotspot::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  runtime::Device& dev = session.device();
  dev.host_parse(input_bytes() * 6);  // temp/power text files (one float per line)

  const u32 n = dim_ * dim_;
  const u64 bytes = static_cast<u64>(n) * 4;
  core::ReplicaPtr buf_a = session.alloc(bytes);
  core::ReplicaPtr buf_b = session.alloc(bytes);
  core::ReplicaPtr pw = session.alloc(bytes);
  session.h2d(buf_a, temp_.data(), bytes);
  session.h2d(pw, power_.data(), bytes);

  isa::ProgramPtr prog = build_hotspot_kernel();
  const u32 tiles = ceil_div(dim_, 16);
  core::ReplicaPtr in = buf_a, out = buf_b;
  for (u32 s = 0; s < steps_; ++s) {
    session.launch(prog, sim::Dim3{tiles, tiles, 1}, sim::Dim3{16, 16, 1},
                   {in, out, pw, dim_});
    std::swap(in, out);
  }
  session.sync();

  result_.resize(n);
  session.d2h(result_.data(), in, bytes);  // `in` holds the final grid
  session.compare(in, bytes, result_.data());
}

bool Hotspot::verify() const { return approx_equal(result_, reference_); }

u64 Hotspot::input_bytes() const { return 2ull * dim_ * dim_ * 4; }
u64 Hotspot::output_bytes() const { return 1ull * dim_ * dim_ * 4; }

}  // namespace higpu::workloads
