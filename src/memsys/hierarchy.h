// Analytic timing model of the L1 / L2 / DRAM hierarchy.
//
// Cache tag state is updated at well-defined lifecycle points: hits refresh
// LRU at issue time, but a missing line enters the L1 only when its in-flight
// fill completes (tracked by an MSHR entry per outstanding miss). Completion
// cycles are computed through per-resource `next_free` bandwidth counters
// (L1 port, L2 banks, DRAM channel buses and per-bank row buffers). The
// model is deterministic and order-sensitive: contention between SMs emerges
// from shared L2/DRAM counters, which is the level of fidelity the
// scheduling-policy study needs.
//
// MSHR lifecycle contract:
//  * every access first reaps *all* fills that have completed by then (in
//    completion order), performing their L1 fills and victim writebacks —
//    stale entries never pin MSHR capacity;
//  * an access to a line with an in-flight fill merges into the entry; a
//    merging store retires into the arriving line (the entry's fill is
//    marked dirty) instead of touching the tag array early;
//  * when every MSHR entry is in flight, a new miss stalls until the
//    earliest entry frees (counted in l1_mshr_stalls/stall_cycles) and the
//    SM's LSU is blocked for the duration (MemResponse::issue_free).
//
// L1 write policy (MemParams): write-back keeps dirty lines and writes them
// to the L2 on eviction; write-through forwards every store to the L2 (no
// dirty L1 lines). Write-allocate fetches a written line through the MSHR
// path; no-allocate leaves the L1 untouched on a write miss. The L2 is
// always write-back/write-allocate.
//
// Event-driven contract: every access returns the exact cycle at which it
// completes, decided fully at issue time and never revised afterwards. The
// SM records that cycle on the destination register's scoreboard entry, and
// the scoreboard release becomes a wake event in the GPU's event heap —
// memory responses are *pushed* into the simulation core's timeline; nothing
// ever polls the hierarchy for completion. MSHR-full backpressure reaches
// the core the same way: issue_free feeds the SM's LSU next-free counter,
// so a structural-stall wake event fires when the MSHR frees.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memsys/cache.h"
#include "memsys/params.h"
#include "obs/trace.h"

namespace higpu::memsys {

/// Timing outcome of one line access, fixed at issue time.
struct MemResponse {
  /// Cycle at which the data is available in the SM (loads) or globally
  /// visible (stores) — the scoreboard release cycle.
  Cycle done = 0;
  /// Earliest cycle this SM's LSU may issue its next memory transaction.
  /// Normally issue+1; later when an MSHR-full stall held the L1 port.
  Cycle issue_free = 0;
};

class MemHierarchy {
 public:
  MemHierarchy(u32 num_sms, const MemParams& params);

  /// Access one cache line from SM `sm` at cycle `now`.
  MemResponse access_line(u32 sm, u64 line_addr, bool is_write, Cycle now);

  /// Atomic read-modify-write on one line: bypasses L1, resolves at L2.
  MemResponse access_atomic(u32 sm, u64 line_addr, Cycle now);

  /// Invalidate all cache state and bandwidth counters (fresh simulation).
  void reset();

  /// Checkpoint the full hierarchy state: per-SM L1 tag arrays (one snapshot
  /// section each, set-granular), the L2, DRAM bank/row state (bank-granular
  /// section), and a bookkeeping section (port/bank/channel bandwidth
  /// counters, MSHRs, statistics). Restore requires the same geometry.
  void save(ckpt::Writer& w) const;
  void restore(ckpt::Reader& r);

  /// Attach (or detach, with nullptr) the observability tracer: one device
  /// track for DRAM bank busy spans plus one MSHR track per SM. Pure
  /// observer — no timing or tag state is touched.
  void set_obs_tracer(obs::Tracer* t);

  const MemParams& params() const { return params_; }
  /// Statistics snapshot. Counters are kept as plain integers (a map lookup
  /// per access would dominate memory-bound simulations) and exported here
  /// under their original names.
  StatSet stats() const;

 private:
  /// L2 + DRAM path; returns data-ready cycle at the L2 boundary.
  Cycle access_l2(u64 line_addr, bool is_write, Cycle now, bool is_atomic);
  /// Banked DRAM with row buffers; returns data-ready cycle.
  Cycle dram_access(u64 line_addr, Cycle when, bool is_write);
  /// Dirty L1 victim -> L2 (bank bandwidth; may cascade an L2->DRAM
  /// writeback). Off the critical path of the access that evicted it.
  void writeback_to_l2(u64 line_addr, Cycle when);

  // Per-SM MSHR: one entry per outstanding L1 fill. Flat storage: at most
  // l1_mshr_entries (~32) entries, so a linear scan beats hashing on the
  // per-access hot path.
  struct MshrEntry {
    u64 line;
    Cycle ready;      // fill-completion cycle, fixed at allocation
    bool fill_dirty;  // a store merged in flight: fill installs the line dirty
  };
  /// Index of the entry completing first, ties broken by line address —
  /// the one deterministic ordering shared by reaping and MSHR-full
  /// stalls. `mshr` must be non-empty.
  static size_t earliest_entry(const std::vector<MshrEntry>& mshr);
  /// Drop entry `idx` (swap-pop; order is deterministic state, not FIFO).
  void remove_entry(u32 sm, size_t idx);
  /// Perform entry `idx`'s L1 fill (victim writeback included) and drop it.
  void fill_and_remove(u32 sm, size_t idx);
  /// Fill + drop every entry with ready <= now, in completion order.
  void reap_expired(u32 sm, Cycle now);

  MemParams params_;
  u32 lines_per_row_;                      // dram_row_bytes / line_bytes
  std::vector<SetAssocCache> l1_;          // one per SM
  SetAssocCache l2_;
  std::vector<Cycle> l1_port_free_;        // per SM
  std::vector<Cycle> l2_bank_free_;        // per bank
  std::vector<Cycle> dram_channel_free_;   // per channel (data bus)
  static constexpr u64 kNoOpenRow = ~0ull;
  struct DramBank {
    Cycle busy_until = 0;
    u64 open_row = kNoOpenRow;
  };
  std::vector<DramBank> dram_banks_;       // channels * banks_per_channel
  std::vector<std::vector<MshrEntry>> mshr_;

  obs::Tracer* obs_ = nullptr;
  u32 obs_dram_track_ = 0;
  std::vector<u32> obs_mshr_tracks_;       // per SM

  u64 l1_hits_ = 0, l1_misses_ = 0;
  u64 l1_write_hits_ = 0, l1_write_misses_ = 0;
  u64 l1_mshr_merges_ = 0, l1_writebacks_ = 0;
  u64 l1_mshr_stalls_ = 0, l1_mshr_stall_cycles_ = 0;
  u64 l1_write_through_ = 0;  // stores forwarded to the L2 (WT or no-allocate)
  u64 l2_hits_ = 0, l2_misses_ = 0;
  u64 dram_reads_ = 0, dram_writebacks_ = 0;
  u64 dram_row_hits_ = 0, dram_row_misses_ = 0;
  u64 atomics_ = 0;
};

}  // namespace higpu::memsys
