// The coordinator side of the distributed campaign service.
//
// run_distributed() executes a ScenarioSet across a fleet of forked
// campaign_worker processes:
//
//   * the ScenarioSet decomposes into the same WorkUnits as the in-process
//     CampaignRunner (exp::plan_units / same_but_fault grouping);
//   * each multi-fault group's clean base scenario runs locally on a
//     coordinator thread pool, capturing snapshots at every member's
//     injection cycle;
//   * every remaining scenario becomes one wire task — fault forks carry
//     their base snapshot and the clean final state (divergence reference)
//     inside the kWork frame — dealt round-robin into per-worker shards;
//   * a poll() loop dispatches one task per worker at a time, accepts
//     kResult frames, and lets an idle worker steal from the largest
//     remaining shard, so a slow shard never serializes the campaign;
//   * workers heartbeat; EOF, a wire error or a heartbeat gap longer than
//     `heartbeat_timeout_ms` declares a worker dead, its in-flight task is
//     re-enqueued, and the campaign continues (inline on the coordinator if
//     the whole fleet dies);
//   * every accepted result is appended to the JSONL journal and flushed
//     before the next dispatch, so a killed coordinator can resume.
//
// Determinism contract (pinned by tests/dist_test.cpp): the final results
// are bit-identical — per ScenarioResult::deterministic_fields_equal — to
// CampaignRunner with jobs=1, at any worker count, under any steal
// schedule, and across worker SIGKILL plus journal resume. Scheduling only
// decides *where* a scenario runs; the simulator decides what it computes.
#pragma once

#include <functional>
#include <string>

#include "exp/campaign.h"

namespace higpu::dist {

struct DistConfig {
  /// Worker processes to fork. 0 = run everything inline (jobs=1 on the
  /// coordinator; still journals/resumes — useful for goldens).
  u32 workers = 2;
  /// Worker binary. Empty = "<dir of this executable>/campaign_worker".
  std::string worker_exe;
  /// Journal path. Empty = no journal (in-memory only, no resume).
  std::string journal_path;
  /// Resume: scan `journal_path`, keep its completed results and execute
  /// only the missing scenario indices. The journal's campaign fingerprint
  /// must match `set` (JournalError otherwise).
  bool resume = false;
  /// Share clean base runs across same_but_fault groups (matches
  /// CampaignRunner::Config::snapshot_fast_forward).
  bool snapshot_fast_forward = true;

  int heartbeat_interval_ms = 200;
  int heartbeat_timeout_ms = 10'000;

  /// Fault-injection for the service itself (CI kill-and-resume job):
  /// SIGKILL one live worker after this many results have been accepted
  /// this run (0 = never). Exercises the death/redispatch path.
  u32 chaos_kill_after = 0;
  /// Simulate a coordinator crash: stop accepting after this many results
  /// this run (0 = never), SIGKILL the fleet and return with
  /// `stopped_early` set. The journal holds everything accepted so far.
  u32 stop_after_results = 0;

  /// Called on the coordinator for every accepted result (any order).
  std::function<void(const exp::ScenarioResult&)> on_result;
};

struct DistReport {
  exp::CampaignResult campaign;
  /// Scenarios loaded from the journal instead of executed.
  u64 resumed = 0;
  /// Scenarios actually executed this run (local bases + worker results).
  u64 executed = 0;
  u64 workers_died = 0;
  u64 units_shipped = 0;
  u64 snapshot_bytes_shipped = 0;
  bool stopped_early = false;
};

/// Execute `set` per `config`. Throws JournalError on a resume mismatch and
/// std::invalid_argument on an empty set; worker failures are handled, not
/// thrown.
DistReport run_distributed(const exp::ScenarioSet& set,
                           const DistConfig& config);

/// "<directory of /proc/self/exe>/campaign_worker" — the default fleet
/// binary, resolved at call time.
std::string default_worker_exe();

}  // namespace higpu::dist
