// Block-compiled execution engine tests.
//
// The contract under test: ExecMode::kBlock is a pure dispatch-cost
// optimization — bit-identical to the per-instruction interpreter in
// results, cycle counts, stall classification, statistics, trace records,
// fault corruption and snapshots. Layers: (1) golden-bit lane kernels vs
// sim::eval_alu across IEEE-754 / integer edge inputs, (2) trace-lowering
// and cache properties, (3) fuzzed-program interp-vs-block equivalence
// instruction-for-instruction, (4) the 19-workload suite across engines and
// redundancy, (5) fault-injection equivalence, (6) checkpoint/restore
// mid-run including cross-mode restore, (7) the eval_alu hard-error path.
#include <gtest/gtest.h>

#include <array>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/exec.h"
#include "exp/campaign.h"
#include "fault/injector.h"
#include "isa/builder.h"
#include "memsys/global_store.h"
#include "sched/policies.h"
#include "sim/blockexec.h"
#include "sim/executor.h"
#include "sim/gpu.h"
#include "tests/test_kernels.h"
#include "workloads/workload.h"

namespace higpu {
namespace {

using sim::blockexec::SopKind;
using sim::blockexec::SuperOp;

// ---- Golden-bit lane kernels -----------------------------------------------

/// Every opcode eval_alu accepts (= every opcode the block engine may route
/// through a lane kernel).
const isa::Op kAluOps[] = {
    isa::Op::kMov,   isa::Op::kIadd, isa::Op::kIsub, isa::Op::kImul,
    isa::Op::kImad,  isa::Op::kImin, isa::Op::kImax, isa::Op::kAnd,
    isa::Op::kOr,    isa::Op::kXor,  isa::Op::kNot,  isa::Op::kShl,
    isa::Op::kShr,   isa::Op::kSra,  isa::Op::kFadd, isa::Op::kFsub,
    isa::Op::kFmul,  isa::Op::kFfma, isa::Op::kFmin, isa::Op::kFmax,
    isa::Op::kFabs,  isa::Op::kFneg, isa::Op::kFdiv, isa::Op::kFsqrt,
    isa::Op::kFrcp,  isa::Op::kFexp, isa::Op::kFlog, isa::Op::kFsin,
    isa::Op::kFcos,  isa::Op::kI2f,  isa::Op::kF2i};

/// Adversarial register bit patterns: float specials (NaNs with payloads,
/// infinities, denormals, signed zero, huge/tiny magnitudes), integer
/// boundaries (INT_MIN/INT_MAX, all-ones) and shift counts >= 32.
const u32 kEdge[] = {
    0u,          1u,          2u,          31u,         32u,
    33u,         64u,         100u,        0x7FFFFFFFu, 0x80000000u,
    0xFFFFFFFFu, 0xFFFFFFFEu, f2bits(0.0f),  f2bits(-0.0f),
    f2bits(1.0f),  f2bits(-1.0f), f2bits(0.5f),  f2bits(-2.5f),
    f2bits(1e38f), f2bits(-1e38f), f2bits(1e-38f),
    0x00000001u,  // smallest positive denormal
    0x007FFFFFu,  // largest positive denormal
    0x807FFFFFu,  // largest negative denormal
    0x00800000u,  // smallest positive normal
    0x7F800000u,  // +Inf
    0xFF800000u,  // -Inf
    0x7FC00000u,  // quiet NaN
    0x7F800001u,  // signalling NaN bit pattern
    0xFFC00001u,  // negative NaN with payload
};

class GoldenBit : public ::testing::TestWithParam<isa::Op> {};

TEST_P(GoldenBit, VectorKernelMatchesEvalAluOnEdgeInputs) {
  const isa::Op op = GetParam();
  const sim::blockexec::VKind vk = sim::blockexec::vkind_for(op);
  constexpr u32 n = std::size(kEdge);

  // All (a, b) pairs, with c cycling through the edge set too.
  std::vector<std::array<u32, 3>> triples;
  for (u32 i = 0; i < n; ++i)
    for (u32 j = 0; j < n; ++j)
      triples.push_back({kEdge[i], kEdge[j], kEdge[(i * 7 + j * 3 + 5) % n]});
  while (triples.size() % 32 != 0) triples.push_back({0, 0, 0});

  for (size_t base = 0; base < triples.size(); base += 32) {
    alignas(64) u32 a[32], b[32], c[32], d[32];
    for (u32 lane = 0; lane < 32; ++lane) {
      a[lane] = triples[base + lane][0];
      b[lane] = triples[base + lane][1];
      c[lane] = triples[base + lane][2];
    }
    sim::blockexec::run_vkernel(vk, op, d, a, b, c, 0xFFFFFFFFu);
    for (u32 lane = 0; lane < 32; ++lane)
      ASSERT_EQ(d[lane], sim::eval_alu(op, a[lane], b[lane], c[lane]))
          << isa::op_name(op) << " lane " << lane << " a=0x" << std::hex
          << a[lane] << " b=0x" << b[lane] << " c=0x" << c[lane];
  }
}

INSTANTIATE_TEST_SUITE_P(AllAluOps, GoldenBit, ::testing::ValuesIn(kAluOps),
                         [](const auto& info) {
                           return std::string(isa::op_name(info.param));
                         });

TEST(BlockExecKernels, MaskedLanesAreNeverWritten) {
  // Inactive lanes hold architectural state (snapshots hash them); a lane
  // kernel must not touch them even with garbage inputs in those lanes.
  for (u32 mask : {0u, 1u, 0xAAAA5555u, 0x7FFFFFFFu, 0x80000000u}) {
    u32 a[32], b[32], c[32], d[32];
    for (u32 i = 0; i < 32; ++i) {
      a[i] = kEdge[i % std::size(kEdge)];
      b[i] = kEdge[(i + 9) % std::size(kEdge)];
      c[i] = kEdge[(i + 17) % std::size(kEdge)];
      d[i] = 0xDEAD0000u + i;
    }
    sim::blockexec::run_vkernel(sim::blockexec::VKind::kFfma, isa::Op::kFfma,
                                d, a, b, c, mask);
    for (u32 i = 0; i < 32; ++i) {
      if ((mask >> i) & 1u)
        EXPECT_EQ(d[i], sim::eval_alu(isa::Op::kFfma, a[i], b[i], c[i]));
      else
        EXPECT_EQ(d[i], 0xDEAD0000u + i) << "inactive lane " << i << " written";
    }
  }
}

TEST(BlockExecKernels, InPlaceDestinationAliasingIsSafe) {
  // r1 = r1 op r2 hands the same row as d and a; elementwise kernels must
  // tolerate that.
  u32 a[32], b[32], ref[32];
  for (u32 i = 0; i < 32; ++i) {
    a[i] = i * 2654435761u;
    b[i] = kEdge[i % std::size(kEdge)];
    ref[i] = sim::eval_alu(isa::Op::kIadd, a[i], b[i], 0);
  }
  sim::blockexec::run_vkernel(sim::blockexec::VKind::kIadd, isa::Op::kIadd, a,
                              a, b, b, 0xFFFFFFFFu);
  for (u32 i = 0; i < 32; ++i) EXPECT_EQ(a[i], ref[i]);
}

// ---- Trace lowering and the process-wide cache -----------------------------

isa::ProgramPtr make_mixed_kernel() {
  using namespace isa;
  KernelBuilder kb("mixed");
  Reg out = kb.reg(), n = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(n, 1);
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, n, done);
  Reg acc = kb.reg(), addr = kb.reg();
  kb.movi(acc, 3);
  kb.imad(acc, acc, imm(7), gid);
  PredReg p = kb.pred();
  kb.setp(p, CmpOp::kLt, DType::kI32, acc, imm(100));
  kb.selp(acc, gid, acc, p);
  kb.imad(addr, gid, imm(4), out);
  kb.stg(addr, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

TEST(BlockExecTrace, LoweringClassifiesAndCountsCorrectly) {
  const isa::ProgramPtr prog = make_mixed_kernel();
  const sim::blockexec::TracePtr trace = sim::blockexec::trace_for(prog);
  ASSERT_EQ(trace->size(), prog->size());

  u32 superops = 0;
  for (u32 pc = 0; pc < trace->size(); ++pc) {
    const SuperOp& s = trace->at(pc);
    const isa::Instruction& ins = prog->at(pc);
    const isa::Op op = ins.op;
    const bool expect_fallback =
        op == isa::Op::kBra || op == isa::Op::kExit || op == isa::Op::kBar ||
        op == isa::Op::kLdg || op == isa::Op::kStg || op == isa::Op::kAtomAdd ||
        op == isa::Op::kLds || op == isa::Op::kSts || op == isa::Op::kNop;
    EXPECT_EQ(s.kind == SopKind::kFallback, expect_fallback)
        << "pc " << pc << " op " << isa::op_name(op);
    if (s.kind == SopKind::kFallback) continue;
    superops += 1;

    // Flags must agree with the isa:: classification predicates, and the
    // hazard plan must replay the interpreter's exact check order.
    EXPECT_EQ(s.is_sfu, isa::unit_class(op) == isa::UnitClass::kSfu);
    EXPECT_EQ(s.is_datapath, isa::is_datapath(op));
    EXPECT_EQ(s.writes_gpr, isa::writes_gpr(op));
    EXPECT_EQ(s.writes_pred, isa::writes_pred(op));
    std::vector<std::pair<u16, bool>> want;
    if (ins.guard != isa::kNoPred)
      want.emplace_back(static_cast<u16>(ins.guard), true);
    if (ins.pred_src != isa::kNoPred)
      want.emplace_back(static_cast<u16>(ins.pred_src), true);
    for (const isa::Operand& o : ins.src)
      if (o.is_reg()) want.emplace_back(o.reg, false);
    if (isa::writes_gpr(op)) want.emplace_back(ins.dst, false);
    if (isa::writes_pred(op)) want.emplace_back(ins.dst, true);
    ASSERT_EQ(s.n_hazards, want.size()) << "pc " << pc;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(s.hazards[i].reg, want[i].first) << "pc " << pc << " haz " << i;
      EXPECT_EQ(s.hazards[i].is_pred, want[i].second) << "pc " << pc;
    }
  }
  EXPECT_EQ(trace->num_superops(), superops);
  EXPECT_GT(trace->num_blocks(), 1u);
  EXPECT_GE(trace->num_superops(), trace->num_fused_runs());
  EXPECT_GT(trace->num_fused_runs(), 0u);
  EXPECT_EQ(trace->static_coverage_pct(), superops * 100 / trace->size());
}

TEST(BlockExecTrace, CacheSharesOneTracePerProgramAndExpires) {
  const isa::ProgramPtr prog = make_mixed_kernel();
  const u64 live0 = sim::blockexec::trace_cache_live();
  sim::blockexec::TracePtr a = sim::blockexec::trace_for(prog);
  sim::blockexec::TracePtr b = sim::blockexec::trace_for(prog);
  EXPECT_EQ(a.get(), b.get()) << "same program must share one compiled trace";
  EXPECT_EQ(sim::blockexec::trace_cache_live(), live0 + 1);

  // A different program compiles separately.
  const isa::ProgramPtr other = make_mixed_kernel();
  sim::blockexec::TracePtr c = sim::blockexec::trace_for(other);
  EXPECT_NE(c.get(), a.get());
  EXPECT_EQ(sim::blockexec::trace_cache_live(), live0 + 2);

  // Dropping every owner expires the entry (the cache holds weak refs).
  c.reset();
  EXPECT_EQ(sim::blockexec::trace_cache_live(), live0 + 1);
}

// ---- eval_alu / eval_cmp hard-error path (no more silent zeros) ------------

TEST(ExecutorHardErrorDeathTest, NonAluOpcodeAborts) {
  EXPECT_DEATH(sim::eval_alu(isa::Op::kLdg, 1, 2, 3), "reached the ALU path");
  EXPECT_DEATH(sim::eval_alu(isa::Op::kBra, 0, 0, 0), "reached the ALU path");
}

TEST(ExecutorHardErrorDeathTest, CorruptedCmpEncodingAborts) {
  EXPECT_DEATH(
      sim::eval_cmp(static_cast<isa::CmpOp>(0xEE), isa::DType::kI32, 0, 0),
      "reached the ALU path");
  EXPECT_DEATH(
      sim::eval_cmp(isa::CmpOp::kEq, static_cast<isa::DType>(0xEE), 0, 0),
      "reached the ALU path");
}

// ---- Interp vs block: shared machinery -------------------------------------

/// Stats that exist only under the block engine (compile metadata and
/// dispatch counters). Everything else must match interp bit-for-bit.
bool is_block_only_stat(const std::string& name) {
  static const std::set<std::string> kNames = {
      "block_exec_hits",   "block_fallback_exits", "blocks_compiled",
      "superops_compiled", "block_fused_runs",     "block_static_insns"};
  return kNames.count(name) != 0;
}

StatSet filter_block_stats(const StatSet& s) {
  StatSet out;
  for (const auto& [name, value] : s.entries())
    if (!is_block_only_stat(name)) out.set(name, value);
  return out;
}

void expect_same_stats_modulo_block(const StatSet& interp, const StatSet& block,
                                    const std::string& what) {
  const auto ie = filter_block_stats(interp).entries();
  const auto be = filter_block_stats(block).entries();
  ASSERT_EQ(ie.size(), be.size()) << what << ": stat-set shape differs";
  for (size_t i = 0; i < ie.size(); ++i) {
    EXPECT_EQ(ie[i].first, be[i].first) << what << ": stat name differs";
    EXPECT_EQ(ie[i].second, be[i].second)
        << what << ": counter '" << ie[i].first << "' differs";
  }
}

struct TraceLog : sim::ITraceSink {
  std::vector<std::array<u64, 6>> recs;
  void record(u32 launch_id, u32 block_linear, u32 warp_in_block, u64 instr_seq,
              u32 sm, Cycle cycle) override {
    recs.push_back(
        {launch_id, block_linear, warp_in_block, instr_seq, sm, cycle});
  }
};

// ---- Fuzzed-program property test ------------------------------------------
// Random straight-line ALU/SETP/SELP/S2R programs with guard predicates of
// both polarities, interleaved with per-thread global-memory round-trips
// (block -> fallback -> block transitions). Interp and block runs must agree
// on every traced instruction instance, the final memory image, the cycle
// count and the statistics.

isa::Instruction& emit_int_op(isa::KernelBuilder& kb, u32 pick, isa::Reg d,
                              isa::Operand a, isa::Operand b, isa::Reg c) {
  switch (pick % 12) {
    case 0: return kb.iadd(d, a, b);
    case 1: return kb.isub(d, a, b);
    case 2: return kb.imul(d, a, b);
    case 3: return kb.imad(d, a, b, c);
    case 4: return kb.imin(d, a, b);
    case 5: return kb.imax(d, a, b);
    case 6: return kb.and_(d, a, b);
    case 7: return kb.or_(d, a, b);
    case 8: return kb.xor_(d, a, b);
    case 9: return kb.shl(d, a, b);
    case 10: return kb.shr(d, a, b);
    default: return kb.sra(d, a, b);
  }
}

isa::Instruction& emit_float_op(isa::KernelBuilder& kb, u32 pick, isa::Reg d,
                                isa::Operand a, isa::Operand b, isa::Reg c) {
  switch (pick % 6) {
    case 0: return kb.fadd(d, a, b);
    case 1: return kb.fsub(d, a, b);
    case 2: return kb.fmul(d, a, b);
    case 3: return kb.ffma(d, a, b, c);
    case 4: return kb.fmin(d, a, b);
    default: return kb.fmax(d, a, b);
  }
}

isa::ProgramPtr build_fuzz_kernel(Rng& rng, u32 data_regs, u32 preds) {
  using namespace isa;
  KernelBuilder kb("bfuzz");
  Reg out = kb.reg(), scratch = kb.reg();
  kb.ldp(out, 0);
  kb.ldp(scratch, 1);
  Reg tid = kb.global_tid_x();

  std::vector<Reg> r(data_regs);
  std::vector<PredReg> p(preds);
  for (u32 i = 0; i < data_regs; ++i) r[i] = kb.reg();
  for (u32 i = 0; i < preds; ++i) p[i] = kb.pred();
  for (u32 i = 0; i < data_regs; ++i) {
    kb.iadd(r[i], tid, imm(static_cast<i32>(i * 11 + 1)));
    kb.imul(r[i], r[i], imm(static_cast<i32>(2 * i + 3)));
    if (i % 2 == 1) kb.i2f(r[i], r[i]);
  }
  for (u32 i = 0; i < preds; ++i) {
    Reg t = kb.reg();
    kb.and_(t, tid, imm(static_cast<i32>(1u << i)));
    kb.setp(p[i], CmpOp::kNe, DType::kI32, t, imm(0));
  }
  Reg saddr = kb.reg();
  kb.imad(saddr, tid, imm(4), scratch);

  for (u32 i = 0; i < 48; ++i) {
    const Reg d = r[rng.next_below(data_regs)];
    const Reg a = r[rng.next_below(data_regs)];
    const Reg c = r[rng.next_below(data_regs)];
    const bool b_imm = rng.next_bool(0.3f);
    const Reg breg = r[rng.next_below(data_regs)];
    const u32 kind = static_cast<u32>(rng.next_below(12));
    const u32 pick = static_cast<u32>(rng.next_below(12));
    Instruction* ins;
    if (kind < 5) {
      Operand b = b_imm ? Operand(immu(static_cast<u32>(rng.next_below(64))))
                        : Operand(breg);
      ins = &emit_int_op(kb, pick, d, a, b, c);
    } else if (kind < 8) {
      Operand b = b_imm ? Operand(fimm(rng.next_float(-2.0f, 2.0f)))
                        : Operand(breg);
      ins = &emit_float_op(kb, pick, d, a, b, c);
    } else if (kind < 9) {
      ins = &kb.setp(p[rng.next_below(preds)],
                     static_cast<CmpOp>(rng.next_below(6)),
                     rng.next_bool(0.5f) ? DType::kF32 : DType::kI32, a,
                     Operand(breg));
    } else if (kind < 10) {
      ins = &kb.selp(d, a, Operand(breg), p[rng.next_below(preds)]);
    } else if (kind < 11) {
      // Global round-trip: forces a block -> fallback -> block transition.
      kb.stg(saddr, a);
      ins = &kb.ldg(d, saddr);
    } else {
      ins = &kb.s2r(d, rng.next_bool(0.5f) ? SReg::kLaneId : SReg::kTidX);
    }
    if (rng.next_bool(0.3f)) {
      const PredReg g = p[rng.next_below(preds)];
      if (rng.next_bool(0.5f))
        ins->guard_ifnot(g);
      else
        ins->guard_if(g);
    }
  }

  Reg base = kb.reg(), addr = kb.reg();
  kb.imul(base, tid, imm(static_cast<i32>(data_regs * 4)));
  kb.iadd(base, base, out);
  for (u32 i = 0; i < data_regs; ++i) {
    kb.iadd(addr, base, imm(static_cast<i32>(i * 4)));
    kb.stg(addr, r[i]);
  }
  kb.exit();
  return kb.build();
}

struct FuzzRun {
  std::vector<u32> memory;
  Cycle final_cycle = 0;
  StatSet stats;
  std::vector<std::array<u64, 6>> trace;
};

FuzzRun run_fuzz(const isa::ProgramPtr& prog, sim::ExecMode mode, u32 threads,
                 u32 data_regs) {
  memsys::GlobalStore store;
  sim::GpuParams params;
  params.exec_mode = mode;
  sim::Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());
  TraceLog log;
  gpu.set_trace_sink(&log);
  const memsys::DevPtr out = store.alloc(threads * data_regs * 4);
  const memsys::DevPtr scratch = store.alloc(threads * 4);
  gpu.launch(testing::make_launch(prog, threads, 32, {out, scratch}));

  FuzzRun r;
  r.final_cycle = gpu.run_until_idle(20'000'000);
  r.stats = gpu.collect_stats();
  r.trace = std::move(log.recs);
  for (u32 w = 0; w < threads * data_regs; ++w)
    r.memory.push_back(store.read32(out + w * 4));
  return r;
}

class BlockExecFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(BlockExecFuzz, BlockMatchesInterpInstructionForInstruction) {
  constexpr u32 kDataRegs = 6, kPreds = 4, kThreads = 96;
  Rng rng(GetParam() * 0x2545F4914F6CDD1Dull + 11);
  const isa::ProgramPtr prog = build_fuzz_kernel(rng, kDataRegs, kPreds);

  const FuzzRun interp =
      run_fuzz(prog, sim::ExecMode::kInterp, kThreads, kDataRegs);
  const FuzzRun block =
      run_fuzz(prog, sim::ExecMode::kBlock, kThreads, kDataRegs);

  EXPECT_EQ(interp.memory, block.memory) << "seed " << GetParam();
  EXPECT_EQ(interp.final_cycle, block.final_cycle) << "seed " << GetParam();
  expect_same_stats_modulo_block(interp.stats, block.stats,
                                 "fuzz seed " + std::to_string(GetParam()));
  // Instruction-for-instruction: every traced datapath instance — identity
  // (launch, block, warp, seq) — issues on the same SM at the same cycle.
  ASSERT_EQ(interp.trace.size(), block.trace.size());
  for (size_t i = 0; i < interp.trace.size(); ++i)
    ASSERT_EQ(interp.trace[i], block.trace[i]) << "trace record " << i;
  // The block run must actually use the block path, and its two dispatch
  // counters must partition the issued-instruction count.
  EXPECT_GT(block.stats.get("block_exec_hits"), 0u);
  EXPECT_EQ(block.stats.get("block_exec_hits") +
                block.stats.get("block_fallback_exits"),
            block.stats.get("instructions"));
  EXPECT_FALSE(interp.stats.has("block_exec_hits"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockExecFuzz, ::testing::Range<u64>(1, 13));

}  // namespace
}  // namespace higpu

// ---- Workload-level equivalence: {dense,event} x {interp,block} x N --------

namespace higpu::workloads {
namespace {

struct ModeArtifacts {
  Cycle kernel_cycles = 0;
  NanoSec elapsed_ns = 0;
  bool verified = false;
  bool matched = false;
  StatSet stats;
  std::vector<sim::BlockRecord> records;
};

ModeArtifacts run_workload_mode(const std::string& name, sim::ExecMode mode,
                                sim::SimEngine engine,
                                const core::RedundancySpec& redundancy) {
  exp::ScenarioSpec spec;
  spec.workload = name;
  spec.scale = Scale::kTest;
  spec.seed = 2019;
  spec.gpu.engine = engine;
  spec.gpu.exec_mode = mode;
  spec.policy = sched::Policy::kSrrs;
  spec.redundancy = redundancy;

  ModeArtifacts a;
  const exp::ScenarioResult r = exp::run_scenario(
      spec, 0, [&](runtime::Device& dev, Workload&, core::ExecSession&) {
        a.records = dev.gpu().block_records();
      });
  EXPECT_TRUE(r.ok) << r.error;
  a.kernel_cycles = r.kernel_cycles;
  a.elapsed_ns = r.elapsed_ns;
  a.verified = r.verified;
  a.matched = r.dcls_match;
  a.stats = r.stats;
  return a;
}

void expect_block_equals_interp(const std::string& workload,
                                sim::SimEngine engine,
                                const core::RedundancySpec& redundancy) {
  const ModeArtifacts interp =
      run_workload_mode(workload, sim::ExecMode::kInterp, engine, redundancy);
  const ModeArtifacts block =
      run_workload_mode(workload, sim::ExecMode::kBlock, engine, redundancy);
  EXPECT_TRUE(interp.verified);
  EXPECT_TRUE(block.verified);
  EXPECT_TRUE(interp.matched);
  EXPECT_TRUE(block.matched);
  EXPECT_EQ(interp.kernel_cycles, block.kernel_cycles)
      << workload << ": cycle counts differ";
  EXPECT_EQ(interp.elapsed_ns, block.elapsed_ns)
      << workload << ": wall-clock model differs";
  higpu::expect_same_stats_modulo_block(interp.stats, block.stats, workload);
  ASSERT_EQ(interp.records.size(), block.records.size());
  for (size_t i = 0; i < interp.records.size(); ++i) {
    EXPECT_EQ(interp.records[i].sm, block.records[i].sm);
    EXPECT_EQ(interp.records[i].dispatch_cycle,
              block.records[i].dispatch_cycle);
    EXPECT_EQ(interp.records[i].end_cycle, block.records[i].end_cycle);
  }
  // Dispatch accounting invariants of the block engine.
  EXPECT_EQ(block.stats.get("block_exec_hits") +
                block.stats.get("block_fallback_exits"),
            block.stats.get("instructions"))
      << workload;
  EXPECT_GT(block.stats.get("block_exec_hits"), 0u) << workload;
  EXPECT_GT(block.stats.get("blocks_compiled"), 0u) << workload;
}

class WorkloadBlockEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(WorkloadBlockEquivalence, EventEngineDclsBitIdentical) {
  expect_block_equals_interp(GetParam(), sim::SimEngine::kEvent,
                             core::RedundancySpec::dcls());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadBlockEquivalence,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '+' || c == '-') c = '_';
                           return name;
                         });

TEST(WorkloadBlockEquivalenceDense, DenseEngineBitIdentical) {
  for (const std::string& wl : {"hotspot", "bfs", "lud"})
    expect_block_equals_interp(wl, sim::SimEngine::kDense,
                               core::RedundancySpec::dcls());
}

TEST(WorkloadBlockEquivalenceRedundancy, BaselineAndTmrBitIdentical) {
  for (const std::string& wl : {"hotspot", "bfs", "lud"}) {
    expect_block_equals_interp(wl, sim::SimEngine::kEvent,
                               core::RedundancySpec::baseline());
    expect_block_equals_interp(wl, sim::SimEngine::kEvent,
                               core::RedundancySpec::tmr());
  }
}

}  // namespace
}  // namespace higpu::workloads

namespace higpu::sim {
namespace {

// ---- Fault-injection equivalence -------------------------------------------
// The corruption hook consumes injector state per corrupted result; the
// block engine must produce the identical corruption sequence (it drops to
// the scalar lane loop while a window is armed).

struct FaultRun {
  Cycle final_cycle = 0;
  u64 corruptions = 0;
  u64 diverted = 0;
  StatSet stats;
  std::vector<u32> memory;
};

FaultRun run_faulted_mode(ExecMode mode, int scenario) {
  GpuParams params;
  params.exec_mode = mode;
  memsys::GlobalStore store;
  Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::SrrsKernelScheduler>());
  fault::FaultInjector inj;
  switch (scenario) {
    case 0: inj.arm_droop(4000, 300, 5); break;
    case 1: inj.arm_transient_sm(2, 3500, 2000, 12); break;
    case 2: inj.arm_permanent_sm(4, 5000, 0); break;
    case 3: inj.arm_scheduler_fault(3100, 2); break;
    default: break;
  }
  gpu.set_fault_hook(&inj);

  const u32 threads = 1024;
  const memsys::DevPtr out = store.alloc(threads * 4);
  gpu.launch(testing::make_launch(testing::make_spin_kernel(60), threads, 128,
                                  {out, threads}));

  FaultRun r;
  r.final_cycle = gpu.run_until_idle(100'000'000);
  r.corruptions = inj.corruptions();
  r.diverted = inj.diverted_blocks();
  r.stats = gpu.collect_stats();
  for (u32 w = 0; w < threads; ++w)
    r.memory.push_back(store.read32(out + w * 4));
  return r;
}

TEST(BlockExecFaults, CorruptionSequenceIdenticalToInterp) {
  for (int scenario = 0; scenario < 4; ++scenario) {
    SCOPED_TRACE("fault scenario " + std::to_string(scenario));
    const FaultRun interp = run_faulted_mode(ExecMode::kInterp, scenario);
    const FaultRun block = run_faulted_mode(ExecMode::kBlock, scenario);
    EXPECT_EQ(interp.final_cycle, block.final_cycle);
    EXPECT_EQ(interp.corruptions, block.corruptions);
    EXPECT_EQ(interp.diverted, block.diverted);
    EXPECT_EQ(interp.memory, block.memory);
    higpu::expect_same_stats_modulo_block(interp.stats, block.stats,
                                          "faulted run");
  }
}

// ---- Checkpoint/restore mid-run --------------------------------------------

TEST(BlockExecCkpt, BlockModeForkBitIdenticalMidRun) {
  for (const std::string& wl : {"hotspot", "bfs"}) {
    exp::ScenarioSpec spec;
    spec.workload = wl;
    spec.gpu.exec_mode = ExecMode::kBlock;
    const exp::ScenarioResult probe = exp::run_scenario(spec);
    ASSERT_TRUE(probe.ok) << probe.error;
    const Cycle target = probe.stats.get("cycles") / 2;

    exp::SnapshotIo base_io;
    base_io.capture_targets = {target};
    const exp::ScenarioResult base =
        exp::run_scenario(spec, 0, nullptr, nullptr, &base_io);
    ASSERT_TRUE(base.ok) << base.error;
    EXPECT_TRUE(base.deterministic_fields_equal(probe))
        << wl << ": captures perturbed the run";
    ASSERT_NE(base_io.captured[0], nullptr);

    exp::SnapshotIo fork_io;
    fork_io.resume = base_io.captured[0];
    const exp::ScenarioResult fork =
        exp::run_scenario(spec, 0, nullptr, nullptr, &fork_io);
    ASSERT_TRUE(fork.ok) << fork.error;
    EXPECT_TRUE(fork.deterministic_fields_equal(probe))
        << wl << ": fork from cycle " << base_io.captured[0]->cycle
        << " diverged from the from-scratch run";
  }
}

TEST(BlockExecCkpt, CrossModeRestoreIsBitIdenticalOnArchState) {
  // Traces are derived state, so a snapshot captured under the interpreter
  // restores cleanly into a block-mode device (exec_mode is deliberately
  // outside the params fingerprint); the architectural results must match a
  // from-scratch block run. Only the block-only counters differ (the interp
  // snapshot carries their zeros), which is exactly why the comparison
  // filters them.
  exp::ScenarioSpec interp_spec;
  interp_spec.workload = "hotspot";
  interp_spec.gpu.exec_mode = ExecMode::kInterp;
  exp::ScenarioSpec block_spec = interp_spec;
  block_spec.gpu.exec_mode = ExecMode::kBlock;

  const exp::ScenarioResult scratch = exp::run_scenario(block_spec);
  ASSERT_TRUE(scratch.ok) << scratch.error;
  const Cycle target = scratch.stats.get("cycles") / 2;

  exp::SnapshotIo base_io;
  base_io.capture_targets = {target};
  const exp::ScenarioResult base =
      exp::run_scenario(interp_spec, 0, nullptr, nullptr, &base_io);
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_NE(base_io.captured[0], nullptr);

  exp::SnapshotIo fork_io;
  fork_io.resume = base_io.captured[0];
  const exp::ScenarioResult fork =
      exp::run_scenario(block_spec, 0, nullptr, nullptr, &fork_io);
  ASSERT_TRUE(fork.ok) << fork.error;
  EXPECT_TRUE(fork.verified);
  EXPECT_EQ(fork.kernel_cycles, scratch.kernel_cycles);
  EXPECT_EQ(fork.elapsed_ns, scratch.elapsed_ns);
  higpu::expect_same_stats_modulo_block(fork.stats, scratch.stats,
                                        "cross-mode fork");
}

}  // namespace
}  // namespace higpu::sim
