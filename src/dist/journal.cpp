#include "dist/journal.h"

#include <cstdio>

#include <sys/types.h>
#include <unistd.h>

#include "exp/result_io.h"

namespace higpu::dist {

namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw JournalError("cannot open journal '" + path + "'");
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw JournalError("read error on journal '" + path + "'");
  return text;
}

std::string header_line(u64 fingerprint, u64 scenarios) {
  return std::string("{\"schema\":\"") + kJournalSchema +
         "\",\"fingerprint\":" + std::to_string(fingerprint) +
         ",\"scenarios\":" + std::to_string(scenarios) + "}";
}

}  // namespace

Scan scan_journal(const std::string& path) {
  const std::string text = read_file(path);

  Scan scan;
  size_t pos = 0;
  u64 line_no = 0;  // 1-based; line 1 is the header
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // No trailing newline: the append that was in flight when the writer
      // was killed. Losing it is the contract — the scenario re-runs.
      scan.torn_tail = true;
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line_no == 1) {
      JsonValue header;
      try {
        header = parse_json(line);
      } catch (const JsonError& e) {
        throw JournalError("journal '" + path + "' header is malformed: " +
                           e.what());
      }
      const std::string schema = header.get_string_or("schema", "");
      if (schema != kJournalSchema)
        throw JournalError("journal '" + path + "' has schema '" + schema +
                           "', expected '" + kJournalSchema + "'");
      scan.fingerprint = header.get_u64("fingerprint");
      scan.scenarios = header.get_u64("scenarios");
      continue;
    }

    // Auxiliary observability records (worker logs, flight-recorder dumps,
    // the end-of-campaign fleet metrics snapshot) interleave with results;
    // they carry no resume state, so the scan counts and skips them.
    if (line.rfind("{\"log\":", 0) == 0 ||
        line.rfind("{\"flight\":", 0) == 0 ||
        line.rfind("{\"fleet\":", 0) == 0) {
      ++scan.aux_records;
      continue;
    }

    exp::ScenarioResult result;
    try {
      result = exp::result_from_jsonl(line);
    } catch (const std::exception& e) {
      // A complete-but-unparseable line is corruption, not crash debris.
      throw JournalError("journal '" + path + "' record " +
                         std::to_string(line_no - 1) + " (line " +
                         std::to_string(line_no) + ") is corrupted: " +
                         e.what());
    }
    if (result.index >= scan.scenarios)
      throw JournalError("journal '" + path + "' record " +
                         std::to_string(line_no - 1) +
                         " has scenario index " +
                         std::to_string(result.index) +
                         " outside the campaign's " +
                         std::to_string(scan.scenarios) + " scenarios");
    const auto [it, inserted] = scan.results.emplace(result.index, result);
    // A re-dispatched unit can legitimately land twice (first result raced
    // the crash); determinism makes the copies identical. Disagreeing
    // duplicates mean the journal is not what it claims to be.
    if (!inserted && !it->second.deterministic_fields_equal(result))
      throw JournalError("journal '" + path + "' record " +
                         std::to_string(line_no - 1) +
                         " duplicates scenario index " +
                         std::to_string(result.index) +
                         " with different deterministic fields");
  }
  if (line_no == 0 && !scan.torn_tail)
    throw JournalError("journal '" + path + "' is empty (no header line)");
  if (line_no == 0 && scan.torn_tail)
    throw JournalError("journal '" + path +
                       "' has a torn header line and no records");
  return scan;
}

Journal Journal::create(const std::string& path, u64 fingerprint,
                        u64 scenarios) {
  JsonlWriter writer(path, /*truncate=*/true);
  writer.append(header_line(fingerprint, scenarios));
  return Journal(std::move(writer), path);
}

Journal Journal::append_to(const std::string& path) {
  // Trim a torn trailing line (SIGKILL mid-append) so the next record
  // starts on its own line instead of concatenating onto the debris.
  const std::string text = read_file(path);
  const size_t last_nl = text.rfind('\n');
  const size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
  if (keep != text.size() && ::truncate(path.c_str(), static_cast<off_t>(keep)) != 0)
    throw JournalError("cannot trim torn tail of journal '" + path + "'");
  return Journal(JsonlWriter(path, /*truncate=*/false), path);
}

void Journal::add(const exp::ScenarioResult& result) {
  writer_.append(exp::result_to_jsonl(result));
  ++records_;
}

void Journal::add_aux(const std::string& json_line) {
  writer_.append(json_line);
}

}  // namespace higpu::dist
