// Properties of the unified N-copy redundancy API.
//
// 1. Fail-operational TMR: with N = 3 and majority voting under SRRS, any
//    fault plan that corrupts a single copy (droop / transient-SM /
//    permanent-SM) yields `majority && !unanimous` with the faulty copy
//    identified and the host results repaired by the vote — across several
//    workloads and seeds.
// 2. Refactor equivalence: the unified ExecSession reproduces the
//    pre-refactor baseline (N = 1) and DCLS (N = 2, bitwise) paths
//    bit-identically — cycle counts and modelled end-to-end times pinned
//    against goldens captured from the RedundantSession implementation this
//    API replaced.
#include <gtest/gtest.h>

#include <map>

#include "exp/campaign.h"

namespace higpu {
namespace {

// ---- 1. Single-copy faults are out-voted at N = 3 --------------------------

struct TmrFaultCase {
  std::string workload;
  u64 seed;
  /// Builds the plan from the golden (fault-free) execution span of the
  /// group's FIRST copy, so transient windows provably hit one copy only.
  enum class Kind { kDroop, kTransientSm, kPermanentSm } kind;
};

exp::ScenarioSpec tmr_spec(const std::string& workload, u64 seed) {
  exp::ScenarioSpec spec;
  spec.workload = workload;
  spec.scale = workloads::Scale::kTest;
  spec.seed = seed;
  spec.policy = sched::Policy::kSrrs;
  spec.redundancy = core::RedundancySpec::tmr();
  return spec;
}

/// Cycle span [first dispatch, last completion] of the first copy of the
/// first launch group in a golden run — where a transient must land to
/// corrupt exactly one copy.
std::pair<Cycle, Cycle> first_copy_span(const exp::ScenarioSpec& golden) {
  Cycle begin = kNeverCycle, end = 0;
  const exp::ScenarioResult r = exp::run_scenario(
      golden, 0,
      [&](runtime::Device& dev, workloads::Workload&, core::ExecSession& s) {
        const u32 first_id = s.groups().front().front();
        for (const sim::BlockRecord& rec : dev.gpu().block_records()) {
          if (rec.launch_id != first_id) continue;
          begin = std::min(begin, rec.dispatch_cycle);
          end = std::max(end, rec.end_cycle);
        }
      });
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_LT(begin, end);
  return {begin, end};
}

class TmrSingleCopyFaultProperty
    : public ::testing::TestWithParam<TmrFaultCase> {};

TEST_P(TmrSingleCopyFaultProperty, MajorityOutvotesAndRepairs) {
  const TmrFaultCase c = GetParam();
  exp::ScenarioSpec spec = tmr_spec(c.workload, c.seed);

  // Bit 2: corrupted address computations move stores by +-4 bytes, which
  // stays inside the executing copy's own allocation — the plan corrupts
  // exactly one copy. (A high bit like 20 offsets stores by +-1 MiB, which
  // can scribble over ANOTHER copy's buffers: no longer a single-copy
  // fault, and exactly the kind of common-cause escape bitwise DCLS is
  // also blind to.)
  switch (c.kind) {
    case TmrFaultCase::Kind::kPermanentSm:
      // SRRS spreads each logical block across three distinct SMs, so one
      // broken SM corrupts at most one copy of any block.
      spec.fault = exp::FaultPlan::permanent_sm(1, 0, 2);
      break;
    case TmrFaultCase::Kind::kTransientSm: {
      const auto [begin, end] = first_copy_span(tmr_spec(c.workload, c.seed));
      spec.fault = exp::FaultPlan::transient_sm(
          0, begin, std::max<Cycle>(1, end - begin), 2);
      break;
    }
    case TmrFaultCase::Kind::kDroop: {
      // A chip-wide droop confined to the first copy's execution window:
      // SRRS serializes the copies, so only copy 0 is executing then.
      const auto [begin, end] = first_copy_span(tmr_spec(c.workload, c.seed));
      spec.fault = exp::FaultPlan::droop(
          begin, std::max<Cycle>(1, end - begin), 2);
      break;
    }
  }

  const exp::ScenarioResult r = exp::run_scenario(spec);
  ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
  ASSERT_GT(r.corruptions, 0u)
      << r.label << ": the plan must actually corrupt something";
  EXPECT_EQ(r.n_copies, 3u);
  EXPECT_FALSE(r.dcls_match) << r.label << ": the fault must be detected";
  EXPECT_TRUE(r.majority_ok)
      << r.label << ": a single faulty copy must be out-voted";
  EXPECT_GE(r.faulty_copy, 0) << r.label;
  EXPECT_LT(r.faulty_copy, 3) << r.label;
  if (c.kind != TmrFaultCase::Kind::kPermanentSm)
    EXPECT_EQ(r.faulty_copy, 0)
        << r.label << ": the window targeted the first copy";
  EXPECT_TRUE(r.verified)
      << r.label << ": the vote must repair the host results";
  EXPECT_EQ(r.outcome, fault::Outcome::kDetected) << r.label;
  EXPECT_TRUE(r.passed()) << r.label;
}

std::vector<TmrFaultCase> tmr_cases() {
  std::vector<TmrFaultCase> cases;
  for (const char* w : {"hotspot", "nn", "pathfinder"})
    for (u64 seed : {2019ull, 7ull})
      for (auto kind :
           {TmrFaultCase::Kind::kDroop, TmrFaultCase::Kind::kTransientSm,
            TmrFaultCase::Kind::kPermanentSm}) {
        // A permanent SM fault is NOT a single-copy fault for hotspot: the
        // corruption each copy picks up on the broken SM spreads through
        // the next stencil step's neighbourhood reads, so a word can end up
        // wrong (differently) in two copies — a tie the vote rightly
        // refuses to correct. Single-pass workloads keep the guarantee.
        if (kind == TmrFaultCase::Kind::kPermanentSm &&
            std::string(w) == "hotspot")
          continue;
        cases.push_back({w, seed, kind});
      }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsSeedsAndFaults, TmrSingleCopyFaultProperty,
    ::testing::ValuesIn(tmr_cases()), [](const auto& info) {
      const char* kind =
          info.param.kind == TmrFaultCase::Kind::kDroop ? "droop"
          : info.param.kind == TmrFaultCase::Kind::kTransientSm ? "tsm"
                                                                : "psm";
      return info.param.workload + "_seed" + std::to_string(info.param.seed) +
             "_" + kind;
    });

// ---- 2. N = 1 / N = 2 bit-identical to the pre-refactor paths --------------

struct GoldenRow {
  const char* workload;
  Cycle dcls_cycles;
  NanoSec dcls_ns;
  Cycle base_cycles;
  NanoSec base_ns;
};

// Captured from the pre-refactor core::RedundantSession implementation
// (scale=test, seed=2019, SRRS, 6-SM GPU, default memory system) immediately
// before it was replaced by ExecSession. The unified session must reproduce
// these exactly: same allocations, transfers, launch hints, comparison
// charges, same simulated cycles.
constexpr GoldenRow kGolden[] = {
    {"hotspot", 12422, 458149, 6423, 394383},
    {"bfs", 109190, 1399801, 55189, 1087784},
    {"nn", 6722, 1004000, 3719, 943893},
    {"gaussian", 180187, 717059, 90187, 469215},
    {"pathfinder", 42517, 306404, 21518, 209318},
    {"myocyte", 12101, 3584073, 7550, 3542691},
};

class RefactorEquivalence : public ::testing::TestWithParam<GoldenRow> {};

TEST_P(RefactorEquivalence, UnifiedSessionMatchesPreRefactorGoldens) {
  const GoldenRow g = GetParam();
  exp::ScenarioSpec spec;
  spec.workload = g.workload;
  spec.scale = workloads::Scale::kTest;
  spec.seed = 2019;
  spec.policy = sched::Policy::kSrrs;

  spec.redundancy = core::RedundancySpec::dcls();
  const exp::ScenarioResult dcls = exp::run_scenario(spec);
  ASSERT_TRUE(dcls.ok) << dcls.error;
  EXPECT_TRUE(dcls.verified && dcls.dcls_match) << g.workload;
  EXPECT_EQ(dcls.kernel_cycles, g.dcls_cycles) << g.workload << " (N=2)";
  EXPECT_EQ(dcls.elapsed_ns, g.dcls_ns) << g.workload << " (N=2)";

  spec.redundancy = core::RedundancySpec::baseline();
  const exp::ScenarioResult base = exp::run_scenario(spec);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_TRUE(base.verified) << g.workload;
  EXPECT_EQ(base.kernel_cycles, g.base_cycles) << g.workload << " (N=1)";
  EXPECT_EQ(base.elapsed_ns, g.base_ns) << g.workload << " (N=1)";
}

INSTANTIATE_TEST_SUITE_P(PinnedWorkloads, RefactorEquivalence,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(info.param.workload);
                         });

// ---- 3. The whole Fig. 5 suite passes at N = 1 / 2 / 3 through the
//         campaign runner (the acceptance gate of this API) ------------------

class WorkloadAtAllRedundancyLevels
    : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadAtAllRedundancyLevels, VerifiesThroughCampaignRunner) {
  exp::ScenarioSpec proto;
  proto.workload = GetParam();
  proto.scale = workloads::Scale::kTest;
  proto.seed = 2019;
  proto.policy = sched::Policy::kSrrs;
  const exp::ScenarioSet set =
      exp::ScenarioSet::of(proto).sweep_redundancy(
          {core::RedundancySpec::baseline(), core::RedundancySpec::dcls(),
           core::RedundancySpec::tmr()});
  exp::CampaignRunner::Config cfg;
  cfg.jobs = 3;
  const exp::CampaignResult campaign = exp::CampaignRunner(cfg).run(set);
  ASSERT_EQ(campaign.results.size(), 3u);
  for (const exp::ScenarioResult& r : campaign.results) {
    ASSERT_TRUE(r.ok) << r.label << ": " << r.error;
    EXPECT_TRUE(r.verified) << r.label;
    EXPECT_TRUE(r.dcls_match) << r.label;
    EXPECT_TRUE(r.passed()) << r.label;
  }
  EXPECT_EQ(campaign.results[0].n_copies, 1u);
  EXPECT_EQ(campaign.results[1].n_copies, 2u);
  EXPECT_EQ(campaign.results[2].n_copies, 3u);
  EXPECT_TRUE(campaign.all_passed());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadAtAllRedundancyLevels,
                         ::testing::ValuesIn(workloads::all_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

}  // namespace
}  // namespace higpu
