// Deterministic fault injection (paper §IV.C fault model).
//
// Supported faults:
//  * Chip-wide transient droop — every ALU/SFU result produced in a cycle
//    window gets the same bit flipped on ALL SMs. This is the Common-Cause
//    Fault ISO 26262 worries about: if the two redundant copies execute the
//    same computation inside the window, both results are corrupted
//    *identically* and the DCLS comparison cannot detect it.
//  * Single-SM transient — same, restricted to one SM.
//  * Permanent SM defect — every result on one SM is corrupted from a given
//    cycle on (models a broken functional unit).
//  * Scheduler mapping fault — the kernel scheduler's block->SM decision is
//    rotated by a fixed offset from a given cycle on (models a fault in the
//    paper's modified global kernel scheduler).
#pragma once

#include "common/types.h"
#include "sim/fault_hook.h"

namespace higpu::fault {

class FaultInjector final : public sim::IFaultHook {
 public:
  void arm_droop(Cycle start, Cycle duration, u32 bit);
  void arm_transient_sm(u32 sm, Cycle start, Cycle duration, u32 bit);
  void arm_permanent_sm(u32 sm, Cycle start, u32 bit);
  void arm_scheduler_fault(Cycle start, u32 sm_offset);
  void disarm();

  // sim::IFaultHook
  u32 corrupt_alu(u32 sm, Cycle cycle, u32 value) override;
  u32 corrupt_block_mapping(u32 intended_sm, u32 num_sms, Cycle cycle) override;
  void on_block_diverted(u32 intended_sm, u32 actual_sm) override;
  bool armed() const override { return mode_ != Mode::kNone; }
  Cycle next_trigger_cycle(Cycle now) const override;
  /// Checkpoint participation: the armed window and the corruption counters
  /// are snapshot state, so an exact restore mid fault window resumes the
  /// injection bit-identically.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;
  /// Rollback recovery re-traverses past cycles; a transient disturbance
  /// (droop / single-SM transient) is a one-time physical event that will
  /// not recur, so its cycle-anchored window is disarmed. Permanent defects
  /// and scheduler faults persist.
  void on_rollback() override;

  /// Number of datapath results actually corrupted so far.
  u64 corruptions() const { return corruptions_; }
  /// Number of block placements actually diverted so far.
  u64 diverted_blocks() const { return diverted_; }

 private:
  enum class Mode { kNone, kDroop, kTransientSm, kPermanentSm, kScheduler };
  Mode mode_ = Mode::kNone;
  u32 sm_ = 0;
  Cycle start_ = 0;
  Cycle end_ = 0;  // exclusive; ~0 for permanent
  u32 bit_ = 0;
  u32 sm_offset_ = 0;
  u64 corruptions_ = 0;
  u64 diverted_ = 0;
};

/// Outcome of one fault-injection experiment on a redundant pair.
enum class Outcome {
  kMasked,    // outputs match and are correct (fault had no effect)
  kDetected,  // outputs differ -> DCLS comparison flags the error
  kSdc,       // outputs match but are WRONG: undetected CCF (the ISO 26262
              // single-point failure the policies must make impossible)
};

const char* outcome_name(Outcome o);

/// Classify from the two verdicts available to the safety mechanism.
Outcome classify(bool outputs_match, bool output_correct);

/// Tally over a campaign.
struct CampaignTally {
  u64 masked = 0;
  u64 detected = 0;
  u64 sdc = 0;

  void count(Outcome o);
  u64 total() const { return masked + detected + sdc; }
  /// Fraction of non-masked faults that were detected (diagnostic coverage
  /// of the redundancy safety mechanism).
  double diagnostic_coverage() const;
};

}  // namespace higpu::fault
