#include "workloads/lavamd.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr float kAlpha = 0.5f;  // exp kernel steepness

/// Per particle i of box b:
///   pot[i] = sum over neighbour boxes nb, particles j in nb:
///            q_j * exp(-alpha * r2(i, j))
/// One block per box; thread = particle index within the box.
isa::ProgramPtr build_lavamd_kernel(u32 particles, u32 neighbors) {
  using namespace isa;
  KernelBuilder kb("lavamd_forces");

  Reg px = kb.reg(), py = kb.reg(), pz = kb.reg(), q = kb.reg(),
      neigh = kb.reg(), pot = kb.reg();
  kb.ldp(px, 0);
  kb.ldp(py, 1);
  kb.ldp(pz, 2);
  kb.ldp(q, 3);
  kb.ldp(neigh, 4);
  kb.ldp(pot, 5);

  Reg tid = kb.reg(), box = kb.reg();
  kb.s2r(tid, SReg::kTidX);
  kb.s2r(box, SReg::kCtaIdX);

  // My particle's global index and position.
  Reg me = kb.reg();
  kb.imad(me, box, imm(static_cast<i32>(particles)), tid);
  Reg a = kb.reg(), mx = kb.reg(), my = kb.reg(), mz = kb.reg();
  kb.imad(a, me, imm(4), px);
  kb.ldg(mx, a);
  kb.imad(a, me, imm(4), py);
  kb.ldg(my, a);
  kb.imad(a, me, imm(4), pz);
  kb.ldg(mz, a);

  Reg acc = kb.reg();
  kb.movf(acc, 0.0f);

  // Neighbour-box list base: &neigh[box*neighbors].
  Reg nb_base = kb.reg(), lin = kb.reg();
  kb.imul(lin, box, imm(static_cast<i32>(neighbors)));
  kb.imad(nb_base, lin, imm(4), neigh);

  Reg nb = kb.reg(), j = kb.reg(), jend = kb.reg(), ox = kb.reg(),
      oy = kb.reg(), oz = kb.reg(), oq = kb.reg(), dx = kb.reg(),
      dy = kb.reg(), dz = kb.reg(), r2 = kb.reg(), e = kb.reg(),
      t = kb.reg();
  // Both predicates are reused across neighbour iterations: each setp is
  // consumed by the guarded branch right after it, and 2*neighbors fresh
  // allocations would blow the 8-register predicate file.
  PredReg invalid = kb.pred(), done_p = kb.pred();
  for (u32 k = 0; k < neighbors; ++k) {
    Label skip = kb.label();
    kb.ldg(nb, nb_base, static_cast<i32>(k * 4));
    kb.setp(invalid, CmpOp::kLt, DType::kI32, nb, imm(0));
    kb.bra(skip).guard_if(invalid);

    // j iterates the neighbour box's particles.
    kb.imul(j, nb, imm(static_cast<i32>(particles)));
    kb.iadd(jend, j, imm(static_cast<i32>(particles)));
    Label loop = kb.label(), loop_end = kb.label();
    kb.bind(loop);
    kb.setp(done_p, CmpOp::kGe, DType::kI32, j, jend);
    kb.bra(loop_end).guard_if(done_p);

    kb.imad(a, j, imm(4), px);
    kb.ldg(ox, a);
    kb.imad(a, j, imm(4), py);
    kb.ldg(oy, a);
    kb.imad(a, j, imm(4), pz);
    kb.ldg(oz, a);
    kb.imad(a, j, imm(4), q);
    kb.ldg(oq, a);
    kb.fsub(dx, mx, ox);
    kb.fsub(dy, my, oy);
    kb.fsub(dz, mz, oz);
    kb.fmul(r2, dx, dx);
    kb.ffma(r2, dy, dy, r2);
    kb.ffma(r2, dz, dz, r2);
    kb.fmul(t, r2, fimm(-kAlpha));
    kb.fexp(e, t);
    kb.ffma(acc, oq, e, acc);

    kb.iadd(j, j, imm(1));
    kb.bra(loop);
    kb.bind(loop_end);
    kb.bind(skip);
  }

  Reg a_out = util::elem_addr(kb, pot, me);
  kb.stg(a_out, acc);
  kb.exit();
  return kb.build();
}

}  // namespace

void LavaMd::setup(Scale scale, u64 seed) {
  boxes_ = scale == Scale::kTest ? 8 : 27;
  Rng rng(seed);

  const u32 n = boxes_ * kParticles;
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  charge_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    px_[i] = rng.next_float(0.0f, 3.0f);
    py_[i] = rng.next_float(0.0f, 3.0f);
    pz_[i] = rng.next_float(0.0f, 3.0f);
    charge_[i] = rng.next_float(0.1f, 1.0f);
  }
  // Neighbour lists: ring-ish neighbourhood with a couple of -1 fills to
  // exercise the skip path.
  neigh_.assign(static_cast<size_t>(boxes_) * kNeighbors, -1);
  for (u32 b = 0; b < boxes_; ++b) {
    for (u32 k = 0; k + 1 < kNeighbors; ++k)
      neigh_[b * kNeighbors + k] =
          static_cast<i32>((b + k) % boxes_);  // includes self at k=0
    // last slot stays -1
  }

  reference_.assign(n, 0.0f);
  for (u32 b = 0; b < boxes_; ++b) {
    for (u32 t = 0; t < kParticles; ++t) {
      const u32 i = b * kParticles + t;
      float acc = 0.0f;
      for (u32 k = 0; k < kNeighbors; ++k) {
        const i32 nb = neigh_[b * kNeighbors + k];
        if (nb < 0) continue;
        for (u32 p = 0; p < kParticles; ++p) {
          const u32 jj = static_cast<u32>(nb) * kParticles + p;
          const float dx = px_[i] - px_[jj];
          const float dy = py_[i] - py_[jj];
          const float dz = pz_[i] - pz_[jj];
          float r2 = dx * dx;
          r2 = std::fma(dy, dy, r2);
          r2 = std::fma(dz, dz, r2);
          acc = std::fma(charge_[jj], std::exp(r2 * -kAlpha), acc);
        }
      }
      reference_[i] = acc;
    }
  }
  result_.clear();
}

void LavaMd::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_generate(input_bytes() * 60);  // box/neighbour setup loops

  const u32 n = boxes_ * kParticles;
  const u64 bytes = static_cast<u64>(n) * 4;
  const u64 nb_bytes = static_cast<u64>(boxes_) * kNeighbors * 4;
  core::ReplicaPtr d_px = session.alloc(bytes);
  core::ReplicaPtr d_py = session.alloc(bytes);
  core::ReplicaPtr d_pz = session.alloc(bytes);
  core::ReplicaPtr d_q = session.alloc(bytes);
  core::ReplicaPtr d_nb = session.alloc(nb_bytes);
  core::ReplicaPtr d_pot = session.alloc(bytes);
  session.h2d(d_px, px_.data(), bytes);
  session.h2d(d_py, py_.data(), bytes);
  session.h2d(d_pz, pz_.data(), bytes);
  session.h2d(d_q, charge_.data(), bytes);
  session.h2d(d_nb, neigh_.data(), nb_bytes);

  session.launch(build_lavamd_kernel(kParticles, kNeighbors),
                 sim::Dim3{boxes_, 1, 1}, sim::Dim3{kParticles, 1, 1},
                 {d_px, d_py, d_pz, d_q, d_nb, d_pot});
  session.sync();

  result_.resize(n);
  session.d2h(result_.data(), d_pot, bytes);
  session.compare(d_pot, bytes, result_.data());
}

bool LavaMd::verify() const { return approx_equal(result_, reference_, 5e-3f); }

u64 LavaMd::input_bytes() const {
  return 4ull * boxes_ * kParticles * 4 + boxes_ * kNeighbors * 4;
}
u64 LavaMd::output_bytes() const {
  return static_cast<u64>(boxes_) * kParticles * 4;
}

}  // namespace higpu::workloads
