#include "isa/program.h"

#include <sstream>

#include "isa/opcode.h"

namespace higpu::isa {

KernelProgram::KernelProgram(std::string name, std::vector<Instruction> code,
                             u16 num_regs, u16 num_preds, u32 shared_bytes,
                             u32 num_params)
    : name_(std::move(name)),
      code_(std::move(code)),
      num_regs_(num_regs),
      num_preds_(num_preds),
      shared_bytes_(shared_bytes),
      num_params_(num_params) {}

u32 KernelProgram::static_count(UnitClass uc) const {
  u32 n = 0;
  for (const Instruction& ins : code_)
    if (unit_class(ins.op) == uc) ++n;
  return n;
}

namespace {

std::string operand_str(const Operand& o) {
  std::ostringstream s;
  if (o.is_reg()) {
    s << "r" << o.reg;
  } else if (o.is_imm()) {
    s << "0x" << std::hex << o.imm;
  }
  return s.str();
}

}  // namespace

std::string disassemble(const Instruction& ins, Pc pc) {
  std::ostringstream s;
  s << pc << ":\t";
  if (ins.guard != kNoPred) s << "@" << (ins.guard_neg ? "!" : "") << "p" << ins.guard << " ";
  s << op_name(ins.op);
  switch (ins.op) {
    case Op::kS2r:
      s << " r" << ins.dst << ", %" << sreg_name(ins.sreg);
      break;
    case Op::kLdp:
      s << " r" << ins.dst << ", param[" << ins.src[0].imm << "]";
      break;
    case Op::kSetp:
      s << "." << cmp_name(ins.cmp) << " p" << ins.dst << ", "
        << operand_str(ins.src[0]) << ", " << operand_str(ins.src[1]);
      break;
    case Op::kSelp:
      s << " r" << ins.dst << ", " << operand_str(ins.src[0]) << ", "
        << operand_str(ins.src[1]) << ", p" << ins.pred_src;
      break;
    case Op::kBra:
      s << " " << ins.target << " (reconv " << ins.reconv_pc << ")";
      break;
    case Op::kExit:
    case Op::kBar:
    case Op::kNop:
      break;
    case Op::kLdg:
    case Op::kLds:
      s << " r" << ins.dst << ", [" << operand_str(ins.src[0]) << "+"
        << ins.mem_offset << "]";
      break;
    case Op::kStg:
    case Op::kSts:
      s << " [" << operand_str(ins.src[0]) << "+" << ins.mem_offset << "], "
        << operand_str(ins.src[1]);
      break;
    case Op::kAtomAdd:
      s << " r" << ins.dst << ", [" << operand_str(ins.src[0]) << "+"
        << ins.mem_offset << "], " << operand_str(ins.src[1]);
      break;
    default: {
      s << " r" << ins.dst;
      for (const Operand& o : ins.src) {
        if (!o.present()) break;
        s << ", " << operand_str(o);
      }
      break;
    }
  }
  return s.str();
}

std::string KernelProgram::disassemble() const {
  std::ostringstream s;
  s << "// kernel " << name_ << ": regs=" << num_regs_
    << " preds=" << num_preds_ << " shared=" << shared_bytes_
    << "B params=" << num_params_ << "\n";
  for (Pc pc = 0; pc < code_.size(); ++pc)
    s << isa::disassemble(code_[pc], pc) << "\n";
  return s.str();
}

}  // namespace higpu::isa
