// Streaming Multiprocessor model: resident thread blocks, warp scheduling
// (greedy-then-oldest), scoreboarding, execution pipelines, shared memory
// and barriers. Functional execution happens at issue; timing is charged
// through per-unit availability counters and the memory hierarchy.
#pragma once

#include <functional>
#include <vector>

#include "ckpt/serial.h"
#include "common/stats.h"
#include "common/types.h"
#include "memsys/global_store.h"
#include "memsys/hierarchy.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/fault_hook.h"
#include "sim/kernel.h"
#include "sim/params.h"
#include "sim/trace.h"
#include "sim/warp.h"

namespace higpu::sim {

namespace blockexec {
struct SuperOp;
}  // namespace blockexec

/// A thread block resident on an SM.
struct ResidentBlock {
  bool active = false;
  u32 launch_id = 0;
  u32 block_linear = 0;
  Dim3 block_idx;
  const KernelLaunch* launch = nullptr;
  u32 num_warps = 0;
  u32 warps_live = 0;
  u32 barrier_count = 0;  // warps currently waiting at the barrier
  std::vector<u8> shared;  // functional shared memory
  // Reserved resources, released when the block completes.
  u32 regs_reserved = 0;
  u32 shared_reserved = 0;
  u32 intended_sm = 0;
  Cycle dispatch_cycle = 0;
};

/// Warp-scheduler selection policy within an SM.
enum class WarpSchedPolicy { kGto, kLrr };

class SmCore {
 public:
  using BlockDoneFn = std::function<void(const BlockRecord&)>;

  SmCore(u32 sm_id, const GpuParams& params, memsys::MemHierarchy* mem,
         memsys::GlobalStore* store);

  u32 id() const { return sm_id_; }

  /// True if a block of `launch` fits in the currently-free resources.
  bool can_accept(const KernelLaunch& launch) const;

  /// Bind block `block_linear` of `launch` to this SM (resources must fit).
  void accept_block(const KernelLaunch& launch, u32 launch_id, u32 block_linear,
                    u32 intended_sm, Cycle now);

  /// Advance one cycle: each warp scheduler tries to issue one instruction.
  /// Self-settles any quiescent gap since the last simulated cycle, so it is
  /// safe to call at non-contiguous `now` values (event-driven engine).
  void cycle(Cycle now);

  /// True if the most recent cycle() made forward progress: issued an
  /// instruction, completed a warp, or completed a block. After a cycle with
  /// no progress the SM is quiescent and can sleep until next_event_cycle().
  bool progressed() const { return progress_; }

  /// Earliest cycle at which a resident warp can become ready — scoreboard
  /// release (including memory-response arrival, which is a pending-register
  /// ready cycle), or execution-unit availability — recorded as a byproduct
  /// of the failed issue attempts of the preceding cycle() call, so it is
  /// only meaningful after a cycle with progressed() == false. Barrier waits
  /// contribute no event: they are released by other warps' issues, which
  /// are events themselves. Conservatively stops at stall-class boundaries
  /// so skipped-cycle stall accounting stays bit-identical to the dense
  /// loop. Returns kNeverCycle for an idle SM (or one whose warps can only
  /// be unblocked externally).
  Cycle next_event_cycle() const {
    return blocks_used_ ? quiet_wake_ : kNeverCycle;
  }

  /// Account statistics for quiescent cycles (last settled, upto] exactly
  /// as the dense loop would have counted them (active_cycles plus one
  /// stall per active warp per cycle, classified). Called internally by
  /// cycle()/accept_block(); the GPU calls it directly before a timeout.
  void settle_to(Cycle upto);

  /// No resident blocks.
  bool idle() const { return blocks_used_ == 0; }

  void set_block_done_callback(BlockDoneFn fn) { on_block_done_ = std::move(fn); }
  void set_fault_hook(IFaultHook* hook) { fault_ = hook; }
  void set_trace_sink(ITraceSink* sink) { trace_ = sink; }
  /// Attach (or detach, with nullptr) the observability tracer. `track` is
  /// this SM's track id in `t`. The tracer is a pure observer — attaching
  /// it changes no simulated state (pinned by the trace-identity suite);
  /// its only per-warp bookkeeping (open stall episodes) lives in a
  /// trace-only side table that is never serialized.
  void set_obs_tracer(obs::Tracer* t, u32 track) {
    obs_ = t;
    obs_track_ = track;
    stall_eps_.assign(warps_.size(), StallEp{});
  }
  void set_warp_sched_policy(WarpSchedPolicy p) { warp_policy_ = p; }
  /// Event-engine mode: the issue walk may skip a warp in O(1) while its
  /// recorded stall is provably still blocking (see StallRec). Off in the
  /// dense reference loop, which faithfully re-attempts every warp every
  /// cycle — keeping the two engines independent implementations of the
  /// same semantics for the equivalence test to cross-check.
  void set_use_wake_records(bool on) { use_wake_records_ = on; }

  // Free-resource introspection (used by tests and occupancy analysis).
  u32 free_warp_slots() const { return params_.max_warps_per_sm - warps_used_; }
  u32 free_regs() const { return params_.regfile_per_sm - regs_used_; }
  u32 free_shared() const { return params_.shared_per_sm - shared_used_; }
  u32 resident_blocks() const { return blocks_used_; }

  /// Static per-block resource footprint of a launch on this configuration.
  static u32 warps_needed(const GpuParams& p, const KernelLaunch& l);
  static u32 regs_needed(const GpuParams& p, const KernelLaunch& l);

  /// Statistics snapshot including derived stall-reason counters.
  StatSet snapshot_stats() const;

  /// Per-SM cycle attribution: every active cycle classified as issued or
  /// by its dominant stall class, idle as the remainder against
  /// `total_cycles` (the GPU clock). issued + stalls == active cycles by
  /// construction, and the classification is computed identically by the
  /// dense loop and the event engine's settle_to() fast-forward.
  obs::SmCycles cycle_breakdown(Cycle total_cycles) const {
    obs::SmCycles c;
    c.issued = cycles_issued_;
    c.scoreboard = cycles_stall_scoreboard_;
    c.barrier = cycles_stall_barrier_;
    c.structural = cycles_stall_structural_;
    c.idle = total_cycles >= active_cycles_ ? total_cycles - active_cycles_ : 0;
    return c;
  }

  /// Checkpoint the full SM state: resident blocks and warps (registers,
  /// predicates, reconvergence stacks, scoreboards, shared memory), the
  /// warp-scheduler bookkeeping, structural-unit availability, the event
  /// engine's per-warp stall/wake records, and all statistics counters.
  /// Inactive block/warp slots are serialized as empty (accept_block fully
  /// reinitializes a slot, so stale contents are not behavioural state —
  /// excluding them keeps snapshot hashes free of dead-data noise).
  void save(ckpt::Writer& w) const;
  /// `launch_of` maps a launch id to its (already restored) KernelLaunch;
  /// used to rebuild the block -> launch and warp -> program pointers.
  void restore(ckpt::Reader& r,
               const std::function<const KernelLaunch*(u32)>& launch_of);

 private:
  // Issue path.
  enum class IssueOutcome : u8 {
    kIssued,
    kWarpDone,
    kBarrier,
    kScoreboard,
    kStructural,
  };
  IssueOutcome try_issue_classified(Warp& w, Cycle now);
  /// Block-engine fast path: issue one pre-decoded superop. Same scoreboard /
  /// structural / guard semantics as the interpreter path, dispatched through
  /// the compiled hazard plan and lane-vector kernels.
  IssueOutcome issue_superop(Warp& w, const blockexec::SuperOp& sop, Cycle now);
  void exec_superop(Warp& w, const blockexec::SuperOp& sop, u32 guard_mask,
                    Cycle now);
  /// Post-issue bookkeeping shared by both dispatch paths: per-warp
  /// instruction count, LRR recency refresh, SM instruction counter, and
  /// completion of a warp whose last instruction was EXIT.
  void post_issue(Warp& w, Cycle now);
  bool try_issue(Warp& w, Cycle now);
  /// Record a failed issue attempt: remembers the warp's stall class and
  /// wake time — the earliest cycle the blocking condition can clear — and
  /// folds the latter into quiet_wake_. Until that cycle the warp is
  /// provably still blocked with the same class, so the issue walk skips
  /// the full hazard re-check (and the event engine can sleep through it).
  /// Returns `o` so call sites stay oneliners.
  IssueOutcome stall(const Warp& w, IssueOutcome o, Cycle cand) {
    StallRec& rec = warp_stall_[static_cast<size_t>(&w - warps_.data())];
    rec.cls = o;
    rec.wake = cand;
    if (cand < quiet_wake_) quiet_wake_ = cand;
    return o;
  }
  /// Count one stall of class `cls`, exactly as a failed attempt would.
  void count_stall(IssueOutcome cls) {
    switch (cls) {
      case IssueOutcome::kScoreboard: ++stall_scoreboard_; break;
      case IssueOutcome::kBarrier: ++stall_barrier_; break;
      default: ++stall_structural_; break;
    }
  }
  void execute(Warp& w, const isa::Instruction& ins, u32 guard_mask, Cycle now);
  void exec_branch(Warp& w, const isa::Instruction& ins, u32 guard_mask);
  void exec_global_mem(Warp& w, const isa::Instruction& ins, u32 guard_mask, Cycle now);
  void exec_shared_mem(Warp& w, const isa::Instruction& ins, u32 guard_mask, Cycle now);
  void exec_barrier(Warp& w);
  u32 sreg_value(const Warp& w, isa::SReg sreg, u32 lane) const;
  u32 operand_value(const Warp& w, const isa::Operand& o, u32 lane) const;
  u32 maybe_corrupt(u32 value, Cycle now) const;

  // Completion path.
  void complete_warp(Warp& w, Cycle now);
  void complete_block(ResidentBlock& b, Cycle now);
  void release_barrier(ResidentBlock& b);

  u32 sm_id_;
  const GpuParams& params_;
  memsys::MemHierarchy* mem_;
  memsys::GlobalStore* store_;
  IFaultHook* fault_ = nullptr;
  ITraceSink* trace_ = nullptr;
  WarpSchedPolicy warp_policy_ = WarpSchedPolicy::kGto;
  bool use_wake_records_ = false;

  std::vector<ResidentBlock> blocks_;  // max_blocks_per_sm slots
  std::vector<Warp> warps_;            // max_warps_per_sm slots

  // Occupancy accounting.
  u32 warps_used_ = 0;
  u32 blocks_used_ = 0;
  u32 regs_used_ = 0;
  u32 shared_used_ = 0;

  // Structural availability.
  Cycle sfu_free_ = 0;
  Cycle mem_free_ = 0;

  // Warp-scheduler bookkeeping. sched_order_[s] holds scheduler s's active
  // warp slots in age order (maintained incrementally: activation appends —
  // ages are monotonic — completion erases, an LRR issue moves to the back),
  // so the per-cycle selection needs no sorting or allocation.
  std::vector<i32> last_issued_;  // per scheduler: warp slot or -1
  std::vector<std::vector<u32>> sched_order_;
  u64 age_counter_ = 0;

  // Event-engine bookkeeping: last cycle whose statistics are accounted,
  // whether the last simulated cycle made progress, the SM wake time and
  // the per-warp stall class + wake recorded by failed issue attempts.
  // A warp's record stays valid until the recorded wake cycle: pending
  // ready times are fixed at issue, unit next-free counters only move
  // later, and barriers are cleared explicitly (which resets the record).
  struct StallRec {
    Cycle wake = 0;  // 0 = must attempt; kNeverCycle = barrier (external)
    IssueOutcome cls = IssueOutcome::kStructural;
  };
  Cycle last_settled_ = 0;
  bool progress_ = false;
  Cycle quiet_wake_ = kNeverCycle;
  std::vector<StallRec> warp_stall_;  // parallel to warps_

  // Scratch buffers reused across cycles.
  std::vector<u64> addr_scratch_;
  std::vector<u64> line_scratch_;
  // Immediate-splat rows for the lane-vector kernels (one per source slot).
  u32 splat_a_[kWarpSize];
  u32 splat_b_[kWarpSize];
  u32 splat_c_[kWarpSize];

  BlockDoneFn on_block_done_;

  // Statistics. Hot-path counters are plain integers (a map lookup per
  // cycle/issue would dominate the simulation); snapshot_stats() exports
  // them under their original StatSet names.
  u64 blocks_accepted_ = 0;
  u64 blocks_completed_ = 0;
  u64 active_cycles_ = 0;
  u64 instructions_ = 0;
  u64 divergent_branches_ = 0;
  u64 barriers_ = 0;
  u64 smem_accesses_ = 0;
  u64 smem_bank_conflicts_ = 0;
  // Shared accesses whose (fault-corrupted) address fell outside the block's
  // segment and was wrapped back in — the always-on replacement for the
  // old NDEBUG-only bounds assert.
  u64 smem_oob_wraps_ = 0;
  u64 global_atomics_ = 0;
  u64 global_load_transactions_ = 0;
  u64 global_store_transactions_ = 0;

  // Issue-attempt outcome counters (exported via snapshot_stats()).
  u64 stall_scoreboard_ = 0;
  u64 stall_barrier_ = 0;
  u64 stall_structural_ = 0;
  u64 issued_attempts_ = 0;

  // Block-dispatch counters (ExecMode::kBlock only; both count *issued*
  // instructions, so hits + fallbacks == instructions in block mode).
  u64 block_exec_hits_ = 0;        // issued through a compiled superop
  u64 block_fallback_exits_ = 0;   // exited the block path to the interpreter

  // Cycle attribution (obs::SmCycles). Every active cycle lands in exactly
  // one bucket: issued if any scheduler made progress, else the dominant
  // stall class of that cycle's failed attempts (ties break scoreboard >=
  // barrier >= structural; a no-progress cycle with no per-cycle stall
  // deltas — possible only transiently — counts as structural). settle_to()
  // applies the same rule per quiescent cycle from the recorded per-warp
  // stall classes, which are constant across a quiescent window.
  void attribute_stall_cycles(u64 sb, u64 bar, u64 str, u64 n) {
    if (sb >= bar && sb >= str && sb > 0) {
      cycles_stall_scoreboard_ += n;
    } else if (bar >= str && bar > 0) {
      cycles_stall_barrier_ += n;
    } else {
      cycles_stall_structural_ += n;
    }
  }
  u64 cycles_issued_ = 0;
  u64 cycles_stall_scoreboard_ = 0;
  u64 cycles_stall_barrier_ = 0;
  u64 cycles_stall_structural_ = 0;

  // Observability tracer (nullptr when tracing is off — the only cost then
  // is one pointer test per hook). Stall spans are emitted as *episodes*:
  // one ring write when a warp's contiguous stall of one class ends, not
  // one per stalled cycle. stall_eps_ is trace-only state — never
  // serialized, cleared on restore/detach — so tracing cannot perturb
  // snapshots or simulated behaviour.
  struct StallEp {
    Cycle start = 0;
    IssueOutcome cls = IssueOutcome::kStructural;
    bool open = false;
  };
  void open_stall_episode(size_t slot, Cycle now, IssueOutcome cls) {
    StallEp& ep = stall_eps_[slot];
    if (ep.open && ep.cls == cls) return;
    if (ep.open) emit_stall_span(slot, ep, now);
    ep.start = now;
    ep.cls = cls;
    ep.open = true;
  }
  void close_stall_episode(size_t slot, Cycle now) {
    StallEp& ep = stall_eps_[slot];
    if (!ep.open) return;
    emit_stall_span(slot, ep, now);
    ep.open = false;
  }
  void emit_stall_span(size_t slot, const StallEp& ep, Cycle end) const {
    obs_->emit(obs_track_, obs::Ev::kWarpStall, ep.start, end - ep.start,
               static_cast<u64>(slot), static_cast<u64>(obs_stall_cls(ep.cls)));
  }
  static obs::StallCls obs_stall_cls(IssueOutcome o) {
    switch (o) {
      case IssueOutcome::kScoreboard: return obs::StallCls::kScoreboard;
      case IssueOutcome::kBarrier: return obs::StallCls::kBarrier;
      default: return obs::StallCls::kStructural;
    }
  }
  obs::Tracer* obs_ = nullptr;
  u32 obs_track_ = 0;
  std::vector<StallEp> stall_eps_;  // parallel to warps_; trace-only
};

}  // namespace higpu::sim
