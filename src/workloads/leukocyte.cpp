#include "workloads/leukocyte.h"

#include <algorithm>
#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

// 8 sample directions (compass) and 4 radii, mirroring the GICOV circle
// sampling structure.
constexpr i32 kDirs[8][2] = {{1, 0}, {1, 1},  {0, 1},  {-1, 1},
                             {-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
constexpr u32 kRadii = 4;

/// score[y][x] = max over directions of sum over radii of
///               (img[clamp(y+dy*r)][clamp(x+dx*r)] - img[y][x])
isa::ProgramPtr build_gicov_kernel() {
  using namespace isa;
  KernelBuilder kb("leukocyte_gicov");

  Reg img = kb.reg(), score = kb.reg(), dim = kb.reg();
  kb.ldp(img, 0);
  kb.ldp(score, 1);
  kb.ldp(dim, 2);

  Reg gx = kb.global_tid_x();
  Reg gy = kb.global_tid_y();
  Label done = kb.label();
  util::exit_if_ge(kb, gx, dim, done);
  util::exit_if_ge(kb, gy, dim, done);

  Reg dm1 = kb.reg();
  kb.isub(dm1, dim, imm(1));

  Reg a_c = util::elem_addr2d(kb, img, gy, dim, gx);
  Reg center = kb.reg();
  kb.ldg(center, a_c);

  Reg best = kb.reg();
  kb.movf(best, -1e30f);
  Reg sum = kb.reg(), sx = kb.reg(), sy = kb.reg(), v = kb.reg(),
      diff = kb.reg(), t = kb.reg(), a_s = kb.reg(), lin = kb.reg();
  for (const auto& d : kDirs) {
    kb.movf(sum, 0.0f);
    for (u32 r = 1; r <= kRadii; ++r) {
      // sx = clamp(gx + dx*r), sy = clamp(gy + dy*r)
      kb.iadd(t, gx, imm(d[0] * static_cast<i32>(r)));
      kb.imax(t, t, imm(0));
      kb.imin(sx, t, dm1);
      kb.iadd(t, gy, imm(d[1] * static_cast<i32>(r)));
      kb.imax(t, t, imm(0));
      kb.imin(sy, t, dm1);
      kb.imad(lin, sy, dim, sx);
      kb.imad(a_s, lin, imm(4), img);
      kb.ldg(v, a_s);
      kb.fsub(diff, v, center);
      kb.fadd(sum, sum, diff);
    }
    kb.fmax(best, best, sum);
  }
  Reg a_out = util::elem_addr2d(kb, score, gy, dim, gx);
  kb.stg(a_out, best);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

/// dilated[y][x] = max of score over the 5x5 neighbourhood (clamped).
isa::ProgramPtr build_dilate_kernel() {
  using namespace isa;
  KernelBuilder kb("leukocyte_dilate");

  Reg score = kb.reg(), out = kb.reg(), dim = kb.reg();
  kb.ldp(score, 0);
  kb.ldp(out, 1);
  kb.ldp(dim, 2);

  Reg gx = kb.global_tid_x();
  Reg gy = kb.global_tid_y();
  Label done = kb.label();
  util::exit_if_ge(kb, gx, dim, done);
  util::exit_if_ge(kb, gy, dim, done);

  Reg dm1 = kb.reg();
  kb.isub(dm1, dim, imm(1));

  Reg best = kb.reg();
  kb.movf(best, -1e30f);
  Reg sx = kb.reg(), sy = kb.reg(), v = kb.reg(), t = kb.reg(),
      a_s = kb.reg(), lin = kb.reg();
  for (i32 dy = -2; dy <= 2; ++dy) {
    for (i32 dx = -2; dx <= 2; ++dx) {
      kb.iadd(t, gx, imm(dx));
      kb.imax(t, t, imm(0));
      kb.imin(sx, t, dm1);
      kb.iadd(t, gy, imm(dy));
      kb.imax(t, t, imm(0));
      kb.imin(sy, t, dm1);
      kb.imad(lin, sy, dim, sx);
      kb.imad(a_s, lin, imm(4), score);
      kb.ldg(v, a_s);
      kb.fmax(best, best, v);
    }
  }
  Reg a_out = util::elem_addr2d(kb, out, gy, dim, gx);
  kb.stg(a_out, best);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Leukocyte::setup(Scale scale, u64 seed) {
  dim_ = scale == Scale::kTest ? 24 : 128;
  Rng rng(seed);

  image_.resize(static_cast<size_t>(dim_) * dim_);
  for (float& v : image_) v = rng.next_float(0.0f, 1.0f);

  auto clampi = [&](i32 v) {
    return static_cast<u32>(std::clamp(v, 0, static_cast<i32>(dim_) - 1));
  };
  // Reference GICOV scores.
  std::vector<float> score(image_.size());
  for (u32 y = 0; y < dim_; ++y) {
    for (u32 x = 0; x < dim_; ++x) {
      const float center = image_[y * dim_ + x];
      float best = -1e30f;
      for (const auto& d : kDirs) {
        float sum = 0.0f;
        for (u32 r = 1; r <= kRadii; ++r) {
          const u32 sx = clampi(static_cast<i32>(x) + d[0] * static_cast<i32>(r));
          const u32 sy = clampi(static_cast<i32>(y) + d[1] * static_cast<i32>(r));
          sum += image_[sy * dim_ + sx] - center;
        }
        best = std::max(best, sum);
      }
      score[y * dim_ + x] = best;
    }
  }
  // Reference dilation.
  reference_.resize(image_.size());
  for (u32 y = 0; y < dim_; ++y) {
    for (u32 x = 0; x < dim_; ++x) {
      float best = -1e30f;
      for (i32 dy = -2; dy <= 2; ++dy)
        for (i32 dx = -2; dx <= 2; ++dx) {
          const u32 sx = clampi(static_cast<i32>(x) + dx);
          const u32 sy = clampi(static_cast<i32>(y) + dy);
          best = std::max(best, score[sy * dim_ + sx]);
        }
      reference_[y * dim_ + x] = best;
    }
  }
  result_.clear();
}

void Leukocyte::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  // Rodinia leukocyte decodes video frames on the host first.
  session.device().host_parse(input_bytes() * 8);

  const u64 bytes = static_cast<u64>(dim_) * dim_ * 4;
  core::ReplicaPtr d_img = session.alloc(bytes);
  core::ReplicaPtr d_score = session.alloc(bytes);
  core::ReplicaPtr d_out = session.alloc(bytes);
  session.h2d(d_img, image_.data(), bytes);

  const u32 tiles = ceil_div(dim_, 16);
  session.launch(build_gicov_kernel(), sim::Dim3{tiles, tiles, 1},
                 sim::Dim3{16, 16, 1}, {d_img, d_score, dim_});
  session.launch(build_dilate_kernel(), sim::Dim3{tiles, tiles, 1},
                 sim::Dim3{16, 16, 1}, {d_score, d_out, dim_});
  session.sync();

  result_.resize(static_cast<size_t>(dim_) * dim_);
  session.d2h(result_.data(), d_out, bytes);
  session.compare(d_out, bytes, result_.data());
}

bool Leukocyte::verify() const { return approx_equal(result_, reference_); }

u64 Leukocyte::input_bytes() const { return static_cast<u64>(dim_) * dim_ * 4; }
u64 Leukocyte::output_bytes() const { return input_bytes(); }

}  // namespace higpu::workloads
