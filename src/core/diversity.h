// Diversity analysis for redundant kernel pairs (paper §IV.B/§IV.C).
//
// Two granularities:
//  * Block level (cheap, always available): for each logical thread block,
//    did the two copies run on different SMs (spatial diversity / permanent
//    CCF immunity) and in disjoint time intervals?
//  * Instruction level (opt-in via the trace sink): the minimum time
//    distance ("temporal slack") between corresponding instruction
//    executions of the two copies — the quantity that decides whether a
//    chip-wide transient (voltage droop) of a given duration can corrupt
//    both copies identically.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/kernel.h"
#include "sim/trace.h"

namespace higpu::core {

/// Block-granularity diversity verdict for one redundant pair.
struct DiversityReport {
  u32 blocks_checked = 0;
  /// Logical blocks whose two copies ran on the same SM (permanent-fault
  /// CCF exposure).
  u32 same_sm = 0;
  /// Logical blocks whose two copies overlapped in time on the same SM.
  u32 same_sm_time_overlap = 0;
  /// Logical blocks whose two copies overlapped in time at all (chip-wide
  /// transient CCF exposure at block granularity).
  u32 time_overlap = 0;

  bool spatially_diverse() const { return same_sm == 0; }
  bool temporally_disjoint() const { return time_overlap == 0; }

  bool operator==(const DiversityReport& other) const = default;
};

/// Analyze one redundant pair from the GPU's block records.
DiversityReport analyze_block_diversity(const std::vector<sim::BlockRecord>& records,
                                        u32 launch_a, u32 launch_b);

/// Merge helper when a workload launches several redundant pairs.
DiversityReport analyze_block_diversity(const std::vector<sim::BlockRecord>& records,
                                        const std::vector<std::pair<u32, u32>>& pairs);

/// Instruction-level trace collector. Subscribe with
/// gpu.set_trace_sink(&collector) before running; then call
/// min_temporal_slack() for each pair of launches.
class InstrTraceCollector final : public sim::ITraceSink {
 public:
  void record(u32 launch_id, u32 block_linear, u32 warp_in_block, u64 instr_seq,
              u32 sm, Cycle cycle) override;

  /// Summary of temporal slack between corresponding instruction instances.
  struct SlackReport {
    u64 instr_pairs = 0;
    Cycle min_slack = 0;      // min |t_a - t_b|
    double mean_slack = 0.0;
    /// # corresponding instruction pairs closer than `window` cycles —
    /// i.e. exposed to a droop of that duration.
    u64 exposed = 0;
  };
  SlackReport slack(u32 launch_a, u32 launch_b, Cycle window) const;

  /// Search for a droop window [start, end) of width <= max_width such that
  /// the *sets* of instruction instances of the two launches inside the
  /// window are identical. A chip-wide transient in such a window corrupts
  /// both copies identically — the undetectable CCF of §IV.C. Returns
  /// nullopt when no such window exists (what SRRS/HALF guarantee for
  /// widths below their slack).
  std::optional<std::pair<Cycle, Cycle>> find_identical_corruption_window(
      u32 launch_a, u32 launch_b, Cycle max_width) const;

  void clear();
  u64 size() const { return trace_.size(); }

 private:
  struct Key {
    u32 block;
    u32 warp;
    u64 seq;
    bool operator==(const Key& o) const {
      return block == o.block && warp == o.warp && seq == o.seq;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      u64 h = k.block * 0x9E3779B97F4A7C15ull;
      h ^= (static_cast<u64>(k.warp) << 32) + k.seq + (h << 6) + (h >> 2);
      return static_cast<size_t>(h * 0x2545F4914F6CDD1Dull);
    }
  };
  // launch id -> (key -> issue cycle)
  std::unordered_map<u32, std::unordered_map<Key, Cycle, KeyHash>> trace_;
};

}  // namespace higpu::core
