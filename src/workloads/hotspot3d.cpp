#include "workloads/hotspot3d.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr float kCxy = 0.08f;  // lateral conduction
constexpr float kCz = 0.04f;   // vertical conduction
constexpr float kCp = 0.03f;   // power injection

/// One thread per cell (1D launch over dim*dim*layers):
/// out = t + cxy*(tN+tS+tE+tW-4t) + cz*(tU+tD-2t) + cp*p, borders clamped.
isa::ProgramPtr build_hotspot3d_kernel() {
  using namespace isa;
  KernelBuilder kb("hotspot3d_step");

  Reg in = kb.reg(), out = kb.reg(), pw = kb.reg(), dim = kb.reg(),
      layers = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(out, 1);
  kb.ldp(pw, 2);
  kb.ldp(dim, 3);
  kb.ldp(layers, 4);

  Reg gid = kb.global_tid_x();
  Reg plane = kb.reg(), total = kb.reg();
  kb.imul(plane, dim, dim);
  kb.imul(total, plane, layers);
  Label done = kb.label();
  util::exit_if_ge(kb, gid, total, done);

  // Decompose gid -> (x, y, z). No integer div opcode, so use the identity
  // gid = z*plane + y*dim + x computed with iterative subtraction... instead
  // the launch uses dim that is a power of two, so shifts/masks suffice.
  // dim and plane are powers of two by construction (setup() enforces it).
  Reg x = kb.reg(), y = kb.reg(), z = kb.reg(), log_dim = kb.reg(),
      rem = kb.reg(), log_plane = kb.reg();
  kb.ldp(log_dim, 5);
  kb.ldp(log_plane, 6);
  kb.shr(z, gid, log_plane);
  Reg mask_plane = kb.reg();
  kb.isub(mask_plane, plane, imm(1));
  kb.and_(rem, gid, mask_plane);
  kb.shr(y, rem, log_dim);
  Reg mask_dim = kb.reg();
  kb.isub(mask_dim, dim, imm(1));
  kb.and_(x, rem, mask_dim);

  // Clamped neighbour coordinates.
  Reg dm1 = kb.reg(), lm1 = kb.reg(), t0 = kb.reg();
  kb.isub(dm1, dim, imm(1));
  kb.isub(lm1, layers, imm(1));
  Reg xm = kb.reg(), xp = kb.reg(), ym = kb.reg(), yp = kb.reg(),
      zm = kb.reg(), zp = kb.reg();
  kb.isub(t0, x, imm(1));
  kb.imax(xm, t0, imm(0));
  kb.iadd(t0, x, imm(1));
  kb.imin(xp, t0, dm1);
  kb.isub(t0, y, imm(1));
  kb.imax(ym, t0, imm(0));
  kb.iadd(t0, y, imm(1));
  kb.imin(yp, t0, dm1);
  kb.isub(t0, z, imm(1));
  kb.imax(zm, t0, imm(0));
  kb.iadd(t0, z, imm(1));
  kb.imin(zp, t0, lm1);

  auto addr3d = [&](Reg zz, Reg yy, Reg xx, Reg base) {
    Reg lin = kb.reg(), a = kb.reg();
    kb.imad(lin, zz, plane, xx);
    kb.imad(lin, yy, dim, lin);
    kb.imad(a, lin, imm(4), base);
    return a;
  };
  Reg a_c = addr3d(z, y, x, in);
  Reg a_n = addr3d(z, ym, x, in);
  Reg a_s = addr3d(z, yp, x, in);
  Reg a_e = addr3d(z, y, xp, in);
  Reg a_w = addr3d(z, y, xm, in);
  Reg a_u = addr3d(zp, y, x, in);
  Reg a_d = addr3d(zm, y, x, in);

  Reg t = kb.reg(), tn = kb.reg(), ts = kb.reg(), te = kb.reg(),
      tw = kb.reg(), tu = kb.reg(), td = kb.reg(), p = kb.reg();
  kb.ldg(t, a_c);
  kb.ldg(tn, a_n);
  kb.ldg(ts, a_s);
  kb.ldg(te, a_e);
  kb.ldg(tw, a_w);
  kb.ldg(tu, a_u);
  kb.ldg(td, a_d);
  Reg a_p = addr3d(z, y, x, pw);
  kb.ldg(p, a_p);

  Reg lat = kb.reg(), vert = kb.reg(), res = kb.reg();
  kb.fadd(lat, tn, ts);
  kb.fadd(lat, lat, te);
  kb.fadd(lat, lat, tw);
  kb.ffma(lat, t, fimm(-4.0f), lat);
  kb.fadd(vert, tu, td);
  kb.ffma(vert, t, fimm(-2.0f), vert);
  kb.ffma(res, lat, fimm(kCxy), t);
  kb.ffma(res, vert, fimm(kCz), res);
  kb.ffma(res, p, fimm(kCp), res);
  Reg a_o = addr3d(z, y, x, out);
  kb.stg(a_o, res);

  kb.bind(done);
  kb.exit();
  return kb.build();
}

u32 log2u(u32 v) {
  u32 l = 0;
  while ((1u << l) < v) ++l;
  return l;
}

}  // namespace

void Hotspot3d::setup(Scale scale, u64 seed) {
  dim_ = scale == Scale::kTest ? 16 : 64;  // power of two (kernel relies on it)
  layers_ = scale == Scale::kTest ? 4 : 8;
  steps_ = scale == Scale::kTest ? 2 : 8;
  Rng rng(seed);

  const u32 n = dim_ * dim_ * layers_;
  temp_.resize(n);
  power_.resize(n);
  for (u32 i = 0; i < n; ++i) {
    temp_[i] = rng.next_float(320.0f, 340.0f);
    power_[i] = rng.next_float(0.0f, 1.0f);
  }

  const u32 plane = dim_ * dim_;
  auto clampi = [](i32 v, i32 lo, i32 hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  std::vector<float> cur = temp_, next(n);
  for (u32 s = 0; s < steps_; ++s) {
    for (u32 z = 0; z < layers_; ++z) {
      for (u32 y = 0; y < dim_; ++y) {
        for (u32 x = 0; x < dim_; ++x) {
          const u32 i = z * plane + y * dim_ + x;
          const float t = cur[i];
          auto at = [&](i32 zz, i32 yy, i32 xx) {
            zz = clampi(zz, 0, static_cast<i32>(layers_) - 1);
            yy = clampi(yy, 0, static_cast<i32>(dim_) - 1);
            xx = clampi(xx, 0, static_cast<i32>(dim_) - 1);
            return cur[static_cast<u32>(zz) * plane +
                       static_cast<u32>(yy) * dim_ + static_cast<u32>(xx)];
          };
          float lat = at(z, y - 1, x) + at(z, y + 1, x);
          lat += at(z, y, x + 1);
          lat += at(z, y, x - 1);
          lat = std::fma(t, -4.0f, lat);
          float vert = at(z + 1, y, x) + at(z - 1, y, x);
          vert = std::fma(t, -2.0f, vert);
          float res = std::fma(lat, kCxy, t);
          res = std::fma(vert, kCz, res);
          res = std::fma(power_[i], kCp, res);
          next[i] = res;
        }
      }
    }
    std::swap(cur, next);
  }
  reference_ = cur;
  result_.clear();
}

void Hotspot3d::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_parse(input_bytes() * 6);  // text input files

  const u32 n = dim_ * dim_ * layers_;
  const u64 bytes = static_cast<u64>(n) * 4;
  core::ReplicaPtr buf_a = session.alloc(bytes);
  core::ReplicaPtr buf_b = session.alloc(bytes);
  core::ReplicaPtr pw = session.alloc(bytes);
  session.h2d(buf_a, temp_.data(), bytes);
  session.h2d(pw, power_.data(), bytes);

  isa::ProgramPtr prog = build_hotspot3d_kernel();
  const u32 blocks = ceil_div(n, 256);
  core::ReplicaPtr in = buf_a, out = buf_b;
  for (u32 s = 0; s < steps_; ++s) {
    session.launch(prog, sim::Dim3{blocks, 1, 1}, sim::Dim3{256, 1, 1},
                   {in, out, pw, dim_, layers_, log2u(dim_), log2u(dim_ * dim_)});
    std::swap(in, out);
  }
  session.sync();

  result_.resize(n);
  session.d2h(result_.data(), in, bytes);
  session.compare(in, bytes, result_.data());
}

bool Hotspot3d::verify() const { return approx_equal(result_, reference_); }

u64 Hotspot3d::input_bytes() const {
  return 2ull * dim_ * dim_ * layers_ * 4;
}
u64 Hotspot3d::output_bytes() const {
  return 1ull * dim_ * dim_ * layers_ * 4;
}

}  // namespace higpu::workloads
