#include "workloads/nn.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

/// dist[i] = sqrt((lat[i]-qlat)^2 + (lng[i]-qlng)^2)
isa::ProgramPtr build_nn_kernel() {
  using namespace isa;
  KernelBuilder kb("nn_distance");

  Reg lat = kb.reg(), lng = kb.reg(), dist = kb.reg(), n = kb.reg(),
      qlat = kb.reg(), qlng = kb.reg();
  kb.ldp(lat, 0);
  kb.ldp(lng, 1);
  kb.ldp(dist, 2);
  kb.ldp(n, 3);
  kb.ldp(qlat, 4);
  kb.ldp(qlng, 5);

  Reg tid = kb.global_tid_x();
  Label done = kb.label();
  util::exit_if_ge(kb, tid, n, done);

  Reg a_lat = util::elem_addr(kb, lat, tid);
  Reg a_lng = util::elem_addr(kb, lng, tid);
  Reg v_lat = kb.reg(), v_lng = kb.reg();
  kb.ldg(v_lat, a_lat);
  kb.ldg(v_lng, a_lng);
  Reg dx = kb.reg(), dy = kb.reg(), d2 = kb.reg(), d = kb.reg();
  kb.fsub(dx, v_lat, qlat);
  kb.fsub(dy, v_lng, qlng);
  kb.fmul(d2, dx, dx);
  kb.ffma(d2, dy, dy, d2);
  kb.fsqrt(d, d2);
  Reg a_d = util::elem_addr(kb, dist, tid);
  kb.stg(a_d, d);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void Nn::setup(Scale scale, u64 seed) {
  n_ = scale == Scale::kTest ? 2048 : 65536;
  Rng rng(seed);
  query_lat_ = rng.next_float(0.0f, 90.0f);
  query_lng_ = rng.next_float(0.0f, 180.0f);
  lat_.resize(n_);
  lng_.resize(n_);
  reference_.resize(n_);
  for (u32 i = 0; i < n_; ++i) {
    lat_[i] = rng.next_float(0.0f, 90.0f);
    lng_[i] = rng.next_float(0.0f, 180.0f);
    const float dx = lat_[i] - query_lat_;
    const float dy = lng_[i] - query_lng_;
    reference_[i] = std::sqrt(std::fma(dy, dy, dx * dx));
  }
  result_.clear();
}

void Nn::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_parse(input_bytes() * 8);  // hurricane record text database

  const u64 bytes = static_cast<u64>(n_) * 4;
  core::ReplicaPtr d_lat = session.alloc(bytes);
  core::ReplicaPtr d_lng = session.alloc(bytes);
  core::ReplicaPtr d_dist = session.alloc(bytes);
  session.h2d(d_lat, lat_.data(), bytes);
  session.h2d(d_lng, lng_.data(), bytes);

  session.launch(build_nn_kernel(), sim::Dim3{ceil_div(n_, 256), 1, 1},
                 sim::Dim3{256, 1, 1},
                 {d_lat, d_lng, d_dist, n_, query_lat_, query_lng_});
  session.sync();

  result_.resize(n_);
  session.d2h(result_.data(), d_dist, bytes);
  session.compare(d_dist, bytes, result_.data());
  // Host scans the distances for the top match.
  session.device().host_compute(bytes);
}

bool Nn::verify() const { return approx_equal(result_, reference_); }

u64 Nn::input_bytes() const { return 2ull * n_ * 4; }
u64 Nn::output_bytes() const { return static_cast<u64>(n_) * 4; }

}  // namespace higpu::workloads
