#include "memsys/coalescer.h"

#include <algorithm>

namespace higpu::memsys {

std::vector<u64> coalesce(const std::vector<u64>& byte_addrs, u32 line_bytes) {
  std::vector<u64> lines;
  coalesce_into(byte_addrs, line_bytes, lines);
  return lines;
}

void coalesce_into(const std::vector<u64>& byte_addrs, u32 line_bytes,
                   std::vector<u64>& lines) {
  // Sort + unique instead of a per-element linear scan: inputs are
  // warp-sized (<= 32) but this runs once per memory instruction, and the
  // O(n^2) std::find dedup showed up in memory-bound profiles.
  lines.clear();
  for (u64 a : byte_addrs) lines.push_back(a / line_bytes);
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
}

u32 smem_conflict_degree(const std::vector<u64>& byte_addrs, u32 num_banks) {
  if (byte_addrs.empty()) return 1;
  // Distinct words via sort + unique (broadcast of one word is free).
  std::vector<u64> words;
  words.reserve(byte_addrs.size());
  for (u64 a : byte_addrs) words.push_back(a / 4);
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());

  std::vector<u32> per_bank(num_banks, 0);
  u32 worst = 1;
  for (u64 w : words) {
    const u32 bank = static_cast<u32>(w % num_banks);
    worst = std::max(worst, ++per_bank[bank]);
  }
  return worst;
}

}  // namespace higpu::memsys
