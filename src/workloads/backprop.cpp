#include "workloads/backprop.h"

#include <cmath>

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr float kLearnRate = 0.3f;

/// Layer-forward partial sums. Block = 16x16 (ty = input row within chunk,
/// tx = hidden unit). shared[ty][tx] = in[row] * w[row][tx]; tree-reduce
/// over ty; thread row 0 writes partial[block][tx].
isa::ProgramPtr build_layerforward() {
  using namespace isa;
  KernelBuilder kb("bp_layerforward");
  kb.set_shared_bytes(16 * 16 * 4);

  Reg in = kb.reg(), w = kb.reg(), partial = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(w, 1);
  kb.ldp(partial, 2);

  Reg tx = kb.reg(), ty = kb.reg(), cta = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);
  kb.s2r(cta, SReg::kCtaIdX);

  // row = cta*16 + ty
  Reg row = kb.reg();
  kb.imad(row, cta, imm(16), ty);

  // shared[ty*16+tx] = in[row] * w[row*16+tx]
  Reg a_in = util::elem_addr(kb, in, row);
  Reg v_in = kb.reg();
  kb.ldg(v_in, a_in);
  Reg a_w = util::elem_addr2d(kb, w, row, imm(16), tx);
  Reg v_w = kb.reg(), prod = kb.reg();
  kb.ldg(v_w, a_w);
  kb.fmul(prod, v_in, v_w);

  Reg sh_idx = kb.reg(), sh_addr = kb.reg();
  kb.imad(sh_idx, ty, imm(16), tx);
  kb.imul(sh_addr, sh_idx, imm(4));
  kb.sts(sh_addr, prod);
  kb.bar();

  // Tree reduction over ty: s = 8,4,2,1.
  Reg other = kb.reg(), mine = kb.reg(), oaddr = kb.reg();
  for (u32 s = 8; s >= 1; s /= 2) {
    PredReg active = kb.pred();
    kb.setp(active, CmpOp::kLt, DType::kI32, ty, imm(static_cast<i32>(s)));
    // other = shared[(ty+s)*16+tx]; mine = shared[ty*16+tx]; mine += other
    kb.iadd(oaddr, sh_addr, imm(static_cast<i32>(s * 16 * 4))).guard_if(active);
    kb.lds(other, oaddr).guard_if(active);
    kb.lds(mine, sh_addr).guard_if(active);
    kb.fadd(mine, mine, other).guard_if(active);
    kb.sts(sh_addr, mine).guard_if(active);
    kb.bar();
  }

  // partial[cta*16 + tx] = shared[tx] (row 0)
  PredReg is_row0 = kb.pred();
  kb.setp(is_row0, CmpOp::kEq, DType::kI32, ty, imm(0));
  Reg out_idx = kb.reg(), out_addr = kb.reg(), result = kb.reg(),
      tx4 = kb.reg();
  kb.imad(out_idx, cta, imm(16), tx).guard_if(is_row0);
  kb.imad(out_addr, out_idx, imm(4), partial).guard_if(is_row0);
  kb.imul(tx4, tx, imm(4)).guard_if(is_row0);
  kb.lds(result, tx4).guard_if(is_row0);
  kb.stg(out_addr, result).guard_if(is_row0);
  kb.exit();
  return kb.build();
}

/// Weight adjustment: w[row][tx] += lr * delta[tx] * in[row].
isa::ProgramPtr build_adjust_weights() {
  using namespace isa;
  KernelBuilder kb("bp_adjust_weights");

  Reg in = kb.reg(), w = kb.reg(), delta = kb.reg();
  kb.ldp(in, 0);
  kb.ldp(w, 1);
  kb.ldp(delta, 2);

  Reg tx = kb.reg(), ty = kb.reg(), cta = kb.reg();
  kb.s2r(tx, SReg::kTidX);
  kb.s2r(ty, SReg::kTidY);
  kb.s2r(cta, SReg::kCtaIdX);
  Reg row = kb.reg();
  kb.imad(row, cta, imm(16), ty);

  Reg a_in = util::elem_addr(kb, in, row);
  Reg a_d = util::elem_addr(kb, delta, tx);
  Reg a_w = util::elem_addr2d(kb, w, row, imm(16), tx);
  Reg v_in = kb.reg(), v_d = kb.reg(), v_w = kb.reg(), step = kb.reg();
  kb.ldg(v_in, a_in);
  kb.ldg(v_d, a_d);
  kb.ldg(v_w, a_w);
  kb.fmul(step, v_d, v_in);
  kb.ffma(v_w, step, fimm(kLearnRate), v_w);
  kb.stg(a_w, v_w);
  kb.exit();
  return kb.build();
}

}  // namespace

void Backprop::setup(Scale scale, u64 seed) {
  n_in_ = scale == Scale::kTest ? 256 : 4096;
  Rng rng(seed);

  input_.resize(n_in_);
  weights_.resize(static_cast<size_t>(n_in_) * kHidden);
  delta_.resize(kHidden);
  for (float& v : input_) v = rng.next_float(-1.0f, 1.0f);
  for (float& v : weights_) v = rng.next_float(-0.5f, 0.5f);
  for (float& v : delta_) v = rng.next_float(-0.1f, 0.1f);

  // Reference partial sums, mirroring the kernel's tree-reduction order.
  const u32 chunks = n_in_ / 16;
  ref_partial_.assign(static_cast<size_t>(chunks) * kHidden, 0.0f);
  for (u32 b = 0; b < chunks; ++b) {
    for (u32 tx = 0; tx < kHidden; ++tx) {
      float v[16];
      for (u32 ty = 0; ty < 16; ++ty) {
        const u32 row = b * 16 + ty;
        v[ty] = input_[row] * weights_[static_cast<size_t>(row) * 16 + tx];
      }
      for (u32 s = 8; s >= 1; s /= 2)
        for (u32 ty = 0; ty < s; ++ty) v[ty] += v[ty + s];
      ref_partial_[static_cast<size_t>(b) * 16 + tx] = v[0];
    }
  }

  // Reference adjusted weights.
  ref_weights_ = weights_;
  for (u32 row = 0; row < n_in_; ++row)
    for (u32 tx = 0; tx < kHidden; ++tx)
      ref_weights_[static_cast<size_t>(row) * 16 + tx] = std::fma(
          delta_[tx] * input_[row], kLearnRate,
          ref_weights_[static_cast<size_t>(row) * 16 + tx]);

  got_partial_.clear();
  got_weights_.clear();
}

void Backprop::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  // Rodinia backprop synthesizes inputs and runs several CPU training
  // phases (output layer, hidden error) around the offloaded kernels.
  session.device().host_generate(input_bytes());
  session.device().host_compute(8 * input_bytes());

  const u32 chunks = n_in_ / 16;
  const u64 in_bytes = static_cast<u64>(n_in_) * 4;
  const u64 w_bytes = static_cast<u64>(n_in_) * kHidden * 4;
  const u64 partial_bytes = static_cast<u64>(chunks) * kHidden * 4;

  core::ReplicaPtr d_in = session.alloc(in_bytes);
  core::ReplicaPtr d_w = session.alloc(w_bytes);
  core::ReplicaPtr d_delta = session.alloc(kHidden * 4);
  core::ReplicaPtr d_partial = session.alloc(partial_bytes);
  session.h2d(d_in, input_.data(), in_bytes);
  session.h2d(d_w, weights_.data(), w_bytes);
  session.h2d(d_delta, delta_.data(), kHidden * 4);

  session.launch(build_layerforward(), sim::Dim3{chunks, 1, 1},
                 sim::Dim3{16, 16, 1}, {d_in, d_w, d_partial});
  session.launch(build_adjust_weights(), sim::Dim3{chunks, 1, 1},
                 sim::Dim3{16, 16, 1}, {d_in, d_w, d_delta});
  session.sync();

  got_partial_.resize(ref_partial_.size());
  got_weights_.resize(ref_weights_.size());
  session.d2h(got_partial_.data(), d_partial, partial_bytes);
  session.d2h(got_weights_.data(), d_w, w_bytes);
  session.compare(d_partial, partial_bytes, got_partial_.data());
  session.compare(d_w, w_bytes, got_weights_.data());
}

bool Backprop::verify() const {
  return approx_equal(got_partial_, ref_partial_) &&
         approx_equal(got_weights_, ref_weights_);
}

u64 Backprop::input_bytes() const {
  return static_cast<u64>(n_in_) * 4 * (1 + kHidden);
}
u64 Backprop::output_bytes() const {
  return static_cast<u64>(n_in_ / 16) * kHidden * 4 +
         static_cast<u64>(n_in_) * kHidden * 4;
}

}  // namespace higpu::workloads
