#include "serve/traffic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace higpu::serve {

const char* pattern_name(TrafficSpec::Pattern p) {
  switch (p) {
    case TrafficSpec::Pattern::kPeriodic: return "periodic";
    case TrafficSpec::Pattern::kPoisson: return "poisson";
    case TrafficSpec::Pattern::kBursty: return "bursty";
    case TrafficSpec::Pattern::kTrace: return "trace";
  }
  return "?";
}

namespace {

/// Exponential inter-arrival draw at `rate_rps`, in whole nanoseconds.
/// next_float() is in [0, 1), so 1 - u is in (0, 1] and log() never sees 0.
u64 exp_gap_ns(Rng& rng, double rate_rps) {
  const double u = 1.0 - static_cast<double>(rng.next_float());
  const double gap = -std::log(u) / rate_rps * 1e9;
  return static_cast<u64>(gap);
}

/// Weighted tenant draw (weights are small integers; total fits u64).
u32 pick_tenant(Rng& rng, const std::vector<TenantSpec>& tenants) {
  u64 total = 0;
  for (const TenantSpec& t : tenants) total += t.weight;
  u64 r = rng.next_below(total);
  for (u32 i = 0; i < tenants.size(); ++i) {
    const u64 w = tenants[i].weight;
    if (r < w) return i;
    r -= w;
  }
  return static_cast<u32>(tenants.size() - 1);
}

}  // namespace

void TrafficSpec::validate() const {
  if (tenants.empty())
    throw std::invalid_argument("TrafficSpec: tenants must not be empty");
  std::set<std::string> names;
  for (const TenantSpec& t : tenants) {
    if (t.name.empty())
      throw std::invalid_argument("TenantSpec: name must not be empty");
    if (!names.insert(t.name).second)
      throw std::invalid_argument("TenantSpec: duplicate tenant name '" +
                                  t.name + "'");
    if (!workloads::is_known(t.workload))
      throw std::invalid_argument(
          workloads::unknown_workload_message(t.workload));
    if (t.weight == 0)
      throw std::invalid_argument("TenantSpec '" + t.name +
                                  "': weight must be > 0");
    if (t.deadline_ns == 0)
      throw std::invalid_argument("TenantSpec '" + t.name +
                                  "': deadline_ns must be > 0");
  }
  if (pattern == Pattern::kTrace) {
    for (const Request& r : trace)
      if (r.tenant >= tenants.size())
        throw std::invalid_argument(
            "TrafficSpec: trace tenant index out of range");
    return;
  }
  if (!(offered_rps > 0.0))
    throw std::invalid_argument("TrafficSpec: offered_rps must be > 0");
  if (duration_ns == 0 && max_requests == 0)
    throw std::invalid_argument(
        "TrafficSpec: need duration_ns or max_requests");
  if (pattern == Pattern::kBursty) {
    if (!(burst_factor > 1.0))
      throw std::invalid_argument("TrafficSpec: burst_factor must be > 1");
    if (!(burst_fraction > 0.0) || !(burst_fraction < 1.0))
      throw std::invalid_argument(
          "TrafficSpec: burst_fraction must be in (0, 1)");
  }
}

std::vector<Request> TrafficSpec::generate() const {
  validate();

  std::vector<Request> out;
  if (pattern == Pattern::kTrace) {
    out = trace;
    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                       return a.arrival_ns < b.arrival_ns;
                     });
    for (u32 i = 0; i < out.size(); ++i) {
      out[i].id = i;
      out[i].deadline_ns =
          out[i].arrival_ns + tenants[out[i].tenant].deadline_ns;
    }
    return out;
  }

  Rng rng(seed ^ 0x5EB7E5EEDull);
  const u64 period_ns = static_cast<u64>(1e9 / offered_rps);
  // kBursty alternates deterministic hot/quiet phases; phase lengths are
  // fixed by the spec, only arrivals within a phase are random.
  const u64 phase_ns = std::max<u64>(1, duration_ns == 0
                                            ? period_ns * 16
                                            : duration_ns / 8);
  const u64 hot_ns = static_cast<u64>(static_cast<double>(phase_ns) *
                                      burst_fraction);

  u64 t = 0;
  while (true) {
    switch (pattern) {
      case Pattern::kPeriodic:
        t += period_ns;
        break;
      case Pattern::kPoisson:
        t += exp_gap_ns(rng, offered_rps);
        break;
      case Pattern::kBursty: {
        const bool hot = (t % phase_ns) < hot_ns;
        t += exp_gap_ns(rng, hot ? offered_rps * burst_factor
                                 : offered_rps / burst_factor);
        break;
      }
      case Pattern::kTrace:
        break;  // unreachable (handled above)
    }
    if (duration_ns != 0 && t > duration_ns) break;
    if (max_requests != 0 && out.size() >= max_requests) break;
    Request r;
    r.id = static_cast<u32>(out.size());
    r.tenant = tenants.size() == 1 ? 0 : pick_tenant(rng, tenants);
    r.arrival_ns = t;
    r.deadline_ns = t + tenants[r.tenant].deadline_ns;
    out.push_back(r);
    if (max_requests != 0 && out.size() >= max_requests) break;
  }
  return out;
}

std::string TrafficSpec::label() const {
  std::ostringstream os;
  os << pattern_name(pattern);
  if (pattern != Pattern::kTrace)
    os << ":rps" << static_cast<u64>(offered_rps);
  os << ":seed" << seed << ":t" << tenants.size();
  return os.str();
}

std::string TrafficSpec::format_trace(
    const std::vector<Request>& requests) const {
  std::ostringstream os;
  os << "# higpu serve trace: arrival_ns tenant_name\n";
  for (const Request& r : requests)
    os << r.arrival_ns << ' ' << tenants[r.tenant].name << '\n';
  return os.str();
}

std::vector<Request> TrafficSpec::parse_trace(const std::string& text) const {
  std::vector<Request> out;
  std::istringstream is(text);
  std::string line;
  u32 lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    u64 arrival = 0;
    std::string name;
    if (!(ls >> arrival >> name))
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": expected 'arrival_ns tenant_name'");
    u32 tenant = static_cast<u32>(tenants.size());
    for (u32 i = 0; i < tenants.size(); ++i)
      if (tenants[i].name == name) tenant = i;
    if (tenant == tenants.size())
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": unknown tenant '" + name + "'");
    Request r;
    r.id = static_cast<u32>(out.size());
    r.tenant = tenant;
    r.arrival_ns = arrival;
    r.deadline_ns = arrival + tenants[tenant].deadline_ns;
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_ns < b.arrival_ns;
                   });
  for (u32 i = 0; i < out.size(); ++i) out[i].id = i;
  return out;
}

}  // namespace higpu::serve
