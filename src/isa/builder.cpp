#include "isa/builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "isa/cfg.h"

namespace higpu::isa {

namespace {
constexpr Pc kUnbound = 0xFFFFFFFF;
}

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name)) {}

Reg KernelBuilder::reg() {
  // Always-on budget check (formerly an NDEBUG-masked assert): handing out
  // an over-budget handle would silently corrupt a neighboring thread's
  // register file at runtime — the PR-6 masked-assert defect class.
  if (next_reg_ >= 255)
    throw std::logic_error("kernel '" + name_ + "': register budget exceeded");
  return Reg{next_reg_++};
}

PredReg KernelBuilder::pred() {
  if (next_pred_ >= 8)
    throw std::logic_error("kernel '" + name_ + "': predicate budget exceeded");
  return PredReg{next_pred_++};
}

Label KernelBuilder::label() {
  Label l{static_cast<u32>(label_pc_.size())};
  label_pc_.push_back(kUnbound);
  return l;
}

void KernelBuilder::bind(Label l) {
  assert(l.valid() && l.id < label_pc_.size());
  assert(label_pc_[l.id] == kUnbound && "label bound twice");
  label_pc_[l.id] = here();
}

Instruction& KernelBuilder::emit(Instruction ins) {
  assert(!built_);
  code_.push_back(ins);
  return code_.back();
}

Instruction& KernelBuilder::alu2(Op op, Reg d, Operand a, Operand b) {
  Instruction ins;
  ins.op = op;
  ins.dst = d.idx;
  ins.src[0] = a;
  ins.src[1] = b;
  return emit(ins);
}

Instruction& KernelBuilder::alu3(Op op, Reg d, Operand a, Operand b, Operand c) {
  Instruction ins;
  ins.op = op;
  ins.dst = d.idx;
  ins.src[0] = a;
  ins.src[1] = b;
  ins.src[2] = c;
  return emit(ins);
}

Instruction& KernelBuilder::mov(Reg d, Operand a) {
  Instruction ins;
  ins.op = Op::kMov;
  ins.dst = d.idx;
  ins.src[0] = a;
  return emit(ins);
}

Instruction& KernelBuilder::ldp(Reg d, u32 param_index) {
  Instruction ins;
  ins.op = Op::kLdp;
  ins.dst = d.idx;
  ins.src[0] = immu(param_index);
  if (param_index + 1 > max_param_) max_param_ = param_index + 1;
  return emit(ins);
}

Instruction& KernelBuilder::s2r(Reg d, SReg s) {
  Instruction ins;
  ins.op = Op::kS2r;
  ins.dst = d.idx;
  ins.sreg = s;
  return emit(ins);
}

Instruction& KernelBuilder::iadd(Reg d, Operand a, Operand b) { return alu2(Op::kIadd, d, a, b); }
Instruction& KernelBuilder::isub(Reg d, Operand a, Operand b) { return alu2(Op::kIsub, d, a, b); }
Instruction& KernelBuilder::imul(Reg d, Operand a, Operand b) { return alu2(Op::kImul, d, a, b); }
Instruction& KernelBuilder::imad(Reg d, Operand a, Operand b, Operand c) { return alu3(Op::kImad, d, a, b, c); }
Instruction& KernelBuilder::imin(Reg d, Operand a, Operand b) { return alu2(Op::kImin, d, a, b); }
Instruction& KernelBuilder::imax(Reg d, Operand a, Operand b) { return alu2(Op::kImax, d, a, b); }
Instruction& KernelBuilder::and_(Reg d, Operand a, Operand b) { return alu2(Op::kAnd, d, a, b); }
Instruction& KernelBuilder::or_(Reg d, Operand a, Operand b) { return alu2(Op::kOr, d, a, b); }
Instruction& KernelBuilder::xor_(Reg d, Operand a, Operand b) { return alu2(Op::kXor, d, a, b); }
Instruction& KernelBuilder::not_(Reg d, Operand a) { return alu2(Op::kNot, d, a, Operand{}); }
Instruction& KernelBuilder::shl(Reg d, Operand a, Operand b) { return alu2(Op::kShl, d, a, b); }
Instruction& KernelBuilder::shr(Reg d, Operand a, Operand b) { return alu2(Op::kShr, d, a, b); }
Instruction& KernelBuilder::sra(Reg d, Operand a, Operand b) { return alu2(Op::kSra, d, a, b); }

Instruction& KernelBuilder::fadd(Reg d, Operand a, Operand b) { return alu2(Op::kFadd, d, a, b); }
Instruction& KernelBuilder::fsub(Reg d, Operand a, Operand b) { return alu2(Op::kFsub, d, a, b); }
Instruction& KernelBuilder::fmul(Reg d, Operand a, Operand b) { return alu2(Op::kFmul, d, a, b); }
Instruction& KernelBuilder::ffma(Reg d, Operand a, Operand b, Operand c) { return alu3(Op::kFfma, d, a, b, c); }
Instruction& KernelBuilder::fmin(Reg d, Operand a, Operand b) { return alu2(Op::kFmin, d, a, b); }
Instruction& KernelBuilder::fmax(Reg d, Operand a, Operand b) { return alu2(Op::kFmax, d, a, b); }
Instruction& KernelBuilder::fabs_(Reg d, Operand a) { return alu2(Op::kFabs, d, a, Operand{}); }
Instruction& KernelBuilder::fneg(Reg d, Operand a) { return alu2(Op::kFneg, d, a, Operand{}); }
Instruction& KernelBuilder::fdiv(Reg d, Operand a, Operand b) { return alu2(Op::kFdiv, d, a, b); }
Instruction& KernelBuilder::fsqrt(Reg d, Operand a) { return alu2(Op::kFsqrt, d, a, Operand{}); }
Instruction& KernelBuilder::frcp(Reg d, Operand a) { return alu2(Op::kFrcp, d, a, Operand{}); }
Instruction& KernelBuilder::fexp(Reg d, Operand a) { return alu2(Op::kFexp, d, a, Operand{}); }
Instruction& KernelBuilder::flog(Reg d, Operand a) { return alu2(Op::kFlog, d, a, Operand{}); }
Instruction& KernelBuilder::fsin(Reg d, Operand a) { return alu2(Op::kFsin, d, a, Operand{}); }
Instruction& KernelBuilder::fcos(Reg d, Operand a) { return alu2(Op::kFcos, d, a, Operand{}); }
Instruction& KernelBuilder::i2f(Reg d, Operand a) { return alu2(Op::kI2f, d, a, Operand{}); }
Instruction& KernelBuilder::f2i(Reg d, Operand a) { return alu2(Op::kF2i, d, a, Operand{}); }

Instruction& KernelBuilder::setp(PredReg p, CmpOp c, DType t, Operand a, Operand b) {
  Instruction ins;
  ins.op = Op::kSetp;
  ins.dst = static_cast<u16>(p.idx);
  ins.cmp = c;
  ins.dtype = t;
  ins.src[0] = a;
  ins.src[1] = b;
  return emit(ins);
}

Instruction& KernelBuilder::setp_and(PredReg p, CmpOp c, DType t, Operand a,
                                     Operand b, PredReg q) {
  Instruction& ins = setp(p, c, t, a, b);
  ins.pred_src = q.idx;
  return ins;
}

Instruction& KernelBuilder::selp(Reg d, Operand a, Operand b, PredReg p) {
  Instruction ins;
  ins.op = Op::kSelp;
  ins.dst = d.idx;
  ins.src[0] = a;
  ins.src[1] = b;
  ins.pred_src = p.idx;
  return emit(ins);
}

Instruction& KernelBuilder::bra(Label l) {
  assert(l.valid());
  Instruction ins;
  ins.op = Op::kBra;
  Instruction& ref = emit(ins);
  branch_fixups_.emplace_back(static_cast<Pc>(code_.size() - 1), l.id);
  return ref;
}

Instruction& KernelBuilder::exit() {
  Instruction ins;
  ins.op = Op::kExit;
  return emit(ins);
}

Instruction& KernelBuilder::bar() {
  Instruction ins;
  ins.op = Op::kBar;
  return emit(ins);
}

Instruction& KernelBuilder::ldg(Reg d, Operand addr, i32 byte_offset) {
  Instruction ins;
  ins.op = Op::kLdg;
  ins.dst = d.idx;
  ins.src[0] = addr;
  ins.mem_offset = byte_offset;
  return emit(ins);
}

Instruction& KernelBuilder::stg(Operand addr, Operand value, i32 byte_offset) {
  Instruction ins;
  ins.op = Op::kStg;
  ins.src[0] = addr;
  ins.src[1] = value;
  ins.mem_offset = byte_offset;
  return emit(ins);
}

Instruction& KernelBuilder::lds(Reg d, Operand addr, i32 byte_offset) {
  Instruction ins;
  ins.op = Op::kLds;
  ins.dst = d.idx;
  ins.src[0] = addr;
  ins.mem_offset = byte_offset;
  return emit(ins);
}

Instruction& KernelBuilder::sts(Operand addr, Operand value, i32 byte_offset) {
  Instruction ins;
  ins.op = Op::kSts;
  ins.src[0] = addr;
  ins.src[1] = value;
  ins.mem_offset = byte_offset;
  return emit(ins);
}

Instruction& KernelBuilder::atom_add(Reg d, Operand addr, Operand value, i32 byte_offset) {
  Instruction ins;
  ins.op = Op::kAtomAdd;
  ins.dst = d.idx;
  ins.src[0] = addr;
  ins.src[1] = value;
  ins.mem_offset = byte_offset;
  return emit(ins);
}

Reg KernelBuilder::global_tid_x() {
  Reg tid = reg(), ctaid = reg(), ntid = reg(), gid = reg();
  s2r(tid, SReg::kTidX);
  s2r(ctaid, SReg::kCtaIdX);
  s2r(ntid, SReg::kNTidX);
  imad(gid, ctaid, ntid, tid);
  return gid;
}

Reg KernelBuilder::global_tid_y() {
  Reg tid = reg(), ctaid = reg(), ntid = reg(), gid = reg();
  s2r(tid, SReg::kTidY);
  s2r(ctaid, SReg::kCtaIdY);
  s2r(ntid, SReg::kNTidY);
  imad(gid, ctaid, ntid, tid);
  return gid;
}

void KernelBuilder::guard_range(Reg v, Operand bound, Label exit_label) {
  PredReg p = pred();
  setp(p, CmpOp::kGe, DType::kI32, v, bound);
  bra(exit_label).guard_if(p);
}

ProgramPtr KernelBuilder::build() {
  assert(!built_);
  built_ = true;
  if (code_.empty() || (code_.back().op != Op::kExit &&
                        (code_.back().op != Op::kBra || code_.back().guard != kNoPred))) {
    throw std::logic_error("kernel '" + name_ + "': program must end in exit or unconditional bra");
  }

  // Resolve labels.
  for (auto [pc, label_id] : branch_fixups_) {
    const Pc target = label_pc_[label_id];
    if (target == kUnbound)
      throw std::logic_error("kernel '" + name_ + "': branch to unbound label");
    code_[pc].target = target;
  }

  // Structural validation.
  for (const Instruction& ins : code_) {
    if ((ins.op == Op::kExit || ins.op == Op::kBar) && ins.guard != kNoPred)
      throw std::logic_error("kernel '" + name_ + "': exit/bar must be unguarded");
  }

  // Reconvergence points for potentially-divergent (guarded) branches.
  Cfg cfg(code_);
  for (Pc pc = 0; pc < code_.size(); ++pc) {
    Instruction& ins = code_[pc];
    if (ins.op == Op::kBra)
      ins.reconv_pc = cfg.reconv_pc_for_branch(pc);
  }

  // Accurate register-file sizes: the allocation counters, raised to cover
  // any index an instruction actually references — call sites can hand-edit
  // emitted Instructions through the returned references, and the verifier
  // and per-thread register-file allocation both trust these counts.
  u32 regs = next_reg_;
  u32 preds = next_pred_ > 0 ? static_cast<u32>(next_pred_) : 0;
  for (const Instruction& ins : code_) {
    if (writes_gpr(ins.op) && ins.dst != kNoReg)
      regs = std::max(regs, static_cast<u32>(ins.dst) + 1);
    for (const Operand& o : ins.src)
      if (o.is_reg() && o.reg != kNoReg)
        regs = std::max(regs, static_cast<u32>(o.reg) + 1);
    if (writes_pred(ins.op) && ins.dst != static_cast<u16>(kNoPred))
      preds = std::max(preds, static_cast<u32>(ins.dst) + 1);
    if (ins.guard != kNoPred)
      preds = std::max(preds, static_cast<u32>(ins.guard) + 1);
    if ((ins.op == Op::kSelp || ins.op == Op::kSetp) && ins.pred_src != kNoPred)
      preds = std::max(preds, static_cast<u32>(ins.pred_src) + 1);
  }
  const u16 num_regs = static_cast<u16>(regs);
  const u16 num_preds = static_cast<u16>(std::max<u32>(preds, 1));
  return std::make_shared<KernelProgram>(name_, std::move(code_), num_regs,
                                         num_preds, shared_bytes_, max_param_);
}

}  // namespace higpu::isa
