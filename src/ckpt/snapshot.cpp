#include "ckpt/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace higpu::ckpt {

CheckpointPolicy CheckpointPolicy::interval(u64 cycles) {
  if (cycles == 0)
    throw std::invalid_argument(
        "CheckpointPolicy: interval must be a positive cycle count");
  CheckpointPolicy p;
  p.kind = Kind::kInterval;
  p.interval_cycles = cycles;
  return p;
}

std::string CheckpointPolicy::label() const {
  switch (kind) {
    case Kind::kNone: return "";
    case Kind::kInterval: return "ckpt" + std::to_string(interval_cycles);
    case Kind::kPreKernel: return "prekernel";
  }
  return "?";
}

const Section* Snapshot::find_section(const std::string& name) const {
  for (const Section& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

namespace {

/// Architectural state first, bookkeeping last; ties broken by name so the
/// scan order is total and deterministic.
int section_priority(const std::string& name) {
  if (name.rfind("sm", 0) == 0) return 0;
  if (name.rfind("l1[", 0) == 0) return 1;
  if (name == "l2") return 2;
  if (name == "dram") return 3;
  if (name == "store") return 4;
  return 5;
}

/// Byte length of the allocator cursor + size header GlobalStore::save
/// writes before the raw contents of the "store" section; subtracted so a
/// reported store offset is the actual device address.
constexpr size_t kStoreSectionHeader = 4 + 8;

/// Human name of the first differing record inside a section pair.
std::string localize(const Section& s, const std::vector<u8>& a,
                     const std::vector<u8>& b, size_t b_offset) {
  size_t off = 0;
  while (off < s.len && a[s.offset + off] == b[b_offset + off]) ++off;
  if (s.record_size != 0 && off < s.len) {
    const u64 rec = off / s.record_size;
    if (s.name.rfind("l1[", 0) == 0 || s.name == "l2")
      return s.name + " set " + std::to_string(rec);
    if (s.name == "dram") return s.name + " bank " + std::to_string(rec);
    if (s.name == "store") {
      if (off < kStoreSectionHeader) return s.name;  // allocator cursor
      char buf[24];
      std::snprintf(buf, sizeof(buf), " @0x%llx",
                    static_cast<unsigned long long>(off - kStoreSectionHeader));
      return s.name + buf;
    }
    return s.name + " #" + std::to_string(rec);
  }
  return s.name;
}

}  // namespace

std::string first_divergence(const Snapshot& a, const Snapshot& b) {
  if (a.sections.size() != b.sections.size()) return "shape";

  std::vector<size_t> order(a.sections.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const int px = section_priority(a.sections[x].name);
    const int py = section_priority(a.sections[y].name);
    if (px != py) return px < py;
    return a.sections[x].name < a.sections[y].name;
  });

  for (size_t i : order) {
    const Section& sa = a.sections[i];
    const Section& sb = b.sections[i];
    if (sa.name != sb.name) return "shape";
    if (sa.len != sb.len) return sa.name;
    if (sa.hash == sb.hash &&
        std::memcmp(a.blob.data() + sa.offset, b.blob.data() + sb.offset,
                    sa.len) == 0)
      continue;
    return localize(sa, a.blob, b.blob, sb.offset);
  }
  return "";
}

}  // namespace higpu::ckpt
