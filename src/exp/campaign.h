// Parallel, deterministic campaign execution.
//
// A CampaignRunner executes a ScenarioSet across N host threads. Every
// scenario constructs its own Device / ExecSession / FaultInjector /
// Workload from its spec — simulations share no mutable state — so the
// per-scenario results are bit-identical regardless of thread count or
// completion order (results are stored at the scenario's index, never
// appended). The only non-deterministic fields are the host wall-clock
// measurements, which exist for throughput reporting and are excluded from
// ScenarioResult::deterministic_fields_equal().
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/diversity.h"
#include "exp/scenario.h"
#include "obs/profile.h"

namespace higpu::exp {

/// Everything the paper reports about one scenario, plus bookkeeping.
struct ScenarioResult {
  // ---- Identity ----------------------------------------------------------
  u32 index = 0;       // position in the ScenarioSet
  std::string label;   // ScenarioSpec::label()
  std::string workload;

  // ---- Run status --------------------------------------------------------
  /// False when the scenario threw (validation error, SimTimeout, ...);
  /// `error` then holds the exception text and the metric fields are zero.
  bool ok = false;
  std::string error;

  // ---- Verdicts (deterministic) ------------------------------------------
  bool verified = false;    // outputs match the CPU reference
  bool dcls_match = false;  // every comparison was unanimous (true in
                            // baseline mode, where nothing is compared)
  /// Every comparison of the final attempt produced a safe output —
  /// unanimous, or corrected by majority vote (fail-operational NMR).
  bool majority_ok = false;
  u32 comparisons = 0;
  u32 mismatches = 0;
  /// First faulty copy identified by a vote across all comparisons, or -1.
  i32 faulty_copy = -1;

  // ---- Redundancy / recovery (deterministic) -----------------------------
  u32 n_copies = 1;
  u32 attempts = 0;          // executions performed (> 1 => retries fired)
  bool recovered = false;    // a retry turned a detection into a clean run
  bool degraded = false;     // Recovery::kDegrade engaged
  bool ftti_met = false;     // the whole response fit the item's FTTI
  NanoSec response_ns = 0;   // modelled detect + re-execute sequence time
  safety::Asil achieved_asil = safety::Asil::kQM;  // per composed_asil

  // ---- Metrics (deterministic) -------------------------------------------
  Cycle kernel_cycles = 0;   // the Fig. 4 metric
  NanoSec elapsed_ns = 0;    // modelled end-to-end time (the Fig. 5 metric)
  Cycle ff_cycles = 0;       // cycles fast-forwarded by the event engine
  core::DiversityReport diversity;  // across all redundant pairs
  StatSet stats;             // full GPU counter set
  /// Per-SM cycle attribution (issued / scoreboard / barrier / structural /
  /// idle; obs::SmCycles invariant: the five classes sum to the GPU's total
  /// cycles on every SM). Deterministic — counted unconditionally by both
  /// engines.
  std::vector<obs::SmCycles> sm_profile;

  // ---- Fault outcome (deterministic; meaningful when fault_active) -------
  bool fault_active = false;
  u64 corruptions = 0;       // datapath results actually corrupted
  u64 diverted_blocks = 0;   // scheduler-fault block diversions
  /// classify(dcls_match, verified): kDetected when the DCLS comparison
  /// flags the fault, kSdc when outputs match but are wrong, kMasked when
  /// the run is correct (e.g. the window hit an idle phase).
  fault::Outcome outcome = fault::Outcome::kMasked;

  // ---- Diagnosis (campaign-mode dependent, excluded from equality) -------
  /// First architecturally divergent component between this run's final
  /// device state and a clean reference snapshot (ckpt::first_divergence:
  /// "sm3", "l1[2] set 17", "dram bank 5", "store @0x..."), "" when
  /// identical. Only populated when a reference exists — snapshot
  /// fast-forward campaigns diff every faulted fork against the clean base
  /// run — so, like the wall-clock fields, it is not part of
  /// deterministic_fields_equal().
  std::string divergence;

  // ---- Host timing (NON-deterministic, excluded from equality) -----------
  double wall_sec = 0.0;      // full scenario wall time on this host
  double sim_wall_sec = 0.0;  // wall time inside the simulation engine

  /// True when the scenario is unconditionally good: ran, verified, and the
  /// redundant copies matched unless a fault was (correctly) detected.
  bool passed() const {
    if (!ok) return false;
    if (fault_active) return outcome != fault::Outcome::kSdc;
    return verified && dcls_match;
  }

  /// Bit-exact equality of every deterministic field — the campaign
  /// determinism guarantee checked by tests/campaign_test.cpp.
  bool deterministic_fields_equal(const ScenarioResult& other) const;
};

/// Optional inspection hook: called with the live device, workload and
/// session, for callers that need more than a ScenarioResult (kernel
/// categorization, block records, instruction traces). Runs on the worker
/// thread; must not touch shared state without its own synchronization.
using ScenarioProbe = std::function<void(
    runtime::Device&, workloads::Workload&, core::ExecSession&)>;

/// Snapshot traffic of one scenario execution — the plumbing behind
/// snapshot-accelerated fault campaigns. A *base* run sets capture_targets
/// (the sweep's injection cycles) and reads back `captured`/`final_state`;
/// a *fork* sets `resume` (a base snapshot whose cycle predates its fault)
/// and optionally `divergence_ref` (the clean final state to diff against).
/// All snapshots are immutable and safely shared across threads.
struct SnapshotIo {
  // In (base run): capture a snapshot covering each cycle.
  std::vector<Cycle> capture_targets;
  // Out (base run): parallel to sorted/deduped capture_targets; null where
  // the run finished before the target.
  std::vector<ckpt::SnapshotPtr> captured;
  // In (fork): restore this snapshot at the matching synchronize() — the
  // deterministic prefix is skipped, results stay bit-identical.
  ckpt::SnapshotPtr resume;
  // Out: the device's final state after the run (for divergence diffing).
  ckpt::SnapshotPtr final_state;
  // In (fork): clean final state to localize divergence against.
  ckpt::SnapshotPtr divergence_ref;
};

/// Execute one scenario start-to-finish on the calling thread. `pre_run`
/// runs after the device/session are constructed but before the workload
/// executes (e.g. to install a trace sink); `probe` runs directly after
/// Workload::run returns, before verification/teardown — a pre_run/probe
/// pair brackets exactly the workload's device flow. `snap`, when given,
/// wires the scenario into the snapshot machinery (see SnapshotIo).
ScenarioResult run_scenario(const ScenarioSpec& spec, u32 index = 0,
                            const ScenarioProbe& probe = nullptr,
                            const ScenarioProbe& pre_run = nullptr,
                            SnapshotIo* snap = nullptr);

struct CampaignResult {
  std::vector<ScenarioResult> results;  // in ScenarioSet order
  u32 jobs = 1;          // worker threads actually used
  double wall_sec = 0.0; // whole-campaign wall time

  u32 failed() const;
  bool all_passed() const;
  double scenarios_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(results.size()) / wall_sec : 0.0;
  }

  /// JSON report (schema documented in README "Running campaigns").
  std::string to_json() const;
  /// One CSV row per scenario with the headline columns.
  std::string to_csv() const;
};

class CampaignRunner {
 public:
  struct Config {
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    u32 jobs = 0;
    /// Snapshot fast-forward: scenarios that differ only in their fault
    /// plan share one clean base run — simulated once, snapshotted at each
    /// member's injection cycle — and each faulted member forks from the
    /// snapshot covering its injection point instead of re-simulating the
    /// common prefix from cycle 0. Results are bit-identical to from-
    /// scratch execution (enforced by tests/ckpt_test.cpp); forks
    /// additionally report ScenarioResult::divergence against the clean
    /// run's final state. Groups need >= 2 fault members to be worth a
    /// base run; everything else runs normally.
    bool snapshot_fast_forward = false;
    /// Called after each scenario completes, serialized under a mutex
    /// (progress reporting). Completion order is scheduling-dependent.
    std::function<void(const ScenarioResult&)> on_result;
  };

  CampaignRunner() = default;
  explicit CampaignRunner(Config cfg) : cfg_(std::move(cfg)) {}

  /// Validate and execute every scenario; never throws for per-scenario
  /// failures (see ScenarioResult::ok). Throws std::invalid_argument if the
  /// set itself is malformed.
  CampaignResult run(const ScenarioSet& set) const;

 private:
  Config cfg_;
};

}  // namespace higpu::exp
