// Serving-mode benchmark: BENCH_serve.json.
//
// Two measurements, matching what a deployment has to know before turning
// continuous operation on:
//
//  1. Sustained throughput and the p99-vs-offered-load curve — Poisson
//     traffic swept from well under to well past the measured single-
//     request capacity. Below the knee p99 tracks the service time; past
//     it, queueing blows the tail up and the overload machinery (degrade +
//     shedding) bounds it instead of letting latency diverge.
//
//  2. One overload -> degrade -> recover trajectory — a saturating burst
//     followed by a relaxed tail, with every ladder transition recorded.
//     The exit code asserts the trajectory: the engine must provably enter
//     degraded mode under the burst and walk back to full redundancy on
//     the tail.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "serve/engine.h"

namespace {

using namespace higpu;

serve::TenantSpec dcls_tenant(u64 deadline_ns) {
  serve::TenantSpec t;
  t.name = "camera";
  t.workload = "nn";
  t.redundancy = core::RedundancySpec::dcls();
  t.deadline_ns = deadline_ns;
  return t;
}

/// Idle-device service time of one request (calibrates the sweep).
u64 measure_service_ns(const serve::TenantSpec& tenant) {
  serve::TrafficSpec t;
  t.pattern = serve::TrafficSpec::Pattern::kTrace;
  t.tenants = {tenant};
  t.trace = {{0, 0, 1000, 0}};
  serve::ServeSpec s;
  s.traffic = t;
  const serve::ServeResult r = serve::run_serve(s);
  return r.completions.at(0).finish_ns - r.completions.at(0).start_ns;
}

}  // namespace

int main() {
  JsonWriter jw;
  jw.begin_object();
  jw.field("schema", std::string("higpu.bench.serve/1"));

  // ---- 1. Throughput / p99 vs offered load --------------------------------
  const u64 service = measure_service_ns(dcls_tenant(1));
  const double capacity_rps = 1e9 / static_cast<double>(service);
  jw.field("service_ns", service);
  jw.field("capacity_rps", capacity_rps);

  bool all_ok = true;
  jw.key("load_sweep");
  jw.begin_array();
  for (const double frac : {0.25, 0.5, 0.75, 0.9, 1.1, 1.5, 2.0}) {
    serve::ServeSpec s;
    s.traffic.pattern = serve::TrafficSpec::Pattern::kPoisson;
    s.traffic.seed = 2019;
    s.traffic.offered_rps = capacity_rps * frac;
    s.traffic.duration_ns = 0;
    s.traffic.max_requests = 48;
    // Deadline sized for moderate queueing: overload runs will shed/degrade.
    s.traffic.tenants = {dcls_tenant(4 * service)};
    const serve::ServeResult r = serve::run_serve(s);
    all_ok &= r.verify_failures == 0;

    const serve::TenantStats& t = r.tenants.at(0);
    jw.begin_object();
    jw.field("offered_frac", frac);
    jw.field("offered_rps", s.traffic.offered_rps);
    jw.field("sustained_rps", r.sustained_rps());
    jw.field("utilization", r.utilization());
    jw.field("served", r.served);
    jw.field("dropped", r.dropped);
    jw.field("deadline_misses", r.deadline_misses);
    jw.field("degrade_transitions", static_cast<u64>(r.transitions.size()));
    jw.field("p50_ns", t.response_ns.p50());
    jw.field("p95_ns", t.response_ns.p95());
    jw.field("p99_ns", t.response_ns.p99());
    jw.field("p999_ns", t.response_ns.p999());
    jw.end_object();
    std::printf("load %.2fx: sustained %.1f/s util %.0f%% p99 %.3f ms "
                "(%llu dropped)\n",
                frac, r.sustained_rps(), r.utilization() * 100.0,
                static_cast<double>(t.response_ns.p99()) / 1e6,
                static_cast<unsigned long long>(r.dropped));
  }
  jw.end_array();

  // ---- 2. Overload -> degrade -> recover trajectory ------------------------
  serve::TenantSpec planner;
  planner.name = "planner";
  planner.workload = "nn";
  planner.redundancy = core::RedundancySpec::tmr();
  planner.deadline_ns = 1;
  const u64 tmr_service = measure_service_ns(planner);
  planner.deadline_ns = 5 * tmr_service / 2;

  serve::ServeSpec s;
  s.traffic.pattern = serve::TrafficSpec::Pattern::kTrace;
  s.traffic.tenants = {planner};
  for (u32 i = 0; i < 12; ++i)
    s.traffic.trace.push_back({0, 0, static_cast<u64>(1000 + i), 0});
  const u64 tail = 20 * tmr_service;
  for (u32 i = 0; i < 12; ++i)
    s.traffic.trace.push_back({0, 0, tail + i * 4 * tmr_service, 0});
  s.overload.recover_after = 3;
  const serve::ServeResult r = serve::run_serve(s);
  all_ok &= r.verify_failures == 0;

  bool entered = false, recovered_to_full = false;
  u32 level = 0;
  for (const serve::DegradeTransition& tr : r.transitions) {
    if (tr.to_level > tr.from_level) entered = true;
    level = tr.to_level;
  }
  recovered_to_full = entered && level == 0;

  jw.key("trajectory");
  jw.begin_object();
  jw.field("tmr_service_ns", tmr_service);
  jw.field("served", r.served);
  jw.field("dropped", r.dropped);
  jw.field("deadline_misses", r.deadline_misses);
  jw.field("entered_degrade", entered);
  jw.field("recovered_to_full", recovered_to_full);
  jw.key("transitions");
  jw.begin_array();
  for (const serve::DegradeTransition& tr : r.transitions) {
    jw.begin_object();
    jw.field("t_ns", tr.t_ns);
    jw.field("from_level", tr.from_level);
    jw.field("to_level", tr.to_level);
    jw.field("reason", std::string(serve::degrade_reason_name(tr.reason)));
    jw.field("queue_depth", tr.queue_depth);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  jw.end_object();

  FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fputs((jw.str() + "\n").c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_serve.json (entered_degrade=%s, "
              "recovered_to_full=%s)\n",
              entered ? "true" : "false",
              recovered_to_full ? "true" : "false");
  return all_ok && entered && recovered_to_full ? 0 : 1;
}
