// dwt2d — 2D discrete wavelet transform (Rodinia): per level, a Haar
// row-transform kernel followed by a column-transform kernel, each level
// operating on the top-left quadrant of the previous one. Medium-sized
// friendly kernels with strided memory access.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Dwt2d final : public Workload {
 public:
  std::string name() const override { return "dwt2d"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 dim_ = 0;
  u32 levels_ = 0;
  std::vector<float> image_;
  std::vector<float> reference_;
  std::vector<float> result_;
};

}  // namespace higpu::workloads
