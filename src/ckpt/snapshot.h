// Versioned, deterministic binary snapshot of full device state.
//
// A Snapshot is everything the simulation's future depends on, captured at a
// consistent point: GPU core state (SMs, warps, scheduler, event-engine
// wake/heap bookkeeping), memory-system state (cache tags, MSHRs, DRAM
// bank/row state, global-store contents), the host runtime timeline, the
// kernel-scheduler cursors and any armed fault-injector state. Restoring a
// snapshot — onto the same device or a freshly constructed one with the same
// parameters — resumes execution bit-identically to a run that was never
// interrupted, under both SimEngine::kDense and SimEngine::kEvent.
//
// Three consumers build on this:
//  * rollback recovery  — core::ExecSession restores the last clean
//    checkpoint after a detected miscompare instead of re-executing the
//    whole offload from scratch (RedundancySpec::Recovery::kRollback);
//  * campaign fast-forward — exp::CampaignRunner simulates a fault sweep's
//    shared clean prefix once, snapshots at each injection point, and forks
//    the per-fault runs from the restored state;
//  * divergence diagnosis — per-component section hashes let
//    first_divergence() name the first architecturally divergent component
//    (SM i / L1 set s / DRAM bank b) between two snapshots.
//
// Kernel programs are immutable and shared: the blob references them by
// index into `programs`, which keeps them alive (and shareable across
// threads) for as long as any snapshot does.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/serial.h"
#include "common/types.h"
#include "isa/program.h"

namespace higpu::ckpt {

/// When a runtime::Device captures checkpoints automatically.
struct CheckpointPolicy {
  enum class Kind : u8 {
    kNone,       // only explicit Device::snapshot() calls
    kInterval,   // during execution, roughly every `interval_cycles` cycles
                 // (at the next event boundary under the event engine)
    kPreKernel,  // at every synchronize() that has pending kernel work,
                 // before any of it executes (the rollback-recovery anchor)
  };

  Kind kind = Kind::kNone;
  u64 interval_cycles = 0;

  static CheckpointPolicy none() { return {}; }
  /// Throws std::invalid_argument if `cycles` is zero.
  static CheckpointPolicy interval(u64 cycles);
  static CheckpointPolicy pre_kernel() {
    CheckpointPolicy p;
    p.kind = Kind::kPreKernel;
    return p;
  }

  bool active() const { return kind != Kind::kNone; }
  /// Label fragment for scenario identity: "" (none), "ckpt5000", "prekernel".
  std::string label() const;

  bool operator==(const CheckpointPolicy& other) const = default;
};

class Snapshot {
 public:
  /// Bump on any change to the blob layout.
  /// v2: SmCore serializes the smem_oob_wraps counter (the always-on
  ///     replacement for the NDEBUG-only shared-memory bounds assert).
  /// v3: SmCore serializes the four cycle-attribution counters
  ///     (cycles_issued / cycles_stall_{scoreboard,barrier,structural}).
  static constexpr u32 kVersion = 3;
  static constexpr u64 kMagic = 0x48474355434B5054ull;  // "HGPUCKPT"

  // ---- Capture metadata (duplicated from the blob for cheap access) -------
  /// GPU clock at capture. All simulated work at cycles <= this is in the
  /// snapshot; resumed execution continues from here.
  Cycle cycle = 0;
  /// 1-based index of the Device::synchronize() call in progress at capture
  /// (0 = captured outside any synchronize). A forked run resumes by
  /// restoring at the entry of its own synchronize() with the same index.
  u64 sync_seq = 0;
  /// Kernels launched at capture time (launch ids [0, launch_count)).
  u64 launch_count = 0;
  /// Modelled host timeline at capture.
  NanoSec now_ns = 0;
  /// The checkpoint target cycle this capture satisfies (== cycle unless
  /// the event engine stopped between events; then cycle <= target).
  Cycle target = 0;

  // ---- State --------------------------------------------------------------
  std::vector<u8> blob;
  std::vector<Section> sections;
  /// Immutable kernel programs referenced by the blob (by index).
  std::vector<isa::ProgramPtr> programs;

  /// Hash over the full blob — two snapshots of identical device state hash
  /// identically (the blob layout is padding-free and deterministic).
  u64 hash() const { return fnv1a(blob.data(), blob.size()); }
  u64 size_bytes() const { return blob.size(); }

  const Section* find_section(const std::string& name) const;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Name of the first architecturally divergent component between two
/// snapshots of same-shaped devices, scanning architectural state first:
/// SMs ("sm3"), then L1 tag arrays at set granularity ("l1[2] set 17"),
/// the L2 ("l2 set 40"), DRAM banks ("dram bank 5"), global-store contents
/// ("store @0x5100"), then the remaining bookkeeping sections by name.
/// Returns "" when the snapshots are identical, and "shape" when their
/// section layouts don't even line up (different device geometry).
std::string first_divergence(const Snapshot& a, const Snapshot& b);

}  // namespace higpu::ckpt
