#include "workloads/btree.h"

#include "workloads/kernel_util.h"

namespace higpu::workloads {

namespace {

constexpr u32 kKeysPerLeaf = 8;  // key span covered by each leaf

u32 pow_u32(u32 base, u32 exp) {
  u32 r = 1;
  while (exp--) r *= base;
  return r;
}

/// Level-major offset (in nodes) of inner level `l`.
u32 level_node_offset(u32 fanout, u32 l) {
  u32 off = 0;
  for (u32 i = 0; i < l; ++i) off += pow_u32(fanout, i);
  return off;
}

/// Point query: descend `depth` inner levels, emit leaf value.
/// Params: inner_keys, leaf_values, queries, out, n.
isa::ProgramPtr build_point_query(u32 fanout, u32 depth) {
  using namespace isa;
  KernelBuilder kb("btree_point");

  Reg keys = kb.reg(), leaves = kb.reg(), queries = kb.reg(), out = kb.reg(),
      n = kb.reg();
  kb.ldp(keys, 0);
  kb.ldp(leaves, 1);
  kb.ldp(queries, 2);
  kb.ldp(out, 3);
  kb.ldp(n, 4);

  Reg tid = kb.global_tid_x();
  Label done = kb.label();
  util::exit_if_ge(kb, tid, n, done);

  Reg a = kb.reg(), q = kb.reg();
  kb.imad(a, tid, imm(4), queries);
  kb.ldg(q, a);

  // node index within its level.
  Reg node = kb.reg(), child = kb.reg(), key = kb.reg(), one = kb.reg(),
      base = kb.reg(), lin = kb.reg();
  // One predicate reused across every separator test: each setp is consumed
  // by the selp right after it, and allocating depth*(fanout-1) fresh
  // predicates would blow the 8-register predicate file.
  PredReg ge = kb.pred();
  kb.movi(node, 0);
  for (u32 level = 0; level < depth; ++level) {
    const u32 level_off = level_node_offset(fanout, level) * (fanout - 1);
    // child = sum over separators of (q >= key) ? 1 : 0
    kb.movi(child, 0);
    kb.imul(lin, node, imm(static_cast<i32>(fanout - 1)));
    kb.imad(base, lin, imm(4),
            imm(static_cast<i32>(level_off * 4)));
    Reg addr = kb.reg();
    kb.iadd(addr, base, keys);
    for (u32 s = 0; s + 1 < fanout; ++s) {
      kb.ldg(key, addr, static_cast<i32>(s * 4));
      kb.setp(ge, CmpOp::kGe, DType::kI32, q, key);
      kb.selp(one, imm(1), imm(0), ge);
      kb.iadd(child, child, one);
    }
    kb.imad(node, node, imm(static_cast<i32>(fanout)), child);
  }
  Reg a_leaf = util::elem_addr(kb, leaves, node);
  Reg v = kb.reg();
  kb.ldg(v, a_leaf);
  Reg a_out = util::elem_addr(kb, out, tid);
  kb.stg(a_out, v);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

/// Range query: sum the leaf values spanned by [q, hi] (both keys).
/// Leaf index of key k is simply k / kKeysPerLeaf in this synthetic tree,
/// but the kernel still descends the tree for the lower bound to keep the
/// benchmark's branchy access pattern, then walks leaves.
isa::ProgramPtr build_range_query(u32 fanout, u32 depth) {
  using namespace isa;
  KernelBuilder kb("btree_range");

  Reg keys = kb.reg(), leaves = kb.reg(), queries = kb.reg(), his = kb.reg(),
      out = kb.reg(), n = kb.reg();
  kb.ldp(keys, 0);
  kb.ldp(leaves, 1);
  kb.ldp(queries, 2);
  kb.ldp(his, 3);
  kb.ldp(out, 4);
  kb.ldp(n, 5);

  Reg tid = kb.global_tid_x();
  Label done = kb.label();
  util::exit_if_ge(kb, tid, n, done);

  Reg a = kb.reg(), q = kb.reg(), hi = kb.reg();
  kb.imad(a, tid, imm(4), queries);
  kb.ldg(q, a);
  kb.imad(a, tid, imm(4), his);
  kb.ldg(hi, a);

  // Descend for the lower bound.
  Reg node = kb.reg(), child = kb.reg(), key = kb.reg(), one = kb.reg(),
      base = kb.reg(), lin = kb.reg();
  // Reused separator-test predicate; see build_point_query.
  PredReg ge = kb.pred();
  kb.movi(node, 0);
  for (u32 level = 0; level < depth; ++level) {
    const u32 level_off = level_node_offset(fanout, level) * (fanout - 1);
    kb.movi(child, 0);
    kb.imul(lin, node, imm(static_cast<i32>(fanout - 1)));
    kb.imad(base, lin, imm(4), imm(static_cast<i32>(level_off * 4)));
    Reg addr = kb.reg();
    kb.iadd(addr, base, keys);
    for (u32 s = 0; s + 1 < fanout; ++s) {
      kb.ldg(key, addr, static_cast<i32>(s * 4));
      kb.setp(ge, CmpOp::kGe, DType::kI32, q, key);
      kb.selp(one, imm(1), imm(0), ge);
      kb.iadd(child, child, one);
    }
    kb.imad(node, node, imm(static_cast<i32>(fanout)), child);
  }

  // Walk leaves node..leaf_index(hi), summing values (divergent loop).
  Reg last = kb.reg(), acc = kb.reg(), v = kb.reg();
  kb.shr(last, hi, imm(3));  // hi / kKeysPerLeaf (8)
  kb.movi(acc, 0);
  Label loop = kb.label(), loop_end = kb.label();
  kb.bind(loop);
  PredReg past = kb.pred();
  kb.setp(past, CmpOp::kGt, DType::kI32, node, last);
  kb.bra(loop_end).guard_if(past);
  kb.imad(a, node, imm(4), leaves);
  kb.ldg(v, a);
  kb.iadd(acc, acc, v);
  kb.iadd(node, node, imm(1));
  kb.bra(loop);
  kb.bind(loop_end);

  Reg a_out = util::elem_addr(kb, out, tid);
  kb.stg(a_out, acc);
  kb.bind(done);
  kb.exit();
  return kb.build();
}

}  // namespace

void BTree::setup(Scale scale, u64 seed) {
  depth_ = scale == Scale::kTest ? 2 : 4;
  num_queries_ = scale == Scale::kTest ? 1024 : 8192;
  num_leaves_ = pow_u32(kFanout, depth_);
  Rng rng(seed);

  // Separator keys: child c+1 of node m (level l) starts at leaf
  // (m*fanout + c + 1) * fanout^(depth-l-1); its first key is that * 8.
  inner_keys_.clear();
  for (u32 l = 0; l < depth_; ++l) {
    const u32 nodes = pow_u32(kFanout, l);
    const u32 leaves_per_child = pow_u32(kFanout, depth_ - l - 1);
    for (u32 m = 0; m < nodes; ++m)
      for (u32 c = 0; c + 1 < kFanout; ++c) {
        const u32 first_leaf = (m * kFanout + c + 1) * leaves_per_child;
        inner_keys_.push_back(static_cast<i32>(first_leaf * kKeysPerLeaf));
      }
  }
  leaf_values_.resize(num_leaves_);
  for (u32 i = 0; i < num_leaves_; ++i)
    leaf_values_[i] = static_cast<i32>(i * 7 + 3);

  const u32 max_key = num_leaves_ * kKeysPerLeaf;
  queries_.resize(num_queries_);
  range_hi_.resize(num_queries_);
  for (u32 i = 0; i < num_queries_; ++i) {
    queries_[i] = static_cast<i32>(rng.next_below(max_key));
    const u32 span = static_cast<u32>(rng.next_below(4 * kKeysPerLeaf));
    range_hi_[i] = static_cast<i32>(
        std::min<u32>(static_cast<u32>(queries_[i]) + span, max_key - 1));
  }

  // References.
  reference_point_.resize(num_queries_);
  reference_range_.resize(num_queries_);
  for (u32 i = 0; i < num_queries_; ++i) {
    const u32 lo_leaf = static_cast<u32>(queries_[i]) / kKeysPerLeaf;
    const u32 hi_leaf = static_cast<u32>(range_hi_[i]) / kKeysPerLeaf;
    reference_point_[i] = leaf_values_[lo_leaf];
    i32 acc = 0;
    for (u32 leaf = lo_leaf; leaf <= hi_leaf; ++leaf)
      acc += leaf_values_[leaf];
    reference_range_[i] = acc;
  }
  result_point_.clear();
  result_range_.clear();
}

void BTree::run(RunContext& ctx) {
  core::ExecSession& session = ctx.session();
  session.device().host_parse(input_bytes() * 6);  // command/database files

  const u64 keys_bytes = inner_keys_.size() * 4;
  const u64 leaf_bytes = static_cast<u64>(num_leaves_) * 4;
  const u64 q_bytes = static_cast<u64>(num_queries_) * 4;
  core::ReplicaPtr d_keys = session.alloc(keys_bytes);
  core::ReplicaPtr d_leaves = session.alloc(leaf_bytes);
  core::ReplicaPtr d_q = session.alloc(q_bytes);
  core::ReplicaPtr d_hi = session.alloc(q_bytes);
  core::ReplicaPtr d_point = session.alloc(q_bytes);
  core::ReplicaPtr d_range = session.alloc(q_bytes);
  session.h2d(d_keys, inner_keys_.data(), keys_bytes);
  session.h2d(d_leaves, leaf_values_.data(), leaf_bytes);
  session.h2d(d_q, queries_.data(), q_bytes);
  session.h2d(d_hi, range_hi_.data(), q_bytes);

  const u32 blocks = ceil_div(num_queries_, 256);
  session.launch(build_point_query(kFanout, depth_), sim::Dim3{blocks, 1, 1},
                 sim::Dim3{256, 1, 1},
                 {d_keys, d_leaves, d_q, d_point, num_queries_});
  session.launch(build_range_query(kFanout, depth_), sim::Dim3{blocks, 1, 1},
                 sim::Dim3{256, 1, 1},
                 {d_keys, d_leaves, d_q, d_hi, d_range, num_queries_});
  session.sync();

  result_point_.resize(num_queries_);
  result_range_.resize(num_queries_);
  session.d2h(result_point_.data(), d_point, q_bytes);
  session.d2h(result_range_.data(), d_range, q_bytes);
  session.compare(d_point, q_bytes, result_point_.data());
  session.compare(d_range, q_bytes, result_range_.data());
}

bool BTree::verify() const {
  return result_point_ == reference_point_ && result_range_ == reference_range_;
}

u64 BTree::input_bytes() const {
  return inner_keys_.size() * 4 + static_cast<u64>(num_leaves_) * 4 +
         2ull * num_queries_ * 4;
}
u64 BTree::output_bytes() const { return 2ull * num_queries_ * 4; }

}  // namespace higpu::workloads
