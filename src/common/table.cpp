#include "common/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace higpu {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << '|';
  for (size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_ratio(double v) { return fmt(v, 3); }

}  // namespace higpu
