// campaign_worker — the fleet binary of the distributed campaign service.
//
// Two modes:
//
//   campaign_worker --fd=N [--id=K] [--heartbeat-ms=M]
//       Protocol mode: speak higpu.wire/1 over inherited file descriptor N.
//       This is how dist::run_distributed launches the fleet; it is not
//       meant to be started by hand.
//
//   campaign_worker --work=FILE --out=FILE
//       One-shot file mode: FILE holds one encoded kWork payload (the
//       exact bytes a coordinator would ship, snapshots included); the
//       scenario runs in this fresh process and its result is written to
//       --out as one higpu.campaign.jsonl/1 line. Exists for the
//       cross-process snapshot-portability test and for debugging single
//       units outside a campaign.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "dist/worker.h"
#include "exp/campaign.h"
#include "exp/result_io.h"

using namespace higpu;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: campaign_worker --fd=N [--id=K] [--heartbeat-ms=M]\n"
               "       campaign_worker --work=FILE --out=FILE\n");
  return 2;
}

bool arg_value(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

std::vector<u8> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::vector<u8> bytes;
  u8 buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("read error on '" + path + "'");
  return bytes;
}

int run_file_mode(const std::string& work_path, const std::string& out_path) {
  const dist::WorkItem item = dist::decode_work(read_file_bytes(work_path));
  exp::SnapshotIo io;
  io.resume = item.resume;
  io.divergence_ref = item.divergence_ref;
  const exp::ScenarioResult result =
      exp::run_scenario(item.spec, item.index, nullptr, nullptr, &io);
  const std::string line = exp::result_to_jsonl(result);
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open '" + out_path + "'");
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
  // The scenario's own failure is data, not a process failure: the caller
  // reads ok/error from the record.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  u32 id = 0;
  int heartbeat_ms = 200;
  std::string work_path, out_path, v;
  for (int i = 1; i < argc; ++i) {
    if (arg_value(argv[i], "--fd", &v))
      fd = std::atoi(v.c_str());
    else if (arg_value(argv[i], "--id", &v))
      id = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg_value(argv[i], "--heartbeat-ms", &v))
      heartbeat_ms = std::atoi(v.c_str());
    else if (arg_value(argv[i], "--work", &v))
      work_path = v;
    else if (arg_value(argv[i], "--out", &v))
      out_path = v;
    else
      return usage();
  }
  try {
    if (!work_path.empty() && !out_path.empty())
      return run_file_mode(work_path, out_path);
    if (fd >= 0) return dist::worker_main(fd, id, heartbeat_ms);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_worker: %s\n", e.what());
    return 1;
  }
  return usage();
}
