// Analytic timing model of the L1 / L2 / DRAM hierarchy.
//
// Cache state (tags, LRU, MSHR merging) is updated at issue time; completion
// cycles are computed through per-resource `next_free` bandwidth counters
// (L1 port, L2 banks, DRAM channels). The model is deterministic and
// order-sensitive: contention between SMs emerges from shared L2/DRAM
// counters, which is the level of fidelity the scheduling-policy study needs.
//
// Event-driven contract: every access returns the exact cycle at which it
// completes, decided fully at issue time and never revised afterwards. The
// SM records that cycle on the destination register's scoreboard entry, and
// the scoreboard release becomes a wake event in the GPU's event heap —
// memory responses are *pushed* into the simulation core's timeline; nothing
// ever polls the hierarchy for completion.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memsys/cache.h"
#include "memsys/params.h"

namespace higpu::memsys {

class MemHierarchy {
 public:
  MemHierarchy(u32 num_sms, const MemParams& params);

  /// Access one cache line from SM `sm` at cycle `now`.
  /// Returns the cycle at which the data is available in the SM (loads) or
  /// globally visible (stores).
  Cycle access_line(u32 sm, u64 line_addr, bool is_write, Cycle now);

  /// Atomic read-modify-write on one line: bypasses L1, resolves at L2.
  Cycle access_atomic(u32 sm, u64 line_addr, Cycle now);

  /// Invalidate all cache state and bandwidth counters (fresh simulation).
  void reset();

  const MemParams& params() const { return params_; }
  /// Statistics snapshot. Counters are kept as plain integers (a map lookup
  /// per access would dominate memory-bound simulations) and exported here
  /// under their original names.
  StatSet stats() const;

 private:
  /// L2 + DRAM path; returns data-ready cycle at the L2 boundary.
  Cycle access_l2(u64 line_addr, bool is_write, Cycle now, bool is_atomic);

  MemParams params_;
  std::vector<SetAssocCache> l1_;          // one per SM
  SetAssocCache l2_;
  std::vector<Cycle> l1_port_free_;        // per SM
  std::vector<Cycle> l2_bank_free_;        // per bank
  std::vector<Cycle> dram_channel_free_;   // per channel
  // Per-SM MSHR: line -> cycle at which the in-flight fill completes. Flat
  // storage: at most l1_mshr_entries (~32) entries, so a linear scan beats
  // hashing on the per-access hot path.
  struct MshrEntry {
    u64 line;
    Cycle ready;
  };
  std::vector<std::vector<MshrEntry>> mshr_;

  u64 l1_hits_ = 0, l1_misses_ = 0;
  u64 l1_write_hits_ = 0, l1_write_misses_ = 0;
  u64 l1_mshr_merges_ = 0, l1_writebacks_ = 0;
  u64 l2_hits_ = 0, l2_misses_ = 0;
  u64 dram_reads_ = 0, dram_writebacks_ = 0;
  u64 atomics_ = 0;
};

}  // namespace higpu::memsys
