#include "sim/gpu.h"

#include <algorithm>
#include <cassert>

namespace higpu::sim {

Gpu::Gpu(const GpuParams& params, memsys::GlobalStore* store)
    : params_(params), store_(store), mem_(params.num_sms, params.mem) {
  assert(store != nullptr);
  sms_.reserve(params.num_sms);
  for (u32 i = 0; i < params.num_sms; ++i) {
    sms_.push_back(std::make_unique<SmCore>(i, params_, &mem_, store_));
    sms_.back()->set_block_done_callback(
        [this](const BlockRecord& rec) { on_block_done(rec); });
  }
}

void Gpu::set_kernel_scheduler(std::unique_ptr<IKernelScheduler> sched) {
  ksched_ = std::move(sched);
}

void Gpu::set_fault_hook(IFaultHook* hook) {
  fault_ = hook;
  for (auto& sm : sms_) sm->set_fault_hook(hook);
}

void Gpu::set_trace_sink(ITraceSink* sink) {
  for (auto& sm : sms_) sm->set_trace_sink(sink);
}

void Gpu::set_warp_sched_policy(WarpSchedPolicy p) {
  for (auto& sm : sms_) sm->set_warp_sched_policy(p);
}

u32 Gpu::launch(KernelLaunch launch) {
  assert(ksched_ != nullptr && "set a kernel scheduler before launching");
  assert(launch.program != nullptr);
  assert(launch.total_blocks() > 0 && launch.threads_per_block() > 0);
  assert(launch.threads_per_block() <=
             params_.max_warps_per_sm * params_.warp_size &&
         "thread block larger than an SM");
  assert(launch.params.size() >= launch.program->num_params() &&
         "missing kernel parameters");

  auto slot = std::make_unique<LaunchSlot>();
  const u32 id = static_cast<u32>(launches_.size());
  slot->launch = std::move(launch);
  slot->state.launch_id = id;
  slot->state.total_blocks = slot->launch.total_blocks();
  last_arrival_ = std::max(cycle_, last_arrival_) + params_.launch_gap_cycles;
  slot->state.arrival = last_arrival_;
  launches_.push_back(std::move(slot));
  state_ptrs_.push_back(&launches_.back()->state);
  stats_.add("kernels_launched");
  return id;
}

bool Gpu::idle() const {
  return kernels_finished_ == launches_.size();
}

void Gpu::step() {
  cycle_ += 1;
  dispatched_this_cycle_ = false;
  if (ksched_) ksched_->dispatch(*this);
  for (auto& sm : sms_) {
    sm->set_use_wake_records(false);  // faithful dense semantics
    sm->cycle(cycle_);
  }
}

Cycle Gpu::run_until_idle(u64 max_cycles) {
  return params_.engine == SimEngine::kDense ? run_dense(max_cycles)
                                             : run_event(max_cycles);
}

Cycle Gpu::run_dense(u64 max_cycles) {
  const Cycle limit = cycle_ + max_cycles;
  for (auto& sm : sms_) sm->set_use_wake_records(false);
  while (!idle()) {
    if (cycle_ >= limit)
      throw SimTimeout("GPU did not drain within cycle budget (scheduler deadlock?)");
    step();
  }
  return cycle_;
}

Cycle Gpu::next_kernel_arrival() {
  // Arrivals are assigned in monotonically increasing order at launch(), so
  // a cursor over the prefix already visible at cycle_ is exact.
  while (arrival_cursor_ < launches_.size() &&
         launches_[arrival_cursor_]->state.arrival <= cycle_)
    ++arrival_cursor_;
  return arrival_cursor_ < launches_.size()
             ? launches_[arrival_cursor_]->state.arrival
             : kNeverCycle;
}

void Gpu::wake_sm(u32 sm, Cycle when) {
  if (!event_running_ || when >= sm_wake_[sm]) return;
  sm_wake_[sm] = when;
  wake_heap_.push({when, sm});
}

Cycle Gpu::run_event(u64 max_cycles) {
  const Cycle limit = cycle_ + max_cycles;
  event_running_ = true;
  for (auto& sm : sms_) sm->set_use_wake_records(true);
  // (Re)build the active set. Host code may have stepped the GPU densely or
  // launched new kernels since the last run, so start every resident SM on
  // the next cycle and let the first ticks establish real wake times.
  sm_wake_.assign(num_sms(), kNeverCycle);
  wake_heap_ = {};
  for (u32 i = 0; i < num_sms(); ++i)
    if (!sms_[i]->idle()) wake_sm(i, cycle_ + 1);
  Cycle dispatch_wake = cycle_ + 1;

  while (!idle()) {
    // Earliest future event: dispatch recheck, kernel arrival, SM wake, or
    // fault-window boundary. SMs due on the very next cycle (the common
    // case while work is flowing) bypass the heap entirely; the heap only
    // holds true sleeps.
    Cycle next = std::min(dispatch_wake, next_kernel_arrival());
    while (!wake_heap_.empty()) {
      const auto [when, sm] = wake_heap_.top();
      if (when != sm_wake_[sm]) {  // stale heap entry
        wake_heap_.pop();
        continue;
      }
      next = std::min(next, when);
      break;
    }
    if (fault_ != nullptr)
      next = std::min(next, fault_->next_trigger_cycle(cycle_));

    if (next > limit) {
      // The dense loop would have ticked quiescently up to `limit` before
      // throwing; replay its accounting so statistics stay bit-identical.
      for (auto& sm : sms_) sm->settle_to(limit);
      cycle_ = limit;
      event_running_ = false;
      throw SimTimeout("GPU did not drain within cycle budget (scheduler deadlock?)");
    }

    ff_cycles_ += next - cycle_ - 1;
    cycle_ = next;
    dispatched_this_cycle_ = false;
    // Dispatch first, exactly as in the dense loop. A dispatch may wake a
    // sleeping SM for this very cycle (wake_sm via try_dispatch_block).
    if (ksched_) ksched_->dispatch(*this);
    bool progress = dispatched_this_cycle_;

    bool any_next_cycle = false;
    for (u32 i = 0; i < num_sms(); ++i) {
      if (sm_wake_[i] > cycle_) continue;
      SmCore& sm = *sms_[i];
      sm.cycle(cycle_);
      if (sm.progressed()) {
        // State changed; other warps (or the scheduler) may act next cycle.
        sm_wake_[i] = cycle_ + 1;
        progress = true;
        any_next_cycle = true;
      } else {
        sm_wake_[i] = sm.next_event_cycle();
        if (sm_wake_[i] != kNeverCycle) wake_heap_.push({sm_wake_[i], i});
      }
    }

    // Any progress (issue, completion, block placement) can change the next
    // dispatch decision, so re-run the kernel scheduler one cycle later.
    // With no progress, only a kernel arrival or an SM wake can unblock it —
    // both are events already in the computation above.
    dispatch_wake = (progress || any_next_cycle) ? cycle_ + 1 : kNeverCycle;
  }
  event_running_ = false;
  return cycle_;
}

bool Gpu::sm_can_accept(u32 sm, const KernelLaunch& launch) const {
  return sms_[sm]->can_accept(launch);
}

bool Gpu::all_sms_drained() const {
  for (const auto& sm : sms_)
    if (!sm->idle()) return false;
  return true;
}

const KernelLaunch& Gpu::launch_of(u32 launch_id) const {
  return launches_[launch_id]->launch;
}

bool Gpu::priors_finished(u32 launch_id) const {
  for (u32 i = 0; i < launch_id; ++i)
    if (!launches_[i]->state.finished()) return false;
  return true;
}

bool Gpu::stream_ready(const KernelState& ks) const {
  const u32 stream = launches_[ks.launch_id]->launch.stream;
  for (u32 i = 0; i < ks.launch_id; ++i)
    if (launches_[i]->launch.stream == stream && !launches_[i]->state.finished())
      return false;
  return true;
}

bool Gpu::try_dispatch_block(KernelState& ks, u32 sm) {
  if (dispatched_this_cycle_) return false;
  if (ks.fully_dispatched()) return false;
  assert(sm < num_sms());

  u32 actual_sm = sm;
  if (fault_ != nullptr && fault_->armed())
    actual_sm = fault_->corrupt_block_mapping(sm, num_sms(), cycle_);

  const KernelLaunch& launch = launches_[ks.launch_id]->launch;
  if (!sms_[actual_sm]->can_accept(launch)) return false;

  if (!ks.started()) ks.first_dispatch_cycle = cycle_;
  sms_[actual_sm]->accept_block(launch, ks.launch_id, ks.blocks_dispatched, sm,
                                cycle_);
  if (fault_ != nullptr && actual_sm != sm) fault_->on_block_diverted(sm, actual_sm);
  ks.blocks_dispatched += 1;
  dispatched_this_cycle_ = true;
  // The target SM must simulate this cycle so the new block's warps can
  // start issuing exactly when the dense loop would run them.
  wake_sm(actual_sm, cycle_);
  stats_.add("blocks_dispatched");
  return true;
}

const KernelState& Gpu::kernel_state(u32 launch_id) const {
  return launches_[launch_id]->state;
}

Cycle Gpu::kernel_cycles(u32 launch_id) const {
  const KernelState& ks = launches_[launch_id]->state;
  assert(ks.finished());
  return ks.done_cycle - ks.first_dispatch_cycle;
}

void Gpu::on_block_done(const BlockRecord& rec) {
  records_.push_back(rec);
  KernelState& ks = launches_[rec.launch_id]->state;
  ks.blocks_done += 1;
  if (ks.finished()) {
    ks.done_cycle = cycle_;
    kernels_finished_ += 1;
    stats_.add("kernels_completed");
  }
}

StatSet Gpu::collect_stats() const {
  StatSet all = stats_;
  all.merge(mem_.stats());
  for (const auto& sm : sms_) all.merge(sm->snapshot_stats());
  all.set("cycles", cycle_);
  return all;
}

}  // namespace higpu::sim
