#include "common/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace higpu {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  out << '|';
  for (size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_ratio(double v) { return fmt(v, 3); }

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
    newline_indent();
  }
}

void JsonWriter::newline_indent() {
  if (compact_) return;
  out_ += '\n';
  out_.append(2 * needs_comma_.size(), ' ');
}

void JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  const bool had_members = needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) newline_indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  const bool had_members = needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) newline_indent();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += compact_ ? "\":" : "\": ";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(u64 v) {
  pre_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(i64 v) {
  pre_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  pre_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
}

void JsonWriter::value_exact(double v) {
  pre_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

}  // namespace higpu
