#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace higpu {

namespace {
// Atomic so campaign worker threads can log while the main thread adjusts
// the level (and so the read stays TSan-clean).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Sink and prefix are rarely written (process setup) but read on every
// line, possibly from several threads: one mutex covers both plus the
// actual emit, so lines never interleave mid-write.
std::mutex g_mu;
LogSink g_sink;          // guarded by g_mu
std::string g_prefix;    // guarded by g_mu

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

u64 log_monotonic_ms() {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
}

void set_log_sink(LogSink sink) {
  log_monotonic_ms();  // anchor the epoch no later than sink installation
  const std::lock_guard<std::mutex> lock(g_mu);
  g_sink = std::move(sink);
}

void set_log_prefix(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_prefix = prefix;
}

void log_msg(LogLevel level, const std::string& msg) {
  if (level > log_level() || level == LogLevel::kSilent) return;
  std::string line = "+" + std::to_string(log_monotonic_ms()) + "ms ";
  const std::lock_guard<std::mutex> lock(g_mu);
  if (!g_prefix.empty()) {
    line += g_prefix;
    line += ' ';
  }
  line += level_tag(level);
  line += ": ";
  line += msg;
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "[higpu] %s\n", line.c_str());
}

}  // namespace higpu
