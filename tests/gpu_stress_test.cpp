// Randomized multi-kernel stress: many kernels of random shapes across
// random streams, under every policy, with per-cycle occupancy-invariant
// checks — the GPU must neither deadlock nor over-commit SM resources, and
// every kernel's output must be correct.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "memsys/global_store.h"
#include "sched/policies.h"
#include "sim/gpu.h"
#include "tests/test_kernels.h"

namespace higpu::sim {
namespace {

struct StressCase {
  sched::Policy policy;
  u64 seed;
};

class GpuStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(GpuStress, RandomKernelSoupCompletesCorrectly) {
  const StressCase c = GetParam();
  Rng rng(c.seed);

  GpuParams params;
  memsys::GlobalStore store;
  Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(sched::make_scheduler(c.policy));

  struct Pending {
    memsys::DevPtr out;
    u32 threads;
  };
  std::vector<Pending> pending;

  const u32 kernels = 12;
  for (u32 k = 0; k < kernels; ++k) {
    const u32 block = 32u << rng.next_below(3);           // 32/64/128
    const u32 blocks = 1 + static_cast<u32>(rng.next_below(24));
    const u32 threads = block * blocks;
    const u32 spin = 5 + static_cast<u32>(rng.next_below(60));
    const memsys::DevPtr out = store.alloc(threads * 4);

    KernelLaunch l = testing::make_launch(
        testing::make_spin_kernel(spin, "soup" + std::to_string(k)), threads,
        block, {out, threads});
    l.stream = static_cast<u32>(rng.next_below(4));
    if (c.policy == sched::Policy::kSrrs)
      l.hints.start_sm = static_cast<u32>(rng.next_below(params.num_sms));
    if (c.policy == sched::Policy::kHalf)
      l.hints.sm_mask = rng.next_bool(0.5f)
                            ? sched::sm_range_mask(0, 3)
                            : sched::sm_range_mask(3, 6);
    gpu.launch(std::move(l));
    pending.push_back({out, threads});
  }

  // Step manually so occupancy invariants can be checked every cycle.
  u64 steps = 0;
  while (!gpu.idle()) {
    gpu.step();
    ASSERT_LT(++steps, 50'000'000u) << "stress soup deadlocked";
    if (steps % 64 == 0) {
      for (u32 s = 0; s < params.num_sms; ++s) {
        ASSERT_LE(gpu.sm(s).resident_blocks(), params.max_blocks_per_sm);
        ASSERT_LE(params.max_warps_per_sm - gpu.sm(s).free_warp_slots(),
                  params.max_warps_per_sm);
        ASSERT_LE(params.regfile_per_sm - gpu.sm(s).free_regs(),
                  params.regfile_per_sm);
      }
    }
  }

  // Every kernel's spin result must be present in every slot (the spin
  // kernel writes a nonzero float to out[gid]).
  for (const Pending& p : pending)
    for (u32 i = 0; i < p.threads; i += 17)
      ASSERT_NE(store.read32(p.out + i * 4), 0u);

  // All blocks accounted for exactly once.
  std::map<u32, u32> blocks_done;
  for (const BlockRecord& r : gpu.block_records()) blocks_done[r.launch_id] += 1;
  for (u32 k = 0; k < kernels; ++k)
    ASSERT_EQ(blocks_done[k], gpu.launch_of(k).total_blocks()) << "kernel " << k;
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  for (sched::Policy p : {sched::Policy::kDefault, sched::Policy::kHalf,
                          sched::Policy::kSrrs})
    for (u64 seed : {11ull, 22ull, 33ull}) cases.push_back({p, seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Soups, GpuStress, ::testing::ValuesIn(stress_cases()),
                         [](const auto& info) {
                           return std::string(sched::policy_name(info.param.policy)) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// Stream ordering must hold even in the soup: a chain of dependent kernels
// on one stream interleaved with noise on other streams.
TEST(GpuStressChain, DependentChainSurvivesNoise) {
  GpuParams params;
  memsys::GlobalStore store;
  Gpu gpu(params, &store);
  gpu.set_kernel_scheduler(std::make_unique<sched::DefaultKernelScheduler>());

  const memsys::DevPtr counter = store.alloc(4);
  store.write32(counter, 0);

  // Incrementer kernel: *counter += 1 (single thread).
  isa::KernelBuilder kb("inc");
  isa::Reg p = kb.reg(), v = kb.reg();
  kb.ldp(p, 0);
  kb.ldg(v, p);
  kb.iadd(v, v, isa::imm(1));
  kb.stg(p, v);
  kb.exit();
  isa::ProgramPtr inc = kb.build();

  Rng rng(9);
  const u32 chain_len = 10;
  for (u32 i = 0; i < chain_len; ++i) {
    KernelLaunch l;
    l.program = inc;
    l.grid = {1, 1, 1};
    l.block = {1, 1, 1};
    l.params = {counter};
    l.stream = 0;  // the dependent chain
    gpu.launch(std::move(l));
    // Noise on other streams.
    const u32 threads = 256;
    KernelLaunch noise = testing::make_launch(
        testing::make_spin_kernel(20), threads, 128,
        {store.alloc(threads * 4), threads});
    noise.stream = 1 + static_cast<u32>(rng.next_below(3));
    gpu.launch(std::move(noise));
  }
  gpu.run_until_idle(100'000'000);
  EXPECT_EQ(store.read32(counter), chain_len);
}

}  // namespace
}  // namespace higpu::sim
