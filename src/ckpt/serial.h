// Deterministic binary serialization for device-state snapshots.
//
// A Writer appends fixed-width little-endian fields to a byte blob and
// groups them into named sections; a Reader consumes the same fields in the
// same order and refuses to run past a section or the blob (a malformed or
// version-skewed snapshot throws instead of silently corrupting simulator
// state). Field-by-field serialization (never memcpy of whole structs) keeps
// the format independent of struct padding, so two snapshots of identical
// device state are byte-identical — which is what makes hash() comparisons
// and the per-section divergence diff meaningful.
//
// The section table doubles as the diagnosis index: every section records
// its byte range and hash, and an optional fixed record size (e.g. one L1
// set, one DRAM bank) that lets ckpt::first_divergence translate a byte
// offset into an architectural component name.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace higpu::ckpt {

/// FNV-1a over a byte range; the snapshot/section hash function.
u64 fnv1a(const u8* data, size_t len, u64 seed = 0xcbf29ce484222325ull);

/// One named contiguous range of the snapshot blob.
struct Section {
  std::string name;
  size_t offset = 0;
  size_t len = 0;
  /// Fixed payload record size for component-index diagnosis (0 = opaque).
  u64 record_size = 0;
  u64 hash = 0;
};

class Writer {
 public:
  void put8(u8 v) { blob_.push_back(v); }
  void put16(u16 v) { putle(v, 2); }
  void put32(u32 v) { putle(v, 4); }
  void put64(u64 v) { putle(v, 8); }
  void putf64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, 8);
    put64(bits);
  }
  void putb(bool v) { put8(v ? 1 : 0); }
  void put_bytes(const void* p, size_t n) {
    if (n == 0) return;
    const u8* b = static_cast<const u8*>(p);
    blob_.insert(blob_.end(), b, b + n);
  }
  void put_string(const std::string& s) {
    put64(s.size());
    put_bytes(s.data(), s.size());
  }
  void put_u32_vec(const std::vector<u32>& v) {
    put64(v.size());
    for (u32 x : v) put32(x);
  }
  void put_u64_vec(const std::vector<u64>& v) {
    put64(v.size());
    for (u64 x : v) put64(x);
  }

  void begin_section(std::string name, u64 record_size = 0);
  void end_section();

  const std::vector<u8>& blob() const { return blob_; }
  std::vector<u8> take_blob() { return std::move(blob_); }
  std::vector<Section> take_sections() { return std::move(sections_); }

 private:
  void putle(u64 v, int n) {
    for (int i = 0; i < n; ++i) blob_.push_back(static_cast<u8>(v >> (8 * i)));
  }

  std::vector<u8> blob_;
  std::vector<Section> sections_;
  size_t open_offset_ = 0;
  bool section_open_ = false;
  std::string open_name_;
  u64 open_record_size_ = 0;
};

/// Thrown on any structural mismatch while reading a snapshot back.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

class Reader {
 public:
  Reader(const std::vector<u8>& blob, const std::vector<Section>& sections)
      : blob_(blob), sections_(sections) {}

  u8 get8() { return static_cast<u8>(getle(1)); }
  u16 get16() { return static_cast<u16>(getle(2)); }
  u32 get32() { return static_cast<u32>(getle(4)); }
  u64 get64() { return getle(8); }
  double getf64() {
    const u64 bits = get64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  bool getb() { return get8() != 0; }
  void get_bytes(void* p, size_t n) {
    if (n == 0) return;
    need(n);
    std::memcpy(p, blob_.data() + pos_, n);
    pos_ += n;
  }
  std::string get_string() {
    const u64 n = get64();
    need(n);
    std::string s(reinterpret_cast<const char*>(blob_.data() + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }
  std::vector<u32> get_u32_vec() {
    const u64 n = get64();
    std::vector<u32> v(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) v[static_cast<size_t>(i)] = get32();
    return v;
  }
  std::vector<u64> get_u64_vec() {
    const u64 n = get64();
    std::vector<u64> v(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) v[static_cast<size_t>(i)] = get64();
    return v;
  }

  /// Sections are read in serialization order; entering one checks the name
  /// and positions the cursor, leaving one checks the full payload was
  /// consumed — a component that reads more or less than it saved fails
  /// loudly at the section boundary, not megabytes later.
  void enter_section(const std::string& name);
  void leave_section();
  /// Discard the rest of the current section (intentionally skipped state).
  void skip_to_section_end() {
    if (in_section_) pos_ = section_end_;
  }

 private:
  u64 getle(int n) {
    need(static_cast<size_t>(n));
    u64 v = 0;
    for (int i = 0; i < n; ++i)
      v |= static_cast<u64>(blob_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    pos_ += static_cast<size_t>(n);
    return v;
  }
  void need(size_t n) const {
    if (pos_ + n > blob_.size())
      throw SnapshotError("snapshot blob underrun at byte " +
                          std::to_string(pos_));
  }

  const std::vector<u8>& blob_;
  const std::vector<Section>& sections_;
  size_t pos_ = 0;
  size_t section_idx_ = 0;
  size_t section_end_ = 0;
  bool in_section_ = false;
};

}  // namespace higpu::ckpt
