#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/opcode.h"
#include "isa/program.h"

namespace higpu::isa {
namespace {

TEST(Opcode, UnitClasses) {
  EXPECT_EQ(unit_class(Op::kIadd), UnitClass::kSp);
  EXPECT_EQ(unit_class(Op::kFfma), UnitClass::kSp);
  EXPECT_EQ(unit_class(Op::kFdiv), UnitClass::kSfu);
  EXPECT_EQ(unit_class(Op::kFsqrt), UnitClass::kSfu);
  EXPECT_EQ(unit_class(Op::kLdg), UnitClass::kMem);
  EXPECT_EQ(unit_class(Op::kSts), UnitClass::kMem);
  EXPECT_EQ(unit_class(Op::kBra), UnitClass::kCtrl);
  EXPECT_EQ(unit_class(Op::kBar), UnitClass::kCtrl);
}

TEST(Opcode, WriteClassification) {
  EXPECT_TRUE(writes_gpr(Op::kIadd));
  EXPECT_TRUE(writes_gpr(Op::kLdg));
  EXPECT_TRUE(writes_gpr(Op::kAtomAdd));
  EXPECT_FALSE(writes_gpr(Op::kStg));
  EXPECT_FALSE(writes_gpr(Op::kSetp));
  EXPECT_FALSE(writes_gpr(Op::kBra));
  EXPECT_TRUE(writes_pred(Op::kSetp));
  EXPECT_FALSE(writes_pred(Op::kIadd));
}

TEST(Opcode, MemClassification) {
  EXPECT_TRUE(is_global_mem(Op::kLdg));
  EXPECT_TRUE(is_global_mem(Op::kAtomAdd));
  EXPECT_FALSE(is_global_mem(Op::kLds));
  EXPECT_TRUE(is_shared_mem(Op::kLds));
  EXPECT_FALSE(is_shared_mem(Op::kStg));
}

TEST(Builder, AllocatesDistinctRegisters) {
  KernelBuilder kb("t");
  Reg a = kb.reg(), b = kb.reg();
  EXPECT_NE(a.idx, b.idx);
  PredReg p = kb.pred(), q = kb.pred();
  EXPECT_NE(p.idx, q.idx);
}

TEST(Builder, ComputesResourceCounts) {
  KernelBuilder kb("t");
  Reg a = kb.reg(), b = kb.reg(), c = kb.reg();
  kb.ldp(a, 3);  // params 0..3 -> 4 params
  kb.iadd(b, a, imm(1));
  kb.iadd(c, b, a);
  kb.exit();
  auto prog = kb.build();
  EXPECT_EQ(prog->num_regs(), 3);
  EXPECT_EQ(prog->num_params(), 4u);
  EXPECT_EQ(prog->size(), 4u);
}

TEST(Builder, ResolvesForwardLabels) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  PredReg p = kb.pred();
  Label skip = kb.label();
  kb.movi(a, 0);
  kb.setp(p, CmpOp::kEq, DType::kI32, a, imm(0));
  kb.bra(skip).guard_if(p);
  kb.movi(a, 1);
  kb.bind(skip);
  kb.exit();
  auto prog = kb.build();
  EXPECT_EQ(prog->at(2).target, 4u);
}

TEST(Builder, ThrowsOnUnterminatedProgram) {
  KernelBuilder kb("t");
  Reg a = kb.reg();
  kb.movi(a, 1);
  EXPECT_THROW(kb.build(), std::logic_error);
}

TEST(Builder, ThrowsOnUnboundLabel) {
  KernelBuilder kb("t");
  Label l = kb.label();
  kb.bra(l);
  kb.exit();
  EXPECT_THROW(kb.build(), std::logic_error);
}

TEST(Builder, ThrowsOnGuardedBarrier) {
  KernelBuilder kb("t");
  PredReg p = kb.pred();
  Reg a = kb.reg();
  kb.movi(a, 0);
  kb.setp(p, CmpOp::kEq, DType::kI32, a, imm(0));
  kb.bar().guard_if(p);
  kb.exit();
  EXPECT_THROW(kb.build(), std::logic_error);
}

TEST(Builder, UnconditionalTrailingBraIsValid) {
  KernelBuilder kb("t");
  Label top = kb.label();
  kb.bind(top);
  kb.exit();
  // Program ending in unconditional bra (to exit) is structurally fine.
  KernelBuilder kb2("t2");
  Label end = kb2.label();
  kb2.bind(end);
  kb2.exit();
  EXPECT_NO_THROW(kb2.build());
}

TEST(Builder, SharedBytesAndDisassembly) {
  KernelBuilder kb("shmem_kernel");
  kb.set_shared_bytes(1024);
  Reg a = kb.reg(), v = kb.reg();
  kb.movi(a, 0);
  kb.lds(v, a, 16);
  kb.sts(a, v, 32);
  kb.exit();
  auto prog = kb.build();
  EXPECT_EQ(prog->shared_bytes(), 1024u);
  const std::string dis = prog->disassemble();
  EXPECT_NE(dis.find("lds"), std::string::npos);
  EXPECT_NE(dis.find("sts"), std::string::npos);
  EXPECT_NE(dis.find("shmem_kernel"), std::string::npos);
}

TEST(Builder, StaticCountsByUnit) {
  KernelBuilder kb("t");
  Reg a = kb.reg(), b = kb.reg();
  kb.movi(a, 1);
  kb.fdiv(b, a, a);
  kb.fsqrt(b, b);
  kb.exit();
  auto prog = kb.build();
  EXPECT_EQ(prog->static_count(UnitClass::kSfu), 2u);
  EXPECT_EQ(prog->static_count(UnitClass::kSp), 1u);
  EXPECT_EQ(prog->static_count(UnitClass::kCtrl), 1u);
}

TEST(Builder, GuardRangeEmitsGuardedBranch) {
  KernelBuilder kb("t");
  Reg gid = kb.global_tid_x();
  Label done = kb.label();
  kb.guard_range(gid, imm(100), done);
  kb.bind(done);
  kb.exit();
  auto prog = kb.build();
  // The branch is the second-to-last instruction, guarded.
  const Instruction& bra = prog->at(prog->size() - 2);
  EXPECT_EQ(bra.op, Op::kBra);
  EXPECT_NE(bra.guard, kNoPred);
}

}  // namespace
}  // namespace higpu::isa
