// Quickstart: build a kernel with the KernelBuilder, execute it redundantly
// through the unified ExecSession with the SRRS policy, compare the outputs
// on the (DCLS) host, and check the diversity guarantee — the full paper
// §IV.A flow in ~80 lines. The same session API scales from baseline to
// DCLS to TMR by changing one RedundancySpec value (footnote 1), which the
// last section demonstrates.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/diversity.h"
#include "core/exec.h"
#include "isa/builder.h"

int main() {
  using namespace higpu;

  // 1. Write a SAXPY kernel in the higpu ISA: y[i] = a*x[i] + y[i].
  isa::KernelBuilder kb("saxpy");
  isa::Reg x = kb.reg(), y = kb.reg(), n = kb.reg(), a = kb.reg();
  kb.ldp(x, 0);
  kb.ldp(y, 1);
  kb.ldp(n, 2);
  kb.ldp(a, 3);
  isa::Reg gid = kb.global_tid_x();
  isa::Label done = kb.label();
  kb.guard_range(gid, n, done);
  isa::Reg ax = kb.reg(), ay = kb.reg(), vx = kb.reg(), vy = kb.reg();
  kb.imad(ax, gid, isa::imm(4), x);
  kb.imad(ay, gid, isa::imm(4), y);
  kb.ldg(vx, ax);
  kb.ldg(vy, ay);
  kb.ffma(vy, vx, a, vy);
  kb.stg(ay, vy);
  kb.bind(done);
  kb.exit();
  isa::ProgramPtr prog = kb.build();
  std::printf("built kernel:\n%s\n", prog->disassemble().c_str());

  // 2. Open a redundant session with the SRRS policy on a 6-SM GPU.
  //    RedundancySpec::dcls() = 2 copies, bitwise host comparison.
  runtime::Device dev;
  core::ExecSession::Config cfg;
  cfg.policy = sched::Policy::kSrrs;  // copies start on SM 0 and SM 3
  cfg.redundancy = core::RedundancySpec::dcls();
  core::ExecSession session(dev, cfg);

  // 3. Allocate + upload (both copies get their own buffers).
  const u32 count = 4096;
  std::vector<float> hx(count), hy(count);
  for (u32 i = 0; i < count; ++i) {
    hx[i] = 0.5f * static_cast<float>(i);
    hy[i] = 1.0f;
  }
  core::ReplicaPtr dx = session.alloc(count * 4);
  core::ReplicaPtr dy = session.alloc(count * 4);
  session.h2d(dx, hx.data(), count * 4);
  session.h2d(dy, hy.data(), count * 4);

  // 4. Launch the redundant pair and wait.
  session.launch(prog, sim::Dim3{ceil_div(count, 256), 1, 1},
                 sim::Dim3{256, 1, 1}, {dx, dy, count, 2.0f});
  const Cycle cycles = session.sync();

  // 5. Read back and compare on the DCLS host.
  std::vector<float> result(count);
  session.d2h(result.data(), dy, count * 4);
  const bool match = session.compare(dy, count * 4, result.data()).unanimous;

  std::printf("kernel pair executed in %llu GPU cycles\n",
              static_cast<unsigned long long>(cycles));
  std::printf("DCLS comparison: %s\n", match ? "outputs MATCH" : "MISMATCH");
  std::printf("y[1] = %.2f (expect 2*x[1]+1 = %.2f)\n", result[1],
              2.0f * hx[1] + 1.0f);

  // Diversity check: every logical block ran on different SMs at different
  // times across the two copies.
  const core::DiversityReport rep =
      core::analyze_block_diversity(dev.gpu().block_records(), session.pairs());
  std::printf("diversity: %u blocks checked, spatial=%s, temporal=%s\n",
              rep.blocks_checked, rep.spatially_diverse() ? "yes" : "no",
              rep.temporally_disjoint() ? "yes" : "no");
  std::printf("end-to-end platform time: %.3f ms\n",
              static_cast<double>(dev.elapsed_ns()) / 1e6);

  // Bonus: the SAME flow at triple modular redundancy — swap the spec, keep
  // the code. Three copies, majority vote, fail-operational without retry.
  runtime::Device tmr_dev;
  core::ExecSession tmr(tmr_dev,
                        {sched::Policy::kSrrs, core::RedundancySpec::tmr()});
  core::ReplicaPtr tx = tmr.alloc(count * 4);
  core::ReplicaPtr ty = tmr.alloc(count * 4);
  tmr.h2d(tx, hx.data(), count * 4);
  tmr.h2d(ty, hy.data(), count * 4);
  tmr.launch(prog, sim::Dim3{ceil_div(count, 256), 1, 1},
             sim::Dim3{256, 1, 1}, {tx, ty, count, 2.0f});
  tmr.sync();
  std::vector<float> tmr_result(count);
  tmr.d2h(tmr_result.data(), ty, count * 4);
  const core::CompareVerdict vote =
      tmr.compare(ty, count * 4, tmr_result.data());
  std::printf("TMR (3 copies, majority vote): %s, achieved %s\n",
              vote.unanimous ? "unanimous" : "voted",
              safety::asil_name(
                  tmr.redundancy().achieved_asil(sched::Policy::kSrrs)));
  return match && vote.majority ? 0 : 1;
}
