// Minimal leveled logging. Off by default so simulations stay quiet in tests;
// benches/examples can raise the level for progress reporting.
#pragma once

#include <string>

namespace higpu {

enum class LogLevel { kSilent = 0, kError, kWarn, kInfo, kDebug };

/// Set the global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message if `level` is at or below the global threshold.
void log_msg(LogLevel level, const std::string& msg);

inline void log_error(const std::string& m) { log_msg(LogLevel::kError, m); }
inline void log_warn(const std::string& m) { log_msg(LogLevel::kWarn, m); }
inline void log_info(const std::string& m) { log_msg(LogLevel::kInfo, m); }
inline void log_debug(const std::string& m) { log_msg(LogLevel::kDebug, m); }

}  // namespace higpu
