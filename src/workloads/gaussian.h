// gaussian — Gaussian elimination (Rodinia): for every pivot k, a Fan1
// kernel computes the column of multipliers and a Fan2 kernel updates the
// trailing submatrix (and RHS vector). 2*(n-1) tiny kernel launches: the
// most launch-overhead-dominated workload in the suite.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Gaussian final : public Workload {
 public:
  std::string name() const override { return "gaussian"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 n_ = 0;
  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> ref_a_;
  std::vector<float> ref_b_;
  std::vector<float> got_a_;
  std::vector<float> got_b_;
};

}  // namespace higpu::workloads
