// hotspot3D — 3D thermal simulation (Rodinia): 7-point stencil over a
// (dim x dim x layers) grid, one kernel launch per time step with ping-pong
// buffers. Larger blocks and more memory traffic than 2D hotspot.
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Hotspot3d final : public Workload {
 public:
  std::string name() const override { return "hotspot3D"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  u32 dim_ = 0;     // x/y extent
  u32 layers_ = 0;  // z extent
  u32 steps_ = 0;
  std::vector<float> temp_;
  std::vector<float> power_;
  std::vector<float> reference_;
  std::vector<float> result_;
};

}  // namespace higpu::workloads
