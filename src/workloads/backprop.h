// backprop — neural-network training step (Rodinia): a layer-forward kernel
// computing per-block partial sums of input*weight via a shared-memory tree
// reduction, and a weight-adjustment kernel. Both kernels are very short but
// launch many blocks ("short kernels requiring more than half of the
// resources" — the case where SRRS beats HALF in Fig. 4).
#pragma once

#include "workloads/workload.h"

namespace higpu::workloads {

class Backprop final : public Workload {
 public:
  std::string name() const override { return "backprop"; }
  void setup(Scale scale, u64 seed) override;
  void run(RunContext& ctx) override;
  bool verify() const override;
  u64 input_bytes() const override;
  u64 output_bytes() const override;

 private:
  static constexpr u32 kHidden = 16;  // hidden units (one block column each)
  u32 n_in_ = 0;
  std::vector<float> input_;
  std::vector<float> weights_;     // n_in x kHidden
  std::vector<float> delta_;       // kHidden (host-computed output error)
  std::vector<float> ref_partial_;  // (n_in/16) x kHidden
  std::vector<float> ref_weights_;
  std::vector<float> got_partial_;
  std::vector<float> got_weights_;
};

}  // namespace higpu::workloads
