#include "core/categorize.h"

#include <algorithm>

#include "sim/sm.h"

namespace higpu::core {

const char* category_name(KernelCategory c) {
  switch (c) {
    case KernelCategory::kShort: return "short";
    case KernelCategory::kHeavy: return "heavy";
    case KernelCategory::kFriendly: return "friendly";
  }
  return "?";
}

u32 max_blocks_per_sm(const sim::GpuParams& p, const sim::KernelLaunch& l) {
  const u32 warps = sim::SmCore::warps_needed(p, l);
  const u32 regs = sim::SmCore::regs_needed(p, l);
  const u32 shared = l.program->shared_bytes();

  u32 limit = p.max_blocks_per_sm;
  limit = std::min(limit, p.max_warps_per_sm / warps);
  if (regs > 0) limit = std::min(limit, p.regfile_per_sm / regs);
  if (shared > 0) limit = std::min(limit, p.shared_per_sm / shared);
  return std::max<u32>(limit, 0);
}

CategoryReport categorize_kernel(const sim::GpuParams& p,
                                 const sim::KernelLaunch& l,
                                 Cycle isolated_cycles) {
  CategoryReport rep;
  rep.isolated_cycles = isolated_cycles;
  rep.max_blocks_per_sm = max_blocks_per_sm(p, l);
  const double capacity =
      static_cast<double>(rep.max_blocks_per_sm) * p.num_sms;
  rep.gpu_fill = capacity > 0
                     ? static_cast<double>(l.total_blocks()) / capacity
                     : 0.0;

  // Short: the kernel finishes before the second (serially dispatched)
  // redundant copy even arrives at the GPU.
  if (isolated_cycles <= p.launch_gap_cycles) {
    rep.category = KernelCategory::kShort;
    return rep;
  }
  // Heavy: a single kernel saturates GPU resources, leaving no room for the
  // redundant copy to make progress until it starts draining.
  if (rep.gpu_fill >= 1.0) {
    rep.category = KernelCategory::kHeavy;
    return rep;
  }
  rep.category = KernelCategory::kFriendly;
  return rep;
}

sched::Policy recommend_policy(KernelCategory c) {
  switch (c) {
    case KernelCategory::kShort:
    case KernelCategory::kHeavy:
      return sched::Policy::kSrrs;
    case KernelCategory::kFriendly:
      return sched::Policy::kHalf;
  }
  return sched::Policy::kSrrs;
}

}  // namespace higpu::core
