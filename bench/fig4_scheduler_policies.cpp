// Figure 4 reproduction: "Redundant Kernel Simulation Cycles (GPGPU-Sim
// normalized)". For each benchmark of the paper's simulated subset, run the
// redundant kernel pair under the baseline scheduler (Default), HALF and
// SRRS on the 6-SM GPU model, and report kernel-execution cycles normalized
// to Default.
//
// Expected shape (paper): HALF ~1.0 for 9/11 benchmarks, worst ~1.10 (lud);
// SRRS >= HALF for friendly kernels, up to ~2x for myocyte; for the very
// short kernels of bfs/backprop SRRS ~1.0 while HALF costs more.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace higpu;
  using bench::run_workload;
  using workloads::Scale;

  std::printf("Figure 4: redundant kernel simulation cycles, normalized to "
              "the default scheduler (6 SMs)\n\n");

  TextTable table({"benchmark", "default(cycles)", "HALF", "SRRS",
                   "verified", "diverse(SRRS)"});
  double worst_half = 0.0, worst_srrs = 0.0;
  std::string worst_half_name, worst_srrs_name;

  for (const std::string& name : workloads::fig4_names()) {
    const auto def = run_workload(name, Scale::kBench, sched::Policy::kDefault,
                                  /*redundant=*/true);
    const auto half = run_workload(name, Scale::kBench, sched::Policy::kHalf,
                                   /*redundant=*/true);
    const auto srrs = run_workload(name, Scale::kBench, sched::Policy::kSrrs,
                                   /*redundant=*/true);

    const double base = static_cast<double>(def.kernel_cycles);
    const double r_half = static_cast<double>(half.kernel_cycles) / base;
    const double r_srrs = static_cast<double>(srrs.kernel_cycles) / base;
    if (r_half > worst_half) {
      worst_half = r_half;
      worst_half_name = name;
    }
    if (r_srrs > worst_srrs) {
      worst_srrs = r_srrs;
      worst_srrs_name = name;
    }

    const bool all_ok = def.verified && half.verified && srrs.verified &&
                        def.outputs_matched && half.outputs_matched &&
                        srrs.outputs_matched;
    const bool diverse = srrs.diversity.spatially_diverse() &&
                         srrs.diversity.temporally_disjoint();
    table.add_row({name, std::to_string(def.kernel_cycles),
                   TextTable::fmt_ratio(r_half), TextTable::fmt_ratio(r_srrs),
                   all_ok ? "yes" : "NO", diverse ? "yes" : "NO"});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("worst HALF overhead: %.1f%% (%s)\n", (worst_half - 1.0) * 100.0,
              worst_half_name.c_str());
  std::printf("worst SRRS overhead: %.1f%% (%s)\n", (worst_srrs - 1.0) * 100.0,
              worst_srrs_name.c_str());
  std::printf("\npaper reference: HALF negligible for 9/11, worst ~10%% "
              "(lud); SRRS up to ~99%% (myocyte); bfs/backprop prefer SRRS.\n");
  return 0;
}
