// Fluent builder for kernel programs.
//
// Workloads construct their kernels through this interface; build() resolves
// labels, validates structural invariants, and computes SIMT reconvergence
// points from the immediate post-dominator analysis.
#pragma once

#include <string>
#include <vector>

#include "isa/instruction.h"
#include "isa/program.h"

namespace higpu::isa {

/// Forward-referencable branch target.
struct Label {
  u32 id = 0xFFFFFFFF;
  bool valid() const { return id != 0xFFFFFFFF; }
};

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  // ---- Resource allocation -------------------------------------------------
  /// Allocate a fresh general-purpose register. Throws std::logic_error
  /// when the 255-register budget is exhausted (always-on: an overflowing
  /// handle would silently corrupt a neighboring thread's registers).
  Reg reg();
  /// Allocate a fresh predicate register. Throws std::logic_error when the
  /// 8-predicate budget is exhausted.
  PredReg pred();
  /// Registers allocated so far. build() raises the program's num_regs
  /// above this only if an emitted instruction references a higher index.
  u16 reg_count() const { return next_reg_; }
  /// Predicates allocated so far (see reg_count()).
  u16 pred_count() const { return static_cast<u16>(next_pred_); }
  /// Create an unbound label.
  Label label();
  /// Bind `l` to the next emitted instruction.
  void bind(Label l);
  /// Declare static shared memory for the thread block (bytes).
  void set_shared_bytes(u32 bytes) { shared_bytes_ = bytes; }

  // ---- Moves, parameters, special registers --------------------------------
  Instruction& mov(Reg d, Operand a);
  Instruction& movi(Reg d, i32 v) { return mov(d, imm(v)); }
  Instruction& movf(Reg d, float v) { return mov(d, fimm(v)); }
  Instruction& ldp(Reg d, u32 param_index);
  Instruction& s2r(Reg d, SReg s);

  // ---- Integer ALU ----------------------------------------------------------
  Instruction& iadd(Reg d, Operand a, Operand b);
  Instruction& isub(Reg d, Operand a, Operand b);
  Instruction& imul(Reg d, Operand a, Operand b);
  Instruction& imad(Reg d, Operand a, Operand b, Operand c);
  Instruction& imin(Reg d, Operand a, Operand b);
  Instruction& imax(Reg d, Operand a, Operand b);
  Instruction& and_(Reg d, Operand a, Operand b);
  Instruction& or_(Reg d, Operand a, Operand b);
  Instruction& xor_(Reg d, Operand a, Operand b);
  Instruction& not_(Reg d, Operand a);
  Instruction& shl(Reg d, Operand a, Operand b);
  Instruction& shr(Reg d, Operand a, Operand b);
  Instruction& sra(Reg d, Operand a, Operand b);

  // ---- Floating point --------------------------------------------------------
  Instruction& fadd(Reg d, Operand a, Operand b);
  Instruction& fsub(Reg d, Operand a, Operand b);
  Instruction& fmul(Reg d, Operand a, Operand b);
  Instruction& ffma(Reg d, Operand a, Operand b, Operand c);
  Instruction& fmin(Reg d, Operand a, Operand b);
  Instruction& fmax(Reg d, Operand a, Operand b);
  Instruction& fabs_(Reg d, Operand a);
  Instruction& fneg(Reg d, Operand a);
  Instruction& fdiv(Reg d, Operand a, Operand b);
  Instruction& fsqrt(Reg d, Operand a);
  Instruction& frcp(Reg d, Operand a);
  Instruction& fexp(Reg d, Operand a);
  Instruction& flog(Reg d, Operand a);
  Instruction& fsin(Reg d, Operand a);
  Instruction& fcos(Reg d, Operand a);
  Instruction& i2f(Reg d, Operand a);
  Instruction& f2i(Reg d, Operand a);

  // ---- Predicates and control flow -------------------------------------------
  Instruction& setp(PredReg p, CmpOp c, DType t, Operand a, Operand b);
  /// PTX-style setp.and: p = cmp(a, b) && q.
  Instruction& setp_and(PredReg p, CmpOp c, DType t, Operand a, Operand b,
                        PredReg q);
  Instruction& selp(Reg d, Operand a, Operand b, PredReg p);
  /// Branch to `l`; attach .guard_if(p)/.guard_ifnot(p) for a conditional
  /// (potentially divergent) branch.
  Instruction& bra(Label l);
  Instruction& exit();
  Instruction& bar();

  // ---- Memory ------------------------------------------------------------------
  Instruction& ldg(Reg d, Operand addr, i32 byte_offset = 0);
  Instruction& stg(Operand addr, Operand value, i32 byte_offset = 0);
  Instruction& lds(Reg d, Operand addr, i32 byte_offset = 0);
  Instruction& sts(Operand addr, Operand value, i32 byte_offset = 0);
  Instruction& atom_add(Reg d, Operand addr, Operand value, i32 byte_offset = 0);

  // ---- Common idioms ---------------------------------------------------------
  /// d = blockIdx.x * blockDim.x + threadIdx.x
  Reg global_tid_x();
  /// d = blockIdx.y * blockDim.y + threadIdx.y
  Reg global_tid_y();
  /// Emit "if (d >= bound) goto exit_label" with a fresh predicate.
  void guard_range(Reg v, Operand bound, Label exit_label);

  /// Number of instructions emitted so far (== pc of the next instruction).
  Pc here() const { return static_cast<Pc>(code_.size()); }

  /// Finalize: resolve labels, validate, compute reconvergence points.
  ProgramPtr build();

 private:
  Instruction& emit(Instruction ins);
  Instruction& alu2(Op op, Reg d, Operand a, Operand b);
  Instruction& alu3(Op op, Reg d, Operand a, Operand b, Operand c);

  std::string name_;
  std::vector<Instruction> code_;
  // Per emitted branch: label id it references (parallel to code_ pcs).
  std::vector<std::pair<Pc, u32>> branch_fixups_;
  std::vector<Pc> label_pc_;  // indexed by label id; end sentinel = unbound
  u16 next_reg_ = 0;
  i16 next_pred_ = 0;
  u32 shared_bytes_ = 0;
  u32 max_param_ = 0;
  bool built_ = false;
};

}  // namespace higpu::isa
