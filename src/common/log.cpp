#include "common/log.h"

#include <cstdio>

namespace higpu {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_msg(LogLevel level, const std::string& msg) {
  if (level > g_level || level == LogLevel::kSilent) return;
  std::fprintf(stderr, "[higpu:%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace higpu
