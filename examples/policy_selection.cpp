// Analysis-phase policy selection (paper §IV.D): during system integration,
// each kernel is categorized (short / heavy / friendly) and the most
// convenient scheduling policy is chosen per kernel before deployment.
//
//   $ ./policy_selection [workload ...]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/categorize.h"
#include "exp/campaign.h"

int main(int argc, char** argv) {
  using namespace higpu;

  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"hotspot", "bfs", "myocyte", "lud", "nn"};

  std::printf("Analysis-phase kernel categorization and policy selection\n");
  std::printf("=========================================================\n");

  for (const std::string& name : names) {
    // Profile run: baseline mode, each kernel executes in isolation. The
    // categorization reads the live device, so it runs as a probe.
    exp::ScenarioSpec spec;
    spec.workload = name;
    spec.scale = workloads::Scale::kBench;
    spec.redundancy = core::RedundancySpec::baseline();

    std::printf("\n%s:\n", name.c_str());
    const exp::ScenarioResult res = exp::run_scenario(
        spec, 0, [](runtime::Device& dev, workloads::Workload&,
                    core::ExecSession&) {
      std::map<std::string, bool> seen;
      sim::Gpu& gpu = dev.gpu();
      for (sim::KernelState* ks : gpu.kernel_states()) {
        const sim::KernelLaunch& launch = gpu.launch_of(ks->launch_id);
        if (seen[launch.program->name()]) continue;  // report each kernel once
        seen[launch.program->name()] = true;

        const core::CategoryReport rep = core::categorize_kernel(
            gpu.params(), launch, gpu.kernel_cycles(ks->launch_id));
        std::printf(
            "  kernel %-22s grid %4u blocks x %4u thr  %8llu cycles  "
            "occupancy %2u blk/SM  fill %5.2f  -> %-8s => use %s\n",
            launch.program->name().c_str(), launch.total_blocks(),
            launch.threads_per_block(),
            static_cast<unsigned long long>(rep.isolated_cycles),
            rep.max_blocks_per_sm, rep.gpu_fill,
            core::category_name(rep.category),
            sched::policy_name(core::recommend_policy(rep.category)));
      }
        });
    if (!res.ok) {
      std::fprintf(stderr, "  profile run failed: %s\n", res.error.c_str());
      return 1;
    }
  }
  std::printf("\nrule (paper >>IV.D): SRRS for short kernels (serialization "
              "is free) and heavy kernels (no concurrency to lose); HALF for "
              "friendly kernels (half the SMs is what they would get "
              "anyway).\n");
  return 0;
}
