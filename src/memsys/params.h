// Timing/geometry parameters for the GPU memory hierarchy.
#pragma once

#include <string>

#include "common/types.h"

namespace higpu::memsys {

/// L1 write-hit handling. Write-back keeps dirty lines in the L1 and writes
/// them to the L2 on eviction; write-through forwards every store to the L2
/// immediately (lines are never dirty in L1, so there are no L1 writebacks).
enum class WritePolicy : u8 { kWriteBack, kWriteThrough };

/// L1 write-miss handling. Allocate fetches the line into the L1 (through
/// an MSHR entry, like a read miss); no-allocate sends the store straight
/// to the L2 and leaves the L1 untouched.
enum class WriteAlloc : u8 { kAllocate, kNoAllocate };

const char* write_policy_name(WritePolicy p);
const char* write_alloc_name(WriteAlloc a);

/// All latencies in core cycles; all sizes in bytes.
struct MemParams {
  // Cache line (memory transaction) size. One coalesced warp access moves
  // one or more lines of this size.
  u32 line_bytes = 128;

  // Per-SM L1 data cache.
  u32 l1_size = 24 * 1024;
  u32 l1_assoc = 4;
  u32 l1_latency = 28;      // hit latency
  u32 l1_mshr_entries = 32; // outstanding misses per SM
  WritePolicy l1_write_policy = WritePolicy::kWriteBack;
  WriteAlloc l1_write_alloc = WriteAlloc::kAllocate;

  // Shared L2.
  u32 l2_size = 1024 * 1024;
  u32 l2_assoc = 8;
  u32 l2_banks = 8;
  u32 l2_latency = 120;     // hit latency (incl. interconnect)
  u32 l2_service = 2;       // bank occupancy per transaction (bandwidth)

  // DRAM: `dram_channels` channels, each with `dram_banks_per_channel`
  // banks holding one open row of `dram_row_bytes`. An access that hits the
  // open row pays `dram_row_hit_latency`; a row switch (precharge +
  // activate + CAS) pays `dram_row_miss_latency`. The bank is occupied for
  // the full access latency (bank-level parallelism); the channel data bus
  // is additionally occupied `dram_service` cycles per line (bandwidth).
  u32 dram_channels = 4;
  u32 dram_banks_per_channel = 4;
  u32 dram_row_bytes = 2048;
  u32 dram_row_hit_latency = 160;
  u32 dram_row_miss_latency = 320;  // load-to-use on a row switch
  u32 dram_service = 4;             // channel-bus occupancy per line

  // Shared memory (per SM).
  u32 smem_banks = 32;
  u32 smem_latency = 24;

  // Atomic operations are resolved at the L2; extra service time per access.
  u32 atomic_extra = 8;

  bool operator==(const MemParams& other) const = default;
};

/// Throws std::invalid_argument naming the offending field (zero geometry,
/// rows smaller than a line, row size not a multiple of the line size).
void validate(const MemParams& p);

/// Compact label of the fields that differ from the defaults, for campaign
/// scenario labels: "" for a default config, else e.g. "wt-nwa-mshr4" or
/// "dbk1-row512". Two configs that sweep any --mem-* knob get distinct,
/// stable labels.
std::string mem_label(const MemParams& p);

}  // namespace higpu::memsys
