// Command-line workload runner: execute any of the 19 Rodinia-style
// workloads under any policy/redundancy configuration and print the metrics
// the paper reports.
//
//   $ ./run_workload hotspot srrs
//   $ ./run_workload cfd half --baseline
//   $ ./run_workload --list
#include <cstdio>
#include <cstring>
#include <string>

#include "core/diversity.h"
#include "core/redundant.h"
#include "workloads/workload.h"

namespace {

int usage() {
  std::printf("usage: run_workload <name> [default|half|srrs] [--baseline]\n");
  std::printf("       run_workload --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace higpu;

  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    for (const std::string& n : workloads::all_names())
      std::printf("%s\n", n.c_str());
    return 0;
  }
  if (argc < 2) return usage();

  const std::string name = argv[1];
  sched::Policy policy = sched::Policy::kSrrs;
  bool redundant = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "default") policy = sched::Policy::kDefault;
    else if (arg == "half") policy = sched::Policy::kHalf;
    else if (arg == "srrs") policy = sched::Policy::kSrrs;
    else if (arg == "--baseline") redundant = false;
    else return usage();
  }

  workloads::WorkloadPtr w;
  try {
    w = workloads::make(name);
  } catch (const std::out_of_range&) {
    std::printf("unknown workload '%s' (try --list)\n", name.c_str());
    return 2;
  }
  w->setup(workloads::Scale::kBench, 2019);

  runtime::Device dev;
  core::RedundantSession::Config cfg;
  cfg.policy = policy;
  cfg.redundant = redundant;
  core::RedundantSession session(dev, cfg);
  w->run(session);

  std::printf("workload        : %s\n", name.c_str());
  std::printf("policy          : %s%s\n", sched::policy_name(policy),
              redundant ? " (redundant pair)" : " (baseline, single copy)");
  std::printf("kernel cycles   : %llu\n",
              static_cast<unsigned long long>(session.kernel_cycles()));
  std::printf("end-to-end time : %.3f ms\n",
              static_cast<double>(dev.elapsed_ns()) / 1e6);
  std::printf("verified vs CPU : %s\n", w->verify() ? "yes" : "NO");
  if (redundant) {
    std::printf("DCLS comparisons: %u (%u mismatching)\n", session.comparisons(),
                session.mismatches());
    const core::DiversityReport rep = core::analyze_block_diversity(
        dev.gpu().block_records(), session.pairs());
    std::printf("diversity       : %u block pairs, %u same-SM, %u time-overlap\n",
                rep.blocks_checked, rep.same_sm, rep.time_overlap);
  }
  const StatSet stats = dev.gpu().collect_stats();
  std::printf("instructions    : %llu (stalls: %llu scoreboard, %llu "
              "structural, %llu barrier)\n",
              static_cast<unsigned long long>(stats.get("instructions")),
              static_cast<unsigned long long>(stats.get("issue_stall_scoreboard")),
              static_cast<unsigned long long>(stats.get("issue_stall_structural")),
              static_cast<unsigned long long>(stats.get("issue_stall_barrier")));
  std::printf("L1 hit rate     : %.1f%%   L2 hit rate: %.1f%%\n",
              stats.ratio("l1_hits", "l1_misses") * 100.0,
              stats.ratio("l2_hits", "l2_misses") * 100.0);
  return w->verify() && session.all_outputs_matched() ? 0 : 1;
}
